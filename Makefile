GO ?= go

.PHONY: all build vet test race check cover bench-smoke bench bench-scale bench-epoch bench-churn bench-resolve bench-explain bench-replica bench-load tables

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -cpu=1,4,8 ./internal/names/... ./internal/acl/... ./internal/monitor/... ./internal/decision/... ./internal/lattice/... ./internal/principal/... ./internal/core/... ./internal/provenance/... ./internal/replica/...

# check is the full local gate: build, vet, the complete test suite
# under the race detector, and a benchmark smoke run so the harness
# itself cannot bit-rot unnoticed.
check: build vet race bench-smoke

# cover runs the monitor, telemetry, names, lattice, and principal
# packages' tests with coverage and enforces per-tree floors: the policy
# layer is the code whose regressions are security bugs, the telemetry
# layer is what makes such regressions observable in production, the
# name server is the mechanism every decision rides through, and the
# lattice and principal registries are the frozen shards every epoch
# bundles, so all five stay covered.
MONITOR_COVER_FLOOR := 90.0
TELEMETRY_COVER_FLOOR := 90.0
NAMES_COVER_FLOOR := 90.0
LATTICE_COVER_FLOOR := 85.0
PRINCIPAL_COVER_FLOOR := 85.0
# The write-combining publisher is new write-path machinery; its file
# keeps its own floor so the package average cannot hide it.
BATCH_COVER_FLOOR := 85.0
# Compiled epochs are new read-path machinery: the freeze-time index
# and the ACL-summary bitsets each keep a per-file floor for the same
# reason.
COMPILED_COVER_FLOOR := 85.0
SUMMARY_COVER_FLOOR := 85.0
# The provenance engine answers "why was this allowed?" — an explain
# path with an untested branch is an explanation you cannot trust, so
# every file in the package keeps the floor individually.
PROVENANCE_COVER_FLOOR := 85.0
# The replication engine moves whole policies between mediators; an
# untested branch there is a fleet-wide policy bug, so every file in
# the package keeps the floor individually.
REPLICA_COVER_FLOOR := 85.0
# The compact node layout and the intern/dedup tables are what every
# million-node claim rests on; each new file keeps its own floor so the
# package average cannot hide a hole in the layout machinery.
LAYOUT_COVER_FLOOR := 85.0
cover:
	$(GO) test -coverprofile=cover.out ./internal/monitor/...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	echo "internal/monitor coverage: $$total% (floor $(MONITOR_COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$total >= $(MONITOR_COVER_FLOOR))}" || \
		{ echo "coverage below floor"; exit 1; }
	$(GO) test -coverprofile=cover-telemetry.out ./internal/telemetry/
	@total=$$($(GO) tool cover -func=cover-telemetry.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	echo "internal/telemetry coverage: $$total% (floor $(TELEMETRY_COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$total >= $(TELEMETRY_COVER_FLOOR))}" || \
		{ echo "coverage below floor"; exit 1; }
	$(GO) test -coverprofile=cover-names.out ./internal/names/
	@total=$$($(GO) tool cover -func=cover-names.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	echo "internal/names coverage: $$total% (floor $(NAMES_COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$total >= $(NAMES_COVER_FLOOR))}" || \
		{ echo "coverage below floor"; exit 1; }
	@batch=$$($(GO) tool cover -func=cover-names.out | awk '/internal\/names\/batch\.go/ {gsub(/%/,"",$$3); sum += $$3; n++} END {if (n) printf "%.1f", sum/n; else print 0}'); \
	echo "internal/names/batch.go coverage: $$batch% (floor $(BATCH_COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$batch >= $(BATCH_COVER_FLOOR))}" || \
		{ echo "batched-publisher coverage below floor"; exit 1; }
	@compiled=$$($(GO) tool cover -func=cover-names.out | awk '/internal\/names\/compiled\.go/ {gsub(/%/,"",$$3); sum += $$3; n++} END {if (n) printf "%.1f", sum/n; else print 0}'); \
	echo "internal/names/compiled.go coverage: $$compiled% (floor $(COMPILED_COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$compiled >= $(COMPILED_COVER_FLOOR))}" || \
		{ echo "compiled-epoch coverage below floor"; exit 1; }
	@for f in childref intern footprint bulk; do \
		avg=$$($(GO) tool cover -func=cover-names.out | awk "/internal\/names\/$$f\.go/ {gsub(/%/,\"\",\$$3); sum += \$$3; n++} END {if (n) printf \"%.1f\", sum/n; else print 0}"); \
		echo "internal/names/$$f.go coverage: $$avg% (floor $(LAYOUT_COVER_FLOOR)%)"; \
		awk "BEGIN {exit !($$avg >= $(LAYOUT_COVER_FLOOR))}" || \
			{ echo "compact-layout coverage below floor"; exit 1; }; \
	done
	$(GO) test -coverprofile=cover-acl.out ./internal/acl/
	@summary=$$($(GO) tool cover -func=cover-acl.out | awk '/internal\/acl\/summary\.go/ {gsub(/%/,"",$$3); sum += $$3; n++} END {if (n) printf "%.1f", sum/n; else print 0}'); \
	echo "internal/acl/summary.go coverage: $$summary% (floor $(SUMMARY_COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$summary >= $(SUMMARY_COVER_FLOOR))}" || \
		{ echo "acl-summary coverage below floor"; exit 1; }
	$(GO) test -coverprofile=cover-provenance.out ./internal/provenance/
	@$(GO) tool cover -func=cover-provenance.out | \
	awk '/internal\/provenance\/.*\.go/ {split($$1, p, ":"); gsub(/%/,"",$$3); sum[p[1]] += $$3; n[p[1]]++} \
	END {bad = 0; for (f in sum) {avg = sum[f]/n[f]; printf "%s coverage: %.1f%% (floor $(PROVENANCE_COVER_FLOOR)%%)\n", f, avg; \
	if (avg < $(PROVENANCE_COVER_FLOOR)) bad = 1} exit bad}' || \
		{ echo "provenance per-file coverage below floor"; exit 1; }
	$(GO) test -coverprofile=cover-replica.out ./internal/replica/
	@$(GO) tool cover -func=cover-replica.out | \
	awk '/internal\/replica\/.*\.go/ {split($$1, p, ":"); gsub(/%/,"",$$3); sum[p[1]] += $$3; n[p[1]]++} \
	END {bad = 0; for (f in sum) {avg = sum[f]/n[f]; printf "%s coverage: %.1f%% (floor $(REPLICA_COVER_FLOOR)%%)\n", f, avg; \
	if (avg < $(REPLICA_COVER_FLOOR)) bad = 1} exit bad}' || \
		{ echo "replica per-file coverage below floor"; exit 1; }
	$(GO) test -coverprofile=cover-lattice.out ./internal/lattice/
	@total=$$($(GO) tool cover -func=cover-lattice.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	echo "internal/lattice coverage: $$total% (floor $(LATTICE_COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$total >= $(LATTICE_COVER_FLOOR))}" || \
		{ echo "coverage below floor"; exit 1; }
	$(GO) test -coverprofile=cover-principal.out ./internal/principal/
	@total=$$($(GO) tool cover -func=cover-principal.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	echo "internal/principal coverage: $$total% (floor $(PRINCIPAL_COVER_FLOOR)%)"; \
	awk "BEGIN {exit !($$total >= $(PRINCIPAL_COVER_FLOOR))}" || \
		{ echo "coverage below floor"; exit 1; }

# bench-smoke compiles and exercises the E1 benchmarks for a fixed tiny
# iteration count, plus one iteration of the E16 churn family so the
# batched write path cannot bit-rot unnoticed; it validates the
# harness, not the numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench 'E1' -benchtime 100x .
	$(GO) test -run '^$$' -bench 'E16' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'E17' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'E18' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'E19' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'E20' -benchtime 1x .

# bench runs the full benchmark suite with allocation stats (slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-scale runs the E14 read-scaling experiment alone and writes
# BENCH_E14.json (snapshot tree vs RWMutex shim at 1..8 goroutines).
bench-scale:
	$(GO) run ./cmd/benchtab -json . E14

# bench-epoch runs the E15 policy-epoch experiment alone and writes
# BENCH_E15.json (frozen vs locked decision reads, mutation-publish
# cost, warm cached path).
bench-epoch:
	$(GO) run ./cmd/benchtab -json . E15

# bench-churn runs the E16 write-path-scaling experiment alone and
# writes BENCH_E16.json (incremental vs full freeze, batched vs
# unbatched bulk churn, sustained churn under readers).
bench-churn:
	$(GO) run ./cmd/benchtab -json . E16

# bench-resolve runs the E17 compiled-epoch resolve experiment alone
# and writes BENCH_E17.json (uncached compiled verdict vs spine walk vs
# warm cache hit, by path depth, plus the resolve-only split).
bench-resolve:
	$(GO) run ./cmd/benchtab -json . E17

# bench-explain runs the E18 decision-provenance experiment alone and
# writes BENCH_E18.json (warm and uncached check by telemetry mode with
# the shadow divergence monitor riding the sampler), then asserts the
# monitor keeps the sampled warm path inside the off mode's noise band.
bench-explain:
	$(GO) run ./cmd/benchtab -json . E18
	$(GO) test -run 'TestE18SampledWithinNoise' ./internal/experiments/

# bench-replica runs the E19 replica-fleet experiment alone and writes
# BENCH_E19.json (aggregate replica mediation throughput at fleet sizes
# 1/2/4 over loopback TCP, revocation-barrier wall time after a
# 64-epoch burst, and snapshot-vs-delta transfer cost).
bench-replica:
	$(GO) run ./cmd/benchtab -json . E19

# bench-load runs the E20 scale experiment at its full advertised size —
# a 10^6-node tree under 10^5 principals — and writes BENCH_E20.json
# (map-children baseline vs compact layout bytes/node, footprint
# accounting, and open-loop zipf CHECK latency over loopback TCP).
# Takes minutes and several GB of heap; the CI smoke runs the same code
# at the small defaults via bench-smoke / `benchtab E20`.
bench-load:
	SECEXT_E20_NODES=1000000 SECEXT_E20_PRINCIPALS=100000 SECEXT_E20_WINDOW_MS=2000 \
		$(GO) run ./cmd/benchtab -json . E20

# tables regenerates the EXPERIMENTS.md tables and writes structured
# BENCH_<ID>.json rows for machine consumers.
tables:
	$(GO) run ./cmd/benchtab -json .
