package secext_test

// The attack suite: every test is one concrete attack shape against the
// model, asserted to fail. Where S1-S4 show the intended behavior
// working, these show the unintended behaviors *not* working — the
// adversarial half of a security evaluation.

import (
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"secext"
	"secext/internal/remote"
	"secext/internal/replica"
)

func attackWorld(t *testing.T) *secext.World {
	t.Helper()
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct{ name, class string }{
		{"victim", "organization:{dept-1}"},
		{"mallory", "others"},
		{"insider", "organization:{dept-1}"}, // same compartment as victim
	} {
		if _, err := w.Sys.AddPrincipal(p.name, p.class); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func ctxA(t *testing.T, w *secext.World, name string) *secext.Context {
	t.Helper()
	ctx, err := w.Sys.NewContext(name)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestAttackConfusedDeputy: mallory asks a trusted service (the file
// service, which runs with no privilege of its own) to read victim's
// file for her. The service executes at the *caller's* context, so the
// deputy cannot be confused.
func TestAttackConfusedDeputy(t *testing.T) {
	w := attackWorld(t)
	victim := ctxA(t, w, "victim")
	if _, err := w.Sys.Call(victim, "/svc/fs/create", secext.FileRequest{Path: "/fs/v-secret"}); err != nil {
		t.Fatal(err)
	}
	mallory := ctxA(t, w, "mallory")
	if _, err := w.Sys.Call(mallory, "/svc/fs/read", secext.FileRequest{Path: "/fs/v-secret"}); !secext.IsDenied(err) {
		t.Fatalf("deputy read succeeded: %v", err)
	}
}

// TestAttackCapabilityOutlivesRevocation: an extension links a
// capability, the right is revoked, and under full mediation (the
// default) the stale capability is dead. Only the explicit
// TrustLinkTime opt-in keeps it alive, and Revalidate closes even that.
func TestAttackCapabilityOutlivesRevocation(t *testing.T) {
	w := attackWorld(t)
	tok, err := w.Sys.Registry().IssueToken("insider")
	if err != nil {
		t.Fatal(err)
	}
	err = w.Sys.RegisterService(secext.ServiceSpec{
		Path: "/svc/poke",
		ACL:  secext.NewACL(secext.AllowEveryone(secext.Execute | secext.Extend)),
		Base: secext.Binding{Owner: "base", Handler: func(ctx *secext.Context, arg any) (any, error) {
			return "base", nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := w.Sys.Loader().Load(secext.Manifest{
		Name: "holder", Principal: "insider", Token: tok,
		Imports: []string{"/svc/mbuf/alloc"},
		Code:    func() secext.Extension { return &holderExt{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	cap := rec.Linkage.MustCap("/svc/mbuf/alloc")
	if _, err := cap.Invoke(rec.Context, nil); err != nil {
		t.Fatalf("pre-revocation: %v", err)
	}
	// Revoke.
	if err := w.Sys.Names().SetACLUnchecked("/svc/mbuf/alloc",
		secext.NewACL(secext.Deny("insider", secext.Execute),
			secext.AllowEveryone(secext.List))); err != nil {
		t.Fatal(err)
	}
	if _, err := cap.Invoke(rec.Context, nil); !secext.IsDenied(err) {
		t.Fatalf("stale capability lived: %v", err)
	}
	// Revalidate evicts the extension outright.
	dropped, err := w.Sys.Loader().Revalidate()
	if err != nil || len(dropped) != 1 {
		t.Fatalf("Revalidate = %v, %v", dropped, err)
	}
}

type holderExt struct{}

func (holderExt) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	return map[string]secext.Handler{}, nil
}

// TestAttackTokenForgery: self-made and replayed-from-elsewhere tokens
// are rejected.
func TestAttackTokenForgery(t *testing.T) {
	w := attackWorld(t)
	for _, tok := range []string{
		"victim.AAAA", "victim.", "victim",
		"victim." + strings.Repeat("Q", 43),
	} {
		if _, err := w.Sys.NewContextFromToken(tok); err == nil {
			t.Errorf("forged token accepted: %q", tok)
		}
	}
	// A token from a *different* world (different HMAC secret) fails.
	other := attackWorld(t)
	foreign, err := other.Sys.Registry().IssueToken("victim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.NewContextFromToken(foreign); err == nil {
		t.Error("cross-world token accepted")
	}
}

// TestAttackPathTricks: dotted and malformed paths cannot escape or
// alias the hierarchy.
func TestAttackPathTricks(t *testing.T) {
	w := attackWorld(t)
	mallory := ctxA(t, w, "mallory")
	for _, path := range []string{
		"/fs/../svc/journal", "/fs/./x", "//fs", "/fs//x", "fs/x", "", "/fs/x/",
	} {
		if _, err := w.Sys.Call(mallory, "/svc/fs/read", secext.FileRequest{Path: path}); err == nil {
			t.Errorf("path trick %q succeeded", path)
		}
	}
}

// TestAttackManifestOverclaim: a manifest cannot smuggle a handler for
// a service it did not declare, and cannot claim a class label that
// amplifies its principal.
func TestAttackManifestOverclaim(t *testing.T) {
	w := attackWorld(t)
	tok, _ := w.Sys.Registry().IssueToken("mallory")
	// Handler for an undeclared service.
	m := secext.Manifest{
		Name: "smuggler", Principal: "mallory", Token: tok,
		Extends: []string{}, // declares nothing
		Code:    func() secext.Extension { return &smugglerExt{} },
	}
	if _, err := w.Sys.Loader().Load(m); err == nil {
		t.Fatal("undeclared handler accepted")
	}
	// A static class above the principal clamps down, not up: mallory
	// (others) claiming local still runs at others.
	m2 := secext.Manifest{
		Name: "climber", Principal: "mallory", Token: tok,
		StaticClass: "local:{dept-1,dept-2}",
		Code:        func() secext.Extension { return &holderExt{} },
	}
	rec, err := w.Sys.Loader().Load(m2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Context.Class().String() != "others" {
		t.Errorf("manifest amplified class to %s", rec.Context.Class())
	}
}

type smugglerExt struct{}

func (smugglerExt) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	return map[string]secext.Handler{
		"/svc/fs/read": func(ctx *secext.Context, arg any) (any, error) { return "pwned", nil },
	}, nil
}

// TestAttackLaunderThroughJournal: mallory (below) cannot use the
// append-only journal as a read channel — she can put information in
// but never get anything out.
func TestAttackLaunderThroughJournal(t *testing.T) {
	w := attackWorld(t)
	victim := ctxA(t, w, "victim")
	if _, err := w.Sys.Call(victim, "/svc/log/append", "victim's secret observation"); err != nil {
		t.Fatal(err)
	}
	mallory := ctxA(t, w, "mallory")
	if _, err := w.Sys.Call(mallory, "/svc/log/read", nil); !secext.IsDenied(err) {
		t.Fatalf("journal read-up: %v", err)
	}
}

// TestAttackEndpointSniffing: mallory cannot read, drain, or even
// measure another compartment's mailbox.
func TestAttackEndpointSniffing(t *testing.T) {
	w := attackWorld(t)
	victim := ctxA(t, w, "victim")
	if _, err := w.Sys.Call(victim, "/svc/net/open", secext.NetOpenRequest{Name: "v-inbox"}); err != nil {
		t.Fatal(err)
	}
	insider := ctxA(t, w, "insider")
	if _, err := w.Sys.Call(insider, "/svc/net/send",
		secext.NetSendRequest{Name: "v-inbox", Data: []byte("for victim only")}); err != nil {
		t.Fatal(err)
	}
	mallory := ctxA(t, w, "mallory")
	if _, err := w.Sys.Call(mallory, "/svc/net/recv", secext.NetRecvRequest{Name: "v-inbox"}); !secext.IsDenied(err) {
		t.Fatalf("mailbox drained: %v", err)
	}
	// The insider shares the compartment but is not the owner: DAC
	// still denies the read.
	if _, err := w.Sys.Call(insider, "/svc/net/recv", secext.NetRecvRequest{Name: "v-inbox"}); !secext.IsDenied(err) {
		t.Fatalf("insider drained mailbox: %v", err)
	}
}

// TestAttackAmplifyViaNestedDerive: no chain of derivations, with or
// without static classes, ever exceeds the root context's class.
func TestAttackAmplifyViaNestedDerive(t *testing.T) {
	w := attackWorld(t)
	root := ctxA(t, w, "mallory")
	top, _ := w.Sys.Lattice().Top()
	ctx := root
	for i := 0; i < 10; i++ {
		child, err := ctx.Derive("/svc/x", top) // try to climb every step
		if err != nil {
			t.Fatal(err)
		}
		if !root.Class().Dominates(child.Class()) {
			t.Fatalf("derivation %d amplified: %s", i, child.Class())
		}
		ctx = child
	}
}

// TestAttackShadowService: mallory cannot bind her own node over an
// existing service name, nor create look-alike services in protected
// domains.
func TestAttackShadowService(t *testing.T) {
	w := attackWorld(t)
	mallory := ctxA(t, w, "mallory")
	bot, _ := w.Sys.Lattice().Bottom()
	// Overwrite an existing name: structural ErrExists even before
	// access is considered (and access would deny anyway).
	if _, err := w.Sys.Bind(mallory, "/svc/fs", secext.BindSpec{
		Name: "read", Kind: secext.KindMethod, Class: bot,
	}); err == nil {
		t.Fatal("service name shadowed")
	}
	// Create a new name in the service domain: /svc allows nobody
	// write.
	if _, err := w.Sys.Bind(mallory, "/svc", secext.BindSpec{
		Name: "fs2", Kind: secext.KindInterface, Class: bot,
	}); !secext.IsDenied(err) {
		t.Fatalf("look-alike interface created: %v", err)
	}
}

// TestAttackAuditTampering: subjects cannot silence the audit log
// through any mediated interface — there simply is none; the log is
// reachable only through the System value the host holds.
func TestAttackAuditTampering(t *testing.T) {
	w := attackWorld(t)
	mallory := ctxA(t, w, "mallory")
	// The journal is not the audit log; there is no name-space node for
	// the audit log to attack.
	if _, err := w.Sys.Names().ResolveUnchecked("/svc/audit"); err == nil {
		t.Skip("audit exposed in the name space; revisit this test")
	}
	before := w.Sys.Audit().Stats().Total
	_, _ = w.Sys.Call(mallory, "/svc/fs/read", secext.FileRequest{Path: "/fs/nope"})
	if w.Sys.Audit().Stats().Total <= before {
		t.Error("denied call left no audit trace")
	}
}

// TestAttackCachedGrantOutlivesRevocation: the decision cache memoizes
// granted verdicts, so an attacker who held a right hammers the same
// check after revocation, hoping the fast path serves the stale grant.
// Generation invalidation defeats it: every protection-state mutation
// (group membership, ACL edit, relabel) bumps the generation, so the
// very next check after the revocation recomputes and denies.
func TestAttackCachedGrantOutlivesRevocation(t *testing.T) {
	w := attackWorld(t)
	reg := w.Sys.Registry()
	if err := reg.AddGroup("project"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddMember("project", "insider"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.CreateNode(secext.NodeSpec{
		Path: "/fs/plans", Kind: secext.KindFile,
		ACL:   secext.NewACL(secext.AllowGroup("project", secext.Read)),
		Class: w.Sys.Lattice().MustClass("organization", "dept-1"),
	}); err != nil {
		t.Fatal(err)
	}
	insider := ctxA(t, w, "insider")

	// Warm the cache: repeated checks are served from the fast path.
	for i := 0; i < 3; i++ {
		if _, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read); err != nil {
			t.Fatalf("check %d while entitled: %v", i, err)
		}
	}

	// Revocation #1: insider is dropped from the project group.
	if err := reg.RemoveMember("project", "insider"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read); !secext.IsDenied(err) {
		t.Fatalf("cached grant outlived group removal: %v", err)
	}

	// Re-grant directly, warm again, then revoke by ACL edit.
	if err := w.Sys.Names().SetACLUnchecked("/fs/plans",
		secext.NewACL(secext.Allow("insider", secext.Read))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read); err != nil {
			t.Fatalf("re-granted check %d: %v", i, err)
		}
	}
	if err := w.Sys.Names().SetACLUnchecked("/fs/plans", secext.NewACL()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read); !secext.IsDenied(err) {
		t.Fatalf("cached grant outlived ACL revocation: %v", err)
	}

	// Re-grant, warm, then revoke by relabeling above insider's class.
	if err := w.Sys.Names().SetACLUnchecked("/fs/plans",
		secext.NewACL(secext.Allow("insider", secext.Read))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read); err != nil {
			t.Fatalf("relabel-setup check %d: %v", i, err)
		}
	}
	if err := w.Sys.Names().SetClassUnchecked("/fs/plans",
		w.Sys.Lattice().MustClass("local", "dept-1", "dept-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read); !secext.IsDenied(err) {
		t.Fatalf("cached grant outlived relabel: %v", err)
	}
}

// TestAttackStaleGrantUnderConcurrentRevocation extends the staleness
// check to the snapshot path: readers hammer the cached CheckData fast
// path while the ACL is revoked mid-flight. Every decision pins one
// published snapshot, so the instant the revoking publish lands, any
// check that starts afterwards pins a version at or past it and must
// deny — no stale grant can be served from the cache, and no reader
// ever sees the revocation "flicker" back to a grant. Run with -race.
func TestAttackStaleGrantUnderConcurrentRevocation(t *testing.T) {
	w := attackWorld(t)
	if _, err := w.Sys.CreateNode(secext.NodeSpec{
		Path: "/fs/plans", Kind: secext.KindFile,
		ACL:   secext.NewACL(secext.Allow("insider", secext.Read)),
		Class: w.Sys.Lattice().MustClass("organization", "dept-1"),
	}); err != nil {
		t.Fatal(err)
	}
	insider := ctxA(t, w, "insider")
	ns := w.Sys.Names()

	// revokedAt is the snapshot version observed after the revoking
	// publish; 0 until the revocation lands.
	var revokedAt atomic.Uint64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deniedOnce := false
			for i := 0; i < 5000; i++ {
				vr := revokedAt.Load() // read BEFORE the check starts
				_, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read)
				switch {
				case err == nil:
					if deniedOnce {
						t.Error("grant served after a denial: revocation flickered")
						return
					}
					if vr != 0 {
						t.Errorf("stale grant: check started after revocation (v%d) still granted", vr)
						return
					}
				case secext.IsDenied(err):
					deniedOnce = true
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Let readers warm the cache, then revoke once.
		for i := 0; i < 50; i++ {
			runtime.Gosched()
		}
		if err := ns.SetACLUnchecked("/fs/plans", secext.NewACL()); err != nil {
			t.Errorf("revoke: %v", err)
			return
		}
		revokedAt.Store(ns.Version())
	}()
	wg.Wait()

	if _, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read); !secext.IsDenied(err) {
		t.Fatalf("post-revocation check: %v, want denial", err)
	}
}

// TestAttackStaleGrantUnderConcurrentGroupRevocation is the registry
// form of the staleness attack: insider holds access only through a
// group, and the group membership is revoked while readers hammer the
// cached fast path. Membership is policy state bundled in the epoch, so
// the revoking RemoveMember publishes a new epoch before returning —
// any check that starts afterwards pins an epoch at or past the
// revocation and must judge the group ACL against the revoked
// membership. No stale grant, no flicker. Run with -race.
func TestAttackStaleGrantUnderConcurrentGroupRevocation(t *testing.T) {
	w := attackWorld(t)
	reg := w.Sys.Registry()
	if err := reg.AddGroup("project"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddMember("project", "insider"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.CreateNode(secext.NodeSpec{
		Path: "/fs/plans", Kind: secext.KindFile,
		ACL:   secext.NewACL(secext.AllowGroup("project", secext.Read)),
		Class: w.Sys.Lattice().MustClass("organization", "dept-1"),
	}); err != nil {
		t.Fatal(err)
	}
	insider := ctxA(t, w, "insider")
	ns := w.Sys.Names()

	// revokedAt is the epoch version observed after the revoking
	// publish; 0 until the revocation lands.
	var revokedAt atomic.Uint64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deniedOnce := false
			for i := 0; i < 5000; i++ {
				vr := revokedAt.Load() // read BEFORE the check starts
				_, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read)
				switch {
				case err == nil:
					if deniedOnce {
						t.Error("grant served after a denial: membership revocation flickered")
						return
					}
					if vr != 0 {
						t.Errorf("stale grant: check started after revocation (v%d) still granted", vr)
						return
					}
				case secext.IsDenied(err):
					deniedOnce = true
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Let readers warm the cache, then revoke the membership once.
		for i := 0; i < 50; i++ {
			runtime.Gosched()
		}
		if err := reg.RemoveMember("project", "insider"); err != nil {
			t.Errorf("revoke membership: %v", err)
			return
		}
		revokedAt.Store(ns.Version())
	}()
	wg.Wait()

	if _, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read); !secext.IsDenied(err) {
		t.Fatalf("post-revocation check: %v, want denial", err)
	}
}

// TestAttackBatchedRevocationNotDelayed attacks the write-combining
// epoch publisher's ordering contract: with concurrent mutators forcing
// the revocation to ride a batch, the version RemoveMemberAt returns to
// the revoker must already enforce the revocation — any reader that
// pins an epoch at or past that version and still gets a grant has
// found a window where batching delayed enforcement, not just
// publication. Run with -race.
func TestAttackBatchedRevocationNotDelayed(t *testing.T) {
	w := attackWorld(t)
	reg := w.Sys.Registry()
	ns := w.Sys.Names()
	if err := reg.AddGroup("project"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddGroup("noise"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddMember("project", "insider"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.CreateNode(secext.NodeSpec{
		Path: "/fs/plans", Kind: secext.KindFile,
		ACL:   secext.NewACL(secext.AllowGroup("project", secext.Read)),
		Class: w.Sys.Lattice().MustClass("organization", "dept-1"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.CreateNode(secext.NodeSpec{
		Path: "/fs/churn", Kind: secext.KindFile,
		ACL:   secext.NewACL(secext.Allow("victim", secext.Read)),
		Class: w.Sys.Lattice().MustClass("organization", "dept-1"),
	}); err != nil {
		t.Fatal(err)
	}
	insider := ctxA(t, w, "insider")

	// revokedAt is the epoch version RemoveMemberAt returned; 0 until
	// the revocation lands.
	var revokedAt atomic.Uint64
	stop := make(chan struct{})
	var wg, wgNoise sync.WaitGroup

	// Noise mutators keep the batched publisher busy on both the
	// registry and name-tree shards, so the revocation coalesces with
	// unrelated mutations instead of publishing alone. They run until
	// the readers and the revoker are done (their own WaitGroup).
	for m := 0; m < 2; m++ {
		wgNoise.Add(1)
		go func(m int) {
			defer wgNoise.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if m == 0 {
					reg.AddMember("noise", "mallory")
					reg.RemoveMember("noise", "mallory")
				} else {
					ns.SetACLUnchecked("/fs/churn",
						secext.NewACL(secext.Allow("victim", secext.Read)))
				}
			}
		}(m)
	}

	// Readers: pin an epoch, then check. If the pinned epoch is at or
	// past the version returned to the revoker, the check must deny —
	// the contract says no reader observes epoch >= that version
	// without the revocation applied.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				ep := ns.Current() // pin BEFORE the check starts
				_, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read)
				vr := revokedAt.Load()
				switch {
				case err == nil:
					if vr != 0 && ep.Version() >= vr {
						t.Errorf("stale grant: pinned epoch v%d >= revocation v%d but check granted", ep.Version(), vr)
						return
					}
				case secext.IsDenied(err):
					// Denial is always acceptable post-enqueue.
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			runtime.Gosched()
		}
		v, err := reg.RemoveMemberAt("project", "insider")
		if err != nil {
			t.Errorf("revoke membership: %v", err)
			return
		}
		revokedAt.Store(v)
		// The returned version must itself already be published and
		// enforce the revocation: check synchronously at that version.
		if cur := ns.Version(); cur < v {
			t.Errorf("RemoveMemberAt returned v%d but published epoch is v%d", v, cur)
		}
		if _, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read); !secext.IsDenied(err) {
			t.Errorf("check immediately after revocation returned: %v, want denial", err)
		}
	}()
	wg.Wait()
	close(stop)
	wgNoise.Wait()
	if _, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read); !secext.IsDenied(err) {
		t.Fatalf("post-revocation check: %v, want denial", err)
	}
}

// TestAttackStaleCompiledSummary attacks the compiled-epoch freeze
// pipeline: every epoch carries freeze-time effective-ACL bitsets, so a
// revocation that fails to recompile the group-sensitive summary would
// keep granting from stale bits even though entry iteration denies.
// Readers race the revocation through the compiled fast path directly
// (CompiledAllows on pinned epochs — the uncached route CheckAccess
// takes on a cache miss) while noise mutators keep the revocation
// riding shared batches; any pinned epoch at or past the version
// RemoveMemberAt returned whose bitsets still grant is a stale compiled
// summary. Companion to TestAttackBatchedRevocationNotDelayed, one
// layer down. Run with -race.
func TestAttackStaleCompiledSummary(t *testing.T) {
	w := attackWorld(t)
	reg := w.Sys.Registry()
	ns := w.Sys.Names()
	for _, g := range []string{"project", "noise"} {
		if err := reg.AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.AddMember("project", "insider"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.CreateNode(secext.NodeSpec{
		Path: "/fs/plans", Kind: secext.KindFile,
		ACL:   secext.NewACL(secext.AllowGroup("project", secext.Read)),
		Class: w.Sys.Lattice().MustClass("organization", "dept-1"),
	}); err != nil {
		t.Fatal(err)
	}
	insider := ctxA(t, w, "insider")
	insiderP, err := reg.Principal("insider")
	if err != nil {
		t.Fatal(err)
	}
	cls := insiderP.Class()

	// Sanity: the current epoch's compiled bitsets grant through the
	// group, and the fast path decides the allow — otherwise the race
	// below would not be exercising compiled state at all.
	ep0 := ns.Current()
	if g, ok := ep0.CompiledGrants("/fs/plans", "insider"); !ok || g&secext.Read == 0 {
		t.Fatalf("compiled summary does not grant pre-revocation (mode %v, ok %v)", g, ok)
	}
	if _, decided := ep0.CompiledAllows(insiderP, cls, "/fs/plans", secext.Read); !decided {
		t.Fatal("compiled fast path undecided pre-revocation")
	}

	var revokedAt atomic.Uint64
	stop := make(chan struct{})
	var wg, wgNoise sync.WaitGroup
	for m := 0; m < 2; m++ {
		wgNoise.Add(1)
		go func(m int) {
			defer wgNoise.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if m == 0 {
					reg.AddMember("noise", "mallory")
					reg.RemoveMember("noise", "mallory")
				} else {
					ns.SetACLUnchecked("/fs/churn",
						secext.NewACL(secext.Allow("victim", secext.Read)))
				}
			}
		}(m)
	}
	if _, err := w.Sys.CreateNode(secext.NodeSpec{
		Path: "/fs/churn", Kind: secext.KindFile,
		ACL:   secext.NewACL(secext.Allow("victim", secext.Read)),
		Class: w.Sys.Lattice().MustClass("organization", "dept-1"),
	}); err != nil {
		t.Fatal(err)
	}

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				ep := ns.Current() // pin BEFORE the probe
				_, decided := ep.CompiledAllows(insiderP, cls, "/fs/plans", secext.Read)
				vr := revokedAt.Load()
				if decided && vr != 0 && ep.Version() >= vr {
					t.Errorf("stale compiled summary: pinned epoch v%d >= revocation v%d still grants",
						ep.Version(), vr)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			runtime.Gosched()
		}
		v, err := reg.RemoveMemberAt("project", "insider")
		if err != nil {
			t.Errorf("revoke membership: %v", err)
			return
		}
		revokedAt.Store(v)
		// The very next epoch — the one the revoker's returned version
		// names — must already carry recompiled bitsets that deny.
		ep := ns.Current()
		if ep.Version() < v {
			t.Errorf("RemoveMemberAt returned v%d but published epoch is v%d", v, ep.Version())
		}
		if g, ok := ep.CompiledGrants("/fs/plans", "insider"); !ok || g&secext.Read != 0 {
			t.Errorf("compiled summary still grants at v%d (mode %v, ok %v)", ep.Version(), g, ok)
		}
		if _, decided := ep.CompiledAllows(insiderP, cls, "/fs/plans", secext.Read); decided {
			t.Errorf("compiled fast path still allows at v%d", ep.Version())
		}
	}()
	wg.Wait()
	close(stop)
	wgNoise.Wait()

	// End to end, through the monitor: denied.
	if _, err := w.Sys.CheckData(insider, "/fs/plans", secext.Read); !secext.IsDenied(err) {
		t.Fatalf("post-revocation check: %v, want denial", err)
	}
}

// TestAttackFleetRevocationBarrier is the distributed form of the
// staleness attack: the insider's grant is cached on a fleet of
// replica mediators, and the revoker wants the revocation to hold
// fleet-wide, not just on the primary. The revoking administrator
// publishes the new ACL and raises the revocation barrier; once
// Barrier returns, no replica may grant under the old epoch — checker
// goroutines hammer every replica throughout and flag any grant that
// starts after the barrier. Then the attack's second half: the stream
// to one replica is severed entirely, and the replica must fail
// closed (deny everything) once its staleness deadline passes, rather
// than serving its last-known policy forever. Run with -race.
func TestAttackFleetRevocationBarrier(t *testing.T) {
	w := attackWorld(t)
	if _, err := w.Sys.CreateNode(secext.NodeSpec{
		Path: "/fs/plans", Kind: secext.KindFile,
		ACL:   secext.NewACL(secext.Allow("insider", secext.Read)),
		Class: w.Sys.Lattice().MustClass("organization", "dept-1"),
	}); err != nil {
		t.Fatal(err)
	}
	// Replication plumbing: a replicator principal holding administrate
	// on the root, a publisher on the primary's server, two replicas.
	if _, err := w.Sys.AddPrincipal("replicator", "others"); err != nil {
		t.Fatal(err)
	}
	rootACL, err := w.Sys.Names().ACLOf("/")
	if err != nil {
		t.Fatal(err)
	}
	rootACL.Add(secext.Allow("replicator", secext.Administrate))
	if err := w.Sys.Names().SetACLUnchecked("/", rootACL); err != nil {
		t.Fatal(err)
	}
	rtok, err := w.Sys.Registry().IssueToken("replicator")
	if err != nil {
		t.Fatal(err)
	}
	insiderTok, err := w.Sys.Registry().IssueToken("insider")
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(w.Sys)
	srv.PingInterval = 25 * time.Millisecond
	pub := replica.NewPublisher(w.Sys)
	srv.SetPublisher(pub)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer func() { pub.Close(); srv.Close(); l.Close() }()

	const fleet = 2
	reps := make([]*replica.Replica, fleet)
	ctxs := make([]*secext.Context, fleet)
	for i := range reps {
		r, err := replica.Connect(replica.Options{
			Addr: l.Addr().String(), Token: rtok, StaleAfter: 250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		reps[i] = r
		ctxs[i], err = r.System().NewContextFromToken(insiderTok)
		if err != nil {
			t.Fatal(err)
		}
		// Warm the replica's decision cache with the doomed grant.
		if _, err := r.System().CheckData(ctxs[i], "/fs/plans", secext.Read); err != nil {
			t.Fatalf("pre-revocation grant missing on replica %d: %v", i, err)
		}
	}

	// barrierDone flips AFTER Barrier returns: any check that reads it
	// as true before starting and still gets a grant is a stale grant
	// the barrier promised could not exist.
	var barrierDone atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < fleet; i++ {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sys, ctx := reps[i].System(), ctxs[i]
				for {
					select {
					case <-stop:
						return
					default:
					}
					done := barrierDone.Load() // read BEFORE the check starts
					_, err := sys.CheckData(ctx, "/fs/plans", secext.Read)
					if err == nil && done {
						t.Errorf("replica %d granted after the revocation barrier returned", i)
						return
					}
					if err != nil && !secext.IsDenied(err) {
						t.Errorf("replica %d unexpected error: %v", i, err)
						return
					}
				}
			}(i)
		}
	}

	// The revocation: publish, then raise the fleet-wide barrier.
	v, err := w.Sys.Names().SetACLUncheckedAt("/fs/plans", secext.NewACL())
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Barrier(v, 10*time.Second); err != nil {
		t.Fatalf("revocation barrier: %v", err)
	}
	barrierDone.Store(true)
	// Let the checkers observe the post-barrier world for a while.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	for i, r := range reps {
		if _, err := r.System().CheckData(ctxs[i], "/fs/plans", secext.Read); !secext.IsDenied(err) {
			t.Fatalf("replica %d post-barrier check: %v, want denial", i, err)
		}
	}

	// Second half: sever the fleet. Every replica must fail closed —
	// not just the revoked path; everything — after its deadline.
	pub.Close()
	srv.Close()
	l.Close()
	deadline := time.Now().Add(5 * time.Second)
	for i, r := range reps {
		for !r.Stale() {
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never failed closed after the stream was severed", i)
			}
			time.Sleep(time.Millisecond)
		}
		if _, err := r.System().CheckData(ctxs[i], "/fs/plans", secext.Read); !secext.IsDenied(err) {
			t.Fatalf("severed replica %d still answers: %v, want denial", i, err)
		}
		if _, err := r.System().CheckData(ctxs[i], "/svc", secext.List); !secext.IsDenied(err) {
			t.Fatalf("severed replica %d grants an unrelated path: %v, want denial", i, err)
		}
	}
}
