package secext_test

// Benchmarks, one family per experiment table in EXPERIMENTS.md
// (E1-E8, E10, plus the S1 matrix). cmd/benchtab prints the same
// measurements as formatted tables; these are the `go test -bench`
// versions.

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"secext"
	"secext/internal/acl"
	"secext/internal/baseline"
	"secext/internal/baseline/domains"
	"secext/internal/baseline/ntacl"
	"secext/internal/baseline/sandbox"
	"secext/internal/baseline/unixmode"
	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/lattice"
	"secext/internal/load"
	"secext/internal/names"
	"secext/internal/remote"
	"secext/internal/replica"
	"secext/internal/subject"
)

// benchWorld builds a quiet world with one principal and one file.
func benchWorld(b testing.TB) (*secext.World, *secext.Context) {
	b.Helper()
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:       []string{"others", "organization", "local"},
		Categories:   []string{"dept-1", "dept-2"},
		DisableAudit: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		b.Fatal(err)
	}
	ctx, err := w.Sys.NewContext("alice")
	if err != nil {
		b.Fatal(err)
	}
	open := secext.NewACL(secext.AllowEveryone(secext.Read | secext.Write | secext.WriteAppend))
	if err := w.FS.Create(ctx, "/fs/f", open, ctx.Class()); err != nil {
		b.Fatal(err)
	}
	return w, ctx
}

// --- E1: access-check latency by model ---

func BenchmarkE1CheckLatencySecextFull(b *testing.B) {
	w, ctx := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1CheckLatencySecextDACOnly(b *testing.B) {
	_, ctx := benchWorld(b)
	a := acl.New(acl.Allow("alice", acl.Read|acl.Write), acl.AllowEveryone(acl.List))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !a.Check(ctx, acl.Read) {
			b.Fatal("deny")
		}
	}
}

func BenchmarkE1CheckLatencySecextMACOnly(b *testing.B) {
	_, ctx := benchWorld(b)
	obj := ctx.Class()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ctx.Class().CanRead(obj) {
			b.Fatal("deny")
		}
	}
}

func BenchmarkE1CheckLatencySandbox(b *testing.B) {
	sb := sandbox.New([]string{"trusted"}, []string{"/fs"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.CheckCall("alice", "/svc/x")
	}
}

func BenchmarkE1CheckLatencyDomains(b *testing.B) {
	dm := domains.New()
	dm.DefineDomain("fs", "/svc/fs")
	if err := dm.Link("alice", "fs"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dm.CheckCall("alice", "/svc/fs/read")
	}
}

func BenchmarkE1CheckLatencyUnix(b *testing.B) {
	ux := unixmode.New()
	ux.SetObject("/fs/f", "alice", "staff", 0o644)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ux.CheckData("alice", "/fs/f", baseline.OpRead)
	}
}

func BenchmarkE1CheckLatencyNTACL(b *testing.B) {
	nt := ntacl.New()
	nt.SetACL("/fs/f", ntacl.Entry{Subject: "alice", Rights: ntacl.Read | ntacl.Write})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nt.Check("alice", "/fs/f", ntacl.Read)
	}
}

// runParallel splits b.N across exactly `goroutines` workers — unlike
// b.RunParallel, which keys on GOMAXPROCS, this pins the concurrency
// level so 1/4/16-goroutine rows are comparable across machines.
func runParallel(b *testing.B, goroutines int, fn func(n int)) {
	b.Helper()
	var wg sync.WaitGroup
	per, extra := b.N/goroutines, b.N%goroutines
	b.ResetTimer()
	for g := 0; g < goroutines; g++ {
		n := per
		if g < extra {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			fn(n)
		}(n)
	}
	wg.Wait()
}

var parallelLevels = []int{1, 4, 16}

// BenchmarkE1CheckParallel is the contended variant of E1: identical
// warm checks from 1/4/16 goroutines. With the decision cache on, every
// iteration is a lock-free cache hit.
func BenchmarkE1CheckParallel(b *testing.B) {
	for _, g := range parallelLevels {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			w, ctx := benchWorld(b)
			if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
				b.Fatal(err)
			}
			runParallel(b, g, func(n int) {
				for i := 0; i < n; i++ {
					if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// TestCachedCheckZeroAllocs is the allocs-per-op guard the fast path is
// held to: a warm mediated check (audit off) must not allocate.
func TestCachedCheckZeroAllocs(t *testing.T) {
	w, ctx := benchWorld(t)
	if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached check allocates %.1f objects/op, want 0", allocs)
	}
}

// --- E2: ACL size scaling ---

type benchSubject string

func (s benchSubject) SubjectName() string  { return string(s) }
func (s benchSubject) MemberOf(string) bool { return false }

func BenchmarkE2ACLScale(b *testing.B) {
	for _, size := range []int{1, 4, 16, 64, 256, 1024} {
		a := acl.New()
		for i := 0; i < size; i++ {
			a.Add(acl.Allow("p"+strconv.Itoa(i), acl.Read))
		}
		last := benchSubject("p" + strconv.Itoa(size-1))
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.Check(last, acl.Read)
			}
		})
	}
}

// --- E3: lattice ops vs category universe ---

func BenchmarkE3Lattice(b *testing.B) {
	for _, size := range []int{4, 16, 64, 256, 1024} {
		cats := make([]string, size)
		for i := range cats {
			cats[i] = "c" + strconv.Itoa(i)
		}
		lat, err := lattice.NewWithUniverse([]string{"lo", "hi"}, cats)
		if err != nil {
			b.Fatal(err)
		}
		var aCats []string
		for i := 0; i < size; i += 2 {
			aCats = append(aCats, cats[i])
		}
		x := lat.MustClass("hi", aCats...)
		y := lat.MustClass("lo", cats[:size/2]...)
		b.Run(fmt.Sprintf("cats=%d/dominates", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.Dominates(y)
			}
		})
		b.Run(fmt.Sprintf("cats=%d/join", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				x.Join(y)
			}
		})
	}
}

// --- E4: name resolution depth ---

func deepNames(b *testing.B, depth int) (*core.System, *subject.Context, string) {
	b.Helper()
	sys, err := core.NewSystem(core.Options{Levels: []string{"lo"}, DisableAudit: true})
	if err != nil {
		b.Fatal(err)
	}
	listable := acl.New(acl.AllowEveryone(acl.List))
	path := ""
	for i := 0; i < depth-1; i++ {
		path += "/n" + strconv.Itoa(i)
		if _, err := sys.CreateNode(core.NodeSpec{Path: path, Kind: names.KindDomain, ACL: listable}); err != nil {
			b.Fatal(err)
		}
	}
	leaf := path + "/leaf"
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: leaf, Kind: names.KindFile, ACL: acl.New(acl.AllowEveryone(acl.Read)),
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.AddPrincipal("p", "lo"); err != nil {
		b.Fatal(err)
	}
	ctx, err := sys.NewContext("p")
	if err != nil {
		b.Fatal(err)
	}
	return sys, ctx, leaf
}

func BenchmarkE4Lookup(b *testing.B) {
	for _, depth := range []int{2, 4, 8, 16, 32} {
		sys, ctx, leaf := deepNames(b, depth)
		b.Run(fmt.Sprintf("depth=%d/checked", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.CheckData(ctx, leaf, acl.Read); err != nil {
					b.Fatal(err)
				}
			}
		})
		sys.Names().SetTraversalChecks(false)
		b.Run(fmt.Sprintf("depth=%d/unchecked", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.CheckData(ctx, leaf, acl.Read); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: class-based dispatch ---

func BenchmarkE5Dispatch(b *testing.B) {
	noop := func(ctx *subject.Context, arg any) (any, error) { return nil, nil }
	for _, count := range []int{1, 2, 4, 8, 16, 32} {
		cats := make([]string, count)
		for i := range cats {
			cats[i] = "c" + strconv.Itoa(i)
		}
		sys, err := core.NewSystem(core.Options{
			Levels: []string{"lo", "hi"}, Categories: cats, DisableAudit: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.RegisterService(core.ServiceSpec{
			Path: "/s", ACL: acl.New(acl.AllowEveryone(acl.Execute)),
			Base: dispatch.Binding{Owner: "base", Handler: noop},
		}); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < count; i++ {
			if err := sys.Dispatcher().Extend("/s", dispatch.Binding{
				Owner:   "ext" + strconv.Itoa(i),
				Static:  sys.Lattice().MustClass("lo", cats[i]),
				Handler: noop,
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sys.AddPrincipal("caller", "hi:{"+cats[count-1]+"}"); err != nil {
			b.Fatal(err)
		}
		ctx, err := sys.NewContext("caller")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("handlers=%d", count), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.Call(ctx, "/s", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: link-time checking ---

type nullExt struct{}

func (nullExt) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	return map[string]secext.Handler{}, nil
}

func BenchmarkE6Link(b *testing.B) {
	noop := func(ctx *subject.Context, arg any) (any, error) { return nil, nil }
	for _, count := range []int{1, 8, 64, 256} {
		sys, err := core.NewSystem(core.Options{Levels: []string{"lo"}, DisableAudit: true})
		if err != nil {
			b.Fatal(err)
		}
		imports := make([]string, count)
		for i := 0; i < count; i++ {
			p := "/s" + strconv.Itoa(i)
			if err := sys.RegisterService(core.ServiceSpec{
				Path: p, ACL: acl.New(acl.AllowEveryone(acl.Execute)),
				Base: dispatch.Binding{Owner: "b", Handler: noop},
			}); err != nil {
				b.Fatal(err)
			}
			imports[i] = p
		}
		if _, err := sys.AddPrincipal("vendor", "lo"); err != nil {
			b.Fatal(err)
		}
		tok, err := sys.Registry().IssueToken("vendor")
		if err != nil {
			b.Fatal(err)
		}
		seq := 0
		b.Run(fmt.Sprintf("imports=%d", count), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := secext.Manifest{
					Name:      fmt.Sprintf("e%d-%d", count, seq),
					Principal: "vendor", Token: tok,
					Imports: imports,
					Code:    func() secext.Extension { return nullExt{} },
				}
				seq++
				if _, err := sys.Loader().Load(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: end-to-end null call ---

func e7System(b *testing.B) (*core.System, *subject.Context) {
	b.Helper()
	sys, err := core.NewSystem(core.Options{Levels: []string{"lo"}, AuditCapacity: 4096})
	if err != nil {
		b.Fatal(err)
	}
	noop := func(ctx *subject.Context, arg any) (any, error) { return nil, nil }
	if err := sys.RegisterService(core.ServiceSpec{
		Path: "/null", ACL: acl.New(acl.AllowEveryone(acl.Execute)),
		Base: dispatch.Binding{Owner: "b", Handler: noop},
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.AddPrincipal("p", "lo"); err != nil {
		b.Fatal(err)
	}
	ctx, err := sys.NewContext("p")
	if err != nil {
		b.Fatal(err)
	}
	return sys, ctx
}

func BenchmarkE7CallRawDispatch(b *testing.B) {
	sys, ctx := e7System(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Dispatcher().Invoke("/null", ctx, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7CallMediatedAuditOff(b *testing.B) {
	sys, ctx := e7System(b)
	sys.Audit().SetEnabled(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Call(ctx, "/null", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7CallMediatedAuditOn(b *testing.B) {
	sys, ctx := e7System(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Call(ctx, "/null", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7CallLinkedTrusted(b *testing.B) {
	sys, ctx := e7System(b)
	sys.Audit().SetEnabled(false)
	sys.SetTrustLinkTime(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.CallLinked(ctx, "/null", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7CallParallel is the contended variant of E7: the full
// mediated null call (check + dispatch) from 1/4/16 goroutines, audit
// off.
func BenchmarkE7CallParallel(b *testing.B) {
	for _, g := range parallelLevels {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			sys, ctx := e7System(b)
			sys.Audit().SetEnabled(false)
			if _, err := sys.Call(ctx, "/null", nil); err != nil {
				b.Fatal(err)
			}
			runParallel(b, g, func(n int) {
				for i := 0; i < n; i++ {
					if _, err := sys.Call(ctx, "/null", nil); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// --- E11: decision-cache contention ---

// e11World builds the E11 fixture: a quiet world, one principal, one
// file, optionally without the decision cache.
func e11World(b testing.TB, disableCache bool) (*secext.World, *secext.Context) {
	b.Helper()
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:               []string{"others", "organization", "local"},
		Categories:           []string{"dept-1", "dept-2"},
		DisableAudit:         true,
		DisableDecisionCache: disableCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		b.Fatal(err)
	}
	ctx, err := w.Sys.NewContext("alice")
	if err != nil {
		b.Fatal(err)
	}
	open := secext.NewACL(secext.AllowEveryone(secext.Read | secext.Write))
	if err := w.FS.Create(ctx, "/fs/f", open, ctx.Class()); err != nil {
		b.Fatal(err)
	}
	return w, ctx
}

// BenchmarkE11Contention compares four 16-goroutine workloads:
//
//	uncached — decision cache off; every check takes the RWMutex walk
//	cold     — cache on, but each worker invalidates before checking,
//	           so every check misses, recomputes, and republishes
//	warm     — steady state: every check is a lock-free hit
//	storm    — a background writer bumps the generation in a tight
//	           loop while 16 readers check (revocation storm)
func BenchmarkE11Contention(b *testing.B) {
	const goroutines = 16
	check := func(b *testing.B, w *secext.World, ctx *secext.Context, pre func()) {
		runParallel(b, goroutines, func(n int) {
			for i := 0; i < n; i++ {
				if pre != nil {
					pre()
				}
				if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
	b.Run("uncached", func(b *testing.B) {
		w, ctx := e11World(b, true)
		check(b, w, ctx, nil)
	})
	b.Run("cold", func(b *testing.B) {
		w, ctx := e11World(b, false)
		check(b, w, ctx, w.Sys.Registry().Touch)
	})
	b.Run("warm", func(b *testing.B) {
		w, ctx := e11World(b, false)
		if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
			b.Fatal(err)
		}
		check(b, w, ctx, nil)
	})
	b.Run("storm", func(b *testing.B) {
		w, ctx := e11World(b, false)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					w.Sys.Registry().Touch()
				}
			}
		}()
		check(b, w, ctx, nil)
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

// --- E8: group nesting ---

func BenchmarkE8Groups(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8, 16} {
		sys, err := core.NewSystem(core.Options{Levels: []string{"lo"}, DisableAudit: true})
		if err != nil {
			b.Fatal(err)
		}
		reg := sys.Registry()
		if _, err := sys.AddPrincipal("alice", "lo"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < depth; i++ {
			if err := reg.AddGroup("g" + strconv.Itoa(i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := reg.AddMember("g0", "alice"); err != nil {
			b.Fatal(err)
		}
		for i := 1; i < depth; i++ {
			if err := reg.AddMember("g"+strconv.Itoa(i), "g"+strconv.Itoa(i-1)); err != nil {
				b.Fatal(err)
			}
		}
		a := acl.New(acl.AllowGroup("g"+strconv.Itoa(depth-1), acl.Read))
		ctx, err := sys.NewContext("alice")
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !a.Check(ctx, acl.Read) {
					b.Fatal("deny")
				}
			}
		})
	}
}

// --- E10: mediated append ---

func BenchmarkE10Append(b *testing.B) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels: []string{"others", "local"}, DisableAudit: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("applet", "others"); err != nil {
		b.Fatal(err)
	}
	ctx, err := w.Sys.NewContext("applet")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Journal.Append(ctx, "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E16: write-path churn (batched publication, incremental freeze) ---

// e16World builds the E16 fixture: 64 member principals, a reader whose
// access flows through the churned group, audit off.
func e16World(b testing.TB) (*secext.World, *secext.Context, []string) {
	b.Helper()
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:       []string{"others", "organization", "local"},
		Categories:   []string{"dept-1", "dept-2"},
		DisableAudit: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	reg := w.Sys.Registry()
	if err := reg.AddGroup("churn"); err != nil {
		b.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		b.Fatal(err)
	}
	members := make([]string, 64)
	for i := range members {
		name := fmt.Sprintf("p%d", i)
		if _, err := w.Sys.AddPrincipal(name, "organization:{dept-1}"); err != nil {
			b.Fatal(err)
		}
		members[i] = name
	}
	if err := reg.AddMember("churn", "alice"); err != nil {
		b.Fatal(err)
	}
	ctx, err := w.Sys.NewContext("alice")
	if err != nil {
		b.Fatal(err)
	}
	grant := secext.NewACL(secext.AllowGroup("churn", secext.Read))
	if err := w.FS.Create(ctx, "/fs/churn", grant, ctx.Class()); err != nil {
		b.Fatal(err)
	}
	return w, ctx, members
}

// BenchmarkE16Churn is the benchmark form of E16's table: per-mutation
// publish cost with full vs incremental freeze, and the 64-member bulk
// op unbatched vs batched.
func BenchmarkE16Churn(b *testing.B) {
	b.Run("single-full-freeze", func(b *testing.B) {
		w, _, _ := e16World(b)
		reg := w.Sys.Registry()
		reg.SetIncrementalFreeze(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := reg.AddMember("churn", "p0"); err != nil {
				b.Fatal(err)
			}
			if err := reg.RemoveMember("churn", "p0"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-incremental", func(b *testing.B) {
		w, _, _ := e16World(b)
		reg := w.Sys.Registry()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := reg.AddMember("churn", "p0"); err != nil {
				b.Fatal(err)
			}
			if err := reg.RemoveMember("churn", "p0"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bulk64-unbatched", func(b *testing.B) {
		w, _, members := e16World(b)
		reg := w.Sys.Registry()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, m := range members {
				if err := reg.AddMember("churn", m); err != nil {
					b.Fatal(err)
				}
			}
			for _, m := range members {
				if err := reg.RemoveMember("churn", m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("bulk64-batched", func(b *testing.B) {
		w, _, members := e16World(b)
		reg := w.Sys.Registry()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := reg.AddMembers("churn", members...); err != nil {
				b.Fatal(err)
			}
			if _, err := reg.RemoveMembers("churn", members...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE16ChurnUnderReaders runs mutations while reader goroutines
// hammer the warm cached check — the sustained-churn shape of E16's
// concurrent row. Reported ns/op is per add+remove pair.
func BenchmarkE16ChurnUnderReaders(b *testing.B) {
	w, ctx, members := e16World(b)
	reg := w.Sys.Registry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Sys.CheckData(ctx, "/fs/churn", secext.Read); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.AddMember("churn", members[0]); err != nil {
			b.Fatal(err)
		}
		if err := reg.RemoveMember("churn", members[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// --- S1: full matrix evaluation ---

func BenchmarkS1OrgMatrix(b *testing.B) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:       []string{"others", "organization", "local"},
		Categories:   []string{"myself", "dept-1", "dept-2", "outside"},
		DisableAudit: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	classes := map[string]string{
		"user":     "local:{myself,dept-1,dept-2,outside}",
		"applet1":  "organization:{dept-1}",
		"applet2":  "organization:{dept-2}",
		"applet3":  "organization:{dept-1,dept-2}",
		"outsider": "others:{outside}",
	}
	var ctxs []*secext.Context
	for name, class := range classes {
		if _, err := w.Sys.AddPrincipal(name, class); err != nil {
			b.Fatal(err)
		}
		ctx, err := w.Sys.NewContext(name)
		if err != nil {
			b.Fatal(err)
		}
		ctxs = append(ctxs, ctx)
	}
	open := secext.NewACL(secext.AllowEveryone(secext.Read | secext.Write))
	var files []string
	for _, owner := range []string{"applet1", "applet2", "applet3"} {
		ctx, _ := w.Sys.NewContext(owner)
		path := "/fs/" + owner + "-file"
		if err := w.FS.Create(ctx, path, open, ctx.Class()); err != nil {
			b.Fatal(err)
		}
		files = append(files, path)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ctx := range ctxs {
			for _, f := range files {
				_, _ = w.Sys.CheckData(ctx, f, secext.Read)
			}
		}
	}
}

// --- E17: compiled-epoch resolve (uncached check vs warm hit) ---

// e17Names is deepNames with the decision cache disabled, so every
// CheckData exercises the uncached path the compiled epoch accelerates.
func e17Names(b testing.TB, depth int) (*core.System, *subject.Context, string) {
	sys, err := core.NewSystem(core.Options{
		Levels: []string{"lo"}, DisableAudit: true, DisableDecisionCache: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	listable := acl.New(acl.AllowEveryone(acl.List))
	path := ""
	for i := 0; i < depth-1; i++ {
		path += "/n" + strconv.Itoa(i)
		if _, err := sys.CreateNode(core.NodeSpec{Path: path, Kind: names.KindDomain, ACL: listable}); err != nil {
			b.Fatal(err)
		}
	}
	leaf := path + "/leaf"
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: leaf, Kind: names.KindFile, ACL: acl.New(acl.AllowEveryone(acl.Read)),
	}); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.AddPrincipal("p", "lo"); err != nil {
		b.Fatal(err)
	}
	ctx, err := sys.NewContext("p")
	if err != nil {
		b.Fatal(err)
	}
	return sys, ctx, leaf
}

// BenchmarkE17Resolve is the benchmark form of E17's table: the
// uncached mediated check with the compiled verdict on and off, plus
// the warm cached hit at the same depth for the band comparison.
func BenchmarkE17Resolve(b *testing.B) {
	for _, depth := range []int{2, 8, 32} {
		sys, ctx, leaf := e17Names(b, depth)
		b.Run(fmt.Sprintf("depth=%d/uncached-compiled", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.CheckData(ctx, leaf, acl.Read); err != nil {
					b.Fatal(err)
				}
			}
		})
		sys.Names().SetCompiledEpochs(false)
		b.Run(fmt.Sprintf("depth=%d/uncached-walk", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.CheckData(ctx, leaf, acl.Read); err != nil {
					b.Fatal(err)
				}
			}
		})
		sys.Names().SetCompiledEpochs(true)

		wsys, wctx, wleaf := deepNames(b, depth)
		if _, err := wsys.CheckData(wctx, wleaf, acl.Read); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("depth=%d/warm-hit", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wsys.CheckData(wctx, wleaf, acl.Read); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE17ResolveOnly isolates naming from verification at depth
// 32: the compiled index probe vs the checked spine walk.
func BenchmarkE17ResolveOnly(b *testing.B) {
	sys, ctx, leaf := e17Names(b, 32)
	ns := sys.Names()
	b.Run("index-probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ns.Resolve(ctx, ctx.Class(), leaf); err != nil {
				b.Fatal(err)
			}
		}
	})
	ns.SetCompiledEpochs(false)
	b.Run("spine-walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ns.Resolve(ctx, ctx.Class(), leaf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E18: shadow divergence monitor (decision provenance) ---

// e18World is benchWorld with a chosen telemetry mode and the decision
// cache optionally disabled: the shadow monitor only runs on traced,
// uncached checks, so the two knobs together select how often it fires.
func e18World(b testing.TB, mode secext.TelemetryMode, disableCache bool) (*secext.World, *secext.Context) {
	b.Helper()
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:               []string{"others", "organization", "local"},
		Categories:           []string{"dept-1", "dept-2"},
		DisableAudit:         true,
		DisableDecisionCache: disableCache,
		Telemetry:            secext.TelemetryOptions{Mode: mode},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		b.Fatal(err)
	}
	ctx, err := w.Sys.NewContext("alice")
	if err != nil {
		b.Fatal(err)
	}
	open := secext.NewACL(secext.AllowEveryone(secext.Read | secext.Write))
	if err := w.FS.Create(ctx, "/fs/f", open, ctx.Class()); err != nil {
		b.Fatal(err)
	}
	return w, ctx
}

// BenchmarkE18Shadow is the benchmark form of E18's table: the warm
// cached check and the uncached check, by telemetry mode. The claim is
// that "sampled" warm hits match "off" — the shadow comparison hides
// entirely behind the trace-selection branch — while "full/uncached"
// prices the monitor's worst case (every check walks twice).
func BenchmarkE18Shadow(b *testing.B) {
	modes := []struct {
		name string
		mode secext.TelemetryMode
	}{
		{"off", secext.TelemetryOff},
		{"sampled", secext.TelemetrySampled},
		{"full", secext.TelemetryFull},
	}
	for _, m := range modes {
		w, ctx := e18World(b, m.mode, false)
		if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
			b.Fatal(err)
		}
		b.Run(m.name+"/warm-hit", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
					b.Fatal(err)
				}
			}
		})
		uw, uctx := e18World(b, m.mode, true)
		b.Run(m.name+"/uncached", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := uw.Sys.CheckData(uctx, "/fs/f", secext.Read); err != nil {
					b.Fatal(err)
				}
			}
			if _, dv := uw.Sys.Names().DivergenceStats(); dv != 0 {
				b.Fatalf("%d divergences on an honest epoch", dv)
			}
		})
	}
}

// --- E19: replica mediation and the revocation barrier ---

// benchFleet wires a replication-enabled primary and n connected
// replicas over loopback TCP.
func benchFleet(b *testing.B, n int) (*secext.World, *replica.Publisher, []*replica.Replica, []*secext.Context, func()) {
	b.Helper()
	w, ctx := benchWorld(b)
	if _, err := w.Sys.AddPrincipal("replicator", "others"); err != nil {
		b.Fatal(err)
	}
	rootACL, err := w.Sys.Names().ACLOf("/")
	if err != nil {
		b.Fatal(err)
	}
	rootACL.Add(secext.Allow("replicator", secext.Administrate))
	if err := w.Sys.Names().SetACLUnchecked("/", rootACL); err != nil {
		b.Fatal(err)
	}
	rtok, err := w.Sys.Registry().IssueToken("replicator")
	if err != nil {
		b.Fatal(err)
	}
	aliceTok, err := w.Sys.Registry().IssueToken("alice")
	if err != nil {
		b.Fatal(err)
	}
	srv := remote.NewServer(w.Sys)
	srv.PingInterval = 100 * time.Millisecond
	pub := replica.NewPublisher(w.Sys)
	srv.SetPublisher(pub)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	reps := make([]*replica.Replica, n)
	ctxs := make([]*secext.Context, n)
	for i := range reps {
		reps[i], err = replica.Connect(replica.Options{
			Addr: l.Addr().String(), Token: rtok, StaleAfter: time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		ctxs[i], err = reps[i].System().NewContextFromToken(aliceTok)
		if err != nil {
			b.Fatal(err)
		}
	}
	cleanup := func() {
		for _, r := range reps {
			r.Close()
		}
		pub.Close()
		srv.Close()
		l.Close()
	}
	_ = ctx
	return w, pub, reps, ctxs, cleanup
}

// BenchmarkE19ReplicaCheck measures the warm mediated check served
// from a replica's locally rebuilt epoch — the number the tentpole
// promises is the primary's own warm path, not a network round trip.
func BenchmarkE19ReplicaCheck(b *testing.B) {
	_, _, reps, ctxs, cleanup := benchFleet(b, 1)
	defer cleanup()
	sys, ctx := reps[0].System(), ctxs[0]
	if _, err := sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE19RevocationBarrier measures one full revocation round
// trip at fleet sizes 1 and 2: publish a revoking epoch on the
// primary, then block until every replica acknowledges it.
func BenchmarkE19RevocationBarrier(b *testing.B) {
	for _, n := range []int{1, 2} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			w, pub, _, _, cleanup := benchFleet(b, n)
			defer cleanup()
			open := secext.NewACL(secext.AllowEveryone(secext.Read | secext.Write | secext.WriteAppend))
			closed := secext.NewACL(secext.AllowEveryone(secext.Read))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next := open
				if i%2 == 0 {
					next = closed
				}
				v, err := w.Sys.Names().SetACLUncheckedAt("/fs/f", next)
				if err != nil {
					b.Fatal(err)
				}
				if err := pub.Barrier(v, 10*time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E20: million-object epochs (compact layout + secload traffic) ---

// benchLoadPlan is the CI-sized slice of the E20 population: the same
// shape bench-load runs at 10^6 nodes, small enough for a smoke
// iteration.
func benchLoadPlan(nodes, principals int) load.Plan {
	cfg := load.Defaults()
	cfg.Nodes = nodes
	cfg.Principals = principals
	cfg.Groups = 8
	cfg.ACLPool = 64
	return load.NewPlan(cfg)
}

// BenchmarkE20BulkBind prices building one whole load-plan tree through
// the bulk bind path on a bare name server; per-op time divided by
// TotalNodes is the amortized per-node cost the 10^6-node bench-load
// build pays.
func BenchmarkE20BulkBind(b *testing.B) {
	p := benchLoadPlan(4096, 256)
	lat, err := lattice.NewWithUniverse([]string{"lo", "hi"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	bottom, err := lat.Bottom()
	if err != nil {
		b.Fatal(err)
	}
	rootACL := acl.New(acl.AllowEveryone(acl.List))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := names.NewServer(lat, rootACL, bottom)
		if err := load.BuildTree(srv, p, bottom); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.TotalNodes), "nodes/op")
}

// BenchmarkE20ZipfCheck drives the secload traffic shape — a
// zipf-picked leaf CHECK over the line protocol — through one
// authenticated loopback connection against a populated world. One op
// is one synchronous round trip, so ns/op here is closed-loop service
// time; the open-loop percentiles live in the E20 table.
func BenchmarkE20ZipfCheck(b *testing.B) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:       []string{"others", "organization", "local"},
		Categories:   []string{"dept-1", "dept-2"},
		DisableAudit: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := benchLoadPlan(2048, 128)
	if _, err := load.Populate(w.Sys, p); err != nil {
		b.Fatal(err)
	}
	tok, err := w.Sys.Registry().IssueToken(load.PrincipalName(0))
	if err != nil {
		b.Fatal(err)
	}
	srv := remote.NewServer(w.Sys)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer l.Close()
	defer srv.Close()
	conn, err := load.Dial(l.Addr().String(), tok)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	pick := p.NewZipfPicker(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := conn.Check(p.LeafPath(pick()), "read")
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("zipf check denied")
		}
	}
}
