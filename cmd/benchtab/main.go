// Command benchtab regenerates every table in EXPERIMENTS.md: the
// scenario reproductions S1-S3 (the paper's qualitative walk-throughs,
// with asserted outcomes) and the quantitative characterizations E1-E14.
//
// Usage:
//
//	benchtab                 # run everything
//	benchtab S1 E7 E12       # run selected experiments
//	benchtab -json . E11     # also write BENCH_E11.json with the rows
//
// Only the selected experiments run; an unknown ID selects nothing.
// With -json DIR, each experiment additionally writes its structured
// rows to DIR/BENCH_<ID>.json for machine consumption (plots, CI
// regression tracking of the parallel and contention tables).
//
// Exit status is non-zero if any scenario deviates from the paper's
// stated outcome.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"secext/internal/experiments"
)

// benchFile is the JSON shape of one BENCH_<ID>.json document.
type benchFile struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Err    string     `json:"err,omitempty"`
}

func writeJSON(dir string, r experiments.Result) error {
	doc := benchFile{ID: r.ID, Title: r.Title, Header: r.Header, Rows: r.Rows}
	if r.Err != nil {
		doc.Err = r.Err.Error()
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+r.ID+".json"), append(data, '\n'), 0o644)
}

func main() {
	jsonDir := flag.String("json", "", "directory to write BENCH_<ID>.json files with structured rows")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchtab [-json DIR] [S1 S2 S3 E1 ... E14]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}

	failed := 0
	for _, runner := range experiments.Runners() {
		if len(want) > 0 && !want[runner.ID] {
			continue
		}
		r := runner.Run()
		fmt.Printf("== %s: %s\n\n%s\n", r.ID, r.Title, r.Table)
		if r.Err != nil {
			fmt.Printf("!! %s FAILED: %v\n\n", r.ID, r.Err)
			failed++
		}
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, r); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				failed++
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) deviated from expected outcomes\n", failed)
		os.Exit(1)
	}
}
