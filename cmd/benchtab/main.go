// Command benchtab regenerates every table in EXPERIMENTS.md: the
// scenario reproductions S1-S3 (the paper's qualitative walk-throughs,
// with asserted outcomes) and the quantitative characterizations E1-E10.
//
// Usage:
//
//	benchtab            # run everything
//	benchtab S1 E7 E9   # run selected experiments
//
// Exit status is non-zero if any scenario deviates from the paper's
// stated outcome.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"secext/internal/experiments"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchtab [S1 S2 S3 E1 ... E10]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}

	failed := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Printf("== %s: %s\n\n%s\n", r.ID, r.Title, r.Table)
		if r.Err != nil {
			fmt.Printf("!! %s FAILED: %v\n\n", r.ID, r.Err)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) deviated from expected outcomes\n", failed)
		os.Exit(1)
	}
}
