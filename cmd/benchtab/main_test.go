package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "benchtab-test")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binPath = filepath.Join(dir, "benchtab")
	build := exec.Command("go", "build", "-o", binPath, ".")
	if out, err := build.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// TestScenarioSubset runs the fast, deterministic experiments and
// checks they report their expected outcomes.
func TestScenarioSubset(t *testing.T) {
	out, err := exec.Command(binPath, "S1", "S2", "S4", "E9").CombinedOutput()
	if err != nil {
		t.Fatalf("benchtab: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"== S1:", "== S2:", "== S4:", "== E9:",
		"matches paper", "12/12",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "FAILED") {
		t.Errorf("experiments failed:\n%s", s)
	}
	// Unselected experiments must not run.
	if strings.Contains(s, "== E1:") {
		t.Error("selection filter broken")
	}
}

// TestJSONEmission checks -json writes a BENCH_<ID>.json document whose
// structured rows mirror the printed table.
func TestJSONEmission(t *testing.T) {
	dir := t.TempDir()
	out, err := exec.Command(binPath, "-json", dir, "S4").CombinedOutput()
	if err != nil {
		t.Fatalf("benchtab -json: %v\n%s", err, out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_S4.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Err    string     `json:"err"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_S4.json: %v\n%s", err, data)
	}
	if doc.ID != "S4" || doc.Err != "" {
		t.Errorf("doc = %+v", doc)
	}
	if len(doc.Header) == 0 || len(doc.Rows) == 0 {
		t.Errorf("structured rows missing: header=%v rows=%v", doc.Header, doc.Rows)
	}
	for _, row := range doc.Rows {
		if len(row) != len(doc.Header) {
			t.Errorf("row width %d != header width %d: %v", len(row), len(doc.Header), row)
		}
	}
}

func TestUnknownSelectionRunsNothing(t *testing.T) {
	out, err := exec.Command(binPath, "Z9").CombinedOutput()
	if err != nil {
		t.Fatalf("benchtab Z9: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "== ") {
		t.Errorf("unknown id must select nothing:\n%s", out)
	}
}
