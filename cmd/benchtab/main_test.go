package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "benchtab-test")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binPath = filepath.Join(dir, "benchtab")
	build := exec.Command("go", "build", "-o", binPath, ".")
	if out, err := build.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// TestScenarioSubset runs the fast, deterministic experiments and
// checks they report their expected outcomes.
func TestScenarioSubset(t *testing.T) {
	out, err := exec.Command(binPath, "S1", "S2", "S4", "E9").CombinedOutput()
	if err != nil {
		t.Fatalf("benchtab: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"== S1:", "== S2:", "== S4:", "== E9:",
		"matches paper", "12/12",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "FAILED") {
		t.Errorf("experiments failed:\n%s", s)
	}
	// Unselected experiments must not run.
	if strings.Contains(s, "== E1:") {
		t.Error("selection filter broken")
	}
}

func TestUnknownSelectionRunsNothing(t *testing.T) {
	out, err := exec.Command(binPath, "Z9").CombinedOutput()
	if err != nil {
		t.Fatalf("benchtab Z9: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "== ") {
		t.Errorf("unknown id must select nothing:\n%s", out)
	}
}
