// Command secctl loads a secext policy file and answers questions about
// the protection state it defines — the administrator's window into the
// single name space the paper argues for.
//
// Usage:
//
//	secctl check  -policy p.pol -as alice -path /svc/fs/read -modes execute
//	secctl matrix -policy p.pol -modes read [-paths /a,/b]
//	secctl tree   -policy p.pol
//	secctl fmt    -policy p.pol
//	secctl stats   -http 127.0.0.1:7778
//	secctl trace   -http 127.0.0.1:7778 [-n 10] [-denied]
//	secctl explain -http 127.0.0.1:7778 -as alice -path /fs/x -modes read
//	secctl epochs  -http 127.0.0.1:7778 [-n 10]
//	secctl epochs  -peer 127.0.0.1:7779 -token <tok> [-n 10]
//	secctl replicas -http 127.0.0.1:7778
//
// check prints ALLOW/DENY with the monitor's reason; matrix prints the
// decision for every principal against the given (or all leaf) paths;
// tree dumps the name space with per-node kind, class, and ACL; fmt
// re-emits the policy in canonical form. stats, trace, explain, and
// epochs talk to a running secextd's telemetry endpoint (-http on the
// daemon): stats summarizes the live counters, trace prints recent
// decision traces, explain prints the provenance verdict tree for one
// decision (the exact ACL entry, guard, and MAC comparison that decided
// it), and epochs prints the epoch-transition journal. replicas prints
// a replicating primary's per-peer status (lag, transfer volume).
// epochs -peer talks the line protocol directly instead of HTTP — the
// way to read a replica mediator's journal and verify it applied the
// primary's epochs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"

	"secext"
	"secext/internal/names"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "check":
		runCheck(args)
	case "matrix":
		runMatrix(args)
	case "tree":
		runTree(args)
	case "fmt":
		runFmt(args)
	case "snapshot":
		runSnapshot(args)
	case "stats":
		runStats(args)
	case "trace":
		runTrace(args)
	case "explain":
		runExplain(args)
	case "epochs":
		runEpochs(args)
	case "replicas":
		runReplicas(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: secctl <check|matrix|tree|fmt|snapshot> -policy <file> [flags]")
	fmt.Fprintln(os.Stderr, "       secctl <stats|trace|explain|epochs|replicas> -http <addr> [flags]")
	fmt.Fprintln(os.Stderr, "       secctl epochs -peer <addr> -token <tok> [-n 10]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secctl:", err)
	os.Exit(1)
}

func loadPolicy(path string) (*secext.Policy, *secext.System) {
	if path == "" {
		fatal(fmt.Errorf("-policy is required"))
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := secext.ParsePolicy(f)
	if err != nil {
		fatal(err)
	}
	sys, err := p.Build(secext.Options{})
	if err != nil {
		fatal(err)
	}
	return p, sys
}

func runCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	policy := fs.String("policy", "", "policy file")
	as := fs.String("as", "", "principal to check as")
	path := fs.String("path", "", "object path")
	modesArg := fs.String("modes", "read", "comma-separated access modes")
	_ = fs.Parse(args)
	_, sys := loadPolicy(*policy)
	modes, err := secext.ParseMode(*modesArg)
	if err != nil {
		fatal(err)
	}
	ctx, err := sys.NewContext(*as)
	if err != nil {
		fatal(err)
	}
	if _, err := sys.CheckData(ctx, *path, modes); err != nil {
		fmt.Printf("DENY  %s %s on %s\n  reason: %v\n", *as, modes, *path, err)
		// Show the discretionary working when the target exists.
		if a, aerr := sys.Names().ACLOf(*path); aerr == nil {
			fmt.Printf("  acl working:\n")
			for _, line := range strings.Split(strings.TrimSpace(a.Explain(ctx, modes).String()), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
		os.Exit(1)
	}
	fmt.Printf("ALLOW %s %s on %s (class %s)\n", *as, modes, *path, ctx.Class())
}

func runMatrix(args []string) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	policy := fs.String("policy", "", "policy file")
	modesArg := fs.String("modes", "read", "comma-separated access modes")
	pathsArg := fs.String("paths", "", "comma-separated object paths (default: all leaves)")
	_ = fs.Parse(args)
	p, sys := loadPolicy(*policy)
	modes, err := secext.ParseMode(*modesArg)
	if err != nil {
		fatal(err)
	}
	var paths []string
	if *pathsArg != "" {
		paths = strings.Split(*pathsArg, ",")
	} else {
		sys.Names().Walk(func(path string, n *secext.Node) {
			if n.Kind().Leaf() {
				paths = append(paths, path)
			}
		})
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no paths to check"))
	}
	fmt.Printf("access matrix for modes %q\n\n%-14s", modes, "principal")
	for _, path := range paths {
		fmt.Printf("  %-22s", path)
	}
	fmt.Println()
	for _, pr := range p.Principals {
		ctx, err := sys.NewContext(pr.Name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s", pr.Name)
		for _, path := range paths {
			verdict := "ALLOW"
			if _, err := sys.CheckData(ctx, path, modes); err != nil {
				verdict = "deny"
			}
			fmt.Printf("  %-22s", verdict)
		}
		fmt.Println()
	}
}

func runTree(args []string) {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	policy := fs.String("policy", "", "policy file")
	_ = fs.Parse(args)
	_, sys := loadPolicy(*policy)
	sys.Names().Walk(func(path string, n *secext.Node) {
		indent := strings.Repeat("  ", strings.Count(path, "/"))
		if path == "/" {
			indent = ""
		}
		a, err := sys.Names().ACLOf(path)
		aclStr := "(unreadable)"
		if err == nil {
			aclStr = a.String()
		}
		extra := ""
		if n.Multilevel() {
			extra = " [multilevel]"
		}
		fmt.Printf("%s%s  <%s>%s class=%s acl=%s\n",
			indent, displayName(path, n), n.Kind(), extra, n.Class(), aclStr)
	})
}

func displayName(path string, n *secext.Node) string {
	if path == "/" {
		return "/"
	}
	return n.Name()
}

func runFmt(args []string) {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	policy := fs.String("policy", "", "policy file")
	_ = fs.Parse(args)
	p, _ := loadPolicy(*policy)
	fmt.Print(p.Format())
}

// runSnapshot builds the policy, then extracts the live protection
// state back out — a round-trip check that what was loaded is what is
// enforced.
func runSnapshot(args []string) {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	policy := fs.String("policy", "", "policy file")
	_ = fs.Parse(args)
	_, sys := loadPolicy(*policy)
	snap, err := secext.SnapshotPolicy(sys)
	if err != nil {
		fatal(err)
	}
	fmt.Print(snap.Format())
}

// fetch GETs a telemetry endpoint from a running secextd.
func fetch(httpAddr, path string) []byte {
	if httpAddr == "" {
		fatal(fmt.Errorf("-http is required (the daemon's -http address)"))
	}
	resp, err := http.Get("http://" + httpAddr + path)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body))))
	}
	return body
}

// runStats summarizes a running daemon's live counters.
func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	httpAddr := fs.String("http", "", "daemon telemetry address (host:port)")
	raw := fs.Bool("json", false, "print the raw JSON snapshot")
	_ = fs.Parse(args)
	body := fetch(*httpAddr, "/debug/stats")
	if *raw {
		os.Stdout.Write(body)
		return
	}
	var s secext.TelemetrySnapshot
	if err := json.Unmarshal(body, &s); err != nil {
		fatal(err)
	}
	fmt.Printf("telemetry mode %s (sampling 1/%d, %d traces sampled)\n",
		s.Mode, s.SampleEvery, s.TracesSampled)
	allowed, denied := s.Mediated()
	fmt.Printf("mediations: %d total (%d allowed, %d denied)\n", allowed+denied, allowed, denied)
	for _, m := range s.Mediations {
		if m.Allowed+m.Denied == 0 {
			continue
		}
		fmt.Printf("  %-10s allowed %-8d denied %d\n", m.Kind, m.Allowed, m.Denied)
	}
	lat := s.MediationLatency
	fmt.Printf("mediation latency (sampled): p50 %gns p95 %gns p99 %gns over %d samples\n",
		lat.P50, lat.P95, lat.P99, lat.Count)
	fmt.Printf("decision cache: %d hits, %d misses, %d stores, %d invalidations\n",
		s.Cache.Hits, s.Cache.Misses, s.Cache.Stores, s.Cache.Invalidations)
	n := s.Names
	fmt.Printf("epoch v%d: %d publishes, compiled builds %d incremental / %d full / %d reused\n",
		n.Version, n.Publishes, n.CompiledIncremental, n.CompiledFull, n.CompiledReused)
	fmt.Printf("compiled view: %d index entries, %d classes, %d registry-sensitive summaries, %s retained (%s if unshared)\n",
		n.CompiledEntries, n.CompiledDomClasses, n.CompiledSensitive,
		fmtBytes(n.CompiledRetainedBytes), fmtBytes(n.CompiledRetainedBytesCloned))
	fmt.Printf("freeze cost p95: index %gns, summaries %gns, bitsets %gns (over %d compiled flushes)\n",
		n.CompiledIndexBuild.P95, n.CompiledSummaryCompile.P95,
		n.CompiledVisRecompute.P95, n.CompiledIndexBuild.Count)
	fmt.Printf("shadow monitor: %d checks shadowed, %d divergences; journal holds %d transitions\n",
		n.ShadowChecks, n.Divergences, n.JournalRecords)
	fp := n.Footprint
	fmt.Printf("tree footprint: %d nodes (%d dirs, %d leaves), %s total (%.1f B/node)\n",
		fp.Nodes, fp.Directories, fp.Leaves, fmtBytes(fp.TotalBytes), fp.BytesPerNode)
	fmt.Printf("  structure sharing: %d owned / %d shared nodes this epoch; child slices %s, paths %s, names %s\n",
		fp.OwnedNodes, fp.SharedNodes, fmtBytes(fp.ChildSliceBytes), fmtBytes(fp.PathBytes), fmtBytes(fp.NameBytes))
	fmt.Printf("  acl dedupe: %d refs onto %d distinct values (ratio %.1f, %s)\n",
		fp.ACLRefs, fp.DistinctACLs, fp.ACLDedupRatio, fmtBytes(fp.ACLBytes))
	fmt.Printf("  interner: %d strings / %s held, %d hits, %d misses, %d resets; acl table %d distinct, %d dedups\n",
		fp.InternedStrings, fmtBytes(fp.InternedBytes), fp.InternHits, fp.InternMisses,
		fp.InternResets, fp.ACLCanonDistinct, fp.ACLCanonDedups)
	fmt.Printf("audit: %d decisions (%d allowed, %d denied), %d bypasses, %d dropped from ring\n",
		s.Audit.Total, s.Audit.Allowed, s.Audit.Denied, s.Audit.Bypassed, s.Audit.Dropped)
	fmt.Printf("dispatcher admissions: %d admitted, %d rejected\n",
		s.Admissions.Allowed, s.Admissions.Denied)
	for _, g := range s.Guards {
		fmt.Printf("guard %-12s allowed %-8d denied %-6d p95 %gns (sampled %d)\n",
			g.Name, g.Allowed, g.Denied, g.Latency.P95, g.Latency.Count)
	}
}

// runTrace prints recent decision traces from a running daemon.
func runTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	httpAddr := fs.String("http", "", "daemon telemetry address (host:port)")
	n := fs.Int("n", 10, "maximum traces to print")
	denied := fs.Bool("denied", false, "only denied requests")
	_ = fs.Parse(args)
	path := fmt.Sprintf("/debug/trace/recent?text=1&n=%d", *n)
	if *denied {
		path += "&denied=1"
	}
	body := fetch(*httpAddr, path)
	if len(strings.TrimSpace(string(body))) == 0 {
		fmt.Println("no traces retained")
		return
	}
	os.Stdout.Write(body)
}

// runExplain asks a running daemon why a decision went the way it did
// and prints the provenance verdict tree.
func runExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	httpAddr := fs.String("http", "", "daemon telemetry address (host:port)")
	as := fs.String("as", "", "principal to explain as")
	path := fs.String("path", "", "object path")
	modesArg := fs.String("modes", "read", "comma-separated access modes")
	raw := fs.Bool("json", false, "print the structured explanation as JSON")
	_ = fs.Parse(args)
	if *as == "" || *path == "" {
		fatal(fmt.Errorf("-as and -path are required"))
	}
	q := url.Values{"subject": {*as}, "path": {*path}, "mode": {*modesArg}}
	if !*raw {
		q.Set("text", "1")
	}
	os.Stdout.Write(fetch(*httpAddr, "/debug/explain?"+q.Encode()))
}

// runEpochs prints a running daemon's epoch-transition journal, newest
// first: which policy shards changed, the batch size, incremental vs
// full freeze, the compile kind and cost, and the publish latency.
func runEpochs(args []string) {
	fs := flag.NewFlagSet("epochs", flag.ExitOnError)
	httpAddr := fs.String("http", "", "daemon telemetry address (host:port)")
	peer := fs.String("peer", "", "query a daemon's line protocol instead of HTTP (host:port)")
	token := fs.String("token", "", "principal token for -peer")
	n := fs.Int("n", 10, "maximum transitions to print")
	raw := fs.Bool("json", false, "print the raw JSON records")
	_ = fs.Parse(args)
	if *peer != "" {
		runEpochsPeer(*peer, *token, *n)
		return
	}
	path := fmt.Sprintf("/debug/epochs?n=%d", *n)
	if !*raw {
		path += "&text=1"
	}
	body := fetch(*httpAddr, path)
	if len(strings.TrimSpace(string(body))) == 0 || strings.TrimSpace(string(body)) == "[]" {
		fmt.Println("no transitions recorded")
		return
	}
	os.Stdout.Write(body)
}

// runEpochsPeer reads the epoch-transition journal over the line
// protocol — works against replicas too, where the journal's
// kind=replica records carry the primary version each apply landed.
func runEpochsPeer(addr, token string, n int) {
	if token == "" {
		fatal(fmt.Errorf("-peer needs -token"))
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	expect := func(what string) string {
		if !sc.Scan() {
			fatal(fmt.Errorf("connection closed during %s", what))
		}
		line := sc.Text()
		if !strings.HasPrefix(line, "OK") {
			fatal(fmt.Errorf("%s: %s", what, line))
		}
		return line
	}
	expect("greeting")
	fmt.Fprintf(conn, "AUTH %s\n", token)
	expect("authentication")
	fmt.Fprintf(conn, "EPOCHS %d\n", n)
	head := expect("epochs")
	var k int
	fmt.Sscanf(head, "OK %d", &k)
	if k == 0 {
		fmt.Println("no transitions recorded")
		return
	}
	for i := 0; i < k && sc.Scan(); i++ {
		fmt.Println(sc.Text())
	}
}

// runReplicas prints a replicating primary's per-peer status.
func runReplicas(args []string) {
	fs := flag.NewFlagSet("replicas", flag.ExitOnError)
	httpAddr := fs.String("http", "", "daemon telemetry address (host:port)")
	raw := fs.Bool("json", false, "print the raw JSON status")
	_ = fs.Parse(args)
	path := "/debug/replicas"
	if !*raw {
		path += "?text=1"
	}
	os.Stdout.Write(fetch(*httpAddr, path))
}

var _ = names.KindRoot // keep names import for Node alias methods

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
