// Command secctl loads a secext policy file and answers questions about
// the protection state it defines — the administrator's window into the
// single name space the paper argues for.
//
// Usage:
//
//	secctl check  -policy p.pol -as alice -path /svc/fs/read -modes execute
//	secctl matrix -policy p.pol -modes read [-paths /a,/b]
//	secctl tree   -policy p.pol
//	secctl fmt    -policy p.pol
//
// check prints ALLOW/DENY with the monitor's reason; matrix prints the
// decision for every principal against the given (or all leaf) paths;
// tree dumps the name space with per-node kind, class, and ACL; fmt
// re-emits the policy in canonical form.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"secext"
	"secext/internal/names"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "check":
		runCheck(args)
	case "matrix":
		runMatrix(args)
	case "tree":
		runTree(args)
	case "fmt":
		runFmt(args)
	case "snapshot":
		runSnapshot(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: secctl <check|matrix|tree|fmt|snapshot> -policy <file> [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secctl:", err)
	os.Exit(1)
}

func loadPolicy(path string) (*secext.Policy, *secext.System) {
	if path == "" {
		fatal(fmt.Errorf("-policy is required"))
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := secext.ParsePolicy(f)
	if err != nil {
		fatal(err)
	}
	sys, err := p.Build(secext.Options{})
	if err != nil {
		fatal(err)
	}
	return p, sys
}

func runCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	policy := fs.String("policy", "", "policy file")
	as := fs.String("as", "", "principal to check as")
	path := fs.String("path", "", "object path")
	modesArg := fs.String("modes", "read", "comma-separated access modes")
	_ = fs.Parse(args)
	_, sys := loadPolicy(*policy)
	modes, err := secext.ParseMode(*modesArg)
	if err != nil {
		fatal(err)
	}
	ctx, err := sys.NewContext(*as)
	if err != nil {
		fatal(err)
	}
	if _, err := sys.CheckData(ctx, *path, modes); err != nil {
		fmt.Printf("DENY  %s %s on %s\n  reason: %v\n", *as, modes, *path, err)
		// Show the discretionary working when the target exists.
		if a, aerr := sys.Names().ACLOf(*path); aerr == nil {
			fmt.Printf("  acl working:\n")
			for _, line := range strings.Split(strings.TrimSpace(a.Explain(ctx, modes).String()), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
		os.Exit(1)
	}
	fmt.Printf("ALLOW %s %s on %s (class %s)\n", *as, modes, *path, ctx.Class())
}

func runMatrix(args []string) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	policy := fs.String("policy", "", "policy file")
	modesArg := fs.String("modes", "read", "comma-separated access modes")
	pathsArg := fs.String("paths", "", "comma-separated object paths (default: all leaves)")
	_ = fs.Parse(args)
	p, sys := loadPolicy(*policy)
	modes, err := secext.ParseMode(*modesArg)
	if err != nil {
		fatal(err)
	}
	var paths []string
	if *pathsArg != "" {
		paths = strings.Split(*pathsArg, ",")
	} else {
		sys.Names().Walk(func(path string, n *secext.Node) {
			if n.Kind().Leaf() {
				paths = append(paths, path)
			}
		})
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no paths to check"))
	}
	fmt.Printf("access matrix for modes %q\n\n%-14s", modes, "principal")
	for _, path := range paths {
		fmt.Printf("  %-22s", path)
	}
	fmt.Println()
	for _, pr := range p.Principals {
		ctx, err := sys.NewContext(pr.Name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-14s", pr.Name)
		for _, path := range paths {
			verdict := "ALLOW"
			if _, err := sys.CheckData(ctx, path, modes); err != nil {
				verdict = "deny"
			}
			fmt.Printf("  %-22s", verdict)
		}
		fmt.Println()
	}
}

func runTree(args []string) {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	policy := fs.String("policy", "", "policy file")
	_ = fs.Parse(args)
	_, sys := loadPolicy(*policy)
	sys.Names().Walk(func(path string, n *secext.Node) {
		indent := strings.Repeat("  ", strings.Count(path, "/"))
		if path == "/" {
			indent = ""
		}
		a, err := sys.Names().ACLOf(path)
		aclStr := "(unreadable)"
		if err == nil {
			aclStr = a.String()
		}
		extra := ""
		if n.Multilevel() {
			extra = " [multilevel]"
		}
		fmt.Printf("%s%s  <%s>%s class=%s acl=%s\n",
			indent, displayName(path, n), n.Kind(), extra, n.Class(), aclStr)
	})
}

func displayName(path string, n *secext.Node) string {
	if path == "/" {
		return "/"
	}
	return n.Name()
}

func runFmt(args []string) {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	policy := fs.String("policy", "", "policy file")
	_ = fs.Parse(args)
	p, _ := loadPolicy(*policy)
	fmt.Print(p.Format())
}

// runSnapshot builds the policy, then extracts the live protection
// state back out — a round-trip check that what was loaded is what is
// enforced.
func runSnapshot(args []string) {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	policy := fs.String("policy", "", "policy file")
	_ = fs.Parse(args)
	_, sys := loadPolicy(*policy)
	snap, err := secext.SnapshotPolicy(sys)
	if err != nil {
		fatal(err)
	}
	fmt.Print(snap.Format())
}

var _ = names.KindRoot // keep names import for Node alias methods
