package main

// Integration tests: build the real binary once and drive it like a
// user would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "secctl-test")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binPath = filepath.Join(dir, "secctl")
	build := exec.Command("go", "build", "-o", binPath, ".")
	if out, err := build.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

const testPolicy = `
levels others organization local
categories dept-1 dept-2
principal alice class organization:{dept-1}
principal bob class organization:{dept-2}
node /data directory multilevel class others
acl /data allow * list,write
acl /data allow alice read
`

func writePolicy(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.pol")
	if err := os.WriteFile(path, []byte(testPolicy), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(t *testing.T, wantOK bool, args ...string) string {
	t.Helper()
	out, err := exec.Command(binPath, args...).CombinedOutput()
	if wantOK && err != nil {
		t.Fatalf("secctl %v: %v\n%s", args, err, out)
	}
	if !wantOK && err == nil {
		t.Fatalf("secctl %v: expected failure\n%s", args, out)
	}
	return string(out)
}

func TestCheckCommand(t *testing.T) {
	pol := writePolicy(t)
	out := run(t, true, "check", "-policy", pol, "-as", "alice", "-path", "/data", "-modes", "read")
	if !strings.HasPrefix(out, "ALLOW") {
		t.Errorf("output = %q", out)
	}
	// Denied check exits non-zero and explains.
	out = run(t, false, "check", "-policy", pol, "-as", "bob", "-path", "/data", "-modes", "read")
	if !strings.HasPrefix(out, "DENY") || !strings.Contains(out, "reason") {
		t.Errorf("output = %q", out)
	}
}

func TestMatrixCommand(t *testing.T) {
	pol := writePolicy(t)
	out := run(t, true, "matrix", "-policy", pol, "-modes", "list", "-paths", "/data")
	for _, want := range []string{"alice", "bob", "ALLOW"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix output missing %q:\n%s", want, out)
		}
	}
}

func TestTreeCommand(t *testing.T) {
	pol := writePolicy(t)
	out := run(t, true, "tree", "-policy", pol)
	for _, want := range []string{"<root>", "data", "[multilevel]", "class=others"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}
}

func TestFmtAndSnapshotRoundTrip(t *testing.T) {
	pol := writePolicy(t)
	formatted := run(t, true, "fmt", "-policy", pol)
	snap := run(t, true, "snapshot", "-policy", pol)
	for _, want := range []string{
		"principal alice class organization:{dept-1}",
		"node /data directory multilevel class others",
	} {
		if !strings.Contains(formatted, want) {
			t.Errorf("fmt missing %q", want)
		}
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q", want)
		}
	}
	// The snapshot must itself be loadable: feed it back through fmt.
	snapFile := filepath.Join(t.TempDir(), "snap.pol")
	if err := os.WriteFile(snapFile, []byte(snap), 0o644); err != nil {
		t.Fatal(err)
	}
	run(t, true, "fmt", "-policy", snapFile)
}

func TestUsageErrors(t *testing.T) {
	run(t, false)          // no subcommand
	run(t, false, "bogus") // unknown subcommand
	run(t, false, "tree")  // missing -policy
	run(t, false, "tree", "-policy", "/nonexistent.pol")
	pol := writePolicy(t)
	run(t, false, "check", "-policy", pol, "-as", "ghost", "-path", "/data")
	run(t, false, "check", "-policy", pol, "-as", "alice", "-path", "/data", "-modes", "fly")
}
