// Command secextd serves a secext world over TCP using the line
// protocol in internal/remote: remote clients authenticate with a
// principal token and every command they issue is mediated by the
// reference monitor. Tokens for the principals created at startup are
// printed once so a demo client can connect:
//
//	secextd -addr 127.0.0.1:7777 \
//	    -principal alice=organization:{dept-1} \
//	    -principal eve=others
//
//	$ nc 127.0.0.1 7777
//	OK secext ready
//	AUTH alice.…
//	OK alice organization:{dept-1}
//	CREATE /fs/x
//	OK
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"secext"
	"secext/internal/remote"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	levels := flag.String("levels", "others,organization,local",
		"comma-separated trust levels, lowest first")
	categories := flag.String("categories", "dept-1,dept-2",
		"comma-separated categories")
	var principals []string
	flag.Func("principal", "name=class-label (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=class, got %q", v)
		}
		principals = append(principals, v)
		return nil
	})
	flag.Parse()

	var cats []string
	if *categories != "" {
		cats = strings.Split(*categories, ",")
	}
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     strings.Split(*levels, ","),
		Categories: cats,
	})
	if err != nil {
		fatal(err)
	}
	for _, spec := range principals {
		name, class, _ := strings.Cut(spec, "=")
		if _, err := w.Sys.AddPrincipal(name, class); err != nil {
			fatal(err)
		}
		tok, err := w.Sys.Registry().IssueToken(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("principal %-12s class %-36s token %s\n", name, class, tok)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("secextd listening on %s\n", l.Addr())
	srv := remote.NewServer(w.Sys)
	if err := srv.Serve(l); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secextd:", err)
	os.Exit(1)
}
