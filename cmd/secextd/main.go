// Command secextd serves a secext world over TCP using the line
// protocol in internal/remote: remote clients authenticate with a
// principal token and every command they issue is mediated by the
// reference monitor. Tokens for the principals created at startup are
// printed once so a demo client can connect:
//
//	secextd -addr 127.0.0.1:7777 \
//	    -principal alice=organization:{dept-1} \
//	    -principal eve=others
//
//	$ nc 127.0.0.1 7777
//	OK secext ready
//	AUTH alice.…
//	OK alice organization:{dept-1}
//	CREATE /fs/x
//	OK
//
// With -http the daemon also serves the live introspection endpoints:
// /metrics (Prometheus text), /debug/stats (JSON), /debug/trace/recent
// (sampled decision traces), /debug/epochs (the epoch-transition
// journal), and /debug/explain?subject=&path=&mode= (decision
// provenance).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"

	"secext"
	"secext/internal/remote"
	"secext/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	httpAddr := flag.String("http", "", "telemetry HTTP listen address (empty = no HTTP)")
	telMode := flag.String("telemetry", "sampled",
		"telemetry mode: off, metrics, sampled, full")
	levels := flag.String("levels", "others,organization,local",
		"comma-separated trust levels, lowest first")
	categories := flag.String("categories", "dept-1,dept-2",
		"comma-separated categories")
	var principals []string
	flag.Func("principal", "name=class-label (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=class, got %q", v)
		}
		principals = append(principals, v)
		return nil
	})
	flag.Parse()

	var cats []string
	if *categories != "" {
		cats = strings.Split(*categories, ",")
	}
	mode, ok := telemetry.ParseMode(*telMode)
	if !ok {
		fatal(fmt.Errorf("unknown telemetry mode %q", *telMode))
	}
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     strings.Split(*levels, ","),
		Categories: cats,
		Telemetry:  secext.TelemetryOptions{Mode: mode},
	})
	if err != nil {
		fatal(err)
	}
	for _, spec := range principals {
		name, class, _ := strings.Cut(spec, "=")
		if _, err := w.Sys.AddPrincipal(name, class); err != nil {
			fatal(err)
		}
		tok, err := w.Sys.Registry().IssueToken(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("principal %-12s class %-36s token %s\n", name, class, tok)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("secextd listening on %s\n", l.Addr())
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("secextd telemetry on http://%s\n", hl.Addr())
		go func() {
			if err := http.Serve(hl, w.Telemetry().HTTPHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "secextd: http:", err)
			}
		}()
	}
	srv := remote.NewServer(w.Sys)
	if err := srv.Serve(l); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secextd:", err)
	os.Exit(1)
}
