// Command secextd serves a secext world over TCP using the line
// protocol in internal/remote: remote clients authenticate with a
// principal token and every command they issue is mediated by the
// reference monitor. Tokens for the principals created at startup are
// printed once so a demo client can connect:
//
//	secextd -addr 127.0.0.1:7777 \
//	    -principal alice=organization:{dept-1} \
//	    -principal eve=others
//
//	$ nc 127.0.0.1 7777
//	OK secext ready
//	AUTH alice.…
//	OK alice organization:{dept-1}
//	CREATE /fs/x
//	OK
//
// With -http the daemon also serves the live introspection endpoints:
// /metrics (Prometheus text), /debug/stats (JSON), /debug/trace/recent
// (sampled decision traces), /debug/epochs (the epoch-transition
// journal), /debug/explain?subject=&path=&mode= (decision provenance),
// and — on a replicating primary — /debug/replicas (per-peer lag and
// transfer volume).
//
// Replication. A primary started with -serve-replication streams its
// policy epochs to replica mediators and prints a replicator token:
//
//	secextd -addr 127.0.0.1:7777 -serve-replication
//	replicator token secext-replicator.…
//
//	secextd -addr 127.0.0.1:7778 \
//	    -replica-of 127.0.0.1:7777 -replica-token secext-replicator.…
//
// The replica serves the same line protocol (reads and CHECKs mediate
// against the replicated policy; writes belong to the primary). A
// replica that loses its primary fails closed after -stale-after.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"secext"
	"secext/internal/acl"
	"secext/internal/remote"
	"secext/internal/replica"
	"secext/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	httpAddr := flag.String("http", "", "telemetry HTTP listen address (empty = no HTTP)")
	telMode := flag.String("telemetry", "sampled",
		"telemetry mode: off, metrics, sampled, full")
	levels := flag.String("levels", "others,organization,local",
		"comma-separated trust levels, lowest first")
	categories := flag.String("categories", "dept-1,dept-2",
		"comma-separated categories")
	serveRepl := flag.Bool("serve-replication", false,
		"stream policy epochs to replica mediators (prints the replicator token)")
	replicaOf := flag.String("replica-of", "",
		"run as a replica of the primary at this address")
	replicaToken := flag.String("replica-token", "",
		"token authenticating the replica subscription (from the primary's startup output)")
	staleAfter := flag.Duration("stale-after", 3*time.Second,
		"replica staleness deadline: fail closed when the primary is silent this long")
	var principals []string
	flag.Func("principal", "name=class-label (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=class, got %q", v)
		}
		principals = append(principals, v)
		return nil
	})
	flag.Parse()

	mode, ok := telemetry.ParseMode(*telMode)
	if !ok {
		fatal(fmt.Errorf("unknown telemetry mode %q", *telMode))
	}

	if *replicaOf != "" {
		runReplica(*addr, *httpAddr, *replicaOf, *replicaToken, *staleAfter, mode)
		return
	}

	var cats []string
	if *categories != "" {
		cats = strings.Split(*categories, ",")
	}
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     strings.Split(*levels, ","),
		Categories: cats,
		Telemetry:  secext.TelemetryOptions{Mode: mode},
	})
	if err != nil {
		fatal(err)
	}
	for _, spec := range principals {
		name, class, _ := strings.Cut(spec, "=")
		if _, err := w.Sys.AddPrincipal(name, class); err != nil {
			fatal(err)
		}
		tok, err := w.Sys.Registry().IssueToken(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("principal %-12s class %-36s token %s\n", name, class, tok)
	}

	srv := remote.NewServer(w.Sys)
	if *serveRepl {
		// The replicator principal authenticates replica subscriptions:
		// lowest class (root sits at the bottom of the lattice) plus an
		// administrate grant on "/" — exactly what SUBSCRIBE demands.
		name := "secext-replicator"
		if _, err := w.Sys.AddPrincipal(name, strings.Split(*levels, ",")[0]); err != nil {
			fatal(err)
		}
		rootACL, err := w.Sys.Names().ACLOf("/")
		if err != nil {
			fatal(err)
		}
		rootACL.Add(acl.Allow(name, acl.Administrate))
		if err := w.Sys.Names().SetACLUnchecked("/", rootACL); err != nil {
			fatal(err)
		}
		tok, err := w.Sys.Registry().IssueToken(name)
		if err != nil {
			fatal(err)
		}
		pub := replica.NewPublisher(w.Sys)
		srv.SetPublisher(pub)
		if tel := w.Telemetry(); tel != nil {
			tel.SetReplication(pub.Stats)
		}
		fmt.Printf("replicator token %s\n", tok)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("secextd listening on %s\n", l.Addr())
	if *httpAddr != "" {
		serveTelemetry(*httpAddr, w.Telemetry())
	}
	if err := srv.Serve(l); err != nil {
		fatal(err)
	}
}

// runReplica joins a primary's replication stream and serves the line
// protocol against the replicated policy.
func runReplica(addr, httpAddr, primary, token string, staleAfter time.Duration, mode telemetry.Mode) {
	if token == "" {
		fatal(fmt.Errorf("-replica-of needs -replica-token (printed by the primary's -serve-replication)"))
	}
	r, err := replica.Connect(replica.Options{
		Addr:       primary,
		Token:      token,
		StaleAfter: staleAfter,
		Telemetry:  telemetry.Options{Mode: mode},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replica of %s at epoch v%d\n", primary, r.AppliedVersion())
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("secextd (replica) listening on %s\n", l.Addr())
	if httpAddr != "" {
		serveTelemetry(httpAddr, r.System().Telemetry())
	}
	if err := remote.NewServer(r.System()).Serve(l); err != nil {
		fatal(err)
	}
}

func serveTelemetry(addr string, tel *telemetry.Telemetry) {
	hl, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("secextd telemetry on http://%s\n", hl.Addr())
	go func() {
		if err := http.Serve(hl, tel.HTTPHandler()); err != nil {
			fmt.Fprintln(os.Stderr, "secextd: http:", err)
		}
	}()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secextd:", err)
	os.Exit(1)
}
