package main

// Integration test: boot the daemon, read the printed token, connect
// over TCP, and run one authenticated command.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "secextd-test")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binPath = filepath.Join(dir, "secextd")
	build := exec.Command("go", "build", "-o", binPath, ".")
	if out, err := build.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

func TestDaemonBootAndServe(t *testing.T) {
	cmd := exec.Command(binPath,
		"-addr", "127.0.0.1:0",
		"-principal", "alice=organization:{dept-1}",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// Parse the startup banner for the token and the bound address.
	var token, addr string
	sc := bufio.NewScanner(stdout)
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for token == "" || addr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("daemon exited before banner completed")
			}
			if strings.HasPrefix(line, "principal alice") {
				f := strings.Fields(line)
				token = f[len(f)-1]
			}
			if strings.HasPrefix(line, "secextd listening on ") {
				addr = strings.TrimPrefix(line, "secextd listening on ")
			}
		case <-deadline:
			t.Fatal("timed out waiting for daemon banner")
		}
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := bufio.NewReader(conn)
	readLine := func() string {
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(line)
	}
	if got := readLine(); !strings.HasPrefix(got, "OK secext ready") {
		t.Fatalf("greeting = %q", got)
	}
	fmt.Fprintf(conn, "AUTH %s\n", token)
	if got := readLine(); !strings.Contains(got, "alice organization:{dept-1}") {
		t.Fatalf("AUTH = %q", got)
	}
	fmt.Fprintln(conn, "CREATE /fs/daemon-file")
	if got := readLine(); got != "OK" {
		t.Fatalf("CREATE = %q", got)
	}
	fmt.Fprintln(conn, "QUIT")
	if got := readLine(); !strings.HasPrefix(got, "OK bye") {
		t.Fatalf("QUIT = %q", got)
	}
}

func TestDaemonRejectsBadFlags(t *testing.T) {
	out, err := exec.Command(binPath, "-principal", "nameonly").CombinedOutput()
	if err == nil {
		t.Fatalf("bad -principal accepted:\n%s", out)
	}
	out, err = exec.Command(binPath, "-levels", "").CombinedOutput()
	if err == nil {
		t.Fatalf("empty levels accepted:\n%s", out)
	}
}
