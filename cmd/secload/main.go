// Command secload is the scale/traffic harness behind experiment E20:
// it builds a large synthetic name tree (directories of fixed fan-out,
// a principal/group population, a bounded pool of distinct ACLs reused
// across the tree), then drives zipf-distributed CHECK traffic over the
// secextd line protocol and reports open-loop latency percentiles.
//
// Self-hosted (default): secload builds the world in-process, serves it
// on a loopback listener, and drives traffic against itself — one
// command to reproduce the E20 numbers at any scale:
//
//	secload -nodes 1000000 -principals 100000 -rate 4000 -duration 5s
//
// Against a running daemon: point it at an existing secextd and hand it
// tokens (comma-separated; connection i authenticates with token
// i mod len). The tree must already exist there with the same shape
// flags, since zipf targets are derived from -nodes/-leaves-per-dir:
//
//	secload -addr 127.0.0.1:7777 -tokens $TOK1,$TOK2 -rate 1000 -duration 10s
//
// Latencies are measured from each operation's SCHEDULED send time on a
// fixed open-loop clock, so a server that falls behind accumulates
// queueing delay in the percentiles instead of silently pacing the
// generator down. On a single-vCPU host the generator and the server
// share the machine; treat the tails as an upper bound.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"secext"
	"secext/internal/load"
	"secext/internal/remote"
	"secext/internal/telemetry"
)

func main() {
	nodes := flag.Int("nodes", 100_000, "approximate tree size (rounded to whole directories)")
	leavesPerDir := flag.Int("leaves-per-dir", 256, "directory fan-out")
	principals := flag.Int("principals", 10_000, "registry population")
	groups := flag.Int("groups", 0, "group count (0 = principals/32, min 4)")
	aclPool := flag.Int("acl-pool", 0, "distinct ACL values scattered over the tree (0 = nodes/64, min 16)")
	conns := flag.Int("conns", 4, "concurrent connections")
	rate := flag.Float64("rate", 2000, "target checks/sec across all connections")
	duration := flag.Duration("duration", 3*time.Second, "traffic window")
	zipf := flag.Float64("zipf", 1.1, "zipf skew s (> 1) of the leaf-index distribution")
	seed := flag.Int64("seed", 1, "deterministic seed for tree/ACL/zipf choices")
	addr := flag.String("addr", "", "existing secextd address (empty = self-host on loopback)")
	tokens := flag.String("tokens", "", "comma-separated auth tokens for -addr mode")
	jsonOut := flag.Bool("json", false, "emit one JSON document instead of text")
	flag.Parse()

	cfg := load.Defaults()
	cfg.Nodes = *nodes
	cfg.LeavesPerDir = *leavesPerDir
	cfg.Principals = *principals
	cfg.Seed = *seed
	cfg.Zipf = *zipf
	if *groups > 0 {
		cfg.Groups = *groups
	} else if g := *principals / 32; g >= 4 {
		cfg.Groups = g
	} else {
		cfg.Groups = 4
	}
	if *aclPool > 0 {
		cfg.ACLPool = *aclPool
	} else if a := *nodes / 64; a >= 16 {
		cfg.ACLPool = a
	} else {
		cfg.ACLPool = 16
	}
	p := load.NewPlan(cfg)

	target := *addr
	var authTokens []string
	var st load.BuildStats
	if target == "" {
		var err error
		target, authTokens, st, err = selfHost(p, *conns)
		if err != nil {
			fatal(err)
		}
	} else {
		if *tokens == "" {
			fatal(fmt.Errorf("-addr requires -tokens"))
		}
		authTokens = strings.Split(*tokens, ",")
	}

	tr, err := load.DriveZipf(target, authTokens, p, *rate, *duration, *conns)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		doc := struct {
			Plan    load.Plan          `json:"plan"`
			Build   load.BuildStats    `json:"build"`
			Traffic load.TrafficResult `json:"traffic"`
		}{p, st, tr}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
		return
	}
	if st.TreeNodes > 0 {
		fmt.Printf("built %d nodes (%d dirs × %d leaves) in %s (%d publications), %d principals / %d groups in %s\n",
			st.TreeNodes, p.Dirs, p.LeavesPerDir, st.TreeTime.Round(time.Millisecond),
			st.Publications, st.Principals, st.Groups, st.RegistryTime.Round(time.Millisecond))
	}
	fmt.Printf("traffic: %d ops (%d denied, %d errors) in %s, %.0f ops/s achieved (target %.0f)\n",
		tr.Ops, tr.Denied, tr.Errors, tr.Wall.Round(time.Millisecond), tr.Achieved, *rate)
	fmt.Printf("latency (open-loop, from scheduled send): p50 %s  p95 %s  p99 %s  max %s\n",
		tr.P50, tr.P95, tr.P99, tr.Max)
}

// selfHost builds the world in-process and serves it on loopback,
// returning the listen address and one token per connection.
func selfHost(p load.Plan, conns int) (string, []string, load.BuildStats, error) {
	var st load.BuildStats
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:       []string{"others", "organization", "local"},
		Categories:   []string{"dept-1", "dept-2"},
		DisableAudit: true,
		Telemetry:    secext.TelemetryOptions{Mode: telemetry.ModeOff},
	})
	if err != nil {
		return "", nil, st, err
	}
	st, err = load.Populate(w.Sys, p)
	if err != nil {
		return "", nil, st, err
	}
	toks := make([]string, conns)
	for i := range toks {
		toks[i], err = w.Sys.Registry().IssueToken(load.PrincipalName(i % p.Principals))
		if err != nil {
			return "", nil, st, err
		}
	}
	srv := remote.NewServer(w.Sys)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, st, err
	}
	go srv.Serve(l)
	return l.Addr().String(), toks, st, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secload:", err)
	os.Exit(1)
}
