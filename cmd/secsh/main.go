// Command secsh is an interactive shell over a secext world: create
// principals, switch identities, touch files, message endpoints, spawn
// and kill threads, and inspect ACLs, classes, and the audit trail —
// every command mediated by the reference monitor, every denial
// explained.
//
// Usage:
//
//	secsh [-levels lo,mid,hi] [-categories a,b]
//
// then type `help`. secsh reads commands from stdin, so it is
// scriptable:
//
//	printf 'adduser alice organization:{dept-1}\nlogin alice\nls /\n' | secsh
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"secext"
)

type shell struct {
	w   *secext.World
	ctx *secext.Context // current subject; nil until login
	out *bufio.Writer
}

func main() {
	levels := flag.String("levels", "others,organization,local",
		"comma-separated trust levels, lowest first")
	categories := flag.String("categories", "dept-1,dept-2",
		"comma-separated categories")
	flag.Parse()

	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     strings.Split(*levels, ","),
		Categories: splitOrNil(*categories),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "secsh:", err)
		os.Exit(1)
	}
	sh := &shell{w: w, out: bufio.NewWriter(os.Stdout)}
	defer sh.out.Flush()

	fmt.Fprintln(sh.out, "secext shell — type 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	for {
		sh.prompt()
		sh.out.Flush()
		if !sc.Scan() {
			fmt.Fprintln(sh.out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		sh.exec(line)
	}
}

func splitOrNil(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func (s *shell) prompt() {
	who := "-"
	if s.ctx != nil {
		who = s.ctx.SubjectName()
	}
	fmt.Fprintf(s.out, "[%s]$ ", who)
}

func (s *shell) printf(format string, args ...any) {
	fmt.Fprintf(s.out, format+"\n", args...)
}

func (s *shell) fail(err error) {
	if secext.IsDenied(err) {
		s.printf("DENIED: %v", err)
		return
	}
	s.printf("error: %v", err)
}

// need returns the current context or complains.
func (s *shell) need() *secext.Context {
	if s.ctx == nil {
		s.printf("no subject: use 'login <principal>' (after 'adduser')")
	}
	return s.ctx
}

func (s *shell) exec(line string) {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		s.help()
	case "adduser":
		if len(args) != 2 {
			s.printf("usage: adduser <name> <class-label>")
			return
		}
		if _, err := s.w.Sys.AddPrincipal(args[0], args[1]); err != nil {
			s.fail(err)
			return
		}
		s.printf("principal %s at %s", args[0], args[1])
	case "login":
		if len(args) != 1 {
			s.printf("usage: login <principal>")
			return
		}
		ctx, err := s.w.Sys.NewContext(args[0])
		if err != nil {
			s.fail(err)
			return
		}
		s.ctx = ctx
		s.printf("now %s", ctx)
	case "whoami":
		if ctx := s.need(); ctx != nil {
			s.printf("%s", ctx)
		}
	case "ls":
		path := "/"
		if len(args) > 0 {
			path = args[0]
		}
		if ctx := s.need(); ctx != nil {
			entries, err := s.w.Sys.List(ctx, path)
			if err != nil {
				s.fail(err)
				return
			}
			for _, e := range entries {
				s.printf("%s", e)
			}
		}
	case "create", "read", "rm", "stat":
		s.fileOp(cmd, args)
	case "write", "append":
		if len(args) < 2 {
			s.printf("usage: %s <path> <text>", cmd)
			return
		}
		if ctx := s.need(); ctx != nil {
			req := secext.FileRequest{Path: args[0], Data: []byte(strings.Join(args[1:], " "))}
			if _, err := s.w.Sys.Call(ctx, "/svc/fs/"+cmd, req); err != nil {
				s.fail(err)
				return
			}
			s.printf("ok")
		}
	case "call":
		if len(args) != 1 {
			s.printf("usage: call <service-path>")
			return
		}
		if ctx := s.need(); ctx != nil {
			out, err := s.w.Sys.Call(ctx, args[0], nil)
			if err != nil {
				s.fail(err)
				return
			}
			s.printf("-> %v", out)
		}
	case "spawn":
		if len(args) != 1 {
			s.printf("usage: spawn <name>")
			return
		}
		if ctx := s.need(); ctx != nil {
			out, err := s.w.Sys.Call(ctx, "/svc/thread/spawn",
				secext.ThreadSpawnRequest{Name: args[0]})
			if err != nil {
				s.fail(err)
				return
			}
			s.printf("thread %v", out)
		}
	case "kill":
		if len(args) != 1 {
			s.printf("usage: kill <id>")
			return
		}
		id, err := strconv.Atoi(args[0])
		if err != nil {
			s.printf("bad id %q", args[0])
			return
		}
		if ctx := s.need(); ctx != nil {
			if _, err := s.w.Sys.Call(ctx, "/svc/thread/kill",
				secext.ThreadKillRequest{ID: id}); err != nil {
				s.fail(err)
				return
			}
			s.printf("killed %d", id)
		}
	case "threads":
		if ctx := s.need(); ctx != nil {
			out, err := s.w.Sys.Call(ctx, "/svc/thread/list", nil)
			if err != nil {
				s.fail(err)
				return
			}
			s.printf("%v", out)
		}
	case "open", "send", "recv":
		s.netOp(cmd, args)
	case "journal":
		s.journalOp(args)
	case "acl":
		if len(args) != 1 {
			s.printf("usage: acl <path>")
			return
		}
		if ctx := s.need(); ctx != nil {
			a, err := s.w.Sys.GetACL(ctx, args[0])
			if err != nil {
				s.fail(err)
				return
			}
			s.printf("%s", a)
		}
	case "setacl":
		if len(args) < 2 {
			s.printf("usage: setacl <path> <entry;entry...>")
			return
		}
		a, err := secext.ParseACL(strings.Join(args[1:], " "))
		if err != nil {
			s.fail(err)
			return
		}
		if ctx := s.need(); ctx != nil {
			if err := s.w.Sys.SetACL(ctx, args[0], a); err != nil {
				s.fail(err)
				return
			}
			s.printf("ok")
		}
	case "setclass":
		if len(args) != 2 {
			s.printf("usage: setclass <path> <label>")
			return
		}
		if ctx := s.need(); ctx != nil {
			if err := s.w.Sys.SetClass(ctx, args[0], args[1]); err != nil {
				s.fail(err)
				return
			}
			s.printf("ok")
		}
	case "audit":
		n := 10
		if len(args) > 0 {
			if v, err := strconv.Atoi(args[0]); err == nil {
				n = v
			}
		}
		for _, e := range s.w.Sys.Audit().Recent(n) {
			s.printf("%s", e)
		}
	default:
		s.printf("unknown command %q — try 'help'", cmd)
	}
}

func (s *shell) fileOp(cmd string, args []string) {
	if len(args) != 1 {
		s.printf("usage: %s <path>", cmd)
		return
	}
	ctx := s.need()
	if ctx == nil {
		return
	}
	req := secext.FileRequest{Path: args[0]}
	svc := map[string]string{"create": "create", "read": "read", "rm": "remove", "stat": "stat"}[cmd]
	out, err := s.w.Sys.Call(ctx, "/svc/fs/"+svc, req)
	if err != nil {
		s.fail(err)
		return
	}
	switch v := out.(type) {
	case []byte:
		s.printf("%s", v)
	case nil:
		s.printf("ok")
	default:
		s.printf("%+v", v)
	}
}

func (s *shell) netOp(cmd string, args []string) {
	ctx := s.need()
	if ctx == nil {
		return
	}
	switch cmd {
	case "open":
		if len(args) != 1 {
			s.printf("usage: open <endpoint>")
			return
		}
		if _, err := s.w.Sys.Call(ctx, "/svc/net/open", secext.NetOpenRequest{Name: args[0]}); err != nil {
			s.fail(err)
			return
		}
		s.printf("endpoint %s open", args[0])
	case "send":
		if len(args) < 2 {
			s.printf("usage: send <endpoint> <text>")
			return
		}
		req := secext.NetSendRequest{Name: args[0], Data: []byte(strings.Join(args[1:], " "))}
		if _, err := s.w.Sys.Call(ctx, "/svc/net/send", req); err != nil {
			s.fail(err)
			return
		}
		s.printf("sent")
	case "recv":
		if len(args) != 1 {
			s.printf("usage: recv <endpoint>")
			return
		}
		out, err := s.w.Sys.Call(ctx, "/svc/net/recv", secext.NetRecvRequest{Name: args[0]})
		if err != nil {
			s.fail(err)
			return
		}
		m := out.(secext.NetMessage)
		s.printf("from %s (%s): %s", m.From, m.FromClass, m.Data)
	}
}

func (s *shell) journalOp(args []string) {
	ctx := s.need()
	if ctx == nil {
		return
	}
	if len(args) == 0 {
		s.printf("usage: journal <append <text> | read>")
		return
	}
	switch args[0] {
	case "append":
		if _, err := s.w.Sys.Call(ctx, "/svc/log/append", strings.Join(args[1:], " ")); err != nil {
			s.fail(err)
			return
		}
		s.printf("ok")
	case "read":
		out, err := s.w.Sys.Call(ctx, "/svc/log/read", nil)
		if err != nil {
			s.fail(err)
			return
		}
		for _, e := range out.([]secext.JournalEntry) {
			s.printf("%s (%s): %s", e.Subject, e.Class, e.Line)
		}
	default:
		s.printf("usage: journal <append <text> | read>")
	}
}

func (s *shell) help() {
	s.printf(`commands:
  adduser <name> <class>     register a principal (e.g. organization:{dept-1})
  login <name>               become that principal
  whoami                     current subject and class
  ls [path]                  list a name-space node
  create|read|rm|stat <path> file operations via /svc/fs/*
  write|append <path> <text> file writes (append is the report-up channel)
  call <service>             invoke a service with no argument
  spawn <name> | kill <id> | threads     thread service
  open|send|recv <endpoint> [text]       message service
  journal append <text> | journal read   system journal
  acl <path> | setacl <path> <entries>   discretionary state
  setclass <path> <label>                relabel (administrate)
  audit [n]                  last n audit events
  quit`)
}
