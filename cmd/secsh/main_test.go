package main

// Integration test: build the shell and drive a scripted session
// through stdin, asserting on the transcript.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "secsh-test")
	if err != nil {
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binPath = filepath.Join(dir, "secsh")
	build := exec.Command("go", "build", "-o", binPath, ".")
	if out, err := build.CombinedOutput(); err != nil {
		os.Stderr.Write(out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

func runScript(t *testing.T, script string) string {
	t.Helper()
	cmd := exec.Command(binPath)
	cmd.Stdin = strings.NewReader(script)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("secsh: %v\n%s", err, out)
	}
	return string(out)
}

func TestScriptedSession(t *testing.T) {
	out := runScript(t, `
adduser alice organization:{dept-1}
adduser bob organization:{dept-2}
login alice
create /fs/x
write /fs/x hello
read /fs/x
spawn worker
login bob
read /fs/x
kill 1
journal append from bob
journal read
login alice
audit 2
quit
`)
	checks := []struct {
		want string
		why  string
	}{
		{"principal alice at organization:{dept-1}", "adduser echo"},
		{"hello", "read back"},
		{"thread 1", "spawn id"},
		{"DENIED", "bob's cross-compartment read"},
		{"write on /threads/1", "bob's kill denial names the node"},
		{"[alice]$", "prompt tracks identity"},
		{"[bob]$", "prompt tracks identity"},
		{"DENY", "audit tail shows denials"},
	}
	for _, c := range checks {
		if !strings.Contains(out, c.want) {
			t.Errorf("transcript missing %q (%s)\n%s", c.want, c.why, out)
		}
	}
	// Bob cannot read the journal either (it is classified top).
	if !strings.Contains(out, "DENIED") {
		t.Error("journal read from bob must be denied")
	}
}

func TestUnknownAndUsage(t *testing.T) {
	out := runScript(t, `
frobnicate
login
ls /
adduser x bogus-class
quit
`)
	for _, want := range []string{
		"unknown command",
		"usage: login",
		"no subject",
		"error:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q\n%s", want, out)
		}
	}
}

func TestNetAndACLCommands(t *testing.T) {
	out := runScript(t, `
adduser a organization:{dept-1}
adduser b others
login a
open in
login b
send in up-report
recv in
login a
recv in
setacl /fs allow a list
acl /fs
quit
`)
	for _, want := range []string{
		"endpoint in open",
		"sent",
		"from b (others): up-report",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q\n%s", want, out)
		}
	}
	// b's recv is denied (read up), a's setacl is denied (no
	// administrate on /fs).
	if strings.Count(out, "DENIED") < 2 {
		t.Errorf("expected at least two denials\n%s", out)
	}
}
