package secext_test

import (
	"fmt"
	"log"

	"secext"
)

// Example shows the smallest complete use of the library: two
// principals in different compartments, one file, and the mandatory
// lattice separating them.
func Example() {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		log.Fatal(err)
	}
	w.Sys.AddPrincipal("alice", "organization:{dept-1}")
	w.Sys.AddPrincipal("bob", "organization:{dept-2}")

	alice, _ := w.Sys.NewContext("alice")
	bob, _ := w.Sys.NewContext("bob")

	w.Sys.Call(alice, "/svc/fs/create", secext.FileRequest{Path: "/fs/plan"})
	w.Sys.Call(alice, "/svc/fs/write",
		secext.FileRequest{Path: "/fs/plan", Data: []byte("ship it")})

	out, _ := w.Sys.Call(alice, "/svc/fs/read", secext.FileRequest{Path: "/fs/plan"})
	fmt.Printf("alice reads: %s\n", out)

	_, err = w.Sys.Call(bob, "/svc/fs/read", secext.FileRequest{Path: "/fs/plan"})
	fmt.Printf("bob is denied: %v\n", secext.IsDenied(err))
	// Output:
	// alice reads: ship it
	// bob is denied: true
}

// ExampleNewACL shows building and evaluating a discretionary ACL with
// the paper's execute and extend modes and a negative entry.
func ExampleNewACL() {
	a := secext.NewACL(
		secext.AllowGroup("applets", secext.Execute),
		secext.Allow("vendor", secext.Execute|secext.Extend),
		secext.Deny("banned", secext.Execute),
	)
	fmt.Println(a)
	// Output:
	// allow @applets execute; allow vendor execute,extend; deny banned execute
}

// ExampleParsePolicyString shows loading the paper's §2.2 organization
// example from a policy document.
func ExampleParsePolicyString() {
	p, err := secext.ParsePolicyString(`
levels others organization local
categories dept-1 dept-2
principal applet1 class organization:{dept-1}
principal applet2 class organization:{dept-2}
`)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := p.Build(secext.Options{})
	if err != nil {
		log.Fatal(err)
	}
	a1, _ := sys.NewContext("applet1")
	a2, _ := sys.NewContext("applet2")
	fmt.Println("applet1 dominates applet2:", a1.Class().Dominates(a2.Class()))
	fmt.Println("applet1 class:", a1.Class())
	// Output:
	// applet1 dominates applet2: false
	// applet1 class: organization:{dept-1}
}

// ExampleSystem_Call_classSelection shows §2.2's class-based dispatch:
// two extensions with different static classes extend one service, and
// each caller is served by the one its class dominates.
func ExampleSystem_Call_classSelection() {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := w.Sys
	sys.RegisterService(secext.ServiceSpec{
		Path: "/svc/greet",
		ACL:  secext.NewACL(secext.AllowEveryone(secext.Execute | secext.Extend)),
		Base: secext.Binding{Owner: "base", Handler: func(ctx *secext.Context, arg any) (any, error) {
			return "hello, stranger", nil
		}},
	})
	sys.AddPrincipal("admin", "organization:{dept-1,dept-2}")
	admin, _ := sys.NewContext("admin")
	for _, dept := range []string{"dept-1", "dept-2"} {
		static := "organization:{" + dept + "}"
		class, _ := sys.Lattice().ParseClass(static)
		msg := "hello, " + dept
		sys.Extend(admin, "/svc/greet", secext.Binding{
			Owner: dept, Static: class,
			Handler: func(ctx *secext.Context, arg any) (any, error) { return msg, nil },
		})
	}
	sys.AddPrincipal("u1", "organization:{dept-1}")
	sys.AddPrincipal("u2", "organization:{dept-2}")
	sys.AddPrincipal("guest", "others")
	for _, name := range []string{"u1", "u2", "guest"} {
		ctx, _ := sys.NewContext(name)
		out, _ := sys.Call(ctx, "/svc/greet", nil)
		fmt.Printf("%s -> %s\n", name, out)
	}
	// Output:
	// u1 -> hello, dept-1
	// u2 -> hello, dept-2
	// guest -> hello, stranger
}
