// Command admission demonstrates origin-based admission — the paper's
// §2 opening example: "applets originating from the local machine
// should have full access to all files, applets originating from within
// the same organization should have access to some files, and applets
// that originate from outside the organization should have no file
// access." Three copies of the *same* extension arrive from three
// origins; the admitter classifies each, auto-registers its principal
// at the origin's class, forces the outside clamp, and the lattice does
// the rest.
//
// Run with: go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"secext"
)

// probeExt imports the file-read service and, when poked, tries to read
// a target file — the probe that shows what its origin bought it.
type probeExt struct {
	read *secext.Capability
}

func (e *probeExt) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	var err error
	if e.read, err = lk.Cap("/svc/fs/read"); err != nil {
		return nil, err
	}
	poke := func(ctx *secext.Context, arg any) (any, error) {
		return e.read.Invoke(ctx, secext.FileRequest{Path: arg.(string)})
	}
	return map[string]secext.Handler{"/svc/probe": poke}, nil
}

func main() {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := w.Sys

	// A probe service node every admitted extension may extend.
	if _, err := sys.AddPrincipal("operator", "local:{dept-1,dept-2}"); err != nil {
		log.Fatal(err)
	}
	err = sys.RegisterService(secext.ServiceSpec{
		Path: "/svc/probe",
		ACL: secext.NewACL(secext.AllowEveryone(
			secext.Execute | secext.Extend | secext.List)),
		Base: secext.Binding{Owner: "base", Handler: func(ctx *secext.Context, arg any) (any, error) {
			return nil, fmt.Errorf("no probe loaded for this caller")
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Files at three sensitivities.
	operator, _ := sys.NewContext("operator")
	open := secext.NewACL(secext.AllowEveryone(secext.Read))
	files := []struct{ path, class string }{
		{"/fs/public", "others"},
		{"/fs/org-report", "organization:{dept-1}"},
		{"/fs/local-secret", "local:{dept-1,dept-2}"},
	}
	for _, f := range files {
		class, err := sys.Lattice().ParseClass(f.class)
		if err != nil {
			log.Fatal(err)
		}
		ctx, err := operator.Clamp(class)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.FS.Create(ctx, f.path, open, class); err != nil {
			log.Fatal(err)
		}
	}

	// The §2 admission rules.
	// Every tier carries a static clamp at its origin's class: the
	// clamp both bounds the extension's authority and is the key the
	// dispatcher selects handlers by, so each caller is served by the
	// probe of its own tier (§2.2's class-based selection).
	adm, err := secext.NewAdmitter(sys, []secext.AdmissionRule{
		{Pattern: "local", ClassLabel: "local:{dept-1,dept-2}",
			StaticClamp: "local:{dept-1,dept-2}", AutoRegister: true},
		{Pattern: "*.corp.example", ClassLabel: "organization:{dept-1}",
			StaticClamp: "organization:{dept-1}", AutoRegister: true},
		{Pattern: "*", ClassLabel: "others", StaticClamp: "others", AutoRegister: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	origins := []struct{ origin, name, principal string }{
		{"local", "probe-local", "localdev"},
		{"apps.corp.example", "probe-org", "orgdev"},
		{"cdn.wild.example", "probe-outside", "wilddev"},
	}
	for _, o := range origins {
		m := secext.Manifest{
			Name:      o.name,
			Principal: o.principal,
			Imports:   []string{"/svc/fs/read"},
			Extends:   []string{"/svc/probe"},
			Code:      func() secext.Extension { return &probeExt{} },
		}
		rec, err := adm.Admit(o.origin, m)
		if err != nil {
			log.Fatalf("admit %s: %v", o.origin, err)
		}
		fmt.Printf("== admitted %-14s from %-18s as %s (static %s)\n",
			o.name, o.origin, rec.Context.Class(), staticLabel(rec))
	}

	// Each admitted extension probes each file *as its own principal*.
	fmt.Printf("\n%-12s", "origin \\ file")
	for _, f := range files {
		fmt.Printf("  %-18s", f.path)
	}
	fmt.Println()
	for _, o := range origins {
		ctx, err := sys.NewContext(o.principal)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", o.principal)
		for _, f := range files {
			_, err := sys.Call(ctx, "/svc/probe", f.path)
			verdict := "ALLOW"
			if err != nil {
				verdict = "deny"
			}
			fmt.Printf("  %-18s", verdict)
		}
		fmt.Println()
	}
	fmt.Println("\nlocal code reads everything; organization code reads its")
	fmt.Println("compartment and below; outside code reads only public data —")
	fmt.Println("the paper's §2 policy, enforced by origin classification alone.")
}

func staticLabel(rec *secext.LoadedExtension) string {
	if !rec.Static.Valid() {
		return "none"
	}
	return rec.Static.String()
}
