// Command eventbus demonstrates SPIN-style multicast dispatch under the
// paper's class-based selection: a mail-delivery event is raised with
// System.CallAll, and *every* handler admissible for the caller's class
// runs — the base delivery agent plus whichever filter extensions the
// lattice admits. A department's data-loss filter sees only its own
// compartment's mail; the organization-wide auditor sees everything at
// or below organization; nothing sees up.
//
// Run with: go run ./examples/eventbus
package main

import (
	"fmt"
	"log"
	"strings"

	"secext"
)

func main() {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := w.Sys

	// The event: /svc/mail/deliver. The base handler is the delivery
	// agent itself.
	if _, err := sys.CreateNode(secext.NodeSpec{
		Path: "/svc/mail", Kind: secext.KindInterface,
		ACL: secext.NewACL(secext.AllowEveryone(secext.List)),
	}); err != nil {
		log.Fatal(err)
	}
	err = sys.RegisterService(secext.ServiceSpec{
		Path: "/svc/mail/deliver",
		ACL: secext.NewACL(secext.AllowEveryone(secext.Execute|secext.List),
			secext.Allow("postmaster", secext.Extend)),
		Base: secext.Binding{Owner: "delivery-agent",
			Handler: func(ctx *secext.Context, arg any) (any, error) {
				return fmt.Sprintf("delivered %q for %s", arg, ctx.SubjectName()), nil
			}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The postmaster installs three filter extensions at different
	// static classes.
	if _, err := sys.AddPrincipal("postmaster", "local:{dept-1,dept-2}"); err != nil {
		log.Fatal(err)
	}
	pm, _ := sys.NewContext("postmaster")
	filters := []struct{ name, static string }{
		{"dlp-dept-1", "organization:{dept-1}"}, // dept-1 data-loss filter
		{"dlp-dept-2", "organization:{dept-2}"}, // dept-2 data-loss filter
		{"org-audit", "organization"},           // org-wide auditor (no category)
	}
	for _, f := range filters {
		class, err := sys.Lattice().ParseClass(f.static)
		if err != nil {
			log.Fatal(err)
		}
		name := f.name
		err = sys.Extend(pm, "/svc/mail/deliver", secext.Binding{
			Owner: name, Static: class,
			Handler: func(ctx *secext.Context, arg any) (any, error) {
				return fmt.Sprintf("%s scanned %q at %s", name, arg, ctx.Class()), nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Senders in different compartments raise the event.
	for _, p := range []struct{ name, class string }{
		{"alice", "organization:{dept-1}"},
		{"bob", "organization:{dept-2}"},
		{"guest", "others"},
	} {
		if _, err := sys.AddPrincipal(p.name, p.class); err != nil {
			log.Fatal(err)
		}
		ctx, _ := sys.NewContext(p.name)
		fmt.Printf("== %s (%s) sends mail\n", p.name, ctx.Class())
		results, err := sys.CallAll(ctx, "/svc/mail/deliver", p.name+"-mail")
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Printf("   %v\n", r)
		}
	}
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("each sender was seen by the base agent, its own department's")
	fmt.Println("filter, and the org auditor — never by another department's.")
}
