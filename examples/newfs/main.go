// Command newfs runs the paper's §1.1 motivating example end to end:
// an extension implements a new file system by building on the existing
// mbuf service, and users reach it through the existing general
// file-system interface, which the extension has specialized. The
// loader authenticates the extension's principal, checks every declared
// import at link time (SPIN-style), checks the extend right on the
// interface, and registers the specialization at the extension's static
// security class — so only callers in that compartment are served by it.
//
// Run with: go run ./examples/newfs
package main

import (
	"fmt"
	"log"
	"strings"

	"secext"
)

// ramFS is the extension: a tiny in-memory file system that stages its
// reads through mbuf buffers, exactly the shape of the paper's example.
type ramFS struct {
	alloc, free *secext.Capability
	files       map[string][]byte
}

func (r *ramFS) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	var err error
	if r.alloc, err = lk.Cap("/svc/mbuf/alloc"); err != nil {
		return nil, err
	}
	if r.free, err = lk.Cap("/svc/mbuf/free"); err != nil {
		return nil, err
	}
	r.files = map[string][]byte{
		"/ram/motd":   []byte("welcome to the dynamically loaded file system"),
		"/ram/readme": []byte("this data never touched /fs"),
	}
	read := func(ctx *secext.Context, arg any) (any, error) {
		req, ok := arg.(secext.FileRequest)
		if !ok {
			return nil, fmt.Errorf("ramfs: bad request %T", arg)
		}
		data, ok := r.files[req.Path]
		if !ok {
			return nil, fmt.Errorf("ramfs: %s not found", req.Path)
		}
		// Stage through the mbuf substrate like a real FS would.
		out, err := r.alloc.Invoke(ctx, nil)
		if err != nil {
			return nil, fmt.Errorf("ramfs: substrate: %w", err)
		}
		buf := out.(secext.MbufBuffer)
		n := copy(buf.Data, data)
		result := append([]byte(nil), buf.Data[:n]...)
		if _, err := r.free.Invoke(ctx, buf); err != nil {
			return nil, err
		}
		return result, nil
	}
	return map[string]secext.Handler{"/svc/fs/read": read}, nil
}

func main() {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := w.Sys

	// The extension's responsible principal and its users.
	if _, err := sys.AddPrincipal("fsvendor", "organization:{dept-1}"); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AddPrincipal("dept1-user", "organization:{dept-1}"); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AddPrincipal("dept2-user", "organization:{dept-2}"); err != nil {
		log.Fatal(err)
	}

	// Grant the vendor the extend right on the interface it
	// specializes. Everyone already has execute (world default).
	if err := sys.Names().SetACLUnchecked("/svc/fs/read", secext.NewACL(
		secext.AllowEveryone(secext.Execute|secext.List),
		secext.Allow("fsvendor", secext.Extend),
	)); err != nil {
		log.Fatal(err)
	}

	token, err := sys.Registry().IssueToken("fsvendor")
	if err != nil {
		log.Fatal(err)
	}
	manifest := secext.Manifest{
		Name:      "ramfs",
		Principal: "fsvendor",
		Token:     token,
		// The declared authority: what the extension may call...
		Imports: []string{"/svc/mbuf/alloc", "/svc/mbuf/free"},
		// ...and what it may specialize.
		Extends:     []string{"/svc/fs/read"},
		StaticClass: "organization:{dept-1}",
		Code:        func() secext.Extension { return &ramFS{} },
	}
	fmt.Println("== loading extension 'ramfs'")
	rec, err := sys.Loader().Load(manifest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  digest  %s\n", rec.Digest[:16])
	fmt.Printf("  class   %s (static)\n", rec.Static)
	fmt.Printf("  imports %s\n", strings.Join(rec.Linkage.Imports(), ", "))

	// A dept-1 user reads from the new file system through the
	// *existing* interface.
	d1, _ := sys.NewContext("dept1-user")
	fmt.Println("\n== dept1-user reads /ram/motd via /svc/fs/read")
	out, err := sys.Call(d1, "/svc/fs/read", secext.FileRequest{Path: "/ram/motd"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> %q\n", out)
	fmt.Printf("  mbuf pool: %d allocations served the extension\n",
		w.Mbuf.Stats().Allocs)

	// A dept-2 user is dispatched to the base file system instead: the
	// extension's static class is not dominated by dept-2's class.
	d2, _ := sys.NewContext("dept2-user")
	fmt.Println("\n== dept2-user tries the same path")
	if _, err := sys.Call(d2, "/svc/fs/read", secext.FileRequest{Path: "/ram/motd"}); err != nil {
		fmt.Printf("  -> served by the base FS, which has no /ram: %v\n", err)
	} else {
		log.Fatal("dept2-user must not be served by the dept-1 extension")
	}

	// Unload retracts the specialization.
	fmt.Println("\n== unloading 'ramfs'")
	if err := sys.Loader().Unload("ramfs"); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Call(d1, "/svc/fs/read", secext.FileRequest{Path: "/ram/motd"}); err != nil {
		fmt.Printf("  -> back to the base FS: %v\n", err)
	} else {
		log.Fatal("extension must be gone after unload")
	}
}
