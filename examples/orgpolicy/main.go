// Command orgpolicy reproduces the paper's §2.2 organization example
// from a policy file: three linearly ordered trust levels (local >
// organization > others), four categories, five principals, and the
// exact sharing/separation matrix the paper walks through. The policy
// is plain text — review it, edit it, reload it.
//
// Run with: go run ./examples/orgpolicy
package main

import (
	"fmt"
	"log"

	"secext"
)

// policyText is the §2.2 worked example in the policy language.
const policyText = `
# "Security for Extensible Systems", HotOS 1997, section 2.2.
levels others organization local
categories myself dept-1 dept-2 outside

# "The user's applets would use a security class consisting of the
#  local label and the entire second set of labels..."
principal user    class local:{myself,dept-1,dept-2,outside}
# "...applets from within the organization would use a security class
#  consisting of the organization label in combination with either the
#  department-1, the department-2 label or both labels."
principal applet1 class organization:{dept-1}
principal applet2 class organization:{dept-2}
principal applet3 class organization:{dept-1,dept-2}
# "...applets that originate outside the local organization might
#  always run at the least level of trust."
principal outsider class others:{outside}

node /files directory multilevel class others
acl /files allow * list,write
`

func main() {
	p, err := secext.ParsePolicyString(policyText)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := p.Build(secext.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bot, _ := sys.Lattice().Bottom()
	fs, err := secext.MountFS(sys, "/data",
		secext.NewACL(secext.AllowEveryone(secext.List|secext.Write)), bot)
	if err != nil {
		log.Fatal(err)
	}

	// Each applet generates a file at its own class. The ACL is wide
	// open: every denial below is the mandatory lattice alone.
	open := secext.NewACL(secext.AllowEveryone(
		secext.Read | secext.Write | secext.WriteAppend))
	writers := []string{"applet1", "applet2", "applet3"}
	for _, name := range writers {
		ctx, err := sys.NewContext(name)
		if err != nil {
			log.Fatal(err)
		}
		path := "/data/" + name + "-file"
		if err := fs.Create(ctx, path, open, ctx.Class()); err != nil {
			log.Fatalf("create %s: %v", path, err)
		}
		if err := fs.Write(ctx, path, []byte("data of "+name)); err != nil {
			log.Fatalf("write %s: %v", path, err)
		}
	}

	// Print the access matrix the paper describes.
	readers := []string{"user", "applet1", "applet2", "applet3", "outsider"}
	fmt.Println("S1: can <reader> read <file>?  (paper §2.2)")
	fmt.Printf("%-10s", "")
	for _, wtr := range writers {
		fmt.Printf("  %-14s", wtr+"-file")
	}
	fmt.Println()
	for _, rdr := range readers {
		ctx, err := sys.NewContext(rdr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", rdr)
		for _, wtr := range writers {
			_, err := fs.Read(ctx, "/data/"+wtr+"-file")
			verdict := "ALLOW"
			if err != nil {
				if !secext.IsDenied(err) {
					log.Fatalf("unexpected error: %v", err)
				}
				verdict = "deny"
			}
			fmt.Printf("  %-14s", verdict)
		}
		fmt.Printf("  (class %s)\n", ctx.Class())
	}

	fmt.Println("\nExpected per the paper: user reads all; applet1/applet2 are")
	fmt.Println("mutually isolated; applet3 (both labels) reads both; the")
	fmt.Println("outsider reads nothing.")
}
