// Command quickstart is the smallest end-to-end tour of secext: build a
// world, register principals at different security classes, touch files
// through the protected file service, and watch the reference monitor
// allow and deny.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"secext"
)

func main() {
	// A world is the reference monitor plus the standard services:
	// /svc/fs, /svc/thread, /svc/mbuf, /svc/log, and a /fs file tree.
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := w.Sys

	// Principals carry a default security class: trust level plus
	// category compartments.
	mustAdd(sys, "alice", "organization:{dept-1}")
	mustAdd(sys, "bob", "organization:{dept-2}")
	mustAdd(sys, "guest", "others")

	alice, _ := sys.NewContext("alice")
	bob, _ := sys.NewContext("bob")
	guest, _ := sys.NewContext("guest")

	// Alice creates a file through the general file-system service.
	// The service runs at her class; the file inherits it.
	step("alice creates /fs/plan through /svc/fs/create")
	must(call(sys, alice, "/svc/fs/create", secext.FileRequest{Path: "/fs/plan"}))
	must(call(sys, alice, "/svc/fs/write",
		secext.FileRequest{Path: "/fs/plan", Data: []byte("ship it")}))

	step("alice reads it back")
	out, err := sys.Call(alice, "/svc/fs/read", secext.FileRequest{Path: "/fs/plan"})
	must(err)
	fmt.Printf("  -> %q\n", out)

	// Bob is in another compartment: the mandatory lattice denies him
	// even before the ACL matters.
	step("bob (dept-2) tries to read alice's dept-1 file")
	_, err = sys.Call(bob, "/svc/fs/read", secext.FileRequest{Path: "/fs/plan"})
	expectDenied(err)

	// The guest is below alice's level: denied too.
	step("guest (others) tries the same")
	_, err = sys.Call(guest, "/svc/fs/read", secext.FileRequest{Path: "/fs/plan"})
	expectDenied(err)

	// Everyone may report upward into the system journal (write-append
	// without read), but nobody below the top can read it.
	step("guest appends to the journal, then tries to read it")
	must(call(sys, guest, "/svc/log/append", "guest was here"))
	_, err = sys.Call(guest, "/svc/log/read", nil)
	expectDenied(err)

	// Every decision above is on the audit trail.
	step("audit trail (last 5 events)")
	for _, e := range sys.Audit().Recent(5) {
		fmt.Printf("  %s\n", e)
	}
	st := sys.Audit().Stats()
	fmt.Printf("\naudit totals: %d decisions, %d allowed, %d denied\n",
		st.Total, st.Allowed, st.Denied)
}

func mustAdd(sys *secext.System, name, class string) {
	if _, err := sys.AddPrincipal(name, class); err != nil {
		log.Fatal(err)
	}
}

func call(sys *secext.System, ctx *secext.Context, path string, arg any) error {
	_, err := sys.Call(ctx, path, arg)
	return err
}

func must(err error) {
	if err != nil {
		log.Fatalf("unexpected denial: %v", err)
	}
}

func expectDenied(err error) {
	if !secext.IsDenied(err) {
		log.Fatalf("expected a denial, got: %v", err)
	}
	fmt.Printf("  -> denied, as it should be: %v\n", err)
}

func step(s string) { fmt.Printf("\n== %s\n", s) }
