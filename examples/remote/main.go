// Command remote demonstrates the distributed face of the model: it
// starts the secextd protocol server in-process on a loopback port,
// then drives two clients against it — a department user and an
// outside guest. The connections carry nothing but an authenticated
// principal token; every command is mediated server-side by the same
// reference monitor local callers use (compare Inferno in the paper's
// §1 survey, whose security story is channel authentication — here the
// channel is authenticated *and* every operation is access-checked).
//
// Run with: go run ./examples/remote
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"strings"

	"secext"
	"secext/internal/remote"
)

func main() {
	// Server side.
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		log.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("guest", "others"); err != nil {
		log.Fatal(err)
	}
	aliceTok, _ := w.Sys.Registry().IssueToken("alice")
	guestTok, _ := w.Sys.Registry().IssueToken("guest")

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := remote.NewServer(w.Sys)
	go func() { _ = srv.Serve(l) }()
	defer func() { srv.Close(); l.Close() }()
	fmt.Printf("secextd serving on %s\n\n", l.Addr())

	// Client side: alice works with a file and an inbox.
	alice := dial(l.Addr().String())
	alice.do("AUTH " + aliceTok)
	alice.do("WHOAMI")
	alice.do("CREATE /fs/report")
	alice.do("WRITE /fs/report quarterly numbers")
	alice.do("READ /fs/report")
	alice.do("OPEN alice-inbox")

	// The guest: below alice, can report up but read nothing of hers.
	guest := dial(l.Addr().String())
	guest.do("AUTH " + guestTok)
	guest.do("READ /fs/report")          // denied: MAC + ACL
	guest.do("SEND alice-inbox tip-off") // allowed: report up
	guest.do("RECV alice-inbox")         // denied: read up
	guest.do("JOURNAL guest connected")  // allowed: append-only journal

	// Alice receives the tip.
	alice.do("RECV alice-inbox")
	alice.do("QUIT")
	guest.do("QUIT")

	fmt.Println("\nthe server's audit log saw every decision:")
	for _, e := range w.Sys.Audit().Recent(4) {
		fmt.Println(" ", e)
	}
}

// client is a tiny line-protocol driver that echoes the conversation.
type client struct {
	conn net.Conn
	rd   *bufio.Reader
	who  string
}

func dial(addr string) *client {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	c := &client{conn: conn, rd: bufio.NewReader(conn)}
	c.read() // greeting
	return c
}

func (c *client) read() string {
	line, err := c.rd.ReadString('\n')
	if err != nil {
		log.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func (c *client) do(cmd string) {
	fmt.Fprintln(c.conn, cmd)
	resp := c.read()
	shown := cmd
	if strings.HasPrefix(cmd, "AUTH ") {
		shown = "AUTH <token>"
		if f := strings.Fields(resp); len(f) >= 2 && strings.HasPrefix(resp, "OK") {
			c.who = f[1]
		}
	}
	fmt.Printf("%-8s> %s\n%-8s< %s\n", c.who, shown, c.who, resp)
}
