// Command threadmurder replays the attack the paper cites from McGraw &
// Felten (§1.2): "the ThreadMurder applet kills the threads of all
// other applets that are running in the same sandbox". It runs the
// attack twice — once against a reimplementation of the Java 1.x
// sandbox (binary trust, no isolation between applets) and once against
// the paper's model (threads as named, ACL- and class-protected
// objects) — and prints the body count.
//
// Run with: go run ./examples/threadmurder
package main

import (
	"fmt"
	"log"

	"secext"
	"secext/internal/baseline/sandbox"
)

func main() {
	fmt.Println("== the attack under the Java-sandbox baseline")
	runSandbox()
	fmt.Println("\n== the attack under the secext model")
	runSecext()
}

// runSandbox shows that the sandbox model *cannot express* per-applet
// thread protection: the kill service is either sensitive for all
// untrusted code (no applet can manage even its own threads) or open to
// all of it (ThreadMurder wins). Java 1.x shipped the second choice.
func runSandbox() {
	sb := sandbox.New(nil /* every applet untrusted */, []string{"/fs"})
	applets := []string{"victim1", "victim2", "thread-murder"}
	alive := map[string]bool{"victim1": true, "victim2": true}
	for victim := range alive {
		if sb.CheckCall("thread-murder", "/svc/thread/kill") {
			// Nothing distinguishes one applet's thread from
			// another's inside the sandbox.
			alive[victim] = false
		}
	}
	dead := 0
	for _, a := range alive {
		if !a {
			dead++
		}
	}
	fmt.Printf("  applets: %v\n", applets)
	fmt.Printf("  ThreadMurder killed %d of 2 victim threads\n", dead)
}

// runSecext gives every applet its own threads as protected objects.
// The hostile applet shares a compartment with victim1 — the worst case
// for the lattice — and still kills nothing, because the discretionary
// layer names only the owner on each thread node.
func runSecext() {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		log.Fatal(err)
	}
	sys := w.Sys
	for _, p := range []struct{ name, class string }{
		{"victim1", "organization:{dept-1}"},
		{"victim2", "organization:{dept-2}"},
		{"thread-murder", "organization:{dept-1}"}, // same compartment as victim1
	} {
		if _, err := sys.AddPrincipal(p.name, p.class); err != nil {
			log.Fatal(err)
		}
	}

	ids := make(map[string]int)
	for _, victim := range []string{"victim1", "victim2"} {
		ctx, _ := sys.NewContext(victim)
		out, err := sys.Call(ctx, "/svc/thread/spawn",
			secext.ThreadSpawnRequest{Name: victim + "-worker"})
		if err != nil {
			log.Fatal(err)
		}
		ids[victim] = out.(int)
		fmt.Printf("  %s spawned thread %d at %s\n", victim, out, ctx.Class())
	}

	murder, _ := sys.NewContext("thread-murder")
	visible, err := sys.Call(murder, "/svc/thread/list", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  thread-murder sees thread ids %v and attacks...\n", visible)
	killed := 0
	for _, id := range visible.([]int) {
		_, err := sys.Call(murder, "/svc/thread/kill", secext.ThreadKillRequest{ID: id})
		if err == nil {
			killed++
			continue
		}
		if !secext.IsDenied(err) {
			log.Fatalf("unexpected error: %v", err)
		}
		fmt.Printf("    kill %d -> %v\n", id, err)
	}
	fmt.Printf("  ThreadMurder killed %d of 2 victim threads\n", killed)

	for victim, id := range ids {
		if th, ok := w.Threads.Lookup(id); ok && th.Alive() {
			fmt.Printf("  %s's thread survived\n", victim)
		} else {
			log.Fatalf("%s's thread died!", victim)
		}
	}
	st := sys.Audit().Stats()
	fmt.Printf("  audit: %d denials recorded for the forensics team\n", st.Denied)
}
