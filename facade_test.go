package secext_test

import (
	"strings"
	"testing"

	"secext"
)

// loaderExt is a trivial extension for the facade tests.
type loaderExt struct{}

func (loaderExt) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	return map[string]secext.Handler{}, nil
}

func TestFacadeAdmitter(t *testing.T) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels: []string{"others", "local"},
	})
	if err != nil {
		t.Fatal(err)
	}
	adm, err := secext.NewAdmitter(w.Sys, []secext.AdmissionRule{
		{Pattern: "local", ClassLabel: "local", AutoRegister: true},
		{Pattern: "*", ClassLabel: "others", StaticClamp: "others", AutoRegister: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := adm.Admit("local", secext.Manifest{
		Name: "e1", Principal: "dev",
		Imports: []string{"/svc/fs/read"},
		Code:    func() secext.Extension { return loaderExt{} },
	})
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if rec.Context.Class().String() != "local" {
		t.Errorf("class = %s", rec.Context.Class())
	}
	if _, err := adm.Admit("nowhere.example", secext.Manifest{
		Name: "e2", Principal: "dev2",
		Imports: []string{"/svc/fs/read"},
		Code:    func() secext.Extension { return loaderExt{} },
	}); err != nil {
		t.Fatalf("catch-all admit: %v", err)
	}
	got, err := w.Sys.Loader().Get("e2")
	if err != nil || got.Static.String() != "others" {
		t.Errorf("clamped extension: %v, %v", got, err)
	}
}

func TestFacadeSnapshotPolicy(t *testing.T) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"lo", "hi"},
		Categories: []string{"a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("alice", "hi:{a}"); err != nil {
		t.Fatal(err)
	}
	p, err := secext.SnapshotPolicy(w.Sys)
	if err != nil {
		t.Fatalf("SnapshotPolicy: %v", err)
	}
	text := p.Format()
	for _, want := range []string{
		"levels lo hi",
		"categories a",
		"principal alice class hi:{a}",
		"service /svc/fs/read",
		"node /fs directory multilevel",
		"node /threads object multilevel",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot missing %q", want)
		}
	}
	// The snapshot of a full world is rebuildable (services come back
	// as unattached method nodes).
	sys2, err := p.Build(secext.Options{})
	if err != nil {
		t.Fatalf("rebuild world snapshot: %v", err)
	}
	if _, err := sys2.Names().ResolveUnchecked("/svc/journal"); err != nil {
		t.Errorf("rebuilt name space incomplete: %v", err)
	}
}

func TestFacadeLoaderConcurrentDuplicate(t *testing.T) {
	w, err := secext.NewWorld(secext.WorldOptions{Levels: []string{"l"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("dev", "l"); err != nil {
		t.Fatal(err)
	}
	tok, err := w.Sys.Registry().IssueToken("dev")
	if err != nil {
		t.Fatal(err)
	}
	m := secext.Manifest{
		Name: "racer", Principal: "dev", Token: tok,
		Imports: []string{"/svc/fs/read"},
		Code:    func() secext.Extension { return loaderExt{} },
	}
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := w.Sys.Loader().Load(m)
			errs <- err
		}()
	}
	ok := 0
	for i := 0; i < n; i++ {
		if err := <-errs; err == nil {
			ok++
		}
	}
	if ok != 1 {
		t.Fatalf("concurrent duplicate loads: %d succeeded, want exactly 1", ok)
	}
}

func TestFacadeExtensionLinkedCallTrust(t *testing.T) {
	// End-to-end: an extension's capability invocation under both
	// mediation disciplines, driven through the public API.
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels: []string{"others", "local"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("dev", "others"); err != nil {
		t.Fatal(err)
	}
	tok, _ := w.Sys.Registry().IssueToken("dev")

	// The extension imports mbuf alloc and extends /svc/probe.
	err = w.Sys.RegisterService(secext.ServiceSpec{
		Path: "/svc/probe",
		ACL:  secext.NewACL(secext.AllowEveryone(secext.Execute | secext.Extend | secext.List)),
		Base: secext.Binding{Owner: "base", Handler: func(ctx *secext.Context, arg any) (any, error) {
			return "base", nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := w.Sys.Loader().Load(secext.Manifest{
		Name: "prober", Principal: "dev", Token: tok,
		Imports: []string{"/svc/mbuf/alloc", "/svc/mbuf/free"},
		Extends: []string{"/svc/probe"},
		Code:    func() secext.Extension { return &capExt{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := w.Sys.NewContext("dev")
	out, err := w.Sys.Call(ctx, "/svc/probe", nil)
	if err != nil || out != "allocated" {
		t.Fatalf("mediated capability call = %v, %v", out, err)
	}

	// Revoke the import's execute right: under full mediation the
	// capability now fails at call time; under link-time trust it
	// keeps working (the check already happened at link).
	if err := w.Sys.Names().SetACLUnchecked("/svc/mbuf/alloc",
		secext.NewACL(secext.AllowEveryone(secext.List))); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.Call(ctx, "/svc/probe", nil); err == nil {
		t.Error("full mediation must re-check revoked import")
	}
	w.Sys.SetTrustLinkTime(true)
	out, err = w.Sys.Call(ctx, "/svc/probe", nil)
	if err != nil || out != "allocated" {
		t.Errorf("link-time trust after revocation = %v, %v (the SPIN trade)", out, err)
	}
	_ = rec
}

// capExt allocates one buffer via its capability and reports.
type capExt struct{ alloc, free *secext.Capability }

func (e *capExt) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	var err error
	if e.alloc, err = lk.Cap("/svc/mbuf/alloc"); err != nil {
		return nil, err
	}
	if e.free, err = lk.Cap("/svc/mbuf/free"); err != nil {
		return nil, err
	}
	h := func(ctx *secext.Context, arg any) (any, error) {
		out, err := e.alloc.Invoke(ctx, nil)
		if err != nil {
			return nil, err
		}
		if _, err := e.free.Invoke(ctx, out); err != nil {
			return nil, err
		}
		return "allocated", nil
	}
	return map[string]secext.Handler{"/svc/probe": h}, nil
}
