module secext

go 1.22
