package acl

import (
	"errors"
	"fmt"
	"strings"
	"unsafe"
)

// Subject is the view of a requesting principal the decision procedure
// needs: its name and its (transitive) group memberships. The principal
// package's types satisfy this interface.
type Subject interface {
	// SubjectName returns the principal's unique name.
	SubjectName() string
	// MemberOf reports whether the principal is a (possibly transitive)
	// member of the named group.
	MemberOf(group string) bool
}

// Membership answers transitive group-membership queries by name. The
// principal package's Frozen registry satisfies it; a reference monitor
// that pins a policy epoch passes the pinned registry so every group
// entry in a decision is judged against one consistent version of the
// membership relation — never against live mutable state that a
// concurrent revocation could change mid-decision.
type Membership interface {
	// IsMember reports whether subject is a (possibly transitive)
	// member of group.
	IsMember(subject, group string) bool
}

// WhoKind says what an entry's Who field names.
type WhoKind uint8

const (
	// Principal entries match exactly one individual by name.
	Principal WhoKind = iota
	// Group entries match every (transitive) member of the group.
	Group
	// Everyone entries match any subject; Who is ignored.
	Everyone
)

func (k WhoKind) String() string {
	switch k {
	case Principal:
		return "principal"
	case Group:
		return "group"
	case Everyone:
		return "everyone"
	}
	return fmt.Sprintf("WhoKind(%d)", uint8(k))
}

// Entry is one ACL entry: an allow or deny of a mode set to an
// individual, a group, or everyone.
type Entry struct {
	Kind  WhoKind
	Who   string // principal or group name; empty for Everyone
	Deny  bool   // negative entry
	Modes Mode
}

// Matches reports whether the entry applies to the subject, answering
// group entries through the subject's own MemberOf (which may consult
// live registry state). Decisions that have pinned an epoch should use
// MatchesIn instead.
func (e Entry) Matches(s Subject) bool {
	return e.MatchesIn(s, nil)
}

// MatchesIn reports whether the entry applies to the subject, resolving
// group entries against m when it is non-nil. A nil m falls back to the
// subject's MemberOf.
func (e Entry) MatchesIn(s Subject, m Membership) bool {
	switch e.Kind {
	case Everyone:
		return true
	case Principal:
		return s.SubjectName() == e.Who
	case Group:
		if m != nil {
			return m.IsMember(s.SubjectName(), e.Who)
		}
		return s.MemberOf(e.Who)
	}
	return false
}

// String renders the entry in the textual form accepted by ParseEntry:
// "allow alice read,execute", "deny @staff extend", "allow * list".
func (e Entry) String() string {
	verb := "allow"
	if e.Deny {
		verb = "deny"
	}
	who := e.Who
	switch e.Kind {
	case Group:
		who = "@" + e.Who
	case Everyone:
		who = "*"
	}
	return verb + " " + who + " " + e.Modes.String()
}

// Errors returned by ACL operations.
var (
	ErrBadEntry = errors.New("acl: malformed entry")
	ErrNotFound = errors.New("acl: no such entry")
)

// ParseEntry parses the textual entry form produced by Entry.String.
func ParseEntry(s string) (Entry, error) {
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return Entry{}, fmt.Errorf("%w: %q (want \"allow|deny who modes\")", ErrBadEntry, s)
	}
	var e Entry
	switch fields[0] {
	case "allow":
	case "deny":
		e.Deny = true
	default:
		return Entry{}, fmt.Errorf("%w: verb %q", ErrBadEntry, fields[0])
	}
	who := fields[1]
	switch {
	case who == "*":
		e.Kind = Everyone
	case strings.HasPrefix(who, "@"):
		e.Kind = Group
		e.Who = who[1:]
	default:
		e.Kind = Principal
		e.Who = who
	}
	if e.Kind != Everyone && e.Who == "" {
		return Entry{}, fmt.Errorf("%w: empty name in %q", ErrBadEntry, s)
	}
	m, err := ParseMode(fields[2])
	if err != nil {
		return Entry{}, err
	}
	e.Modes = m
	return e, nil
}

// ACL is an access control list: an unordered set of allow and deny
// entries. The zero ACL is empty and denies everything (fail-closed).
//
// An ACL is a plain value and is not safe for concurrent mutation; the
// name space serializes updates to the ACL attached to each node.
type ACL struct {
	entries []Entry

	// onMutate, when set, is called after every in-place entry mutation
	// (Add, Remove). The name server installs it on the private clones
	// attached to nodes so that any edit of live protection state bumps
	// the decision-cache generation, even one that bypasses SetACL.
	// Clone deliberately drops the hook: copies handed to callers are
	// not live protection state.
	onMutate func()
}

// New builds an ACL from entries.
func New(entries ...Entry) *ACL {
	a := &ACL{}
	for _, e := range entries {
		a.Add(e)
	}
	return a
}

// Allow appends a positive entry for an individual principal.
func Allow(who string, modes Mode) Entry {
	return Entry{Kind: Principal, Who: who, Modes: modes}
}

// Deny appends a negative entry for an individual principal.
func Deny(who string, modes Mode) Entry {
	return Entry{Kind: Principal, Who: who, Deny: true, Modes: modes}
}

// AllowGroup builds a positive entry for a group.
func AllowGroup(group string, modes Mode) Entry {
	return Entry{Kind: Group, Who: group, Modes: modes}
}

// DenyGroup builds a negative entry for a group.
func DenyGroup(group string, modes Mode) Entry {
	return Entry{Kind: Group, Who: group, Deny: true, Modes: modes}
}

// AllowEveryone builds a positive entry matching any subject.
func AllowEveryone(modes Mode) Entry {
	return Entry{Kind: Everyone, Modes: modes}
}

// DenyEveryone builds a negative entry matching any subject.
func DenyEveryone(modes Mode) Entry {
	return Entry{Kind: Everyone, Deny: true, Modes: modes}
}

// SetMutationHook installs a function called after every in-place
// mutation of the ACL. A nil hook clears it.
func (a *ACL) SetMutationHook(fn func()) { a.onMutate = fn }

// mutated invokes the mutation hook, if any.
func (a *ACL) mutated() {
	if a.onMutate != nil {
		a.onMutate()
	}
}

// Add inserts an entry. Entries with the same (Kind, Who, Deny) key are
// merged by mode union, so an ACL never carries duplicate keys.
func (a *ACL) Add(e Entry) {
	defer a.mutated()
	for i := range a.entries {
		x := &a.entries[i]
		if x.Kind == e.Kind && x.Who == e.Who && x.Deny == e.Deny {
			x.Modes |= e.Modes
			return
		}
	}
	a.entries = append(a.entries, e)
}

// Remove drops modes from the entry with the given key; if the entry's
// mode set becomes empty the entry is deleted. It returns ErrNotFound if
// no entry has the key.
func (a *ACL) Remove(kind WhoKind, who string, deny bool, modes Mode) error {
	for i := range a.entries {
		x := &a.entries[i]
		if x.Kind == kind && x.Who == who && x.Deny == deny {
			x.Modes &^= modes
			if x.Modes == None {
				a.entries = append(a.entries[:i], a.entries[i+1:]...)
			}
			a.mutated()
			return nil
		}
	}
	return fmt.Errorf("%w: %s %q deny=%v", ErrNotFound, kind, who, deny)
}

// Entries returns a copy of the entry list.
func (a *ACL) Entries() []Entry {
	out := make([]Entry, len(a.entries))
	copy(out, a.entries)
	return out
}

// Len reports the number of entries.
func (a *ACL) Len() int { return len(a.entries) }

// RetainedBytes estimates the heap bytes held by the ACL's entry list:
// the backing array plus each entry's name string. The name server's
// footprint accounting uses it to price distinct ACL values once.
func (a *ACL) RetainedBytes() int {
	n := int(unsafe.Sizeof(Entry{})) * cap(a.entries)
	for _, e := range a.entries {
		n += len(e.Who)
	}
	return n
}

// Clone returns a deep copy of the ACL.
func (a *ACL) Clone() *ACL {
	return &ACL{entries: a.Entries()}
}

// Granted computes the effective mode set for a subject: the union of
// all matching allow entries minus the union of all matching deny
// entries (deny-overrides).
func (a *ACL) Granted(s Subject) Mode {
	return a.GrantedIn(s, nil)
}

// GrantedIn is Granted with group entries resolved against m when it is
// non-nil (see MatchesIn).
func (a *ACL) GrantedIn(s Subject, m Membership) Mode {
	var allowed, denied Mode
	for _, e := range a.entries {
		if !e.MatchesIn(s, m) {
			continue
		}
		if e.Deny {
			denied |= e.Modes
		} else {
			allowed |= e.Modes
		}
	}
	return allowed &^ denied
}

// Check reports whether the subject is granted every mode in want.
// An empty want is always granted.
func (a *ACL) Check(s Subject, want Mode) bool {
	return a.Granted(s).Has(want)
}

// CheckIn is Check with group entries resolved against m when it is
// non-nil (see MatchesIn).
func (a *ACL) CheckIn(s Subject, want Mode, m Membership) bool {
	return a.GrantedIn(s, m).Has(want)
}

// Explanation reports how a decision came out: which entries matched
// the subject, what they contributed, and the final verdict. It exists
// for administrators (secctl, the shell) — the paper's psychological-
// acceptability argument only works if users can see *why* they were
// denied.
type Explanation struct {
	Matched []Entry // entries that matched the subject, in ACL order
	Allowed Mode    // union of matching allow entries
	Denied  Mode    // union of matching deny entries
	Granted Mode    // Allowed &^ Denied
	Want    Mode    // the requested modes
	Verdict bool    // Granted covers Want
}

// String renders the explanation as a short multi-line report.
func (e Explanation) String() string {
	var b strings.Builder
	verdict := "DENY"
	if e.Verdict {
		verdict = "ALLOW"
	}
	fmt.Fprintf(&b, "%s %s (granted %s)\n", verdict, e.Want, e.Granted)
	if len(e.Matched) == 0 {
		b.WriteString("  no entries matched the subject (fail-closed)\n")
		return b.String()
	}
	for _, m := range e.Matched {
		fmt.Fprintf(&b, "  matched: %s\n", m)
	}
	if missing := e.Want &^ e.Granted; missing != None {
		if vetoed := e.Want & e.Denied; vetoed != None {
			fmt.Fprintf(&b, "  vetoed by deny entries: %s\n", vetoed)
		}
		if ungranted := missing &^ e.Denied; ungranted != None {
			fmt.Fprintf(&b, "  never granted: %s\n", ungranted)
		}
	}
	return b.String()
}

// Explain evaluates the request like Check but keeps the working.
func (a *ACL) Explain(s Subject, want Mode) Explanation {
	return a.ExplainIn(s, want, nil)
}

// ExplainIn is Explain with group entries resolved against m when it is
// non-nil (see MatchesIn).
func (a *ACL) ExplainIn(s Subject, want Mode, m Membership) Explanation {
	ex := Explanation{Want: want}
	for _, e := range a.entries {
		if !e.MatchesIn(s, m) {
			continue
		}
		ex.Matched = append(ex.Matched, e)
		if e.Deny {
			ex.Denied |= e.Modes
		} else {
			ex.Allowed |= e.Modes
		}
	}
	ex.Granted = ex.Allowed &^ ex.Denied
	ex.Verdict = ex.Granted.Has(want)
	return ex
}

// String renders the ACL as semicolon-separated entries.
func (a *ACL) String() string {
	if len(a.entries) == 0 {
		return "(empty)"
	}
	parts := make([]string, len(a.entries))
	for i, e := range a.entries {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// Parse parses a semicolon-separated entry list as produced by String.
// The empty string and "(empty)" parse to an empty ACL.
func Parse(s string) (*ACL, error) {
	a := New()
	s = strings.TrimSpace(s)
	if s == "" || s == "(empty)" {
		return a, nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := ParseEntry(part)
		if err != nil {
			return nil, err
		}
		a.Add(e)
	}
	return a, nil
}
