package acl

import (
	"errors"
	"strings"
	"testing"
)

// fakeSubject implements Subject for tests.
type fakeSubject struct {
	name   string
	groups map[string]bool
}

func (f fakeSubject) SubjectName() string        { return f.name }
func (f fakeSubject) MemberOf(group string) bool { return f.groups[group] }

func subj(name string, groups ...string) fakeSubject {
	g := make(map[string]bool, len(groups))
	for _, x := range groups {
		g[x] = true
	}
	return fakeSubject{name: name, groups: g}
}

func TestEmptyACLDeniesAll(t *testing.T) {
	a := New()
	if a.Check(subj("alice"), Read) {
		t.Error("empty ACL must deny read")
	}
	if got := a.Granted(subj("alice")); got != None {
		t.Errorf("Granted on empty ACL = %v, want none", got)
	}
	if !a.Check(subj("alice"), None) {
		t.Error("empty mode request must always be granted")
	}
}

func TestAllowPrincipal(t *testing.T) {
	a := New(Allow("alice", Read|Execute))
	if !a.Check(subj("alice"), Read) || !a.Check(subj("alice"), Execute) {
		t.Error("alice must have read+execute")
	}
	if a.Check(subj("alice"), Write) {
		t.Error("alice must not have write")
	}
	if a.Check(subj("bob"), Read) {
		t.Error("bob must not have read")
	}
}

func TestGroupEntries(t *testing.T) {
	a := New(AllowGroup("staff", Read|List))
	if !a.Check(subj("alice", "staff"), Read|List) {
		t.Error("staff member must have read+list")
	}
	if a.Check(subj("bob"), Read) {
		t.Error("non-member must not have read")
	}
}

func TestDenyOverridesAllow(t *testing.T) {
	// Order must not matter: deny wins either way.
	a := New(Allow("alice", Read|Write), Deny("alice", Write))
	b := New(Deny("alice", Write), Allow("alice", Read|Write))
	for i, x := range []*ACL{a, b} {
		if !x.Check(subj("alice"), Read) {
			t.Errorf("acl %d: read must survive", i)
		}
		if x.Check(subj("alice"), Write) {
			t.Errorf("acl %d: deny must override allow for write", i)
		}
	}
}

func TestDenyGroupOverridesAllowPrincipal(t *testing.T) {
	// §2.1 example shape: the individual is allowed but the group is
	// banned; deny-overrides means the ban wins.
	a := New(Allow("mallory", Execute), DenyGroup("suspended", Execute))
	if a.Check(subj("mallory", "suspended"), Execute) {
		t.Error("suspended group deny must override individual allow")
	}
	if !a.Check(subj("mallory"), Execute) {
		t.Error("mallory outside group must keep execute")
	}
}

func TestEveryoneEntries(t *testing.T) {
	a := New(AllowEveryone(List), Allow("root", AllModes))
	if !a.Check(subj("anyone"), List) {
		t.Error("everyone must have list")
	}
	if a.Check(subj("anyone"), Read) {
		t.Error("anyone must not have read")
	}
	if !a.Check(subj("root"), AllModes) {
		t.Error("root must have all modes")
	}
	d := New(AllowEveryone(AllModes), DenyEveryone(Administrate))
	if d.Check(subj("x"), Administrate) {
		t.Error("deny everyone administrate must hold")
	}
	if !d.Check(subj("x"), AllModes&^Administrate) {
		t.Error("everything but administrate must be granted")
	}
}

func TestAllowUnionAcrossEntries(t *testing.T) {
	// Allow entries collect: individual + group grants union.
	a := New(Allow("alice", Read), AllowGroup("staff", Execute))
	if !a.Check(subj("alice", "staff"), Read|Execute) {
		t.Error("grants from principal and group entries must union")
	}
}

func TestAddMergesDuplicateKeys(t *testing.T) {
	a := New()
	a.Add(Allow("alice", Read))
	a.Add(Allow("alice", Write))
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (merged)", a.Len())
	}
	if !a.Check(subj("alice"), Read|Write) {
		t.Error("merged entry must carry both modes")
	}
	a.Add(Deny("alice", Read))
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (deny is a separate key)", a.Len())
	}
}

func TestRemove(t *testing.T) {
	a := New(Allow("alice", Read|Write))
	if err := a.Remove(Principal, "alice", false, Write); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if a.Check(subj("alice"), Write) {
		t.Error("write must be removed")
	}
	if !a.Check(subj("alice"), Read) {
		t.Error("read must remain")
	}
	if err := a.Remove(Principal, "alice", false, Read); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if a.Len() != 0 {
		t.Errorf("emptied entry must be deleted, Len = %d", a.Len())
	}
	if err := a.Remove(Principal, "alice", false, Read); !errors.Is(err, ErrNotFound) {
		t.Errorf("Remove missing: got %v, want ErrNotFound", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New(Allow("alice", Read))
	b := a.Clone()
	b.Add(Allow("bob", Write))
	if a.Len() != 1 {
		t.Error("mutating clone must not affect original")
	}
	ents := a.Entries()
	ents[0].Who = "evil"
	if a.Entries()[0].Who != "alice" {
		t.Error("Entries must return a copy")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	a := New(
		Allow("alice", Read|Execute),
		DenyGroup("outside", Extend|Execute),
		AllowEveryone(List),
	)
	s := a.String()
	b, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	if b.String() != s {
		t.Errorf("round trip:\n  %q\n  %q", s, b.String())
	}
	empty, err := Parse("")
	if err != nil || empty.Len() != 0 {
		t.Errorf("Parse empty: %v len=%d", err, empty.Len())
	}
	empty2, err := Parse("(empty)")
	if err != nil || empty2.Len() != 0 {
		t.Errorf("Parse (empty): %v len=%d", err, empty2.Len())
	}
}

func TestParseEntryForms(t *testing.T) {
	cases := []struct {
		in   string
		want Entry
	}{
		{"allow alice read", Allow("alice", Read)},
		{"deny @staff extend", DenyGroup("staff", Extend)},
		{"allow * list", AllowEveryone(List)},
		{"deny * all", DenyEveryone(AllModes)},
		{"allow bob none", Entry{Kind: Principal, Who: "bob"}},
	}
	for _, tc := range cases {
		got, err := ParseEntry(tc.in)
		if err != nil {
			t.Errorf("ParseEntry(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseEntry(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseEntryErrors(t *testing.T) {
	for _, bad := range []string{
		"", "allow", "allow alice", "grant alice read",
		"allow alice read write", "allow alice bogus", "deny @ read",
	} {
		if _, err := ParseEntry(bad); err == nil {
			t.Errorf("ParseEntry(%q): want error", bad)
		}
	}
	if _, err := Parse("allow alice read; garbage"); err == nil {
		t.Error("Parse with bad entry: want error")
	}
}

func TestExplain(t *testing.T) {
	a := New(
		Allow("alice", Read|Write),
		Deny("alice", Write),
		AllowGroup("staff", Execute),
	)
	ex := a.Explain(subj("alice", "staff"), Read|Write|Execute)
	if ex.Verdict {
		t.Error("verdict must be deny (write vetoed)")
	}
	if len(ex.Matched) != 3 {
		t.Errorf("matched %d entries", len(ex.Matched))
	}
	if ex.Allowed != Read|Write|Execute || ex.Denied != Write || ex.Granted != Read|Execute {
		t.Errorf("explanation = %+v", ex)
	}
	s := ex.String()
	for _, want := range []string{"DENY", "vetoed by deny entries: write", "matched:"} {
		if !strings.Contains(s, want) {
			t.Errorf("explanation text missing %q:\n%s", want, s)
		}
	}
	// Consistency with Check across the whole request space.
	for m := Mode(0); m <= AllModes; m++ {
		if a.Explain(subj("alice", "staff"), m).Verdict != a.Check(subj("alice", "staff"), m) {
			t.Fatalf("Explain and Check disagree at %v", m)
		}
	}
	// No matching entries.
	ex = a.Explain(subj("nobody"), Read)
	if ex.Verdict || len(ex.Matched) != 0 {
		t.Errorf("nobody explanation = %+v", ex)
	}
	if !strings.Contains(ex.String(), "fail-closed") {
		t.Errorf("text = %q", ex.String())
	}
	// Modes never granted show up as such.
	ex = New(Allow("x", Read)).Explain(subj("x"), Read|Delete)
	if !strings.Contains(ex.String(), "never granted: delete") {
		t.Errorf("text = %q", ex.String())
	}
	// Allow verdicts render too.
	ex = New(Allow("x", Read)).Explain(subj("x"), Read)
	if !ex.Verdict || !strings.Contains(ex.String(), "ALLOW") {
		t.Errorf("allow explanation = %+v", ex)
	}
}

func TestExecuteAndExtendIndependent(t *testing.T) {
	// The two extension interaction modes are independently grantable:
	// an extension may be allowed to call a service but not specialize
	// it, and vice versa (§2.1).
	callOnly := New(Allow("ext1", Execute))
	if !callOnly.Check(subj("ext1"), Execute) || callOnly.Check(subj("ext1"), Extend) {
		t.Error("execute without extend must be expressible")
	}
	extendOnly := New(Allow("ext2", Extend))
	if !extendOnly.Check(subj("ext2"), Extend) || extendOnly.Check(subj("ext2"), Execute) {
		t.Error("extend without execute must be expressible")
	}
}
