package acl

import "testing"

// FuzzParse checks that ACL parsing never panics and that accepted
// documents reach a Format/Parse fixed point.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"", "(empty)",
		"allow alice read",
		"allow alice read,execute; deny @staff extend",
		"allow * list; deny * administrate",
		"allow bob none",
		"deny x all",
		"allow ; deny",
		"allow a b c",
		"grant a read",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		a, err := Parse(doc)
		if err != nil {
			return
		}
		out := a.String()
		b, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", out, doc, err)
		}
		if b.String() != out {
			t.Fatalf("Format not fixed point: %q -> %q", out, b.String())
		}
	})
}

// FuzzParseMode checks mode-list parsing.
func FuzzParseMode(f *testing.F) {
	for _, seed := range []string{"", "none", "all", "read", "read,write", "read,", ",", "bogus"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMode(s)
		if err != nil {
			return
		}
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Fatalf("round trip %q -> %v -> %v (%v)", s, m, back, err)
		}
	})
}
