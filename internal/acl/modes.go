// Package acl implements the discretionary access control layer of
// "Security for Extensible Systems" (Grimm & Bershad, HotOS 1997), §2.1:
// fully featured access control lists with positive (allow) and negative
// (deny) entries for both individuals and groups, over the paper's mode
// set — read, write, write-append, execute, extend, administrate, delete,
// and list. The execute and extend modes gate the two ways extensions
// interact with the rest of the system: calling a service and
// specializing it.
//
// The paper requires negative entries but does not fix a conflict
// resolution order; this implementation uses deny-overrides (a matching
// deny entry vetoes the mode regardless of entry order), the conservative
// choice. The ordered first-match alternative is implemented by the
// Windows-NT-style baseline in internal/baseline/ntacl so the difference
// is observable.
package acl

import (
	"fmt"
	"strings"
)

// Mode is a bitmask of access modes. The set follows §2.1 of the paper.
type Mode uint16

const (
	// Read allows viewing the contents of an object.
	Read Mode = 1 << iota
	// Write allows destructively modifying the contents of an object.
	Write
	// WriteAppend allows appending to an object without reading or
	// destroying existing contents ("to better limit how objects can be
	// modified").
	WriteAppend
	// Execute allows an extension to call on a service — the first of
	// the two extension interaction modes.
	Execute
	// Extend allows an extension to extend (specialize) a service — the
	// second interaction mode.
	Extend
	// Administrate allows changing the access control list itself.
	Administrate
	// Delete allows removing the object from the name space.
	Delete
	// List allows enumerating the children of a non-leaf node, and thus
	// controls which names are visible to an extension (§2.3).
	List

	numModes = 8
)

// None is the empty mode set.
const None Mode = 0

// AllModes is the union of every defined mode.
const AllModes Mode = 1<<numModes - 1

var modeNames = [numModes]string{
	"read", "write", "write-append", "execute",
	"extend", "administrate", "delete", "list",
}

// Has reports whether m includes every mode in want.
func (m Mode) Has(want Mode) bool { return m&want == want }

// modeStrings holds the rendered form of every valid mode set so that
// Mode.String is allocation-free on the mediation hot path (the audit
// layer renders the requested modes of every mediated call).
var modeStrings [AllModes + 1]string

func init() {
	for m := Mode(0); ; m++ {
		modeStrings[m] = m.render()
		if m == AllModes {
			break
		}
	}
}

// String renders the mode set as a comma-separated list, "none" if empty.
// For valid mode sets the result is a precomputed string and no
// allocation occurs.
func (m Mode) String() string {
	if m&^AllModes == 0 && modeStrings[m] != "" {
		return modeStrings[m]
	}
	return m.render()
}

// render builds the textual form; String serves valid sets from a table.
func (m Mode) render() string {
	if m == None {
		return "none"
	}
	var parts []string
	for i := 0; i < numModes; i++ {
		if m&(1<<i) != 0 {
			parts = append(parts, modeNames[i])
		}
	}
	if m&^AllModes != 0 {
		parts = append(parts, fmt.Sprintf("invalid(%#x)", uint16(m&^AllModes)))
	}
	return strings.Join(parts, ",")
}

// ParseMode parses a comma-separated mode list as produced by String.
// "none" and the empty string parse to None; "all" parses to AllModes.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "none":
		return None, nil
	case "all":
		return AllModes, nil
	}
	var m Mode
	for _, part := range strings.Split(s, ",") {
		found := false
		for i, name := range modeNames {
			if part == name {
				m |= 1 << i
				found = true
				break
			}
		}
		if !found {
			return None, fmt.Errorf("acl: unknown access mode %q", part)
		}
	}
	return m, nil
}
