package acl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestModeString(t *testing.T) {
	cases := []struct {
		m    Mode
		want string
	}{
		{None, "none"},
		{Read, "read"},
		{Read | Write, "read,write"},
		{WriteAppend, "write-append"},
		{Execute | Extend, "execute,extend"},
		{AllModes, "read,write,write-append,execute,extend,administrate,delete,list"},
	}
	for _, tc := range cases {
		if got := tc.m.String(); got != tc.want {
			t.Errorf("(%#x).String() = %q, want %q", uint16(tc.m), got, tc.want)
		}
	}
}

func TestModeStringInvalidBits(t *testing.T) {
	m := Read | Mode(1<<12)
	s := m.String()
	if s == "read" {
		t.Errorf("invalid bits must be visible in %q", s)
	}
}

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
	}{
		{"", None},
		{"none", None},
		{"all", AllModes},
		{"read", Read},
		{"read,execute", Read | Execute},
		{"write-append", WriteAppend},
		{"administrate,delete,list", Administrate | Delete | List},
	}
	for _, tc := range cases {
		got, err := ParseMode(tc.in)
		if err != nil {
			t.Errorf("ParseMode(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode(bogus): want error")
	}
	if _, err := ParseMode("read,"); err == nil {
		t.Error("ParseMode with trailing comma: want error")
	}
}

func TestModeHas(t *testing.T) {
	m := Read | Execute
	if !m.Has(Read) || !m.Has(Execute) || !m.Has(Read|Execute) {
		t.Error("Has must accept subsets")
	}
	if m.Has(Write) || m.Has(Read|Write) {
		t.Error("Has must reject supersets")
	}
	if !m.Has(None) {
		t.Error("Has(None) must be true")
	}
}

func TestPropModeStringParseRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		m := Mode(raw) & AllModes
		got, err := ParseMode(m.String())
		return err == nil && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// randEntry generates arbitrary ACL entries over a small name universe.
type randEntry struct{ E Entry }

var names = []string{"alice", "bob", "carol", "dave"}
var groupNames = []string{"staff", "admins", "outside"}

func (randEntry) Generate(r *rand.Rand, _ int) reflect.Value {
	var e Entry
	switch r.Intn(3) {
	case 0:
		e.Kind = Principal
		e.Who = names[r.Intn(len(names))]
	case 1:
		e.Kind = Group
		e.Who = groupNames[r.Intn(len(groupNames))]
	case 2:
		e.Kind = Everyone
	}
	e.Deny = r.Intn(2) == 0
	e.Modes = Mode(r.Intn(int(AllModes))) + 1 // non-empty
	return reflect.ValueOf(randEntry{e})
}

func randomSubject(r *rand.Rand) fakeSubject {
	s := subj(names[r.Intn(len(names))])
	for _, g := range groupNames {
		if r.Intn(2) == 0 {
			s.groups[g] = true
		}
	}
	return s
}

func TestPropAllowMonotonic(t *testing.T) {
	// Adding an allow entry never shrinks any subject's granted set.
	f := func(base []randEntry, extra randEntry, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSubject(r)
		a := New()
		for _, e := range base {
			a.Add(e.E)
		}
		before := a.Granted(s)
		extra.E.Deny = false
		a.Add(extra.E)
		after := a.Granted(s)
		return after.Has(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropDenyAntitonic(t *testing.T) {
	// Adding a deny entry never grows any subject's granted set.
	f := func(base []randEntry, extra randEntry, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSubject(r)
		a := New()
		for _, e := range base {
			a.Add(e.E)
		}
		before := a.Granted(s)
		extra.E.Deny = true
		a.Add(extra.E)
		after := a.Granted(s)
		return before.Has(after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropDenyEveryoneIsAbsolute(t *testing.T) {
	// With a deny-everyone-all entry present, nothing is ever granted.
	f := func(base []randEntry, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSubject(r)
		a := New(DenyEveryone(AllModes))
		for _, e := range base {
			a.Add(e.E)
		}
		return a.Granted(s) == None
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropEntryOrderIrrelevant(t *testing.T) {
	// Deny-overrides semantics are order-independent: reversing the
	// entry insertion order yields identical decisions.
	f := func(es []randEntry, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSubject(r)
		fwd, rev := New(), New()
		for _, e := range es {
			fwd.Add(e.E)
		}
		for i := len(es) - 1; i >= 0; i-- {
			rev.Add(es[i].E)
		}
		return fwd.Granted(s) == rev.Granted(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropParseRoundTripACL(t *testing.T) {
	f := func(es []randEntry) bool {
		a := New()
		for _, e := range es {
			a.Add(e.E)
		}
		b, err := Parse(a.String())
		if err != nil {
			return false
		}
		return b.String() == a.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
