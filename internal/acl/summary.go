package acl

import "math/bits"

// This file implements freeze-time ACL compilation: an immutable
// Summary that answers the deny-overrides decision of GrantedIn with a
// few bitset probes over dense principal IDs instead of iterating the
// entry list and resolving group membership per request. Summaries are
// built once per published policy epoch (the registry and ACL are both
// frozen at that point) and shared by every reader of that epoch.

// IDSet is a bitset over dense principal IDs (bit i == principal with
// ID i). The zero value is the empty set. IDSets attached to published
// summaries are immutable and may be shared freely across epochs.
type IDSet []uint64

// Has reports whether id is in the set. Negative or out-of-range IDs
// are simply absent.
func (s IDSet) Has(id int) bool {
	w := id >> 6
	return id >= 0 && w < len(s) && s[w]&(1<<(uint(id)&63)) != 0
}

// set inserts id, growing the set as needed.
func (s *IDSet) set(id int) {
	w := id >> 6
	for len(*s) <= w {
		*s = append(*s, 0)
	}
	(*s)[w] |= 1 << (uint(id) & 63)
}

// or unions raw words into the set, growing as needed.
func (s *IDSet) or(words []uint64) {
	for len(*s) < len(words) {
		*s = append(*s, 0)
	}
	for i, w := range words {
		(*s)[i] |= w
	}
}

// And returns the intersection of s and t as a fresh set.
func (s IDSet) And(t IDSet) IDSet {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	if n == 0 {
		return nil
	}
	out := make(IDSet, n)
	for i := 0; i < n; i++ {
		out[i] = s[i] & t[i]
	}
	return out
}

// Equal reports whether s and t contain the same IDs (trailing zero
// words are ignored).
func (s IDSet) Equal(t IDSet) bool {
	long, short := s, t
	if len(short) > len(long) {
		long, short = t, s
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len reports the number of IDs in the set.
func (s IDSet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// onesIDSet returns a set containing IDs 0..n-1.
func onesIDSet(n int) IDSet {
	if n <= 0 {
		return nil
	}
	out := make(IDSet, (n+63)/64)
	for i := range out {
		out[i] = ^uint64(0)
	}
	out.maskTail(n)
	return out
}

// maskTail clears any bits at positions >= n.
func (s IDSet) maskTail(n int) {
	if n < 0 {
		n = 0
	}
	w := n >> 6
	for i := w; i < len(s); i++ {
		if i == w && n&63 != 0 {
			s[i] &= 1<<(uint(n)&63) - 1
		} else {
			s[i] = 0
		}
	}
}

// retainedBytes reports the heap bytes held by the set's backing array.
func (s IDSet) retainedBytes() int { return cap(s) * 8 }

// IDResolver maps principal and group names to the dense, append-only
// principal-ID space of a frozen registry. The principal package's
// Frozen registry satisfies it. GroupPrincipalIDs returns the raw
// bitset words (bit i == principal ID i) of the group's transitive
// member set; an unknown name yields (0, false) / nil.
type IDResolver interface {
	// PrincipalID returns the dense ID of the named principal.
	PrincipalID(name string) (int, bool)
	// GroupPrincipalIDs returns the transitive member set of the named
	// group as bitset words over principal IDs, nil if unknown. The
	// returned slice must not be mutated.
	GroupPrincipalIDs(group string) []uint64
	// NumPrincipalIDs reports how many principal IDs are allocated
	// (IDs are 0..N-1).
	NumPrincipalIDs() int
}

// Summary is the compiled form of an ACL against one frozen registry:
// per-mode allow and deny bitsets over principal IDs, with Everyone
// entries folded into mode masks. A Summary reproduces GrantedIn's
// deny-overrides verdict exactly for every principal that has an ID in
// the registry it was compiled against.
//
// Summaries are immutable after Compile returns.
type Summary struct {
	// allow[b] / deny[b] hold the principals granted / vetoed mode bit
	// b by Principal and Group entries. Everyone entries live in the
	// evAllow / evDeny masks instead of materializing all-ones sets.
	allow, deny [numModes]IDSet
	evAllow     Mode
	evDeny      Mode

	// regSensitive records whether any entry's compilation consulted
	// the membership relation or failed to resolve a name: such a
	// summary is only valid for the exact registry version it was
	// compiled against. A non-sensitive summary (individual entries
	// all resolved, plus Everyone entries) stays valid across registry
	// versions because principal IDs are append-only and stable.
	regSensitive bool
}

// Compile builds the Summary of a against r. The caller must ensure a
// is not mutated during the call (the name server compiles under its
// writer lock, against nodes' private ACL clones).
func (a *ACL) Compile(r IDResolver) *Summary {
	s := &Summary{}
	for _, e := range a.entries {
		switch e.Kind {
		case Everyone:
			if e.Deny {
				s.evDeny |= e.Modes
			} else {
				s.evAllow |= e.Modes
			}
		case Principal:
			id, ok := r.PrincipalID(e.Who)
			if !ok {
				// A name with no ID can never match a registered
				// subject, but it forces recompilation when the
				// registry changes (the principal may appear later).
				s.regSensitive = true
				continue
			}
			s.each(e, func(set *IDSet) { set.set(id) })
		case Group:
			// Group entries always depend on the membership relation.
			s.regSensitive = true
			words := r.GroupPrincipalIDs(e.Who)
			if len(words) == 0 {
				continue
			}
			s.each(e, func(set *IDSet) { set.or(words) })
		}
	}
	return s
}

// each applies fn to the per-mode set (allow or deny per e.Deny) of
// every mode bit in e.Modes.
func (s *Summary) each(e Entry, fn func(*IDSet)) {
	sets := &s.allow
	if e.Deny {
		sets = &s.deny
	}
	for m := e.Modes & AllModes; m != 0; m &= m - 1 {
		fn(&sets[bits.TrailingZeros16(uint16(m))])
	}
}

// Granted computes the effective mode set for the principal with the
// given ID: the union of matching allows minus the union of matching
// denies, exactly as GrantedIn computes it by entry iteration.
func (s *Summary) Granted(id int) Mode {
	var allowed, denied Mode
	for b := 0; b < numModes; b++ {
		bit := Mode(1) << b
		if s.evAllow&bit != 0 || s.allow[b].Has(id) {
			allowed |= bit
		}
		if s.evDeny&bit != 0 || s.deny[b].Has(id) {
			denied |= bit
		}
	}
	return allowed &^ denied
}

// Grants reports whether the principal with the given ID is granted
// every mode in want (the Summary form of CheckIn). An empty want is
// always granted.
func (s *Summary) Grants(id int, want Mode) bool {
	for m := want & AllModes; m != 0; m &= m - 1 {
		b := bits.TrailingZeros16(uint16(m))
		bit := Mode(1) << b
		if s.evDeny&bit != 0 || s.deny[b].Has(id) {
			return false
		}
		if s.evAllow&bit == 0 && !s.allow[b].Has(id) {
			return false
		}
	}
	return want&^AllModes == 0
}

// EffectiveIDs materializes the set of principal IDs (over 0..n-1)
// granted the single mode m: (everyone-or-allowed) minus denied. It is
// used to compile traversal-visibility chains at freeze time.
func (s *Summary) EffectiveIDs(m Mode, n int) IDSet {
	b := bits.TrailingZeros16(uint16(m & AllModes))
	if b >= numModes {
		return nil
	}
	bit := Mode(1) << b
	if s.evDeny&bit != 0 {
		return nil
	}
	var out IDSet
	if s.evAllow&bit != 0 {
		out = onesIDSet(n)
	} else {
		src := s.allow[b]
		out = make(IDSet, len(src))
		copy(out, src)
		out.maskTail(n)
	}
	for i, w := range s.deny[b] {
		if i >= len(out) {
			break
		}
		out[i] &^= w
	}
	return out
}

// RegSensitive reports whether the summary's verdicts depend on the
// registry version it was compiled against (group entries or
// unresolved names). Non-sensitive summaries may be reused across
// registry transitions because principal IDs are append-only.
func (s *Summary) RegSensitive() bool { return s.regSensitive }

// RetainedBytes reports the heap bytes held by the summary's bitsets
// (not counting the Summary header itself).
func (s *Summary) RetainedBytes() int {
	n := 0
	for b := 0; b < numModes; b++ {
		n += s.allow[b].retainedBytes() + s.deny[b].retainedBytes()
	}
	return n
}
