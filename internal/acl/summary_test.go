package acl

import (
	"math/rand"
	"testing"
)

// fakeResolver is a test IDResolver over a flat name→ID map and a flat
// group→members relation (transitivity is the registry's business; the
// resolver contract only says GroupPrincipalIDs IS the transitive set).
type fakeResolver struct {
	ids    map[string]int
	groups map[string][]string
	n      int
}

func newFakeResolver(principals []string, groups map[string][]string) *fakeResolver {
	r := &fakeResolver{ids: map[string]int{}, groups: groups}
	for _, p := range principals {
		r.ids[p] = r.n
		r.n++
	}
	return r
}

func (r *fakeResolver) PrincipalID(name string) (int, bool) {
	id, ok := r.ids[name]
	return id, ok
}

func (r *fakeResolver) GroupPrincipalIDs(group string) []uint64 {
	members, ok := r.groups[group]
	if !ok {
		return nil
	}
	var s IDSet
	for _, m := range members {
		if id, ok := r.ids[m]; ok {
			s.set(id)
		}
	}
	return s
}

func (r *fakeResolver) NumPrincipalIDs() int { return r.n }

// IsMember makes the resolver double as the Membership oracle, so the
// compiled and iterated paths judge group entries against the same
// relation.
func (r *fakeResolver) IsMember(subject, group string) bool {
	for _, m := range r.groups[group] {
		if m == subject {
			return true
		}
	}
	return false
}

// namedSubject is a Subject whose MemberOf always says no; tests pass
// the Membership explicitly, as epoch-pinned decisions do.
type namedSubject string

func (s namedSubject) SubjectName() string      { return string(s) }
func (s namedSubject) MemberOf(group string) bool { return false }

func TestIDSetOps(t *testing.T) {
	var s IDSet
	if s.Has(0) || s.Has(100) || s.Len() != 0 {
		t.Fatal("empty set not empty")
	}
	s.set(3)
	s.set(70)
	if !s.Has(3) || !s.Has(70) || s.Has(4) || s.Len() != 2 {
		t.Fatalf("set contents wrong: %v", s)
	}
	if s.Has(-1) {
		t.Fatal("negative ID present")
	}
	var q IDSet
	q.set(70)
	and := s.And(q)
	if !and.Has(70) || and.Has(3) || and.Len() != 1 {
		t.Fatalf("And wrong: %v", and)
	}
	if s.And(nil) != nil {
		t.Fatal("And with empty should be nil")
	}
	if !and.Equal(q) || and.Equal(s) {
		t.Fatal("Equal wrong")
	}
	// Equal must ignore trailing zero words.
	long := make(IDSet, 4)
	long[0] = 1
	short := IDSet{1}
	if !long.Equal(short) || !short.Equal(long) {
		t.Fatal("Equal should ignore trailing zeros")
	}
	ones := onesIDSet(70)
	if ones.Len() != 70 || ones.Has(70) || !ones.Has(69) {
		t.Fatalf("onesIDSet(70) wrong: len=%d", ones.Len())
	}
	if onesIDSet(0) != nil {
		t.Fatal("onesIDSet(0) should be empty")
	}
	if got := s.retainedBytes(); got < 16 {
		t.Fatalf("retainedBytes = %d, want >= 16", got)
	}
	var words IDSet
	words.or([]uint64{0, 1 << 5})
	if !words.Has(69) || words.Len() != 1 {
		t.Fatalf("or wrong: %v", words)
	}
}

func TestSummaryRegSensitive(t *testing.T) {
	r := newFakeResolver([]string{"alice", "bob"}, map[string][]string{"staff": {"bob"}})
	if New(Allow("alice", Read), AllowEveryone(List)).Compile(r).RegSensitive() {
		t.Fatal("resolved individual + everyone entries should not be registry-sensitive")
	}
	if !New(AllowGroup("staff", Read)).Compile(r).RegSensitive() {
		t.Fatal("group entry must be registry-sensitive")
	}
	if !New(Allow("ghost", Read)).Compile(r).RegSensitive() {
		t.Fatal("unresolved principal must be registry-sensitive")
	}
	if !New(AllowGroup("nosuch", Read)).Compile(r).RegSensitive() {
		t.Fatal("unknown group must be registry-sensitive")
	}
}

func TestSummaryGrantsEmptyWant(t *testing.T) {
	r := newFakeResolver([]string{"alice"}, nil)
	s := New(Deny("alice", AllModes)).Compile(r)
	if !s.Grants(0, None) {
		t.Fatal("empty want must always be granted")
	}
	if s.Grants(0, 1<<numModes) {
		t.Fatal("out-of-range mode bits must not be granted")
	}
}

// TestSummaryOracle cross-checks the compiled verdict against the
// entry-iteration oracle (GrantedIn / CheckIn) over randomized ACLs,
// memberships, and subjects — including names the registry does not
// know and groups the ACL names but the relation lacks.
func TestSummaryOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	principals := []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "p9"}
	groupNames := []string{"g0", "g1", "g2", "g3", "nosuch"}

	for trial := 0; trial < 300; trial++ {
		groups := map[string][]string{}
		for _, g := range groupNames[:4] {
			var members []string
			for _, p := range principals {
				if rng.Intn(3) == 0 {
					members = append(members, p)
				}
			}
			groups[g] = members
		}
		r := newFakeResolver(principals, groups)

		a := New()
		for i, n := 0, rng.Intn(8); i < n; i++ {
			modes := Mode(rng.Intn(int(AllModes) + 1))
			deny := rng.Intn(2) == 0
			switch rng.Intn(4) {
			case 0:
				who := principals[rng.Intn(len(principals))]
				if rng.Intn(8) == 0 {
					who = "ghost" // unresolved
				}
				if deny {
					a.Add(Deny(who, modes))
				} else {
					a.Add(Allow(who, modes))
				}
			case 1:
				g := groupNames[rng.Intn(len(groupNames))]
				if deny {
					a.Add(DenyGroup(g, modes))
				} else {
					a.Add(AllowGroup(g, modes))
				}
			default:
				if deny {
					a.Add(DenyEveryone(modes))
				} else {
					a.Add(AllowEveryone(modes))
				}
			}
		}

		sum := a.Compile(r)
		for _, p := range principals {
			id, _ := r.PrincipalID(p)
			subj := namedSubject(p)
			oracle := a.GrantedIn(subj, r)
			if got := sum.Granted(id); got != oracle {
				t.Fatalf("trial %d: Granted(%s) = %s, oracle %s\nacl: %s",
					trial, p, got, oracle, a)
			}
			for k := 0; k < 4; k++ {
				want := Mode(rng.Intn(int(AllModes) + 1))
				if got, exp := sum.Grants(id, want), a.CheckIn(subj, want, r); got != exp {
					t.Fatalf("trial %d: Grants(%s, %s) = %v, oracle %v\nacl: %s",
						trial, p, want, got, exp, a)
				}
			}
		}

		// EffectiveIDs must equal the per-principal oracle per mode.
		for b := 0; b < numModes; b++ {
			m := Mode(1) << b
			eff := sum.EffectiveIDs(m, r.NumPrincipalIDs())
			for _, p := range principals {
				id, _ := r.PrincipalID(p)
				oracle := a.GrantedIn(namedSubject(p), r).Has(m)
				if eff.Has(id) != oracle {
					t.Fatalf("trial %d: EffectiveIDs(%s).Has(%s) = %v, oracle %v\nacl: %s",
						trial, m, p, eff.Has(id), oracle, a)
				}
			}
			if eff.Has(r.NumPrincipalIDs()) {
				t.Fatalf("trial %d: EffectiveIDs leaked a bit beyond N", trial)
			}
		}
	}
}

func TestSummaryRetainedBytes(t *testing.T) {
	r := newFakeResolver([]string{"a", "b"}, nil)
	empty := New().Compile(r)
	if empty.RetainedBytes() != 0 {
		t.Fatalf("empty summary retains %d bytes", empty.RetainedBytes())
	}
	s := New(Allow("a", AllModes)).Compile(r)
	if s.RetainedBytes() < 8*numModes {
		t.Fatalf("summary retains %d bytes, want >= %d", s.RetainedBytes(), 8*numModes)
	}
}
