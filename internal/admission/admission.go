// Package admission maps code origins to security classes, realizing
// the paper's §2 motivating policy: "applets originating from the local
// machine should have full access to all files, applets originating
// from within the same organization should have access to some files,
// and applets that originate from outside the organization should have
// no file access" — and its §2.2 refinement that outside code "might
// always run at the least level of trust", i.e. carry a forced static
// clamp regardless of what its manifest claims.
//
// An Admitter sits in front of the extension loader: it classifies the
// origin, auto-registers the responsible principal at the origin's
// class if needed, forces the origin's static clamp onto the manifest,
// and only then lets the normal verification/authentication/linking
// pipeline run. Origins with no matching rule are denied outright
// (fail-closed).
package admission

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"secext/internal/extension"
	"secext/internal/lattice"
	"secext/internal/principal"
)

// Errors returned by admission.
var (
	ErrNoRule  = errors.New("admission: no rule matches origin")
	ErrBadRule = errors.New("admission: invalid rule")
)

// Rule maps an origin pattern to an admission decision. Patterns are
// matched in order, first match wins:
//
//   - "local"            matches the literal origin "local";
//   - "*.example.com"    matches any host under example.com;
//   - "*"                matches everything (the catch-all).
type Rule struct {
	// Pattern selects origins.
	Pattern string
	// ClassLabel is the class given to principals auto-registered
	// under this rule.
	ClassLabel string
	// StaticClamp, if non-empty, is forced onto every admitted
	// manifest: the extension's effective static class becomes the meet
	// of its declared class (if any) and this clamp. This is how
	// "applets that originate outside ... always run at the least level
	// of trust".
	StaticClamp string
	// AutoRegister creates unknown principals at ClassLabel. Without
	// it, manifests naming unknown principals fail authentication as
	// usual.
	AutoRegister bool
}

// Host is the subset of the loader's host the admitter needs, plus the
// registry for auto-registration. core.System satisfies it.
type Host interface {
	extension.Host
	Lattice() *lattice.Lattice
	Registry() *principal.Registry
	Loader() *extension.Loader
}

// Admitter classifies origins and admits manifests.
type Admitter struct {
	host  Host
	rules []Rule

	mu sync.Mutex // serializes auto-registration
}

// New validates the rules (labels must parse against the host lattice)
// and returns an admitter.
func New(host Host, rules []Rule) (*Admitter, error) {
	lat := host.Lattice()
	for i, r := range rules {
		if r.Pattern == "" {
			return nil, fmt.Errorf("%w: rule %d has empty pattern", ErrBadRule, i)
		}
		if _, err := lat.ParseClass(r.ClassLabel); err != nil {
			return nil, fmt.Errorf("%w: rule %d class: %v", ErrBadRule, i, err)
		}
		if r.StaticClamp != "" {
			if _, err := lat.ParseClass(r.StaticClamp); err != nil {
				return nil, fmt.Errorf("%w: rule %d clamp: %v", ErrBadRule, i, err)
			}
		}
	}
	return &Admitter{host: host, rules: append([]Rule(nil), rules...)}, nil
}

// Match returns the first rule matching origin.
func (a *Admitter) Match(origin string) (Rule, bool) {
	for _, r := range a.rules {
		if matches(r.Pattern, origin) {
			return r, true
		}
	}
	return Rule{}, false
}

func matches(pattern, origin string) bool {
	switch {
	case pattern == "*":
		return true
	case strings.HasPrefix(pattern, "*."):
		suffix := pattern[1:] // ".example.com"
		return strings.HasSuffix(origin, suffix) && len(origin) > len(suffix)
	default:
		return pattern == origin
	}
}

// Admit classifies the origin, prepares the manifest accordingly, and
// runs the loader's full admission pipeline.
func (a *Admitter) Admit(origin string, m extension.Manifest) (*extension.Loaded, error) {
	rule, ok := a.Match(origin)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoRule, origin)
	}
	lat := a.host.Lattice()

	// Auto-register the principal at the origin's class and mint its
	// token. An already-registered principal keeps its class and must
	// present its own token.
	if rule.AutoRegister {
		a.mu.Lock()
		if _, err := a.host.Registry().Principal(m.Principal); err != nil {
			class, err := lat.ParseClass(rule.ClassLabel)
			if err != nil {
				a.mu.Unlock()
				return nil, err
			}
			if _, err := a.host.Registry().AddPrincipal(m.Principal, class); err != nil {
				a.mu.Unlock()
				return nil, err
			}
		}
		a.mu.Unlock()
		tok, err := a.host.Registry().IssueToken(m.Principal)
		if err != nil {
			return nil, err
		}
		m.Token = tok
	}

	// Force the origin's clamp: the effective static class is the meet
	// of the declared class and the rule's clamp, so a manifest can
	// narrow but never escape its origin's ceiling.
	if rule.StaticClamp != "" {
		clamp, err := lat.ParseClass(rule.StaticClamp)
		if err != nil {
			return nil, err
		}
		eff := clamp
		if m.StaticClass != "" {
			declared, err := lat.ParseClass(m.StaticClass)
			if err != nil {
				return nil, fmt.Errorf("%w: static class: %v", extension.ErrVerify, err)
			}
			eff = declared.Meet(clamp)
		}
		label, err := lat.Format(eff)
		if err != nil {
			return nil, err
		}
		m.StaticClass = label
	}

	return a.host.Loader().Load(m)
}

// Rules returns a copy of the rule list.
func (a *Admitter) Rules() []Rule {
	return append([]Rule(nil), a.rules...)
}
