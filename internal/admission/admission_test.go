package admission

import (
	"errors"
	"testing"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/extension"
	"secext/internal/subject"
)

// nopExt extends nothing and imports one service.
type nopExt struct{}

func (nopExt) Init(lk *extension.Linkage) (map[string]dispatch.Handler, error) {
	return map[string]dispatch.Handler{}, nil
}

func newSys(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"myself", "dept-1", "dept-2", "outside"},
	})
	if err != nil {
		t.Fatal(err)
	}
	noop := func(ctx *subject.Context, arg any) (any, error) { return nil, nil }
	if err := sys.RegisterService(core.ServiceSpec{
		Path: "/open-svc", ACL: acl.New(acl.AllowEveryone(acl.Execute)),
		Base: dispatch.Binding{Owner: "b", Handler: noop},
	}); err != nil {
		t.Fatal(err)
	}
	// A service only organization-and-above subjects may reach (MAC).
	if err := sys.RegisterService(core.ServiceSpec{
		Path: "/org-svc", ACL: acl.New(acl.AllowEveryone(acl.Execute)),
		Class: sys.Lattice().MustClass("organization"),
		Base:  dispatch.Binding{Owner: "b", Handler: noop},
	}); err != nil {
		t.Fatal(err)
	}
	return sys
}

// paperRules is the §2 policy: local code fully trusted, organization
// code at organization, everything else pinned to the least level.
func paperRules() []Rule {
	return []Rule{
		{Pattern: "local", ClassLabel: "local:{myself,dept-1,dept-2,outside}", AutoRegister: true},
		{Pattern: "*.corp.example", ClassLabel: "organization:{dept-1}", AutoRegister: true},
		{Pattern: "*", ClassLabel: "others:{outside}", StaticClamp: "others", AutoRegister: true},
	}
}

func manifest(name, principal string, imports ...string) extension.Manifest {
	return extension.Manifest{
		Name: name, Principal: principal, Imports: imports,
		Code: func() extension.Extension { return nopExt{} },
	}
}

func TestMatchOrder(t *testing.T) {
	sys := newSys(t)
	a, err := New(sys, paperRules())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		origin  string
		pattern string
	}{
		{"local", "local"},
		{"build.corp.example", "*.corp.example"},
		{"deep.build.corp.example", "*.corp.example"},
		{"evil.example.org", "*"},
		{"corp.example", "*"}, // "*.corp.example" needs a subdomain
	}
	for _, tc := range cases {
		r, ok := a.Match(tc.origin)
		if !ok || r.Pattern != tc.pattern {
			t.Errorf("Match(%q) = %+v, %v; want pattern %q", tc.origin, r, ok, tc.pattern)
		}
	}
	if len(a.Rules()) != 3 {
		t.Error("Rules accessor")
	}
}

func TestNoRuleDenies(t *testing.T) {
	sys := newSys(t)
	a, err := New(sys, []Rule{{Pattern: "local", ClassLabel: "local"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Admit("elsewhere", manifest("x", "p")); !errors.Is(err, ErrNoRule) {
		t.Errorf("got %v, want ErrNoRule", err)
	}
}

func TestRuleValidation(t *testing.T) {
	sys := newSys(t)
	if _, err := New(sys, []Rule{{Pattern: "", ClassLabel: "local"}}); !errors.Is(err, ErrBadRule) {
		t.Errorf("empty pattern: %v", err)
	}
	if _, err := New(sys, []Rule{{Pattern: "*", ClassLabel: "bogus"}}); !errors.Is(err, ErrBadRule) {
		t.Errorf("bad class: %v", err)
	}
	if _, err := New(sys, []Rule{{Pattern: "*", ClassLabel: "local", StaticClamp: "bogus"}}); !errors.Is(err, ErrBadRule) {
		t.Errorf("bad clamp: %v", err)
	}
}

func TestLocalOriginFullTrust(t *testing.T) {
	sys := newSys(t)
	a, _ := New(sys, paperRules())
	rec, err := a.Admit("local", manifest("localext", "localdev", "/open-svc", "/org-svc"))
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	// Auto-registered at full class; both imports linked (it dominates
	// the org-svc class).
	if rec.Context.Class().String() != "local:{dept-1,dept-2,myself,outside}" {
		t.Errorf("class = %s", rec.Context.Class())
	}
	if rec.Static.Valid() {
		t.Error("local rule must not clamp")
	}
}

func TestOrgOriginMidTrust(t *testing.T) {
	sys := newSys(t)
	a, _ := New(sys, paperRules())
	rec, err := a.Admit("apps.corp.example", manifest("orgext", "orgdev", "/open-svc", "/org-svc"))
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if rec.Context.Class().String() != "organization:{dept-1}" {
		t.Errorf("class = %s", rec.Context.Class())
	}
}

func TestOutsideOriginClampedAndBlocked(t *testing.T) {
	sys := newSys(t)
	a, _ := New(sys, paperRules())
	// The outside manifest claims no static class; the rule forces
	// "others" anyway, and linking against the org service fails MAC.
	_, err := a.Admit("evil.example.org", manifest("evilext", "evildev", "/org-svc"))
	if !errors.Is(err, extension.ErrLink) {
		t.Fatalf("outside link to org service: got %v", err)
	}
	// Against open services it loads, but clamped.
	rec, err := a.Admit("evil.example.org", manifest("evilext2", "evildev", "/open-svc"))
	if err != nil {
		t.Fatalf("Admit open: %v", err)
	}
	if rec.Static.String() != "others" {
		t.Errorf("forced clamp = %s", rec.Static)
	}
	if rec.Context.Class().String() != "others" {
		t.Errorf("clamped context = %s", rec.Context.Class())
	}
}

func TestManifestCannotEscapeClamp(t *testing.T) {
	sys := newSys(t)
	a, _ := New(sys, paperRules())
	m := manifest("sneaky", "evildev2", "/open-svc")
	m.StaticClass = "local:{myself,dept-1,dept-2,outside}" // claims the top
	rec, err := a.Admit("evil.example.org", m)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	// meet(local:{...}, others) = others.
	if rec.Static.String() != "others" {
		t.Errorf("effective static = %s, must be clamped to others", rec.Static)
	}
}

func TestNoAutoRegisterRequiresToken(t *testing.T) {
	sys := newSys(t)
	rules := []Rule{{Pattern: "*", ClassLabel: "others"}} // no AutoRegister
	a, err := New(sys, rules)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown principal, no token minted: the loader's authentication
	// fails as usual.
	if _, err := a.Admit("anywhere", manifest("x", "stranger", "/open-svc")); !errors.Is(err, extension.ErrAuth) {
		t.Errorf("got %v, want ErrAuth", err)
	}
	// A registered principal still needs its token in the manifest.
	if _, err := sys.AddPrincipal("known", "others"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Admit("anywhere", manifest("y", "known", "/open-svc")); !errors.Is(err, extension.ErrAuth) {
		t.Errorf("no token: got %v, want ErrAuth", err)
	}
	tok, err := sys.Registry().IssueToken("known")
	if err != nil {
		t.Fatal(err)
	}
	m := manifest("z", "known", "/open-svc")
	m.Token = tok
	if _, err := a.Admit("anywhere", m); err != nil {
		t.Errorf("with token: %v", err)
	}
}

func TestDeclaredStaticWithoutClamp(t *testing.T) {
	sys := newSys(t)
	a, err := New(sys, []Rule{{Pattern: "*", ClassLabel: "organization:{dept-1}", AutoRegister: true}})
	if err != nil {
		t.Fatal(err)
	}
	m := manifest("declared", "dev", "/open-svc")
	m.StaticClass = "others"
	rec, err := a.Admit("anywhere", m)
	if err != nil {
		t.Fatal(err)
	}
	// No rule clamp: the manifest's own static class stands.
	if rec.Static.String() != "others" {
		t.Errorf("static = %s", rec.Static)
	}
}

func TestExistingPrincipalKeepsClass(t *testing.T) {
	sys := newSys(t)
	a, _ := New(sys, paperRules())
	// Pre-register the principal at dept-2; the catch-all rule must not
	// re-register or reclassify it.
	if _, err := sys.AddPrincipal("vendor", "organization:{dept-2}"); err != nil {
		t.Fatal(err)
	}
	rec, err := a.Admit("somewhere.else", manifest("v-ext", "vendor", "/open-svc"))
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	// Class stays dept-2; clamp still applies.
	if rec.Context.Class().String() != "others" {
		t.Errorf("clamped = %s", rec.Context.Class())
	}
	p, _ := sys.Registry().Principal("vendor")
	if p.Class().String() != "organization:{dept-2}" {
		t.Errorf("principal class changed: %s", p.Class())
	}
}
