// Package audit records security-relevant events. The paper (§1) lists
// auditing among the aspects of overall system security its access
// control model must eventually integrate with; the reference monitor in
// internal/core emits one audit event per mediated operation so that
// every allow and deny decision is observable.
//
// The log keeps a bounded in-memory ring of recent events, maintains
// running counters, and can tee events to external sinks. It is safe for
// concurrent use and is designed to stay cheap when disabled (the E7
// ablation benchmark measures the difference).
package audit

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an audited operation.
type Kind uint8

const (
	// KindCall is an invocation of a service (execute).
	KindCall Kind = iota
	// KindExtend is a specialization of a service (extend).
	KindExtend
	// KindLink is a link-time import resolution by the extension loader.
	KindLink
	// KindName is a name-space operation (lookup, bind, unbind, list).
	KindName
	// KindData is a data access (read, write, append) on an object.
	KindData
	// KindAdmin is an administrative operation (ACL or class change).
	KindAdmin
	// KindUnchecked is a host-privileged operation that bypassed the
	// reference monitor entirely (names.ResolveUnchecked and the
	// *Unchecked mutators). These are recorded so the trail shows where
	// trusted code stepped around mediation, but they are not decisions:
	// they count in Stats.Bypassed, never in Allowed or Denied.
	KindUnchecked

	numKinds = 7
)

var kindNames = [numKinds]string{"call", "extend", "link", "name", "data", "admin", "unchecked"}

func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindNames returns the display names of every kind, indexed by Kind
// value — the label set metrics layers key their per-kind counters by.
func KindNames() []string {
	out := make([]string, numKinds)
	copy(out, kindNames[:])
	return out
}

// MarshalJSON renders a known kind as its name ("call", "extend", …)
// so exported trails are self-describing; unknown values fall back to
// the bare number.
func (k Kind) MarshalJSON() ([]byte, error) {
	if int(k) < numKinds {
		return json.Marshal(kindNames[k])
	}
	return json.Marshal(uint8(k))
}

// UnmarshalJSON accepts both the named form written by MarshalJSON and
// the bare numeric form of legacy exports.
func (k *Kind) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		for i, name := range kindNames {
			if name == s {
				*k = Kind(i)
				return nil
			}
		}
		return fmt.Errorf("audit: unknown kind %q", s)
	}
	var n uint8
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	*k = Kind(n)
	return nil
}

// Event is one security-relevant occurrence.
type Event struct {
	Seq     uint64    // monotonically increasing sequence number
	Time    time.Time // wall-clock time of the decision
	Kind    Kind      // operation class
	Subject string    // principal on whose behalf the operation ran
	Class   string    // subject's security class label at decision time
	Path    string    // object name in the universal name space
	Op      string    // operation detail, e.g. requested modes
	Allowed bool      // the decision
	Reason  string    // why (which check failed, or "granted")
	// Epoch is the policy-epoch version the decision was computed
	// against (0 for events recorded before epoch plumbing, or for
	// occurrences with no deciding epoch). It correlates the audit
	// trail with the epoch-transition journal and decision traces by
	// version as well as by Seq.
	Epoch uint64 `json:",omitempty"`
}

// String renders the event in a single audit line.
func (e Event) String() string {
	verdict := "DENY"
	if e.Allowed {
		verdict = "ALLOW"
	}
	epoch := ""
	if e.Epoch != 0 {
		epoch = fmt.Sprintf(" epoch=%d", e.Epoch)
	}
	return fmt.Sprintf("#%d %s %s%s subject=%s class=%s path=%s op=%s: %s (%s)",
		e.Seq, e.Time.UTC().Format(time.RFC3339Nano), e.Kind, epoch, e.Subject,
		e.Class, e.Path, e.Op, verdict, e.Reason)
}

// Stats are running counters kept by a Log. Total, Allowed, and Denied
// count mediated decisions only; Bypassed counts unchecked operations
// recorded via RecordBypass, which appear in ByKind (KindUnchecked) and
// the ring but not in the decision counters. Dropped counts ring
// overwrites: events that have been pushed out of the bounded ring by
// newer ones (they remain in the counters and any sinks, but Recent can
// no longer return them).
type Stats struct {
	Total    uint64
	Allowed  uint64
	Denied   uint64
	Bypassed uint64
	Dropped  uint64
	ByKind   [numKinds]uint64
}

// Log is a bounded, concurrency-safe audit log.
//
// The hot path (Record) is lock-free: a writer claims a ring slot with
// one atomic increment and publishes an immutable event with one atomic
// pointer store, so concurrent mediated operations never serialize on
// the log. Mutexes remain only where they cannot hurt the hot path:
// sinkMu serializes the (rare) external sink writes — the line is
// formatted before the lock is taken, so a slow sink never holds it
// during formatting and never touches the ring — and snapMu serializes
// whole-ring snapshot reads (Recent).
//
// The zero Log is not usable; call NewLog. A nil *Log is a valid no-op
// target: all methods are safe on nil and record nothing, so callers can
// make auditing optional without branching.
type Log struct {
	enabled atomic.Bool
	seq     atomic.Uint64

	// ring holds the most recent events. pos counts slots ever claimed;
	// slot pos%len(ring) is overwritten by the claimant. Events are
	// immutable once published.
	ring []atomic.Pointer[Event]
	pos  atomic.Uint64

	// filter is applied before an event claims a slot or counts.
	filter atomic.Pointer[func(Event) bool]

	// sinks is copy-on-write: AddSink swaps in a new slice, Record loads
	// it without locking. sinkMu serializes the actual writes (and the
	// append) so sink output lines do not interleave.
	sinks  atomic.Pointer[[]io.Writer]
	sinkMu sync.Mutex

	// snapMu serializes snapshot reads; it is never taken by Record.
	snapMu sync.Mutex

	stats struct {
		total    atomic.Uint64
		allowed  atomic.Uint64
		denied   atomic.Uint64
		bypassed atomic.Uint64
		byKind   [numKinds]atomic.Uint64
	}
}

// NewLog creates an enabled log retaining the most recent capacity
// events (minimum 1).
func NewLog(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	l := &Log{ring: make([]atomic.Pointer[Event], capacity)}
	l.enabled.Store(true)
	return l
}

// SetEnabled turns recording on or off. Disabled logs drop events but
// still hand out sequence numbers so Seq stays meaningful across gaps.
func (l *Log) SetEnabled(on bool) {
	if l == nil {
		return
	}
	l.enabled.Store(on)
}

// Enabled reports whether the log is recording.
func (l *Log) Enabled() bool { return l != nil && l.enabled.Load() }

// AddSink tees every recorded event, one String line per event, to w.
func (l *Log) AddSink(w io.Writer) {
	if l == nil {
		return
	}
	l.sinkMu.Lock()
	defer l.sinkMu.Unlock()
	var next []io.Writer
	if cur := l.sinks.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, w)
	l.sinks.Store(&next)
}

// SetFilter installs a predicate; only events for which it returns true
// are recorded. A nil filter records everything.
func (l *Log) SetFilter(f func(Event) bool) {
	if l == nil {
		return
	}
	if f == nil {
		l.filter.Store(nil)
		return
	}
	l.filter.Store(&f)
}

// Record stamps and stores an event, updating counters and sinks, and
// returns the sequence number it assigned (0 when the log is nil or
// disabled) so callers can correlate other records — decision traces,
// external tickets — with the audit trail. The Seq and Time fields of
// ev are assigned by Record.
//
// Record never blocks on another recorder: the filter runs lock-free,
// the ring slot is claimed with one atomic increment, and the event is
// published with one atomic store. Sink output is formatted first and
// only then written under sinkMu, so a slow sink delays other writers
// only if they too have sink output pending — never the ring.
func (l *Log) Record(ev Event) uint64 {
	return l.record(ev, true)
}

// RecordBypass records an operation that stepped around the reference
// monitor (host-privileged *Unchecked calls). The event lands in the
// ring, the sinks, ByKind, and Stats.Bypassed, but not in Total,
// Allowed, or Denied — a bypass is the absence of a decision, and
// inflating the decision counters would corrupt the allow/deny ratios
// the experiments report.
func (l *Log) RecordBypass(ev Event) uint64 {
	return l.record(ev, false)
}

func (l *Log) record(ev Event, decision bool) uint64 {
	if l == nil || !l.enabled.Load() {
		return 0
	}
	ev.Seq = l.seq.Add(1)
	ev.Time = time.Now()

	if f := l.filter.Load(); f != nil && !(*f)(ev) {
		return ev.Seq
	}

	if decision {
		l.stats.total.Add(1)
		if ev.Allowed {
			l.stats.allowed.Add(1)
		} else {
			l.stats.denied.Add(1)
		}
	} else {
		l.stats.bypassed.Add(1)
	}
	if int(ev.Kind) < numKinds {
		l.stats.byKind[ev.Kind].Add(1)
	}

	slot := (l.pos.Add(1) - 1) % uint64(len(l.ring))
	l.ring[slot].Store(&ev)

	if sinks := l.sinks.Load(); sinks != nil && len(*sinks) > 0 {
		line := ev.String()
		l.sinkMu.Lock()
		for _, w := range *sinks {
			fmt.Fprintln(w, line)
		}
		l.sinkMu.Unlock()
	}
	return ev.Seq
}

// Recent returns up to n of the most recent events, oldest first.
// n <= 0 returns all retained events.
//
// The snapshot reads the ring slots without stopping writers; events
// are ordered by sequence number, so a record that lands mid-snapshot
// may or may not appear but can never reorder what does.
func (l *Log) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	var ordered []Event
	for i := range l.ring {
		if e := l.ring[i].Load(); e != nil {
			ordered = append(ordered, *e)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Seq < ordered[j].Seq })
	if n > 0 && len(ordered) > n {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

// Query selects retained events. Zero-valued fields match anything.
type Query struct {
	Subject    string // principal name
	Path       string // exact object path
	PathPrefix string // object path prefix ("/fs" matches "/fs/x")
	Kind       Kind   // operation class; only used when HasKind
	HasKind    bool
	DeniedOnly bool // only denials
	// Limit, when positive, bounds Select to the most recent Limit
	// matching events, so callers serving remote or HTTP requests never
	// copy the whole ring per query. 0 means no bound.
	Limit int
}

// match reports whether e satisfies every set field of q (Limit aside).
func (q Query) match(e Event) bool {
	if q.Subject != "" && e.Subject != q.Subject {
		return false
	}
	if q.Path != "" && e.Path != q.Path {
		return false
	}
	if q.PathPrefix != "" && !strings.HasPrefix(e.Path, q.PathPrefix) {
		return false
	}
	if q.HasKind && e.Kind != q.Kind {
		return false
	}
	if q.DeniedOnly && e.Allowed {
		return false
	}
	return true
}

// Select returns the retained events matching q, oldest first; a
// positive q.Limit keeps only the most recent that many matches.
func (l *Log) Select(q Query) []Event {
	var out []Event
	for _, e := range l.Recent(0) {
		if q.match(e) {
			out = append(out, e)
		}
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

// Count returns how many retained events match q without copying or
// ordering the ring — the cheap form of Select for callers that only
// need the number (q.Limit is ignored).
func (l *Log) Count(q Query) int {
	if l == nil {
		return 0
	}
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	n := 0
	for i := range l.ring {
		if e := l.ring[i].Load(); e != nil && q.match(*e) {
			n++
		}
	}
	return n
}

// ExportJSON writes every retained event as one JSON object per line
// (JSON Lines), oldest first — the durable form of the trail for
// offline forensics.
func (l *Log) ExportJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Recent(0) {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("audit: export: %w", err)
		}
	}
	return nil
}

// ImportJSON reads a JSON Lines stream produced by ExportJSON.
func ImportJSON(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("audit: import: %w", err)
		}
		out = append(out, e)
	}
}

// Stats returns a snapshot of the running counters.
func (l *Log) Stats() Stats {
	var s Stats
	if l == nil {
		return s
	}
	s.Total = l.stats.total.Load()
	s.Allowed = l.stats.allowed.Load()
	s.Denied = l.stats.denied.Load()
	s.Bypassed = l.stats.bypassed.Load()
	if pos := l.pos.Load(); pos > uint64(len(l.ring)) {
		s.Dropped = pos - uint64(len(l.ring))
	}
	for i := range s.ByKind {
		s.ByKind[i] = l.stats.byKind[i].Load()
	}
	return s
}
