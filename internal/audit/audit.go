// Package audit records security-relevant events. The paper (§1) lists
// auditing among the aspects of overall system security its access
// control model must eventually integrate with; the reference monitor in
// internal/core emits one audit event per mediated operation so that
// every allow and deny decision is observable.
//
// The log keeps a bounded in-memory ring of recent events, maintains
// running counters, and can tee events to external sinks. It is safe for
// concurrent use and is designed to stay cheap when disabled (the E7
// ablation benchmark measures the difference).
package audit

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an audited operation.
type Kind uint8

const (
	// KindCall is an invocation of a service (execute).
	KindCall Kind = iota
	// KindExtend is a specialization of a service (extend).
	KindExtend
	// KindLink is a link-time import resolution by the extension loader.
	KindLink
	// KindName is a name-space operation (lookup, bind, unbind, list).
	KindName
	// KindData is a data access (read, write, append) on an object.
	KindData
	// KindAdmin is an administrative operation (ACL or class change).
	KindAdmin

	numKinds = 6
)

var kindNames = [numKinds]string{"call", "extend", "link", "name", "data", "admin"}

func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one security-relevant occurrence.
type Event struct {
	Seq     uint64    // monotonically increasing sequence number
	Time    time.Time // wall-clock time of the decision
	Kind    Kind      // operation class
	Subject string    // principal on whose behalf the operation ran
	Class   string    // subject's security class label at decision time
	Path    string    // object name in the universal name space
	Op      string    // operation detail, e.g. requested modes
	Allowed bool      // the decision
	Reason  string    // why (which check failed, or "granted")
}

// String renders the event in a single audit line.
func (e Event) String() string {
	verdict := "DENY"
	if e.Allowed {
		verdict = "ALLOW"
	}
	return fmt.Sprintf("#%d %s %s subject=%s class=%s path=%s op=%s: %s (%s)",
		e.Seq, e.Time.UTC().Format(time.RFC3339Nano), e.Kind, e.Subject,
		e.Class, e.Path, e.Op, verdict, e.Reason)
}

// Stats are running counters kept by a Log.
type Stats struct {
	Total   uint64
	Allowed uint64
	Denied  uint64
	ByKind  [numKinds]uint64
}

// Log is a bounded, concurrency-safe audit log.
//
// The zero Log is not usable; call NewLog. A nil *Log is a valid no-op
// target: all methods are safe on nil and record nothing, so callers can
// make auditing optional without branching.
type Log struct {
	enabled atomic.Bool
	seq     atomic.Uint64

	mu     sync.Mutex
	ring   []Event
	next   int  // next ring slot to overwrite
	filled bool // ring has wrapped
	sinks  []io.Writer
	filter func(Event) bool

	stats struct {
		total   atomic.Uint64
		allowed atomic.Uint64
		denied  atomic.Uint64
		byKind  [numKinds]atomic.Uint64
	}
}

// NewLog creates an enabled log retaining the most recent capacity
// events (minimum 1).
func NewLog(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	l := &Log{ring: make([]Event, capacity)}
	l.enabled.Store(true)
	return l
}

// SetEnabled turns recording on or off. Disabled logs drop events but
// still hand out sequence numbers so Seq stays meaningful across gaps.
func (l *Log) SetEnabled(on bool) {
	if l == nil {
		return
	}
	l.enabled.Store(on)
}

// Enabled reports whether the log is recording.
func (l *Log) Enabled() bool { return l != nil && l.enabled.Load() }

// AddSink tees every recorded event, one String line per event, to w.
func (l *Log) AddSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sinks = append(l.sinks, w)
}

// SetFilter installs a predicate; only events for which it returns true
// are recorded. A nil filter records everything.
func (l *Log) SetFilter(f func(Event) bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.filter = f
}

// Record stamps and stores an event, updating counters and sinks.
// The Seq and Time fields of ev are assigned by Record.
func (l *Log) Record(ev Event) {
	if l == nil || !l.enabled.Load() {
		return
	}
	ev.Seq = l.seq.Add(1)
	ev.Time = time.Now()

	l.mu.Lock()
	if l.filter != nil && !l.filter(ev) {
		l.mu.Unlock()
		return
	}
	l.ring[l.next] = ev
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.filled = true
	}
	sinks := l.sinks
	l.mu.Unlock()

	l.stats.total.Add(1)
	if ev.Allowed {
		l.stats.allowed.Add(1)
	} else {
		l.stats.denied.Add(1)
	}
	if int(ev.Kind) < numKinds {
		l.stats.byKind[ev.Kind].Add(1)
	}
	for _, w := range sinks {
		fmt.Fprintln(w, ev.String())
	}
}

// Recent returns up to n of the most recent events, oldest first.
// n <= 0 returns all retained events.
func (l *Log) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var ordered []Event
	if l.filled {
		ordered = append(ordered, l.ring[l.next:]...)
		ordered = append(ordered, l.ring[:l.next]...)
	} else {
		ordered = append(ordered, l.ring[:l.next]...)
	}
	if n > 0 && len(ordered) > n {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

// Query selects retained events. Zero-valued fields match anything.
type Query struct {
	Subject    string // principal name
	Path       string // exact object path
	PathPrefix string // object path prefix ("/fs" matches "/fs/x")
	Kind       Kind   // operation class; only used when HasKind
	HasKind    bool
	DeniedOnly bool // only denials
}

// Select returns the retained events matching q, oldest first.
func (l *Log) Select(q Query) []Event {
	var out []Event
	for _, e := range l.Recent(0) {
		if q.Subject != "" && e.Subject != q.Subject {
			continue
		}
		if q.Path != "" && e.Path != q.Path {
			continue
		}
		if q.PathPrefix != "" && !strings.HasPrefix(e.Path, q.PathPrefix) {
			continue
		}
		if q.HasKind && e.Kind != q.Kind {
			continue
		}
		if q.DeniedOnly && e.Allowed {
			continue
		}
		out = append(out, e)
	}
	return out
}

// ExportJSON writes every retained event as one JSON object per line
// (JSON Lines), oldest first — the durable form of the trail for
// offline forensics.
func (l *Log) ExportJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Recent(0) {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("audit: export: %w", err)
		}
	}
	return nil
}

// ImportJSON reads a JSON Lines stream produced by ExportJSON.
func ImportJSON(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("audit: import: %w", err)
		}
		out = append(out, e)
	}
}

// Stats returns a snapshot of the running counters.
func (l *Log) Stats() Stats {
	var s Stats
	if l == nil {
		return s
	}
	s.Total = l.stats.total.Load()
	s.Allowed = l.stats.allowed.Load()
	s.Denied = l.stats.denied.Load()
	for i := range s.ByKind {
		s.ByKind[i] = l.stats.byKind[i].Load()
	}
	return s
}
