package audit

import (
	"strings"
	"sync"
	"testing"
)

func ev(kind Kind, subject, path string, allowed bool) Event {
	return Event{Kind: kind, Subject: subject, Path: path, Op: "execute",
		Class: "others", Allowed: allowed, Reason: "test"}
}

func TestRecordAndRecent(t *testing.T) {
	l := NewLog(10)
	l.Record(ev(KindCall, "alice", "/svc/a", true))
	l.Record(ev(KindCall, "bob", "/svc/b", false))
	got := l.Recent(0)
	if len(got) != 2 {
		t.Fatalf("Recent = %d events, want 2", len(got))
	}
	if got[0].Subject != "alice" || got[1].Subject != "bob" {
		t.Errorf("order wrong: %v", got)
	}
	if got[0].Seq >= got[1].Seq {
		t.Errorf("sequence numbers must increase: %d %d", got[0].Seq, got[1].Seq)
	}
	if got[0].Time.IsZero() {
		t.Error("Record must stamp time")
	}
}

func TestRingWrap(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 5; i++ {
		l.Record(ev(KindCall, "p", string(rune('a'+i)), true))
	}
	got := l.Recent(0)
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	if got[0].Path != "c" || got[2].Path != "e" {
		t.Errorf("ring contents wrong: %v %v %v", got[0].Path, got[1].Path, got[2].Path)
	}
	if last := l.Recent(1); len(last) != 1 || last[0].Path != "e" {
		t.Errorf("Recent(1) = %v", last)
	}
}

func TestStats(t *testing.T) {
	l := NewLog(8)
	l.Record(ev(KindCall, "a", "/x", true))
	l.Record(ev(KindCall, "a", "/x", false))
	l.Record(ev(KindExtend, "a", "/x", true))
	l.Record(ev(KindData, "a", "/x", false))
	s := l.Stats()
	if s.Total != 4 || s.Allowed != 2 || s.Denied != 2 {
		t.Errorf("Stats = %+v", s)
	}
	if s.ByKind[KindCall] != 2 || s.ByKind[KindExtend] != 1 || s.ByKind[KindData] != 1 {
		t.Errorf("ByKind = %v", s.ByKind)
	}
}

func TestDisable(t *testing.T) {
	l := NewLog(8)
	l.Record(ev(KindCall, "a", "/x", true))
	l.SetEnabled(false)
	if l.Enabled() {
		t.Error("Enabled after SetEnabled(false)")
	}
	l.Record(ev(KindCall, "a", "/y", true))
	if got := len(l.Recent(0)); got != 1 {
		t.Errorf("disabled log recorded: %d events", got)
	}
	l.SetEnabled(true)
	l.Record(ev(KindCall, "a", "/z", true))
	if got := len(l.Recent(0)); got != 2 {
		t.Errorf("re-enabled log: %d events, want 2", got)
	}
}

func TestNilLogIsNoop(t *testing.T) {
	var l *Log
	l.Record(ev(KindCall, "a", "/x", true)) // must not panic
	l.SetEnabled(true)
	l.SetFilter(nil)
	l.AddSink(&strings.Builder{})
	if l.Enabled() {
		t.Error("nil log must report disabled")
	}
	if l.Recent(0) != nil {
		t.Error("nil log Recent must be nil")
	}
	if s := l.Stats(); s.Total != 0 {
		t.Error("nil log Stats must be zero")
	}
}

func TestFilter(t *testing.T) {
	l := NewLog(8)
	l.SetFilter(func(e Event) bool { return !e.Allowed }) // denials only
	l.Record(ev(KindCall, "a", "/x", true))
	l.Record(ev(KindCall, "a", "/y", false))
	got := l.Recent(0)
	if len(got) != 1 || got[0].Path != "/y" {
		t.Errorf("filter failed: %v", got)
	}
	if s := l.Stats(); s.Total != 1 {
		t.Errorf("filtered events must not count: %+v", s)
	}
}

func TestSink(t *testing.T) {
	l := NewLog(8)
	var buf strings.Builder
	l.AddSink(&buf)
	l.Record(ev(KindExtend, "mallory", "/svc/fs", false))
	line := buf.String()
	for _, want := range []string{"DENY", "mallory", "/svc/fs", "extend", "test"} {
		if !strings.Contains(line, want) {
			t.Errorf("sink line %q missing %q", line, want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := ev(KindCall, "alice", "/svc/a", true)
	e.Seq = 7
	s := e.String()
	for _, want := range []string{"#7", "ALLOW", "alice", "call"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must render")
	}
	for k := Kind(0); k < numKinds; k++ {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("kind %d missing name", k)
		}
	}
}

func TestMinimumCapacity(t *testing.T) {
	l := NewLog(0)
	l.Record(ev(KindCall, "a", "/x", true))
	l.Record(ev(KindCall, "a", "/y", true))
	got := l.Recent(0)
	if len(got) != 1 || got[0].Path != "/y" {
		t.Errorf("capacity clamp: %v", got)
	}
}

func TestSelect(t *testing.T) {
	l := NewLog(32)
	l.Record(ev(KindCall, "alice", "/svc/a", true))
	l.Record(ev(KindCall, "bob", "/svc/a", false))
	l.Record(ev(KindData, "alice", "/fs/x", false))
	l.Record(ev(KindData, "alice", "/fs/y", true))

	if got := l.Select(Query{Subject: "alice"}); len(got) != 3 {
		t.Errorf("by subject: %d", len(got))
	}
	if got := l.Select(Query{Path: "/svc/a"}); len(got) != 2 {
		t.Errorf("by path: %d", len(got))
	}
	if got := l.Select(Query{PathPrefix: "/fs"}); len(got) != 2 {
		t.Errorf("by prefix: %d", len(got))
	}
	if got := l.Select(Query{Kind: KindData, HasKind: true}); len(got) != 2 {
		t.Errorf("by kind: %d", len(got))
	}
	if got := l.Select(Query{DeniedOnly: true}); len(got) != 2 {
		t.Errorf("denials: %d", len(got))
	}
	got := l.Select(Query{Subject: "alice", DeniedOnly: true, PathPrefix: "/fs"})
	if len(got) != 1 || got[0].Path != "/fs/x" {
		t.Errorf("combined: %v", got)
	}
	if got := l.Select(Query{}); len(got) != 4 {
		t.Errorf("match-all: %d", len(got))
	}
	var nilLog *Log
	if got := nilLog.Select(Query{}); got != nil {
		t.Error("nil log Select must be nil")
	}
}

func TestExportImportJSON(t *testing.T) {
	l := NewLog(16)
	l.Record(ev(KindCall, "alice", "/svc/a", true))
	l.Record(ev(KindData, "bob", "/fs/x", false))
	var buf strings.Builder
	if err := l.ExportJSON(&buf); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	if lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1; lines != 2 {
		t.Errorf("exported %d lines", lines)
	}
	back, err := ImportJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ImportJSON: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("imported %d events", len(back))
	}
	orig := l.Recent(0)
	for i := range back {
		if back[i].Subject != orig[i].Subject || back[i].Allowed != orig[i].Allowed ||
			back[i].Kind != orig[i].Kind || back[i].Seq != orig[i].Seq ||
			!back[i].Time.Equal(orig[i].Time) {
			t.Errorf("event %d mismatch: %+v vs %+v", i, back[i], orig[i])
		}
	}
	// Corrupt input fails cleanly.
	if _, err := ImportJSON(strings.NewReader("{bad json\n")); err == nil {
		t.Error("corrupt import must fail")
	}
	// Empty input yields nothing.
	if got, err := ImportJSON(strings.NewReader("")); err != nil || len(got) != 0 {
		t.Errorf("empty import = %v, %v", got, err)
	}
}

func TestConcurrentRecord(t *testing.T) {
	l := NewLog(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Record(ev(KindCall, "p", "/x", j%2 == 0))
			}
		}()
	}
	wg.Wait()
	s := l.Stats()
	if s.Total != 1600 || s.Allowed != 800 || s.Denied != 800 {
		t.Errorf("Stats = %+v", s)
	}
	if got := len(l.Recent(0)); got != 64 {
		t.Errorf("ring retained %d, want 64", got)
	}
}

func TestRecordBypassCountsSeparately(t *testing.T) {
	l := NewLog(16)
	l.Record(ev(KindCall, "alice", "/svc/x", true))
	l.RecordBypass(Event{Kind: KindUnchecked, Subject: "host",
		Path: "/boot/x", Op: "bind-unchecked", Allowed: true, Reason: "bypassed mediation"})

	s := l.Stats()
	if s.Total != 1 || s.Allowed != 1 || s.Denied != 0 {
		t.Errorf("decision counters polluted by bypass: %+v", s)
	}
	if s.Bypassed != 1 || s.ByKind[KindUnchecked] != 1 {
		t.Errorf("bypass not counted: %+v", s)
	}

	// The event itself must land in the ring like any other.
	recent := l.Recent(0)
	if len(recent) != 2 {
		t.Fatalf("ring holds %d events, want 2", len(recent))
	}
	last := recent[len(recent)-1]
	if last.Kind != KindUnchecked || last.Op != "bind-unchecked" {
		t.Errorf("ring event = %+v", last)
	}
	if last.Kind.String() != "unchecked" {
		t.Errorf("Kind string = %q", last.Kind.String())
	}
}

func TestRecordBypassOnNilAndDisabled(t *testing.T) {
	var nilLog *Log
	nilLog.RecordBypass(Event{Kind: KindUnchecked}) // must not panic
	l := NewLog(4)
	l.SetEnabled(false)
	l.RecordBypass(Event{Kind: KindUnchecked})
	if s := l.Stats(); s.Bypassed != 0 {
		t.Errorf("disabled log counted a bypass: %+v", s)
	}
}
