package audit

import (
	"strings"
	"sync"
	"testing"
)

func ev(kind Kind, subject, path string, allowed bool) Event {
	return Event{Kind: kind, Subject: subject, Path: path, Op: "execute",
		Class: "others", Allowed: allowed, Reason: "test"}
}

func TestRecordAndRecent(t *testing.T) {
	l := NewLog(10)
	l.Record(ev(KindCall, "alice", "/svc/a", true))
	l.Record(ev(KindCall, "bob", "/svc/b", false))
	got := l.Recent(0)
	if len(got) != 2 {
		t.Fatalf("Recent = %d events, want 2", len(got))
	}
	if got[0].Subject != "alice" || got[1].Subject != "bob" {
		t.Errorf("order wrong: %v", got)
	}
	if got[0].Seq >= got[1].Seq {
		t.Errorf("sequence numbers must increase: %d %d", got[0].Seq, got[1].Seq)
	}
	if got[0].Time.IsZero() {
		t.Error("Record must stamp time")
	}
}

func TestRingWrap(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 5; i++ {
		l.Record(ev(KindCall, "p", string(rune('a'+i)), true))
	}
	got := l.Recent(0)
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	if got[0].Path != "c" || got[2].Path != "e" {
		t.Errorf("ring contents wrong: %v %v %v", got[0].Path, got[1].Path, got[2].Path)
	}
	if last := l.Recent(1); len(last) != 1 || last[0].Path != "e" {
		t.Errorf("Recent(1) = %v", last)
	}
}

func TestStats(t *testing.T) {
	l := NewLog(8)
	l.Record(ev(KindCall, "a", "/x", true))
	l.Record(ev(KindCall, "a", "/x", false))
	l.Record(ev(KindExtend, "a", "/x", true))
	l.Record(ev(KindData, "a", "/x", false))
	s := l.Stats()
	if s.Total != 4 || s.Allowed != 2 || s.Denied != 2 {
		t.Errorf("Stats = %+v", s)
	}
	if s.ByKind[KindCall] != 2 || s.ByKind[KindExtend] != 1 || s.ByKind[KindData] != 1 {
		t.Errorf("ByKind = %v", s.ByKind)
	}
}

func TestDisable(t *testing.T) {
	l := NewLog(8)
	l.Record(ev(KindCall, "a", "/x", true))
	l.SetEnabled(false)
	if l.Enabled() {
		t.Error("Enabled after SetEnabled(false)")
	}
	l.Record(ev(KindCall, "a", "/y", true))
	if got := len(l.Recent(0)); got != 1 {
		t.Errorf("disabled log recorded: %d events", got)
	}
	l.SetEnabled(true)
	l.Record(ev(KindCall, "a", "/z", true))
	if got := len(l.Recent(0)); got != 2 {
		t.Errorf("re-enabled log: %d events, want 2", got)
	}
}

func TestNilLogIsNoop(t *testing.T) {
	var l *Log
	l.Record(ev(KindCall, "a", "/x", true)) // must not panic
	l.SetEnabled(true)
	l.SetFilter(nil)
	l.AddSink(&strings.Builder{})
	if l.Enabled() {
		t.Error("nil log must report disabled")
	}
	if l.Recent(0) != nil {
		t.Error("nil log Recent must be nil")
	}
	if s := l.Stats(); s.Total != 0 {
		t.Error("nil log Stats must be zero")
	}
}

func TestFilter(t *testing.T) {
	l := NewLog(8)
	l.SetFilter(func(e Event) bool { return !e.Allowed }) // denials only
	l.Record(ev(KindCall, "a", "/x", true))
	l.Record(ev(KindCall, "a", "/y", false))
	got := l.Recent(0)
	if len(got) != 1 || got[0].Path != "/y" {
		t.Errorf("filter failed: %v", got)
	}
	if s := l.Stats(); s.Total != 1 {
		t.Errorf("filtered events must not count: %+v", s)
	}
}

func TestSink(t *testing.T) {
	l := NewLog(8)
	var buf strings.Builder
	l.AddSink(&buf)
	l.Record(ev(KindExtend, "mallory", "/svc/fs", false))
	line := buf.String()
	for _, want := range []string{"DENY", "mallory", "/svc/fs", "extend", "test"} {
		if !strings.Contains(line, want) {
			t.Errorf("sink line %q missing %q", line, want)
		}
	}
}

func TestEventString(t *testing.T) {
	e := ev(KindCall, "alice", "/svc/a", true)
	e.Seq = 7
	s := e.String()
	for _, want := range []string{"#7", "ALLOW", "alice", "call"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind must render")
	}
	for k := Kind(0); k < numKinds; k++ {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("kind %d missing name", k)
		}
	}
}

func TestMinimumCapacity(t *testing.T) {
	l := NewLog(0)
	l.Record(ev(KindCall, "a", "/x", true))
	l.Record(ev(KindCall, "a", "/y", true))
	got := l.Recent(0)
	if len(got) != 1 || got[0].Path != "/y" {
		t.Errorf("capacity clamp: %v", got)
	}
}

func TestSelect(t *testing.T) {
	l := NewLog(32)
	l.Record(ev(KindCall, "alice", "/svc/a", true))
	l.Record(ev(KindCall, "bob", "/svc/a", false))
	l.Record(ev(KindData, "alice", "/fs/x", false))
	l.Record(ev(KindData, "alice", "/fs/y", true))

	if got := l.Select(Query{Subject: "alice"}); len(got) != 3 {
		t.Errorf("by subject: %d", len(got))
	}
	if got := l.Select(Query{Path: "/svc/a"}); len(got) != 2 {
		t.Errorf("by path: %d", len(got))
	}
	if got := l.Select(Query{PathPrefix: "/fs"}); len(got) != 2 {
		t.Errorf("by prefix: %d", len(got))
	}
	if got := l.Select(Query{Kind: KindData, HasKind: true}); len(got) != 2 {
		t.Errorf("by kind: %d", len(got))
	}
	if got := l.Select(Query{DeniedOnly: true}); len(got) != 2 {
		t.Errorf("denials: %d", len(got))
	}
	got := l.Select(Query{Subject: "alice", DeniedOnly: true, PathPrefix: "/fs"})
	if len(got) != 1 || got[0].Path != "/fs/x" {
		t.Errorf("combined: %v", got)
	}
	if got := l.Select(Query{}); len(got) != 4 {
		t.Errorf("match-all: %d", len(got))
	}
	var nilLog *Log
	if got := nilLog.Select(Query{}); got != nil {
		t.Error("nil log Select must be nil")
	}
}

func TestExportImportJSON(t *testing.T) {
	l := NewLog(16)
	l.Record(ev(KindCall, "alice", "/svc/a", true))
	l.Record(ev(KindData, "bob", "/fs/x", false))
	var buf strings.Builder
	if err := l.ExportJSON(&buf); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	if lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1; lines != 2 {
		t.Errorf("exported %d lines", lines)
	}
	back, err := ImportJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ImportJSON: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("imported %d events", len(back))
	}
	orig := l.Recent(0)
	for i := range back {
		if back[i].Subject != orig[i].Subject || back[i].Allowed != orig[i].Allowed ||
			back[i].Kind != orig[i].Kind || back[i].Seq != orig[i].Seq ||
			!back[i].Time.Equal(orig[i].Time) {
			t.Errorf("event %d mismatch: %+v vs %+v", i, back[i], orig[i])
		}
	}
	// Corrupt input fails cleanly.
	if _, err := ImportJSON(strings.NewReader("{bad json\n")); err == nil {
		t.Error("corrupt import must fail")
	}
	// Empty input yields nothing.
	if got, err := ImportJSON(strings.NewReader("")); err != nil || len(got) != 0 {
		t.Errorf("empty import = %v, %v", got, err)
	}
}

func TestConcurrentRecord(t *testing.T) {
	l := NewLog(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Record(ev(KindCall, "p", "/x", j%2 == 0))
			}
		}()
	}
	wg.Wait()
	s := l.Stats()
	if s.Total != 1600 || s.Allowed != 800 || s.Denied != 800 {
		t.Errorf("Stats = %+v", s)
	}
	if got := len(l.Recent(0)); got != 64 {
		t.Errorf("ring retained %d, want 64", got)
	}
}

func TestRecordBypassCountsSeparately(t *testing.T) {
	l := NewLog(16)
	l.Record(ev(KindCall, "alice", "/svc/x", true))
	l.RecordBypass(Event{Kind: KindUnchecked, Subject: "host",
		Path: "/boot/x", Op: "bind-unchecked", Allowed: true, Reason: "bypassed mediation"})

	s := l.Stats()
	if s.Total != 1 || s.Allowed != 1 || s.Denied != 0 {
		t.Errorf("decision counters polluted by bypass: %+v", s)
	}
	if s.Bypassed != 1 || s.ByKind[KindUnchecked] != 1 {
		t.Errorf("bypass not counted: %+v", s)
	}

	// The event itself must land in the ring like any other.
	recent := l.Recent(0)
	if len(recent) != 2 {
		t.Fatalf("ring holds %d events, want 2", len(recent))
	}
	last := recent[len(recent)-1]
	if last.Kind != KindUnchecked || last.Op != "bind-unchecked" {
		t.Errorf("ring event = %+v", last)
	}
	if last.Kind.String() != "unchecked" {
		t.Errorf("Kind string = %q", last.Kind.String())
	}
}

func TestRecordBypassOnNilAndDisabled(t *testing.T) {
	var nilLog *Log
	nilLog.RecordBypass(Event{Kind: KindUnchecked}) // must not panic
	l := NewLog(4)
	l.SetEnabled(false)
	l.RecordBypass(Event{Kind: KindUnchecked})
	if s := l.Stats(); s.Bypassed != 0 {
		t.Errorf("disabled log counted a bypass: %+v", s)
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	l := NewLog(16)
	l.Record(ev(KindCall, "alice", "/svc/a", true))
	l.Record(ev(KindData, "bob", "/fs/x", false))
	var buf strings.Builder
	if err := l.ExportJSON(&buf); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	// The modern export carries kind names, not numbers.
	if !strings.Contains(buf.String(), `"Kind":"call"`) ||
		!strings.Contains(buf.String(), `"Kind":"data"`) {
		t.Fatalf("export lacks named kinds:\n%s", buf.String())
	}
	back, err := ImportJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ImportJSON: %v", err)
	}
	if len(back) != 2 || back[0].Kind != KindCall || back[1].Kind != KindData {
		t.Fatalf("named round trip = %+v", back)
	}

	// Legacy exports carried bare numbers; ImportJSON must still read them.
	legacy := `{"Seq":1,"Kind":0,"Subject":"alice","Path":"/svc/a","Allowed":true}
{"Seq":2,"Kind":4,"Subject":"bob","Path":"/fs/x","Allowed":false}
`
	back, err = ImportJSON(strings.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy import: %v", err)
	}
	if len(back) != 2 || back[0].Kind != KindCall || back[1].Kind != KindData {
		t.Fatalf("legacy round trip = %+v", back)
	}

	// Unknown names are a clean error, unknown numbers are preserved.
	if _, err := ImportJSON(strings.NewReader(`{"Kind":"bogus"}` + "\n")); err == nil {
		t.Error("unknown kind name must fail")
	}
	back, err = ImportJSON(strings.NewReader(`{"Kind":200}` + "\n"))
	if err != nil || len(back) != 1 || back[0].Kind != Kind(200) {
		t.Errorf("out-of-range numeric kind = %+v, %v", back, err)
	}
}

// TestEpochJSONRoundTrip: the epoch-provenance field survives export
// and import, is omitted for zero (pre-provenance events and legacy
// exports stay byte-identical), and renders in String only when set.
func TestEpochJSONRoundTrip(t *testing.T) {
	l := NewLog(16)
	e := ev(KindData, "alice", "/fs/x", true)
	e.Epoch = 42
	l.Record(e)
	l.Record(ev(KindCall, "bob", "/svc/a", false)) // no epoch

	var buf strings.Builder
	if err := l.ExportJSON(&buf); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"Epoch":42`) {
		t.Fatalf("export lacks epoch:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Contains(lines[1], "Epoch") {
		t.Errorf("zero epoch serialized: %s", lines[1])
	}

	back, err := ImportJSON(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ImportJSON: %v", err)
	}
	if len(back) != 2 || back[0].Epoch != 42 || back[1].Epoch != 0 {
		t.Fatalf("epoch round trip = %+v", back)
	}

	// Legacy exports without the field import with a zero epoch.
	legacy := `{"Seq":1,"Kind":"call","Subject":"alice","Path":"/svc/a","Allowed":true}` + "\n"
	back, err = ImportJSON(strings.NewReader(legacy))
	if err != nil || len(back) != 1 || back[0].Epoch != 0 {
		t.Fatalf("legacy import = %+v, %v", back, err)
	}

	if s := back[0].String(); strings.Contains(s, "epoch=") {
		t.Errorf("zero-epoch String renders epoch: %q", s)
	}
	withEpoch := ev(KindData, "alice", "/fs/x", true)
	withEpoch.Epoch = 42
	if s := withEpoch.String(); !strings.Contains(s, " epoch=42") {
		t.Errorf("String %q missing epoch=42", s)
	}
}

func TestKindNames(t *testing.T) {
	names := KindNames()
	if len(names) != numKinds || names[KindCall] != "call" || names[KindUnchecked] != "unchecked" {
		t.Fatalf("KindNames = %v", names)
	}
	// The returned slice is a copy; mutating it must not corrupt the table.
	names[0] = "mutated"
	if KindNames()[0] != "call" {
		t.Error("KindNames leaked the internal table")
	}
}

func TestSelectLimit(t *testing.T) {
	l := NewLog(32)
	for i := 0; i < 6; i++ {
		l.Record(ev(KindCall, "alice", "/svc/a", i%2 == 0))
	}
	got := l.Select(Query{Limit: 2})
	if len(got) != 2 {
		t.Fatalf("limit 2 returned %d", len(got))
	}
	// Most recent matches, still oldest-first.
	if got[0].Seq != 5 || got[1].Seq != 6 {
		t.Errorf("limited window = seq %d,%d, want 5,6", got[0].Seq, got[1].Seq)
	}
	if got := l.Select(Query{DeniedOnly: true, Limit: 1}); len(got) != 1 || got[0].Seq != 6 {
		t.Errorf("filtered limit = %+v", got)
	}
	if got := l.Select(Query{Limit: 100}); len(got) != 6 {
		t.Errorf("oversized limit = %d", len(got))
	}
}

func TestCount(t *testing.T) {
	l := NewLog(32)
	l.Record(ev(KindCall, "alice", "/svc/a", true))
	l.Record(ev(KindCall, "bob", "/svc/a", false))
	l.Record(ev(KindData, "alice", "/fs/x", false))

	if got := l.Count(Query{}); got != 3 {
		t.Errorf("count all = %d", got)
	}
	if got := l.Count(Query{Subject: "alice"}); got != 2 {
		t.Errorf("count alice = %d", got)
	}
	if got := l.Count(Query{DeniedOnly: true}); got != 2 {
		t.Errorf("count denied = %d", got)
	}
	// Limit is a Select concept; Count ignores it.
	if got := l.Count(Query{Limit: 1}); got != 3 {
		t.Errorf("count with limit = %d", got)
	}
	var nilLog *Log
	if got := nilLog.Count(Query{}); got != 0 {
		t.Errorf("nil count = %d", got)
	}
}

func TestStatsDropped(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 3; i++ {
		l.Record(ev(KindCall, "alice", "/svc/a", true))
	}
	if s := l.Stats(); s.Dropped != 0 {
		t.Fatalf("dropped before wrap = %d", s.Dropped)
	}
	for i := 0; i < 7; i++ {
		l.Record(ev(KindCall, "alice", "/svc/a", true))
	}
	if s := l.Stats(); s.Dropped != 6 {
		t.Fatalf("dropped after wrap = %d, want 6", s.Dropped)
	}
	// Filtered events never claim a slot and so never count as dropped.
	l.SetFilter(func(Event) bool { return false })
	l.Record(ev(KindCall, "alice", "/svc/a", true))
	if s := l.Stats(); s.Dropped != 6 {
		t.Errorf("filtered event counted as dropped: %d", s.Dropped)
	}
}

func TestRecordReturnsSeq(t *testing.T) {
	l := NewLog(8)
	if seq := l.Record(ev(KindCall, "alice", "/svc/a", true)); seq != 1 {
		t.Errorf("first seq = %d", seq)
	}
	if seq := l.RecordBypass(ev(KindUnchecked, "host", "/x", true)); seq != 2 {
		t.Errorf("bypass seq = %d", seq)
	}
	// Filtered events still consume and report a sequence number.
	l.SetFilter(func(Event) bool { return false })
	if seq := l.Record(ev(KindCall, "alice", "/svc/a", true)); seq != 3 {
		t.Errorf("filtered seq = %d", seq)
	}
	var nilLog *Log
	if seq := nilLog.Record(Event{}); seq != 0 {
		t.Errorf("nil seq = %d", seq)
	}
	l.SetEnabled(false)
	if seq := l.Record(Event{}); seq != 0 {
		t.Errorf("disabled seq = %d", seq)
	}
}
