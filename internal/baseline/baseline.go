// Package baseline defines the common interface the comparison
// experiments (E1, E9) drive every protection model through: the
// paper's model in internal/core, and the §1.2 state-of-the-art models
// it measures itself against — the Java sandbox, SPIN domains, Unix
// permission bits, and Windows-NT-style ordered ACLs.
//
// The interface is deliberately the smallest common denominator: can a
// given subject call a service, extend a service, or perform a data
// operation on an object. What each model can and cannot express within
// that shape is the content of experiment E9.
package baseline

// Op is a data operation for CheckData.
type Op string

// Data operations shared by all models.
const (
	OpRead   Op = "read"
	OpWrite  Op = "write"
	OpAppend Op = "append"
	OpDelete Op = "delete"
	OpList   Op = "list"
)

// Model is one protection model under comparison.
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// CheckCall reports whether subject may invoke service.
	CheckCall(subject, service string) bool
	// CheckExtend reports whether subject may specialize service.
	CheckExtend(subject, service string) bool
	// CheckData reports whether subject may perform op on object.
	CheckData(subject, object string, op Op) bool
}
