package baseline_test

// Conformance suite: properties every protection model in the
// comparison must share regardless of expressiveness, driven through
// the common Model interface. A baseline that violated these would
// invalidate the E1/E9 comparisons.

import (
	"testing"

	"secext/internal/acl"
	"secext/internal/baseline"
	"secext/internal/baseline/domains"
	"secext/internal/baseline/ntacl"
	"secext/internal/baseline/sandbox"
	"secext/internal/baseline/secextmodel"
	"secext/internal/baseline/unixmode"
	"secext/internal/core"
	"secext/internal/names"
)

// newSecextModel builds the paper's model over a minimal live system.
// grant configures it with a /obj node granting "good" everything;
// without it the system is empty (no subjects, no objects).
func newSecextModel(grant bool) *secextmodel.Model {
	sys, err := core.NewSystem(core.Options{Levels: []string{"low", "high"}})
	if err != nil {
		panic(err)
	}
	m := secextmodel.New(sys)
	if grant {
		if _, err := sys.AddPrincipal("good", "low"); err != nil {
			panic(err)
		}
		if err := m.AddSubject("good"); err != nil {
			panic(err)
		}
		if _, err := sys.CreateNode(core.NodeSpec{
			Path: "/obj", Kind: names.KindObject,
			ACL: acl.New(acl.Allow("good", acl.AllModes)),
		}); err != nil {
			panic(err)
		}
	}
	return m
}

// fresh returns each model in its empty (unconfigured) state.
func fresh() []baseline.Model {
	return []baseline.Model{
		newSecextModel(false),
		sandbox.New(nil, nil),
		domains.New(),
		unixmode.New(),
		ntacl.New(),
	}
}

// configured returns each model configured to grant "good" full access
// to /obj and nothing to "bad".
func configured() []baseline.Model {
	sb := sandbox.New([]string{"good"}, []string{"/obj"})

	dm := domains.New()
	dm.DefineDomain("d", "/obj")
	_ = dm.Link("good", "d")

	ux := unixmode.New()
	ux.SetObject("/obj", "good", "g", 0o700)

	nt := ntacl.New()
	nt.SetACL("/obj", ntacl.Entry{Subject: "good",
		Rights: ntacl.Read | ntacl.Write | ntacl.Execute | ntacl.Delete})

	return []baseline.Model{newSecextModel(true), sb, dm, ux, nt}
}

func TestConformanceNamesAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range fresh() {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
		if seen[m.Name()] {
			t.Errorf("duplicate model name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestConformanceUnknownObjectsFailClosed(t *testing.T) {
	// Every model must deny operations on objects it has never heard
	// of — for an unknown, unprivileged subject.
	for _, m := range fresh() {
		// The sandbox is the known exception by design: it default-
		// allows non-sensitive paths, which is precisely the property
		// E9 indicts. Document rather than hide it.
		if m.Name() == "java-sandbox" {
			if !m.CheckData("anyone", "/unconfigured", baseline.OpRead) {
				t.Errorf("sandbox should default-allow non-sensitive paths")
			}
			continue
		}
		for _, op := range []baseline.Op{baseline.OpRead, baseline.OpWrite, baseline.OpDelete} {
			if m.CheckData("anyone", "/unconfigured", op) {
				t.Errorf("%s: unknown object allowed %s", m.Name(), op)
			}
		}
		if m.CheckCall("anyone", "/unconfigured") || m.CheckExtend("anyone", "/unconfigured") {
			t.Errorf("%s: unknown service callable", m.Name())
		}
	}
}

func TestConformanceGrantsAreSubjectSpecific(t *testing.T) {
	for _, m := range configured() {
		if !m.CheckData("good", "/obj", baseline.OpRead) && m.Name() != "spin-domains" {
			// spin-domains: data ops follow domain linkage, which the
			// configuration grants; it should pass too. Keep the
			// assertion uniform:
			t.Errorf("%s: configured grant missing", m.Name())
		}
		if m.CheckData("bad", "/obj", baseline.OpRead) {
			t.Errorf("%s: unconfigured subject allowed", m.Name())
		}
	}
}

func TestConformanceUnknownOpDenied(t *testing.T) {
	for _, m := range configured() {
		if m.CheckData("good", "/obj", baseline.Op("frobnicate")) &&
			m.Name() != "java-sandbox" && m.Name() != "spin-domains" {
			// sandbox/domains have one binary decision and cannot see
			// the op; the per-op models must fail closed on nonsense.
			t.Errorf("%s: unknown op allowed", m.Name())
		}
	}
}

func TestConformanceDecisionsAreDeterministic(t *testing.T) {
	for _, m := range configured() {
		for i := 0; i < 3; i++ {
			a := m.CheckData("good", "/obj", baseline.OpRead)
			b := m.CheckData("good", "/obj", baseline.OpRead)
			if a != b {
				t.Errorf("%s: nondeterministic decision", m.Name())
			}
		}
	}
}
