// Package domains reimplements SPIN's protection structure as the paper
// describes it in §1.2: "system services are partitioned into several
// domains ... An extension is linked against one or more domains and can
// only access and extend those system services that are in the domains
// it has been linked against." Within a linked domain access is
// all-or-nothing — the paper's point is precisely that an extension "can
// either call on and extend all interfaces in all domains it has been
// linked against", with no finer grain and no distinction between the
// two interaction modes.
package domains

import (
	"fmt"
	"strings"
	"sync"

	"secext/internal/baseline"
)

// Model is the SPIN-domain protection model. It is safe for concurrent
// use.
type Model struct {
	mu sync.RWMutex
	// domains maps a domain name to its path prefixes.
	domains map[string][]string
	// linked maps a subject (extension) to the set of domains it was
	// linked against.
	linked map[string]map[string]bool
}

var _ baseline.Model = (*Model)(nil)

// New creates an empty domain model.
func New() *Model {
	return &Model{
		domains: make(map[string][]string),
		linked:  make(map[string]map[string]bool),
	}
}

// Name implements baseline.Model.
func (m *Model) Name() string { return "spin-domains" }

// DefineDomain declares a domain covering the given path prefixes.
func (m *Model) DefineDomain(name string, prefixes ...string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.domains[name] = append(m.domains[name], prefixes...)
}

// Link links a subject against a domain. Linking against an undefined
// domain is an error, mirroring SPIN's link-time name resolution.
func (m *Model) Link(subject, domain string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.domains[domain]; !ok {
		return fmt.Errorf("domains: no such domain %q", domain)
	}
	set := m.linked[subject]
	if set == nil {
		set = make(map[string]bool)
		m.linked[subject] = set
	}
	set[domain] = true
	return nil
}

// Linked returns whether subject is linked against domain.
func (m *Model) Linked(subject, domain string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.linked[subject][domain]
}

// inLinkedDomain is the single decision: the object must fall under a
// prefix of some domain the subject linked against.
func (m *Model) inLinkedDomain(subject, object string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for d := range m.linked[subject] {
		for _, p := range m.domains[d] {
			if object == p || strings.HasPrefix(object, p+"/") {
				return true
			}
		}
	}
	return false
}

// CheckCall implements baseline.Model.
func (m *Model) CheckCall(subject, service string) bool {
	return m.inLinkedDomain(subject, service)
}

// CheckExtend implements baseline.Model: identical to CheckCall — the
// model cannot grant one without the other.
func (m *Model) CheckExtend(subject, service string) bool {
	return m.inLinkedDomain(subject, service)
}

// CheckData implements baseline.Model: data objects are reached through
// the interfaces of their domain, so the same rule applies to every op.
func (m *Model) CheckData(subject, object string, op baseline.Op) bool {
	return m.inLinkedDomain(subject, object)
}
