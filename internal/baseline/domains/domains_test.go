package domains

import (
	"testing"

	"secext/internal/baseline"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m := New()
	m.DefineDomain("fs", "/svc/fs")
	m.DefineDomain("net", "/svc/net", "/svc/mbuf")
	if err := m.Link("ext1", "fs"); err != nil {
		t.Fatal(err)
	}
	if err := m.Link("ext2", "net"); err != nil {
		t.Fatal(err)
	}
	if err := m.Link("ext3", "fs"); err != nil {
		t.Fatal(err)
	}
	if err := m.Link("ext3", "net"); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLinkGrantsWholeDomain(t *testing.T) {
	m := newModel(t)
	if !m.CheckCall("ext1", "/svc/fs/read") || !m.CheckCall("ext1", "/svc/fs/unlink") {
		t.Error("linked domain must grant every interface in it")
	}
	if m.CheckCall("ext1", "/svc/net/send") {
		t.Error("unlinked domain must deny")
	}
	if !m.CheckCall("ext2", "/svc/mbuf/alloc") {
		t.Error("multi-prefix domain must cover all prefixes")
	}
	if !m.CheckCall("ext3", "/svc/fs/read") || !m.CheckCall("ext3", "/svc/net/send") {
		t.Error("multiple links must union")
	}
}

func TestAllOrNothingWithinDomain(t *testing.T) {
	// §1.2: "an extension can either call on and extend all interfaces
	// in all domains it has been linked against" — the model cannot
	// grant read without unlink, or call without extend.
	m := newModel(t)
	if m.CheckCall("ext1", "/svc/fs/read") != m.CheckCall("ext1", "/svc/fs/unlink") {
		t.Error("cannot express per-interface grants")
	}
	if m.CheckCall("ext1", "/svc/fs/read") != m.CheckExtend("ext1", "/svc/fs/read") {
		t.Error("cannot separate call from extend")
	}
	if m.CheckData("ext1", "/svc/fs/data", baseline.OpRead) !=
		m.CheckData("ext1", "/svc/fs/data", baseline.OpWrite) {
		t.Error("cannot separate read from write")
	}
}

func TestLinkUnknownDomain(t *testing.T) {
	m := New()
	if err := m.Link("x", "nope"); err == nil {
		t.Error("linking unknown domain must fail")
	}
}

func TestPrefixBoundaries(t *testing.T) {
	m := newModel(t)
	if m.CheckCall("ext1", "/svc/fsx/read") {
		t.Error("/svc/fsx is not in domain fs")
	}
	if !m.CheckCall("ext1", "/svc/fs") {
		t.Error("the prefix itself is in the domain")
	}
}

func TestAccessors(t *testing.T) {
	m := newModel(t)
	if !m.Linked("ext1", "fs") || m.Linked("ext1", "net") {
		t.Error("Linked wrong")
	}
	if m.Name() != "spin-domains" {
		t.Error("Name")
	}
	if m.CheckCall("unknown", "/svc/fs/read") {
		t.Error("unlinked subject must deny")
	}
}
