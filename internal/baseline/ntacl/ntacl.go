// Package ntacl reimplements the Windows-NT-style protection model of
// §1.2: full access control lists at per-object granularity with allow
// and deny entries resolved by ordered first-match (the NT rule: the
// first entry that mentions any requested right decides). The paper
// grants this model richness for files but notes two gaps it shares
// with Unix: "it, too, does not provide a means to control the two ways
// extensions interact with the rest of the system, nor does it provide
// for any mandatory access control."
//
// The first-match resolution also contrasts with the deny-overrides
// rule of internal/acl, making the semantic difference between the two
// ACL disciplines testable.
package ntacl

import (
	"sync"

	"secext/internal/baseline"
)

// Right is a bitmask of NT-style access rights.
type Right uint8

// Rights roughly mirror NT's standard/specific types collapsed to the
// semantically distinct ones (the paper notes several NT permissions
// "do not offer any real semantic difference").
const (
	Read Right = 1 << iota
	Write
	Execute
	Delete
	ChangePerms
)

// Entry is one ordered ACE.
type Entry struct {
	Subject string // principal or group name; "*" matches everyone
	Group   bool   // Subject is a group
	Deny    bool
	Rights  Right
}

// Model is the NT-style ordered-ACL model. It is safe for concurrent
// use.
type Model struct {
	mu      sync.RWMutex
	acls    map[string][]Entry
	members map[string]map[string]bool
}

var _ baseline.Model = (*Model)(nil)

// New creates an empty model.
func New() *Model {
	return &Model{
		acls:    make(map[string][]Entry),
		members: make(map[string]map[string]bool),
	}
}

// Name implements baseline.Model.
func (m *Model) Name() string { return "nt-acl" }

// SetACL installs the ordered entry list for an object.
func (m *Model) SetACL(object string, entries ...Entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acls[object] = append([]Entry(nil), entries...)
}

// AddToGroup puts a subject in a group.
func (m *Model) AddToGroup(subject, group string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	set := m.members[subject]
	if set == nil {
		set = make(map[string]bool)
		m.members[subject] = set
	}
	set[group] = true
}

func (m *Model) matches(e Entry, subject string) bool {
	if e.Subject == "*" {
		return true
	}
	if e.Group {
		return m.members[subject][e.Subject]
	}
	return e.Subject == subject
}

// Check walks the ordered list; the first entry matching the subject
// and mentioning any requested right decides. Unmentioned rights deny
// (fail-closed), as does a missing ACL.
func (m *Model) Check(subject, object string, want Right) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	remaining := want
	for _, e := range m.acls[object] {
		if remaining == 0 {
			break
		}
		if !m.matches(e, subject) {
			continue
		}
		hit := e.Rights & remaining
		if hit == 0 {
			continue
		}
		if e.Deny {
			return false
		}
		remaining &^= hit
	}
	return remaining == 0
}

// CheckCall implements baseline.Model: calling is execute.
func (m *Model) CheckCall(subject, service string) bool {
	return m.Check(subject, service, Execute)
}

// CheckExtend implements baseline.Model. NT has no extend right; the
// nearest approximation is write on the service object.
func (m *Model) CheckExtend(subject, service string) bool {
	return m.Check(subject, service, Write)
}

// CheckData implements baseline.Model. NT cannot separate append from
// write at this granularity.
func (m *Model) CheckData(subject, object string, op baseline.Op) bool {
	switch op {
	case baseline.OpRead, baseline.OpList:
		return m.Check(subject, object, Read)
	case baseline.OpWrite, baseline.OpAppend:
		return m.Check(subject, object, Write)
	case baseline.OpDelete:
		return m.Check(subject, object, Delete)
	default:
		return false
	}
}
