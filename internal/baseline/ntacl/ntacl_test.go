package ntacl

import (
	"testing"

	"secext/internal/baseline"
)

func TestFirstMatchWins(t *testing.T) {
	m := New()
	// Allow-then-deny: the allow is hit first, so access is granted —
	// the opposite of deny-overrides.
	m.SetACL("/obj",
		Entry{Subject: "alice", Rights: Read},
		Entry{Subject: "alice", Deny: true, Rights: Read},
	)
	if !m.Check("alice", "/obj", Read) {
		t.Error("first-match: earlier allow must win")
	}
	// Deny-then-allow: denied.
	m.SetACL("/obj2",
		Entry{Subject: "alice", Deny: true, Rights: Read},
		Entry{Subject: "alice", Rights: Read},
	)
	if m.Check("alice", "/obj2", Read) {
		t.Error("first-match: earlier deny must win")
	}
}

func TestGroupAndEveryoneEntries(t *testing.T) {
	m := New()
	m.AddToGroup("bob", "staff")
	m.SetACL("/f",
		Entry{Subject: "staff", Group: true, Rights: Read | Write},
		Entry{Subject: "*", Rights: Read},
	)
	if !m.Check("bob", "/f", Read|Write) {
		t.Error("group entry")
	}
	if !m.Check("eve", "/f", Read) {
		t.Error("everyone entry")
	}
	if m.Check("eve", "/f", Write) {
		t.Error("everyone has no write")
	}
}

func TestRightsAccumulateAcrossEntries(t *testing.T) {
	m := New()
	m.SetACL("/f",
		Entry{Subject: "alice", Rights: Read},
		Entry{Subject: "alice", Rights: Write},
	)
	if !m.Check("alice", "/f", Read|Write) {
		t.Error("rights must accumulate until all are granted")
	}
}

func TestPartialDenyBlocksWholeRequest(t *testing.T) {
	m := New()
	m.SetACL("/f",
		Entry{Subject: "alice", Rights: Read},
		Entry{Subject: "alice", Deny: true, Rights: Write},
	)
	if m.Check("alice", "/f", Read|Write) {
		t.Error("denied right must fail the combined request")
	}
	if !m.Check("alice", "/f", Read) {
		t.Error("read alone is granted")
	}
}

func TestFailClosed(t *testing.T) {
	m := New()
	if m.Check("alice", "/missing", Read) {
		t.Error("missing ACL must deny")
	}
	m.SetACL("/f", Entry{Subject: "alice", Rights: Read})
	if m.Check("alice", "/f", Read|Delete) {
		t.Error("unmentioned right must deny")
	}
	if m.CheckData("alice", "/f", baseline.Op("bogus")) {
		t.Error("unknown op must deny")
	}
}

func TestModelInterfaceMapping(t *testing.T) {
	m := New()
	m.SetACL("/svc/s",
		Entry{Subject: "ext", Rights: Execute},
		Entry{Subject: "admin", Rights: Execute | Write | ChangePerms},
	)
	if !m.CheckCall("ext", "/svc/s") {
		t.Error("call is execute")
	}
	if m.CheckExtend("ext", "/svc/s") {
		t.Error("NT approximates extend as write; ext has none")
	}
	if !m.CheckExtend("admin", "/svc/s") {
		t.Error("admin writes -> extends")
	}
	m.SetACL("/d", Entry{Subject: "u", Rights: Read | Write | Delete})
	if !m.CheckData("u", "/d", baseline.OpRead) ||
		!m.CheckData("u", "/d", baseline.OpWrite) ||
		!m.CheckData("u", "/d", baseline.OpAppend) ||
		!m.CheckData("u", "/d", baseline.OpDelete) ||
		!m.CheckData("u", "/d", baseline.OpList) {
		t.Error("data op mapping")
	}
	if m.Name() != "nt-acl" {
		t.Error("Name")
	}
}

func TestAppendConflatedWithWrite(t *testing.T) {
	m := New()
	m.SetACL("/j", Entry{Subject: "low", Rights: Write})
	if m.CheckData("low", "/j", baseline.OpAppend) !=
		m.CheckData("low", "/j", baseline.OpWrite) {
		t.Error("NT cannot separate append from write")
	}
}
