// Package sandbox reimplements the Java 1.x security model the paper
// criticizes in §1.2: a binary trust decision. Code "stored on the local
// file system" is trusted and gets "access to the full functionality of
// the system"; all remote code is untrusted and confined to a sandbox
// that blocks a fixed list of sensitive services. There are no levels
// between trusted and untrusted, no compartments between untrusted
// applets (the ThreadMurder hole), and no distinction between calling
// and extending a service.
//
// For fairness the model is implemented as a single facility rather than
// Java's three prongs; the paper's criticism of the prong structure is
// about assurance, not expressiveness, and E9 measures expressiveness.
package sandbox

import (
	"strings"
	"sync"

	"secext/internal/baseline"
)

// Sandbox is the two-level trust model. It is safe for concurrent use.
type Sandbox struct {
	mu        sync.RWMutex
	trusted   map[string]bool
	sensitive []string // path prefixes blocked for untrusted code
}

var _ baseline.Model = (*Sandbox)(nil)

// New creates a sandbox. trusted lists the fully trusted subjects
// (local code); sensitive lists path prefixes untrusted subjects may
// not touch (e.g. "/fs", "/svc/thread/kill").
func New(trusted []string, sensitive []string) *Sandbox {
	t := make(map[string]bool, len(trusted))
	for _, s := range trusted {
		t[s] = true
	}
	return &Sandbox{trusted: t, sensitive: append([]string(nil), sensitive...)}
}

// Name implements baseline.Model.
func (s *Sandbox) Name() string { return "java-sandbox" }

// Trust marks a subject as trusted (local) or untrusted (remote).
func (s *Sandbox) Trust(subject string, trusted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if trusted {
		s.trusted[subject] = true
	} else {
		delete(s.trusted, subject)
	}
}

// IsTrusted reports the binary trust bit.
func (s *Sandbox) IsTrusted(subject string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.trusted[subject]
}

// allowed is the single decision: trusted code may do anything;
// untrusted code may do anything outside the sensitive prefixes.
func (s *Sandbox) allowed(subject, object string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.trusted[subject] {
		return true
	}
	for _, p := range s.sensitive {
		if object == p || strings.HasPrefix(object, p+"/") {
			return false
		}
	}
	return true
}

// CheckCall implements baseline.Model.
func (s *Sandbox) CheckCall(subject, service string) bool {
	return s.allowed(subject, service)
}

// CheckExtend implements baseline.Model. The sandbox has no extend
// concept: extending is just another call.
func (s *Sandbox) CheckExtend(subject, service string) bool {
	return s.allowed(subject, service)
}

// CheckData implements baseline.Model. All operations collapse to the
// same binary decision.
func (s *Sandbox) CheckData(subject, object string, op baseline.Op) bool {
	return s.allowed(subject, object)
}
