package sandbox

import (
	"testing"

	"secext/internal/baseline"
)

func TestTrustedBypassesEverything(t *testing.T) {
	s := New([]string{"local-code"}, []string{"/fs", "/svc/thread/kill"})
	if !s.CheckCall("local-code", "/fs/etc/passwd") {
		t.Error("trusted code must reach sensitive paths")
	}
	if !s.CheckData("local-code", "/fs/secret", baseline.OpWrite) {
		t.Error("trusted code must write anywhere")
	}
	if !s.IsTrusted("local-code") || s.IsTrusted("applet") {
		t.Error("IsTrusted wrong")
	}
}

func TestUntrustedBlockedOnSensitivePrefixes(t *testing.T) {
	s := New(nil, []string{"/fs", "/svc/thread/kill"})
	if s.CheckCall("applet", "/fs/read") {
		t.Error("sensitive prefix must be blocked")
	}
	if s.CheckData("applet", "/fs", baseline.OpRead) {
		t.Error("exact sensitive path must be blocked")
	}
	if s.CheckCall("applet", "/svc/thread/kill") {
		t.Error("kill must be blocked")
	}
	// Prefix match is path-aware: /fsx is not under /fs.
	if !s.CheckCall("applet", "/fsx/read") {
		t.Error("sibling path must not be blocked")
	}
	if !s.CheckCall("applet", "/svc/net/send") {
		t.Error("non-sensitive service must be open")
	}
}

func TestNoIsolationBetweenApplets(t *testing.T) {
	// The sandbox's defining hole (§1.2): untrusted applets share one
	// sandbox, so applet A can reach applet B's (non-sensitive)
	// resources — the ThreadMurder shape.
	s := New(nil, []string{"/fs"})
	if !s.CheckCall("murder", "/svc/thread/kill") {
		t.Error("model cannot express per-applet thread protection")
	}
	if !s.CheckData("murder", "/applets/victim/state", baseline.OpWrite) {
		t.Error("model cannot isolate applets from each other")
	}
}

func TestCallExtendConflated(t *testing.T) {
	s := New(nil, []string{"/fs"})
	for _, svc := range []string{"/svc/fs/read", "/fs/x"} {
		if s.CheckCall("a", svc) != s.CheckExtend("a", svc) {
			t.Errorf("sandbox cannot distinguish call from extend on %s", svc)
		}
	}
}

func TestTrustToggle(t *testing.T) {
	s := New(nil, []string{"/fs"})
	s.Trust("code", true)
	if !s.CheckCall("code", "/fs/x") {
		t.Error("after Trust(true)")
	}
	s.Trust("code", false)
	if s.CheckCall("code", "/fs/x") {
		t.Error("after Trust(false)")
	}
	if s.Name() != "java-sandbox" {
		t.Error("Name")
	}
}
