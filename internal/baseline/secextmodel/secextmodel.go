// Package secextmodel adapts the paper's own protection model — the
// full reference monitor in internal/core — to the baseline.Model
// interface, so the comparison experiments (E1, E9) can drive all five
// models through one shape instead of treating the paper's model as a
// special case.
//
// The adapter is deliberately thin: a decision is a real mediated check
// against a real system (name resolution, ACL evaluation, lattice
// rules, monitor pipeline, audit), not a reimplementation. Anything the
// adapter cannot route — an unregistered subject, an unknown operation
// — is denied, matching the conformance suite's fail-closed demand.
package secextmodel

import (
	"secext/internal/acl"
	"secext/internal/baseline"
	"secext/internal/core"
	"secext/internal/subject"
)

// Model drives a live core.System through the baseline interface.
type Model struct {
	sys  *core.System
	ctxs map[string]*subject.Context
}

// New wraps an assembled system. Subjects must be registered with
// AddSubject before they can be granted anything; unknown subjects are
// denied everywhere.
func New(sys *core.System) *Model {
	return &Model{sys: sys, ctxs: make(map[string]*subject.Context)}
}

// AddSubject creates a root context for a principal already registered
// with the system, making it visible to the Check methods.
func (m *Model) AddSubject(name string) error {
	ctx, err := m.sys.NewContext(name)
	if err != nil {
		return err
	}
	m.ctxs[name] = ctx
	return nil
}

// Name implements baseline.Model.
func (*Model) Name() string { return "secext" }

// CheckCall implements baseline.Model: a mediated execute check on the
// service node.
func (m *Model) CheckCall(subjectName, service string) bool {
	ctx, ok := m.ctxs[subjectName]
	if !ok {
		return false
	}
	return m.sys.CheckImport(ctx, service) == nil
}

// CheckExtend implements baseline.Model: a mediated extend check.
func (m *Model) CheckExtend(subjectName, service string) bool {
	ctx, ok := m.ctxs[subjectName]
	if !ok {
		return false
	}
	return m.sys.CheckExtend(ctx, service) == nil
}

// ops maps the baseline vocabulary onto the paper's access modes. The
// mapping is exact — append is WriteAppend, not Write — which is the
// point of the comparison: the baselines that conflate the two lose the
// corresponding E9 rows.
var ops = map[baseline.Op]acl.Mode{
	baseline.OpRead:   acl.Read,
	baseline.OpWrite:  acl.Write,
	baseline.OpAppend: acl.WriteAppend,
	baseline.OpDelete: acl.Delete,
	baseline.OpList:   acl.List,
}

// CheckData implements baseline.Model: a mediated data check with the
// op translated to the paper's mode. Unknown ops are denied.
func (m *Model) CheckData(subjectName, object string, op baseline.Op) bool {
	ctx, ok := m.ctxs[subjectName]
	if !ok {
		return false
	}
	mode, ok := ops[op]
	if !ok {
		return false
	}
	_, err := m.sys.CheckData(ctx, object, mode)
	return err == nil
}
