// Package unixmode reimplements the Unix protection model the paper
// calls "primitive and, barely, [offering] adequate security to protect
// file access" (§1.2): every object has one owner, one group, and nine
// permission bits. There are no per-subject entries beyond the
// owner/group/other triple, no negative entries, no extend mode, and no
// mandatory layer — the gaps experiment E9 demonstrates.
package unixmode

import (
	"sync"

	"secext/internal/baseline"
)

// Perm is a 9-bit rwxrwxrwx permission word.
type Perm uint16

// Permission bits, highest octal digit = owner.
const (
	OwnerR Perm = 0o400
	OwnerW Perm = 0o200
	OwnerX Perm = 0o100
	GroupR Perm = 0o040
	GroupW Perm = 0o020
	GroupX Perm = 0o010
	OtherR Perm = 0o004
	OtherW Perm = 0o002
	OtherX Perm = 0o001
)

// object is one protected entity.
type object struct {
	owner string
	group string
	mode  Perm
}

// Model is the Unix owner/group/other model. It is safe for concurrent
// use.
type Model struct {
	mu      sync.RWMutex
	objects map[string]object
	// member maps subject -> groups.
	member map[string]map[string]bool
}

var _ baseline.Model = (*Model)(nil)

// New creates an empty model.
func New() *Model {
	return &Model{
		objects: make(map[string]object),
		member:  make(map[string]map[string]bool),
	}
}

// Name implements baseline.Model.
func (m *Model) Name() string { return "unix-modes" }

// SetObject declares an object with owner, group, and permission bits.
func (m *Model) SetObject(path, owner, group string, mode Perm) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[path] = object{owner: owner, group: group, mode: mode}
}

// AddToGroup puts a subject in a group.
func (m *Model) AddToGroup(subject, group string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	set := m.member[subject]
	if set == nil {
		set = make(map[string]bool)
		m.member[subject] = set
	}
	set[group] = true
}

// check evaluates one of the r/w/x columns for the subject's relation
// to the object. Missing objects deny (fail-closed).
func (m *Model) check(subject, path string, ownerBit, groupBit, otherBit Perm) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.objects[path]
	if !ok {
		return false
	}
	switch {
	case subject == o.owner:
		return o.mode&ownerBit != 0
	case m.member[subject][o.group]:
		return o.mode&groupBit != 0
	default:
		return o.mode&otherBit != 0
	}
}

// CheckCall implements baseline.Model: calling is execute.
func (m *Model) CheckCall(subject, service string) bool {
	return m.check(subject, service, OwnerX, GroupX, OtherX)
}

// CheckExtend implements baseline.Model. Unix has no extend mode; the
// closest mapping is write on the service (installing into it), which
// conflates extension with mutation — one of the gaps E9 shows.
func (m *Model) CheckExtend(subject, service string) bool {
	return m.check(subject, service, OwnerW, GroupW, OtherW)
}

// CheckData implements baseline.Model with the standard mapping: read
// and list are r; write, append, and delete are w (Unix cannot separate
// append from overwrite without filesystem-specific flags).
func (m *Model) CheckData(subject, object string, op baseline.Op) bool {
	switch op {
	case baseline.OpRead, baseline.OpList:
		return m.check(subject, object, OwnerR, GroupR, OtherR)
	case baseline.OpWrite, baseline.OpAppend, baseline.OpDelete:
		return m.check(subject, object, OwnerW, GroupW, OtherW)
	default:
		return false
	}
}
