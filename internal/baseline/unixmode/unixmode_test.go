package unixmode

import (
	"testing"

	"secext/internal/baseline"
)

func newModel() *Model {
	m := New()
	m.SetObject("/fs/alice-file", "alice", "staff", 0o640)
	m.SetObject("/svc/fs/read", "root", "wheel", 0o755)
	m.SetObject("/fs/shared", "alice", "staff", 0o664)
	m.AddToGroup("bob", "staff")
	return m
}

func TestOwnerGroupOther(t *testing.T) {
	m := newModel()
	// Owner: rw-
	if !m.CheckData("alice", "/fs/alice-file", baseline.OpRead) ||
		!m.CheckData("alice", "/fs/alice-file", baseline.OpWrite) {
		t.Error("owner rw")
	}
	// Group: r--
	if !m.CheckData("bob", "/fs/alice-file", baseline.OpRead) {
		t.Error("group r")
	}
	if m.CheckData("bob", "/fs/alice-file", baseline.OpWrite) {
		t.Error("group must not write 640")
	}
	// Other: ---
	if m.CheckData("eve", "/fs/alice-file", baseline.OpRead) {
		t.Error("other must not read 640")
	}
	// 664 lets group write.
	if !m.CheckData("bob", "/fs/shared", baseline.OpWrite) {
		t.Error("group w on 664")
	}
}

func TestExecuteGatesCall(t *testing.T) {
	m := newModel()
	if !m.CheckCall("eve", "/svc/fs/read") {
		t.Error("755 lets everyone execute")
	}
	m.SetObject("/svc/priv", "root", "wheel", 0o700)
	if m.CheckCall("eve", "/svc/priv") {
		t.Error("700 blocks others")
	}
	if !m.CheckCall("root", "/svc/priv") {
		t.Error("owner executes 700")
	}
}

func TestExtendIsWrite(t *testing.T) {
	// Unix conflates extending a service with writing it.
	m := newModel()
	if m.CheckExtend("eve", "/svc/fs/read") {
		t.Error("755 others cannot write -> cannot extend")
	}
	if !m.CheckExtend("root", "/svc/fs/read") {
		t.Error("owner writes -> extends")
	}
}

func TestAppendIndistinguishableFromWrite(t *testing.T) {
	// The expressiveness gap: append and overwrite are the same bit.
	m := newModel()
	for _, sub := range []string{"alice", "bob", "eve"} {
		if m.CheckData(sub, "/fs/shared", baseline.OpAppend) !=
			m.CheckData(sub, "/fs/shared", baseline.OpWrite) {
			t.Errorf("%s: append != write is inexpressible in unix modes", sub)
		}
	}
}

func TestFailClosed(t *testing.T) {
	m := newModel()
	if m.CheckData("alice", "/nope", baseline.OpRead) {
		t.Error("missing object must deny")
	}
	if m.CheckData("alice", "/fs/alice-file", baseline.Op("bogus")) {
		t.Error("unknown op must deny")
	}
	if m.Name() != "unix-modes" {
		t.Error("Name")
	}
}

func TestNoNegativeEntries(t *testing.T) {
	// Unix cannot exclude one group member: bob is staff, staff can
	// read, so bob reads — there is no way to deny bob specifically.
	m := newModel()
	if !m.CheckData("bob", "/fs/alice-file", baseline.OpRead) {
		t.Error("precondition")
	}
	// (Nothing to call: the API has no deny. The assertion is the
	// absence itself; E9 reports it.)
}
