package core

// The *Unchecked escape hatches bypass the monitor pipeline; the
// system must still leave a trace: each one lands in the audit trail
// as a KindUnchecked administrative event, counted apart from the
// mediated allow/deny totals.

import (
	"testing"

	"secext/internal/acl"
	"secext/internal/audit"
	"secext/internal/names"
)

func TestUncheckedOpsAreAuditedAsBypasses(t *testing.T) {
	s := newSys(t)
	before := s.Audit().Stats()

	if _, err := s.Names().ResolveUnchecked("/svc/fs/read"); err != nil {
		t.Fatal(err)
	}
	if err := s.Names().SetACLUnchecked("/svc/fs/read",
		acl.New(acl.AllowEveryone(acl.List|acl.Execute))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateNode(NodeSpec{Path: "/svc/tmp", Kind: names.KindObject,
		ACL: acl.New()}); err != nil {
		t.Fatal(err)
	}
	if err := s.Names().UnbindUnchecked("/svc/tmp"); err != nil {
		t.Fatal(err)
	}

	after := s.Audit().Stats()
	if got := after.Bypassed - before.Bypassed; got != 4 {
		t.Errorf("Bypassed grew by %d, want 4", got)
	}
	if after.ByKind[audit.KindUnchecked]-before.ByKind[audit.KindUnchecked] != 4 {
		t.Errorf("ByKind[unchecked] mismatch: %+v -> %+v", before, after)
	}
	// Bypasses are not decisions: the mediated counters must not move.
	if after.Total != before.Total || after.Allowed != before.Allowed || after.Denied != before.Denied {
		t.Errorf("decision counters moved: %+v -> %+v", before, after)
	}

	// The events identify the operation and the host as the actor.
	events := s.Audit().Select(audit.Query{Kind: audit.KindUnchecked, HasKind: true})
	if len(events) < 4 {
		t.Fatalf("found %d unchecked events, want >= 4", len(events))
	}
	tail := events[len(events)-4:]
	wantOps := []string{"resolve-unchecked", "set-acl-unchecked", "bind-unchecked", "unbind-unchecked"}
	for i, e := range tail {
		if e.Subject != "host" || e.Op != wantOps[i] {
			t.Errorf("event %d = subject=%q op=%q, want host/%s", i, e.Subject, e.Op, wantOps[i])
		}
	}
}
