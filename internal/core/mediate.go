package core

import (
	"errors"

	"secext/internal/acl"
	"secext/internal/audit"
	"secext/internal/dispatch"
	"secext/internal/names"
	"secext/internal/subject"
	"secext/internal/telemetry"
)

// check is the single enforcement path of the reference monitor. Every
// mediated operation resolves the object in the universal name space,
// applies the discretionary and mandatory rules for the requested
// modes, and records the decision. When the telemetry sampler selects
// the request, the whole decision is traced stage by stage and the
// trace is correlated with the audit event via its sequence number;
// unsampled requests take the exact untraced path.
func (s *System) check(ctx *subject.Context, path string, modes acl.Mode, kind audit.Kind) (*names.Node, error) {
	var tr *telemetry.ActiveTrace
	if s.tel.Tracing() {
		tr = s.tel.StartTrace(kind.String(), ctx.SubjectName(), path, modes.String())
	}
	var n *names.Node
	var epoch uint64
	var err error
	if tr == nil {
		n, epoch, err = s.ns.CheckAccessAt(ctx, ctx.Class(), path, modes)
	} else {
		tr.SetClass(ctx.ClassLabel())
		n, epoch, err = s.ns.CheckAccessTracedAt(ctx, ctx.Class(), path, modes, tr)
	}
	seq := s.recordAt(kind, ctx, path, modes.String(), epoch, err)
	reason := ""
	if err != nil {
		reason = err.Error()
	}
	tr.Finish(seq, err == nil, reason)
	return n, err
}

// record counts and audits one mediated decision, returning the audit
// sequence number (0 when auditing is off). The telemetry counter runs
// regardless of audit state: metrics must see every decision even on
// systems running the E7 no-audit configuration.
func (s *System) record(kind audit.Kind, ctx *subject.Context, path, op string, err error) uint64 {
	// Operations that don't surface their pinned epoch stamp the
	// current version: at worst one publication newer than the epoch
	// that decided, still close enough to correlate with the journal.
	return s.recordAt(kind, ctx, path, op, s.ns.Version(), err)
}

// recordAt is record with the deciding policy-epoch version carried
// into the audit event, for audit ↔ journal ↔ trace correlation.
func (s *System) recordAt(kind audit.Kind, ctx *subject.Context, path, op string, epoch uint64, err error) uint64 {
	s.tel.Mediation(int(kind), err == nil)
	if !s.log.Enabled() {
		return 0
	}
	reason := "granted"
	if err != nil {
		reason = err.Error()
	}
	return s.log.Record(audit.Event{
		Kind:    kind,
		Subject: ctx.SubjectName(),
		Class:   ctx.ClassLabel(),
		Path:    path,
		Op:      op,
		Allowed: err == nil,
		Reason:  reason,
		Epoch:   epoch,
	})
}

// Call invokes the service at path on behalf of ctx: the first of the
// two ways extensions interact with the system (§1.1). The subject
// needs execute mode under DAC and must dominate the service node under
// MAC; the dispatcher then selects the right implementation for the
// caller's class (§2.2) and runs it at the meet of caller and static
// class.
func (s *System) Call(ctx *subject.Context, path string, arg any) (any, error) {
	if _, err := s.check(ctx, path, acl.Execute, audit.KindCall); err != nil {
		return nil, err
	}
	return s.invoke(ctx, path, arg)
}

// invoke dispatches and contains misbehaving handlers: a recovered
// handler panic (dispatch.PanicError) is audited against the owning
// extension before being returned as an ordinary error — VINO's
// "dealing with disaster" discipline, which the paper's §1 survey
// cites as the other half of safe extensibility.
func (s *System) invoke(ctx *subject.Context, path string, arg any) (any, error) {
	out, err := s.disp.Invoke(path, ctx, arg)
	var pe *dispatch.PanicError
	if errors.As(err, &pe) {
		s.record(audit.KindCall, ctx, path, "handler-panic owner="+pe.Owner, err)
	}
	return out, err
}

// CallLinked invokes a service through a link-time-checked capability.
// Under full mediation (the default) it is identical to Call; when the
// system trusts link-time checking (SPIN's discipline) the per-call
// check is skipped and only class-based dispatch runs.
func (s *System) CallLinked(ctx *subject.Context, path string, arg any) (any, error) {
	if !s.trustLinkTime.Load() {
		return s.Call(ctx, path, arg)
	}
	return s.invoke(ctx, path, arg)
}

// CallAll multicasts to the base implementation and every admissible
// specialization at path (SPIN-style event raise), after the usual
// execute check. Results come back in invocation order; handler
// failures are joined into the error without stopping the rest.
func (s *System) CallAll(ctx *subject.Context, path string, arg any) ([]any, error) {
	if _, err := s.check(ctx, path, acl.Execute, audit.KindCall); err != nil {
		return nil, err
	}
	return s.disp.Multicast(path, ctx, arg)
}

// Extend registers a specialization at path: the second interaction
// mode. The subject needs extend mode on the service node.
func (s *System) Extend(ctx *subject.Context, path string, b dispatch.Binding) error {
	if _, err := s.check(ctx, path, acl.Extend, audit.KindExtend); err != nil {
		return err
	}
	return s.disp.Extend(path, b)
}

// Retract removes owner's specializations from path (extension unload).
func (s *System) Retract(path, owner string) error {
	_, err := s.disp.RemoveExtensions(path, owner)
	return err
}

// CheckImport is the loader's link-time check for one import: execute
// mode, audited as a link event.
func (s *System) CheckImport(ctx *subject.Context, path string) error {
	_, err := s.check(ctx, path, acl.Execute, audit.KindLink)
	return err
}

// CheckExtend is the loader's link-time check for one specialization
// target: extend mode, audited as a link event.
func (s *System) CheckExtend(ctx *subject.Context, path string) error {
	_, err := s.check(ctx, path, acl.Extend, audit.KindLink)
	return err
}

// CheckData verifies arbitrary data-access modes (read, write,
// write-append, delete) on the object at path. Services built on the
// monitor (the file service, the log service) use it as their single
// authorization point.
func (s *System) CheckData(ctx *subject.Context, path string, modes acl.Mode) (*names.Node, error) {
	return s.check(ctx, path, modes, audit.KindData)
}

// List enumerates the names bound under path, mediated by list mode.
func (s *System) List(ctx *subject.Context, path string) ([]string, error) {
	out, err := s.ns.List(ctx, ctx.Class(), path)
	s.record(audit.KindName, ctx, path, "list", err)
	return out, err
}

// Resolve walks to the node at path with per-level visibility checks.
func (s *System) Resolve(ctx *subject.Context, path string) (*names.Node, error) {
	n, err := s.ns.Resolve(ctx, ctx.Class(), path)
	s.record(audit.KindName, ctx, path, "resolve", err)
	return n, err
}

// Bind creates a new node under parentPath on behalf of ctx (checked:
// write on the parent, no-write-down on the new class).
func (s *System) Bind(ctx *subject.Context, parentPath string, spec names.BindSpec) (*names.Node, error) {
	n, err := s.ns.Bind(ctx, ctx.Class(), parentPath, spec)
	s.record(audit.KindName, ctx, names.Join(parentPath, spec.Name), "bind", err)
	return n, err
}

// Unbind removes the node at path on behalf of ctx.
func (s *System) Unbind(ctx *subject.Context, path string) error {
	err := s.ns.Unbind(ctx, ctx.Class(), path)
	s.record(audit.KindName, ctx, path, "unbind", err)
	return err
}

// GetACL reads the protection state of path.
func (s *System) GetACL(ctx *subject.Context, path string) (*acl.ACL, error) {
	a, err := s.ns.GetACL(ctx, ctx.Class(), path)
	s.record(audit.KindAdmin, ctx, path, "get-acl", err)
	return a, err
}

// SetACL replaces the protection state of path (administrate mode).
func (s *System) SetACL(ctx *subject.Context, path string, newACL *acl.ACL) error {
	_, err := s.SetACLAt(ctx, path, newACL)
	return err
}

// SetACLAt is SetACL, additionally returning the policy-epoch version
// the change was published in: every check that observes an epoch at or
// past that version sees the new ACL. With write combining the version
// may cover other concurrent mutations batched into the same epoch.
func (s *System) SetACLAt(ctx *subject.Context, path string, newACL *acl.ACL) (uint64, error) {
	v, err := s.ns.SetACLAt(ctx, ctx.Class(), path, newACL)
	s.recordAt(audit.KindAdmin, ctx, path, "set-acl", landingEpoch(s, v), err)
	return v, err
}

// landingEpoch picks the audit epoch for a mutation: the version the
// change landed in when the mutation succeeded, the current version
// otherwise (a failed mutation published nothing).
func landingEpoch(s *System, v uint64) uint64 {
	if v != 0 {
		return v
	}
	return s.ns.Version()
}

// SetClass relabels path (administrate mode plus relabel flow rules).
func (s *System) SetClass(ctx *subject.Context, path string, label string) error {
	_, err := s.SetClassAt(ctx, path, label)
	return err
}

// SetClassAt is SetClass, additionally returning the policy-epoch
// version the relabel was published in (see SetACLAt).
func (s *System) SetClassAt(ctx *subject.Context, path string, label string) (uint64, error) {
	class, err := s.lat.ParseClass(label)
	if err != nil {
		return 0, err
	}
	v, err := s.ns.SetClassAt(ctx, ctx.Class(), path, class)
	s.recordAt(audit.KindAdmin, ctx, path, "set-class "+label, landingEpoch(s, v), err)
	return v, err
}

// IsDenied reports whether err represents an access-control denial (as
// opposed to a missing name or an internal failure).
func IsDenied(err error) bool { return errors.Is(err, names.ErrDenied) }
