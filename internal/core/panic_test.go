package core

import (
	"errors"
	"strings"
	"testing"

	"secext/internal/acl"
	"secext/internal/dispatch"
	"secext/internal/subject"
)

func TestCallContainsAndAuditsHandlerPanic(t *testing.T) {
	s := newSys(t)
	bomb := dispatch.Binding{Owner: "graft", Handler: func(ctx *subject.Context, arg any) (any, error) {
		panic("boom")
	}}
	if err := s.Names().SetACLUnchecked("/svc/fs/read",
		acl.New(acl.AllowEveryone(acl.Execute|acl.Extend))); err != nil {
		t.Fatal(err)
	}
	if err := s.Extend(ctxFor(t, s, "bob"), "/svc/fs/read", bomb); err != nil {
		t.Fatal(err)
	}
	_, err := s.Call(ctxFor(t, s, "alice"), "/svc/fs/read", nil)
	if !errors.Is(err, dispatch.ErrHandlerPanic) {
		t.Fatalf("got %v, want ErrHandlerPanic", err)
	}
	// The panic is attributed on the audit trail.
	found := false
	for _, e := range s.Audit().Recent(0) {
		if strings.Contains(e.Op, "handler-panic owner=graft") && !e.Allowed {
			found = true
		}
	}
	if !found {
		t.Error("panic must be audited with the owner's name")
	}
	// The system survives: retract and call again.
	if err := s.Retract("/svc/fs/read", "graft"); err != nil {
		t.Fatal(err)
	}
	out, err := s.Call(ctxFor(t, s, "alice"), "/svc/fs/read", nil)
	if err != nil || out != "base-read" {
		t.Errorf("after retract: %v, %v", out, err)
	}
}

func TestCallLinkedContainsPanicUnderTrust(t *testing.T) {
	s := newSys(t)
	s.SetTrustLinkTime(true)
	if err := s.Dispatcher().Extend("/svc/fs/read", dispatch.Binding{
		Owner: "graft", Handler: func(ctx *subject.Context, arg any) (any, error) { panic("x") },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CallLinked(ctxFor(t, s, "alice"), "/svc/fs/read", nil); !errors.Is(err, dispatch.ErrHandlerPanic) {
		t.Fatalf("got %v, want ErrHandlerPanic", err)
	}
}
