package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"secext/internal/acl"
	"secext/internal/dispatch"
	"secext/internal/lattice"
	"secext/internal/names"
	"secext/internal/subject"
)

// propWorld is a randomized protection state: principals with random
// classes and group memberships, objects with random ACLs and classes.
type propWorld struct {
	sys     *System
	ctxs    []*subject.Context
	objects []string
}

var propModes = []acl.Mode{
	acl.Read, acl.Write, acl.WriteAppend, acl.Execute,
	acl.Extend, acl.Delete, acl.List, acl.Administrate,
	acl.Read | acl.Write, acl.Execute | acl.Extend,
}

func buildPropWorld(t *testing.T, r *rand.Rand) *propWorld {
	t.Helper()
	levels := []string{"l0", "l1", "l2"}
	cats := []string{"a", "b", "c"}
	sys, err := NewSystem(Options{Levels: levels, Categories: cats, DisableAudit: true})
	if err != nil {
		t.Fatal(err)
	}
	randClass := func() lattice.Class {
		var chosen []string
		for _, c := range cats {
			if r.Intn(2) == 0 {
				chosen = append(chosen, c)
			}
		}
		return sys.Lattice().MustClass(levels[r.Intn(len(levels))], chosen...)
	}
	// Groups.
	groups := []string{"g0", "g1"}
	for _, g := range groups {
		if err := sys.Registry().AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	// Principals.
	w := &propWorld{sys: sys}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("p%d", i)
		if _, err := sys.Registry().AddPrincipal(name, randClass()); err != nil {
			t.Fatal(err)
		}
		for _, g := range groups {
			if r.Intn(2) == 0 {
				if err := sys.Registry().AddMember(g, name); err != nil {
					t.Fatal(err)
				}
			}
		}
		ctx, err := sys.NewContext(name)
		if err != nil {
			t.Fatal(err)
		}
		w.ctxs = append(w.ctxs, ctx)
	}
	// Objects with random ACLs under a wide-open interior node, so the
	// target check is the one under test.
	if _, err := sys.CreateNode(NodeSpec{Path: "/o", Kind: names.KindObject,
		ACL: acl.New(acl.AllowEveryone(acl.List))}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		a := acl.New()
		for e := 0; e < r.Intn(5); e++ {
			var entry acl.Entry
			mode := propModes[r.Intn(len(propModes))]
			switch r.Intn(3) {
			case 0:
				entry = acl.Entry{Kind: acl.Principal, Who: fmt.Sprintf("p%d", r.Intn(4)), Modes: mode}
			case 1:
				entry = acl.Entry{Kind: acl.Group, Who: groups[r.Intn(len(groups))], Modes: mode}
			case 2:
				entry = acl.Entry{Kind: acl.Everyone, Modes: mode}
			}
			entry.Deny = r.Intn(3) == 0
			a.Add(entry)
		}
		path := fmt.Sprintf("/o/obj%d", i)
		if _, err := sys.CreateNode(NodeSpec{
			Path: path, Kind: names.KindFile, ACL: a, Class: randClass(),
		}); err != nil {
			t.Fatal(err)
		}
		w.objects = append(w.objects, path)
	}
	return w
}

// TestPropMediationSoundness replays the monitor's decision against an
// independent re-derivation of the paper's rules: the monitor must
// allow exactly when (a) the ACL grants every requested mode after
// deny-overrides and (b) each requested mode satisfies its lattice flow
// rule. Any drift between internal/names's check path and the model is
// a finding.
func TestPropMediationSoundness(t *testing.T) {
	const readGroup = acl.Read | acl.List | acl.Execute | acl.Extend
	const writeGroup = acl.Write | acl.Delete | acl.Administrate
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		w := buildPropWorld(t, r)
		for _, ctx := range w.ctxs {
			for _, obj := range w.objects {
				node, rerr := w.sys.Names().ResolveUnchecked(obj)
				if rerr != nil {
					t.Fatal(rerr)
				}
				a, aerr := w.sys.Names().ACLOf(obj)
				if aerr != nil {
					t.Fatal(aerr)
				}
				for _, modes := range propModes {
					_, err := w.sys.CheckData(ctx, obj, modes)
					got := err == nil

					want := a.Check(ctx, modes)
					if modes&readGroup != 0 && !ctx.Class().CanRead(node.Class()) {
						want = false
					}
					if modes&writeGroup != 0 && !ctx.Class().CanWrite(node.Class()) {
						want = false
					}
					if modes&acl.WriteAppend != 0 && !ctx.Class().CanAppend(node.Class()) {
						want = false
					}
					if got != want {
						t.Fatalf("seed %d: %s %v on %s: monitor=%v model=%v (subject %s, object %s, acl %s)",
							seed, ctx.SubjectName(), modes, obj, got, want,
							ctx.Class(), node.Class(), a)
					}
				}
			}
		}
	}
}

// TestPropNoAmplification spawns random call chains through services
// with random static classes and asserts the handler never observes a
// class its caller did not dominate — statically classed extensions can
// only shed authority (§2.2).
func TestPropNoAmplification(t *testing.T) {
	f := func(seed int64, depth uint8) bool {
		r := rand.New(rand.NewSource(seed))
		levels := []string{"l0", "l1", "l2"}
		cats := []string{"a", "b", "c", "d"}
		sys, err := NewSystem(Options{Levels: levels, Categories: cats, DisableAudit: true})
		if err != nil {
			return false
		}
		randClass := func() lattice.Class {
			var chosen []string
			for _, c := range cats {
				if r.Intn(2) == 0 {
					chosen = append(chosen, c)
				}
			}
			return sys.Lattice().MustClass(levels[r.Intn(len(levels))], chosen...)
		}
		caller := randClass()
		if _, err := sys.Registry().AddPrincipal("p", caller); err != nil {
			return false
		}
		ctx, err := sys.NewContext("p")
		if err != nil {
			return false
		}
		n := int(depth%8) + 1
		ok := true
		for i := 0; i < n; i++ {
			static := lattice.Class{}
			if r.Intn(2) == 0 {
				static = randClass()
			}
			child, err := ctx.Derive(fmt.Sprintf("/s%d", i), static)
			if err != nil {
				return false
			}
			// The invariant: the parent always dominates the child.
			if !ctx.Class().Dominates(child.Class()) {
				ok = false
			}
			// And the static class, when present, also bounds it.
			if static.Valid() && !static.Dominates(child.Class()) {
				ok = false
			}
			ctx = child
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropDispatchNeverSelectsUndominated asserts the §2.2 selection
// rule: whatever binding the dispatcher picks for a caller, its static
// class is dominated by the caller's class.
func TestPropDispatchNeverSelectsUndominated(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		levels := []string{"l0", "l1", "l2"}
		cats := []string{"a", "b", "c"}
		sys, err := NewSystem(Options{Levels: levels, Categories: cats, DisableAudit: true})
		if err != nil {
			return false
		}
		randClass := func() lattice.Class {
			var chosen []string
			for _, c := range cats {
				if r.Intn(2) == 0 {
					chosen = append(chosen, c)
				}
			}
			return sys.Lattice().MustClass(levels[r.Intn(len(levels))], chosen...)
		}
		noop := func(ctx *subject.Context, arg any) (any, error) { return nil, nil }
		if err := sys.RegisterService(ServiceSpec{
			Path: "/s", ACL: acl.New(acl.AllowEveryone(acl.Execute)),
			Base: dispatch.Binding{Owner: "base", Handler: noop},
		}); err != nil {
			return false
		}
		for i := 0; i < 1+r.Intn(6); i++ {
			if err := sys.Dispatcher().Extend("/s", dispatch.Binding{
				Owner: fmt.Sprintf("e%d", i), Static: randClass(), Handler: noop,
			}); err != nil {
				return false
			}
		}
		caller := randClass()
		b, err := sys.Dispatcher().Select("/s", caller)
		if err != nil {
			return false
		}
		if b.Static.Valid() && !caller.Dominates(b.Static) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
