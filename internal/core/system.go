// Package core implements the paper's primary contribution: a single
// central facility that provides naming and protection for an entire
// extensible system ("Security for Extensible Systems", Grimm & Bershad,
// HotOS 1997, §2–3).
//
// The System type is a reference monitor. Every security-relevant
// operation — calling a service, extending a service, resolving a name,
// touching data, linking an extension, changing protection state —
// funnels through one check path that combines the discretionary
// decision (ACLs with execute/extend modes, §2.1) and the mandatory
// decision (the trust-level × category lattice, §2.2) over the single
// hierarchical name space (§2.3), and records an audit event either way.
// This is deliberate economy of mechanism: the paper's criticism of
// Java's "three prongs" is that distributing enforcement makes the
// security of the whole unarguable.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"secext/internal/acl"
	"secext/internal/audit"
	"secext/internal/decision"
	"secext/internal/dispatch"
	"secext/internal/extension"
	"secext/internal/lattice"
	"secext/internal/monitor"
	"secext/internal/monitor/dacguard"
	"secext/internal/monitor/macguard"
	"secext/internal/names"
	"secext/internal/principal"
	"secext/internal/provenance"
	"secext/internal/subject"
	"secext/internal/telemetry"
)

// Errors returned by the reference monitor.
var (
	ErrConfig = errors.New("core: invalid configuration")
)

// System is the host the extension loader links against.
var _ extension.Host = (*System)(nil)

// Options configure a System.
type Options struct {
	// Levels are the trust levels, lowest first. Required (>= 1).
	Levels []string
	// Categories are the compartment labels. May be empty.
	Categories []string
	// AuditCapacity bounds the in-memory audit ring (default 1024).
	AuditCapacity int
	// DisableAudit starts the system with auditing off (the E7
	// ablation); it can be re-enabled at runtime via Audit().
	DisableAudit bool
	// TrustLinkTime makes capability invocations skip the per-call
	// DAC/MAC re-check, relying on the loader's link-time checks (the
	// SPIN discipline, measured by E6/E7). Default false: full
	// mediation on every call.
	TrustLinkTime bool
	// DisableDecisionCache turns off the mediation fast path: every
	// check takes the full resolve-and-verify walk. Default false — the
	// cache preserves full-mediation semantics (generation-based
	// invalidation means a cached verdict is provably computed against
	// the current protection state), so there is no security reason to
	// disable it; the switch exists for experiments (E11) and debugging.
	DisableDecisionCache bool
	// DecisionCacheSize is the approximate entry capacity of the
	// decision cache (rounded up to a power of two per shard; default
	// 32768 entries).
	DecisionCacheSize int
	// Guards are extra policy modules stacked after the built-in
	// discretionary and mandatory guards in the reference monitor's
	// pipeline (internal/monitor). They run in order; the first denial
	// wins. More guards can be installed later via Monitor().Install.
	Guards []monitor.Guard
	// Telemetry configures the observability subsystem: mediation
	// counters, sampled latency histograms, and decision traces. The
	// zero value enables the default (metrics on, traces sampled 1/64);
	// Mode telemetry.ModeOff disables it entirely, leaving the mediation
	// path exactly as it was before telemetry existed. Kinds is filled in
	// by NewSystem.
	Telemetry telemetry.Options
}

// System is the reference monitor and the owner of every protection-
// relevant data structure. It is safe for concurrent use.
type System struct {
	lat    *lattice.Lattice
	reg    *principal.Registry
	ns     *names.Server
	disp   *dispatch.Dispatcher
	log    *audit.Log
	loader *extension.Loader
	pipe   *monitor.Pipeline
	tel    *telemetry.Telemetry

	trustLinkTime atomic.Bool
}

// NewSystem builds an empty system: a lattice from the option universe,
// an empty principal registry, a name space whose root is at the bottom
// class and listable by everyone, and an empty dispatcher.
func NewSystem(opts Options) (*System, error) {
	if len(opts.Levels) == 0 {
		return nil, fmt.Errorf("%w: at least one trust level required", ErrConfig)
	}
	lat, err := lattice.NewWithUniverse(opts.Levels, opts.Categories)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	bottom, err := lat.Bottom()
	if err != nil {
		return nil, err
	}
	capacity := opts.AuditCapacity
	if capacity == 0 {
		capacity = 1024
	}
	rootACL := acl.New(acl.AllowEveryone(acl.List))
	s := &System{
		lat:  lat,
		reg:  principal.NewRegistry(lat),
		ns:   names.NewServer(lat, rootACL, bottom),
		disp: dispatch.New(),
		log:  audit.NewLog(capacity),
	}

	// The reference monitor's policy pipeline: the paper's layering —
	// discretionary first, mandatory on top — plus any caller-supplied
	// guards. Name-space checks, data checks, and dispatcher admission
	// all consult this one stack.
	stack := append([]monitor.Guard{dacguard.New(), macguard.New()}, opts.Guards...)
	s.pipe = monitor.NewPipeline(stack...)
	s.ns.SetPipeline(s.pipe)

	// Observability: counters keyed by the audit kind vocabulary, guard
	// series pre-registered so /metrics exposes every guard from the
	// first scrape, and snapshot wiring for the stats other layers keep
	// themselves. ModeOff leaves tel nil — every instrumentation site is
	// nil-safe, so a disabled system pays one predictable branch.
	telOpts := opts.Telemetry
	telOpts.Kinds = audit.KindNames()
	s.tel = telemetry.New(telOpts)
	s.tel.RegisterGuards(s.pipe.Guards()...)
	s.tel.SetAuditStats(func() telemetry.AuditStats {
		st := s.log.Stats()
		return telemetry.AuditStats{
			Total: st.Total, Allowed: st.Allowed, Denied: st.Denied,
			Bypassed: st.Bypassed, Dropped: st.Dropped,
		}
	})
	if s.tel != nil {
		s.disp.SetAdmissionObserver(func(_ string, admitted bool) {
			s.tel.Admission(admitted)
		})
	}

	// Host-privileged *Unchecked operations bypass the pipeline; record
	// each one as an administrative bypass event so the audit trail
	// shows exactly where trusted code stepped around mediation.
	s.ns.SetAdminHook(func(op, path string, err error) {
		reason := "bypassed mediation"
		if err != nil {
			reason = err.Error()
		}
		s.log.RecordBypass(audit.Event{
			Kind: audit.KindUnchecked, Subject: "host", Path: path,
			Op: op, Allowed: err == nil, Reason: reason,
		})
	})

	// Class-based handler selection (§2.2) is an admission question for
	// the same pipeline: may this caller use a binding at this static
	// class? The dispatcher itself stays policy-free.
	s.disp.SetAdmission(func(caller lattice.Class, service string, static lattice.Class) bool {
		return s.pipe.Check(monitor.Request{
			Class:  caller,
			Object: monitor.Object{Path: service, Class: static},
			Op:     monitor.OpAdmit,
		}).Allow
	})

	// The epoch version is the single generation clock for cached
	// verdicts, so ANY layer whose state feeds an access decision —
	// the lattice universe, the principal/group registry, the guard
	// stack — publishes its frozen state into the policy epoch through
	// a typed transition. The lattice and pipeline hooks are wired by
	// names.NewServer/SetPipeline; attaching the registry completes the
	// epoch, so from here on one atomic load pins everything a decision
	// needs.
	s.ns.AttachRegistry(s.reg)
	s.tel.SetNamesStats(func() telemetry.NamesStats {
		tr := s.ns.EpochTransitions()
		bs := s.ns.BatchStats()
		cs := s.ns.CompiledStats()
		sc, dv := s.ns.DivergenceStats()
		return telemetry.NamesStats{
			Version:             s.ns.Version(),
			Publishes:           s.ns.Publishes(),
			NameTransitions:     tr.Names,
			LatticeTransitions:  tr.Lattice,
			RegistryTransitions: tr.Registry,
			StackTransitions:    tr.Stack,
			BatchedMutations:    bs.Mutations,
			MaxBatch:            bs.MaxBatch,
			BatchSize:           bs.Sizes,
			FlushLatency:        bs.FlushLatency,

			CompiledFull:                cs.Full,
			CompiledIncremental:         cs.Incremental,
			CompiledReused:              cs.Reused,
			CompiledEntries:             cs.Entries,
			CompiledDomClasses:          cs.DomClasses,
			CompiledSensitive:           cs.Sensitive,
			CompiledRetainedBytes:       cs.RetainedBytes,
			CompiledRetainedBytesCloned: cs.RetainedBytesCloned,
			CompiledIndexBuild:          cs.IndexBuild,
			CompiledSummaryCompile:      cs.SummaryCompile,
			CompiledVisRecompute:        cs.VisRecompute,

			ShadowChecks:   sc,
			Divergences:    dv,
			JournalRecords: s.ns.JournalLen(),
			Footprint:      footprintStats(s.ns.EpochFootprint()),
		}
	})
	// Decision provenance: the epoch-transition journal and the explain
	// engine back /debug/epochs, /debug/explain, and the remote
	// EXPLAIN/EPOCHS commands.
	s.tel.SetEpochJournal(func(n int) []telemetry.EpochTransition {
		recs := s.ns.Journal(n)
		out := make([]telemetry.EpochTransition, len(recs))
		for i, r := range recs {
			out[i] = telemetry.EpochTransition{
				Version: r.Version, Time: r.Time, Shards: r.Shards,
				BatchSize:        r.BatchSize,
				LatticeVersion:   r.LatticeVersion,
				LatticeDeltaBase: r.LatticeDeltaBase,
				RegistryVersion:  r.RegistryVersion, RegistryDeltaBase: r.RegistryDeltaBase,
				IncrementalFreeze: r.IncrementalFreeze,
				Compile:           r.Compile, CompileNS: r.CompileNS, PublishNS: r.PublishNS,
				Kind: r.Kind, PrimaryVersion: r.PrimaryVersion,
			}
		}
		return out
	})
	s.tel.SetExplain(func(subjectName, path, modes string) (string, []byte, error) {
		ex, err := s.Explain(subjectName, path, modes)
		if err != nil {
			return "", nil, err
		}
		body, err := json.Marshal(ex)
		if err != nil {
			return "", nil, err
		}
		return ex.String(), body, nil
	})

	if !opts.DisableDecisionCache {
		// The mediation fast path: memoized verdicts stamped with the
		// snapshot version they were computed against; a publish from any
		// layer makes older entries unreachable.
		cache := decision.NewCache(opts.DecisionCacheSize)
		s.ns.SetDecisionCache(cache)
		s.tel.SetCacheStats(func() telemetry.CacheStats {
			st := cache.Stats()
			return telemetry.CacheStats{
				Hits: st.Hits, Misses: st.Misses, Stores: st.Stores,
				Invalidations: s.ns.Publishes(), Capacity: st.Capacity,
			}
		})
	}
	s.log.SetEnabled(!opts.DisableAudit)
	s.trustLinkTime.Store(opts.TrustLinkTime)
	s.loader = extension.NewLoader(s)
	return s, nil
}

// Lattice returns the system's security lattice.
func (s *System) Lattice() *lattice.Lattice { return s.lat }

// Registry returns the principal and group registry.
func (s *System) Registry() *principal.Registry { return s.reg }

// Names returns the central name server.
func (s *System) Names() *names.Server { return s.ns }

// Dispatcher returns the dynamic binding layer.
func (s *System) Dispatcher() *dispatch.Dispatcher { return s.disp }

// Monitor returns the policy pipeline every mediated operation consults.
// Use Install to stack additional guards at runtime; installing or
// removing a guard invalidates all cached verdicts.
func (s *System) Monitor() *monitor.Pipeline { return s.pipe }

// Audit returns the audit log.
func (s *System) Audit() *audit.Log { return s.log }

// Telemetry returns the observability subsystem, or nil when the system
// was built with telemetry.ModeOff. All telemetry methods are nil-safe,
// so callers may use the result unconditionally.
func (s *System) Telemetry() *telemetry.Telemetry { return s.tel }

// DecisionCache returns the mediation fast-path cache, or nil when the
// system was built with DisableDecisionCache.
func (s *System) DecisionCache() *decision.Cache { return s.ns.DecisionCache() }

// Loader returns the extension loader.
func (s *System) Loader() *extension.Loader { return s.loader }

// SetTrustLinkTime toggles the SPIN-style linked-call fast path.
func (s *System) SetTrustLinkTime(on bool) { s.trustLinkTime.Store(on) }

// TrustsLinkTime reports whether linked calls skip the per-call check.
func (s *System) TrustsLinkTime() bool { return s.trustLinkTime.Load() }

// ParseClass parses a class label against the system lattice; part of
// extension.Host.
func (s *System) ParseClass(label string) (lattice.Class, error) {
	return s.lat.ParseClass(label)
}

// Authenticate resolves a token to a principal; part of extension.Host.
func (s *System) Authenticate(token string) (*principal.Principal, error) {
	return s.reg.Authenticate(token)
}

// AddPrincipal registers a principal at the class given by label.
func (s *System) AddPrincipal(name, classLabel string) (*principal.Principal, error) {
	class, err := s.lat.ParseClass(classLabel)
	if err != nil {
		return nil, err
	}
	return s.reg.AddPrincipal(name, class)
}

// AddPrincipals registers several principals at the class given by
// label as one published registry version — one freeze and one policy
// epoch carry the whole batch (see principal.Registry.AddPrincipals).
func (s *System) AddPrincipals(classLabel string, names ...string) ([]*principal.Principal, error) {
	class, err := s.lat.ParseClass(classLabel)
	if err != nil {
		return nil, err
	}
	return s.reg.AddPrincipals(class, names...)
}

// NewContext creates a root thread of control for a registered
// principal.
func (s *System) NewContext(principalName string) (*subject.Context, error) {
	p, err := s.reg.Principal(principalName)
	if err != nil {
		return nil, err
	}
	return subject.New(p)
}

// Explain re-evaluates the decision (principal, path, modes) against
// the current policy epoch and returns the full provenance working:
// the exact ACL entry and membership chain that matched, each guard's
// verdict with the production short-circuit point, and the MAC
// dominance comparison with both classes named. Advisory tooling: the
// re-evaluation never touches the decision cache and is never audited
// as an access — callers gate it behind an administrative surface
// (secctl, /debug/explain, the remote EXPLAIN command).
func (s *System) Explain(principalName, path, modes string) (*provenance.Explanation, error) {
	ctx, err := s.NewContext(principalName)
	if err != nil {
		return nil, err
	}
	m, err := acl.ParseMode(modes)
	if err != nil {
		return nil, err
	}
	return provenance.ExplainCheck(s.ns.Current(), ctx, path, m), nil
}

// NewContextFromToken authenticates a token and creates a root context
// for the principal it names.
func (s *System) NewContextFromToken(token string) (*subject.Context, error) {
	p, err := s.reg.Authenticate(token)
	if err != nil {
		return nil, err
	}
	return subject.New(p)
}

// NodeSpec describes one name-space node for bootstrap creation.
type NodeSpec struct {
	Path  string        // absolute path of the node
	Kind  names.Kind    // node kind
	ACL   *acl.ACL      // nil = empty (fail-closed)
	Class lattice.Class // zero = bottom
	// Multilevel marks the node as a multilevel container (see
	// names.Node.Multilevel): subjects above its class may bind and
	// unbind entries in it.
	Multilevel bool
}

// CreateNode creates a node with no access checks; for system bootstrap
// before any untrusted code runs. The parent must already exist.
func (s *System) CreateNode(spec NodeSpec) (*names.Node, error) {
	parts, err := names.SplitPath(spec.Path)
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, names.ErrRoot
	}
	class := spec.Class
	if !class.Valid() {
		class, err = s.lat.Bottom()
		if err != nil {
			return nil, err
		}
	}
	parent := names.Join("/", parts[:len(parts)-1]...)
	return s.ns.BindUnchecked(parent, names.BindSpec{
		Name:       parts[len(parts)-1],
		Kind:       spec.Kind,
		ACL:        spec.ACL,
		Class:      class,
		Multilevel: spec.Multilevel,
	})
}

// ServiceSpec describes one callable, extendable service.
type ServiceSpec struct {
	Path  string        // absolute path of the method node
	ACL   *acl.ACL      // protection of the service
	Class lattice.Class // class of the service node (zero = bottom)
	Base  dispatch.Binding
}

// AttachBase installs the base implementation for a method node that
// already exists — typically one declared by a policy file. Bootstrap
// only.
func (s *System) AttachBase(path string, base dispatch.Binding) error {
	n, err := s.ns.ResolveUnchecked(path)
	if err != nil {
		return err
	}
	if n.Kind() != names.KindMethod {
		return fmt.Errorf("%w: %s is a %s, not a method", ErrConfig, path, n.Kind())
	}
	return s.disp.Register(path, base)
}

// RegisterService creates the service's method node and installs its
// base implementation in the dispatcher. Bootstrap only (unchecked);
// untrusted code adds behavior exclusively via Extend.
func (s *System) RegisterService(spec ServiceSpec) error {
	if spec.Base.Handler == nil {
		return fmt.Errorf("%w: service %s has no base handler", ErrConfig, spec.Path)
	}
	node, err := s.CreateNode(NodeSpec{
		Path: spec.Path, Kind: names.KindMethod, ACL: spec.ACL, Class: spec.Class,
	})
	if err != nil {
		return err
	}
	if err := s.disp.Register(spec.Path, spec.Base); err != nil {
		_ = s.ns.UnbindUnchecked(node.Path())
		return err
	}
	return nil
}

// footprintStats maps the name server's epoch footprint into its
// telemetry mirror (the telemetry package stays a leaf and cannot
// import names).
func footprintStats(ef names.EpochFootprint) telemetry.FootprintStats {
	fp := ef.Footprint
	return telemetry.FootprintStats{
		EpochVersion: fp.Version,

		Nodes:       fp.Nodes,
		Leaves:      fp.Leaves,
		Directories: fp.Directories,
		OwnedNodes:  fp.OwnedNodes,
		SharedNodes: fp.SharedNodes,

		ChildSlots:      fp.ChildSlots,
		ChildSliceBytes: fp.ChildSliceBytes,
		PathBytes:       fp.PathBytes,
		NameBytes:       fp.NameBytes,
		NodeStructBytes: fp.NodeStructBytes,

		ACLRefs:       fp.ACLRefs,
		DistinctACLs:  fp.DistinctACLs,
		ACLBytes:      fp.ACLBytes,
		ACLDedupRatio: fp.ACLDedupRatio,

		TotalBytes:   fp.TotalBytes,
		BytesPerNode: fp.BytesPerNode,

		InternedStrings:  ef.Interner.Strings,
		InternedBytes:    ef.Interner.Bytes,
		InternHits:       ef.Interner.Hits,
		InternMisses:     ef.Interner.Misses,
		InternResets:     ef.Interner.Resets,
		ACLCanonDistinct: ef.ACLCanon.Distinct,
		ACLCanonDedups:   ef.ACLCanon.Dedups,
		ACLCanonResets:   ef.ACLCanon.Resets,
	}
}
