package core

import (
	"errors"
	"strings"
	"testing"

	"secext/internal/acl"
	"secext/internal/audit"
	"secext/internal/dispatch"
	"secext/internal/names"
	"secext/internal/subject"
)

// newSys builds the standard test system: paper §2.2 universe, a /svc
// domain with an fs interface and one read service, plus principals.
func newSys(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(Options{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"myself", "dept-1", "dept-2", "outside"},
	})
	if err != nil {
		t.Fatal(err)
	}
	openACL := acl.New(acl.AllowEveryone(acl.List | acl.Execute))
	if _, err := s.CreateNode(NodeSpec{Path: "/svc", Kind: names.KindDomain,
		ACL: acl.New(acl.AllowEveryone(acl.List))}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateNode(NodeSpec{Path: "/svc/fs", Kind: names.KindInterface,
		ACL: acl.New(acl.AllowEveryone(acl.List))}); err != nil {
		t.Fatal(err)
	}
	err = s.RegisterService(ServiceSpec{
		Path: "/svc/fs/read",
		ACL:  openACL,
		Base: dispatch.Binding{Owner: "base", Handler: func(ctx *subject.Context, arg any) (any, error) {
			return "base-read", nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct{ name, class string }{
		{"alice", "local:{myself,dept-1,dept-2,outside}"},
		{"bob", "organization:{dept-1}"},
		{"eve", "others"},
	} {
		if _, err := s.AddPrincipal(p.name, p.class); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func ctxFor(t *testing.T, s *System, name string) *subject.Context {
	t.Helper()
	ctx, err := s.NewContext(name)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Options{}); !errors.Is(err, ErrConfig) {
		t.Errorf("no levels: got %v", err)
	}
	if _, err := NewSystem(Options{Levels: []string{"a", "a"}}); !errors.Is(err, ErrConfig) {
		t.Errorf("dup level: got %v", err)
	}
	s, err := NewSystem(Options{Levels: []string{"only"}})
	if err != nil {
		t.Fatalf("minimal system: %v", err)
	}
	if s.Lattice().NumLevels() != 1 || s.Registry() == nil || s.Names() == nil ||
		s.Dispatcher() == nil || s.Audit() == nil || s.Loader() == nil {
		t.Error("accessors broken")
	}
}

func TestCallAllowed(t *testing.T) {
	s := newSys(t)
	out, err := s.Call(ctxFor(t, s, "alice"), "/svc/fs/read", nil)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if out != "base-read" {
		t.Errorf("Call = %v", out)
	}
	st := s.Audit().Stats()
	if st.ByKind[audit.KindCall] != 1 || st.Allowed != 1 {
		t.Errorf("audit stats = %+v", st)
	}
}

func TestCallDeniedByACL(t *testing.T) {
	s := newSys(t)
	// Tighten the service: only alice may execute.
	if err := s.Names().SetACLUnchecked("/svc/fs/read",
		acl.New(acl.Allow("alice", acl.Execute))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call(ctxFor(t, s, "eve"), "/svc/fs/read", nil); !IsDenied(err) {
		t.Fatalf("eve call: got %v, want denial", err)
	}
	if _, err := s.Call(ctxFor(t, s, "alice"), "/svc/fs/read", nil); err != nil {
		t.Fatalf("alice call: %v", err)
	}
	st := s.Audit().Stats()
	if st.Denied != 1 {
		t.Errorf("denied count = %d", st.Denied)
	}
	// The denial is visible in the audit trail with a reason.
	evs := s.Audit().Recent(0)
	found := false
	for _, e := range evs {
		if !e.Allowed && e.Subject == "eve" && strings.Contains(e.Reason, "acl") {
			found = true
		}
	}
	if !found {
		t.Errorf("no audited denial with acl reason: %v", evs)
	}
}

func TestCallDeniedByMAC(t *testing.T) {
	s := newSys(t)
	// Label the service organization:{dept-1}; eve (others) cannot
	// dominate it although the ACL would let everyone execute.
	if err := s.Names().SetClassUnchecked("/svc/fs/read",
		s.Lattice().MustClass("organization", "dept-1")); err != nil {
		t.Fatal(err)
	}
	_, err := s.Call(ctxFor(t, s, "eve"), "/svc/fs/read", nil)
	if !IsDenied(err) {
		t.Fatalf("eve call: got %v, want denial", err)
	}
	if !strings.Contains(err.Error(), "mac") {
		t.Errorf("denial must cite mac: %v", err)
	}
	if _, err := s.Call(ctxFor(t, s, "bob"), "/svc/fs/read", nil); err != nil {
		t.Fatalf("bob (dept-1) call: %v", err)
	}
}

func TestExtendRequiresMode(t *testing.T) {
	s := newSys(t)
	b := dispatch.Binding{Owner: "x", Handler: func(ctx *subject.Context, arg any) (any, error) {
		return "spec", nil
	}}
	if err := s.Extend(ctxFor(t, s, "bob"), "/svc/fs/read", b); !IsDenied(err) {
		t.Fatalf("extend without mode: got %v", err)
	}
	if err := s.Names().SetACLUnchecked("/svc/fs/read",
		acl.New(acl.AllowEveryone(acl.Execute), acl.Allow("bob", acl.Extend))); err != nil {
		t.Fatal(err)
	}
	if err := s.Extend(ctxFor(t, s, "bob"), "/svc/fs/read", b); err != nil {
		t.Fatalf("authorized extend: %v", err)
	}
	// The dynamic specialization now serves callers.
	out, err := s.Call(ctxFor(t, s, "alice"), "/svc/fs/read", nil)
	if err != nil || out != "spec" {
		t.Errorf("call after extend = %v, %v", out, err)
	}
	// Retract removes it.
	if err := s.Retract("/svc/fs/read", "x"); err != nil {
		t.Fatal(err)
	}
	out, _ = s.Call(ctxFor(t, s, "alice"), "/svc/fs/read", nil)
	if out != "base-read" {
		t.Errorf("call after retract = %v", out)
	}
}

func TestCallAllMulticasts(t *testing.T) {
	s := newSys(t)
	if err := s.Names().SetACLUnchecked("/svc/fs/read",
		acl.New(acl.AllowEveryone(acl.Execute|acl.Extend))); err != nil {
		t.Fatal(err)
	}
	bob := ctxFor(t, s, "bob")
	for _, owner := range []string{"x", "y"} {
		o := owner
		if err := s.Extend(bob, "/svc/fs/read", dispatch.Binding{
			Owner: o, Handler: func(ctx *subject.Context, arg any) (any, error) {
				return "spec-" + o, nil
			}}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.CallAll(ctxFor(t, s, "alice"), "/svc/fs/read", nil)
	if err != nil {
		t.Fatalf("CallAll: %v", err)
	}
	if len(out) != 3 || out[0] != "base-read" || out[1] != "spec-x" || out[2] != "spec-y" {
		t.Errorf("CallAll = %v", out)
	}
	// Execute mode still gates the multicast.
	if err := s.Names().SetACLUnchecked("/svc/fs/read", acl.New()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CallAll(ctxFor(t, s, "alice"), "/svc/fs/read", nil); !IsDenied(err) {
		t.Errorf("unauthorized CallAll: got %v", err)
	}
}

func TestCheckImportExtendAuditedAsLink(t *testing.T) {
	s := newSys(t)
	ctx := ctxFor(t, s, "alice")
	if err := s.CheckImport(ctx, "/svc/fs/read"); err != nil {
		t.Fatalf("CheckImport: %v", err)
	}
	if err := s.CheckExtend(ctx, "/svc/fs/read"); !IsDenied(err) {
		t.Fatalf("CheckExtend without mode: got %v", err)
	}
	st := s.Audit().Stats()
	if st.ByKind[audit.KindLink] != 2 {
		t.Errorf("link events = %d, want 2", st.ByKind[audit.KindLink])
	}
}

func TestCallLinkedTrustToggle(t *testing.T) {
	s := newSys(t)
	// Deny eve at the ACL, then compare Call vs CallLinked under both
	// trust settings.
	if err := s.Names().SetACLUnchecked("/svc/fs/read",
		acl.New(acl.Allow("alice", acl.Execute))); err != nil {
		t.Fatal(err)
	}
	eve := ctxFor(t, s, "eve")
	if _, err := s.CallLinked(eve, "/svc/fs/read", nil); !IsDenied(err) {
		t.Fatalf("full mediation: got %v, want denial", err)
	}
	s.SetTrustLinkTime(true)
	if !s.TrustsLinkTime() {
		t.Error("TrustsLinkTime accessor")
	}
	// With link-time trust the (hypothetically already linked) call
	// proceeds: the check happened at link time in this mode.
	if out, err := s.CallLinked(eve, "/svc/fs/read", nil); err != nil || out != "base-read" {
		t.Errorf("trusted linked call = %v, %v", out, err)
	}
	// Call still always checks.
	if _, err := s.Call(eve, "/svc/fs/read", nil); !IsDenied(err) {
		t.Errorf("Call must always check: got %v", err)
	}
}

func TestNameOpsMediated(t *testing.T) {
	s := newSys(t)
	alice := ctxFor(t, s, "alice")
	eve := ctxFor(t, s, "eve")

	// List: /svc is listable by everyone.
	got, err := s.List(eve, "/svc")
	if err != nil || len(got) != 1 || got[0] != "fs" {
		t.Errorf("List = %v, %v", got, err)
	}

	// Resolve with visibility.
	if _, err := s.Resolve(eve, "/svc/fs/read"); err != nil {
		t.Errorf("Resolve: %v", err)
	}

	// Bind: give alice write on /svc/fs first; alice is at local
	// (top), the parent is at bottom, so MAC write fails — binding into
	// a low directory from a high subject is a write-down.
	if err := s.Names().SetACLUnchecked("/svc/fs",
		acl.New(acl.AllowEveryone(acl.List), acl.Allow("alice", acl.Write))); err != nil {
		t.Fatal(err)
	}
	_, err = s.Bind(alice, "/svc/fs", names.BindSpec{
		Name: "write", Kind: names.KindMethod, Class: s.Lattice().MustClass("others"),
	})
	if !IsDenied(err) {
		t.Fatalf("high subject bind into low dir: got %v", err)
	}
	// eve (bottom) with write may bind at her own class.
	if err := s.Names().SetACLUnchecked("/svc/fs",
		acl.New(acl.AllowEveryone(acl.List), acl.Allow("eve", acl.Write))); err != nil {
		t.Fatal(err)
	}
	n, err := s.Bind(eve, "/svc/fs", names.BindSpec{
		Name: "write", Kind: names.KindMethod, Class: s.Lattice().MustClass("others"),
		ACL: acl.New(acl.Allow("eve", acl.Delete)),
	})
	if err != nil {
		t.Fatalf("eve bind: %v", err)
	}
	if n.Path() != "/svc/fs/write" {
		t.Errorf("bound path = %s", n.Path())
	}

	// Unbind needs delete on node + write on parent.
	if err := s.Unbind(eve, "/svc/fs/write"); err != nil {
		t.Fatalf("unbind: %v", err)
	}
	st := s.Audit().Stats()
	if st.ByKind[audit.KindName] == 0 {
		t.Error("name ops must audit")
	}
}

func TestACLAdministration(t *testing.T) {
	s := newSys(t)
	alice := ctxFor(t, s, "alice")
	eve := ctxFor(t, s, "eve")
	// Nobody has administrate yet.
	if err := s.SetACL(eve, "/svc/fs/read", acl.New()); !IsDenied(err) {
		t.Fatalf("unauthorized SetACL: got %v", err)
	}
	if err := s.Names().SetACLUnchecked("/svc/fs/read",
		acl.New(acl.AllowEveryone(acl.Execute), acl.Allow("eve", acl.Administrate))); err != nil {
		t.Fatal(err)
	}
	// eve administrates: grant herself read too.
	newACL := acl.New(
		acl.AllowEveryone(acl.Execute),
		acl.Allow("eve", acl.Administrate|acl.Read),
	)
	if err := s.SetACL(eve, "/svc/fs/read", newACL); err != nil {
		t.Fatalf("SetACL: %v", err)
	}
	got, err := s.GetACL(eve, "/svc/fs/read")
	if err != nil {
		t.Fatalf("GetACL: %v", err)
	}
	if got.String() != newACL.String() {
		t.Errorf("GetACL = %v", got)
	}
	// alice without read/administrate cannot inspect.
	if _, err := s.GetACL(alice, "/svc/fs/read"); !IsDenied(err) {
		t.Errorf("GetACL unauthorized: got %v", err)
	}
	// SetClass via label.
	if err := s.SetClass(eve, "/svc/fs/read", "organization:{dept-1}"); err != nil {
		t.Fatalf("SetClass: %v", err)
	}
	n, _ := s.Names().ResolveUnchecked("/svc/fs/read")
	if n.Class().String() != "organization:{dept-1}" {
		t.Errorf("class = %s", n.Class())
	}
	if err := s.SetClass(eve, "/svc/fs/read", "no-such"); err == nil {
		t.Error("bad label must fail")
	}
	st := s.Audit().Stats()
	if st.ByKind[audit.KindAdmin] == 0 {
		t.Error("admin ops must audit")
	}
}

func TestCheckData(t *testing.T) {
	s := newSys(t)
	if _, err := s.CreateNode(NodeSpec{Path: "/data", Kind: names.KindDirectory,
		ACL: acl.New(acl.AllowEveryone(acl.List))}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateNode(NodeSpec{
		Path: "/data/f", Kind: names.KindFile,
		ACL:   acl.New(acl.Allow("bob", acl.Read|acl.Write)),
		Class: s.Lattice().MustClass("organization", "dept-1"),
	}); err != nil {
		t.Fatal(err)
	}
	bob := ctxFor(t, s, "bob")
	if _, err := s.CheckData(bob, "/data/f", acl.Read); err != nil {
		t.Errorf("bob read: %v", err)
	}
	if _, err := s.CheckData(bob, "/data/f", acl.Read|acl.Write); err != nil {
		t.Errorf("bob read+write at own class: %v", err)
	}
	eve := ctxFor(t, s, "eve")
	if _, err := s.CheckData(eve, "/data/f", acl.Read); !IsDenied(err) {
		t.Errorf("eve read: got %v", err)
	}
	st := s.Audit().Stats()
	if st.ByKind[audit.KindData] != 3 {
		t.Errorf("data events = %d", st.ByKind[audit.KindData])
	}
}

func TestContextsFromTokens(t *testing.T) {
	s := newSys(t)
	tok, err := s.Registry().IssueToken("bob")
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := s.NewContextFromToken(tok)
	if err != nil || ctx.SubjectName() != "bob" {
		t.Fatalf("NewContextFromToken: %v %v", ctx, err)
	}
	if _, err := s.NewContextFromToken("junk"); err == nil {
		t.Error("bad token must fail")
	}
	if _, err := s.NewContext("ghost"); err == nil {
		t.Error("unknown principal must fail")
	}
}

func TestRegisterServiceRollback(t *testing.T) {
	s := newSys(t)
	// Duplicate path: node bind fails.
	err := s.RegisterService(ServiceSpec{
		Path: "/svc/fs/read", ACL: acl.New(),
		Base: dispatch.Binding{Owner: "b", Handler: func(ctx *subject.Context, arg any) (any, error) { return nil, nil }},
	})
	if !errors.Is(err, names.ErrExists) {
		t.Errorf("dup service: got %v", err)
	}
	// Nil handler rejected.
	err = s.RegisterService(ServiceSpec{Path: "/svc/fs/stat", ACL: acl.New()})
	if !errors.Is(err, ErrConfig) {
		t.Errorf("nil base: got %v", err)
	}
	if _, err := s.Names().ResolveUnchecked("/svc/fs/stat"); !errors.Is(err, names.ErrNotFound) {
		t.Error("failed registration must not leave a node")
	}
	// Dispatcher duplicate with fresh node path: rolls back the node.
	if err := s.Dispatcher().Register("/svc/fs/dup", dispatch.Binding{
		Owner: "pre", Handler: func(ctx *subject.Context, arg any) (any, error) { return nil, nil },
	}); err != nil {
		t.Fatal(err)
	}
	err = s.RegisterService(ServiceSpec{
		Path: "/svc/fs/dup", ACL: acl.New(),
		Base: dispatch.Binding{Owner: "b", Handler: func(ctx *subject.Context, arg any) (any, error) { return nil, nil }},
	})
	if !errors.Is(err, dispatch.ErrDuplicate) {
		t.Errorf("dispatcher dup: got %v", err)
	}
	if _, err := s.Names().ResolveUnchecked("/svc/fs/dup"); !errors.Is(err, names.ErrNotFound) {
		t.Error("node must be rolled back on dispatcher failure")
	}
}

func TestCreateNodeValidation(t *testing.T) {
	s := newSys(t)
	if _, err := s.CreateNode(NodeSpec{Path: "/"}); !errors.Is(err, names.ErrRoot) {
		t.Errorf("create root: got %v", err)
	}
	if _, err := s.CreateNode(NodeSpec{Path: "bad"}); !errors.Is(err, names.ErrBadPath) {
		t.Errorf("bad path: got %v", err)
	}
	if _, err := s.CreateNode(NodeSpec{Path: "/nope/child", Kind: names.KindObject}); !errors.Is(err, names.ErrNotFound) {
		t.Errorf("missing parent: got %v", err)
	}
}

func TestAuditDisabledAtStart(t *testing.T) {
	s, err := NewSystem(Options{Levels: []string{"l"}, DisableAudit: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Audit().Enabled() {
		t.Error("DisableAudit must start the log disabled")
	}
}
