package decision

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"secext/internal/acl"
	"secext/internal/lattice"
)

func testLattice(t *testing.T) *lattice.Lattice {
	t.Helper()
	lat, err := lattice.NewWithUniverse([]string{"low", "high"}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	return lat
}

func TestLookupMissThenHit(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(0)

	if _, _, ok := c.Lookup("alice", cls, "/svc/a", acl.Execute, 0); ok {
		t.Fatal("empty cache must miss")
	}
	node := &struct{ name string }{"payload"}
	c.StoreAt(c.Gen(), "alice", cls, "/svc/a", acl.Execute, 0, node, nil)
	got, err, ok := c.Lookup("alice", cls, "/svc/a", acl.Execute, 0)
	if !ok || err != nil || got != node {
		t.Fatalf("Lookup = %v, %v, %v; want stored node", got, err, ok)
	}

	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestCachedDenial(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(0)
	denied := errors.New("denied for test")
	c.StoreAt(c.Gen(), "mallory", cls, "/svc/a", acl.Write, 0, nil, denied)
	node, err, ok := c.Lookup("mallory", cls, "/svc/a", acl.Write, 0)
	if !ok || node != nil || !errors.Is(err, denied) {
		t.Fatalf("Lookup = %v, %v, %v; want cached denial", node, err, ok)
	}
}

func TestExactKeyMatch(t *testing.T) {
	lat := testLattice(t)
	low, high := lat.MustClass("low"), lat.MustClass("high", "a")
	c := NewCache(0)
	c.StoreAt(c.Gen(), "alice", low, "/svc/a", acl.Execute, 0, "v", nil)

	// Any differing key component must miss, even if the hash collides.
	misses := []struct {
		subject string
		class   lattice.Class
		path    string
		modes   acl.Mode
	}{
		{"bob", low, "/svc/a", acl.Execute},
		{"alice", high, "/svc/a", acl.Execute},
		{"alice", low, "/svc/b", acl.Execute},
		{"alice", low, "/svc/a", acl.Read},
	}
	for _, m := range misses {
		if _, _, ok := c.Lookup(m.subject, m.class, m.path, m.modes, 0); ok {
			t.Errorf("Lookup(%q, %v, %q, %v) hit; want miss", m.subject, m.class, m.path, m.modes)
		}
	}
}

func TestInvalidateKillsEveryEntry(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(0)
	for i := 0; i < 100; i++ {
		c.StoreAt(c.Gen(), "alice", cls, fmt.Sprintf("/svc/n%d", i), acl.Execute, 0, i, nil)
	}
	c.Invalidate()
	for i := 0; i < 100; i++ {
		if _, _, ok := c.Lookup("alice", cls, fmt.Sprintf("/svc/n%d", i), acl.Execute, 0); ok {
			t.Fatalf("entry %d survived invalidation", i)
		}
	}
	if s := c.Stats(); s.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", s.Invalidations)
	}
}

// TestStaleStoreDropped is the TOCTOU guard: a verdict computed against
// generation g must not be served if the protection state mutated while
// the computation ran.
func TestStaleStoreDropped(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(0)
	gen := c.Gen() // read before "computing" the decision
	c.Invalidate() // a mutation races with the computation
	c.StoreAt(gen, "alice", cls, "/svc/a", acl.Execute, 0, "v", nil)
	if _, _, ok := c.Lookup("alice", cls, "/svc/a", acl.Execute, 0); ok {
		t.Fatal("verdict computed against a stale generation was served")
	}
}

// TestTinyCacheCollisions forces heavy slot sharing and verifies a
// collision can only evict, never serve the wrong verdict.
func TestTinyCacheCollisions(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(numShards) // one slot per shard
	for i := 0; i < 1000; i++ {
		path := fmt.Sprintf("/svc/n%d", i)
		c.StoreAt(c.Gen(), "alice", cls, path, acl.Execute, 0, path, nil)
	}
	for i := 0; i < 1000; i++ {
		path := fmt.Sprintf("/svc/n%d", i)
		if v, err, ok := c.Lookup("alice", cls, path, acl.Execute, 0); ok {
			if err != nil || v.(string) != path {
				t.Fatalf("collision served wrong verdict: key %q got %v, %v", path, v, err)
			}
		}
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	lat := testLattice(t)
	cls := lat.MustClass("low")
	if _, _, ok := c.Lookup("alice", cls, "/x", acl.Read, 0); ok {
		t.Error("nil cache must miss")
	}
	c.StoreAt(0, "alice", cls, "/x", acl.Read, 0, nil, nil) // must not panic
	c.Invalidate()
	if g := c.Gen(); g != 0 {
		t.Errorf("nil Gen = %d", g)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil Stats = %+v", s)
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ req, min int }{
		{0, numShards},
		{1, numShards},
		{100000, 100000},
	} {
		c := NewCache(tc.req)
		if s := c.Stats(); s.Capacity < tc.min {
			t.Errorf("NewCache(%d).Capacity = %d, want >= %d", tc.req, s.Capacity, tc.min)
		}
		if s := c.Stats(); s.Capacity&(s.Capacity-1) != 0 {
			t.Errorf("capacity %d not a power of two", s.Capacity)
		}
	}
}

// TestConcurrentMixedUse hammers the cache from many goroutines doing
// lookups, stores, and invalidations at once; run under -race this is
// the memory-safety proof for the lock-free design.
func TestConcurrentMixedUse(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				path := fmt.Sprintf("/svc/n%d", i%64)
				switch {
				case i%97 == 0:
					c.Invalidate()
				case i%3 == 0:
					gen := c.Gen()
					c.StoreAt(gen, "alice", cls, path, acl.Execute, 0, path, nil)
				default:
					if v, err, ok := c.Lookup("alice", cls, path, acl.Execute, 0); ok {
						if err != nil || v.(string) != path {
							t.Errorf("wrong verdict under concurrency: %v, %v", v, err)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStackGenerationIsPartOfTheKey: a verdict computed under one
// monitor guard stack must never be served under another.
func TestStackGenerationIsPartOfTheKey(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(0)
	c.StoreAt(c.Gen(), "alice", cls, "/svc/a", acl.Execute, 7, "v", nil)
	if _, _, ok := c.Lookup("alice", cls, "/svc/a", acl.Execute, 8); ok {
		t.Fatal("verdict computed under another guard stack was served")
	}
	if _, _, ok := c.Lookup("alice", cls, "/svc/a", acl.Execute, 7); !ok {
		t.Fatal("matching stack generation must hit")
	}
}
