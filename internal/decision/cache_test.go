package decision

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"secext/internal/acl"
	"secext/internal/lattice"
)

func testLattice(t *testing.T) *lattice.Lattice {
	t.Helper()
	lat, err := lattice.NewWithUniverse([]string{"low", "high"}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	return lat
}

func TestLookupMissThenHit(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(0)

	if _, _, ok := c.Lookup(1, "alice", cls, "/svc/a", acl.Execute); ok {
		t.Fatal("empty cache must miss")
	}
	node := &struct{ name string }{"payload"}
	c.StoreAt(1, "alice", cls, "/svc/a", acl.Execute, node, nil)
	got, err, ok := c.Lookup(1, "alice", cls, "/svc/a", acl.Execute)
	if !ok || err != nil || got != node {
		t.Fatalf("Lookup = %v, %v, %v; want stored node", got, err, ok)
	}

	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestCachedDenial(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(0)
	denied := errors.New("denied for test")
	c.StoreAt(1, "mallory", cls, "/svc/a", acl.Write, nil, denied)
	node, err, ok := c.Lookup(1, "mallory", cls, "/svc/a", acl.Write)
	if !ok || node != nil || !errors.Is(err, denied) {
		t.Fatalf("Lookup = %v, %v, %v; want cached denial", node, err, ok)
	}
}

func TestExactKeyMatch(t *testing.T) {
	lat := testLattice(t)
	low, high := lat.MustClass("low"), lat.MustClass("high", "a")
	c := NewCache(0)
	c.StoreAt(1, "alice", low, "/svc/a", acl.Execute, "v", nil)

	// Any differing key component must miss, even if the hash collides.
	misses := []struct {
		subject string
		class   lattice.Class
		path    string
		modes   acl.Mode
	}{
		{"bob", low, "/svc/a", acl.Execute},
		{"alice", high, "/svc/a", acl.Execute},
		{"alice", low, "/svc/b", acl.Execute},
		{"alice", low, "/svc/a", acl.Read},
	}
	for _, m := range misses {
		if _, _, ok := c.Lookup(1, m.subject, m.class, m.path, m.modes); ok {
			t.Errorf("Lookup(%q, %v, %q, %v) hit; want miss", m.subject, m.class, m.path, m.modes)
		}
	}
}

// TestVersionAdvanceKillsEveryEntry: publishing a new snapshot version
// makes every entry stamped with an older one unreachable — the
// snapshot-clock form of whole-cache invalidation.
func TestVersionAdvanceKillsEveryEntry(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(0)
	for i := 0; i < 100; i++ {
		c.StoreAt(1, "alice", cls, fmt.Sprintf("/svc/n%d", i), acl.Execute, i, nil)
	}
	// The protection state moved to version 2; lookups pin version 2.
	for i := 0; i < 100; i++ {
		if _, _, ok := c.Lookup(2, "alice", cls, fmt.Sprintf("/svc/n%d", i), acl.Execute); ok {
			t.Fatalf("entry %d stamped with version 1 served at version 2", i)
		}
	}
}

// TestStaleEntryUnreachable is the TOCTOU guard in snapshot form: a
// verdict computed against a pinned snapshot is stored stamped with
// that snapshot's version. It stays correct *for that version*, and a
// reader that pinned any later version can never see it.
func TestStaleEntryUnreachable(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(0)
	// Decision computed against pinned version 1 while a mutation
	// concurrently published version 2: the store still lands...
	c.StoreAt(1, "alice", cls, "/svc/a", acl.Execute, "v", nil)
	// ...but a reader pinning the current (newer) snapshot misses.
	if _, _, ok := c.Lookup(2, "alice", cls, "/svc/a", acl.Execute); ok {
		t.Fatal("verdict stamped with a stale version was served")
	}
	// A reader still pinned to version 1 may use it: the verdict is
	// correct for that snapshot by construction.
	if _, _, ok := c.Lookup(1, "alice", cls, "/svc/a", acl.Execute); !ok {
		t.Fatal("verdict must hit for the version it was computed against")
	}
}

// TestTinyCacheCollisions forces heavy slot sharing and verifies a
// collision can only evict, never serve the wrong verdict.
func TestTinyCacheCollisions(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(numShards) // one slot per shard
	for i := 0; i < 1000; i++ {
		path := fmt.Sprintf("/svc/n%d", i)
		c.StoreAt(1, "alice", cls, path, acl.Execute, path, nil)
	}
	for i := 0; i < 1000; i++ {
		path := fmt.Sprintf("/svc/n%d", i)
		if v, err, ok := c.Lookup(1, "alice", cls, path, acl.Execute); ok {
			if err != nil || v.(string) != path {
				t.Fatalf("collision served wrong verdict: key %q got %v, %v", path, v, err)
			}
		}
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	lat := testLattice(t)
	cls := lat.MustClass("low")
	if _, _, ok := c.Lookup(1, "alice", cls, "/x", acl.Read); ok {
		t.Error("nil cache must miss")
	}
	c.StoreAt(1, "alice", cls, "/x", acl.Read, nil, nil) // must not panic
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("nil Stats = %+v", s)
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ req, min int }{
		{0, numShards},
		{1, numShards},
		{100000, 100000},
	} {
		c := NewCache(tc.req)
		if s := c.Stats(); s.Capacity < tc.min {
			t.Errorf("NewCache(%d).Capacity = %d, want >= %d", tc.req, s.Capacity, tc.min)
		}
		if s := c.Stats(); s.Capacity&(s.Capacity-1) != 0 {
			t.Errorf("capacity %d not a power of two", s.Capacity)
		}
	}
}

// TestConcurrentMixedUse hammers the cache from many goroutines doing
// lookups, stores, and version advances at once; run under -race this
// is the memory-safety proof for the lock-free design. The external
// version counter stands in for the name server's snapshot clock.
func TestConcurrentMixedUse(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(1024)
	var version atomic.Uint64
	version.Store(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				path := fmt.Sprintf("/svc/n%d", i%64)
				switch {
				case i%97 == 0:
					version.Add(1) // a mutation publishes a new snapshot
				case i%3 == 0:
					c.StoreAt(version.Load(), "alice", cls, path, acl.Execute, path, nil)
				default:
					if v, err, ok := c.Lookup(version.Load(), "alice", cls, path, acl.Execute); ok {
						if err != nil || v.(string) != path {
							t.Errorf("wrong verdict under concurrency: %v, %v", v, err)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEpochVersionCoversTheGuardStack: the cache key carries no
// separate guard-stack generation anymore — a stack change republishes
// the policy epoch, so the single version comparison is what keeps a
// verdict computed under one stack from being served under another.
func TestEpochVersionCoversTheGuardStack(t *testing.T) {
	lat := testLattice(t)
	cls := lat.MustClass("low")
	c := NewCache(0)
	// Verdict computed against epoch 7 (some guard stack in force).
	c.StoreAt(7, "alice", cls, "/svc/a", acl.Execute, "v", nil)
	// A guard install published epoch 8: the entry is unreachable.
	if _, _, ok := c.Lookup(8, "alice", cls, "/svc/a", acl.Execute); ok {
		t.Fatal("verdict computed under another guard stack was served")
	}
	if _, _, ok := c.Lookup(7, "alice", cls, "/svc/a", acl.Execute); !ok {
		t.Fatal("matching epoch version must hit")
	}
}
