// Package decision implements the mediation fast path: a sharded,
// lock-free cache of access-control verdicts with generation-based
// invalidation.
//
// The paper's model mediates every call, extend, read, and write through
// the central name server (§2.3) and defers the cost question; this
// package answers it. A full check resolves the path inside a pinned
// name-space snapshot, walks per-level visibility, evaluates the ACL,
// and applies the lattice flow rules. The decision, however, is a pure
// function of
//
//	(subject, subject class, object path, requested modes)
//
// and of the protection state (bindings, ACLs, classes, group
// memberships, lattice definitions, guard stack). The cache memoizes
// verdicts keyed by the tuple and stamps each entry with the
// *generation* of the protection state the decision was computed
// against. The generation is not owned by this package: it is the name
// server's policy-epoch version, and because the epoch bundles the name
// tree, the frozen lattice, the frozen registry, and the guard stack
// behind one pointer, that single number covers all of them. Every
// mutation anywhere in the protection state — Bind/Unbind/Rename, an
// ACL edit, a group membership change, a lattice definition, a relabel,
// a guard install — publishes a new epoch and so advances the version,
// and a single comparison against the caller's pinned version proves a
// cached verdict is still current. This makes
// revocation correctness trivial to reason about: a stale grant cannot
// be served, because the mutation that revoked it necessarily advanced
// the version before the next lookup could pin a snapshot. (Compare
// SPIN's link-time capabilities, which trade exactly this property for
// speed; the cache keeps full-mediation semantics and gets the speed
// back.)
//
// Concurrency design: the cache is a 64-way sharded, direct-mapped table
// of atomic entry pointers. A hit performs zero locks and zero heap
// allocations — one hash, one atomic pointer load, and an exact key
// comparison (hash collisions can evict, never confuse: subject, path,
// modes, and class are all compared exactly). A store publishes an
// immutable entry with a single atomic pointer store; collisions simply
// overwrite (cache eviction, not an error). Invalidation is implicit:
// publishing a new snapshot version makes every entry stamped with an
// older one unreachable, without touching the shards, so an
// invalidation storm costs readers only misses, never stalls.
package decision

import (
	"sync/atomic"

	"secext/internal/acl"
	"secext/internal/lattice"
)

const (
	// numShards is the sharding factor. Shard choice comes from the
	// upper hash bits, slot choice from the lower ones, so related keys
	// spread across shards.
	numShards = 64
	// defaultSlotsPerShard gives 64×512 = 32768 entries by default.
	defaultSlotsPerShard = 512
)

// Generation is an atomic counter identifying a version of some piece
// of decision-relevant state that lives outside the name space — the
// monitor uses one for its guard stack. (The protection-state
// generation itself is the name server's snapshot version, not a
// Generation.) The zero Generation is ready to use.
type Generation struct {
	v atomic.Uint64
}

// Bump advances the generation, invalidating every verdict stamped
// before it.
func (g *Generation) Bump() { g.v.Add(1) }

// Current returns the current generation value.
func (g *Generation) Current() uint64 { return g.v.Load() }

// entry is one immutable cached verdict. Published via atomic pointer
// store; never mutated afterwards.
type entry struct {
	gen     uint64        // epoch version this verdict is valid for
	subject string        // principal name
	path    string        // object path
	class   lattice.Class // subject's class at decision time
	modes   acl.Mode      // requested modes
	node    any           // resolved object on grant (opaque to this package)
	err     error         // nil for a grant, the denial error otherwise
}

// shard is one independent slice of the table with its own hit/miss
// counters. The counters are per-shard (and the struct padded) so that
// statistics do not create a single contended cache line on the hot
// path.
type shard struct {
	slots  []atomic.Pointer[entry]
	hits   atomic.Uint64
	misses atomic.Uint64
	_      [40]byte // pad to keep neighboring shards' counters apart
}

// Cache is the sharded decision cache. It holds no generation of its
// own: callers pin a name-space snapshot, pass its version to Lookup
// and StoreAt, and the version comparison does the invalidation. The
// zero Cache is not usable; call NewCache. A nil *Cache is a valid
// no-op: Lookup always misses and StoreAt does nothing, so callers can
// make caching optional without branching.
type Cache struct {
	mask   uint64 // slotsPerShard - 1
	shards [numShards]shard
	stores atomic.Uint64
}

// NewCache creates a cache with roughly the given total capacity
// (rounded to a power-of-two number of slots per shard; 0 means the
// default of 32768 entries).
func NewCache(capacity int) *Cache {
	per := defaultSlotsPerShard
	if capacity > 0 {
		per = 1
		for per*numShards < capacity {
			per <<= 1
		}
	}
	c := &Cache{mask: uint64(per - 1)}
	for i := range c.shards {
		c.shards[i].slots = make([]atomic.Pointer[entry], per)
	}
	return c
}

// fnv64 constants (FNV-1a).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// keyHash folds the key into 64 bits without allocating. The epoch
// version is deliberately left OUT of the hash even though it is part
// of the match (Lookup compares it exactly): the hash only routes, so
// keeping every generation of a logical key in the same slot lets the
// current verdict overwrite its dead predecessor instead of stranding
// stale entries across the table.
func keyHash(subject string, class lattice.Class, path string, modes acl.Mode) uint64 {
	h := uint64(fnvOffset)
	h = hashString(h, subject)
	h ^= 0xff // separator outside the path alphabet
	h *= fnvPrime
	h = hashString(h, path)
	h ^= uint64(modes)
	h *= fnvPrime
	h ^= class.Hash64()
	h *= fnvPrime
	return h
}

// slotFor routes a hash to its shard and slot.
func (c *Cache) slotFor(h uint64) (*shard, *atomic.Pointer[entry]) {
	s := &c.shards[(h>>56)%numShards]
	return s, &s.slots[h&c.mask]
}

// Lookup returns the cached verdict for the request, if one is present
// and was computed against epoch version gen — the version of the
// policy epoch the caller has pinned for this decision. Because the
// epoch bundles name tree, lattice, registry, and guard stack, the one
// version comparison proves the whole verdict current. On a grant, node
// is the value stored by StoreAt and err is nil; on a cached denial,
// err is the original denial error. The fast path takes zero locks and
// performs zero allocations.
func (c *Cache) Lookup(gen uint64, subject string, class lattice.Class, path string, modes acl.Mode) (node any, err error, ok bool) {
	if c == nil {
		return nil, nil, false
	}
	sh, slot := c.slotFor(keyHash(subject, class, path, modes))
	e := slot.Load()
	// Every key component is compared exactly — the hash only routes, it
	// never decides — so a collision can evict an entry but can never
	// cause the wrong verdict to be served. The comparison is written
	// inline (not as an entry method) to keep the hit path free of call
	// boundaries.
	if e == nil || e.gen != gen ||
		e.modes != modes || e.subject != subject ||
		e.path != path || !e.class.Equal(class) {
		sh.misses.Add(1)
		return nil, nil, false
	}
	sh.hits.Add(1)
	return e.node, e.err, true
}

// StoreAt publishes a verdict computed against the pinned epoch with
// version gen. The store is unconditional: because the whole decision
// ran against one immutable epoch, the verdict is correct *for that
// version* by construction — if a mutation published a newer epoch in
// the meantime, later lookups pin the newer version and the entry
// simply never matches (it occupies a slot until overwritten, which is
// eviction, not staleness). node is returned verbatim by Lookup on a
// hit and is opaque to the cache; err non-nil caches a denial.
func (c *Cache) StoreAt(gen uint64, subject string, class lattice.Class, path string, modes acl.Mode, node any, err error) {
	if c == nil {
		return
	}
	_, slot := c.slotFor(keyHash(subject, class, path, modes))
	slot.Store(&entry{
		gen:     gen,
		subject: subject,
		path:    path,
		class:   class,
		modes:   modes,
		node:    node,
		err:     err,
	})
	c.stores.Add(1)
}

// Stats is a snapshot of the cache's counters. Invalidation is not
// counted here — it is a property of the snapshot clock, reported by
// the name server as its publish count.
type Stats struct {
	Hits     uint64 // lookups served from cache
	Misses   uint64 // lookups that fell through to a full check
	Stores   uint64 // verdicts published
	Capacity int    // total slots
}

// Stats sums the per-shard counters.
func (c *Cache) Stats() Stats {
	var s Stats
	if c == nil {
		return s
	}
	for i := range c.shards {
		s.Hits += c.shards[i].hits.Load()
		s.Misses += c.shards[i].misses.Load()
	}
	s.Stores = c.stores.Load()
	s.Capacity = numShards * int(c.mask+1)
	return s
}
