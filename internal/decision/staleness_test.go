// Staleness security tests: a cached stale grant is a vulnerability,
// not a performance bug. Each case warms the decision cache with a
// granted check through the full reference monitor, revokes the grant
// through a different protection layer, and asserts the VERY NEXT check
// denies — proving the layer's mutation reached the cache generation.
package decision_test

import (
	"testing"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/monitor"
	"secext/internal/names"
	"secext/internal/subject"
)

func stalenessSystem(t *testing.T) (*core.System, *subject.Context) {
	t.Helper()
	s, err := core.NewSystem(core.Options{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.DecisionCache() == nil {
		t.Fatal("decision cache must be on by default")
	}
	if _, err := s.CreateNode(core.NodeSpec{Path: "/obj", Kind: names.KindDomain,
		ACL: acl.New(acl.AllowEveryone(acl.List))}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddPrincipal("worker", "organization"); err != nil {
		t.Fatal(err)
	}
	ctx, err := s.NewContext("worker")
	if err != nil {
		t.Fatal(err)
	}
	return s, ctx
}

func TestRevocationDeniesOnNextCheck(t *testing.T) {
	cases := []struct {
		name string
		// grant sets up the object/rights so that check succeeds.
		grant func(t *testing.T, s *core.System)
		// revoke withdraws the grant through one protection layer.
		revoke func(t *testing.T, s *core.System)
		// path/modes is the access being cached and then revoked.
		path  string
		modes acl.Mode
	}{
		{
			name: "acl-entry-revoked",
			grant: func(t *testing.T, s *core.System) {
				mustBind(t, s, "/obj/doc", acl.New(acl.Allow("worker", acl.Read)))
			},
			revoke: func(t *testing.T, s *core.System) {
				if err := s.Names().SetACLUnchecked("/obj/doc", acl.New()); err != nil {
					t.Fatal(err)
				}
			},
			path:  "/obj/doc",
			modes: acl.Read,
		},
		{
			name: "group-membership-removed",
			grant: func(t *testing.T, s *core.System) {
				if err := s.Registry().AddGroup("staff"); err != nil {
					t.Fatal(err)
				}
				if err := s.Registry().AddMember("staff", "worker"); err != nil {
					t.Fatal(err)
				}
				mustBind(t, s, "/obj/memo", acl.New(acl.AllowGroup("staff", acl.Read)))
			},
			revoke: func(t *testing.T, s *core.System) {
				if err := s.Registry().RemoveMember("staff", "worker"); err != nil {
					t.Fatal(err)
				}
			},
			path:  "/obj/memo",
			modes: acl.Read,
		},
		{
			name: "node-relabeled-above-subject",
			grant: func(t *testing.T, s *core.System) {
				mustBind(t, s, "/obj/note", acl.New(acl.Allow("worker", acl.Read)))
			},
			revoke: func(t *testing.T, s *core.System) {
				// worker is at "organization"; raising the node to
				// "local" makes MAC read fail (no read up).
				high := s.Lattice().MustClass("local")
				if err := s.Names().SetClassUnchecked("/obj/note", high); err != nil {
					t.Fatal(err)
				}
			},
			path:  "/obj/note",
			modes: acl.Read,
		},
		{
			name: "in-place-acl-edit-via-live-hook",
			grant: func(t *testing.T, s *core.System) {
				mustBind(t, s, "/obj/live", acl.New(acl.Allow("worker", acl.Read)))
			},
			revoke: func(t *testing.T, s *core.System) {
				// Replace the grant with an explicit deny entry; the
				// deny-overrides rule then vetoes the cached right.
				if err := s.Names().SetACLUnchecked("/obj/live", acl.New(
					acl.Allow("worker", acl.Read),
					acl.Deny("worker", acl.Read),
				)); err != nil {
					t.Fatal(err)
				}
			},
			path:  "/obj/live",
			modes: acl.Read,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, ctx := stalenessSystem(t)
			tc.grant(t, s)

			// Warm the cache: the first check computes and publishes
			// the verdict, the second must be served from cache.
			if _, err := s.CheckData(ctx, tc.path, tc.modes); err != nil {
				t.Fatalf("setup check: %v", err)
			}
			before := s.DecisionCache().Stats()
			if _, err := s.CheckData(ctx, tc.path, tc.modes); err != nil {
				t.Fatalf("warm check: %v", err)
			}
			if after := s.DecisionCache().Stats(); after.Hits <= before.Hits {
				t.Fatalf("second check was not a cache hit: %+v -> %+v", before, after)
			}

			tc.revoke(t, s)

			// The very next check must deny — no revoked grant may be
			// served from cache, ever.
			if _, err := s.CheckData(ctx, tc.path, tc.modes); !core.IsDenied(err) {
				t.Fatalf("check after revocation = %v; want denial", err)
			}
		})
	}
}

// TestUnbindInvalidatesGrant covers the name-space mutation path:
// unbinding the object must kill the cached grant (the next check
// reports not-found, not a stale success).
func TestUnbindInvalidatesGrant(t *testing.T) {
	s, ctx := stalenessSystem(t)
	mustBind(t, s, "/obj/tmp", acl.New(acl.Allow("worker", acl.Read)))
	if _, err := s.CheckData(ctx, "/obj/tmp", acl.Read); err != nil {
		t.Fatal(err)
	}
	if err := s.Names().UnbindUnchecked("/obj/tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckData(ctx, "/obj/tmp", acl.Read); err == nil {
		t.Fatal("check after unbind succeeded from stale cache")
	}
}

// TestDenialAlsoInvalidates covers the opposite direction: a cached
// DENIAL must clear when the right is granted, or revocation-safety
// would come at the price of grants never taking effect.
func TestDenialAlsoInvalidates(t *testing.T) {
	s, ctx := stalenessSystem(t)
	mustBind(t, s, "/obj/doc", acl.New())
	for i := 0; i < 2; i++ { // second check caches the denial
		if _, err := s.CheckData(ctx, "/obj/doc", acl.Read); !core.IsDenied(err) {
			t.Fatalf("check %d = no denial", i)
		}
	}
	if err := s.Names().SetACLUnchecked("/obj/doc", acl.New(acl.Allow("worker", acl.Read))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CheckData(ctx, "/obj/doc", acl.Read); err != nil {
		t.Fatalf("check after grant = %v; want success", err)
	}
}

func mustBind(t *testing.T, s *core.System, path string, a *acl.ACL) {
	t.Helper()
	if _, err := s.CreateNode(core.NodeSpec{Path: path, Kind: names.KindFile, ACL: a}); err != nil {
		t.Fatal(err)
	}
}

// denyAll is a test guard that vetoes every request.
type denyAll struct{}

func (denyAll) Name() string { return "deny-all" }
func (denyAll) Check(monitor.Request) monitor.Verdict {
	return monitor.Deny("deny-all", "test veto")
}

// TestGuardStackChangeInvalidatesGrant covers the monitor layer: a
// guard install republishes the policy epoch, and the epoch version
// stamps every cache key, so installing a guard must kill every cached
// verdict (the very next check runs the new stack and denies), and
// removing it must kill the cached denial again.
func TestGuardStackChangeInvalidatesGrant(t *testing.T) {
	s, ctx := stalenessSystem(t)
	mustBind(t, s, "/obj/doc", acl.New(acl.Allow("worker", acl.Read)))

	// Warm the cache with a grant computed under the default stack.
	if _, err := s.CheckData(ctx, "/obj/doc", acl.Read); err != nil {
		t.Fatalf("setup check: %v", err)
	}
	before := s.DecisionCache().Stats()
	if _, err := s.CheckData(ctx, "/obj/doc", acl.Read); err != nil {
		t.Fatalf("warm check: %v", err)
	}
	if after := s.DecisionCache().Stats(); after.Hits <= before.Hits {
		t.Fatalf("second check was not a cache hit: %+v -> %+v", before, after)
	}

	// Installing a guard changes the policy; the cached grant computed
	// under the old stack must not survive it.
	remove := s.Monitor().Install(denyAll{})
	if _, err := s.CheckData(ctx, "/obj/doc", acl.Read); !core.IsDenied(err) {
		t.Fatalf("check after guard install = %v; want denial", err)
	}

	// Cache the denial under the widened stack, then remove the guard:
	// the stale denial must die just as dead as the stale grant did.
	if _, err := s.CheckData(ctx, "/obj/doc", acl.Read); !core.IsDenied(err) {
		t.Fatal("second denied check")
	}
	remove()
	if _, err := s.CheckData(ctx, "/obj/doc", acl.Read); err != nil {
		t.Fatalf("check after guard removal = %v; want the grant back", err)
	}
}
