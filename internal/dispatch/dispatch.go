// Package dispatch implements the dynamic binding layer of the paper's
// model: services are invoked through existing interfaces, extensions
// register specializations behind those interfaces, and "when the
// extended service is invoked, the right extension is selected based on
// the security class of the caller" (§2.2). The design follows SPIN's
// event-dispatch model (Pardyak & Bershad, OSDI 1996) with the paper's
// class-based selection added.
//
// The dispatcher holds no policy of its own: the reference monitor in
// internal/core performs the execute/extend access checks before
// touching the dispatcher.
package dispatch

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"secext/internal/lattice"
	"secext/internal/subject"
)

// Errors returned by the dispatcher.
var (
	ErrNoService  = errors.New("dispatch: service not registered")
	ErrDuplicate  = errors.New("dispatch: service already registered")
	ErrNoHandler  = errors.New("dispatch: no handler admissible for caller class")
	ErrNilHandler = errors.New("dispatch: nil handler")
	// ErrHandlerPanic wraps a panic recovered from a handler; see
	// PanicError.
	ErrHandlerPanic = errors.New("dispatch: handler panicked")
)

// PanicError reports a handler that panicked. Following VINO's
// "surviving misbehaved kernel extensions" discipline, a panicking
// specialization must not take the system down: the dispatcher converts
// the panic into an error attributed to the handler's owner, so the
// monitor can audit it and the host can decide to unload the extension.
type PanicError struct {
	Service string // service path
	Owner   string // owner of the panicking binding
	Value   any    // the recovered panic value
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("dispatch: handler panicked: %s owned by %q: %v",
		e.Service, e.Owner, e.Value)
}

func (e *PanicError) Unwrap() error { return ErrHandlerPanic }

// Handler is one callable service implementation. It receives the
// (possibly clamped) context it runs at and an opaque argument value.
type Handler func(ctx *subject.Context, arg any) (any, error)

// Binding associates a handler with the extension that registered it
// and the static security class it runs at.
type Binding struct {
	// Owner names the extension or principal that registered the
	// handler (for audit and unregistration).
	Owner string
	// Static is the statically assigned class of the handler. If
	// valid, the handler is admissible only for callers whose class
	// dominates it, and it runs at the meet of the caller's class and
	// Static. The zero class means the handler is purely dynamic: it is
	// admissible for every caller and runs at the caller's class.
	Static lattice.Class
	// Guard is an optional extra admissibility predicate over the
	// caller's class. A nil Guard admits every caller the Static rule
	// admits.
	Guard func(caller lattice.Class) bool
	// Handler is the implementation.
	Handler Handler
}

// AdmissionFunc is the pluggable class-admissibility rule: may a caller
// at class caller use a binding of service whose static class is static?
// It must be a pure function of its arguments and must not call back
// into the dispatcher.
type AdmissionFunc func(caller lattice.Class, service string, static lattice.Class) bool

// defaultAdmission is the paper's rule applied when no AdmissionFunc is
// installed: a statically classed binding admits only callers that
// dominate its class; a zero static class admits everyone.
func defaultAdmission(caller lattice.Class, _ string, static lattice.Class) bool {
	return !static.Valid() || caller.Dominates(static)
}

// service is one extendable entry point.
type service struct {
	base Binding
	// specs holds specializations in registration order.
	specs []Binding
}

// Dispatcher maps name-space paths of method nodes to their handler
// sets. It is safe for concurrent use.
type Dispatcher struct {
	mu       sync.RWMutex
	services map[string]*service

	// admission, when set, replaces the built-in static-class rule for
	// every binding. The dispatcher itself stays policy-free: the
	// reference monitor installs its pipeline here as a plain function.
	admission atomic.Pointer[AdmissionFunc]

	// observer, when set, is told the outcome of every admission check
	// (Select and Multicast candidates alike). The reference monitor
	// points it at its telemetry counters; like admission it must be a
	// cheap pure function and must not call back into the dispatcher.
	observer atomic.Pointer[func(service string, admitted bool)]
}

// New creates an empty dispatcher.
func New() *Dispatcher {
	return &Dispatcher{services: make(map[string]*service)}
}

// SetAdmission replaces the class-admissibility rule applied during
// Select and Multicast. A nil f restores the built-in rule (caller must
// dominate a valid static class). The per-binding Guard predicate is
// applied after the admission rule either way.
func (d *Dispatcher) SetAdmission(f AdmissionFunc) {
	if f == nil {
		d.admission.Store(nil)
		return
	}
	d.admission.Store(&f)
}

// SetAdmissionObserver installs (or, with nil, removes) a callback
// notified of every admission decision. Call during setup.
func (d *Dispatcher) SetAdmissionObserver(f func(service string, admitted bool)) {
	if f == nil {
		d.observer.Store(nil)
		return
	}
	d.observer.Store(&f)
}

// admits applies the admission rule and the binding's own Guard.
func (d *Dispatcher) admits(path string, caller lattice.Class, b *Binding) bool {
	rule := defaultAdmission
	if f := d.admission.Load(); f != nil {
		rule = *f
	}
	ok := rule(caller, path, b.Static)
	if ok && b.Guard != nil && !b.Guard(caller) {
		ok = false
	}
	if obs := d.observer.Load(); obs != nil {
		(*obs)(path, ok)
	}
	return ok
}

// Register installs the base implementation of a service. Each path can
// be registered once.
func (d *Dispatcher) Register(path string, base Binding) error {
	if base.Handler == nil {
		return fmt.Errorf("%w: base of %s", ErrNilHandler, path)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.services[path]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, path)
	}
	d.services[path] = &service{base: base}
	return nil
}

// Unregister removes a service and all its specializations.
func (d *Dispatcher) Unregister(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.services[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNoService, path)
	}
	delete(d.services, path)
	return nil
}

// Extend registers a specialization of an existing service.
func (d *Dispatcher) Extend(path string, b Binding) error {
	if b.Handler == nil {
		return fmt.Errorf("%w: specialization of %s", ErrNilHandler, path)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	svc, ok := d.services[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoService, path)
	}
	svc.specs = append(svc.specs, b)
	return nil
}

// RemoveExtensions drops every specialization owned by owner from the
// service at path, returning how many were removed.
func (d *Dispatcher) RemoveExtensions(path, owner string) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	svc, ok := d.services[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoService, path)
	}
	kept := svc.specs[:0]
	removed := 0
	for _, b := range svc.specs {
		if b.Owner == owner {
			removed++
			continue
		}
		kept = append(kept, b)
	}
	svc.specs = kept
	return removed, nil
}

// Registered reports whether a base implementation exists at path.
func (d *Dispatcher) Registered(path string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.services[path]
	return ok
}

// Handlers returns the owners of the base and every specialization at
// path, base first.
func (d *Dispatcher) Handlers(path string) ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	svc, ok := d.services[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoService, path)
	}
	out := make([]string, 0, 1+len(svc.specs))
	out = append(out, svc.base.Owner)
	for _, b := range svc.specs {
		out = append(out, b.Owner)
	}
	return out, nil
}

// Select picks the binding that will serve a caller at class caller:
// among admissible specializations, the one with the most dominant
// static class (the most specific handler the caller may use); ties go
// to the earliest registered. Purely dynamic specializations (zero
// Static) are least specific: they are chosen only if no statically
// classed specialization is admissible. If no specialization is
// admissible the base binding is returned.
func (d *Dispatcher) Select(path string, caller lattice.Class) (Binding, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	svc, ok := d.services[path]
	if !ok {
		return Binding{}, fmt.Errorf("%w: %s", ErrNoService, path)
	}
	var best *Binding
	for i := range svc.specs {
		b := &svc.specs[i]
		if !d.admits(path, caller, b) {
			continue
		}
		if best == nil {
			best = b
			continue
		}
		// Strictly more specific wins; otherwise keep the earlier one.
		if b.Static.Valid() && (!best.Static.Valid() ||
			(b.Static.Dominates(best.Static) && !b.Static.Equal(best.Static))) {
			best = b
		}
	}
	if best != nil {
		return *best, nil
	}
	if !d.admits(path, caller, &svc.base) {
		return Binding{}, fmt.Errorf("%w: %s for class %s", ErrNoHandler, path, caller)
	}
	return svc.base, nil
}

// Invoke selects the right handler for the caller's class and runs it
// in a derived context clamped by the handler's static class. A panic
// in the handler is contained: Invoke returns a *PanicError naming the
// owning extension instead of unwinding the caller.
func (d *Dispatcher) Invoke(path string, ctx *subject.Context, arg any) (out any, err error) {
	b, err := d.Select(path, ctx.Class())
	if err != nil {
		return nil, err
	}
	child, err := ctx.Derive(path, b.Static)
	if err != nil {
		return nil, err
	}
	defer func() {
		if v := recover(); v != nil {
			out = nil
			err = &PanicError{Service: path, Owner: b.Owner, Value: v}
		}
	}()
	return b.Handler(child, arg)
}

// Multicast invokes the base implementation and *every* admissible
// specialization for the caller, each in its own clamped context, and
// returns the successful results in invocation order (base first).
// SPIN's event dispatch is multicast — an event may have many handlers
// — and the paper's model composes with it: each handler still runs at
// the meet of the caller's class and its own static class. Handler
// errors and contained panics are joined into the returned error; a
// failing handler does not stop the rest.
func (d *Dispatcher) Multicast(path string, ctx *subject.Context, arg any) ([]any, error) {
	d.mu.RLock()
	svc, ok := d.services[path]
	if !ok {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoService, path)
	}
	bindings := make([]Binding, 0, 1+len(svc.specs))
	if d.admits(path, ctx.Class(), &svc.base) {
		bindings = append(bindings, svc.base)
	}
	for i := range svc.specs {
		if d.admits(path, ctx.Class(), &svc.specs[i]) {
			bindings = append(bindings, svc.specs[i])
		}
	}
	d.mu.RUnlock()

	var results []any
	var errs []error
	for _, b := range bindings {
		out, err := runContained(path, b, ctx, arg)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		results = append(results, out)
	}
	return results, errors.Join(errs...)
}

// runContained runs one binding in a derived context with panic
// containment.
func runContained(path string, b Binding, ctx *subject.Context, arg any) (out any, err error) {
	child, err := ctx.Derive(path, b.Static)
	if err != nil {
		return nil, err
	}
	defer func() {
		if v := recover(); v != nil {
			out = nil
			err = &PanicError{Service: path, Owner: b.Owner, Value: v}
		}
	}()
	return b.Handler(child, arg)
}

// Services returns the number of registered services.
func (d *Dispatcher) Services() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.services)
}
