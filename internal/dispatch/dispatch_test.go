package dispatch

import (
	"errors"
	"testing"

	"secext/internal/lattice"
	"secext/internal/principal"
	"secext/internal/subject"
)

type world struct {
	lat *lattice.Lattice
	reg *principal.Registry
	d   *Dispatcher
}

func newWorld(t *testing.T) *world {
	t.Helper()
	lat, err := lattice.NewWithUniverse(
		[]string{"others", "organization", "local"},
		[]string{"dept-1", "dept-2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return &world{lat: lat, reg: principal.NewRegistry(lat), d: New()}
}

func (w *world) ctx(t *testing.T, name, class string, cats ...string) *subject.Context {
	t.Helper()
	p, err := w.reg.Principal(name)
	if err != nil {
		p, err = w.reg.AddPrincipal(name, w.lat.MustClass(class, cats...))
		if err != nil {
			t.Fatal(err)
		}
	}
	return subject.MustNew(p)
}

// tag returns a handler that reports its identity and running class.
func tag(id string) Handler {
	return func(ctx *subject.Context, arg any) (any, error) {
		return id + "@" + ctx.Class().String(), nil
	}
}

func TestRegisterInvokeBase(t *testing.T) {
	w := newWorld(t)
	if err := w.d.Register("/svc/fs/read", Binding{Owner: "base", Handler: tag("base")}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	got, err := w.d.Invoke("/svc/fs/read", w.ctx(t, "alice", "organization", "dept-1"), nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got != "base@organization:{dept-1}" {
		t.Errorf("Invoke = %v", got)
	}
}

func TestRegisterErrors(t *testing.T) {
	w := newWorld(t)
	if err := w.d.Register("/s", Binding{Owner: "b"}); !errors.Is(err, ErrNilHandler) {
		t.Errorf("nil handler: got %v", err)
	}
	if err := w.d.Register("/s", Binding{Owner: "b", Handler: tag("x")}); err != nil {
		t.Fatal(err)
	}
	if err := w.d.Register("/s", Binding{Owner: "b2", Handler: tag("y")}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: got %v", err)
	}
	if err := w.d.Extend("/nope", Binding{Owner: "e", Handler: tag("z")}); !errors.Is(err, ErrNoService) {
		t.Errorf("extend missing: got %v", err)
	}
	if err := w.d.Extend("/s", Binding{Owner: "e"}); !errors.Is(err, ErrNilHandler) {
		t.Errorf("extend nil handler: got %v", err)
	}
	if _, err := w.d.Invoke("/nope", w.ctx(t, "a", "others"), nil); !errors.Is(err, ErrNoService) {
		t.Errorf("invoke missing: got %v", err)
	}
}

func TestClassBasedSelection(t *testing.T) {
	// §2.2: "Extensions with different security classes can all be
	// allowed to extend the same system service. But when the extended
	// service is invoked, the right extension is selected based on the
	// security class of the caller."
	w := newWorld(t)
	if err := w.d.Register("/svc/fs/read", Binding{Owner: "base", Handler: tag("base")}); err != nil {
		t.Fatal(err)
	}
	orgD1 := w.lat.MustClass("organization", "dept-1")
	orgD2 := w.lat.MustClass("organization", "dept-2")
	local := w.lat.MustClass("local", "dept-1", "dept-2")
	for _, b := range []Binding{
		{Owner: "ext-d1", Static: orgD1, Handler: tag("d1")},
		{Owner: "ext-d2", Static: orgD2, Handler: tag("d2")},
		{Owner: "ext-local", Static: local, Handler: tag("loc")},
	} {
		if err := w.d.Extend("/svc/fs/read", b); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name string
		ctx  *subject.Context
		want string
	}{
		// dept-1 caller gets the dept-1 extension, clamped to dept-1.
		{"d1 caller", w.ctx(t, "u1", "organization", "dept-1"), "d1@organization:{dept-1}"},
		{"d2 caller", w.ctx(t, "u2", "organization", "dept-2"), "d2@organization:{dept-2}"},
		// A local caller dominating all statics gets the most dominant.
		{"local caller", w.ctx(t, "u3", "local", "dept-1", "dept-2"), "loc@local:{dept-1,dept-2}"},
		// An outside caller dominates no static: falls to base.
		{"outside caller", w.ctx(t, "u4", "others"), "base@others"},
	}
	for _, tc := range cases {
		got, err := w.d.Invoke("/svc/fs/read", tc.ctx, nil)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSelectionTieGoesToEarliest(t *testing.T) {
	w := newWorld(t)
	if err := w.d.Register("/s", Binding{Owner: "base", Handler: tag("base")}); err != nil {
		t.Fatal(err)
	}
	c := w.lat.MustClass("organization", "dept-1")
	if err := w.d.Extend("/s", Binding{Owner: "first", Static: c, Handler: tag("first")}); err != nil {
		t.Fatal(err)
	}
	if err := w.d.Extend("/s", Binding{Owner: "second", Static: c, Handler: tag("second")}); err != nil {
		t.Fatal(err)
	}
	got, err := w.d.Invoke("/s", w.ctx(t, "u", "local", "dept-1", "dept-2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != "first@organization:{dept-1}" {
		t.Errorf("tie: got %v, want first", got)
	}
}

func TestDynamicSpecializationIsLeastSpecific(t *testing.T) {
	w := newWorld(t)
	if err := w.d.Register("/s", Binding{Owner: "base", Handler: tag("base")}); err != nil {
		t.Fatal(err)
	}
	if err := w.d.Extend("/s", Binding{Owner: "dyn", Handler: tag("dyn")}); err != nil {
		t.Fatal(err)
	}
	// Dynamic spec beats base but loses to any admissible static spec.
	got, _ := w.d.Invoke("/s", w.ctx(t, "u1", "others"), nil)
	if got != "dyn@others" {
		t.Errorf("dynamic spec must beat base: %v", got)
	}
	static := w.lat.MustClass("organization", "dept-1")
	if err := w.d.Extend("/s", Binding{Owner: "st", Static: static, Handler: tag("st")}); err != nil {
		t.Fatal(err)
	}
	got, _ = w.d.Invoke("/s", w.ctx(t, "u2", "organization", "dept-1"), nil)
	if got != "st@organization:{dept-1}" {
		t.Errorf("static spec must beat dynamic: %v", got)
	}
	got, _ = w.d.Invoke("/s", w.ctx(t, "u3", "others"), nil)
	if got != "dyn@others" {
		t.Errorf("inadmissible static must fall back to dynamic: %v", got)
	}
}

func TestGuard(t *testing.T) {
	w := newWorld(t)
	if err := w.d.Register("/s", Binding{Owner: "base", Handler: tag("base")}); err != nil {
		t.Fatal(err)
	}
	noD2 := func(c lattice.Class) bool {
		d2 := w.lat.MustClass("others", "dept-2")
		return !c.Dominates(d2)
	}
	if err := w.d.Extend("/s", Binding{Owner: "g", Guard: noD2, Handler: tag("g")}); err != nil {
		t.Fatal(err)
	}
	got, _ := w.d.Invoke("/s", w.ctx(t, "u1", "organization", "dept-1"), nil)
	if got != "g@organization:{dept-1}" {
		t.Errorf("guard admit: %v", got)
	}
	got, _ = w.d.Invoke("/s", w.ctx(t, "u2", "organization", "dept-2"), nil)
	if got != "base@organization:{dept-2}" {
		t.Errorf("guard reject: %v", got)
	}
}

func TestBaseGuardCanRejectEntirely(t *testing.T) {
	w := newWorld(t)
	org := w.lat.MustClass("organization")
	if err := w.d.Register("/s", Binding{Owner: "base", Static: org, Handler: tag("base")}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.d.Invoke("/s", w.ctx(t, "low", "others"), nil); !errors.Is(err, ErrNoHandler) {
		t.Errorf("inadmissible base: got %v", err)
	}
}

func TestRemoveExtensions(t *testing.T) {
	w := newWorld(t)
	if err := w.d.Register("/s", Binding{Owner: "base", Handler: tag("base")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		owner := "ext"
		if i == 2 {
			owner = "other"
		}
		if err := w.d.Extend("/s", Binding{Owner: owner, Handler: tag(owner)}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := w.d.RemoveExtensions("/s", "ext")
	if err != nil || n != 2 {
		t.Fatalf("RemoveExtensions = %d, %v", n, err)
	}
	hs, _ := w.d.Handlers("/s")
	if len(hs) != 2 || hs[0] != "base" || hs[1] != "other" {
		t.Errorf("Handlers = %v", hs)
	}
	if _, err := w.d.RemoveExtensions("/nope", "x"); !errors.Is(err, ErrNoService) {
		t.Errorf("remove from missing: got %v", err)
	}
}

func TestUnregister(t *testing.T) {
	w := newWorld(t)
	if err := w.d.Register("/s", Binding{Owner: "base", Handler: tag("base")}); err != nil {
		t.Fatal(err)
	}
	if !w.d.Registered("/s") || w.d.Services() != 1 {
		t.Error("Registered/Services wrong")
	}
	if err := w.d.Unregister("/s"); err != nil {
		t.Fatal(err)
	}
	if w.d.Registered("/s") || w.d.Services() != 0 {
		t.Error("service must be gone")
	}
	if err := w.d.Unregister("/s"); !errors.Is(err, ErrNoService) {
		t.Errorf("double unregister: got %v", err)
	}
	if _, err := w.d.Handlers("/s"); !errors.Is(err, ErrNoService) {
		t.Errorf("Handlers on missing: got %v", err)
	}
}

func TestInvokeRunsAtClampedClass(t *testing.T) {
	// The handler observes the meet of caller class and static class —
	// authority amplification through extension is impossible.
	w := newWorld(t)
	static := w.lat.MustClass("organization", "dept-1")
	var seen lattice.Class
	h := func(ctx *subject.Context, arg any) (any, error) {
		seen = ctx.Class()
		return nil, nil
	}
	if err := w.d.Register("/s", Binding{Owner: "b", Static: static, Handler: h}); err != nil {
		t.Fatal(err)
	}
	caller := w.ctx(t, "u", "local", "dept-1", "dept-2")
	if _, err := w.d.Invoke("/s", caller, nil); err != nil {
		t.Fatal(err)
	}
	want := w.lat.MustClass("organization", "dept-1")
	if !seen.Equal(want) {
		t.Errorf("handler ran at %s, want %s", seen, want)
	}
}
