package dispatch

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"secext/internal/subject"
)

func TestMulticastRunsAllAdmissible(t *testing.T) {
	w := newWorld(t)
	if err := w.d.Register("/ev", Binding{Owner: "base", Handler: tag("base")}); err != nil {
		t.Fatal(err)
	}
	d1 := w.lat.MustClass("organization", "dept-1")
	d2 := w.lat.MustClass("organization", "dept-2")
	if err := w.d.Extend("/ev", Binding{Owner: "h1", Static: d1, Handler: tag("h1")}); err != nil {
		t.Fatal(err)
	}
	if err := w.d.Extend("/ev", Binding{Owner: "h2", Static: d2, Handler: tag("h2")}); err != nil {
		t.Fatal(err)
	}
	// A caller dominating only dept-1 reaches base and h1, not h2.
	out, err := w.d.Multicast("/ev", w.ctx(t, "u1", "local", "dept-1"), nil)
	if err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	if len(out) != 2 || out[0] != "base@local:{dept-1}" || out[1] != "h1@organization:{dept-1}" {
		t.Errorf("results = %v", out)
	}
	// A caller dominating both reaches all three, each clamped.
	out, err = w.d.Multicast("/ev", w.ctx(t, "u2", "local", "dept-1", "dept-2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("results = %v", out)
	}
}

func TestMulticastJoinsErrorsAndContainsPanics(t *testing.T) {
	w := newWorld(t)
	if err := w.d.Register("/ev", Binding{Owner: "base", Handler: tag("base")}); err != nil {
		t.Fatal(err)
	}
	if err := w.d.Extend("/ev", Binding{Owner: "failing",
		Handler: func(ctx *subject.Context, arg any) (any, error) {
			return nil, fmt.Errorf("handler says no")
		}}); err != nil {
		t.Fatal(err)
	}
	if err := w.d.Extend("/ev", Binding{Owner: "bomber",
		Handler: func(ctx *subject.Context, arg any) (any, error) {
			panic("kaboom")
		}}); err != nil {
		t.Fatal(err)
	}
	if err := w.d.Extend("/ev", Binding{Owner: "fine", Handler: tag("fine")}); err != nil {
		t.Fatal(err)
	}
	out, err := w.d.Multicast("/ev", w.ctx(t, "u", "others"), nil)
	if len(out) != 2 { // base + fine
		t.Errorf("results = %v", out)
	}
	if err == nil {
		t.Fatal("joined error expected")
	}
	if !errors.Is(err, ErrHandlerPanic) {
		t.Errorf("panic must be in the joined error: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Owner != "bomber" {
		t.Errorf("panic attribution: %v", err)
	}
	if got := err.Error(); !strings.Contains(got, "handler says no") {
		t.Errorf("plain error must be joined: %v", got)
	}
}

func TestMulticastNoService(t *testing.T) {
	w := newWorld(t)
	if _, err := w.d.Multicast("/missing", w.ctx(t, "u", "others"), nil); !errors.Is(err, ErrNoService) {
		t.Errorf("got %v", err)
	}
}

func TestMulticastInadmissibleBase(t *testing.T) {
	w := newWorld(t)
	org := w.lat.MustClass("organization")
	if err := w.d.Register("/ev", Binding{Owner: "base", Static: org, Handler: tag("base")}); err != nil {
		t.Fatal(err)
	}
	if err := w.d.Extend("/ev", Binding{Owner: "dyn", Handler: tag("dyn")}); err != nil {
		t.Fatal(err)
	}
	// A low caller skips the inadmissible base but still reaches the
	// dynamic specialization.
	out, err := w.d.Multicast("/ev", w.ctx(t, "low", "others"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "dyn@others" {
		t.Errorf("results = %v", out)
	}
}
