package dispatch

import (
	"errors"
	"strings"
	"testing"

	"secext/internal/subject"
)

func TestInvokeContainsHandlerPanic(t *testing.T) {
	w := newWorld(t)
	if err := w.d.Register("/s", Binding{Owner: "base", Handler: tag("base")}); err != nil {
		t.Fatal(err)
	}
	bomb := func(ctx *subject.Context, arg any) (any, error) {
		panic("misbehaved graft")
	}
	if err := w.d.Extend("/s", Binding{Owner: "evil-ext", Handler: bomb}); err != nil {
		t.Fatal(err)
	}
	out, err := w.d.Invoke("/s", w.ctx(t, "u", "organization", "dept-1"), nil)
	if out != nil {
		t.Errorf("out = %v, want nil", out)
	}
	if !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("got %v, want ErrHandlerPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatal("error must be a *PanicError")
	}
	if pe.Owner != "evil-ext" || pe.Service != "/s" || pe.Value != "misbehaved graft" {
		t.Errorf("PanicError = %+v", pe)
	}
	if !strings.Contains(pe.Error(), "evil-ext") {
		t.Errorf("Error() must name the owner: %s", pe.Error())
	}

	// The system survives: retract the offender and the base serves.
	if _, err := w.d.RemoveExtensions("/s", "evil-ext"); err != nil {
		t.Fatal(err)
	}
	got, err := w.d.Invoke("/s", w.ctx(t, "u", "organization", "dept-1"), nil)
	if err != nil || got != "base@organization:{dept-1}" {
		t.Errorf("after retract: %v, %v", got, err)
	}
}

func TestPanicDoesNotPoisonOtherServices(t *testing.T) {
	w := newWorld(t)
	if err := w.d.Register("/bad", Binding{Owner: "b",
		Handler: func(ctx *subject.Context, arg any) (any, error) { panic(42) }}); err != nil {
		t.Fatal(err)
	}
	if err := w.d.Register("/good", Binding{Owner: "g", Handler: tag("good")}); err != nil {
		t.Fatal(err)
	}
	ctx := w.ctx(t, "u", "others")
	if _, err := w.d.Invoke("/bad", ctx, nil); !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("bad: %v", err)
	}
	if got, err := w.d.Invoke("/good", ctx, nil); err != nil || got != "good@others" {
		t.Errorf("good after bad: %v, %v", got, err)
	}
	// Repeated panics stay contained.
	for i := 0; i < 10; i++ {
		if _, err := w.d.Invoke("/bad", ctx, nil); !errors.Is(err, ErrHandlerPanic) {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}
