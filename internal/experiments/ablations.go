package experiments

import (
	"strconv"

	"secext/internal/acl"
	"secext/internal/baseline/ntacl"
	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/names"
	"secext/internal/subject"
)

// A1 ablates the ACL conflict-resolution discipline: deny-overrides
// (internal/acl — must scan every entry) versus NT-style ordered
// first-match (internal/baseline/ntacl — can stop at the first decisive
// entry). The cost of the conservative choice is the gap between the
// two columns as deny entries accumulate.
func A1() Result {
	res := Result{ID: "A1", Title: "Ablation: deny-overrides vs ordered first-match (64-entry ACL)"}
	t := &table{header: []string{"deny entries", "deny-overrides (secext)", "first-match (nt)"}}
	const size = 64
	for _, denies := range []int{0, 16, 32, 48} {
		// secext ACL: subject's allow entry sits at the end; deny
		// entries target other principals.
		a := acl.New()
		for i := 0; i < denies; i++ {
			a.Add(acl.Deny("blocked"+strconv.Itoa(i), acl.Read))
		}
		for i := denies; i < size-1; i++ {
			a.Add(acl.Allow("p"+strconv.Itoa(i), acl.Read))
		}
		a.Add(acl.Allow("target", acl.Read))
		sub := aclSubject("target")
		mSec := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				a.Check(sub, acl.Read)
			}
		})

		// NT ACL with the same shape; first-match can stop as soon as
		// the target's allow is hit, which ordered-ACL admins exploit
		// by putting hot entries first — here it is last, the worst
		// case, to keep the comparison honest.
		nt := ntacl.New()
		var entries []ntacl.Entry
		for i := 0; i < denies; i++ {
			entries = append(entries, ntacl.Entry{
				Subject: "blocked" + strconv.Itoa(i), Deny: true, Rights: ntacl.Read,
			})
		}
		for i := denies; i < size-1; i++ {
			entries = append(entries, ntacl.Entry{
				Subject: "p" + strconv.Itoa(i), Rights: ntacl.Read,
			})
		}
		entries = append(entries, ntacl.Entry{Subject: "target", Rights: ntacl.Read})
		nt.SetACL("/o", entries...)
		mNT := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				nt.Check("target", "/o", ntacl.Read)
			}
		})
		t.add(strconv.Itoa(denies), ns(mSec), ns(mNT))
	}
	res.setTable(t)
	return res
}

// A2 ablates the audit ring capacity: the ring is overwritten in place,
// so capacity should not affect the mediated-call cost — retaining more
// history is free at decision time.
func A2() Result {
	res := Result{ID: "A2", Title: "Ablation: audit ring capacity vs mediated call cost"}
	t := &table{header: []string{"ring capacity", "mediated call"}}
	for _, capacity := range []int{16, 1024, 65536} {
		sys, err := core.NewSystem(core.Options{
			Levels: []string{"lo"}, AuditCapacity: capacity,
		})
		if err != nil {
			res.Err = err
			return res
		}
		noop := func(ctx *subject.Context, arg any) (any, error) { return nil, nil }
		if err := sys.RegisterService(core.ServiceSpec{
			Path: "/null", ACL: acl.New(acl.AllowEveryone(acl.Execute)),
			Base: dispatch.Binding{Owner: "b", Handler: noop},
		}); err != nil {
			res.Err = err
			return res
		}
		if _, err := sys.AddPrincipal("p", "lo"); err != nil {
			res.Err = err
			return res
		}
		ctx, err := sys.NewContext("p")
		if err != nil {
			res.Err = err
			return res
		}
		m := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := sys.Call(ctx, "/null", nil); err != nil {
					panic(err)
				}
			}
		})
		t.add(strconv.Itoa(capacity), ns(m))
	}
	res.setTable(t)
	return res
}

// A3 ablates the multilevel-container waiver: binding into a multilevel
// directory takes a slightly different check path (DAC write + MAC
// read of the container) than binding into a regular directory (full
// DAC+MAC write); the ablation confirms the waiver costs nothing.
func A3() Result {
	res := Result{ID: "A3", Title: "Ablation: bind into regular vs multilevel container"}
	sys, err := core.NewSystem(core.Options{Levels: []string{"lo", "hi"}, DisableAudit: true})
	if err != nil {
		res.Err = err
		return res
	}
	open := acl.New(acl.AllowEveryone(acl.List | acl.Write | acl.Delete))
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: "/plain", Kind: names.KindDirectory, ACL: open,
	}); err != nil {
		res.Err = err
		return res
	}
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: "/ml", Kind: names.KindDirectory, ACL: open, Multilevel: true,
	}); err != nil {
		res.Err = err
		return res
	}
	if _, err := sys.AddPrincipal("p", "lo"); err != nil {
		res.Err = err
		return res
	}
	ctx, err := sys.NewContext("p")
	if err != nil {
		res.Err = err
		return res
	}
	bot, _ := sys.Lattice().Bottom()
	fileACL := acl.New(acl.AllowEveryone(acl.Delete))
	bindCycle := func(dir string) func(n int) {
		return func(n int) {
			for i := 0; i < n; i++ {
				if _, err := sys.Bind(ctx, dir, names.BindSpec{
					Name: "f", Kind: names.KindFile, ACL: fileACL, Class: bot,
				}); err != nil {
					panic(err)
				}
				if err := sys.Unbind(ctx, dir+"/f"); err != nil {
					panic(err)
				}
			}
		}
	}
	t := &table{header: []string{"container", "bind+unbind"}}
	t.add("regular directory", ns(measure(defaultMinDur, bindCycle("/plain"))))
	t.add("multilevel directory", ns(measure(defaultMinDur, bindCycle("/ml"))))
	res.setTable(t)
	return res
}
