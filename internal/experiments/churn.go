package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"secext"
)

// churnWorld builds the E16 fixture: 64 member principals plus a
// reader (alice) whose access to /fs/churn flows through the "churn"
// group, so every membership mutation is decision-relevant policy state
// that must reach the epoch. Audit is off so rows price the write path
// itself.
func churnWorld() (*secext.World, *secext.Context, []string, error) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:       []string{"others", "organization", "local"},
		Categories:   []string{"dept-1", "dept-2"},
		DisableAudit: true,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	reg := w.Sys.Registry()
	if err := reg.AddGroup("churn"); err != nil {
		return nil, nil, nil, err
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		return nil, nil, nil, err
	}
	members := make([]string, 64)
	for i := range members {
		name := fmt.Sprintf("p%d", i)
		if _, err := w.Sys.AddPrincipal(name, "organization:{dept-1}"); err != nil {
			return nil, nil, nil, err
		}
		members[i] = name
	}
	if err := reg.AddMember("churn", "alice"); err != nil {
		return nil, nil, nil, err
	}
	ctx, err := w.Sys.NewContext("alice")
	if err != nil {
		return nil, nil, nil, err
	}
	grant := secext.NewACL(secext.AllowGroup("churn", secext.Read))
	if err := w.FS.Create(ctx, "/fs/churn", grant, ctx.Class()); err != nil {
		return nil, nil, nil, err
	}
	return w, ctx, members, nil
}

// E16 prices write-path scaling under sustained policy churn: the
// write-combining epoch publisher plus incremental freezing against the
// unbatched per-mutation publish discipline and the pre-epoch locked
// map.
//
// Single-mutation rows isolate the incremental freeze: the same
// add+remove pair with the delta path disabled (every freeze rebuilds
// the transitive closure from scratch) and enabled (only the touched
// principal's bitset row is recomputed).
//
// Bulk rows are the batching headline: installing and revoking 64
// memberships as 64 individual mutations (64 freezes, 64 epoch
// publications each way) versus one AddMembers/RemoveMembers call (one
// freeze, one publication). The ratio is the write-tax reduction at
// batch size 64.
//
// The sustained-churn row runs mutators and readers concurrently:
// mutations flow while readers hammer the warm cached check, and the
// flush-latency and batch-size distributions come from the publisher's
// own histograms.
//
// Single-vCPU honesty: on one core the concurrent row's mutators and
// readers time-slice instead of overlapping, so opportunistic write
// combining (which needs a waiter to flush while another mutator
// stages) rarely exceeds batch size 1-2, and reader latency includes
// scheduler noise. The deterministic bulk rows — where batch size 64 is
// structural, not scheduling luck — carry the scaling claim; the
// concurrent row is a liveness and ordering smoke under churn, not a
// parallel-speedup measurement.
func E16() Result {
	res := Result{ID: "E16", Title: "Write-path scaling: batched epoch publication and incremental freeze under churn"}
	t := &table{header: []string{"operation", "impl", "ns/op", "vs batched"}}
	ratio := func(slow, fast float64) string {
		if fast == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", slow/fast)
	}

	w, ctx, members, err := churnWorld()
	if err != nil {
		res.Err = err
		return res
	}
	reg := w.Sys.Registry()
	ns16 := w.Sys.Names()

	// Single membership mutation: full rebuild vs incremental freeze.
	reg.SetIncrementalFreeze(false)
	fullMut := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if err := reg.AddMember("churn", "p0"); err != nil {
				panic(err)
			}
			if err := reg.RemoveMember("churn", "p0"); err != nil {
				panic(err)
			}
		}
	})
	reg.SetIncrementalFreeze(true)
	incMut := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if err := reg.AddMember("churn", "p0"); err != nil {
				panic(err)
			}
			if err := reg.RemoveMember("churn", "p0"); err != nil {
				panic(err)
			}
		}
	})
	t.add("single add+remove", "full-rebuild freeze", ns(fullMut), ratio(fullMut, incMut))
	t.add("single add+remove", "incremental freeze", ns(incMut), "1.0x")

	// Bulk churn: 64 adds + 64 removes, per-mutation publishes vs one
	// batched publication each way. This is the batching headline at
	// batch size 64.
	unbatched := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			for _, m := range members {
				if err := reg.AddMember("churn", m); err != nil {
					panic(err)
				}
			}
			for _, m := range members {
				if err := reg.RemoveMember("churn", m); err != nil {
					panic(err)
				}
			}
		}
	})
	batched := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if _, err := reg.AddMembers("churn", members...); err != nil {
				panic(err)
			}
			if _, err := reg.RemoveMembers("churn", members...); err != nil {
				panic(err)
			}
		}
	})
	t.add("64-member add+remove", "unbatched (128 publishes)", ns(unbatched), ratio(unbatched, batched))
	t.add("64-member add+remove", "batched (2 publishes)", ns(batched), "1.0x")

	// Pre-epoch baseline: the same 128 edits against a locked map with
	// no freeze and no publication — the floor batching is bought
	// against.
	walk := &lockedMembership{up: map[string][]string{}}
	locked := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			for _, m := range members {
				walk.add(m, "churn")
			}
			for _, m := range members {
				walk.remove(m, "churn")
			}
		}
	})
	t.add("64-member add+remove", "locked map (no publish)", ns(locked), ratio(locked, batched))

	// Sustained churn: mutators add/remove while readers hammer the warm
	// cached check. Reported as per-mutation latency; the batch-size and
	// flush-latency rows below come from the publisher's histograms over
	// this whole experiment.
	before := ns16.BatchStats()
	var mutations atomic.Uint64
	var readerNS atomic.Uint64
	var readerOps atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if _, err := w.Sys.CheckData(ctx, "/fs/churn", secext.Read); err != nil {
					panic(err)
				}
				readerNS.Add(uint64(time.Since(start).Nanoseconds()))
				readerOps.Add(1)
			}
		}()
	}
	churnDur := 150 * time.Millisecond
	churnStart := time.Now()
	var mwg sync.WaitGroup
	for m := 0; m < 2; m++ {
		mwg.Add(1)
		go func(m int) {
			defer mwg.Done()
			member := members[m]
			for time.Since(churnStart) < churnDur {
				if err := reg.AddMember("churn", member); err != nil {
					panic(err)
				}
				if err := reg.RemoveMember("churn", member); err != nil {
					panic(err)
				}
				mutations.Add(2)
			}
		}(m)
	}
	mwg.Wait()
	elapsed := time.Since(churnStart)
	close(stop)
	wg.Wait()

	mutPerSec := float64(mutations.Load()) / elapsed.Seconds()
	t.add("sustained churn", "mutations under readers",
		ns(float64(elapsed.Nanoseconds())/float64(mutations.Load())),
		fmt.Sprintf("%.0f muts/s", mutPerSec))
	if ops := readerOps.Load(); ops > 0 {
		t.add("reader under churn", "warm cached check",
			ns(float64(readerNS.Load())/float64(ops)), "-")
	}

	st := ns16.BatchStats()
	flushes := st.FlushLatency.Count - before.FlushLatency.Count
	if flushes > 0 {
		t.add("publish latency", "p50/p95/p99",
			fmt.Sprintf("%s / %s / %s", ns(st.FlushLatency.P50), ns(st.FlushLatency.P95), ns(st.FlushLatency.P99)),
			fmt.Sprintf("%d flushes", st.FlushLatency.Count))
	}
	avgBatch := float64(st.Mutations) / float64(st.Sizes.Count)
	t.add("batch size", "avg / max",
		fmt.Sprintf("%.2f / %d", avgBatch, st.MaxBatch),
		fmt.Sprintf("%d staged", st.Mutations))

	// Quiescent warm check: churn over, the read path must sit back in
	// the E11/E13/E15 warm band.
	warmFn := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := w.Sys.CheckData(ctx, "/fs/churn", secext.Read); err != nil {
				panic(err)
			}
		}
	}
	warmFn(1)
	warm := measure(defaultMinDur, warmFn)
	t.add("quiescent warm check", "epoch version key", ns(warm), "-")

	// Sanity: the world ends consistent and alice still has her access.
	if _, err := w.Sys.CheckData(ctx, "/fs/churn", secext.Read); err != nil {
		res.Err = fmt.Errorf("E16: post-churn check failed: %w", err)
		return res
	}
	res.setTable(t)
	return res
}
