package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"secext"
)

// measureParallel times fn with the iteration budget split across procs
// goroutines, mirroring the harness in bench_test.go: wall-clock over
// total operations, so the figure is throughput-style latency. Unlike
// testing.B's RunParallel it pins the exact goroutine count, which is
// what a contention experiment needs.
func measureParallel(minDur time.Duration, procs int, fn func(n int)) float64 {
	return measure(minDur, func(n int) {
		var wg sync.WaitGroup
		per, extra := n/procs, n%procs
		for g := 0; g < procs; g++ {
			k := per
			if g < extra {
				k++
			}
			if k == 0 {
				continue
			}
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				fn(k)
			}(k)
		}
		wg.Wait()
	})
}

// checkWorld is benchWorld with the decision cache optionally disabled,
// for cached-vs-uncached comparisons.
func checkWorld(disableCache bool) (*secext.World, *secext.Context, error) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:               []string{"others", "organization", "local"},
		Categories:           []string{"dept-1", "dept-2"},
		DisableAudit:         true,
		DisableDecisionCache: disableCache,
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		return nil, nil, err
	}
	ctx, err := w.Sys.NewContext("alice")
	if err != nil {
		return nil, nil, err
	}
	open := secext.NewACL(secext.AllowEveryone(secext.Read | secext.Write | secext.WriteAppend))
	if err := w.FS.Create(ctx, "/fs/f", open, ctx.Class()); err != nil {
		return nil, nil, err
	}
	return w, ctx, nil
}

// E11 characterizes the decision-cache fast path under contention. Four
// workloads run the same mediated data check at 1, 4, and 16 goroutines:
//
//   - uncached: the cache is disabled; every check resolves the path and
//     evaluates DAC+MAC under the name-server lock (the pre-cache cost).
//   - cold: every check is preceded by a generation bump, so the cache
//     never hits — the fast path's worst case, measuring lookup+store
//     overhead on top of full mediation.
//   - warm: the steady state; every check is a lock-free, allocation-free
//     cache hit.
//   - storm: a background goroutine bumps the generation continuously
//     while checkers run — an adversarial revocation storm. Checks fall
//     back to full mediation whenever their entry's generation is stale,
//     so correctness costs throughput, never staleness.
//
// The speedup column is relative to the uncached workload at the same
// goroutine count; warm speedup should grow with contention because hits
// take no locks while the uncached path serializes on the name server.
func E11() Result {
	res := Result{ID: "E11", Title: "Decision-cache contention: uncached/cold/warm/storm mediated checks"}
	t := &table{header: []string{"workload", "goroutines", "ns/op", "speedup vs uncached"}}

	check := func(w *secext.World, ctx *secext.Context) func(n int) {
		return func(n int) {
			for i := 0; i < n; i++ {
				if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
					panic(err)
				}
			}
		}
	}
	speedup := func(base, v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", base/v)
	}

	for _, procs := range []int{1, 4, 16} {
		g := strconv.Itoa(procs)

		uw, uctx, err := checkWorld(true)
		if err != nil {
			res.Err = err
			return res
		}
		uncached := measureParallel(defaultMinDur, procs, check(uw, uctx))
		t.add("uncached", g, ns(uncached), "1.0x")

		cw, cctx, err := checkWorld(false)
		if err != nil {
			res.Err = err
			return res
		}
		cache := cw.Sys.DecisionCache()
		if cache == nil {
			res.Err = fmt.Errorf("E11: decision cache unexpectedly disabled")
			return res
		}
		doCheck := check(cw, cctx)

		cold := measureParallel(defaultMinDur, procs, func(n int) {
			for i := 0; i < n; i++ {
				cw.Sys.Registry().Touch()
				doCheck(1)
			}
		})
		t.add("cold (invalidate each)", g, ns(cold), speedup(uncached, cold))

		doCheck(1) // publish the verdict once, then measure hits
		warm := measureParallel(defaultMinDur, procs, doCheck)
		t.add("warm (cache hit)", g, ns(warm), speedup(uncached, warm))

		stop := make(chan struct{})
		var storming sync.WaitGroup
		storming.Add(1)
		go func() {
			defer storming.Done()
			for {
				select {
				case <-stop:
					return
				default:
					cw.Sys.Registry().Touch()
					runtime.Gosched()
				}
			}
		}()
		storm := measureParallel(defaultMinDur, procs, doCheck)
		close(stop)
		storming.Wait()
		t.add("storm (concurrent invalidation)", g, ns(storm), speedup(uncached, storm))
	}

	res.setTable(t)
	return res
}
