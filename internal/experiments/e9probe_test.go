package experiments

// Probes that back the E9 expressiveness matrix with live model
// instances: for every probeable cell, construct the baseline's best
// attempt at the requirement and verify the cell's yes/no against
// observed behavior. Cells resting on structure rather than probing
// (e.g. "the sandbox has exactly two trust states by type") are
// asserted on the decision functions' shapes.

import (
	"testing"

	"secext/internal/baseline"
	"secext/internal/baseline/domains"
	"secext/internal/baseline/ntacl"
	"secext/internal/baseline/sandbox"
	"secext/internal/baseline/unixmode"
)

// row returns the matrix row for a requirement by name.
func row(t *testing.T, name string) [5]bool {
	t.Helper()
	for _, s := range e9Scenarios {
		if s.name == name {
			return s.cells
		}
	}
	t.Fatalf("no scenario %q", name)
	return [5]bool{}
}

const (
	colSecext = iota
	colSandbox
	colDomains
	colUnix
	colNT
)

func TestE9ProbeCallWithoutExtend(t *testing.T) {
	cells := row(t, "grant call without extend on one service")

	// unix: 0o555 grants execute without write(≈extend).
	ux := unixmode.New()
	ux.SetObject("/svc/s", "root", "wheel", 0o555)
	got := ux.CheckCall("u", "/svc/s") && !ux.CheckExtend("u", "/svc/s")
	if got != cells[colUnix] {
		t.Errorf("unix probe = %v, cell = %v", got, cells[colUnix])
	}

	// ntacl: Execute right without Write.
	nt := ntacl.New()
	nt.SetACL("/svc/s", ntacl.Entry{Subject: "u", Rights: ntacl.Execute})
	got = nt.CheckCall("u", "/svc/s") && !nt.CheckExtend("u", "/svc/s")
	if got != cells[colNT] {
		t.Errorf("ntacl probe = %v, cell = %v", got, cells[colNT])
	}

	// sandbox and domains compute call and extend from one predicate:
	// no configuration can split them. Probe equality across settings.
	sb := sandbox.New([]string{"t"}, []string{"/x"})
	for _, sub := range []string{"t", "u"} {
		for _, svc := range []string{"/x/s", "/y/s"} {
			if sb.CheckCall(sub, svc) != sb.CheckExtend(sub, svc) {
				t.Fatalf("sandbox split call/extend at %s/%s", sub, svc)
			}
		}
	}
	if cells[colSandbox] {
		t.Error("sandbox cell must be no")
	}
	dm := domains.New()
	dm.DefineDomain("d", "/x")
	_ = dm.Link("u", "d")
	for _, svc := range []string{"/x/s", "/y/s"} {
		if dm.CheckCall("u", svc) != dm.CheckExtend("u", svc) {
			t.Fatalf("domains split call/extend at %s", svc)
		}
	}
	if cells[colDomains] {
		t.Error("domains cell must be no")
	}
}

func TestE9ProbeDenyGroupMember(t *testing.T) {
	cells := row(t, "deny one member of an allowed group")

	// ntacl: deny-ACE first, group allow after — bob in, mallory out.
	nt := ntacl.New()
	nt.AddToGroup("bob", "staff")
	nt.AddToGroup("mallory", "staff")
	nt.SetACL("/o",
		ntacl.Entry{Subject: "mallory", Deny: true, Rights: ntacl.Read},
		ntacl.Entry{Subject: "staff", Group: true, Rights: ntacl.Read},
	)
	got := nt.CheckData("bob", "/o", baseline.OpRead) && !nt.CheckData("mallory", "/o", baseline.OpRead)
	if got != cells[colNT] {
		t.Errorf("ntacl probe = %v, cell = %v", got, cells[colNT])
	}

	// unix: both are group members; the bits cannot tell them apart.
	// (The owner-slot trick — making mallory the owner with zero owner
	// bits — is excluded: in real Unix the owner may chmod, so it is
	// not a deny.) Probe: any mode gives bob and mallory identical
	// access.
	ux := unixmode.New()
	ux.AddToGroup("bob", "staff")
	ux.AddToGroup("mallory", "staff")
	for _, mode := range []unixmode.Perm{0o640, 0o644, 0o600, 0o660} {
		ux.SetObject("/o", "root", "staff", mode)
		if ux.CheckData("bob", "/o", baseline.OpRead) != ux.CheckData("mallory", "/o", baseline.OpRead) {
			t.Fatalf("unix distinguished group members at mode %o", mode)
		}
	}
	if cells[colUnix] {
		t.Error("unix cell must be no")
	}
}

func TestE9ProbePeerIsolation(t *testing.T) {
	cells := row(t, "isolate two untrusted peers' objects (ThreadMurder)")

	// unix: per-object ownership with owner-only write isolates peers.
	ux := unixmode.New()
	ux.SetObject("/threads/1", "victim", "users", 0o200)
	got := !ux.CheckData("murder", "/threads/1", baseline.OpWrite) &&
		ux.CheckData("victim", "/threads/1", baseline.OpWrite)
	if got != cells[colUnix] {
		t.Errorf("unix probe = %v, cell = %v", got, cells[colUnix])
	}

	// sandbox: two untrusted subjects get identical decisions on any
	// object — isolation between them is inexpressible.
	sb := sandbox.New(nil, []string{"/fs"})
	for _, obj := range []string{"/threads/1", "/fs/x", "/anything"} {
		if sb.CheckData("murder", obj, baseline.OpWrite) != sb.CheckData("victim", obj, baseline.OpWrite) {
			t.Fatalf("sandbox distinguished untrusted peers on %s", obj)
		}
	}
	if cells[colSandbox] {
		t.Error("sandbox cell must be no")
	}
}

func TestE9ProbeAppendWithoutWrite(t *testing.T) {
	cells := row(t, "append without read or overwrite")
	// unix and nt map append and write to the same right; probe the
	// conflation across configurations.
	ux := unixmode.New()
	for _, mode := range []unixmode.Perm{0o200, 0o600, 0o666, 0o444} {
		ux.SetObject("/j", "o", "g", mode)
		if ux.CheckData("u", "/j", baseline.OpAppend) != ux.CheckData("u", "/j", baseline.OpWrite) {
			t.Fatalf("unix split append/write at %o", mode)
		}
	}
	if cells[colUnix] {
		t.Error("unix cell must be no")
	}
	nt := ntacl.New()
	nt.SetACL("/j", ntacl.Entry{Subject: "u", Rights: ntacl.Write})
	if nt.CheckData("u", "/j", baseline.OpAppend) != nt.CheckData("u", "/j", baseline.OpWrite) {
		t.Fatal("ntacl split append/write")
	}
	if cells[colNT] {
		t.Error("nt cell must be no")
	}
}

func TestE9ProbeDefaultAllowWithDeny(t *testing.T) {
	cells := row(t, "default-allow for unknown subjects, one deny")

	// ntacl: deny mallory; allow * — an unknown subject passes.
	nt := ntacl.New()
	nt.SetACL("/o",
		ntacl.Entry{Subject: "mallory", Deny: true, Rights: ntacl.Read},
		ntacl.Entry{Subject: "*", Rights: ntacl.Read},
	)
	got := nt.CheckData("never-seen-before", "/o", baseline.OpRead) &&
		!nt.CheckData("mallory", "/o", baseline.OpRead)
	if got != cells[colNT] {
		t.Errorf("ntacl probe = %v, cell = %v", got, cells[colNT])
	}

	// sandbox: unknown subjects are untrusted by default, so with the
	// object protected mallory is denied — but so is everyone unknown.
	sb := sandbox.New(nil, []string{"/o"})
	if sb.CheckData("never-seen-before", "/o", baseline.OpRead) {
		t.Fatal("sandbox default-allowed a sensitive object")
	}
	if cells[colSandbox] {
		t.Error("sandbox cell must be no")
	}

	// domains: unknown subjects are unlinked, hence denied.
	dm := domains.New()
	dm.DefineDomain("d", "/o")
	if dm.CheckData("never-seen-before", "/o", baseline.OpRead) {
		t.Fatal("domains default-allowed an unlinked subject")
	}
	if cells[colDomains] {
		t.Error("domains cell must be no")
	}
}

func TestE9ProbeAdministrateSeparateFromWrite(t *testing.T) {
	cells := row(t, "administrate right separate from write")
	// ntacl: ChangePerms without Write.
	nt := ntacl.New()
	nt.SetACL("/o", ntacl.Entry{Subject: "admin", Rights: ntacl.ChangePerms})
	got := nt.Check("admin", "/o", ntacl.ChangePerms) && !nt.Check("admin", "/o", ntacl.Write)
	if got != cells[colNT] {
		t.Errorf("ntacl probe = %v, cell = %v", got, cells[colNT])
	}
	// unix has no grantable chmod bit at all (ownership implies it);
	// the model exposes no operation to probe, which is the point.
	if cells[colUnix] {
		t.Error("unix cell must be no")
	}
}
