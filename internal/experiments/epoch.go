package experiments

import (
	"fmt"
	"sync"

	"secext"
)

// epochWorld builds a world where alice's only right to /fs/f flows
// through a nested group chain (alice ∈ g0 ∈ g1 ∈ g2 ∈ g3, ACL grants
// g3): the decision path must answer a transitive membership question,
// which is exactly the state the epoch refactor froze. Audit is off so
// the rows price the decision itself.
func epochWorld(disableCache bool) (*secext.World, *secext.Context, error) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:               []string{"others", "organization", "local"},
		Categories:           []string{"dept-1", "dept-2"},
		DisableAudit:         true,
		DisableDecisionCache: disableCache,
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		return nil, nil, err
	}
	reg := w.Sys.Registry()
	for i := 0; i < 4; i++ {
		if err := reg.AddGroup(fmt.Sprintf("g%d", i)); err != nil {
			return nil, nil, err
		}
	}
	if err := reg.AddMember("g0", "alice"); err != nil {
		return nil, nil, err
	}
	for i := 1; i < 4; i++ {
		if err := reg.AddMember(fmt.Sprintf("g%d", i), fmt.Sprintf("g%d", i-1)); err != nil {
			return nil, nil, err
		}
	}
	ctx, err := w.Sys.NewContext("alice")
	if err != nil {
		return nil, nil, err
	}
	grant := secext.NewACL(secext.AllowGroup("g3", secext.Read|secext.Write|secext.WriteAppend))
	if err := w.FS.Create(ctx, "/fs/f", grant, ctx.Class()); err != nil {
		return nil, nil, err
	}
	return w, ctx, nil
}

// lockedMembership is the pre-epoch registry architecture as a shim: a
// mutable up-edge graph guarded by an RWMutex, answering membership by
// walking the graph under the read lock on every query. The epoch
// refactor replaced this with a transitive closure precomputed at
// freeze time and read with zero locks.
type lockedMembership struct {
	mu sync.RWMutex
	// up maps member -> groups it belongs to directly.
	up map[string][]string
}

func (m *lockedMembership) add(member, group string) {
	m.mu.Lock()
	m.up[member] = append(m.up[member], group)
	m.mu.Unlock()
}

func (m *lockedMembership) remove(member, group string) {
	m.mu.Lock()
	out := m.up[member][:0]
	for _, g := range m.up[member] {
		if g != group {
			out = append(out, g)
		}
	}
	m.up[member] = out
	m.mu.Unlock()
}

func (m *lockedMembership) IsMember(who, group string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	seen := map[string]bool{}
	stack := append([]string(nil), m.up[who]...)
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if g == group {
			return true
		}
		if seen[g] {
			continue
		}
		seen[g] = true
		stack = append(stack, m.up[g]...)
	}
	return false
}

// E15 prices the policy-epoch refactor on both sides of the trade.
//
// Reads: an uncached mediated check whose DAC verdict needs a
// transitive group-membership answer, on the epoch path (one atomic
// load pins tree + lattice + frozen membership closure; zero locks)
// versus an RWMutex shim reproducing the pre-epoch read-side
// synchronization; plus the bare membership query, frozen-closure
// versus locked-graph-walk.
//
// Writes: the honest cost shift. A membership mutation used to be a map
// edit under a lock; it now rebuilds the transitive closure and
// publishes a fresh epoch (killing every cached verdict), so the
// mutation row is expected to be markedly SLOWER than its shim — that
// is the price paid for the lock-free, staleness-proof read side, and
// the design bets mutations are rare relative to decisions.
//
// The warm row records the cached fast path in the same world: the
// refactor must leave cache hits inside the E11/E13 warm band (the
// cache key changed from (gen, stack-gen, ...) to the epoch version
// alone, which if anything shortens the probe).
//
// On a single-vCPU host the lock-free and locked READ rows are close:
// an uncontended RWMutex is cheap, and these figures are recorded
// without cross-core contention. The epoch's read-side win under
// parallel load is E14's subject; E15's single-goroutine rows isolate
// per-operation cost, not scaling.
func E15() Result {
	res := Result{ID: "E15", Title: "Policy epochs: frozen vs locked decisions, and the mutation-publish price"}
	t := &table{header: []string{"operation", "impl", "ns/op", "locked/frozen"}}
	ratio := func(locked, frozen float64) string {
		if frozen == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", locked/frozen)
	}

	// Uncached mediated check through the nested-group ACL.
	uw, uctx, err := epochWorld(true)
	if err != nil {
		res.Err = err
		return res
	}
	check := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := uw.Sys.CheckData(uctx, "/fs/f", secext.Read); err != nil {
				panic(err)
			}
		}
	}
	frozenCheck := measure(defaultMinDur, check)
	var mu sync.RWMutex
	lockedCheck := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			mu.RLock()
			_, err := uw.Sys.CheckData(uctx, "/fs/f", secext.Read)
			mu.RUnlock()
			if err != nil {
				panic(err)
			}
		}
	})
	t.add("uncached group check", "epoch (lock-free)", ns(frozenCheck), "1.0x")
	t.add("uncached group check", "rwmutex shim", ns(lockedCheck), ratio(lockedCheck, frozenCheck))

	// Bare transitive membership query: frozen closure vs locked walk.
	froz := uw.Sys.Names().Current().Registry()
	if froz == nil || !froz.IsMember("alice", "g3") {
		res.Err = fmt.Errorf("E15: epoch registry missing transitive membership")
		return res
	}
	frozenMember := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if !froz.IsMember("alice", "g3") {
				panic("membership lost")
			}
		}
	})
	walk := &lockedMembership{up: map[string][]string{
		"alice": {"g0"}, "g0": {"g1"}, "g1": {"g2"}, "g2": {"g3"},
	}}
	lockedMember := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if !walk.IsMember("alice", "g3") {
				panic("membership lost")
			}
		}
	})
	t.add("membership query", "frozen closure", ns(frozenMember), "1.0x")
	t.add("membership query", "locked graph walk", ns(lockedMember), ratio(lockedMember, frozenMember))

	// Mutation-publish cost: one add+remove pair per op. The epoch path
	// rebuilds the closure and publishes twice; the shim edits a map
	// under a lock twice. This is the refactor's write-side price.
	reg := uw.Sys.Registry()
	frozenMut := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if err := reg.AddMember("g3", "alice"); err != nil {
				panic(err)
			}
			if err := reg.RemoveMember("g3", "alice"); err != nil {
				panic(err)
			}
		}
	})
	lockedMut := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			walk.add("alice", "g3")
			walk.remove("alice", "g3")
		}
	})
	t.add("membership add+remove", "freeze + epoch publish", ns(frozenMut), "1.0x")
	t.add("membership add+remove", "locked map edit (no publish)", ns(lockedMut), ratio(lockedMut, frozenMut))

	// Warm cached path in the same world shape: must sit in the E11/E13
	// warm band.
	cw, cctx, err := epochWorld(false)
	if err != nil {
		res.Err = err
		return res
	}
	warmCheck := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := cw.Sys.CheckData(cctx, "/fs/f", secext.Read); err != nil {
				panic(err)
			}
		}
	}
	warmCheck(1) // publish the verdict once
	warm := measure(defaultMinDur, warmCheck)
	t.add("warm cached check", "epoch version key", ns(warm), ratio(frozenCheck, warm))

	res.setTable(t)
	return res
}
