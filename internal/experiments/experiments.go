// Package experiments implements the evaluation harness of DESIGN.md:
// the paper ("Security for Extensible Systems", HotOS 1997) is a
// position paper with no tables or figures, so S1-S3 reproduce its
// qualitative walk-throughs as executable artifacts with asserted
// outcomes, and E1-E10 provide the quantitative characterization the
// paper calls for but does not include. cmd/benchtab prints every
// table; bench_test.go exposes the timed ones as testing.B benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Result is one experiment's rendered output.
type Result struct {
	ID    string // "S1", "E7", ...
	Title string
	Table string // formatted text table
	Err   error  // non-nil if the scenario's asserted outcome failed

	// Header and Rows are the structured form of Table, for machine
	// consumers (cmd/benchtab -json writes them to BENCH_<ID>.json).
	Header []string
	Rows   [][]string
}

// setTable renders t into the result, keeping the structured rows
// alongside the formatted text.
func (r *Result) setTable(t *table) {
	r.Table = t.String()
	r.Header = t.header
	r.Rows = t.rows
}

// Runner names one experiment without running it; cmd/benchtab iterates
// Runners so a selection executes only the selected experiments.
type Runner struct {
	ID  string
	Run func() Result
}

// Runners lists every experiment in canonical order.
func Runners() []Runner {
	return []Runner{
		{"S1", S1}, {"S2", S2}, {"S3", S3}, {"S4", S4},
		{"E1", E1}, {"E2", E2}, {"E3", E3}, {"E4", E4}, {"E5", E5},
		{"E6", E6}, {"E7", E7}, {"E8", E8}, {"E9", E9}, {"E10", E10},
		{"E11", E11}, {"E12", E12}, {"E13", E13}, {"E14", E14}, {"E15", E15},
		{"E16", E16}, {"E17", E17}, {"E18", E18}, {"E19", E19}, {"E20", E20},
		{"A1", A1}, {"A2", A2}, {"A3", A3},
	}
}

// All runs every experiment in order. Timing experiments take a few
// hundred milliseconds each.
func All() []Result {
	runners := Runners()
	out := make([]Result, 0, len(runners))
	for _, r := range runners {
		out = append(out, r.Run())
	}
	return out
}

// measure times fn, auto-scaling iterations until the run lasts at
// least minDur, and returns ns/op.
func measure(minDur time.Duration, fn func(n int)) float64 {
	n := 1
	for {
		start := time.Now()
		fn(n)
		elapsed := time.Since(start)
		if elapsed >= minDur || n >= 1<<24 {
			return float64(elapsed.Nanoseconds()) / float64(n)
		}
		// Grow toward the target with headroom.
		next := n * 4
		if elapsed > 0 {
			est := int(float64(n) * float64(minDur) / float64(elapsed) * 1.2)
			if est > n {
				next = est
			}
		}
		if next > 1<<24 {
			next = 1 << 24
		}
		n = next
	}
}

const defaultMinDur = 20 * time.Millisecond

// table is a minimal fixed-width text table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func ns(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2f ms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2f µs", v/1e3)
	default:
		return fmt.Sprintf("%.1f ns", v)
	}
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func verdict(allowed bool) string {
	if allowed {
		return "ALLOW"
	}
	return "deny"
}
