package experiments

import (
	"strings"
	"testing"
	"time"

	"secext"
	"secext/internal/telemetry"
)

func TestS1Scenario(t *testing.T) {
	r := S1()
	if r.Err != nil {
		t.Fatalf("S1: %v\n%s", r.Err, r.Table)
	}
	if !strings.Contains(r.Table, "outsider") || !strings.Contains(r.Table, "ALLOW") {
		t.Errorf("S1 table malformed:\n%s", r.Table)
	}
	// Every row must match the paper.
	if strings.Contains(r.Table, "  no") {
		t.Errorf("S1 has deviating rows:\n%s", r.Table)
	}
}

func TestS2Scenario(t *testing.T) {
	r := S2()
	if r.Err != nil {
		t.Fatalf("S2: %v\n%s", r.Err, r.Table)
	}
	if !strings.Contains(r.Table, "java-sandbox") || !strings.Contains(r.Table, "secext") {
		t.Errorf("S2 table malformed:\n%s", r.Table)
	}
}

func TestS3Scenario(t *testing.T) {
	r := S3()
	if r.Err != nil {
		t.Fatalf("S3: %v\n%s", r.Err, r.Table)
	}
}

func TestS4Scenario(t *testing.T) {
	r := S4()
	if r.Err != nil {
		t.Fatalf("S4: %v\n%s", r.Err, r.Table)
	}
	if strings.Contains(r.Table, "  no") {
		t.Errorf("S4 has deviating rows:\n%s", r.Table)
	}
}

func TestE9Expressiveness(t *testing.T) {
	r := E9()
	if r.Err != nil {
		t.Fatalf("E9: %v\n%s", r.Err, r.Table)
	}
	counts := E9Counts()
	if counts["secext"] != 12 {
		t.Errorf("secext expresses %d/12", counts["secext"])
	}
	// The ordering the paper's prose implies: the richer the mechanism,
	// the more of the requirements it covers.
	if !(counts["secext"] > counts["ntacl"] &&
		counts["ntacl"] > counts["unix"] &&
		counts["unix"] > counts["sandbox"]) {
		t.Errorf("expressiveness ordering violated: %v", counts)
	}
	if counts["sandbox"] != 0 || counts["domains"] != 0 {
		t.Errorf("sandbox/domains should express none of the 12: %v", counts)
	}
}

func TestE10WriteAppend(t *testing.T) {
	r := E10()
	if r.Err != nil {
		t.Fatalf("E10: %v\n%s", r.Err, r.Table)
	}
	if strings.Contains(r.Table, "  no\n") {
		t.Errorf("E10 has unexpected outcomes:\n%s", r.Table)
	}
}

func TestMeasureScalesIterations(t *testing.T) {
	calls := 0
	v := measure(2*time.Millisecond, func(n int) {
		calls++
		time.Sleep(time.Duration(n) * 10 * time.Microsecond)
	})
	if v <= 0 {
		t.Errorf("measure = %v", v)
	}
	if calls < 2 {
		t.Errorf("measure must rescale at least once, calls = %d", calls)
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &table{header: []string{"a", "long-header"}}
	tb.add("x", "y")
	s := tb.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Fatalf("table = %q", s)
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Errorf("separator missing: %q", lines[1])
	}
}

func TestNsFormatting(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{42, "42.0 ns"},
		{4200, "4.20 µs"},
		{4.2e6, "4.20 ms"},
	}
	for _, tc := range cases {
		if got := ns(tc.v); got != tc.want {
			t.Errorf("ns(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

// TestE13DefaultWithinNoise asserts the tentpole cost claim: the
// default telemetry configuration (metrics on, traces sampled 1/256)
// stays close to telemetry-off on the warm mediation path. The bound is
// generous (2x) because CI machines are noisy; the honest figure is the
// E13 table, where the two normally land within a few percent — the
// unsampled path pays one atomic add plus one atomic load and reads no
// clocks.
func TestE13DefaultWithinNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiments skipped in -short mode")
	}
	warm := func(mode telemetry.Mode) float64 {
		w, ctx, err := telWorld(mode, false)
		if err != nil {
			t.Fatal(err)
		}
		check := func(n int) {
			for i := 0; i < n; i++ {
				if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
					t.Error(err)
					return
				}
			}
		}
		check(1)
		return measure(defaultMinDur, check)
	}
	off := warm(telemetry.ModeOff)
	def := warm(telemetry.ModeSampled)
	if def > 2*off {
		t.Errorf("default telemetry warm path %.1fns vs off %.1fns: over 2x", def, off)
	}
}

// TestE18SampledWithinNoise asserts PR 8's cost claim: with the shadow
// divergence monitor riding the default sampler, the warm mediation
// path stays close to telemetry-off — the monitor only runs on traced,
// uncached checks, so an unsampled cache hit pays nothing new. The
// bound mirrors TestE13DefaultWithinNoise's generous 2x for noisy CI;
// the honest figure is the E18 table.
func TestE18SampledWithinNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiments skipped in -short mode")
	}
	warm := func(mode telemetry.Mode) float64 {
		w, ctx, err := telWorld(mode, false)
		if err != nil {
			t.Fatal(err)
		}
		if !w.Sys.Names().Current().Compiled() {
			t.Fatal("epoch not compiled; the shadow monitor is a no-op")
		}
		check := func(n int) {
			for i := 0; i < n; i++ {
				if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
					t.Error(err)
					return
				}
			}
		}
		check(1)
		return measure(defaultMinDur, check)
	}
	off := warm(telemetry.ModeOff)
	def := warm(telemetry.ModeSampled)
	if def > 2*off {
		t.Errorf("sampled warm path %.1fns vs off %.1fns: shadow monitor broke the noise band", def, off)
	}
}

// TestTimingExperimentsRun executes the timed experiments with the
// default budget; in -short mode it is skipped to keep CI fast.
func TestTimingExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiments skipped in -short mode")
	}
	for _, r := range []Result{E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(), A1(), A2(), A3()} {
		if r.Err != nil {
			t.Errorf("%s: %v", r.ID, r.Err)
		}
		if !strings.Contains(r.Table, "ns") && !strings.Contains(r.Table, "µs") &&
			!strings.Contains(r.Table, "ms") {
			t.Errorf("%s table has no timings:\n%s", r.ID, r.Table)
		}
	}
}
