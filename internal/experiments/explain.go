package experiments

import (
	"fmt"

	"secext"
	"secext/internal/telemetry"
)

// E18 prices the decision-provenance machinery added for PR 8: the
// shadow divergence monitor that re-derives sampled verdicts by the
// authoritative walk and compares them with the compiled fast path.
//
// The monitor rides the telemetry sampler: only traced checks take the
// shadow comparison, so its cost model is E13's. On the warm path an
// unsampled mediation pays nothing new — the shadow code sits behind
// the same trace-selection branch the tracer already owns. Sampled
// uncached checks pay one extra fastCheck probe (an index lookup plus
// bitset tests) on top of the walk they were already tracing.
//
// Rows, per telemetry mode (off / sampled / full):
//
//   - warm: decision-cache hit — the everyday path; the claim under
//     test is that "sampled" (the production default, 1/256 traced)
//     stays inside the off row's noise band, same as E13.
//   - uncached: cache disabled — every check resolves and verifies,
//     and in sampled/full mode the traced fraction also shadow-walks.
//   - shadow checks / divergences: the monitor's own counters after
//     the uncached loop. Divergences must read 0 — a nonzero count on
//     an honest epoch is a compiler bug, and the run fails.
//
// TestE18SampledWithinNoise asserts the warm-path claim with a bound;
// the honest figures are this table.
func E18() Result {
	res := Result{ID: "E18",
		Title: "Decision provenance: shadow divergence monitor cost by telemetry mode (min over interleaved rounds)"}
	t := &table{header: []string{
		"telemetry", "warm ns/op", "vs off", "spread", "uncached ns/op", "vs off", "shadow checks", "divergences",
	}}

	modes := []telemetry.Mode{telemetry.ModeOff, telemetry.ModeSampled, telemetry.ModeFull}
	type cell struct {
		warm, warmMax, uncached float64
		shadow, diverged        uint64
	}
	cells := make([]cell, len(modes))
	warmChecks := make([]func(n int), len(modes))
	uncachedChecks := make([]func(n int), len(modes))
	uncachedWorlds := make([]*secext.World, len(modes))
	for i, mode := range modes {
		w, ctx, err := telWorld(mode, false)
		if err != nil {
			res.Err = err
			return res
		}
		warmChecks[i] = func(n int) {
			for j := 0; j < n; j++ {
				if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
					panic(err)
				}
			}
		}
		warmChecks[i](1) // publish the cached verdict, then measure hits

		uw, uctx, err := telWorld(mode, true)
		if err != nil {
			res.Err = err
			return res
		}
		uncachedWorlds[i] = uw
		uncachedChecks[i] = func(n int) {
			for j := 0; j < n; j++ {
				if _, err := uw.Sys.CheckData(uctx, "/fs/f", secext.Read); err != nil {
					panic(err)
				}
			}
		}
	}
	// The monitor needs a compiled view to compare against; without one
	// the table would price a no-op.
	if !uncachedWorlds[len(modes)-1].Sys.Names().Current().Compiled() {
		res.Err = fmt.Errorf("E18: epoch not compiled; shadow monitor has nothing to check")
		return res
	}

	const rounds = 5
	roundDur := defaultMinDur / 2
	for r := 0; r < rounds; r++ {
		for i := range modes {
			warm := measure(roundDur, warmChecks[i])
			if r == 0 || warm < cells[i].warm {
				cells[i].warm = warm
			}
			if warm > cells[i].warmMax {
				cells[i].warmMax = warm
			}
			uncached := measure(roundDur, uncachedChecks[i])
			if r == 0 || uncached < cells[i].uncached {
				cells[i].uncached = uncached
			}
		}
	}

	overhead := func(base, v float64) string {
		if base == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", (v/base-1)*100)
	}
	for i, mode := range modes {
		c := &cells[i]
		c.shadow, c.diverged = uncachedWorlds[i].Sys.Names().DivergenceStats()
		if c.diverged != 0 {
			res.Err = fmt.Errorf("E18: %d divergences on an honest epoch in mode %s",
				c.diverged, mode)
			return res
		}
		t.add(mode.String(),
			ns(c.warm), overhead(cells[0].warm, c.warm),
			fmt.Sprintf("%.0f%%", (c.warmMax/c.warm-1)*100),
			ns(c.uncached), overhead(cells[0].uncached, c.uncached),
			fmt.Sprintf("%d", c.shadow), fmt.Sprintf("%d", c.diverged))
	}

	res.setTable(t)
	return res
}
