package experiments

import (
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"time"

	"secext"
	"secext/internal/lattice"
	"secext/internal/load"
	"secext/internal/names"
	"secext/internal/remote"
	"secext/internal/telemetry"
)

// e20Scale reads the experiment scale from the environment so the same
// code serves both the CI smoke (small defaults, seconds) and the real
// bench-load run (10^6 nodes / 10^5 principals, minutes):
//
//	SECEXT_E20_NODES       tree size (default 10 000)
//	SECEXT_E20_PRINCIPALS  registry population (default 2 000)
//	SECEXT_E20_WINDOW_MS   remote traffic window (default 300)
func e20Scale() (nodes, principals int, window time.Duration) {
	nodes, principals, window = 10_000, 2_000, 300*time.Millisecond
	if v, err := strconv.Atoi(os.Getenv("SECEXT_E20_NODES")); err == nil && v > 0 {
		nodes = v
	}
	if v, err := strconv.Atoi(os.Getenv("SECEXT_E20_PRINCIPALS")); err == nil && v > 0 {
		principals = v
	}
	if v, err := strconv.Atoi(os.Getenv("SECEXT_E20_WINDOW_MS")); err == nil && v > 0 {
		window = time.Duration(v) * time.Millisecond
	}
	return nodes, principals, window
}

// e20Plan derives the load plan for the configured scale. Groups and
// the ACL pool scale sublinearly with the population, mirroring how
// real deployments share policy across many objects.
func e20Plan(nodes, principals int) load.Plan {
	cfg := load.Defaults()
	cfg.Nodes = nodes
	cfg.Principals = principals
	cfg.Groups = principals / 32
	if cfg.Groups < 4 {
		cfg.Groups = 4
	}
	cfg.ACLPool = nodes / 64
	if cfg.ACLPool < 16 {
		cfg.ACLPool = 16
	}
	return load.NewPlan(cfg)
}

// E20 prices the compact epoch layout at scale: a synthetic tree of
// SECEXT_E20_NODES nodes (10^6 for bench-load) under a population of
// SECEXT_E20_PRINCIPALS principals, built through the bulk bind path,
// then measured three ways and driven with zipf-distributed check
// traffic over the real line protocol on loopback TCP.
//
// Columns:
//
//   - map B/node: the measured (GC-bracketed heap delta, not estimated)
//     retained bytes per node of the pre-PR-10 representation — map
//     children, per-node path/name strings, per-node ACL clones —
//     rebuilt as a shadow structure on the identical population.
//   - slice B/node: the same measurement for the live representation,
//     built through the same bulk binds on a bare name server: sorted
//     []childRef children, interned paths (names derived, never
//     stored), canonicalized shared ACLs and classes. Tree-only: the
//     server's intern/dedup tables are dropped before the closing heap
//     reading, since they are server-wide state amortized across every
//     epoch, reported separately by the footprint gauges.
//   - reduction: map/slice. The acceptance bar is >= 2x.
//   - accounted B/node: the EpochFootprint analytic estimate for the
//     full system's tree, cross-checking the accounting the telemetry
//     gauges export against the measured truth.
//   - acl dedupe: distinct ACL values per reference (footprint view).
//   - warm check: in-process mediated CheckData on a zipf-hot leaf,
//     comparable to the E13/E17 warm band.
//   - remote p50/p95/p99: open-loop zipf CHECK traffic over loopback
//     TCP, latencies measured from scheduled (not actual) send times,
//     so server lag shows up as queueing delay instead of silently
//     pacing the generator down. Single-vCPU caveat: generator and
//     server share the host, so tail latencies include scheduler
//     interference; treat the columns as an upper bound.
func E20() Result {
	res := Result{ID: "E20",
		Title: "Million-object epochs: compact layout footprint and zipf check traffic (loopback TCP)"}
	nodes, principals, window := e20Scale()
	p := e20Plan(nodes, principals)

	w, _, err := telWorld(telemetry.ModeOff, false)
	if err != nil {
		res.Err = fmt.Errorf("E20: world: %w", err)
		return res
	}
	t0 := time.Now()
	st, err := load.Populate(w.Sys, p)
	if err != nil {
		res.Err = fmt.Errorf("E20: populate: %w", err)
		return res
	}
	buildTime := time.Since(t0)

	// Measured footprints: identical population, two representations,
	// both priced by GC-bracketed retained-heap deltas.
	lat, err := lattice.NewWithUniverse([]string{"others", "organization", "local"}, nil)
	if err != nil {
		res.Err = fmt.Errorf("E20: lattice: %w", err)
		return res
	}
	bottom, err := lat.Bottom()
	if err != nil {
		res.Err = fmt.Errorf("E20: bottom: %w", err)
		return res
	}
	// Build on a bare name server, then keep only the published epoch:
	// the server (interner table, dedup tables, journal, batch
	// machinery) is dropped — and the lattice's publish hook cleared so
	// nothing pins it — before the closing heap reading, so the delta
	// prices the TREE representation alone, symmetric with the map
	// baseline below. The tables are server-wide state that amortizes
	// across every epoch the server ever publishes; their retained
	// bytes are reported separately by the footprint gauges
	// (secext_interner_bytes), not smuggled into the per-node layout
	// comparison.
	var keepEpoch *names.Epoch
	sliceBytes := load.HeapDelta(func() {
		bare := names.NewServer(lat, secext.NewACL(secext.AllowEveryone(secext.List)), bottom)
		if e := load.BuildTree(bare, p, bottom); e != nil && err == nil {
			err = e
		}
		keepEpoch = bare.Current()
		lat.SetPublishHook(nil)
	})
	if err != nil {
		res.Err = fmt.Errorf("E20: slice-layout build: %w", err)
		return res
	}
	var mapRoot any
	var mapNodes int
	mapBytes := load.HeapDelta(func() {
		mapRoot, mapNodes = load.BuildMapBaseline(p, bottom)
	})
	// Both shadow structures must outlive BOTH measurements: if the
	// slice-layout tree dies while the map baseline is being measured,
	// its freed bytes cancel the baseline's allocation and the delta
	// goes negative.
	runtime.KeepAlive(keepEpoch)
	runtime.KeepAlive(mapRoot)
	if mapNodes != p.TotalNodes {
		res.Err = fmt.Errorf("E20: baseline built %d nodes, want %d", mapNodes, p.TotalNodes)
		return res
	}
	slicePer := float64(sliceBytes) / float64(p.TotalNodes)
	mapPer := float64(mapBytes) / float64(p.TotalNodes)
	reduction := mapPer / slicePer
	if reduction < 2 {
		res.Err = fmt.Errorf("E20: layout reduction %.2fx below the 2x bar (map %.0f B/node, slice %.0f B/node)",
			reduction, mapPer, slicePer)
	}
	fp := w.Sys.Names().EpochFootprint()

	// Warm in-process check on the zipf-hottest leaf, for comparability
	// with the E13/E17 warm band.
	ctx, err := w.Sys.NewContext(load.PrincipalName(0))
	if err != nil {
		res.Err = fmt.Errorf("E20: context: %w", err)
		return res
	}
	hot := p.LeafPath(0)
	if _, err := w.Sys.CheckData(ctx, hot, secext.Read); err != nil {
		res.Err = fmt.Errorf("E20: warm check: %w", err)
		return res
	}
	warm := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if _, e := w.Sys.CheckData(ctx, hot, secext.Read); e != nil {
				panic(e)
			}
		}
	})

	// Remote zipf traffic over the real line protocol on loopback.
	srv := remote.NewServer(w.Sys)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		res.Err = fmt.Errorf("E20: listen: %w", err)
		return res
	}
	go srv.Serve(l)
	defer l.Close()
	defer srv.Close()
	const conns = 4
	tokens := make([]string, conns)
	for i := range tokens {
		tokens[i], err = w.Sys.Registry().IssueToken(load.PrincipalName(i % p.Principals))
		if err != nil {
			res.Err = fmt.Errorf("E20: token: %w", err)
			return res
		}
	}
	tr, err := load.DriveZipf(l.Addr().String(), tokens, p, 4000, window, conns)
	if err != nil {
		res.Err = fmt.Errorf("E20: traffic: %w", err)
		return res
	}
	if tr.Errors > 0 {
		res.Err = fmt.Errorf("E20: %d transport errors during traffic window", tr.Errors)
	}

	t := &table{header: []string{
		"nodes", "principals", "build s", "pubs",
		"map B/node", "slice B/node", "reduction",
		"accounted B/node", "acl dedupe",
		"warm check", "remote p50", "p95", "p99", "ops/s",
	}}
	t.add(
		fmt.Sprintf("%d", p.TotalNodes),
		fmt.Sprintf("%d", st.Principals),
		fmt.Sprintf("%.2f", buildTime.Seconds()),
		fmt.Sprintf("%d", st.Publications),
		fmt.Sprintf("%.0f", mapPer),
		fmt.Sprintf("%.0f", slicePer),
		fmt.Sprintf("%.2fx", reduction),
		fmt.Sprintf("%.0f", fp.BytesPerNode),
		fmt.Sprintf("%.1fx", fp.ACLDedupRatio),
		ns(warm),
		ns(float64(tr.P50.Nanoseconds())),
		ns(float64(tr.P95.Nanoseconds())),
		ns(float64(tr.P99.Nanoseconds())),
		fmt.Sprintf("%.0f", tr.Achieved),
	)
	res.setTable(t)
	return res
}
