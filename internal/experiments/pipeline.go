package experiments

import (
	"strconv"

	"secext"
	"secext/internal/monitor"
	"secext/internal/monitor/auditguard"
	"secext/internal/monitor/dacguard"
	"secext/internal/monitor/macguard"
)

// pipelineStacks are the guard stacks the depth experiments sweep: the
// discretionary guard alone, the paper's default DAC+MAC layering, and
// the default plus two pure observers — the cheapest possible extra
// guards, so the depth-4 row isolates the per-guard dispatch cost of
// the pipeline itself rather than any particular policy's work.
func pipelineStacks() []struct {
	name   string
	guards []monitor.Guard
} {
	return []struct {
		name   string
		guards []monitor.Guard
	}{
		{"dac", []monitor.Guard{dacguard.New()}},
		{"dac+mac (default)", []monitor.Guard{dacguard.New(), macguard.New()}},
		{"dac+mac+2 observers", []monitor.Guard{
			dacguard.New(), macguard.New(),
			auditguard.New(nil, nil), auditguard.New(nil, nil),
		}},
	}
}

// E12 measures what the monitor refactor bought and what it costs: the
// same mediated data check as E1/E11 swept over pipeline depth 1, 2,
// and 4, uncached (every check runs the full resolve + guard stack) and
// warm (decision-cache hit). The warm column should be flat — a cache
// hit never runs the guards, so policy depth is free on the steady-
// state path; the uncached column prices each additional pure guard.
func E12() Result {
	res := Result{ID: "E12", Title: "Monitor pipeline depth: mediated check cost vs guard count"}
	t := &table{header: []string{"guard stack", "depth", "uncached ns/op", "warm ns/op"}}

	for _, st := range pipelineStacks() {
		uw, uctx, err := checkWorld(true)
		if err != nil {
			res.Err = err
			return res
		}
		uw.Sys.Names().SetPipeline(monitor.NewPipeline(st.guards...))
		uncached := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := uw.Sys.CheckData(uctx, "/fs/f", secext.Read); err != nil {
					panic(err)
				}
			}
		})

		cw, cctx, err := checkWorld(false)
		if err != nil {
			res.Err = err
			return res
		}
		cw.Sys.Names().SetPipeline(monitor.NewPipeline(st.guards...))
		if _, err := cw.Sys.CheckData(cctx, "/fs/f", secext.Read); err != nil {
			res.Err = err
			return res
		}
		warm := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := cw.Sys.CheckData(cctx, "/fs/f", secext.Read); err != nil {
					panic(err)
				}
			}
		})

		t.add(st.name, strconv.Itoa(len(st.guards)), ns(uncached), ns(warm))
	}
	res.setTable(t)
	return res
}
