package experiments

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"secext"
	"secext/internal/remote"
	"secext/internal/replica"
	"secext/internal/telemetry"
)

// replFleet is one E19 configuration: a primary serving replication
// over a real loopback TCP listener, plus n connected replicas.
type replFleet struct {
	w        *secext.World
	ctx      *secext.Context
	pub      *replica.Publisher
	srv      *remote.Server
	l        net.Listener
	reps     []*replica.Replica
	repCtxs  []*secext.Context
	aliceTok string
}

// newReplFleet builds a primary (the E13 check world), enables
// replication on it, and connects n replicas over loopback TCP, each
// bootstrapping from its own snapshot and catching up to the primary's
// current epoch.
func newReplFleet(n int) (*replFleet, error) {
	w, ctx, err := telWorld(telemetry.ModeOff, false) // price mediation, not telemetry
	if err != nil {
		return nil, err
	}
	f := &replFleet{w: w, ctx: ctx}
	if _, err := w.Sys.AddPrincipal("replicator", "others"); err != nil {
		return nil, err
	}
	rootACL, err := w.Sys.Names().ACLOf("/")
	if err != nil {
		return nil, err
	}
	rootACL.Add(secext.Allow("replicator", secext.Administrate))
	if err := w.Sys.Names().SetACLUnchecked("/", rootACL); err != nil {
		return nil, err
	}
	rtok, err := w.Sys.Registry().IssueToken("replicator")
	if err != nil {
		return nil, err
	}
	f.aliceTok, err = w.Sys.Registry().IssueToken("alice")
	if err != nil {
		return nil, err
	}
	f.srv = remote.NewServer(w.Sys)
	f.srv.PingInterval = 50 * time.Millisecond
	f.pub = replica.NewPublisher(w.Sys)
	f.srv.SetPublisher(f.pub)
	f.l, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go f.srv.Serve(f.l)
	for i := 0; i < n; i++ {
		r, err := replica.Connect(replica.Options{
			Addr:       f.l.Addr().String(),
			Token:      rtok,
			StaleAfter: 10 * time.Second,
		})
		if err != nil {
			f.close()
			return nil, err
		}
		f.reps = append(f.reps, r)
		// The primary's tokens authenticate on the replica: the token
		// secret rode the snapshot envelope.
		rctx, err := r.System().NewContextFromToken(f.aliceTok)
		if err != nil {
			f.close()
			return nil, err
		}
		f.repCtxs = append(f.repCtxs, rctx)
	}
	if err := f.catchUp(5 * time.Second); err != nil {
		f.close()
		return nil, err
	}
	return f, nil
}

// catchUp waits until every replica applied the primary's current
// epoch.
func (f *replFleet) catchUp(timeout time.Duration) error {
	target := f.w.Sys.Names().Version()
	deadline := time.Now().Add(timeout)
	for {
		behind := false
		for _, r := range f.reps {
			if r.AppliedVersion() < target {
				behind = true
				break
			}
		}
		if !behind {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas did not reach epoch v%d within %s", target, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

func (f *replFleet) close() {
	for _, r := range f.reps {
		r.Close()
	}
	f.pub.Close()
	f.srv.Close()
	f.l.Close()
}

// throughput runs one checking goroutine per replica for the window
// and returns aggregate checks/sec across the fleet.
func (f *replFleet) throughput(window time.Duration) (float64, error) {
	var stop atomic.Bool
	var total atomic.Uint64
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for i := range f.reps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys, ctx := f.reps[i].System(), f.repCtxs[i]
			n := uint64(0)
			for !stop.Load() {
				if _, err := sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					break
				}
				n++
			}
			total.Add(n)
		}(i)
	}
	start := time.Now()
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	if e := firstErr.Load(); e != nil {
		return 0, *e
	}
	return float64(total.Load()) / elapsed.Seconds(), nil
}

// burst drives k ACL mutations through the primary (each one epoch,
// each a real delta on /fs/f), then raises the revocation barrier for
// the final epoch and returns the barrier wall time.
func (f *replFleet) burst(k int) (time.Duration, error) {
	a := secext.NewACL(secext.AllowEveryone(secext.Read | secext.Write | secext.WriteAppend))
	b := secext.NewACL(secext.AllowEveryone(secext.Read))
	var v uint64
	for i := 0; i < k; i++ {
		next := a
		if i%2 == 0 {
			next = b
		}
		nv, err := f.w.Sys.Names().SetACLUncheckedAt("/fs/f", next)
		if err != nil {
			return 0, err
		}
		v = nv
	}
	start := time.Now()
	if err := f.pub.Barrier(v, 10*time.Second); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// E19 prices the replica fleet added for PR 9: policy epochs streamed
// to replica mediators over real loopback TCP, each answering mediated
// checks from its own locally rebuilt epoch.
//
// Rows, one per fleet size {1, 2, 4}:
//
//   - aggregate checks/s: total warm mediations per second across the
//     fleet, one checking goroutine per replica. Honest caveat: this
//     host serializes every replica onto the same CPUs, so the column
//     measures that replicas add mediation capacity without contending
//     on any shared lock (flat-to-rising here means real scaling on
//     real hosts, where each replica owns a machine); it is NOT a
//     multi-host throughput claim.
//   - barrier ms after a 64-epoch burst: wall time for the fleet-wide
//     revocation barrier — every replica acknowledging the final epoch
//     of the burst. This is the price of "revocation is synchronous"
//     at fleet scale, paid only by revokers who ask for it.
//   - snapshot B and delta B: average transfer cost per bootstrap vs
//     per streamed epoch, from the publisher's byte counters. Deltas
//     exist because re-snapshotting per epoch would make replication
//     cost O(tree) per mutation; the ratio column is the economy.
func E19() Result {
	res := Result{ID: "E19",
		Title: "Replica fleet: aggregate mediation throughput, revocation barrier, and transfer cost (loopback TCP)"}
	t := &table{header: []string{
		"replicas", "aggregate checks/s", "per-replica", "barrier ms (64-epoch burst)",
		"snapshot B (avg)", "delta B (avg)", "delta/snapshot",
	}}
	const burstEpochs = 64
	for _, n := range []int{1, 2, 4} {
		f, err := newReplFleet(n)
		if err != nil {
			res.Err = fmt.Errorf("E19: fleet of %d: %w", n, err)
			return res
		}
		// Warm each replica's decision cache before the window.
		for i, r := range f.reps {
			if _, err := r.System().CheckData(f.repCtxs[i], "/fs/f", secext.Read); err != nil {
				res.Err = fmt.Errorf("E19: warmup on replica %d: %w", i, err)
				f.close()
				return res
			}
		}
		agg, err := f.throughput(50 * time.Millisecond)
		if err != nil {
			res.Err = fmt.Errorf("E19: fleet of %d: %w", n, err)
			f.close()
			return res
		}
		barrier, err := f.burst(burstEpochs)
		if err != nil {
			res.Err = fmt.Errorf("E19: fleet of %d burst: %w", n, err)
			f.close()
			return res
		}
		st := f.pub.Stats()
		f.close()
		if st.Snapshots == 0 || st.Deltas == 0 {
			res.Err = fmt.Errorf("E19: fleet of %d sent %d snapshots, %d deltas",
				n, st.Snapshots, st.Deltas)
			return res
		}
		snapAvg := float64(st.SnapshotBytes) / float64(st.Snapshots)
		deltaAvg := float64(st.DeltaBytes) / float64(st.Deltas)
		t.add(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", agg),
			fmt.Sprintf("%.0f", agg/float64(n)),
			fmt.Sprintf("%.2f", float64(barrier.Microseconds())/1e3),
			fmt.Sprintf("%.0f", snapAvg),
			fmt.Sprintf("%.0f", deltaAvg),
			fmt.Sprintf("%.3f", deltaAvg/snapAvg))
	}
	res.setTable(t)
	return res
}
