package experiments

import (
	"fmt"
	"strconv"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/names"
	"secext/internal/subject"
)

// e17World is deepNameWorld with the decision cache optionally
// disabled: a chain /n0/n1/.../leaf with listable interior nodes, a
// registered principal, and audit off so rows price the check itself.
func e17World(depth int, disableCache bool) (*core.System, *subject.Context, string, error) {
	sys, err := core.NewSystem(core.Options{
		Levels: []string{"lo", "hi"}, DisableAudit: true,
		DisableDecisionCache: disableCache,
	})
	if err != nil {
		return nil, nil, "", err
	}
	listable := acl.New(acl.AllowEveryone(acl.List))
	path := ""
	for i := 0; i < depth-1; i++ {
		path += "/n" + strconv.Itoa(i)
		if _, err := sys.CreateNode(core.NodeSpec{Path: path, Kind: names.KindDomain, ACL: listable}); err != nil {
			return nil, nil, "", err
		}
	}
	leaf := path + "/leaf"
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: leaf, Kind: names.KindFile,
		ACL: acl.New(acl.AllowEveryone(acl.Read)),
	}); err != nil {
		return nil, nil, "", err
	}
	if _, err := sys.AddPrincipal("p", "lo"); err != nil {
		return nil, nil, "", err
	}
	ctx, err := sys.NewContext("p")
	return sys, ctx, leaf, err
}

// E17 prices the uncached mediated check against the warm cache hit
// once epochs carry a compiled read side: a flat path→node index, per-
// node effective-ACL bitsets covering the traversal chain, and an
// interned dominance table. The claim under test is that the compiled
// verdict removes the depth-proportional spine walk and entry
// iteration, pulling the uncached check into the warm check's band —
// so a cache miss (or a cache-free deployment) no longer costs an
// order of magnitude.
//
// Per depth, three checks on the same chain:
//
//   - warm: decision-cache hit, the fast-path floor (depth-blind).
//   - uncached/compiled: cache disabled, compiled epochs on — one index
//     probe, two bitset tests, one dominance lookup.
//   - uncached/walk: cache disabled, compiled epochs off — the spine
//     walk with per-level visibility checks and ACL entry iteration.
//
// The resolve-only rows isolate naming from verification: the compiled
// index probe against the checked spine walk, without the guard stack.
//
// The compiled check stays flat as depth grows only because the
// traversal verdict is precomputed; the walk rows grow linearly. Both
// produce identical decisions — the oracle for that equivalence is
// TestCompiledRandomizedOracle and FuzzEpochTransitions, not this
// table.
func E17() Result {
	res := Result{ID: "E17", Title: "Compiled-epoch resolve: uncached check vs warm cache hit by depth"}
	t := &table{header: []string{"depth", "path", "ns/op", "vs warm"}}
	ratio := func(v, warm float64) string {
		if warm == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", v/warm)
	}

	for _, depth := range []int{2, 8, 32} {
		// Warm cache hits need the cache; the uncached rows need it off.
		cw, cctx, cleaf, err := e17World(depth, false)
		if err != nil {
			res.Err = err
			return res
		}
		uw, uctx, uleaf, err := e17World(depth, true)
		if err != nil {
			res.Err = err
			return res
		}

		warmFn := func(n int) {
			for i := 0; i < n; i++ {
				if _, err := cw.CheckData(cctx, cleaf, acl.Read); err != nil {
					panic(err)
				}
			}
		}
		warmFn(1) // publish the verdict once
		warm := measure(defaultMinDur, warmFn)

		compiled := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := uw.CheckData(uctx, uleaf, acl.Read); err != nil {
					panic(err)
				}
			}
		})

		uw.Names().SetCompiledEpochs(false)
		walk := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := uw.CheckData(uctx, uleaf, acl.Read); err != nil {
					panic(err)
				}
			}
		})
		uw.Names().SetCompiledEpochs(true)

		d := strconv.Itoa(depth)
		t.add(d, "warm (cache hit)", ns(warm), "1.0x")
		t.add(d, "uncached, compiled verdict", ns(compiled), ratio(compiled, warm))
		t.add(d, "uncached, spine walk", ns(walk), ratio(walk, warm))

		// Sanity: the compiled fast path actually decided this check.
		ep := uw.Names().Current()
		if !ep.Compiled() {
			res.Err = fmt.Errorf("E17: depth-%d epoch not compiled after re-enable", depth)
			return res
		}
		if _, decided := ep.CompiledAllows(uctx.Principal(), uctx.Class(), uleaf, acl.Read); !decided {
			res.Err = fmt.Errorf("E17: depth-%d compiled verdict undecided for %s", depth, uleaf)
			return res
		}
	}

	// Resolve-only split at depth 32: naming without verification.
	uw, uctx, uleaf, err := e17World(32, true)
	if err != nil {
		res.Err = err
		return res
	}
	ns32 := uw.Names()
	indexed := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if _, err := ns32.Resolve(uctx, uctx.Class(), uleaf); err != nil {
				panic(err)
			}
		}
	})
	ns32.SetCompiledEpochs(false)
	walked := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if _, err := ns32.Resolve(uctx, uctx.Class(), uleaf); err != nil {
				panic(err)
			}
		}
	})
	t.add("32", "resolve only, index probe", ns(indexed), ratio(indexed, walked)+" of walk")
	t.add("32", "resolve only, spine walk", ns(walked), "-")

	res.setTable(t)
	return res
}
