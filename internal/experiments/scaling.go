package experiments

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"secext"
)

// E14 measures read-path scaling of the snapshot name space: uncached
// mediated checks (every CheckData takes the full resolve-and-verify
// walk) at increasing goroutine counts, against a compatibility shim
// that reproduces the pre-snapshot architecture — a single RWMutex
// acquired in read mode around every check, exactly what the old
// mutable tree did on every Resolve.
//
// The snapshot rows pay one atomic root load per decision and share
// nothing, so their throughput should track GOMAXPROCS; the rwmutex
// rows bounce the lock word's cache line between every reader, so they
// flatten (and on a writer-present workload would collapse). The warm
// rows record the cached fast path at the same goroutine counts: the
// refactor must leave cache-hit latency inside the E13 noise band, so
// warm figures here should match E11/E13's warm numbers.
//
// The scaling column normalizes each implementation's throughput to its
// own single-goroutine run (ops/s at g divided by ops/s at 1): perfect
// read scaling is g.0x, a flat line is ~1.0x. On a single-core host
// every row necessarily stays near 1.0x — the table is still honest
// (it records the machine's parallelism next to the rows), and the
// lock-word traffic difference shows up in ns/op.
func E14() Result {
	res := Result{ID: "E14", Title: "Name-space read scaling: snapshot tree vs RWMutex shim, uncached checks"}
	t := &table{header: []string{"impl", "goroutines", "ns/op", "scaling vs 1g"}}

	counts := []int{1, 2, 4, 8}
	scaling := func(base, v float64) string {
		if v == 0 {
			return "-"
		}
		// base and v are ns/op; throughput ratio inverts them.
		return fmt.Sprintf("%.1fx", base/v)
	}

	// Snapshot tree, uncached: the refactor under test.
	uw, uctx, err := checkWorld(true)
	if err != nil {
		res.Err = err
		return res
	}
	snapCheck := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := uw.Sys.CheckData(uctx, "/fs/f", secext.Read); err != nil {
				panic(err)
			}
		}
	}
	var snapBase float64
	for _, g := range counts {
		ns := measureParallel(defaultMinDur, g, snapCheck)
		if g == 1 {
			snapBase = ns
		}
		t.add("snapshot", strconv.Itoa(g), fmt.Sprintf("%.0f", ns), scaling(snapBase, ns))
	}

	// RWMutex shim: the same world, but every check first takes a global
	// read lock — the old architecture's per-resolve synchronization.
	var mu sync.RWMutex
	shimCheck := func(n int) {
		for i := 0; i < n; i++ {
			mu.RLock()
			_, err := uw.Sys.CheckData(uctx, "/fs/f", secext.Read)
			mu.RUnlock()
			if err != nil {
				panic(err)
			}
		}
	}
	var shimBase float64
	for _, g := range counts {
		ns := measureParallel(defaultMinDur, g, shimCheck)
		if g == 1 {
			shimBase = ns
		}
		t.add("rwmutex-shim", strconv.Itoa(g), fmt.Sprintf("%.0f", ns), scaling(shimBase, ns))
	}

	// Warm cache hits on the snapshot path: must sit in the E13 band.
	cw, cctx, err := checkWorld(false)
	if err != nil {
		res.Err = err
		return res
	}
	warmCheck := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := cw.Sys.CheckData(cctx, "/fs/f", secext.Read); err != nil {
				panic(err)
			}
		}
	}
	warmCheck(1) // publish the verdict once
	var warmBase float64
	for _, g := range counts {
		ns := measureParallel(defaultMinDur, g, warmCheck)
		if g == 1 {
			warmBase = ns
		}
		t.add("snapshot-warm", strconv.Itoa(g), fmt.Sprintf("%.0f", ns), scaling(warmBase, ns))
	}

	t.add("gomaxprocs", strconv.Itoa(runtime.GOMAXPROCS(0)), "-", "-")
	res.setTable(t)
	return res
}
