package experiments

import (
	"fmt"

	"secext"
	"secext/internal/baseline/sandbox"
)

// orgWorld builds the §2.2 universe used by the scenarios.
func orgWorld() (*secext.World, error) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"myself", "dept-1", "dept-2", "outside"},
	})
	if err != nil {
		return nil, err
	}
	for _, p := range []struct{ name, class string }{
		{"user", "local:{myself,dept-1,dept-2,outside}"},
		{"applet1", "organization:{dept-1}"},
		{"applet2", "organization:{dept-2}"},
		{"applet3", "organization:{dept-1,dept-2}"},
		{"outsider", "others:{outside}"},
	} {
		if _, err := w.Sys.AddPrincipal(p.name, p.class); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// S1 reproduces the §2.2 organization access matrix and asserts the
// paper's stated outcomes.
func S1() Result {
	res := Result{ID: "S1", Title: "Organization access matrix (paper §2.2)"}
	w, err := orgWorld()
	if err != nil {
		res.Err = err
		return res
	}
	open := secext.NewACL(secext.AllowEveryone(
		secext.Read | secext.Write | secext.WriteAppend))
	writers := []string{"applet1", "applet2", "applet3"}
	for _, name := range writers {
		ctx, err := w.Sys.NewContext(name)
		if err != nil {
			res.Err = err
			return res
		}
		if err := w.FS.Create(ctx, "/fs/"+name+"-file", open, ctx.Class()); err != nil {
			res.Err = err
			return res
		}
	}
	expected := map[string][3]bool{
		"user":     {true, true, true},
		"applet1":  {true, false, false},
		"applet2":  {false, true, false},
		"applet3":  {true, true, true},
		"outsider": {false, false, false},
	}
	t := &table{header: []string{"reader \\ file", "applet1-file", "applet2-file", "applet3-file", "matches paper"}}
	for _, reader := range []string{"user", "applet1", "applet2", "applet3", "outsider"} {
		ctx, err := w.Sys.NewContext(reader)
		if err != nil {
			res.Err = err
			return res
		}
		row := []string{reader}
		ok := true
		for i, wtr := range writers {
			_, err := w.FS.Read(ctx, "/fs/"+wtr+"-file")
			got := err == nil
			row = append(row, verdict(got))
			if got != expected[reader][i] {
				ok = false
			}
		}
		row = append(row, yes(ok))
		t.add(row...)
		if !ok && res.Err == nil {
			res.Err = fmt.Errorf("S1: row %s deviates from the paper", reader)
		}
	}
	res.setTable(t)
	return res
}

// S2 replays the ThreadMurder attack against the sandbox baseline and
// against secext, asserting containment under secext.
func S2() Result {
	res := Result{ID: "S2", Title: "ThreadMurder containment (paper §1.2)"}
	t := &table{header: []string{"model", "victim threads", "killed", "contained"}}

	// Sandbox baseline: the model cannot protect per-applet threads.
	sb := sandbox.New(nil, []string{"/fs"})
	sbKilled := 0
	for i := 0; i < 2; i++ {
		if sb.CheckCall("thread-murder", "/svc/thread/kill") {
			sbKilled++
		}
	}
	t.add("java-sandbox", "2", fmt.Sprint(sbKilled), yes(sbKilled == 0))

	// secext: per-thread ACLs + compartments.
	w, err := orgWorld()
	if err != nil {
		res.Err = err
		return res
	}
	if _, err := w.Sys.AddPrincipal("thread-murder", "organization:{dept-1}"); err != nil {
		res.Err = err
		return res
	}
	var victims []int
	for _, owner := range []string{"applet1", "applet2"} {
		ctx, _ := w.Sys.NewContext(owner)
		out, err := w.Sys.Call(ctx, "/svc/thread/spawn", secext.ThreadSpawnRequest{Name: owner})
		if err != nil {
			res.Err = err
			return res
		}
		victims = append(victims, out.(int))
	}
	murder, _ := w.Sys.NewContext("thread-murder")
	killed := 0
	for _, id := range victims {
		if _, err := w.Sys.Call(murder, "/svc/thread/kill", secext.ThreadKillRequest{ID: id}); err == nil {
			killed++
		}
	}
	t.add("secext", "2", fmt.Sprint(killed), yes(killed == 0))
	if killed != 0 {
		res.Err = fmt.Errorf("S2: secext failed to contain ThreadMurder (%d killed)", killed)
	}
	if sbKilled == 0 {
		res.Err = fmt.Errorf("S2: sandbox baseline unexpectedly contained the attack")
	}
	res.setTable(t)
	return res
}

// s3Ext is the §1.1 new-file-system extension used by S3.
type s3Ext struct{ alloc, free *secext.Capability }

func (e *s3Ext) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	var err error
	if e.alloc, err = lk.Cap("/svc/mbuf/alloc"); err != nil {
		return nil, err
	}
	if e.free, err = lk.Cap("/svc/mbuf/free"); err != nil {
		return nil, err
	}
	read := func(ctx *secext.Context, arg any) (any, error) {
		req := arg.(secext.FileRequest)
		out, err := e.alloc.Invoke(ctx, nil)
		if err != nil {
			return nil, err
		}
		buf := out.(secext.MbufBuffer)
		n := copy(buf.Data, "newfs:"+req.Path)
		data := append([]byte(nil), buf.Data[:n]...)
		if _, err := e.free.Invoke(ctx, buf); err != nil {
			return nil, err
		}
		return data, nil
	}
	return map[string]secext.Handler{"/svc/fs/read": read}, nil
}

// S3 loads the new-file-system extension and asserts (a) it serves its
// compartment through the existing interface using the mbuf substrate,
// (b) other compartments fall back to the base FS, (c) revoking the
// import's execute right fails the link.
func S3() Result {
	res := Result{ID: "S3", Title: "File-system extension via existing interface (paper §1.1)"}
	w, err := orgWorld()
	if err != nil {
		res.Err = err
		return res
	}
	if err := w.Sys.Names().SetACLUnchecked("/svc/fs/read", secext.NewACL(
		secext.AllowEveryone(secext.Execute|secext.List),
		secext.Allow("applet1", secext.Extend))); err != nil {
		res.Err = err
		return res
	}
	tok, err := w.Sys.Registry().IssueToken("applet1")
	if err != nil {
		res.Err = err
		return res
	}
	m := secext.Manifest{
		Name: "newfs", Principal: "applet1", Token: tok,
		Imports:     []string{"/svc/mbuf/alloc", "/svc/mbuf/free"},
		Extends:     []string{"/svc/fs/read"},
		StaticClass: "organization:{dept-1}",
		Code:        func() secext.Extension { return &s3Ext{} },
	}
	t := &table{header: []string{"step", "outcome", "as expected"}}

	_, err = w.Sys.Loader().Load(m)
	t.add("load newfs (authenticated, linked)", errStr(err), yes(err == nil))
	if err != nil {
		res.Err = err
		res.setTable(t)
		return res
	}

	a1, _ := w.Sys.NewContext("applet1")
	out, err := w.Sys.Call(a1, "/svc/fs/read", secext.FileRequest{Path: "/newfs/x"})
	served := err == nil && string(out.([]byte)) == "newfs:/newfs/x"
	t.add("dept-1 read via /svc/fs/read", fmt.Sprintf("%v", outOrErr(out, err)), yes(served))
	if !served {
		res.Err = fmt.Errorf("S3: extension did not serve its compartment: %v", err)
	}

	usedMbuf := w.Mbuf.Stats().Allocs > 0
	t.add("extension used mbuf substrate", fmt.Sprintf("allocs=%d", w.Mbuf.Stats().Allocs), yes(usedMbuf))
	if !usedMbuf && res.Err == nil {
		res.Err = fmt.Errorf("S3: extension bypassed the mbuf substrate")
	}

	outsider, _ := w.Sys.NewContext("outsider")
	_, err = w.Sys.Call(outsider, "/svc/fs/read", secext.FileRequest{Path: "/newfs/x"})
	fellBack := err != nil // base FS has no /newfs
	t.add("outside read falls back to base FS", errStr(err), yes(fellBack))
	if !fellBack && res.Err == nil {
		res.Err = fmt.Errorf("S3: outsider was served by the compartment extension")
	}

	// Revoke and relink.
	if err := w.Sys.Names().SetACLUnchecked("/svc/mbuf/alloc",
		secext.NewACL(secext.AllowEveryone(secext.Execute|secext.List),
			secext.Deny("applet1", secext.Execute))); err != nil {
		res.Err = err
		res.setTable(t)
		return res
	}
	m2 := m
	m2.Name = "newfs2"
	_, err = w.Sys.Loader().Load(m2)
	t.add("relink after import revoked", errStr(err), yes(err != nil))
	if err == nil && res.Err == nil {
		res.Err = fmt.Errorf("S3: link succeeded after execute was revoked")
	}
	res.setTable(t)
	return res
}

// s4Ext probes one file through its file-read capability.
type s4Ext struct{ read *secext.Capability }

func (e *s4Ext) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	var err error
	if e.read, err = lk.Cap("/svc/fs/read"); err != nil {
		return nil, err
	}
	h := func(ctx *secext.Context, arg any) (any, error) {
		return e.read.Invoke(ctx, secext.FileRequest{Path: arg.(string)})
	}
	return map[string]secext.Handler{"/svc/probe": h}, nil
}

// S4 reproduces the §2 origin policy: the same extension admitted from
// three origins gets three different ceilings, asserted as a read
// matrix over three files (public / organization / local).
func S4() Result {
	res := Result{ID: "S4", Title: "Origin-based admission matrix (paper §2 opening example)"}
	w, err := orgWorld()
	if err != nil {
		res.Err = err
		return res
	}
	sys := w.Sys
	err = sys.RegisterService(secext.ServiceSpec{
		Path: "/svc/probe",
		ACL: secext.NewACL(secext.AllowEveryone(
			secext.Execute | secext.Extend | secext.List)),
		Base: secext.Binding{Owner: "base", Handler: func(ctx *secext.Context, arg any) (any, error) {
			return nil, fmt.Errorf("no probe for this caller")
		}},
	})
	if err != nil {
		res.Err = err
		return res
	}
	// Three files at ascending sensitivity, readable by anyone the
	// lattice admits.
	open := secext.NewACL(secext.AllowEveryone(secext.Read))
	userCtx, _ := sys.NewContext("user")
	for _, f := range []struct{ path, class string }{
		{"/fs/public", "others"},
		{"/fs/org", "organization:{dept-1}"},
		{"/fs/secret", "local:{myself,dept-1,dept-2,outside}"},
	} {
		class, err := sys.Lattice().ParseClass(f.class)
		if err != nil {
			res.Err = err
			return res
		}
		ctx, err := userCtx.Clamp(class)
		if err != nil {
			res.Err = err
			return res
		}
		if err := w.FS.Create(ctx, f.path, open, class); err != nil {
			res.Err = err
			return res
		}
	}
	adm, err := secext.NewAdmitter(sys, []secext.AdmissionRule{
		{Pattern: "local", ClassLabel: "local:{myself,dept-1,dept-2,outside}",
			StaticClamp: "local:{myself,dept-1,dept-2,outside}", AutoRegister: true},
		{Pattern: "*.corp.example", ClassLabel: "organization:{dept-1}",
			StaticClamp: "organization:{dept-1}", AutoRegister: true},
		{Pattern: "*", ClassLabel: "others", StaticClamp: "others", AutoRegister: true},
	})
	if err != nil {
		res.Err = err
		return res
	}
	origins := []struct{ origin, ext, principal string }{
		{"local", "p-local", "localdev"},
		{"apps.corp.example", "p-org", "orgdev"},
		{"cdn.wild.example", "p-out", "wilddev"},
	}
	for _, o := range origins {
		_, err := adm.Admit(o.origin, secext.Manifest{
			Name: o.ext, Principal: o.principal,
			Imports: []string{"/svc/fs/read"},
			Extends: []string{"/svc/probe"},
			Code:    func() secext.Extension { return &s4Ext{} },
		})
		if err != nil {
			res.Err = fmt.Errorf("S4: admit %s: %w", o.origin, err)
			return res
		}
	}
	expected := map[string][3]bool{
		"localdev": {true, true, true},
		"orgdev":   {true, true, false},
		"wilddev":  {true, false, false},
	}
	files := []string{"/fs/public", "/fs/org", "/fs/secret"}
	t := &table{header: []string{"origin principal", "/fs/public", "/fs/org", "/fs/secret", "matches paper"}}
	for _, o := range origins {
		ctx, err := sys.NewContext(o.principal)
		if err != nil {
			res.Err = err
			return res
		}
		row := []string{o.principal}
		ok := true
		for i, f := range files {
			_, err := sys.Call(ctx, "/svc/probe", f)
			got := err == nil
			row = append(row, verdict(got))
			if got != expected[o.principal][i] {
				ok = false
			}
		}
		row = append(row, yes(ok))
		t.add(row...)
		if !ok && res.Err == nil {
			res.Err = fmt.Errorf("S4: row %s deviates from the paper", o.principal)
		}
	}
	res.setTable(t)
	return res
}

func errStr(err error) string {
	if err == nil {
		return "ok"
	}
	s := err.Error()
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

func outOrErr(out any, err error) any {
	if err != nil {
		return errStr(err)
	}
	if b, ok := out.([]byte); ok {
		return string(b)
	}
	return out
}
