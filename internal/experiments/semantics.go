package experiments

import (
	"fmt"

	"secext"
	"secext/internal/acl"
	"secext/internal/baseline"
	"secext/internal/baseline/domains"
	"secext/internal/baseline/ntacl"
	"secext/internal/baseline/sandbox"
	"secext/internal/baseline/secextmodel"
	"secext/internal/baseline/unixmode"
	"secext/internal/core"
	"secext/internal/names"
)

// e9Scenario is one policy requirement probed across models. Each cell
// is backed either by a probe in this repository's baseline tests (the
// Basis column names the package) or by the model's decision structure
// (e.g. the sandbox computes call and extend from the same predicate,
// so separating them is impossible by construction).
type e9Scenario struct {
	name string
	// expressible per model: secext, sandbox, domains, unix, ntacl
	cells [5]bool
	basis string
}

var e9Scenarios = []e9Scenario{
	{"grant call without extend on one service",
		[5]bool{true, false, false, true, true},
		"acl: execute vs extend; sandbox/domains: single predicate"},
	{"grant extend without call",
		[5]bool{true, false, false, true, true},
		"unix/nt approximate extend as write"},
	{"deny one member of an allowed group",
		[5]bool{true, false, false, false, true},
		"negative entries; unix has none; sandbox/domains no groups"},
	{"isolate two untrusted peers' objects (ThreadMurder)",
		[5]bool{true, false, false, true, true},
		"per-object owner ACLs; sandbox is one compartment"},
	{"three linearly ordered trust levels",
		[5]bool{true, false, false, false, false},
		"lattice levels; sandbox is binary; others have no levels"},
	{"append without read or overwrite",
		[5]bool{true, false, false, false, false},
		"write-append mode; unix/nt single write right"},
	{"flow control users cannot bypass via DAC",
		[5]bool{true, false, false, false, false},
		"mandatory layer; all baselines purely discretionary"},
	{"distinct rights for one subject on two objects",
		[5]bool{true, false, false, true, true},
		"per-object ACLs/bits; sandbox/domains prefix-granular"},
	{"default-allow for unknown subjects, one deny",
		[5]bool{true, false, false, false, true},
		"allow-everyone + deny entry; sandbox default-denies unknowns"},
	{"administrate right separate from write",
		[5]bool{true, false, false, false, true},
		"administrate mode / ChangePerms; unix ties chmod to owner"},
	{"select implementation by caller's trust class",
		[5]bool{true, false, false, false, false},
		"class-based dispatch (§2.2); no baseline dispatches"},
	{"statically clamp an extension below its principal",
		[5]bool{true, false, false, false, false},
		"static class meet at load time"},
}

// E9 renders the expressiveness matrix.
func E9() Result {
	res := Result{ID: "E9", Title: "Policy expressiveness by model (12 requirements)"}
	t := &table{header: []string{"requirement", "secext", "sandbox", "domains", "unix", "nt-acl"}}
	counts := [5]int{}
	for _, s := range e9Scenarios {
		row := []string{s.name}
		for i, ok := range s.cells {
			row = append(row, yes(ok))
			if ok {
				counts[i]++
			}
		}
		t.add(row...)
	}
	t.add("TOTAL expressible",
		fmt.Sprintf("%d/12", counts[0]), fmt.Sprintf("%d/12", counts[1]),
		fmt.Sprintf("%d/12", counts[2]), fmt.Sprintf("%d/12", counts[3]),
		fmt.Sprintf("%d/12", counts[4]))
	t.add("(rows 1 and 6 verified live via baseline.Model, secext included)")
	res.setTable(t)
	if counts[0] != len(e9Scenarios) {
		res.Err = fmt.Errorf("E9: secext must express all %d requirements, got %d",
			len(e9Scenarios), counts[0])
	}
	if err := e9LiveProbes(); err != nil && res.Err == nil {
		res.Err = err
	}
	return res
}

// e9SecextModel assembles the paper's model behind the baseline
// interface: one principal "p" at the bottom level and one node /obj
// protected by the given ACL.
func e9SecextModel(kind names.Kind, objACL *acl.ACL) (*secextmodel.Model, error) {
	sys, err := core.NewSystem(core.Options{Levels: []string{"low", "high"}})
	if err != nil {
		return nil, err
	}
	if _, err := sys.AddPrincipal("p", "low"); err != nil {
		return nil, err
	}
	m := secextmodel.New(sys)
	if err := m.AddSubject("p"); err != nil {
		return nil, err
	}
	if _, err := sys.CreateNode(core.NodeSpec{Path: "/obj", Kind: kind, ACL: objACL}); err != nil {
		return nil, err
	}
	return m, nil
}

// e9LiveProbes backs two rows of the static matrix with executed
// decisions, every model — the paper's included, via
// internal/baseline/secextmodel — driven through the one baseline.Model
// interface. The matrix says which models CAN express each requirement;
// the probes demonstrate it (or demonstrate the conflation) on live
// instances configured as close to the requirement as each model
// allows.
func e9LiveProbes() error {
	// Row 1: "grant call without extend on one service". Each model is
	// configured to come as close as it can to call-only on /obj.
	se, err := e9SecextModel(names.KindMethod, acl.New(acl.Allow("p", acl.Execute)))
	if err != nil {
		return fmt.Errorf("E9 probe 1: %v", err)
	}
	sb := sandbox.New([]string{"p"}, nil)
	dm := domains.New()
	dm.DefineDomain("d", "/obj")
	if err := dm.Link("p", "d"); err != nil {
		return fmt.Errorf("E9 probe 1: %v", err)
	}
	ux := unixmode.New()
	ux.SetObject("/obj", "p", "g", 0o500)
	nt := ntacl.New()
	nt.SetACL("/obj", ntacl.Entry{Subject: "p", Rights: ntacl.Execute})

	// The expressive models separate the two rights...
	for _, m := range []baseline.Model{se, ux, nt} {
		if !m.CheckCall("p", "/obj") || m.CheckExtend("p", "/obj") {
			return fmt.Errorf("E9 probe 1: %s: want call without extend, got call=%v extend=%v",
				m.Name(), m.CheckCall("p", "/obj"), m.CheckExtend("p", "/obj"))
		}
	}
	// ...the single-predicate models cannot, by construction.
	for _, m := range []baseline.Model{sb, dm} {
		if m.CheckCall("p", "/obj") != m.CheckExtend("p", "/obj") {
			return fmt.Errorf("E9 probe 1: %s: call and extend unexpectedly separable", m.Name())
		}
	}

	// Row 6: "append without read or overwrite". Only the paper's model
	// has a distinct write-append right; every baseline's best attempt
	// conflates append with write.
	se, err = e9SecextModel(names.KindObject, acl.New(acl.Allow("p", acl.WriteAppend)))
	if err != nil {
		return fmt.Errorf("E9 probe 2: %v", err)
	}
	if !se.CheckData("p", "/obj", baseline.OpAppend) ||
		se.CheckData("p", "/obj", baseline.OpRead) ||
		se.CheckData("p", "/obj", baseline.OpWrite) {
		return fmt.Errorf("E9 probe 2: secext: want append-only grant")
	}
	ux = unixmode.New()
	ux.SetObject("/obj", "p", "g", 0o200)
	nt = ntacl.New()
	nt.SetACL("/obj", ntacl.Entry{Subject: "p", Rights: ntacl.Write})
	for _, m := range []baseline.Model{sb, dm, ux, nt} {
		if m.CheckData("p", "/obj", baseline.OpAppend) != m.CheckData("p", "/obj", baseline.OpWrite) {
			return fmt.Errorf("E9 probe 2: %s: append and write unexpectedly separable", m.Name())
		}
	}
	return nil
}

// E9Counts exposes the per-model totals for tests.
func E9Counts() map[string]int {
	counts := map[string]int{}
	names := []string{"secext", "sandbox", "domains", "unix", "ntacl"}
	for _, s := range e9Scenarios {
		for i, ok := range s.cells {
			if ok {
				counts[names[i]]++
			}
		}
	}
	return counts
}

// E10 exercises the write-append channel end to end and times the
// mediated append.
func E10() Result {
	res := Result{ID: "E10", Title: "Write-append: report up without read or overwrite"}
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:       []string{"others", "organization", "local"},
		DisableAudit: true,
	})
	if err != nil {
		res.Err = err
		return res
	}
	if _, err := w.Sys.AddPrincipal("applet", "others"); err != nil {
		res.Err = err
		return res
	}
	if _, err := w.Sys.AddPrincipal("auditor", "local"); err != nil {
		res.Err = err
		return res
	}
	if err := w.Sys.Registry().AddMember("auditors", "auditor"); err != nil {
		res.Err = err
		return res
	}
	applet, _ := w.Sys.NewContext("applet")
	auditor, _ := w.Sys.NewContext("auditor")

	t := &table{header: []string{"operation", "subject class", "object class", "outcome", "as expected"}}
	jc := "local (top)"

	appendErr := w.Journal.Append(applet, "low report")
	t.add("append", "others", jc, errStr(appendErr), yes(appendErr == nil))
	if appendErr != nil {
		res.Err = fmt.Errorf("E10: append up denied: %v", appendErr)
	}

	_, readErr := w.Journal.Read(applet)
	t.add("read", "others", jc, errStr(readErr), yes(secext.IsDenied(readErr)))
	if !secext.IsDenied(readErr) && res.Err == nil {
		res.Err = fmt.Errorf("E10: low read must be denied, got %v", readErr)
	}

	truncErr := w.Journal.Truncate(applet)
	t.add("overwrite (truncate)", "others", jc, errStr(truncErr), yes(secext.IsDenied(truncErr)))
	if !secext.IsDenied(truncErr) && res.Err == nil {
		res.Err = fmt.Errorf("E10: blind overwrite must be denied, got %v", truncErr)
	}

	entries, audErr := w.Journal.Read(auditor)
	ok := audErr == nil && len(entries) == 1 && entries[0].Subject == "applet"
	t.add("read", "local", jc, fmt.Sprintf("%d entries", len(entries)), yes(ok))
	if !ok && res.Err == nil {
		res.Err = fmt.Errorf("E10: auditor read failed: %v", audErr)
	}

	perAppend := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if err := w.Journal.Append(applet, "x"); err != nil {
				panic(err)
			}
		}
	})
	t.add("append throughput", "others", jc, ns(perAppend)+"/op", "-")
	res.setTable(t)
	return res
}
