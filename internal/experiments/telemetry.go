package experiments

import (
	"fmt"

	"secext"
	"secext/internal/telemetry"
)

// telWorld is checkWorld with a telemetry mode, for the E13 ablation.
func telWorld(mode telemetry.Mode, disableCache bool) (*secext.World, *secext.Context, error) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:               []string{"others", "organization", "local"},
		Categories:           []string{"dept-1", "dept-2"},
		DisableAudit:         true,
		DisableDecisionCache: disableCache,
		Telemetry:            secext.TelemetryOptions{Mode: mode},
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		return nil, nil, err
	}
	ctx, err := w.Sys.NewContext("alice")
	if err != nil {
		return nil, nil, err
	}
	open := secext.NewACL(secext.AllowEveryone(secext.Read | secext.Write | secext.WriteAppend))
	if err := w.FS.Create(ctx, "/fs/f", open, ctx.Class()); err != nil {
		return nil, nil, err
	}
	return w, ctx, nil
}

// E13 prices the telemetry subsystem: the same mediated data check as
// E1/E11, warm (cache hit) and uncached (full resolve+verify), under
// the four telemetry configurations —
//
//   - off: Telemetry is nil; the mediation path is exactly the pre-
//     telemetry code plus one never-taken nil branch per site.
//   - metrics: counters and sampled histograms, no trace retention.
//   - sampled (the default): metrics plus one retained trace per 256
//     mediations.
//   - full: every mediation traced — maximum forensics.
//
// The design target, asserted by TestE13DefaultWithinNoise, is that the
// default setting stays within noise of off on the warm path: unsampled
// mediations pay one uncontended atomic add (the per-kind decision
// counter, which doubles as the sampling clock — the warm path already
// pays an identical add for the cache hit counter) plus one inlined
// flag load, and read no clocks; only the 1-in-256 sampled requests pay
// for timestamps and span recording.
//
// Measurement design: single shots are hostage to frequency drift, so
// each cell is the minimum over interleaved rounds (off, metrics,
// sampled, full, repeat), and the "spread" column reports each mode's
// own min-to-max variation across rounds — the noise band. The claim
// "the default is within noise" is checkable on the table: the
// sampled-vs-off delta is of the same order as the off row's spread.
func E13() Result {
	res := Result{ID: "E13",
		Title: "Telemetry ablation: mediated check cost by recording mode (min over interleaved rounds)"}
	t := &table{header: []string{
		"telemetry", "warm ns/op", "vs off", "spread", "uncached ns/op", "vs off", "traces sampled",
	}}

	modes := []telemetry.Mode{
		telemetry.ModeOff, telemetry.ModeMetrics, telemetry.ModeSampled, telemetry.ModeFull,
	}
	type cell struct {
		warm, warmMax, uncached float64
		tel                     *telemetry.Telemetry
	}
	cells := make([]cell, len(modes))
	warmChecks := make([]func(n int), len(modes))
	uncachedChecks := make([]func(n int), len(modes))
	for i, mode := range modes {
		w, ctx, err := telWorld(mode, false)
		if err != nil {
			res.Err = err
			return res
		}
		cells[i].tel = w.Telemetry()
		warmChecks[i] = func(n int) {
			for j := 0; j < n; j++ {
				if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
					panic(err)
				}
			}
		}
		warmChecks[i](1) // publish the cached verdict, then measure hits

		uw, uctx, err := telWorld(mode, true)
		if err != nil {
			res.Err = err
			return res
		}
		uncachedChecks[i] = func(n int) {
			for j := 0; j < n; j++ {
				if _, err := uw.Sys.CheckData(uctx, "/fs/f", secext.Read); err != nil {
					panic(err)
				}
			}
		}
	}

	const rounds = 5
	roundDur := defaultMinDur / 2
	for r := 0; r < rounds; r++ {
		for i := range modes {
			warm := measure(roundDur, warmChecks[i])
			if r == 0 || warm < cells[i].warm {
				cells[i].warm = warm
			}
			if warm > cells[i].warmMax {
				cells[i].warmMax = warm
			}
			uncached := measure(roundDur, uncachedChecks[i])
			if r == 0 || uncached < cells[i].uncached {
				cells[i].uncached = uncached
			}
		}
	}

	overhead := func(base, v float64) string {
		if base == 0 {
			return "-"
		}
		return fmt.Sprintf("%+.1f%%", (v/base-1)*100)
	}
	for i, mode := range modes {
		c := cells[i]
		sampled := "-"
		if snap := c.tel.Snapshot(); snap.Mode != "off" {
			sampled = fmt.Sprintf("%d", snap.TracesSampled)
		}
		t.add(mode.String(),
			ns(c.warm), overhead(cells[0].warm, c.warm),
			fmt.Sprintf("%.0f%%", (c.warmMax/c.warm-1)*100),
			ns(c.uncached), overhead(cells[0].uncached, c.uncached),
			sampled)
	}

	res.setTable(t)
	return res
}
