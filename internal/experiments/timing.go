package experiments

import (
	"fmt"
	"strconv"
	"time"

	"secext"
	"secext/internal/acl"
	"secext/internal/baseline"
	"secext/internal/baseline/domains"
	"secext/internal/baseline/ntacl"
	"secext/internal/baseline/sandbox"
	"secext/internal/baseline/unixmode"
	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/lattice"
	"secext/internal/monitor"
	"secext/internal/names"
	"secext/internal/subject"
)

// benchWorld builds a quiet world (audit off) with one principal and
// one readable file for check-latency experiments.
func benchWorld() (*secext.World, *secext.Context, error) {
	return checkWorld(false)
}

// E1 compares single access-check latency across the models.
func E1() Result {
	res := Result{ID: "E1", Title: "Access-check latency by model (audit off)"}
	w, ctx, err := benchWorld()
	if err != nil {
		res.Err = err
		return res
	}
	t := &table{header: []string{"model / check", "ns/op"}}

	// secext full mediation: resolve + DAC + MAC on a depth-2 path.
	full := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if _, err := w.Sys.CheckData(ctx, "/fs/f", secext.Read); err != nil {
				panic(err)
			}
		}
	})
	t.add("secext DAC+MAC (resolve+check)", ns(full))

	// The same check swept over monitor pipeline depth (E12 has the
	// full uncached/warm split; these rows anchor it in E1's table).
	for _, st := range pipelineStacks() {
		dw, dctx, err := benchWorld()
		if err != nil {
			res.Err = err
			return res
		}
		dw.Sys.Names().SetPipeline(monitor.NewPipeline(st.guards...))
		depth := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := dw.Sys.CheckData(dctx, "/fs/f", secext.Read); err != nil {
					panic(err)
				}
			}
		})
		t.add(fmt.Sprintf("secext pipeline %s (depth %d)", st.name, len(st.guards)), ns(depth))
	}

	// Isolated DAC decision.
	a := acl.New(acl.Allow("alice", acl.Read|acl.Write), acl.AllowEveryone(acl.List))
	dacOnly := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if !a.Check(ctx, acl.Read) {
				panic("deny")
			}
		}
	})
	t.add("secext DAC only (ACL decision)", ns(dacOnly))

	// Isolated MAC decision.
	obj := ctx.Class()
	macOnly := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if !ctx.Class().CanRead(obj) {
				panic("deny")
			}
		}
	})
	t.add("secext MAC only (dominance)", ns(macOnly))

	// Baselines.
	sb := sandbox.New([]string{"trusted"}, []string{"/fs"})
	t.add("java-sandbox", ns(measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			sb.CheckCall("alice", "/svc/x")
		}
	})))
	dm := domains.New()
	dm.DefineDomain("fs", "/svc/fs")
	_ = dm.Link("alice", "fs")
	t.add("spin-domains", ns(measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			dm.CheckCall("alice", "/svc/fs/read")
		}
	})))
	ux := unixmode.New()
	ux.SetObject("/fs/f", "alice", "staff", 0o644)
	t.add("unix-modes", ns(measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			ux.CheckData("alice", "/fs/f", baseline.OpRead)
		}
	})))
	nt := ntacl.New()
	nt.SetACL("/fs/f", ntacl.Entry{Subject: "alice", Rights: ntacl.Read | ntacl.Write})
	t.add("nt-acl", ns(measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			nt.Check("alice", "/fs/f", ntacl.Read)
		}
	})))
	res.setTable(t)
	return res
}

// aclSubject is a minimal subject for ACL microbenchmarks.
type aclSubject string

func (s aclSubject) SubjectName() string  { return string(s) }
func (s aclSubject) MemberOf(string) bool { return false }

// buildACL returns an ACL with n allow entries for distinct principals.
func buildACL(n int) *acl.ACL {
	a := acl.New()
	for i := 0; i < n; i++ {
		a.Add(acl.Allow("p"+strconv.Itoa(i), acl.Read))
	}
	return a
}

// E2 scales the ACL size; deny-overrides must scan every entry, so the
// cost is linear regardless of where the subject's entry sits.
func E2() Result {
	res := Result{ID: "E2", Title: "DAC decision vs ACL size (deny-overrides scans all entries)"}
	t := &table{header: []string{"entries", "hit first", "hit last", "miss (deny)"}}
	for _, size := range []int{1, 4, 16, 64, 256, 1024} {
		a := buildACL(size)
		first := aclSubject("p0")
		last := aclSubject("p" + strconv.Itoa(size-1))
		miss := aclSubject("nobody")
		mf := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				a.Check(first, acl.Read)
			}
		})
		ml := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				a.Check(last, acl.Read)
			}
		})
		mm := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				a.Check(miss, acl.Read)
			}
		})
		t.add(strconv.Itoa(size), ns(mf), ns(ml), ns(mm))
	}
	res.setTable(t)
	return res
}

// E3 scales the category universe; bitset dominance should stay flat
// until sets exceed machine words.
func E3() Result {
	res := Result{ID: "E3", Title: "MAC lattice ops vs category-universe size (bitset classes)"}
	t := &table{header: []string{"categories", "dominates", "join", "meet"}}
	for _, size := range []int{4, 16, 64, 256, 1024} {
		cats := make([]string, size)
		for i := range cats {
			cats[i] = "c" + strconv.Itoa(i)
		}
		lat, err := lattice.NewWithUniverse([]string{"lo", "hi"}, cats)
		if err != nil {
			res.Err = err
			return res
		}
		// a holds the even categories, b the first half: realistic
		// partial overlap.
		var aCats, bCats []string
		for i := 0; i < size; i += 2 {
			aCats = append(aCats, cats[i])
		}
		bCats = cats[:size/2]
		a := lat.MustClass("hi", aCats...)
		b := lat.MustClass("lo", bCats...)
		md := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				a.Dominates(b)
			}
		})
		mj := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				a.Join(b)
			}
		})
		mm := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				a.Meet(b)
			}
		})
		t.add(strconv.Itoa(size), ns(md), ns(mj), ns(mm))
	}
	res.setTable(t)
	return res
}

// deepNameWorld builds a chain /n1/n2/.../nDepth/leaf with listable
// interior nodes.
func deepNameWorld(depth int) (*core.System, *subject.Context, string, error) {
	sys, err := core.NewSystem(core.Options{
		Levels: []string{"lo", "hi"}, DisableAudit: true,
	})
	if err != nil {
		return nil, nil, "", err
	}
	listable := acl.New(acl.AllowEveryone(acl.List))
	path := ""
	for i := 0; i < depth-1; i++ {
		path += "/n" + strconv.Itoa(i)
		if _, err := sys.CreateNode(core.NodeSpec{Path: path, Kind: names.KindDomain, ACL: listable}); err != nil {
			return nil, nil, "", err
		}
	}
	leaf := path + "/leaf"
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: leaf, Kind: names.KindFile,
		ACL: acl.New(acl.AllowEveryone(acl.Read)),
	}); err != nil {
		return nil, nil, "", err
	}
	if _, err := sys.AddPrincipal("p", "lo"); err != nil {
		return nil, nil, "", err
	}
	ctx, err := sys.NewContext("p")
	return sys, ctx, leaf, err
}

// E4 scales name-resolution depth with per-level visibility checks on
// and off.
func E4() Result {
	res := Result{ID: "E4", Title: "Name resolution vs path depth (per-level checks on/off)"}
	t := &table{header: []string{"depth", "checked traversal", "unchecked traversal"}}
	for _, depth := range []int{2, 4, 8, 16, 32} {
		sys, ctx, leaf, err := deepNameWorld(depth)
		if err != nil {
			res.Err = err
			return res
		}
		on := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := sys.CheckData(ctx, leaf, acl.Read); err != nil {
					panic(err)
				}
			}
		})
		sys.Names().SetTraversalChecks(false)
		off := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := sys.CheckData(ctx, leaf, acl.Read); err != nil {
					panic(err)
				}
			}
		})
		t.add(strconv.Itoa(depth), ns(on), ns(off))
	}
	res.setTable(t)
	return res
}

// E5 scales the number of statically classed specializations on one
// service; selection scans all bindings.
func E5() Result {
	res := Result{ID: "E5", Title: "Class-based dispatch vs specializations per service"}
	t := &table{header: []string{"handlers", "select+invoke ns/op"}}
	for _, count := range []int{1, 2, 4, 8, 16, 32} {
		cats := make([]string, count)
		for i := range cats {
			cats[i] = "c" + strconv.Itoa(i)
		}
		sys, err := core.NewSystem(core.Options{
			Levels: []string{"lo", "hi"}, Categories: cats, DisableAudit: true,
		})
		if err != nil {
			res.Err = err
			return res
		}
		noop := func(ctx *subject.Context, arg any) (any, error) { return nil, nil }
		err = sys.RegisterService(core.ServiceSpec{
			Path: "/s", ACL: acl.New(acl.AllowEveryone(acl.Execute)),
			Base: dispatch.Binding{Owner: "base", Handler: noop},
		})
		if err != nil {
			res.Err = err
			return res
		}
		for i := 0; i < count; i++ {
			b := dispatch.Binding{
				Owner:   "ext" + strconv.Itoa(i),
				Static:  sys.Lattice().MustClass("lo", cats[i]),
				Handler: noop,
			}
			if err := sys.Dispatcher().Extend("/s", b); err != nil {
				res.Err = err
				return res
			}
		}
		if _, err := sys.AddPrincipal("caller", "hi:{"+cats[count-1]+"}"); err != nil {
			res.Err = err
			return res
		}
		ctx, err := sys.NewContext("caller")
		if err != nil {
			res.Err = err
			return res
		}
		m := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := sys.Call(ctx, "/s", nil); err != nil {
					panic(err)
				}
			}
		})
		t.add(strconv.Itoa(count), ns(m))
	}
	res.setTable(t)
	return res
}

// linkExt is a no-op extension with many imports.
type linkExt struct{}

func (linkExt) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	return map[string]secext.Handler{}, nil
}

// E6 measures link time vs import count: the cost SPIN pays once so
// calls can skip re-checking.
func E6() Result {
	res := Result{ID: "E6", Title: "Extension link time vs number of imports"}
	t := &table{header: []string{"imports", "link time", "per import"}}
	for _, count := range []int{1, 8, 64, 256} {
		sys, err := core.NewSystem(core.Options{
			Levels: []string{"lo"}, DisableAudit: true,
		})
		if err != nil {
			res.Err = err
			return res
		}
		noop := func(ctx *subject.Context, arg any) (any, error) { return nil, nil }
		imports := make([]string, count)
		for i := 0; i < count; i++ {
			p := "/s" + strconv.Itoa(i)
			if err := sys.RegisterService(core.ServiceSpec{
				Path: p, ACL: acl.New(acl.AllowEveryone(acl.Execute)),
				Base: dispatch.Binding{Owner: "b", Handler: noop},
			}); err != nil {
				res.Err = err
				return res
			}
			imports[i] = p
		}
		if _, err := sys.AddPrincipal("vendor", "lo"); err != nil {
			res.Err = err
			return res
		}
		tok, err := sys.Registry().IssueToken("vendor")
		if err != nil {
			res.Err = err
			return res
		}
		seq := 0
		perLink := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				m := secext.Manifest{
					Name:      "e" + strconv.Itoa(seq),
					Principal: "vendor", Token: tok,
					Imports: imports,
					Code:    func() secext.Extension { return linkExt{} },
				}
				seq++
				if _, err := sys.Loader().Load(m); err != nil {
					panic(err)
				}
			}
		})
		t.add(strconv.Itoa(count), ns(perLink), ns(perLink/float64(count)))
	}
	res.setTable(t)
	return res
}

// E7 measures the end-to-end null-call overhead of mediation and its
// ablations.
func E7() Result {
	res := Result{ID: "E7", Title: "Null service call: mediation and audit ablations"}
	sys, err := core.NewSystem(core.Options{
		Levels: []string{"lo", "hi"}, AuditCapacity: 4096,
	})
	if err != nil {
		res.Err = err
		return res
	}
	noop := func(ctx *subject.Context, arg any) (any, error) { return nil, nil }
	if err := sys.RegisterService(core.ServiceSpec{
		Path: "/null", ACL: acl.New(acl.AllowEveryone(acl.Execute)),
		Base: dispatch.Binding{Owner: "b", Handler: noop},
	}); err != nil {
		res.Err = err
		return res
	}
	if _, err := sys.AddPrincipal("p", "lo"); err != nil {
		res.Err = err
		return res
	}
	ctx, err := sys.NewContext("p")
	if err != nil {
		res.Err = err
		return res
	}
	t := &table{header: []string{"variant", "ns/op", "overhead vs raw"}}

	raw := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if _, err := sys.Dispatcher().Invoke("/null", ctx, nil); err != nil {
				panic(err)
			}
		}
	})
	t.add("raw dispatch (no mediation)", ns(raw), "1.0x")

	sys.Audit().SetEnabled(false)
	medOff := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if _, err := sys.Call(ctx, "/null", nil); err != nil {
				panic(err)
			}
		}
	})
	t.add("mediated, audit off", ns(medOff), ratio(medOff, raw))

	sys.Audit().SetEnabled(true)
	medOn := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if _, err := sys.Call(ctx, "/null", nil); err != nil {
				panic(err)
			}
		}
	})
	t.add("mediated, audit on", ns(medOn), ratio(medOn, raw))

	sys.Audit().SetEnabled(false)
	sys.SetTrustLinkTime(true)
	linked := measure(defaultMinDur, func(n int) {
		for i := 0; i < n; i++ {
			if _, err := sys.CallLinked(ctx, "/null", nil); err != nil {
				panic(err)
			}
		}
	})
	t.add("linked call, trust link time", ns(linked), ratio(linked, raw))
	res.setTable(t)
	return res
}

func ratio(v, base float64) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", v/base)
}

// E8 measures the DAC group-membership closure vs nesting depth.
func E8() Result {
	res := Result{ID: "E8", Title: "Group-entry decision vs membership nesting depth"}
	t := &table{header: []string{"nesting depth", "check via group entry"}}
	for _, depth := range []int{1, 2, 4, 8, 16} {
		sys, err := core.NewSystem(core.Options{Levels: []string{"lo"}, DisableAudit: true})
		if err != nil {
			res.Err = err
			return res
		}
		reg := sys.Registry()
		if _, err := sys.AddPrincipal("alice", "lo"); err != nil {
			res.Err = err
			return res
		}
		// g0 <- g1 <- ... <- g(depth-1); alice in g0; entry names the
		// outermost group.
		for i := 0; i < depth; i++ {
			if err := reg.AddGroup("g" + strconv.Itoa(i)); err != nil {
				res.Err = err
				return res
			}
		}
		if err := reg.AddMember("g0", "alice"); err != nil {
			res.Err = err
			return res
		}
		for i := 1; i < depth; i++ {
			if err := reg.AddMember("g"+strconv.Itoa(i), "g"+strconv.Itoa(i-1)); err != nil {
				res.Err = err
				return res
			}
		}
		a := acl.New(acl.AllowGroup("g"+strconv.Itoa(depth-1), acl.Read))
		ctx, err := sys.NewContext("alice")
		if err != nil {
			res.Err = err
			return res
		}
		m := measure(defaultMinDur, func(n int) {
			for i := 0; i < n; i++ {
				if !a.Check(ctx, acl.Read) {
					panic("deny")
				}
			}
		})
		t.add(strconv.Itoa(depth), ns(m))
	}
	res.setTable(t)
	return res
}

var _ = time.Now // keep the time import obvious for measure
