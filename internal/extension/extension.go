// Package extension implements the paper's unit of extensibility: "units
// of code, which we call extensions, can be dynamically loaded and
// linked into the base system and consequently become an integral part
// of the base system" (§1.1).
//
// A real deployment of the model would load verified native or bytecode
// extensions; Go's plugin mechanism is too platform-limited to carry the
// reproduction, so an extension here is an in-process Go value described
// by a Manifest. The substitution is behavior-preserving for the paper's
// purposes because the security model never inspects machine code: it
// mediates the *interfaces* — the declared imports an extension may call
// and the declared services it may extend — and those paths are
// exercised identically (see DESIGN.md, Substitutions).
//
// Loading follows SPIN's safe-dynamic-linking discipline: every import
// is access-checked at link time and materialized as a capability, so
// the per-call fast path does not need to re-resolve names (the E6
// experiment measures exactly this trade).
package extension

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"

	"secext/internal/dispatch"
	"secext/internal/lattice"
	"secext/internal/names"
	"secext/internal/principal"
	"secext/internal/subject"
)

// Errors returned by verification and loading.
var (
	ErrVerify         = errors.New("extension: manifest verification failed")
	ErrAuth           = errors.New("extension: authentication failed")
	ErrLink           = errors.New("extension: link denied")
	ErrAlreadyLoaded  = errors.New("extension: already loaded")
	ErrNotLoaded      = errors.New("extension: not loaded")
	ErrMissingHandler = errors.New("extension: handler missing for extended service")
	ErrUnknownImport  = errors.New("extension: import not in manifest")
)

// Extension is the code side of an extension. Init is called once at
// load time with the linked capability table; it returns the handler for
// each service path listed in the manifest's Extends set.
type Extension interface {
	Init(lk *Linkage) (map[string]dispatch.Handler, error)
}

// Factory constructs a fresh Extension instance at load time.
type Factory func() Extension

// Manifest is the authority declaration of an extension: who it runs
// for, what it calls, what it extends, and at what static class. The
// verifier treats the manifest as the extension's complete authority —
// the stand-in for the type-safety guarantee the paper assumes from the
// language runtime.
type Manifest struct {
	// Name uniquely identifies the extension.
	Name string
	// Principal is the responsible principal; must match Token.
	Principal string
	// Token authenticates the principal (principal.Registry.IssueToken).
	Token string
	// Imports lists the service paths the extension may call.
	Imports []string
	// Extends lists the service paths the extension specializes.
	Extends []string
	// StaticClass optionally pins the extension to a class label
	// (lattice.ParseClass syntax). Empty means the extension is
	// dynamic: it runs at its caller's class (§2.2).
	StaticClass string
	// Code constructs the implementation.
	Code Factory
}

// Digest returns the SHA-256 digest of the manifest's authority-relevant
// fields in canonical form. Two manifests with the same digest claim
// identical authority.
func (m Manifest) Digest() string {
	var b strings.Builder
	b.WriteString("name=" + m.Name + "\n")
	b.WriteString("principal=" + m.Principal + "\n")
	imports := append([]string(nil), m.Imports...)
	sort.Strings(imports)
	b.WriteString("imports=" + strings.Join(imports, ",") + "\n")
	extends := append([]string(nil), m.Extends...)
	sort.Strings(extends)
	b.WriteString("extends=" + strings.Join(extends, ",") + "\n")
	b.WriteString("class=" + m.StaticClass + "\n")
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Verify performs the structural checks a real system would back with
// language safety or software fault isolation: well-formed name, valid
// absolute paths without duplicates, and present code.
func (m Manifest) Verify() error {
	if m.Name == "" || strings.ContainsAny(m.Name, " \t\n/@;") {
		return fmt.Errorf("%w: bad name %q", ErrVerify, m.Name)
	}
	if m.Principal == "" {
		return fmt.Errorf("%w: no principal", ErrVerify)
	}
	if m.Code == nil {
		return fmt.Errorf("%w: no code", ErrVerify)
	}
	seen := make(map[string]bool, len(m.Imports)+len(m.Extends))
	for _, set := range [][]string{m.Imports, m.Extends} {
		for _, p := range set {
			if _, err := names.SplitPath(p); err != nil {
				return fmt.Errorf("%w: path %q: %v", ErrVerify, p, err)
			}
		}
	}
	for _, p := range m.Imports {
		if seen["i"+p] {
			return fmt.Errorf("%w: duplicate import %q", ErrVerify, p)
		}
		seen["i"+p] = true
	}
	for _, p := range m.Extends {
		if seen["e"+p] {
			return fmt.Errorf("%w: duplicate extends %q", ErrVerify, p)
		}
		seen["e"+p] = true
	}
	return nil
}

// Host is the view of the base system the loader links against. The
// reference monitor (internal/core) implements it; tests may substitute
// fakes. Every method mediates: a Host implementation performs the
// access checks and audit for each call.
type Host interface {
	// Authenticate resolves a token to a principal.
	Authenticate(token string) (*principal.Principal, error)
	// ParseClass parses a static class label.
	ParseClass(label string) (lattice.Class, error)
	// CheckImport verifies at link time that ctx may call path
	// (execute mode plus MAC read).
	CheckImport(ctx *subject.Context, path string) error
	// CheckExtend verifies that ctx may extend path.
	CheckExtend(ctx *subject.Context, path string) error
	// Call invokes the service at path on behalf of ctx, performing
	// the full call-time access check.
	Call(ctx *subject.Context, path string, arg any) (any, error)
	// CallLinked invokes the service at path through a previously
	// linked capability. Hosts that trust link-time checking (the SPIN
	// discipline) may skip the per-call DAC/MAC re-check here; hosts
	// configured for full mediation re-check exactly like Call.
	CallLinked(ctx *subject.Context, path string, arg any) (any, error)
	// Extend registers a specialization at path.
	Extend(ctx *subject.Context, path string, b dispatch.Binding) error
	// Retract removes the specializations owner registered at path.
	Retract(path, owner string) error
}

// Capability is a bound import: the right to call one service, granted
// at link time. Invoking it still presents the current thread's context
// to the host, so the dynamic class propagates per §2.2.
type Capability struct {
	path string
	host Host
}

// Path returns the service path the capability is bound to.
func (c *Capability) Path() string { return c.path }

// Invoke calls the bound service on behalf of ctx through the linked
// fast path: the host decides whether the link-time check suffices or a
// full call-time re-check runs.
func (c *Capability) Invoke(ctx *subject.Context, arg any) (any, error) {
	return c.host.CallLinked(ctx, c.path, arg)
}

// Linkage is the capability table handed to an extension at Init time:
// exactly its manifest imports, nothing else. An extension physically
// cannot name a service it did not declare.
type Linkage struct {
	caps map[string]*Capability
}

// Cap returns the capability for an imported path.
func (l *Linkage) Cap(path string) (*Capability, error) {
	c, ok := l.caps[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownImport, path)
	}
	return c, nil
}

// MustCap is Cap but panics on error; for extensions whose imports are
// static.
func (l *Linkage) MustCap(path string) *Capability {
	c, err := l.Cap(path)
	if err != nil {
		panic(err)
	}
	return c
}

// Imports returns the bound import paths, sorted.
func (l *Linkage) Imports() []string {
	out := make([]string, 0, len(l.caps))
	for p := range l.caps {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
