package extension

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"secext/internal/dispatch"
	"secext/internal/lattice"
	"secext/internal/principal"
	"secext/internal/subject"
)

// fakeHost implements Host with configurable denials.
type fakeHost struct {
	lat        *lattice.Lattice
	reg        *principal.Registry
	denyImport map[string]bool
	denyExtend map[string]bool
	extended   map[string][]dispatch.Binding
	calls      []string
}

func newFakeHost(t *testing.T) *fakeHost {
	t.Helper()
	lat, err := lattice.NewWithUniverse(
		[]string{"others", "organization", "local"},
		[]string{"dept-1", "dept-2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return &fakeHost{
		lat:        lat,
		reg:        principal.NewRegistry(lat),
		denyImport: map[string]bool{},
		denyExtend: map[string]bool{},
		extended:   map[string][]dispatch.Binding{},
	}
}

func (h *fakeHost) Authenticate(token string) (*principal.Principal, error) {
	return h.reg.Authenticate(token)
}

func (h *fakeHost) ParseClass(label string) (lattice.Class, error) {
	return h.lat.ParseClass(label)
}

func (h *fakeHost) CheckImport(ctx *subject.Context, path string) error {
	if h.denyImport[path] {
		return fmt.Errorf("denied import %s", path)
	}
	return nil
}

func (h *fakeHost) CheckExtend(ctx *subject.Context, path string) error {
	if h.denyExtend[path] {
		return fmt.Errorf("denied extend %s", path)
	}
	return nil
}

func (h *fakeHost) Call(ctx *subject.Context, path string, arg any) (any, error) {
	h.calls = append(h.calls, path)
	return "called:" + path, nil
}

func (h *fakeHost) CallLinked(ctx *subject.Context, path string, arg any) (any, error) {
	return h.Call(ctx, path, arg)
}

func (h *fakeHost) Extend(ctx *subject.Context, path string, b dispatch.Binding) error {
	if h.denyExtend[path] {
		return fmt.Errorf("denied extend %s", path)
	}
	h.extended[path] = append(h.extended[path], b)
	return nil
}

func (h *fakeHost) Retract(path, owner string) error {
	kept := h.extended[path][:0]
	for _, b := range h.extended[path] {
		if b.Owner != owner {
			kept = append(kept, b)
		}
	}
	h.extended[path] = kept
	return nil
}

func (h *fakeHost) token(t *testing.T, name, level string, cats ...string) string {
	t.Helper()
	if _, err := h.reg.Principal(name); err != nil {
		if _, err := h.reg.AddPrincipal(name, h.lat.MustClass(level, cats...)); err != nil {
			t.Fatal(err)
		}
	}
	tok, err := h.reg.IssueToken(name)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

// testExt is a trivial extension calling one import from its handler.
type testExt struct {
	lk *Linkage
}

func (e *testExt) Init(lk *Linkage) (map[string]dispatch.Handler, error) {
	e.lk = lk
	h := func(ctx *subject.Context, arg any) (any, error) {
		if cap, err := lk.Cap("/svc/mbuf/alloc"); err == nil {
			return cap.Invoke(ctx, arg)
		}
		return "no-import", nil
	}
	return map[string]dispatch.Handler{"/svc/fs/read": h}, nil
}

func validManifest(t *testing.T, h *fakeHost) Manifest {
	t.Helper()
	return Manifest{
		Name:      "newfs",
		Principal: "alice",
		Token:     h.token(t, "alice", "organization", "dept-1"),
		Imports:   []string{"/svc/mbuf/alloc"},
		Extends:   []string{"/svc/fs/read"},
		Code:      func() Extension { return &testExt{} },
	}
}

func TestVerify(t *testing.T) {
	h := newFakeHost(t)
	m := validManifest(t, h)
	if err := m.Verify(); err != nil {
		t.Fatalf("valid manifest: %v", err)
	}
	cases := []struct {
		mutate func(*Manifest)
		name   string
	}{
		{func(m *Manifest) { m.Name = "" }, "empty name"},
		{func(m *Manifest) { m.Name = "a b" }, "space in name"},
		{func(m *Manifest) { m.Name = "a/b" }, "slash in name"},
		{func(m *Manifest) { m.Principal = "" }, "no principal"},
		{func(m *Manifest) { m.Code = nil }, "no code"},
		{func(m *Manifest) { m.Imports = []string{"relative"} }, "relative import"},
		{func(m *Manifest) { m.Imports = []string{"/a", "/a"} }, "dup import"},
		{func(m *Manifest) { m.Extends = []string{"/b", "/b"} }, "dup extends"},
		{func(m *Manifest) { m.Extends = []string{"//x"} }, "bad extends path"},
	}
	for _, tc := range cases {
		mm := validManifest(t, h)
		tc.mutate(&mm)
		if err := mm.Verify(); !errors.Is(err, ErrVerify) {
			t.Errorf("%s: got %v, want ErrVerify", tc.name, err)
		}
	}
}

func TestDigestStability(t *testing.T) {
	h := newFakeHost(t)
	a := validManifest(t, h)
	b := validManifest(t, h)
	b.Token = "different-token" // token is not authority
	b.Code = func() Extension { return nil }
	if a.Digest() != b.Digest() {
		t.Error("digest must depend only on authority fields")
	}
	c := validManifest(t, h)
	c.Imports = append(c.Imports, "/svc/net/send")
	if a.Digest() == c.Digest() {
		t.Error("digest must change with imports")
	}
	d := validManifest(t, h)
	d.StaticClass = "others"
	if a.Digest() == d.Digest() {
		t.Error("digest must change with static class")
	}
	// Import order must not matter.
	e := validManifest(t, h)
	e.Imports = []string{"/b", "/a"}
	f := validManifest(t, h)
	f.Imports = []string{"/a", "/b"}
	if e.Digest() != f.Digest() {
		t.Error("digest must canonicalize import order")
	}
}

func TestLoadHappyPath(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)
	m := validManifest(t, h)
	rec, err := l.Load(m)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if rec.Digest != m.Digest() {
		t.Error("digest mismatch")
	}
	if rec.Context.SubjectName() != "alice" {
		t.Errorf("context principal = %s", rec.Context.SubjectName())
	}
	if got := rec.Linkage.Imports(); len(got) != 1 || got[0] != "/svc/mbuf/alloc" {
		t.Errorf("linkage = %v", got)
	}
	if len(h.extended["/svc/fs/read"]) != 1 || h.extended["/svc/fs/read"][0].Owner != "newfs" {
		t.Errorf("registration = %v", h.extended)
	}
	if names := l.Names(); len(names) != 1 || names[0] != "newfs" {
		t.Errorf("Names = %v", names)
	}
	got, err := l.Get("newfs")
	if err != nil || got != rec {
		t.Errorf("Get: %v %v", got, err)
	}
}

func TestLoadStaticClassClamps(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)
	m := validManifest(t, h) // alice is organization:{dept-1}
	m.StaticClass = "others"
	rec, err := l.Load(m)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if rec.Context.Class().String() != "others" {
		t.Errorf("clamped context class = %s", rec.Context.Class())
	}
	if !rec.Static.Equal(h.lat.MustClass("others")) {
		t.Errorf("static = %s", rec.Static)
	}
	if h.extended["/svc/fs/read"][0].Static.String() != "others" {
		t.Error("binding must carry static class")
	}
}

func TestLoadBadStaticClass(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)
	m := validManifest(t, h)
	m.StaticClass = "not-a-level"
	if _, err := l.Load(m); !errors.Is(err, ErrVerify) {
		t.Errorf("got %v, want ErrVerify", err)
	}
}

func TestLoadAuthFailures(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)
	m := validManifest(t, h)
	m.Token = "garbage"
	if _, err := l.Load(m); !errors.Is(err, ErrAuth) {
		t.Errorf("bad token: got %v", err)
	}
	m2 := validManifest(t, h)
	m2.Principal = "bob" // token still names alice
	_ = h.token(t, "bob", "others")
	if _, err := l.Load(m2); !errors.Is(err, ErrAuth) {
		t.Errorf("principal mismatch: got %v", err)
	}
}

func TestLoadImportDenied(t *testing.T) {
	h := newFakeHost(t)
	h.denyImport["/svc/mbuf/alloc"] = true
	l := NewLoader(h)
	_, err := l.Load(validManifest(t, h))
	if !errors.Is(err, ErrLink) {
		t.Fatalf("got %v, want ErrLink", err)
	}
	if !strings.Contains(err.Error(), "/svc/mbuf/alloc") {
		t.Errorf("error must name the denied import: %v", err)
	}
	if len(l.Names()) != 0 {
		t.Error("failed load must not be recorded")
	}
}

func TestLoadExtendDenied(t *testing.T) {
	h := newFakeHost(t)
	h.denyExtend["/svc/fs/read"] = true
	l := NewLoader(h)
	if _, err := l.Load(validManifest(t, h)); !errors.Is(err, ErrLink) {
		t.Errorf("got %v, want ErrLink", err)
	}
	if len(h.extended["/svc/fs/read"]) != 0 {
		t.Error("denied extend must leave no registrations")
	}
}

func TestLoadDuplicate(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)
	if _, err := l.Load(validManifest(t, h)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(validManifest(t, h)); !errors.Is(err, ErrAlreadyLoaded) {
		t.Errorf("got %v, want ErrAlreadyLoaded", err)
	}
}

// badExt returns handlers that do not match the manifest.
type badExt struct {
	handlers map[string]dispatch.Handler
	initErr  error
}

func (e *badExt) Init(lk *Linkage) (map[string]dispatch.Handler, error) {
	return e.handlers, e.initErr
}

func TestLoadHandlerMismatch(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)

	// Missing handler for a declared extend.
	m := validManifest(t, h)
	m.Name = "missing"
	m.Code = func() Extension { return &badExt{handlers: map[string]dispatch.Handler{}} }
	if _, err := l.Load(m); !errors.Is(err, ErrMissingHandler) {
		t.Errorf("missing handler: got %v", err)
	}

	// Handler for an undeclared service.
	m2 := validManifest(t, h)
	m2.Name = "undeclared"
	m2.Code = func() Extension {
		return &badExt{handlers: map[string]dispatch.Handler{
			"/svc/fs/read": func(ctx *subject.Context, arg any) (any, error) { return nil, nil },
			"/svc/fs/evil": func(ctx *subject.Context, arg any) (any, error) { return nil, nil },
		}}
	}
	if _, err := l.Load(m2); !errors.Is(err, ErrVerify) {
		t.Errorf("undeclared handler: got %v", err)
	}

	// Init error.
	m3 := validManifest(t, h)
	m3.Name = "initfail"
	m3.Code = func() Extension { return &badExt{initErr: errors.New("boom")} }
	if _, err := l.Load(m3); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("init error: got %v", err)
	}

	// Nil instance.
	m4 := validManifest(t, h)
	m4.Name = "nilinst"
	m4.Code = func() Extension { return nil }
	if _, err := l.Load(m4); !errors.Is(err, ErrVerify) {
		t.Errorf("nil instance: got %v", err)
	}
}

func TestUnload(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)
	if _, err := l.Load(validManifest(t, h)); err != nil {
		t.Fatal(err)
	}
	if err := l.Unload("newfs"); err != nil {
		t.Fatalf("Unload: %v", err)
	}
	if len(h.extended["/svc/fs/read"]) != 0 {
		t.Error("unload must retract specializations")
	}
	if err := l.Unload("newfs"); !errors.Is(err, ErrNotLoaded) {
		t.Errorf("double unload: got %v", err)
	}
	if _, err := l.Get("newfs"); !errors.Is(err, ErrNotLoaded) {
		t.Errorf("Get after unload: got %v", err)
	}
	// Reload after unload is fine.
	if _, err := l.Load(validManifest(t, h)); err != nil {
		t.Errorf("reload: %v", err)
	}
}

func TestCapabilityInvoke(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)
	rec, err := l.Load(validManifest(t, h))
	if err != nil {
		t.Fatal(err)
	}
	cap := rec.Linkage.MustCap("/svc/mbuf/alloc")
	if cap.Path() != "/svc/mbuf/alloc" {
		t.Errorf("Path = %s", cap.Path())
	}
	out, err := cap.Invoke(rec.Context, nil)
	if err != nil || out != "called:/svc/mbuf/alloc" {
		t.Errorf("Invoke = %v, %v", out, err)
	}
	if _, err := rec.Linkage.Cap("/svc/other"); !errors.Is(err, ErrUnknownImport) {
		t.Errorf("Cap unknown: got %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCap on unknown import must panic")
		}
	}()
	rec.Linkage.MustCap("/nope")
}
