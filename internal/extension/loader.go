package extension

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"secext/internal/dispatch"
	"secext/internal/lattice"
	"secext/internal/subject"
)

// Loaded records one successfully linked extension.
type Loaded struct {
	Manifest Manifest
	Digest   string
	// Context is the extension's own thread of control: the
	// authenticated principal's class, clamped by the static class.
	Context *subject.Context
	// Static is the parsed static class (zero for dynamic extensions).
	Static lattice.Class
	// Linkage is the capability table built at link time.
	Linkage *Linkage
	// Handlers is what the extension registered, keyed by path.
	Handlers map[string]dispatch.Handler
}

// Loader verifies, authenticates, links, and registers extensions
// against a Host. It is safe for concurrent use.
type Loader struct {
	host Host

	mu     sync.Mutex
	loaded map[string]*Loaded
}

// NewLoader creates a loader bound to the host system.
func NewLoader(host Host) *Loader {
	return &Loader{host: host, loaded: make(map[string]*Loaded)}
}

// Load runs the full admission pipeline for a manifest:
//
//  1. structural verification (the safety stand-in);
//  2. authentication of the responsible principal;
//  3. static-class parsing and clamping of the extension's context;
//  4. link-time access check of every import, building the capability
//     table (SPIN-style: checked once, used many times);
//  5. extend-time access check and registration of every declared
//     specialization.
//
// Any failure unwinds completely: a partially linked extension is never
// left registered.
func (l *Loader) Load(m Manifest) (*Loaded, error) {
	if err := m.Verify(); err != nil {
		return nil, err
	}
	prin, err := l.host.Authenticate(m.Token)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAuth, err)
	}
	if prin.SubjectName() != m.Principal {
		return nil, fmt.Errorf("%w: token names %q, manifest claims %q",
			ErrAuth, prin.SubjectName(), m.Principal)
	}
	ctx, err := subject.New(prin)
	if err != nil {
		return nil, err
	}
	var static lattice.Class
	if m.StaticClass != "" {
		static, err = l.host.ParseClass(m.StaticClass)
		if err != nil {
			return nil, fmt.Errorf("%w: static class: %v", ErrVerify, err)
		}
		ctx, err = ctx.Clamp(static)
		if err != nil {
			return nil, err
		}
	}

	l.mu.Lock()
	if _, dup := l.loaded[m.Name]; dup {
		l.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrAlreadyLoaded, m.Name)
	}
	// Reserve the name while linking so concurrent loads of the same
	// manifest cannot interleave; the placeholder is replaced or
	// removed below.
	l.loaded[m.Name] = nil
	l.mu.Unlock()

	rec, err := l.link(m, ctx, static)

	l.mu.Lock()
	if err != nil {
		delete(l.loaded, m.Name)
	} else {
		l.loaded[m.Name] = rec
	}
	l.mu.Unlock()
	return rec, err
}

func (l *Loader) link(m Manifest, ctx *subject.Context, static lattice.Class) (*Loaded, error) {
	// Link imports.
	caps := make(map[string]*Capability, len(m.Imports))
	for _, p := range m.Imports {
		if err := l.host.CheckImport(ctx, p); err != nil {
			return nil, fmt.Errorf("%w: import %s: %v", ErrLink, p, err)
		}
		caps[p] = &Capability{path: p, host: l.host}
	}
	lk := &Linkage{caps: caps}

	// Pre-check extends before running extension code.
	for _, p := range m.Extends {
		if err := l.host.CheckExtend(ctx, p); err != nil {
			return nil, fmt.Errorf("%w: extend %s: %v", ErrLink, p, err)
		}
	}

	// Instantiate and initialize.
	inst := m.Code()
	if inst == nil {
		return nil, fmt.Errorf("%w: factory returned nil", ErrVerify)
	}
	handlers, err := inst.Init(lk)
	if err != nil {
		return nil, fmt.Errorf("extension: %s init: %w", m.Name, err)
	}
	for _, p := range m.Extends {
		if handlers[p] == nil {
			return nil, fmt.Errorf("%w: %s", ErrMissingHandler, p)
		}
	}
	for p := range handlers {
		declared := false
		for _, q := range m.Extends {
			if p == q {
				declared = true
				break
			}
		}
		if !declared {
			return nil, fmt.Errorf("%w: handler for undeclared service %s", ErrVerify, p)
		}
	}

	// Register specializations; roll back on failure.
	registered := make([]string, 0, len(m.Extends))
	for _, p := range m.Extends {
		b := dispatch.Binding{Owner: m.Name, Static: static, Handler: handlers[p]}
		if err := l.host.Extend(ctx, p, b); err != nil {
			for _, q := range registered {
				_ = l.host.Retract(q, m.Name)
			}
			return nil, fmt.Errorf("%w: extend %s: %v", ErrLink, p, err)
		}
		registered = append(registered, p)
	}

	return &Loaded{
		Manifest: m,
		Digest:   m.Digest(),
		Context:  ctx,
		Static:   static,
		Linkage:  lk,
		Handlers: handlers,
	}, nil
}

// Unload retracts every specialization the named extension registered
// and forgets it.
func (l *Loader) Unload(name string) error {
	l.mu.Lock()
	rec, ok := l.loaded[name]
	if !ok || rec == nil {
		l.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotLoaded, name)
	}
	delete(l.loaded, name)
	l.mu.Unlock()
	for _, p := range rec.Manifest.Extends {
		if err := l.host.Retract(p, name); err != nil {
			return err
		}
	}
	return nil
}

// Revalidate re-runs every loaded extension's link-time checks against
// the *current* protection state and unloads the ones that no longer
// pass. It closes the gap link-time checking opens when ACLs or classes
// change after an extension linked (the trade E7/E6 measure): calling
// Revalidate after a policy change restores the invariant that every
// loaded extension could link today. It returns the names unloaded, in
// sorted order.
func (l *Loader) Revalidate() ([]string, error) {
	var dropped []string
	for _, name := range l.Names() {
		rec, err := l.Get(name)
		if err != nil {
			continue // unloaded concurrently
		}
		if l.stillLinks(rec) {
			continue
		}
		if err := l.Unload(name); err != nil && !errors.Is(err, ErrNotLoaded) {
			return dropped, err
		}
		dropped = append(dropped, name)
	}
	sort.Strings(dropped)
	return dropped, nil
}

// stillLinks reports whether every import and extend of a loaded
// extension would still be granted now.
func (l *Loader) stillLinks(rec *Loaded) bool {
	for _, p := range rec.Manifest.Imports {
		if err := l.host.CheckImport(rec.Context, p); err != nil {
			return false
		}
	}
	for _, p := range rec.Manifest.Extends {
		if err := l.host.CheckExtend(rec.Context, p); err != nil {
			return false
		}
	}
	return true
}

// Get returns the record of a loaded extension.
func (l *Loader) Get(name string) (*Loaded, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, ok := l.loaded[name]
	if !ok || rec == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotLoaded, name)
	}
	return rec, nil
}

// Names returns the names of all loaded extensions, sorted.
func (l *Loader) Names() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.loaded))
	for n, rec := range l.loaded {
		if rec != nil {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
