package extension

import (
	"testing"
)

func TestRevalidateKeepsHealthyExtensions(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)
	if _, err := l.Load(validManifest(t, h)); err != nil {
		t.Fatal(err)
	}
	dropped, err := l.Revalidate()
	if err != nil {
		t.Fatalf("Revalidate: %v", err)
	}
	if len(dropped) != 0 {
		t.Errorf("dropped healthy extensions: %v", dropped)
	}
	if len(l.Names()) != 1 {
		t.Error("extension must remain loaded")
	}
}

func TestRevalidateDropsRevokedImport(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)
	if _, err := l.Load(validManifest(t, h)); err != nil {
		t.Fatal(err)
	}
	// Revoke the import after loading.
	h.denyImport["/svc/mbuf/alloc"] = true
	dropped, err := l.Revalidate()
	if err != nil {
		t.Fatalf("Revalidate: %v", err)
	}
	if len(dropped) != 1 || dropped[0] != "newfs" {
		t.Fatalf("dropped = %v, want [newfs]", dropped)
	}
	if len(l.Names()) != 0 {
		t.Error("revoked extension must be unloaded")
	}
	if len(h.extended["/svc/fs/read"]) != 0 {
		t.Error("revoked extension's specializations must be retracted")
	}
}

func TestRevalidateDropsRevokedExtend(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)
	if _, err := l.Load(validManifest(t, h)); err != nil {
		t.Fatal(err)
	}
	h.denyExtend["/svc/fs/read"] = true
	dropped, err := l.Revalidate()
	if err != nil {
		t.Fatalf("Revalidate: %v", err)
	}
	if len(dropped) != 1 {
		t.Fatalf("dropped = %v", dropped)
	}
}

func TestRevalidateMixedPopulation(t *testing.T) {
	h := newFakeHost(t)
	l := NewLoader(h)
	m1 := validManifest(t, h)
	if _, err := l.Load(m1); err != nil {
		t.Fatal(err)
	}
	m2 := validManifest(t, h)
	m2.Name = "other"
	m2.Imports = []string{"/svc/other/import"}
	if _, err := l.Load(m2); err != nil {
		t.Fatal(err)
	}
	h.denyImport["/svc/mbuf/alloc"] = true // hits only m1
	dropped, err := l.Revalidate()
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0] != "newfs" {
		t.Fatalf("dropped = %v", dropped)
	}
	if names := l.Names(); len(names) != 1 || names[0] != "other" {
		t.Errorf("Names = %v", names)
	}
}
