// Package fsys is an in-memory hierarchical file service mounted into
// the universal name space. Files are the paper's running example of
// protected objects: its §2.2 walk-through is about which applets can
// read which files, and §2.3 argues that one name space should protect
// files and services alike. Every file and directory here is a name-
// space node carrying an ACL and a security class; every operation is
// authorized by the reference monitor's single check path.
//
// Write semantics follow the paper's cautious reading of the
// *-property: destructive writes (Write, Truncate) require read AND
// write — i.e. the subject's class equals the file's — so that "subjects
// at a lower level of trust" cannot "blindly overwrite objects at a
// higher level of trust"; Append requires only write-append, the pure
// upgrade channel.
package fsys

import (
	"errors"
	"fmt"
	"sync"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/lattice"
	"secext/internal/names"
	"secext/internal/subject"
)

// Errors returned by the file service.
var (
	ErrNotFile = errors.New("fsys: not a file")
	ErrNotDir  = errors.New("fsys: not a directory")
)

// fileData is the payload of a file node. Node payloads are shared
// references, so the data carries its own lock.
type fileData struct {
	mu      sync.RWMutex
	content []byte
}

// Info describes a file or directory.
type Info struct {
	Path  string
	Kind  names.Kind
	Size  int
	Class lattice.Class
}

// FS is a file service rooted at one directory node of the name space.
type FS struct {
	sys  *core.System
	root string
}

// Mount creates the root directory node and returns the file service.
// Bootstrap operation: the mount itself is unchecked, everything after
// is mediated. The mount root is a multilevel directory (like an MLS
// /tmp): subjects at any class dominating the root's may create entries
// in it, each entry then protected at its own class.
func Mount(sys *core.System, root string, rootACL *acl.ACL, class lattice.Class) (*FS, error) {
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: root, Kind: names.KindDirectory, ACL: rootACL, Class: class,
		Multilevel: true,
	}); err != nil {
		return nil, err
	}
	return &FS{sys: sys, root: root}, nil
}

// MkdirMultilevel creates a multilevel directory: entries may be bound
// by any subject dominating the directory's class (see
// names.Node.Multilevel for the covert-channel trade-off).
func (f *FS) MkdirMultilevel(ctx *subject.Context, path string, a *acl.ACL, class lattice.Class) error {
	parent, name, err := splitParent(path)
	if err != nil {
		return err
	}
	_, err = f.sys.Bind(ctx, parent, names.BindSpec{
		Name: name, Kind: names.KindDirectory, ACL: a, Class: class, Multilevel: true,
	})
	return err
}

// Root returns the mount point path.
func (f *FS) Root() string { return f.root }

// Mkdir creates a directory. The subject needs write on the parent; the
// new directory's class must dominate the subject's (no write-down).
func (f *FS) Mkdir(ctx *subject.Context, path string, a *acl.ACL, class lattice.Class) error {
	parent, name, err := splitParent(path)
	if err != nil {
		return err
	}
	_, err = f.sys.Bind(ctx, parent, names.BindSpec{
		Name: name, Kind: names.KindDirectory, ACL: a, Class: class,
	})
	return err
}

// Create creates an empty file with the given protection.
func (f *FS) Create(ctx *subject.Context, path string, a *acl.ACL, class lattice.Class) error {
	parent, name, err := splitParent(path)
	if err != nil {
		return err
	}
	_, err = f.sys.Bind(ctx, parent, names.BindSpec{
		Name: name, Kind: names.KindFile, ACL: a, Class: class,
		Payload: &fileData{},
	})
	return err
}

// file resolves a checked node and asserts it is a file.
func file(n *names.Node) (*fileData, error) {
	d, ok := n.Payload().(*fileData)
	if !ok || n.Kind() != names.KindFile {
		return nil, fmt.Errorf("%w: %s", ErrNotFile, n.Path())
	}
	return d, nil
}

// Read returns a copy of the file contents (read mode; subject must
// dominate the file's class).
func (f *FS) Read(ctx *subject.Context, path string) ([]byte, error) {
	n, err := f.sys.CheckData(ctx, path, acl.Read)
	if err != nil {
		return nil, err
	}
	d, err := file(n)
	if err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]byte, len(d.content))
	copy(out, d.content)
	return out, nil
}

// Write destructively replaces the file contents. Requires read and
// write modes, which under MAC means the subject's class equals the
// file's: blind overwrites from below are impossible (§2.2).
func (f *FS) Write(ctx *subject.Context, path string, data []byte) error {
	n, err := f.sys.CheckData(ctx, path, acl.Read|acl.Write)
	if err != nil {
		return err
	}
	d, err := file(n)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.content = append(d.content[:0:0], data...)
	return nil
}

// Append adds data to the end of the file. Requires only write-append:
// a low subject may add to a high file without being able to read or
// destroy it.
func (f *FS) Append(ctx *subject.Context, path string, data []byte) error {
	n, err := f.sys.CheckData(ctx, path, acl.WriteAppend)
	if err != nil {
		return err
	}
	d, err := file(n)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.content = append(d.content, data...)
	return nil
}

// Truncate empties the file; destructive, so same rule as Write.
func (f *FS) Truncate(ctx *subject.Context, path string) error {
	n, err := f.sys.CheckData(ctx, path, acl.Read|acl.Write)
	if err != nil {
		return err
	}
	d, err := file(n)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.content = nil
	return nil
}

// Remove deletes a file or empty directory (delete on the node, write
// on the parent).
func (f *FS) Remove(ctx *subject.Context, path string) error {
	return f.sys.Unbind(ctx, path)
}

// Rename moves a file or directory to a new path. The node keeps its
// ACL and class; only the name moves.
func (f *FS) Rename(ctx *subject.Context, oldPath, newPath string) error {
	parent, name, err := splitParent(newPath)
	if err != nil {
		return err
	}
	return f.sys.Names().Rename(ctx, ctx.Class(), oldPath, parent, name)
}

// List enumerates a directory.
func (f *FS) List(ctx *subject.Context, path string) ([]string, error) {
	return f.sys.List(ctx, path)
}

// Stat describes the object at path (read mode not required; list-level
// visibility along the path plus read OR list on the node itself).
func (f *FS) Stat(ctx *subject.Context, path string) (Info, error) {
	n, err := f.sys.Resolve(ctx, path)
	if err != nil {
		return Info{}, err
	}
	info := Info{Path: n.Path(), Kind: n.Kind(), Class: n.Class()}
	if d, ok := n.Payload().(*fileData); ok {
		d.mu.RLock()
		info.Size = len(d.content)
		d.mu.RUnlock()
	}
	return info, nil
}

func splitParent(path string) (parent, name string, err error) {
	parts, err := names.SplitPath(path)
	if err != nil {
		return "", "", err
	}
	if len(parts) == 0 {
		return "", "", names.ErrRoot
	}
	return names.Join("/", parts[:len(parts)-1]...), parts[len(parts)-1], nil
}
