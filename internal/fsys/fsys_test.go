package fsys

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/lattice"
	"secext/internal/names"
	"secext/internal/subject"
)

type world struct {
	sys *core.System
	fs  *FS
}

func newWorld(t *testing.T) *world {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"myself", "dept-1", "dept-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	bot, _ := sys.Lattice().Bottom()
	rootACL := acl.New(acl.AllowEveryone(acl.List | acl.Write))
	fs, err := Mount(sys, "/fs", rootACL, bot)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct{ name, class string }{
		{"alice", "local:{myself,dept-1,dept-2}"},
		{"bob", "organization:{dept-1}"},
		{"carol", "organization:{dept-2}"},
		{"eve", "others"},
	} {
		if _, err := sys.AddPrincipal(p.name, p.class); err != nil {
			t.Fatal(err)
		}
	}
	return &world{sys: sys, fs: fs}
}

func (w *world) ctx(t *testing.T, name string) *subject.Context {
	t.Helper()
	ctx, err := w.sys.NewContext(name)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func ownerACL(name string) *acl.ACL {
	return acl.New(acl.Allow(name,
		acl.Read|acl.Write|acl.WriteAppend|acl.Delete|acl.Administrate|acl.List))
}

func TestCreateWriteRead(t *testing.T) {
	w := newWorld(t)
	eve := w.ctx(t, "eve") // bottom class matches the mount dir
	if err := w.fs.Create(eve, "/fs/note", ownerACL("eve"), eve.Class()); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := w.fs.Write(eve, "/fs/note", []byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := w.fs.Read(eve, "/fs/note")
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Read = %q, %v", got, err)
	}
	// Read copies: mutating the returned slice must not affect the file.
	got[0] = 'X'
	again, _ := w.fs.Read(eve, "/fs/note")
	if !bytes.Equal(again, []byte("hello")) {
		t.Error("Read must return a copy")
	}
	info, err := w.fs.Stat(eve, "/fs/note")
	if err != nil || info.Size != 5 || info.Kind != names.KindFile {
		t.Errorf("Stat = %+v, %v", info, err)
	}
	ls, err := w.fs.List(eve, "/fs")
	if err != nil || len(ls) != 1 || ls[0] != "note" {
		t.Errorf("List = %v, %v", ls, err)
	}
}

func TestDACIsolation(t *testing.T) {
	w := newWorld(t)
	eve := w.ctx(t, "eve")
	if err := w.fs.Create(eve, "/fs/secret", ownerACL("eve"), eve.Class()); err != nil {
		t.Fatal(err)
	}
	// mallory: another bottom-class principal without ACL entry.
	if _, err := w.sys.AddPrincipal("mallory", "others"); err != nil {
		t.Fatal(err)
	}
	mallory := w.ctx(t, "mallory")
	if _, err := w.fs.Read(mallory, "/fs/secret"); !core.IsDenied(err) {
		t.Errorf("mallory read: got %v", err)
	}
	if err := w.fs.Write(mallory, "/fs/secret", []byte("x")); !core.IsDenied(err) {
		t.Errorf("mallory write: got %v", err)
	}
	if err := w.fs.Remove(mallory, "/fs/secret"); !core.IsDenied(err) {
		t.Errorf("mallory remove: got %v", err)
	}
}

func TestMACCompartments(t *testing.T) {
	// §2.2: dept-1 and dept-2 applets cannot read each other's files;
	// the local user reads everything.
	w := newWorld(t)
	bob := w.ctx(t, "bob") // organization:{dept-1}
	everyoneACL := acl.New(acl.AllowEveryone(acl.Read | acl.Write | acl.WriteAppend))
	if err := w.fs.Create(bob, "/fs/dept1-data", everyoneACL, bob.Class()); err != nil {
		t.Fatal(err)
	}
	carol := w.ctx(t, "carol") // organization:{dept-2}
	if _, err := w.fs.Read(carol, "/fs/dept1-data"); !core.IsDenied(err) {
		t.Errorf("carol cross-compartment read: got %v", err)
	}
	alice := w.ctx(t, "alice") // local with all categories
	if _, err := w.fs.Read(alice, "/fs/dept1-data"); err != nil {
		t.Errorf("alice read: %v", err)
	}
	eve := w.ctx(t, "eve") // others
	if _, err := w.fs.Read(eve, "/fs/dept1-data"); !core.IsDenied(err) {
		t.Errorf("eve read up: got %v", err)
	}
}

func TestWriteAppendSemantics(t *testing.T) {
	// A low subject may append to a high file but never overwrite it.
	w := newWorld(t)
	bob := w.ctx(t, "bob")
	openACL := acl.New(acl.AllowEveryone(acl.Read | acl.Write | acl.WriteAppend))
	if err := w.fs.Create(bob, "/fs/journal", openACL, bob.Class()); err != nil {
		t.Fatal(err)
	}
	if err := w.fs.Write(bob, "/fs/journal", []byte("base\n")); err != nil {
		t.Fatal(err)
	}
	eve := w.ctx(t, "eve")
	// Append up: allowed.
	if err := w.fs.Append(eve, "/fs/journal", []byte("from-eve\n")); err != nil {
		t.Fatalf("append up: %v", err)
	}
	// Blind overwrite up: denied (needs read too).
	if err := w.fs.Write(eve, "/fs/journal", []byte("clobber")); !core.IsDenied(err) {
		t.Errorf("blind overwrite: got %v", err)
	}
	if err := w.fs.Truncate(eve, "/fs/journal"); !core.IsDenied(err) {
		t.Errorf("blind truncate: got %v", err)
	}
	// Eve cannot read what she appended to.
	if _, err := w.fs.Read(eve, "/fs/journal"); !core.IsDenied(err) {
		t.Errorf("eve read: got %v", err)
	}
	// Bob sees both contributions.
	got, err := w.fs.Read(bob, "/fs/journal")
	if err != nil || string(got) != "base\nfrom-eve\n" {
		t.Errorf("journal = %q, %v", got, err)
	}
	// Bob at the file's own class may overwrite.
	if err := w.fs.Write(bob, "/fs/journal", []byte("reset")); err != nil {
		t.Errorf("owner overwrite: %v", err)
	}
	// Alice (dominating, but not equal) cannot destructively write a
	// lower file: that would be a write-down.
	alice := w.ctx(t, "alice")
	if err := w.fs.Write(alice, "/fs/journal", []byte("x")); !core.IsDenied(err) {
		t.Errorf("write down: got %v", err)
	}
}

func TestMkdirHierarchy(t *testing.T) {
	w := newWorld(t)
	eve := w.ctx(t, "eve")
	dirACL := acl.New(
		acl.Allow("eve", acl.Write|acl.List|acl.Delete),
		acl.AllowEveryone(acl.List),
	)
	if err := w.fs.Mkdir(eve, "/fs/home", dirACL, eve.Class()); err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	if err := w.fs.Create(eve, "/fs/home/f", ownerACL("eve"), eve.Class()); err != nil {
		t.Fatalf("Create in dir: %v", err)
	}
	// Remove of non-empty dir fails.
	if err := w.fs.Remove(eve, "/fs/home"); !errors.Is(err, names.ErrNotEmpty) {
		t.Errorf("remove non-empty: got %v", err)
	}
	if err := w.fs.Remove(eve, "/fs/home/f"); err != nil {
		t.Fatalf("remove file: %v", err)
	}
	if err := w.fs.Remove(eve, "/fs/home"); err != nil {
		t.Fatalf("remove dir: %v", err)
	}
}

func TestNotAFile(t *testing.T) {
	w := newWorld(t)
	eve := w.ctx(t, "eve")
	dirACL := acl.New(acl.Allow("eve", acl.Read|acl.Write|acl.WriteAppend|acl.List))
	if err := w.fs.Mkdir(eve, "/fs/d", dirACL, eve.Class()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.fs.Read(eve, "/fs/d"); !errors.Is(err, ErrNotFile) {
		t.Errorf("read dir: got %v", err)
	}
	if err := w.fs.Write(eve, "/fs/d", nil); !errors.Is(err, ErrNotFile) {
		t.Errorf("write dir: got %v", err)
	}
	if err := w.fs.Append(eve, "/fs/d", nil); !errors.Is(err, ErrNotFile) {
		t.Errorf("append dir: got %v", err)
	}
	if err := w.fs.Truncate(eve, "/fs/d"); !errors.Is(err, ErrNotFile) {
		t.Errorf("truncate dir: got %v", err)
	}
}

func TestBadPaths(t *testing.T) {
	w := newWorld(t)
	eve := w.ctx(t, "eve")
	if err := w.fs.Create(eve, "relative", nil, eve.Class()); !errors.Is(err, names.ErrBadPath) {
		t.Errorf("relative create: got %v", err)
	}
	if err := w.fs.Create(eve, "/", nil, eve.Class()); !errors.Is(err, names.ErrRoot) {
		t.Errorf("create root: got %v", err)
	}
	if _, err := w.fs.Read(eve, "/fs/nope"); !errors.Is(err, names.ErrNotFound) {
		t.Errorf("read missing: got %v", err)
	}
}

func TestServices(t *testing.T) {
	w := newWorld(t)
	svcACL := acl.New(acl.AllowEveryone(acl.Execute | acl.List))
	bot, _ := w.sys.Lattice().Bottom()
	if _, err := w.sys.CreateNode(core.NodeSpec{Path: "/svc", Kind: names.KindDomain,
		ACL: acl.New(acl.AllowEveryone(acl.List))}); err != nil {
		t.Fatal(err)
	}
	paths, err := RegisterServices(w.sys, w.fs, "/svc/fs", svcACL, bot)
	if err != nil {
		t.Fatalf("RegisterServices: %v", err)
	}
	if len(paths) != 7 {
		t.Fatalf("paths = %v", paths)
	}
	eve := w.ctx(t, "eve")
	// Create through the service: owner-only ACL at caller class.
	if _, err := w.sys.Call(eve, "/svc/fs/create", Request{Path: "/fs/via-svc"}); err != nil {
		t.Fatalf("create via service: %v", err)
	}
	if _, err := w.sys.Call(eve, "/svc/fs/write", Request{Path: "/fs/via-svc", Data: []byte("d")}); err != nil {
		t.Fatalf("write via service: %v", err)
	}
	out, err := w.sys.Call(eve, "/svc/fs/read", Request{Path: "/fs/via-svc"})
	if err != nil || string(out.([]byte)) != "d" {
		t.Fatalf("read via service = %v, %v", out, err)
	}
	if _, err := w.sys.Call(eve, "/svc/fs/append", Request{Path: "/fs/via-svc", Data: []byte("2")}); err != nil {
		t.Fatalf("append via service: %v", err)
	}
	st, err := w.sys.Call(eve, "/svc/fs/stat", Request{Path: "/fs/via-svc"})
	if err != nil || st.(Info).Size != 2 {
		t.Fatalf("stat via service = %v, %v", st, err)
	}
	ls, err := w.sys.Call(eve, "/svc/fs/list", Request{Path: "/fs"})
	if err != nil || len(ls.([]string)) != 1 {
		t.Fatalf("list via service = %v, %v", ls, err)
	}
	// Another principal cannot read eve's file through the service:
	// the service runs at the caller's context, not its own (no
	// confused deputy).
	if _, err := w.sys.AddPrincipal("mallory", "others"); err != nil {
		t.Fatal(err)
	}
	mallory := w.ctx(t, "mallory")
	if _, err := w.sys.Call(mallory, "/svc/fs/read", Request{Path: "/fs/via-svc"}); !core.IsDenied(err) {
		t.Errorf("confused deputy read: got %v", err)
	}
	if _, err := w.sys.Call(mallory, "/svc/fs/remove", Request{Path: "/fs/via-svc"}); !core.IsDenied(err) {
		t.Errorf("confused deputy remove: got %v", err)
	}
	if _, err := w.sys.Call(eve, "/svc/fs/remove", Request{Path: "/fs/via-svc"}); err != nil {
		t.Errorf("owner remove via service: %v", err)
	}
	// Bad argument type.
	if _, err := w.sys.Call(eve, "/svc/fs/read", 42); err == nil {
		t.Error("bad request type must fail")
	}
}

func TestConcurrentFileAccess(t *testing.T) {
	w := newWorld(t)
	eve := w.ctx(t, "eve")
	openACL := acl.New(acl.AllowEveryone(acl.Read | acl.WriteAppend))
	if err := w.fs.Create(eve, "/fs/log", openACL, eve.Class()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := w.fs.Append(eve, "/fs/log", []byte("x")); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if _, err := w.fs.Read(eve, "/fs/log"); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := w.fs.Read(eve, "/fs/log")
	if err != nil || len(got) != 400 {
		t.Errorf("final size = %d, %v", len(got), err)
	}
}

func TestRename(t *testing.T) {
	w := newWorld(t)
	eve := w.ctx(t, "eve")
	full := acl.New(acl.Allow("eve",
		acl.Read|acl.Write|acl.WriteAppend|acl.Delete|acl.List))
	if err := w.fs.Create(eve, "/fs/old", full, eve.Class()); err != nil {
		t.Fatal(err)
	}
	if err := w.fs.Write(eve, "/fs/old", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.fs.Rename(eve, "/fs/old", "/fs/new"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	got, err := w.fs.Read(eve, "/fs/new")
	if err != nil || string(got) != "payload" {
		t.Errorf("read after rename = %q, %v", got, err)
	}
	if _, err := w.fs.Read(eve, "/fs/old"); !errors.Is(err, names.ErrNotFound) {
		t.Errorf("old path: got %v", err)
	}
	// Into a subdirectory.
	dirACL := acl.New(acl.Allow("eve", acl.Write|acl.List), acl.AllowEveryone(acl.List))
	if err := w.fs.Mkdir(eve, "/fs/sub", dirACL, eve.Class()); err != nil {
		t.Fatal(err)
	}
	if err := w.fs.Rename(eve, "/fs/new", "/fs/sub/f"); err != nil {
		t.Fatalf("rename into dir: %v", err)
	}
	if _, err := w.fs.Read(eve, "/fs/sub/f"); err != nil {
		t.Errorf("read in dir: %v", err)
	}
	// A non-owner cannot rename.
	if _, err := w.sys.AddPrincipal("mallory", "others"); err != nil {
		t.Fatal(err)
	}
	mallory := w.ctx(t, "mallory")
	if err := w.fs.Rename(mallory, "/fs/sub/f", "/fs/stolen"); !core.IsDenied(err) {
		t.Errorf("unauthorized rename: got %v", err)
	}
	// Renaming to the root is rejected.
	if err := w.fs.Rename(eve, "/fs/sub/f", "/"); !errors.Is(err, names.ErrRoot) {
		t.Errorf("rename to root: got %v", err)
	}
}

func TestMkdirMultilevel(t *testing.T) {
	w := newWorld(t)
	eve := w.ctx(t, "eve") // bottom class
	shared := acl.New(acl.AllowEveryone(acl.List | acl.Write))
	if err := w.fs.MkdirMultilevel(eve, "/fs/shared", shared, eve.Class()); err != nil {
		t.Fatalf("MkdirMultilevel: %v", err)
	}
	// A higher-class subject can create inside it (the waiver)...
	bob := w.ctx(t, "bob") // organization:{dept-1}
	if err := w.fs.Create(bob, "/fs/shared/bobfile", ownerACL("bob"), bob.Class()); err != nil {
		t.Fatalf("create in multilevel dir from above: %v", err)
	}
	// ...but a regular directory at bottom would deny the same bind.
	plain := acl.New(acl.AllowEveryone(acl.List | acl.Write))
	if err := w.fs.Mkdir(eve, "/fs/plain", plain, eve.Class()); err != nil {
		t.Fatal(err)
	}
	if err := w.fs.Create(bob, "/fs/plain/bobfile", ownerACL("bob"), bob.Class()); !core.IsDenied(err) {
		t.Errorf("create in plain low dir from above: got %v", err)
	}
	// Stat on a directory reports zero size and directory kind.
	info, err := w.fs.Stat(eve, "/fs/shared")
	if err != nil || info.Kind != names.KindDirectory || info.Size != 0 {
		t.Errorf("Stat dir = %+v, %v", info, err)
	}
}

func TestStatClassVisible(t *testing.T) {
	w := newWorld(t)
	bob := w.ctx(t, "bob")
	if err := w.fs.Create(bob, "/fs/labeled", ownerACL("bob"), bob.Class()); err != nil {
		t.Fatal(err)
	}
	info, err := w.fs.Stat(bob, "/fs/labeled")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Class.Equal(bob.Class()) || info.Path != "/fs/labeled" {
		t.Errorf("Stat = %+v", info)
	}
}

var _ = lattice.Class{} // keep import for doc examples
