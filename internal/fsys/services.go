package fsys

import (
	"fmt"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/lattice"
	"secext/internal/names"
	"secext/internal/subject"
)

// Request is the argument type for every file service entry point.
// Data is used by write/append/create; other operations ignore it.
type Request struct {
	Path string
	Data []byte
}

// serviceNames lists the general file-system interface (§1.1: "to
// access the new file system, a user invokes the existing, general file
// system interfaces which have been extended").
var serviceNames = []string{"read", "write", "append", "create", "list", "stat", "remove"}

// RegisterServices mounts the general file-system interface under
// ifacePath (e.g. "/svc/fs"): one method node per operation, each
// dispatching to the FS by default and open to specialization by
// extensions. svcACL protects every method node; svcClass labels them.
//
// The returned paths are the registered method nodes.
func RegisterServices(sys *core.System, f *FS, ifacePath string, svcACL *acl.ACL, svcClass lattice.Class) ([]string, error) {
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: ifacePath, Kind: names.KindInterface,
		ACL: acl.New(acl.AllowEveryone(acl.List)), Class: svcClass,
	}); err != nil {
		return nil, err
	}
	handlers := map[string]dispatch.Handler{
		"read": func(ctx *subject.Context, arg any) (any, error) {
			r, err := req(arg)
			if err != nil {
				return nil, err
			}
			return f.Read(ctx, r.Path)
		},
		"write": func(ctx *subject.Context, arg any) (any, error) {
			r, err := req(arg)
			if err != nil {
				return nil, err
			}
			return nil, f.Write(ctx, r.Path, r.Data)
		},
		"append": func(ctx *subject.Context, arg any) (any, error) {
			r, err := req(arg)
			if err != nil {
				return nil, err
			}
			return nil, f.Append(ctx, r.Path, r.Data)
		},
		"create": func(ctx *subject.Context, arg any) (any, error) {
			r, err := req(arg)
			if err != nil {
				return nil, err
			}
			// Files created through the general interface default to
			// owner-only access at the creator's class.
			owner := acl.New(acl.Allow(ctx.SubjectName(),
				acl.Read|acl.Write|acl.WriteAppend|acl.Delete|acl.Administrate))
			return nil, f.Create(ctx, r.Path, owner, ctx.Class())
		},
		"list": func(ctx *subject.Context, arg any) (any, error) {
			r, err := req(arg)
			if err != nil {
				return nil, err
			}
			return f.List(ctx, r.Path)
		},
		"stat": func(ctx *subject.Context, arg any) (any, error) {
			r, err := req(arg)
			if err != nil {
				return nil, err
			}
			return f.Stat(ctx, r.Path)
		},
		"remove": func(ctx *subject.Context, arg any) (any, error) {
			r, err := req(arg)
			if err != nil {
				return nil, err
			}
			return nil, f.Remove(ctx, r.Path)
		},
	}
	paths := make([]string, 0, len(serviceNames))
	for _, name := range serviceNames {
		p := names.Join(ifacePath, name)
		err := sys.RegisterService(core.ServiceSpec{
			Path: p, ACL: svcACL, Class: svcClass,
			Base: dispatch.Binding{Owner: "fsys", Handler: handlers[name]},
		})
		if err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

func req(arg any) (Request, error) {
	r, ok := arg.(Request)
	if !ok {
		return Request{}, fmt.Errorf("fsys: bad request type %T", arg)
	}
	return r, nil
}
