package ifc

import (
	"fmt"
	"math/rand"
	"testing"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/lattice"
	"secext/internal/names"
	"secext/internal/subject"
)

// flowWorld couples a live system with the ghost tracker.
type flowWorld struct {
	sys     *core.System
	tracker *Tracker
	ctxs    map[string]*subject.Context
	objects []string
}

// newFlowWorld builds a random protection state. ACLs are maximally
// permissive — everyone gets every mode — so the *only* thing standing
// between information and a laundering path is the mandatory layer,
// which is exactly the paper's §2.2 claim under test.
func newFlowWorld(t *testing.T, r *rand.Rand) *flowWorld {
	t.Helper()
	levels := []string{"l0", "l1", "l2"}
	cats := []string{"a", "b"}
	sys, err := core.NewSystem(core.Options{
		Levels: levels, Categories: cats, DisableAudit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	bot, _ := sys.Lattice().Bottom()
	open := acl.New(acl.AllowEveryone(acl.AllModes))
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: "/fs", Kind: names.KindDirectory, ACL: open, Class: bot, Multilevel: true,
	}); err != nil {
		t.Fatal(err)
	}
	w := &flowWorld{
		sys: sys, tracker: NewTracker(),
		ctxs: make(map[string]*subject.Context),
	}
	randClass := func() lattice.Class {
		var chosen []string
		for _, c := range cats {
			if r.Intn(2) == 0 {
				chosen = append(chosen, c)
			}
		}
		return sys.Lattice().MustClass(levels[r.Intn(len(levels))], chosen...)
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("s%d", i)
		class := randClass()
		if _, err := sys.Registry().AddPrincipal(name, class); err != nil {
			t.Fatal(err)
		}
		ctx, err := sys.NewContext(name)
		if err != nil {
			t.Fatal(err)
		}
		w.ctxs[name] = ctx
		w.tracker.AddSubject(name, class)
	}
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/fs/o%d", i)
		class := randClass()
		// Setup uses the unchecked path so object classes are
		// arbitrary; the run itself is fully mediated.
		if _, err := sys.CreateNode(core.NodeSpec{
			Path: path, Kind: names.KindFile, ACL: open, Class: class,
		}); err != nil {
			t.Fatal(err)
		}
		w.objects = append(w.objects, path)
		w.tracker.AddObject(path, class)
	}
	return w
}

// step performs one random mediated operation, mirroring every allowed
// effect into the tracker.
func (w *flowWorld) step(t *testing.T, r *rand.Rand) {
	t.Helper()
	subjects := []string{"s0", "s1", "s2", "s3"}
	sub := subjects[r.Intn(len(subjects))]
	obj := w.objects[r.Intn(len(w.objects))]
	ctx := w.ctxs[sub]
	switch r.Intn(4) {
	case 0: // read
		if _, err := w.sys.CheckData(ctx, obj, acl.Read); err == nil {
			w.tracker.ObserveRead(sub, obj)
		}
	case 1: // append
		if _, err := w.sys.CheckData(ctx, obj, acl.WriteAppend); err == nil {
			w.tracker.ObserveWrite(sub, obj)
		}
	case 2: // overwrite (read+write per the fsys rule)
		if _, err := w.sys.CheckData(ctx, obj, acl.Read|acl.Write); err == nil {
			w.tracker.ObserveOverwrite(sub, obj)
		}
	case 3: // relabel up then read by a third party
		target := w.objects[r.Intn(len(w.objects))]
		node, err := w.sys.Names().ResolveUnchecked(target)
		if err != nil {
			t.Fatal(err)
		}
		newClass := ctx.Class().Join(node.Class())
		// Only attempt the relabel the monitor would allow
		// (administrate + relabel rules); use the checked path.
		if err := w.sys.Names().SetClass(ctx, ctx.Class(), target, newClass); err == nil {
			// Relabeling changes future checks, not past knowledge;
			// nothing to mirror: sources keep their birth class.
			_ = newClass
		}
	}
}

// TestFlowNoLaundering drives thousands of random mediated operations
// with wide-open ACLs and asserts after every step that no subject ever
// learned information born above its class. This is the §2.2 claim:
// discretionary permissiveness cannot launder mandatory protection.
func TestFlowNoLaundering(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		w := newFlowWorld(t, r)
		for i := 0; i < 500; i++ {
			w.step(t, r)
			if v := w.tracker.Violations(); len(v) != 0 {
				t.Fatalf("seed %d step %d: information laundered:\n%v", seed, i, v)
			}
		}
	}
}

// TestFlowUpgradeChannelIsOneWay checks the write-append channel in the
// ghost model directly: a low subject's report flows up into a high
// object and is readable there, but nothing flows back down.
func TestFlowUpgradeChannelIsOneWay(t *testing.T) {
	lat, err := lattice.NewWithUniverse([]string{"lo", "hi"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker()
	tr.AddSubject("low", lat.MustClass("lo"))
	tr.AddSubject("high", lat.MustClass("hi"))
	lowSrc := tr.AddObject("/lowfile", lat.MustClass("lo"))
	tr.AddObject("/journal", lat.MustClass("hi"))

	// low reads its own file, appends to the journal; high reads the
	// journal: high now knows the low source — legal (read down).
	tr.ObserveRead("low", "/lowfile")
	tr.ObserveWrite("low", "/journal")
	tr.ObserveRead("high", "/journal")
	if v := tr.Violations(); len(v) != 0 {
		t.Fatalf("legal upgrade flagged: %v", v)
	}
	found := false
	for _, id := range tr.KnowledgeOf("high") {
		if id == lowSrc.ID {
			found = true
		}
	}
	if !found {
		t.Error("high must have learned the low source via the journal")
	}

	// Now simulate the monitor *wrongly* allowing low to read the
	// journal: the tracker must flag it. (This validates the oracle
	// itself: it can detect violations.)
	hiOnly := tr.AddObject("/secret", lat.MustClass("hi"))
	tr.ObserveRead("high", "/secret")
	tr.ObserveWrite("high", "/journal") // high writes at its level: fine
	tr.ObserveRead("low", "/journal")   // the monitor would deny this
	v := tr.Violations()
	if len(v) == 0 {
		t.Fatal("oracle failed to flag a read-up")
	}
	_ = hiOnly
}

// TestTrackerAccessors covers the inspection helpers.
func TestTrackerAccessors(t *testing.T) {
	lat, err := lattice.NewWithUniverse([]string{"l"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker()
	tr.AddSubject("s", lat.MustClass("l"))
	src := tr.AddObject("/o", lat.MustClass("l"))
	if got := tr.SourcesOf("/o"); len(got) != 1 || got[0] != src.ID {
		t.Errorf("SourcesOf = %v", got)
	}
	tr.ObserveRead("s", "/o")
	if got := tr.KnowledgeOf("s"); len(got) != 1 || got[0] != src.ID {
		t.Errorf("KnowledgeOf = %v", got)
	}
	tr.ObserveOverwrite("s", "/o")
	if got := tr.SourcesOf("/o"); len(got) != 1 {
		t.Errorf("overwrite must replace contents: %v", got)
	}
	// Message relay.
	tr.AddSubject("r", lat.MustClass("l"))
	tr.AddObject("/ep", lat.MustClass("l"))
	tr.ObserveMessage("s", "/ep", "r")
	// r learns both the endpoint's birth source and what s knew.
	if got := tr.KnowledgeOf("r"); len(got) != 2 {
		t.Errorf("receiver knowledge = %v", got)
	}
}
