// Package ifc validates the paper's central mandatory-control claim
// end to end: "All flow of information in an extensible system can thus
// be tightly controlled, and users can not circumvent the basic
// security of the system by exercising discretionary access control"
// (§2.2).
//
// The Tracker runs *alongside* a live core.System as a ghost model. For
// every mediated operation the harness performs, the tracker records
// what information could have moved:
//
//   - a successful read moves the object's accumulated sources into the
//     subject's knowledge;
//   - a successful write or append moves the subject's knowledge into
//     the object's accumulated sources;
//   - every object starts with one birth source labeled with its class.
//
// The invariant checked after every step is noninterference in its
// access-control form: whenever a subject holds knowledge of a source
// born at class C, the subject's class dominates C. If any sequence of
// operations the monitor *allows* violates this, the monitor has a
// laundering channel — discretionary settings, extension dispatch, and
// relabeling included. The property tests in flow_test.go drive random
// principals, ACLs (including maximally permissive ones), and operation
// sequences through a real system and assert the invariant throughout.
package ifc

import (
	"fmt"

	"secext/internal/lattice"
)

// Source is one origin of information: an object's initial contents at
// its birth class.
type Source struct {
	ID    int
	Class lattice.Class
}

// Tracker is the ghost flow model. It is not concurrency-safe; the
// validation harness drives it sequentially.
type Tracker struct {
	nextSource int
	// knowledge maps subject name -> set of source IDs it may have
	// observed.
	knowledge map[string]map[int]bool
	// contents maps object path -> set of source IDs its contents may
	// derive from.
	contents map[string]map[int]bool
	// sources maps source ID -> birth record.
	sources map[int]Source
	// classOf maps subject name -> class (fixed per run).
	classOf map[string]lattice.Class
}

// NewTracker creates an empty ghost model.
func NewTracker() *Tracker {
	return &Tracker{
		knowledge: make(map[string]map[int]bool),
		contents:  make(map[string]map[int]bool),
		sources:   make(map[int]Source),
		classOf:   make(map[string]lattice.Class),
	}
}

// AddSubject registers a subject and its (fixed) class.
func (t *Tracker) AddSubject(name string, class lattice.Class) {
	t.classOf[name] = class
	if t.knowledge[name] == nil {
		t.knowledge[name] = make(map[int]bool)
	}
}

// AddObject registers an object born at class with one fresh source.
func (t *Tracker) AddObject(path string, class lattice.Class) Source {
	t.nextSource++
	src := Source{ID: t.nextSource, Class: class}
	t.sources[src.ID] = src
	t.contents[path] = map[int]bool{src.ID: true}
	return src
}

// ObserveRead records a read the monitor allowed: subject learns the
// object's sources.
func (t *Tracker) ObserveRead(subject, object string) {
	for id := range t.contents[object] {
		t.knowledge[subject][id] = true
	}
}

// ObserveWrite records a write or append the monitor allowed: the
// object's contents now derive from everything the subject knows.
func (t *Tracker) ObserveWrite(subject, object string) {
	if t.contents[object] == nil {
		t.contents[object] = make(map[int]bool)
	}
	for id := range t.knowledge[subject] {
		t.contents[object][id] = true
	}
}

// ObserveOverwrite records a destructive write: prior contents are
// destroyed and replaced by the subject's knowledge.
func (t *Tracker) ObserveOverwrite(subject, object string) {
	t.contents[object] = make(map[int]bool)
	t.ObserveWrite(subject, object)
}

// ObserveMessage records a message send+receive pair mediated by an
// endpoint: equivalent to sender-append then receiver-read of the
// endpoint.
func (t *Tracker) ObserveMessage(sender, endpoint, receiver string) {
	t.ObserveWrite(sender, endpoint)
	t.ObserveRead(receiver, endpoint)
}

// Violations returns every (subject, source) pair where a subject holds
// knowledge of a source born above or incomparable to its class — i.e.
// information that flowed where the lattice says it must not.
func (t *Tracker) Violations() []string {
	var out []string
	for subject, known := range t.knowledge {
		class := t.classOf[subject]
		for id := range known {
			src := t.sources[id]
			if !class.CanRead(src.Class) {
				out = append(out, fmt.Sprintf(
					"subject %s at %s knows source #%d born at %s",
					subject, class, id, src.Class))
			}
		}
	}
	return out
}

// KnowledgeOf returns the source IDs a subject may have observed.
func (t *Tracker) KnowledgeOf(subject string) []int {
	var out []int
	for id := range t.knowledge[subject] {
		out = append(out, id)
	}
	return out
}

// SourcesOf returns the source IDs an object's contents may derive
// from.
func (t *Tracker) SourcesOf(object string) []int {
	var out []int
	for id := range t.contents[object] {
		out = append(out, id)
	}
	return out
}
