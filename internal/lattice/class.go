package lattice

import "math/bits"

// Class is a security class: one trust level plus a set of categories.
// The zero Class is invalid; obtain classes from a Lattice. Classes are
// immutable values — every operation returns a fresh Class — and may be
// compared only against classes from the same Lattice.
type Class struct {
	lat   *Lattice
	level Level
	cats  bitset
}

// Valid reports whether c was produced by a Lattice.
func (c Class) Valid() bool { return c.lat != nil }

// Lattice returns the lattice that issued c (nil for the zero Class).
func (c Class) Lattice() *Lattice { return c.lat }

// Level returns the trust level of c.
func (c Class) Level() Level { return c.level }

// CategoryIndices returns the indices of the categories of c, ascending.
func (c Class) CategoryIndices() []int { return c.cats.members() }

// NumCategories returns the number of categories in c.
func (c Class) NumCategories() int { return c.cats.count() }

// HasCategory reports whether category index idx is in c's set.
func (c Class) HasCategory(idx int) bool { return c.cats.has(idx) }

// sameLattice reports whether two classes can be compared.
func (c Class) sameLattice(o Class) bool {
	return c.lat != nil && c.lat == o.lat
}

// Dominates reports whether c ⊒ o: c's level is greater than or equal to
// o's and c's categories are a superset of o's. Dominates is a partial
// order; two classes with incomparable category sets dominate in neither
// direction. Comparing classes from different lattices returns false.
func (c Class) Dominates(o Class) bool {
	if !c.sameLattice(o) {
		return false
	}
	return c.level >= o.level && c.cats.contains(o.cats)
}

// DominatedBy reports o ⊒ c.
func (c Class) DominatedBy(o Class) bool { return o.Dominates(c) }

// Equal reports whether the two classes are identical.
func (c Class) Equal(o Class) bool {
	return c.sameLattice(o) && c.level == o.level && c.cats.equal(o.cats)
}

// Comparable reports whether c and o are ordered in either direction.
func (c Class) Comparable(o Class) bool {
	return c.Dominates(o) || o.Dominates(c)
}

// Join returns the least upper bound of c and o: the maximum level and
// the union of the category sets. Join of classes from different
// lattices returns the zero Class.
func (c Class) Join(o Class) Class {
	if !c.sameLattice(o) {
		return Class{}
	}
	lv := c.level
	if o.level > lv {
		lv = o.level
	}
	return Class{lat: c.lat, level: lv, cats: c.cats.union(o.cats)}
}

// Meet returns the greatest lower bound of c and o: the minimum level
// and the intersection of the category sets. Meet of classes from
// different lattices returns the zero Class.
//
// Meet is how a statically assigned extension class clamps the dynamic
// class of a calling thread (§2.2): the effective class can exercise
// only the authority both classes hold.
func (c Class) Meet(o Class) Class {
	if !c.sameLattice(o) {
		return Class{}
	}
	lv := c.level
	if o.level < lv {
		lv = o.level
	}
	return Class{lat: c.lat, level: lv, cats: c.cats.intersect(o.cats)}
}

// Hash64 folds the class into 64 bits without allocating: the level and
// the category bitset words under FNV-1a. Classes that are Equal hash
// equally; the converse does not hold, so Hash64 may only route (e.g.
// pick a cache shard), never decide — callers must confirm with Equal.
func (c Class) Hash64() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	h ^= uint64(c.level)
	h *= prime
	for _, w := range c.cats.norm().words {
		h ^= w
		h *= prime
	}
	return h
}

// String renders the class label, or "<invalid>" for the zero Class.
// For deterministic labeled output prefer Lattice.Format, which reports
// errors instead of folding them into the string.
func (c Class) String() string {
	if c.lat == nil {
		return "<invalid>"
	}
	s, err := c.lat.Format(c)
	if err != nil {
		return "<invalid>"
	}
	return s
}

// Flow rules (§2.2 of the paper).

// CanRead reports whether a subject at class c may view the contents of
// an object at class o: the subject must dominate the object (simple
// security property).
func (c Class) CanRead(o Class) bool { return c.Dominates(o) }

// CanWrite reports whether a subject at class c may modify an object at
// class o: the object must dominate the subject (*-property, no
// write-down). CanWrite permits blind write-up; see CanAppend and
// CanOverwrite for the paper's write-append refinement.
func (c Class) CanWrite(o Class) bool { return o.Dominates(c) }

// CanAppend reports whether a subject at class c may append to an object
// at class o. Appending never destroys existing contents, so the rule is
// exactly the *-property: the object must dominate the subject.
func (c Class) CanAppend(o Class) bool { return o.Dominates(c) }

// CanOverwrite reports whether a subject at class c may destructively
// replace the contents of an object at class o. Following the paper's
// caution that write-append should "limit subjects at a lower level of
// trust to blindly overwrite objects at a higher level of trust",
// destructive writes additionally require that the subject can observe
// what it destroys: the classes must be equal.
func (c Class) CanOverwrite(o Class) bool { return c.Equal(o) }

// bitset is a little-endian bit vector with value semantics. The
// representation is normalized: trailing zero words are trimmed, so two
// bitsets representing the same set are always structurally comparable
// even if they were built when the category universe had different
// sizes.
type bitset struct {
	words []uint64
}

func newBitset(hintBits int) bitset {
	if hintBits <= 0 {
		return bitset{}
	}
	return bitset{words: make([]uint64, 0, (hintBits+63)/64)}
}

func (b bitset) norm() bitset {
	n := len(b.words)
	for n > 0 && b.words[n-1] == 0 {
		n--
	}
	return bitset{words: b.words[:n]}
}

// with returns a copy of b with bit i set.
func (b bitset) with(i int) bitset {
	w := i / 64
	words := make([]uint64, max(len(b.words), w+1))
	copy(words, b.words)
	words[w] |= 1 << uint(i%64)
	return bitset{words: words}
}

func (b bitset) has(i int) bool {
	if i < 0 {
		return false
	}
	w := i / 64
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<uint(i%64)) != 0
}

func (b bitset) count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// contains reports whether b is a superset of o.
func (b bitset) contains(o bitset) bool {
	o = o.norm()
	if len(o.words) > len(b.words) {
		return false
	}
	for i, w := range o.words {
		if w&^b.words[i] != 0 {
			return false
		}
	}
	return true
}

func (b bitset) equal(o bitset) bool {
	b, o = b.norm(), o.norm()
	if len(b.words) != len(o.words) {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

func (b bitset) union(o bitset) bitset {
	long, short := b.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	words := make([]uint64, len(long))
	copy(words, long)
	for i, w := range short {
		words[i] |= w
	}
	return bitset{words: words}.norm()
}

func (b bitset) intersect(o bitset) bitset {
	n := min(len(b.words), len(o.words))
	words := make([]uint64, n)
	for i := 0; i < n; i++ {
		words[i] = b.words[i] & o.words[i]
	}
	return bitset{words: words}.norm()
}

func (b bitset) members() []int {
	out := make([]int, 0, b.count())
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, wi*64+bit)
			w &= w - 1
		}
	}
	return out
}
