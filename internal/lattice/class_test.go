package lattice

import "testing"

func TestDominates(t *testing.T) {
	l := newTestLattice(t)
	cases := []struct {
		a, b string
		want bool
	}{
		{"local", "others", true},
		{"others", "local", false},
		{"local", "local", true},
		{"local:{dept-1}", "local", true},
		{"local", "local:{dept-1}", false},
		{"local:{dept-1,dept-2}", "organization:{dept-1}", true},
		{"organization:{dept-1}", "organization:{dept-2}", false},
		{"organization:{dept-2}", "organization:{dept-1}", false},
		{"organization:{dept-1,dept-2}", "organization:{dept-1}", true},
		{"others:{myself,dept-1,dept-2,outside}", "local", false}, // level too low
	}
	for _, tc := range cases {
		a, b := mustParse(t, l, tc.a), mustParse(t, l, tc.b)
		if got := a.Dominates(b); got != tc.want {
			t.Errorf("%s.Dominates(%s) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := b.DominatedBy(a); got != tc.want {
			t.Errorf("%s.DominatedBy(%s) = %v, want %v", tc.b, tc.a, got, tc.want)
		}
	}
}

func mustParse(t *testing.T, l *Lattice, s string) Class {
	t.Helper()
	c, err := l.ParseClass(s)
	if err != nil {
		t.Fatalf("ParseClass(%q): %v", s, err)
	}
	return c
}

func TestJoinMeet(t *testing.T) {
	l := newTestLattice(t)
	a := mustParse(t, l, "organization:{dept-1}")
	b := mustParse(t, l, "local:{dept-2}")
	j := a.Join(b)
	if want := "local:{dept-1,dept-2}"; j.String() != want {
		t.Errorf("Join = %s, want %s", j, want)
	}
	m := a.Meet(b)
	if want := "organization"; m.String() != want {
		t.Errorf("Meet = %s, want %s", m, want)
	}
	if !j.Dominates(a) || !j.Dominates(b) {
		t.Error("join must dominate both operands")
	}
	if !a.Dominates(m) || !b.Dominates(m) {
		t.Error("both operands must dominate meet")
	}
}

func TestMeetClampsStaticClass(t *testing.T) {
	// §2.2: a statically assigned extension class clamps the caller's
	// dynamic class. An outside applet statically pinned to the lowest
	// level can never act at organization level even if invoked by a
	// highly trusted caller.
	l := newTestLattice(t)
	caller := l.MustClass("local", "myself", "dept-1", "dept-2", "outside")
	static := l.MustClass("others")
	eff := caller.Meet(static)
	if eff.String() != "others" {
		t.Fatalf("effective class = %s, want others", eff)
	}
	secret := l.MustClass("organization", "dept-1")
	if eff.CanRead(secret) {
		t.Error("clamped class must not read organization data")
	}
}

func TestFlowRules(t *testing.T) {
	l := newTestLattice(t)
	low := l.MustClass("others")
	mid := l.MustClass("organization", "dept-1")
	high := l.MustClass("local", "myself", "dept-1", "dept-2", "outside")

	// Simple security property: read down only.
	if !high.CanRead(mid) || !high.CanRead(low) {
		t.Error("high subject must read down")
	}
	if mid.CanRead(high) || low.CanRead(mid) {
		t.Error("no read up")
	}

	// *-property: write up only (appends).
	if !low.CanAppend(mid) || !mid.CanAppend(high) {
		t.Error("append up must be allowed")
	}
	if mid.CanAppend(low) {
		t.Error("no append down")
	}
	if !low.CanWrite(mid) {
		t.Error("CanWrite is the *-property: write up allowed")
	}
	if mid.CanWrite(low) {
		t.Error("no write down")
	}

	// Blind overwrite needs equality.
	if low.CanOverwrite(mid) {
		t.Error("low subject must not blindly overwrite high object")
	}
	if !mid.CanOverwrite(mid) {
		t.Error("overwrite at own class must be allowed")
	}
}

func TestIncomparableCategories(t *testing.T) {
	l := newTestLattice(t)
	d1 := l.MustClass("organization", "dept-1")
	d2 := l.MustClass("organization", "dept-2")
	if d1.Comparable(d2) {
		t.Error("dept-1 and dept-2 at same level must be incomparable")
	}
	if d1.CanRead(d2) || d2.CanRead(d1) {
		t.Error("incomparable classes must not read each other")
	}
	both := l.MustClass("organization", "dept-1", "dept-2")
	if !both.CanRead(d1) || !both.CanRead(d2) {
		t.Error("{dept-1,dept-2} must read both compartments")
	}
}

func TestCrossLatticeOps(t *testing.T) {
	l1 := newTestLattice(t)
	l2 := newTestLattice(t)
	a := l1.MustClass("local")
	b := l2.MustClass("others")
	if a.Dominates(b) || b.Dominates(a) {
		t.Error("cross-lattice dominance must be false")
	}
	if a.Equal(b) {
		t.Error("cross-lattice equality must be false")
	}
	if j := a.Join(b); j.Valid() {
		t.Error("cross-lattice join must be invalid")
	}
	if m := a.Meet(b); m.Valid() {
		t.Error("cross-lattice meet must be invalid")
	}
}

func TestZeroClass(t *testing.T) {
	var z Class
	if z.Valid() {
		t.Error("zero Class must be invalid")
	}
	if z.String() != "<invalid>" {
		t.Errorf("zero Class String = %q", z.String())
	}
	l := newTestLattice(t)
	c := l.MustClass("local")
	if z.Dominates(c) || c.Dominates(z) {
		t.Error("zero Class must not participate in dominance")
	}
}

func TestCategoryAccessors(t *testing.T) {
	l := newTestLattice(t)
	c := l.MustClass("local", "myself", "dept-2")
	if got := c.NumCategories(); got != 2 {
		t.Errorf("NumCategories = %d, want 2", got)
	}
	idx := c.CategoryIndices()
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Errorf("CategoryIndices = %v, want [0 2]", idx)
	}
	if !c.HasCategory(0) || c.HasCategory(1) || !c.HasCategory(2) || c.HasCategory(-1) || c.HasCategory(1000) {
		t.Error("HasCategory wrong membership")
	}
	if c.Lattice() != l {
		t.Error("Lattice() must return issuing lattice")
	}
	if c.Level() != Level(2) {
		t.Errorf("Level = %d, want 2", c.Level())
	}
}

// TestPaperOrgExample reproduces the worked example of §2.2 verbatim:
// three linearly ordered levels (local > organization > others) and four
// categories (myself, department-1, department-2, outside).
func TestPaperOrgExample(t *testing.T) {
	l := newTestLattice(t)

	user := l.MustClass("local", "myself", "dept-1", "dept-2", "outside")
	applet1 := l.MustClass("organization", "dept-1")
	applet2 := l.MustClass("organization", "dept-2")
	applet3 := l.MustClass("organization", "dept-1", "dept-2")

	file1 := applet1 // data generated by applet 1 carries its class
	file2 := applet2

	// "The user's applets ... have access to all files (including those
	// generated by other applets)."
	if !user.CanRead(file1) || !user.CanRead(file2) {
		t.Error("local user must read all files")
	}
	// "Two applets ... using the department-1 and department-2 labels
	// respectively ... can not access each other's files."
	if applet1.CanRead(file2) || applet2.CanRead(file1) {
		t.Error("dept-1 and dept-2 applets must be isolated")
	}
	// "a third applet ... that uses both ... labels can access the data
	// of both the first two applets."
	if !applet3.CanRead(file1) || !applet3.CanRead(file2) {
		t.Error("dual-label applet must read both compartments")
	}
	// Applets from outside the organization run at the least level.
	outside := l.MustClass("others", "outside")
	if outside.CanRead(file1) || outside.CanRead(file2) {
		t.Error("outside applet must not read organization files")
	}
}
