package lattice

// This file implements the precomputed dominance table compiled into
// policy epochs: the distinct classes a decision can mention (node
// labels, principal default classes) are interned to small dense
// indices, and the full Dominates relation over them is evaluated once
// at freeze time into a bit matrix. The MAC check on the compiled read
// path is then one array word probe instead of a level compare plus a
// category-subset scan.

// Dominance is an immutable interned-class universe plus the
// precomputed Dominates bit matrix over it. Build one with a
// DominanceBuilder; published tables are shared by every reader of an
// epoch and by successor builders.
type Dominance struct {
	classes []Class
	buckets map[uint64][]int32 // Hash64 -> candidate indices
	words   []uint64           // row-major bit matrix, stride words per row
	stride  int
}

// Len reports the number of interned classes. Nil-safe.
func (d *Dominance) Len() int {
	if d == nil {
		return 0
	}
	return len(d.classes)
}

// Index returns the dense index of c if it is interned. Nil-safe.
// Hash64 only routes; candidates are confirmed with Equal.
func (d *Dominance) Index(c Class) (int, bool) {
	if d == nil || !c.Valid() {
		return 0, false
	}
	for _, i := range d.buckets[c.Hash64()] {
		if d.classes[i].Equal(c) {
			return int(i), true
		}
	}
	return 0, false
}

// Class returns the interned class at index i.
func (d *Dominance) Class(i int) Class { return d.classes[i] }

// Dominates reports whether class i dominates class j: one word probe
// into the precomputed matrix. Indices must come from Index/Add.
func (d *Dominance) Dominates(i, j int) bool {
	return d.words[i*d.stride+j>>6]&(1<<(uint(j)&63)) != 0
}

// RetainedBytes reports the heap bytes held by the table's matrix and
// bucket index (the interned Class headers share lattice-owned bitset
// words, which are not counted). Nil-safe.
func (d *Dominance) RetainedBytes() int {
	if d == nil {
		return 0
	}
	n := cap(d.words) * 8
	for _, b := range d.buckets {
		n += cap(b) * 4
	}
	return n + cap(d.classes)*48 // approximate Class header footprint
}

// DominanceBuilder accumulates an interned-class universe, deduping by
// Equal, and compiles it into a Dominance. The zero value is not
// usable; construct with NewDominanceBuilder or BuilderFrom.
type DominanceBuilder struct {
	classes []Class
	buckets map[uint64][]int32
	base    *Dominance // returned unchanged by Build when nothing was added
}

// NewDominanceBuilder returns an empty builder.
func NewDominanceBuilder() *DominanceBuilder {
	return BuilderFrom(nil)
}

// BuilderFrom returns a builder seeded with d's interned classes, which
// keep their indices — the incremental freeze path seeds from the
// parent epoch's table so class indices stay stable and, when no new
// class appears, Build returns the parent's table untouched. A nil d
// yields an empty builder.
func BuilderFrom(d *Dominance) *DominanceBuilder {
	b := &DominanceBuilder{base: d, buckets: make(map[uint64][]int32, d.Len())}
	if d != nil {
		b.classes = append([]Class(nil), d.classes...)
		for h, idxs := range d.buckets {
			b.buckets[h] = append([]int32(nil), idxs...)
		}
	}
	return b
}

// Add interns c and returns its dense index, deduping against every
// class already added. Invalid (zero) classes are not interned and
// report -1.
func (b *DominanceBuilder) Add(c Class) int {
	if !c.Valid() {
		return -1
	}
	h := c.Hash64()
	for _, i := range b.buckets[h] {
		if b.classes[i].Equal(c) {
			return int(i)
		}
	}
	i := int32(len(b.classes))
	b.classes = append(b.classes, c)
	b.buckets[h] = append(b.buckets[h], i)
	return int(i)
}

// Len reports the number of classes interned so far.
func (b *DominanceBuilder) Len() int { return len(b.classes) }

// Build compiles the Dominates bit matrix over the interned universe.
// If no class was added since BuilderFrom, the seed table is returned
// as-is (the common steady-state freeze: class universes only grow).
// The matrix is O(n²) bits in the number of *distinct* classes, which
// stays small even for huge trees — labels repeat massively.
func (b *DominanceBuilder) Build() *Dominance {
	if b.base != nil && len(b.classes) == b.base.Len() {
		return b.base
	}
	n := len(b.classes)
	d := &Dominance{
		classes: b.classes,
		buckets: b.buckets,
		stride:  (n + 63) / 64,
	}
	d.words = make([]uint64, n*d.stride)
	for i := 0; i < n; i++ {
		row := d.words[i*d.stride : (i+1)*d.stride]
		for j := 0; j < n; j++ {
			if b.classes[i].Dominates(b.classes[j]) {
				row[j>>6] |= 1 << (uint(j) & 63)
			}
		}
	}
	return d
}
