package lattice

import (
	"math/rand"
	"testing"
)

func testUniverse(t *testing.T) (*Lattice, []Class) {
	t.Helper()
	lat, err := NewWithUniverse(
		[]string{"low", "mid", "high"},
		[]string{"a", "b", "c", "d"},
	)
	if err != nil {
		t.Fatal(err)
	}
	levels := []string{"low", "mid", "high"}
	cats := []string{"a", "b", "c", "d"}
	var classes []Class
	for _, lv := range levels {
		for mask := 0; mask < 1<<len(cats); mask++ {
			var cs []string
			for i, c := range cats {
				if mask&(1<<i) != 0 {
					cs = append(cs, c)
				}
			}
			classes = append(classes, lat.MustClass(lv, cs...))
		}
	}
	return lat, classes
}

// TestDominanceMatrixOracle interns a full class universe and checks
// every matrix cell against Class.Dominates.
func TestDominanceMatrixOracle(t *testing.T) {
	_, classes := testUniverse(t)
	b := NewDominanceBuilder()
	idx := make([]int, len(classes))
	for i, c := range classes {
		idx[i] = b.Add(c)
	}
	// Re-adding dedups to the same index.
	for i, c := range classes {
		if got := b.Add(c); got != idx[i] {
			t.Fatalf("re-Add(%s) = %d, want %d", c, got, idx[i])
		}
	}
	if b.Len() != len(classes) {
		t.Fatalf("builder holds %d classes, want %d", b.Len(), len(classes))
	}
	d := b.Build()
	if d.Len() != len(classes) {
		t.Fatalf("table holds %d classes, want %d", d.Len(), len(classes))
	}
	for i, ci := range classes {
		gi, ok := d.Index(ci)
		if !ok || gi != idx[i] {
			t.Fatalf("Index(%s) = %d,%v, want %d,true", ci, gi, ok, idx[i])
		}
		if !d.Class(gi).Equal(ci) {
			t.Fatalf("Class(%d) != %s", gi, ci)
		}
		for j, cj := range classes {
			if got, want := d.Dominates(idx[i], idx[j]), ci.Dominates(cj); got != want {
				t.Fatalf("Dominates(%s, %s) = %v, oracle %v", ci, cj, got, want)
			}
		}
	}
	if d.RetainedBytes() <= 0 {
		t.Fatal("table retains no bytes")
	}
}

func TestDominanceInvalidAndUnknown(t *testing.T) {
	lat, _ := testUniverse(t)
	b := NewDominanceBuilder()
	if b.Add(Class{}) != -1 {
		t.Fatal("invalid class interned")
	}
	d := b.Build()
	if _, ok := d.Index(Class{}); ok {
		t.Fatal("invalid class resolved")
	}
	if _, ok := d.Index(lat.MustClass("low")); ok {
		t.Fatal("unknown class resolved in empty table")
	}
	var nilTable *Dominance
	if nilTable.Len() != 0 || nilTable.RetainedBytes() != 0 {
		t.Fatal("nil table not empty")
	}
	if _, ok := nilTable.Index(lat.MustClass("low")); ok {
		t.Fatal("nil table resolved a class")
	}
}

// TestBuilderFromKeepsIndicesAndReuses checks the incremental seeding
// contract: seeded classes keep their indices, an unchanged builder
// returns the seed table itself, and a grown table still matches the
// oracle everywhere (including across the old/new boundary).
func TestBuilderFromKeepsIndicesAndReuses(t *testing.T) {
	_, classes := testUniverse(t)
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(classes), func(i, j int) { classes[i], classes[j] = classes[j], classes[i] })

	first := classes[:10]
	b := NewDominanceBuilder()
	for _, c := range first {
		b.Add(c)
	}
	d1 := b.Build()

	// No additions: Build must hand back the very same table.
	if d2 := BuilderFrom(d1).Build(); d2 != d1 {
		t.Fatal("unchanged builder rebuilt the table")
	}
	// Re-adding only known classes is still "no additions".
	b2 := BuilderFrom(d1)
	for _, c := range first {
		b2.Add(c)
	}
	if d2 := b2.Build(); d2 != d1 {
		t.Fatal("dedup-only additions rebuilt the table")
	}

	// Grow: old classes keep indices, every pair still matches.
	b3 := BuilderFrom(d1)
	for _, c := range classes[:20] {
		b3.Add(c)
	}
	d3 := b3.Build()
	if d3 == d1 || d3.Len() != 20 {
		t.Fatalf("grown table wrong: len=%d", d3.Len())
	}
	for i, c := range first {
		gi, ok := d3.Index(c)
		if !ok || gi != i {
			t.Fatalf("seeded class %s moved: %d,%v want %d", c, gi, ok, i)
		}
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if got, want := d3.Dominates(i, j), classes[i].Dominates(classes[j]); got != want {
				t.Fatalf("grown Dominates(%d,%d) = %v, oracle %v", i, j, got, want)
			}
		}
	}
	// The seed table is untouched by the grown builder.
	if d1.Len() != 10 {
		t.Fatal("seed table mutated")
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if got, want := d1.Dominates(i, j), classes[i].Dominates(classes[j]); got != want {
				t.Fatalf("seed Dominates(%d,%d) changed", i, j)
			}
		}
	}
}
