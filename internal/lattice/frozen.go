package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// Frozen is one immutable version of the lattice universe: the level
// order and the category set as of one publication. A Frozen value
// never changes after it is built, so every lookup on it is a pure
// function — no locks, no mutable state — and a reference monitor that
// pins a Frozen for the duration of a decision is guaranteed that no
// concurrent DefineLevel/DefineCategory can slide under the decision.
//
// Frozen is the lattice's contribution to a policy epoch (see
// names.Epoch): the name server bundles the current Frozen with the
// name tree, the frozen principal registry, and the guard stack, and
// publishes all four behind one atomic pointer.
type Frozen struct {
	lat      *Lattice // identity: classes remain comparable across versions
	version  uint64
	levels   []string
	levelIdx map[string]Level
	cats     []string
	catIdx   map[string]int

	// deltaBase is the version this view was derived from by patching
	// (definitions are append-only, so every clone is a delta over its
	// predecessor); 0 means the view was built from scratch. See
	// names.FrozenShard.
	deltaBase uint64
}

// Version returns the universe version this view was published as.
// Versions start at 1 and advance by one per definition.
func (f *Frozen) Version() uint64 { return f.version }

// DeltaBase returns the version this view was incrementally derived
// from, or 0 if it was built from scratch (the empty universe).
func (f *Frozen) DeltaBase() uint64 { return f.deltaBase }

// Lattice returns the lattice this view was frozen from.
func (f *Frozen) Lattice() *Lattice { return f.lat }

// LevelByName resolves a level name in this version of the universe.
func (f *Frozen) LevelByName(name string) (Level, error) {
	lv, ok := f.levelIdx[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownLevel, name)
	}
	return lv, nil
}

// LevelName returns the name of a level.
func (f *Frozen) LevelName(lv Level) (string, error) {
	if lv < 0 || int(lv) >= len(f.levels) {
		return "", fmt.Errorf("%w: index %d", ErrUnknownLevel, lv)
	}
	return f.levels[lv], nil
}

// Levels returns all level names, lowest first.
func (f *Frozen) Levels() []string {
	out := make([]string, len(f.levels))
	copy(out, f.levels)
	return out
}

// Categories returns all category names in definition order.
func (f *Frozen) Categories() []string {
	out := make([]string, len(f.cats))
	copy(out, f.cats)
	return out
}

// NumLevels reports the number of trust levels in this version.
func (f *Frozen) NumLevels() int { return len(f.levels) }

// NumCategories reports the number of categories in this version.
func (f *Frozen) NumCategories() int { return len(f.cats) }

// Class constructs a security class at the named level with the named
// categories, resolved against this version of the universe.
func (f *Frozen) Class(level string, categories ...string) (Class, error) {
	lv, err := f.LevelByName(level)
	if err != nil {
		return Class{}, err
	}
	set := newBitset(0)
	for _, c := range categories {
		idx, ok := f.catIdx[c]
		if !ok {
			return Class{}, fmt.Errorf("%w: %q", ErrUnknownCategory, c)
		}
		set = set.with(idx)
	}
	return Class{lat: f.lat, level: lv, cats: set}, nil
}

// Bottom returns the least class: lowest level, empty category set.
func (f *Frozen) Bottom() (Class, error) {
	if len(f.levels) == 0 {
		return Class{}, ErrNoLevels
	}
	return Class{lat: f.lat, level: 0, cats: newBitset(0)}, nil
}

// Top returns the greatest class: highest level, all categories of this
// version.
func (f *Frozen) Top() (Class, error) {
	if len(f.levels) == 0 {
		return Class{}, ErrNoLevels
	}
	set := newBitset(len(f.cats))
	for i := range f.cats {
		set = set.with(i)
	}
	return Class{lat: f.lat, level: Level(len(f.levels) - 1), cats: set}, nil
}

// ParseClass parses a textual class label (see Lattice.ParseClass)
// against this version of the universe.
func (f *Frozen) ParseClass(label string) (Class, error) {
	level := label
	var cats []string
	if i := strings.IndexByte(label, ':'); i >= 0 {
		level = label[:i]
		rest := label[i+1:]
		if len(rest) < 2 || rest[0] != '{' || rest[len(rest)-1] != '}' {
			return Class{}, fmt.Errorf("%w: %q", ErrBadLabel, label)
		}
		inner := rest[1 : len(rest)-1]
		if inner != "" {
			cats = strings.Split(inner, ",")
		}
	}
	return f.Class(level, cats...)
}

// Format renders a class as a label accepted by ParseClass, using this
// version's name tables. A class minted under a later version may
// reference a category this version does not know; that is an error,
// not a panic — the caller pinned an epoch that predates the class.
func (f *Frozen) Format(c Class) (string, error) {
	if c.lat != f.lat {
		return "", ErrForeignClass
	}
	name, err := f.LevelName(c.level)
	if err != nil {
		return "", err
	}
	idxs := c.cats.members()
	if len(idxs) == 0 {
		return name, nil
	}
	names := make([]string, 0, len(idxs))
	for _, i := range idxs {
		if i >= len(f.cats) {
			return "", fmt.Errorf("%w: index %d", ErrUnknownCategory, i)
		}
		names = append(names, f.cats[i])
	}
	sort.Strings(names)
	return name + ":{" + strings.Join(names, ",") + "}", nil
}

// Contains reports whether class c is expressible in this version of
// the universe: its level exists and every category index it carries is
// defined. Definitions are append-only, so a class is contained by its
// minting version and every later one. The epoch fuzzer uses this to
// assert that no published epoch references policy state outside its
// own lattice.
func (f *Frozen) Contains(c Class) bool {
	if c.lat != f.lat {
		return false
	}
	if c.level < 0 || int(c.level) >= len(f.levels) {
		return false
	}
	for _, i := range c.cats.members() {
		if i >= len(f.cats) {
			return false
		}
	}
	return true
}

// cloneForDefine copies the frozen tables for one more definition. The
// clone is a delta over f (deltaBase records the provenance), which is
// as incremental as a lattice freeze gets: the universe is append-only,
// so patching the previous tables IS the full rebuild, minus nothing.
func (f *Frozen) cloneForDefine() *Frozen {
	next := &Frozen{
		lat:       f.lat,
		version:   f.version + 1,
		deltaBase: f.version,
		levels:    append([]string(nil), f.levels...),
		cats:      append([]string(nil), f.cats...),
		levelIdx:  make(map[string]Level, len(f.levelIdx)+1),
		catIdx:    make(map[string]int, len(f.catIdx)+1),
	}
	for k, v := range f.levelIdx {
		next.levelIdx[k] = v
	}
	for k, v := range f.catIdx {
		next.catIdx[k] = v
	}
	return next
}
