package lattice

import "testing"

// FuzzParseClass checks that class-label parsing never panics and that
// every accepted label survives a Format/Parse round trip.
func FuzzParseClass(f *testing.F) {
	for _, seed := range []string{
		"local", "local:{}", "organization:{dept-1}",
		"organization:{dept-1,dept-2}", ":{}", "x:{", "x:}", "a:{b,,c}",
		"others:{outside}", "local:{dept-1,dept-2,myself,outside}",
	} {
		f.Add(seed)
	}
	lat, err := NewWithUniverse(
		[]string{"others", "organization", "local"},
		[]string{"myself", "dept-1", "dept-2", "outside"},
	)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, label string) {
		c, err := lat.ParseClass(label)
		if err != nil {
			return
		}
		out, err := lat.Format(c)
		if err != nil {
			t.Fatalf("Format of parsed %q: %v", label, err)
		}
		back, err := lat.ParseClass(out)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", out, label, err)
		}
		if !back.Equal(c) {
			t.Fatalf("round trip changed class: %q -> %q", label, out)
		}
	})
}
