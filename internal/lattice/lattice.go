// Package lattice implements the mandatory access control model of
// "Security for Extensible Systems" (Grimm & Bershad, HotOS 1997), §2.2.
//
// A security class is the product of a linearly ordered set of trust
// levels and a subset of a set of categories; all classes form a lattice
// under the dominance relation (Denning's lattice model of secure
// information flow). Subjects (threads of control) and objects (named
// services, files, extensions) each carry a class. The flow rules are
// Bell-LaPadula style:
//
//   - read:  subject must dominate object (level >=, categories superset)
//   - write: object must dominate subject (no write-down)
//
// The paper additionally motivates a write-append mode so that a subject
// at a lower level of trust cannot blindly overwrite an object at a
// higher level; see CanAppend and CanOverwrite.
package lattice

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Level identifies one trust level in a lattice. Levels are linearly
// ordered: a larger Level dominates a smaller one. The zero Level is the
// lowest level of the lattice that defined it.
type Level int

// Errors returned by lattice operations.
var (
	ErrUnknownLevel    = errors.New("lattice: unknown trust level")
	ErrUnknownCategory = errors.New("lattice: unknown category")
	ErrDuplicateName   = errors.New("lattice: duplicate name")
	ErrNoLevels        = errors.New("lattice: no trust levels defined")
	ErrForeignClass    = errors.New("lattice: class belongs to a different lattice")
	ErrBadLabel        = errors.New("lattice: malformed class label")
)

// Lattice holds the universe of trust levels and categories out of which
// security classes are formed. A Lattice is safe for concurrent use.
//
// Levels are defined lowest-first; categories are an unordered set.
// Definitions are append-only: once a level or category exists it cannot
// be removed, so previously issued Classes remain valid.
type Lattice struct {
	mu       sync.RWMutex
	levels   []string
	levelIdx map[string]Level
	cats     []string
	catIdx   map[string]int

	// onMutate, when set, is called after every universe mutation. The
	// reference monitor wires it to the decision cache's generation
	// counter so cached verdicts never outlive a definition change.
	// (Definitions are append-only, so existing dominance relations are
	// in fact unaffected; the bump is deliberate conservatism.)
	onMutate func()
}

// New returns an empty lattice with no levels and no categories.
func New() *Lattice {
	return &Lattice{
		levelIdx: make(map[string]Level),
		catIdx:   make(map[string]int),
	}
}

// NewWithUniverse is a convenience constructor that defines the given
// levels (lowest first) and categories in one call.
func NewWithUniverse(levelsLowToHigh, categories []string) (*Lattice, error) {
	l := New()
	for _, name := range levelsLowToHigh {
		if _, err := l.DefineLevel(name); err != nil {
			return nil, err
		}
	}
	for _, name := range categories {
		if _, err := l.DefineCategory(name); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// SetMutationHook installs a function called after every universe
// mutation (level or category definition). Used by the reference
// monitor for decision-cache invalidation; a nil hook clears it.
func (l *Lattice) SetMutationHook(fn func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onMutate = fn
}

// mutated invokes the mutation hook. Caller holds l.mu.
func (l *Lattice) mutated() {
	if l.onMutate != nil {
		l.onMutate()
	}
}

// DefineLevel appends a new trust level that dominates every level
// defined before it, and returns its Level value.
func (l *Lattice) DefineLevel(name string) (Level, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.levelIdx[name]; dup {
		return 0, fmt.Errorf("%w: level %q", ErrDuplicateName, name)
	}
	lv := Level(len(l.levels))
	l.levels = append(l.levels, name)
	l.levelIdx[name] = lv
	l.mutated()
	return lv, nil
}

// DefineCategory adds a new category to the universe and returns its
// index.
func (l *Lattice) DefineCategory(name string) (int, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.catIdx[name]; dup {
		return 0, fmt.Errorf("%w: category %q", ErrDuplicateName, name)
	}
	idx := len(l.cats)
	l.cats = append(l.cats, name)
	l.catIdx[name] = idx
	l.mutated()
	return idx, nil
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrBadLabel)
	}
	if strings.ContainsAny(name, "{},: \t\n") {
		return fmt.Errorf("%w: name %q contains reserved characters", ErrBadLabel, name)
	}
	return nil
}

// LevelByName resolves a level name.
func (l *Lattice) LevelByName(name string) (Level, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	lv, ok := l.levelIdx[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownLevel, name)
	}
	return lv, nil
}

// LevelName returns the name of a level.
func (l *Lattice) LevelName(lv Level) (string, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if lv < 0 || int(lv) >= len(l.levels) {
		return "", fmt.Errorf("%w: index %d", ErrUnknownLevel, lv)
	}
	return l.levels[lv], nil
}

// Levels returns all level names, lowest first.
func (l *Lattice) Levels() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, len(l.levels))
	copy(out, l.levels)
	return out
}

// Categories returns all category names in definition order.
func (l *Lattice) Categories() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, len(l.cats))
	copy(out, l.cats)
	return out
}

// NumLevels reports the number of defined trust levels.
func (l *Lattice) NumLevels() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.levels)
}

// NumCategories reports the number of defined categories.
func (l *Lattice) NumCategories() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.cats)
}

// Class constructs a security class at the named level with the named
// categories.
func (l *Lattice) Class(level string, categories ...string) (Class, error) {
	lv, err := l.LevelByName(level)
	if err != nil {
		return Class{}, err
	}
	set := newBitset(0)
	l.mu.RLock()
	for _, c := range categories {
		idx, ok := l.catIdx[c]
		if !ok {
			l.mu.RUnlock()
			return Class{}, fmt.Errorf("%w: %q", ErrUnknownCategory, c)
		}
		set = set.with(idx)
	}
	l.mu.RUnlock()
	return Class{lat: l, level: lv, cats: set}, nil
}

// MustClass is Class but panics on error; intended for tests and
// statically known labels.
func (l *Lattice) MustClass(level string, categories ...string) Class {
	c, err := l.Class(level, categories...)
	if err != nil {
		panic(err)
	}
	return c
}

// Bottom returns the least class of the lattice: lowest level, empty
// category set. It fails if no levels are defined.
func (l *Lattice) Bottom() (Class, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.levels) == 0 {
		return Class{}, ErrNoLevels
	}
	return Class{lat: l, level: 0, cats: newBitset(0)}, nil
}

// Top returns the greatest class of the lattice: highest level, all
// categories. It fails if no levels are defined.
func (l *Lattice) Top() (Class, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.levels) == 0 {
		return Class{}, ErrNoLevels
	}
	set := newBitset(len(l.cats))
	for i := range l.cats {
		set = set.with(i)
	}
	return Class{lat: l, level: Level(len(l.levels) - 1), cats: set}, nil
}

// ParseClass parses a textual class label of the form
//
//	level
//	level:{}
//	level:{cat1,cat2}
//
// Whitespace around names is not permitted; names follow validName.
func (l *Lattice) ParseClass(label string) (Class, error) {
	level := label
	var cats []string
	if i := strings.IndexByte(label, ':'); i >= 0 {
		level = label[:i]
		rest := label[i+1:]
		if len(rest) < 2 || rest[0] != '{' || rest[len(rest)-1] != '}' {
			return Class{}, fmt.Errorf("%w: %q", ErrBadLabel, label)
		}
		inner := rest[1 : len(rest)-1]
		if inner != "" {
			cats = strings.Split(inner, ",")
		}
	}
	return l.Class(level, cats...)
}

// Format renders a class as a label accepted by ParseClass. Categories
// are sorted by name for deterministic output.
func (l *Lattice) Format(c Class) (string, error) {
	if c.lat != l {
		return "", ErrForeignClass
	}
	name, err := l.LevelName(c.level)
	if err != nil {
		return "", err
	}
	idxs := c.cats.members()
	if len(idxs) == 0 {
		return name, nil
	}
	l.mu.RLock()
	names := make([]string, 0, len(idxs))
	for _, i := range idxs {
		if i >= len(l.cats) {
			l.mu.RUnlock()
			return "", fmt.Errorf("%w: index %d", ErrUnknownCategory, i)
		}
		names = append(names, l.cats[i])
	}
	l.mu.RUnlock()
	sort.Strings(names)
	return name + ":{" + strings.Join(names, ",") + "}", nil
}
