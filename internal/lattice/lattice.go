// Package lattice implements the mandatory access control model of
// "Security for Extensible Systems" (Grimm & Bershad, HotOS 1997), §2.2.
//
// A security class is the product of a linearly ordered set of trust
// levels and a subset of a set of categories; all classes form a lattice
// under the dominance relation (Denning's lattice model of secure
// information flow). Subjects (threads of control) and objects (named
// services, files, extensions) each carry a class. The flow rules are
// Bell-LaPadula style:
//
//   - read:  subject must dominate object (level >=, categories superset)
//   - write: object must dominate subject (no write-down)
//
// The paper additionally motivates a write-append mode so that a subject
// at a lower level of trust cannot blindly overwrite an object at a
// higher level; see CanAppend and CanOverwrite.
//
// Concurrency design (build-then-freeze): the universe of levels and
// categories is an immutable Frozen value published through one atomic
// pointer. Every read — name lookups, class construction, parsing,
// formatting — loads the current Frozen once and works on pure data, so
// the read side takes no locks. Writers (DefineLevel, DefineCategory)
// serialize on a writer-only mutex, clone the tables, and publish a
// successor version; the publish hook hands the new Frozen to the name
// server, which folds it into the next policy epoch. Dominance checks
// themselves never touch the universe at all: a Class carries its own
// category bitset, so Dominates/Join/Meet are pure bitset arithmetic.
package lattice

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Level identifies one trust level in a lattice. Levels are linearly
// ordered: a larger Level dominates a smaller one. The zero Level is the
// lowest level of the lattice that defined it.
type Level int

// Errors returned by lattice operations.
var (
	ErrUnknownLevel    = errors.New("lattice: unknown trust level")
	ErrUnknownCategory = errors.New("lattice: unknown category")
	ErrDuplicateName   = errors.New("lattice: duplicate name")
	ErrNoLevels        = errors.New("lattice: no trust levels defined")
	ErrForeignClass    = errors.New("lattice: class belongs to a different lattice")
	ErrBadLabel        = errors.New("lattice: malformed class label")
)

// Lattice holds the universe of trust levels and categories out of which
// security classes are formed. A Lattice is safe for concurrent use; all
// read methods are lock-free delegations to the current Frozen view.
//
// Levels are defined lowest-first; categories are an unordered set.
// Definitions are append-only: once a level or category exists it cannot
// be removed, so previously issued Classes remain valid in every later
// version of the universe.
type Lattice struct {
	// frozen is the atomically published current universe. Readers load
	// it once per operation; writeMu serializes clone-and-publish.
	frozen  atomic.Pointer[Frozen]
	writeMu sync.Mutex

	// onPublish, when set, receives every newly published Frozen and
	// returns a wait function that blocks until the view is live in the
	// receiver's own published state. The reference monitor wires it to
	// the name server's batched epoch publisher (stage + flush), so a
	// definition lands in the policy epoch — and kills every cached
	// verdict — before the definer regains control, while concurrent
	// definitions may coalesce into one epoch. Guarded by writeMu.
	onPublish func(*Frozen) func() uint64
}

// New returns an empty lattice with no levels and no categories.
func New() *Lattice {
	l := &Lattice{}
	l.frozen.Store(&Frozen{
		lat:      l,
		version:  1,
		levelIdx: make(map[string]Level),
		catIdx:   make(map[string]int),
	})
	return l
}

// NewWithUniverse is a convenience constructor that defines the given
// levels (lowest first) and categories in one call.
func NewWithUniverse(levelsLowToHigh, categories []string) (*Lattice, error) {
	l := New()
	for _, name := range levelsLowToHigh {
		if _, err := l.DefineLevel(name); err != nil {
			return nil, err
		}
	}
	for _, name := range categories {
		if _, err := l.DefineCategory(name); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Freeze returns the currently published universe: one atomic load, no
// locks. The returned view is immutable and stays valid forever; pin it
// to run several lookups against one version of the universe.
func (l *Lattice) Freeze() *Frozen { return l.frozen.Load() }

// Version returns the current universe version (1 for an empty lattice,
// +1 per definition).
func (l *Lattice) Version() uint64 { return l.frozen.Load().version }

// SetPublishHook installs a function that receives every newly
// published Frozen universe and returns a wait function blocking until
// the view is live downstream. The reference monitor wires it to the
// name server's batched epoch publisher; a nil hook clears it. The
// hook runs with the writer mutex held, so publications reach it in
// version order; the wait function it returns is called after the
// mutex is released, so a slow downstream flush never blocks other
// definers from staging.
func (l *Lattice) SetPublishHook(fn func(*Frozen) func() uint64) {
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	l.onPublish = fn
}

// publishLocked installs next as the current universe, reports it to
// the hook, and returns the wait function the definer must call after
// releasing writeMu (it blocks until the epoch carrying next is
// published downstream). Caller holds writeMu.
func (l *Lattice) publishLocked(next *Frozen) func() uint64 {
	l.frozen.Store(next)
	if l.onPublish != nil {
		return l.onPublish(next)
	}
	v := next.version
	return func() uint64 { return v }
}

// DefineLevel appends a new trust level that dominates every level
// defined before it, and returns its Level value.
func (l *Lattice) DefineLevel(name string) (Level, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	l.writeMu.Lock()
	cur := l.frozen.Load()
	if _, dup := cur.levelIdx[name]; dup {
		l.writeMu.Unlock()
		return 0, fmt.Errorf("%w: level %q", ErrDuplicateName, name)
	}
	next := cur.cloneForDefine()
	lv := Level(len(next.levels))
	next.levels = append(next.levels, name)
	next.levelIdx[name] = lv
	wait := l.publishLocked(next)
	l.writeMu.Unlock()
	wait()
	return lv, nil
}

// DefineCategory adds a new category to the universe and returns its
// index.
func (l *Lattice) DefineCategory(name string) (int, error) {
	if err := validName(name); err != nil {
		return 0, err
	}
	l.writeMu.Lock()
	cur := l.frozen.Load()
	if _, dup := cur.catIdx[name]; dup {
		l.writeMu.Unlock()
		return 0, fmt.Errorf("%w: category %q", ErrDuplicateName, name)
	}
	next := cur.cloneForDefine()
	idx := len(next.cats)
	next.cats = append(next.cats, name)
	next.catIdx[name] = idx
	wait := l.publishLocked(next)
	l.writeMu.Unlock()
	wait()
	return idx, nil
}

func validName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrBadLabel)
	}
	if strings.ContainsAny(name, "{},: \t\n") {
		return fmt.Errorf("%w: name %q contains reserved characters", ErrBadLabel, name)
	}
	return nil
}

// LevelByName resolves a level name.
func (l *Lattice) LevelByName(name string) (Level, error) {
	return l.frozen.Load().LevelByName(name)
}

// LevelName returns the name of a level.
func (l *Lattice) LevelName(lv Level) (string, error) {
	return l.frozen.Load().LevelName(lv)
}

// Levels returns all level names, lowest first.
func (l *Lattice) Levels() []string { return l.frozen.Load().Levels() }

// Categories returns all category names in definition order.
func (l *Lattice) Categories() []string { return l.frozen.Load().Categories() }

// NumLevels reports the number of defined trust levels.
func (l *Lattice) NumLevels() int { return l.frozen.Load().NumLevels() }

// NumCategories reports the number of defined categories.
func (l *Lattice) NumCategories() int { return l.frozen.Load().NumCategories() }

// Class constructs a security class at the named level with the named
// categories.
func (l *Lattice) Class(level string, categories ...string) (Class, error) {
	return l.frozen.Load().Class(level, categories...)
}

// MustClass is Class but panics on error; intended for tests and
// statically known labels.
func (l *Lattice) MustClass(level string, categories ...string) Class {
	c, err := l.Class(level, categories...)
	if err != nil {
		panic(err)
	}
	return c
}

// Bottom returns the least class of the lattice: lowest level, empty
// category set. It fails if no levels are defined.
func (l *Lattice) Bottom() (Class, error) { return l.frozen.Load().Bottom() }

// Top returns the greatest class of the lattice: highest level, all
// categories. It fails if no levels are defined.
func (l *Lattice) Top() (Class, error) { return l.frozen.Load().Top() }

// ParseClass parses a textual class label of the form
//
//	level
//	level:{}
//	level:{cat1,cat2}
//
// Whitespace around names is not permitted; names follow validName.
func (l *Lattice) ParseClass(label string) (Class, error) {
	return l.frozen.Load().ParseClass(label)
}

// Format renders a class as a label accepted by ParseClass. Categories
// are sorted by name for deterministic output.
func (l *Lattice) Format(c Class) (string, error) {
	if c.lat != l {
		return "", ErrForeignClass
	}
	return l.frozen.Load().Format(c)
}
