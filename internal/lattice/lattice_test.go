package lattice

import (
	"errors"
	"testing"
)

func newTestLattice(t *testing.T) *Lattice {
	t.Helper()
	l, err := NewWithUniverse(
		[]string{"others", "organization", "local"},
		[]string{"myself", "dept-1", "dept-2", "outside"},
	)
	if err != nil {
		t.Fatalf("NewWithUniverse: %v", err)
	}
	return l
}

func TestDefineLevelOrdering(t *testing.T) {
	l := New()
	lo, err := l.DefineLevel("low")
	if err != nil {
		t.Fatalf("DefineLevel(low): %v", err)
	}
	hi, err := l.DefineLevel("high")
	if err != nil {
		t.Fatalf("DefineLevel(high): %v", err)
	}
	if !(hi > lo) {
		t.Fatalf("later-defined level must dominate: lo=%d hi=%d", lo, hi)
	}
}

func TestDefineLevelDuplicate(t *testing.T) {
	l := New()
	if _, err := l.DefineLevel("x"); err != nil {
		t.Fatalf("first define: %v", err)
	}
	if _, err := l.DefineLevel("x"); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate level: got %v, want ErrDuplicateName", err)
	}
}

func TestDefineCategoryDuplicate(t *testing.T) {
	l := New()
	if _, err := l.DefineCategory("c"); err != nil {
		t.Fatalf("first define: %v", err)
	}
	if _, err := l.DefineCategory("c"); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate category: got %v, want ErrDuplicateName", err)
	}
}

func TestBadNames(t *testing.T) {
	l := New()
	for _, bad := range []string{"", "a b", "a,b", "a:b", "a{b", "a}b", "a\nb"} {
		if _, err := l.DefineLevel(bad); !errors.Is(err, ErrBadLabel) {
			t.Errorf("DefineLevel(%q): got %v, want ErrBadLabel", bad, err)
		}
		if _, err := l.DefineCategory(bad); !errors.Is(err, ErrBadLabel) {
			t.Errorf("DefineCategory(%q): got %v, want ErrBadLabel", bad, err)
		}
	}
}

func TestLevelByNameUnknown(t *testing.T) {
	l := newTestLattice(t)
	if _, err := l.LevelByName("nope"); !errors.Is(err, ErrUnknownLevel) {
		t.Fatalf("got %v, want ErrUnknownLevel", err)
	}
}

func TestLevelNameRoundTrip(t *testing.T) {
	l := newTestLattice(t)
	for _, name := range l.Levels() {
		lv, err := l.LevelByName(name)
		if err != nil {
			t.Fatalf("LevelByName(%q): %v", name, err)
		}
		back, err := l.LevelName(lv)
		if err != nil {
			t.Fatalf("LevelName(%d): %v", lv, err)
		}
		if back != name {
			t.Errorf("round trip %q -> %d -> %q", name, lv, back)
		}
	}
	if _, err := l.LevelName(Level(99)); !errors.Is(err, ErrUnknownLevel) {
		t.Errorf("LevelName(99): got %v, want ErrUnknownLevel", err)
	}
}

func TestClassUnknownCategory(t *testing.T) {
	l := newTestLattice(t)
	if _, err := l.Class("local", "nope"); !errors.Is(err, ErrUnknownCategory) {
		t.Fatalf("got %v, want ErrUnknownCategory", err)
	}
}

func TestBottomTop(t *testing.T) {
	l := newTestLattice(t)
	bot, err := l.Bottom()
	if err != nil {
		t.Fatalf("Bottom: %v", err)
	}
	top, err := l.Top()
	if err != nil {
		t.Fatalf("Top: %v", err)
	}
	if !top.Dominates(bot) {
		t.Fatalf("top must dominate bottom")
	}
	if bot.Dominates(top) {
		t.Fatalf("bottom must not dominate top")
	}
	mid := l.MustClass("organization", "dept-1")
	if !top.Dominates(mid) || !mid.Dominates(bot) {
		t.Fatalf("top ⊒ mid ⊒ bottom violated")
	}
}

func TestBottomTopEmptyLattice(t *testing.T) {
	l := New()
	if _, err := l.Bottom(); !errors.Is(err, ErrNoLevels) {
		t.Errorf("Bottom on empty lattice: got %v, want ErrNoLevels", err)
	}
	if _, err := l.Top(); !errors.Is(err, ErrNoLevels) {
		t.Errorf("Top on empty lattice: got %v, want ErrNoLevels", err)
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	l := newTestLattice(t)
	cases := []string{
		"others",
		"local",
		"organization:{dept-1}",
		"organization:{dept-1,dept-2}",
		"local:{dept-1,dept-2,myself,outside}",
	}
	for _, label := range cases {
		c, err := l.ParseClass(label)
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", label, err)
		}
		got, err := l.Format(c)
		if err != nil {
			t.Fatalf("Format(%q): %v", label, err)
		}
		if got != label {
			t.Errorf("round trip %q -> %q", label, got)
		}
	}
}

func TestParseClassEmptyBraces(t *testing.T) {
	l := newTestLattice(t)
	c, err := l.ParseClass("local:{}")
	if err != nil {
		t.Fatalf("ParseClass(local:{}): %v", err)
	}
	if c.NumCategories() != 0 {
		t.Fatalf("want empty category set, got %d", c.NumCategories())
	}
	got, err := l.Format(c)
	if err != nil {
		t.Fatalf("Format: %v", err)
	}
	if got != "local" {
		t.Errorf("Format = %q, want %q", got, "local")
	}
}

func TestParseClassMalformed(t *testing.T) {
	l := newTestLattice(t)
	for _, bad := range []string{"local:", "local:{", "local:}", "local:dept-1", ":{}", "local:{dept-1"} {
		if _, err := l.ParseClass(bad); err == nil {
			t.Errorf("ParseClass(%q): want error, got nil", bad)
		}
	}
}

func TestFormatForeignClass(t *testing.T) {
	l1 := newTestLattice(t)
	l2 := newTestLattice(t)
	c := l1.MustClass("local")
	if _, err := l2.Format(c); !errors.Is(err, ErrForeignClass) {
		t.Fatalf("got %v, want ErrForeignClass", err)
	}
}

func TestUniverseAccessors(t *testing.T) {
	l := newTestLattice(t)
	if got := l.NumLevels(); got != 3 {
		t.Errorf("NumLevels = %d, want 3", got)
	}
	if got := l.NumCategories(); got != 4 {
		t.Errorf("NumCategories = %d, want 4", got)
	}
	lv := l.Levels()
	if len(lv) != 3 || lv[0] != "others" || lv[2] != "local" {
		t.Errorf("Levels = %v", lv)
	}
	cats := l.Categories()
	if len(cats) != 4 || cats[0] != "myself" {
		t.Errorf("Categories = %v", cats)
	}
	// Mutating returned slices must not affect the lattice.
	lv[0] = "corrupt"
	cats[0] = "corrupt"
	if l.Levels()[0] != "others" || l.Categories()[0] != "myself" {
		t.Error("accessor slices alias internal state")
	}
}

func TestClassGrowingUniverse(t *testing.T) {
	// Classes issued before the universe grew must still compare
	// correctly against classes issued after.
	l := New()
	if _, err := l.DefineLevel("low"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.DefineCategory("a"); err != nil {
		t.Fatal(err)
	}
	early := l.MustClass("low", "a")
	for i := 0; i < 130; i++ { // push past two bitset words
		if _, err := l.DefineCategory(catName(i)); err != nil {
			t.Fatal(err)
		}
	}
	late := l.MustClass("low", "a", catName(129))
	if !late.Dominates(early) {
		t.Error("late {a,c129} must dominate early {a}")
	}
	if early.Dominates(late) {
		t.Error("early {a} must not dominate late {a,c129}")
	}
	same := l.MustClass("low", "a")
	if !same.Equal(early) || !early.Equal(same) {
		t.Error("equal sets from different universe sizes must be Equal")
	}
}

func catName(i int) string {
	return "c" + string(rune('0'+i/100)) + string(rune('0'+(i/10)%10)) + string(rune('0'+i%10))
}
