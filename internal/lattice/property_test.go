package lattice

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// propLattice is a shared universe for property tests: 5 levels and 70
// categories (so category bitsets span two words).
var propLattice = func() *Lattice {
	levels := []string{"l0", "l1", "l2", "l3", "l4"}
	cats := make([]string, 70)
	for i := range cats {
		cats[i] = catName(i)
	}
	l, err := NewWithUniverse(levels, cats)
	if err != nil {
		panic(err)
	}
	return l
}()

// randClass is a quick.Generator producing arbitrary classes of
// propLattice.
type randClass struct{ C Class }

func (randClass) Generate(r *rand.Rand, _ int) reflect.Value {
	lv := Level(r.Intn(propLattice.NumLevels()))
	set := newBitset(0)
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		set = set.with(r.Intn(propLattice.NumCategories()))
	}
	return reflect.ValueOf(randClass{Class{lat: propLattice, level: lv, cats: set}})
}

var quickCfg = &quick.Config{MaxCount: 500}

func TestPropDominanceReflexive(t *testing.T) {
	f := func(a randClass) bool { return a.C.Dominates(a.C) }
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropDominanceAntisymmetric(t *testing.T) {
	f := func(a, b randClass) bool {
		if a.C.Dominates(b.C) && b.C.Dominates(a.C) {
			return a.C.Equal(b.C)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropDominanceTransitive(t *testing.T) {
	f := func(a, b, c randClass) bool {
		if a.C.Dominates(b.C) && b.C.Dominates(c.C) {
			return a.C.Dominates(c.C)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropJoinIsLeastUpperBound(t *testing.T) {
	f := func(a, b, up randClass) bool {
		j := a.C.Join(b.C)
		if !j.Dominates(a.C) || !j.Dominates(b.C) {
			return false
		}
		// Any other upper bound dominates the join.
		if up.C.Dominates(a.C) && up.C.Dominates(b.C) {
			return up.C.Dominates(j)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropMeetIsGreatestLowerBound(t *testing.T) {
	f := func(a, b, dn randClass) bool {
		m := a.C.Meet(b.C)
		if !a.C.Dominates(m) || !b.C.Dominates(m) {
			return false
		}
		if a.C.Dominates(dn.C) && b.C.Dominates(dn.C) {
			return m.Dominates(dn.C)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropJoinMeetCommutative(t *testing.T) {
	f := func(a, b randClass) bool {
		return a.C.Join(b.C).Equal(b.C.Join(a.C)) &&
			a.C.Meet(b.C).Equal(b.C.Meet(a.C))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropJoinMeetAssociative(t *testing.T) {
	f := func(a, b, c randClass) bool {
		return a.C.Join(b.C).Join(c.C).Equal(a.C.Join(b.C.Join(c.C))) &&
			a.C.Meet(b.C).Meet(c.C).Equal(a.C.Meet(b.C.Meet(c.C)))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropAbsorption(t *testing.T) {
	f := func(a, b randClass) bool {
		return a.C.Join(a.C.Meet(b.C)).Equal(a.C) &&
			a.C.Meet(a.C.Join(b.C)).Equal(a.C)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropIdempotent(t *testing.T) {
	f := func(a randClass) bool {
		return a.C.Join(a.C).Equal(a.C) && a.C.Meet(a.C).Equal(a.C)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropFlowDuality(t *testing.T) {
	// read(a,b) == write(b,a): information flows one way.
	f := func(a, b randClass) bool {
		return a.C.CanRead(b.C) == b.C.CanWrite(a.C)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropNoFlowCycleUnlessEqual(t *testing.T) {
	// If information can flow a->b and b->a the classes are equal:
	// the lattice admits no laundering cycles.
	f := func(a, b randClass) bool {
		if a.C.CanWrite(b.C) && b.C.CanWrite(a.C) {
			return a.C.Equal(b.C)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropFormatParseRoundTrip(t *testing.T) {
	f := func(a randClass) bool {
		s, err := propLattice.Format(a.C)
		if err != nil {
			return false
		}
		back, err := propLattice.ParseClass(s)
		if err != nil {
			return false
		}
		return back.Equal(a.C)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func TestPropOverwriteImpliesReadWrite(t *testing.T) {
	f := func(a, b randClass) bool {
		if a.C.CanOverwrite(b.C) {
			return a.C.CanRead(b.C) && a.C.CanWrite(b.C)
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
