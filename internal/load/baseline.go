package load

import (
	"fmt"

	"secext/internal/acl"
	"secext/internal/lattice"
)

// The map-children baseline.
//
// Before the compact layout (PR 10) a tree node carried its children in
// a map[string]*Node, every bind allocated a fresh path and name
// string, and every node held a private clone of its ACL. This file
// rebuilds that representation as a shadow structure so E20 can price
// the old layout against the live one on identical populations. The
// shadow is measured (HeapDelta), not estimated, so the comparison does
// not depend on anyone's arithmetic being charitable.

// mapNode mirrors the old node layout: map children, a stored name
// header alongside the path, an inline class value, a private ACL
// clone per node.
type mapNode struct {
	name       string
	path       string
	kind       uint8
	multilevel bool
	acl        *acl.ACL
	class      lattice.Class
	payload    any
	children   map[string]*mapNode
}

// BuildMapBaseline builds the plan's tree in the map-children layout
// with per-node strings and per-node ACL clones — the allocation
// behavior the interner and the dedup table replaced. Returns the root
// and the node count.
func BuildMapBaseline(p Plan, class lattice.Class) (*mapNode, int) {
	pool := make([]*acl.ACL, p.ACLPool)
	for k := range pool {
		pool[k] = p.ACLPoolEntry(k)
	}
	root := &mapNode{
		name: p.Root[1:], path: p.Root,
		acl: pool[0].Clone(), class: class,
		children: make(map[string]*mapNode, p.Dirs),
	}
	n := 1
	for d := 0; d < p.Dirs; d++ {
		name := fmt.Sprintf("d%05d", d)
		dir := &mapNode{
			name: name, path: p.Root + "/" + name,
			acl: pool[p.dirACLIndex(d)].Clone(), class: class,
			children: make(map[string]*mapNode, p.LeavesPerDir),
		}
		root.children[name] = dir
		n++
		for l := 0; l < p.LeavesPerDir; l++ {
			ln := fmt.Sprintf("f%04d", l)
			leaf := &mapNode{
				name: ln, path: dir.path + "/" + ln, kind: 6, // file
				acl: pool[p.leafACLIndex(d*p.LeavesPerDir+l)].Clone(), class: class,
			}
			dir.children[ln] = leaf
			n++
		}
	}
	return root, n
}
