// Package load builds large synthetic name trees and drives zipf-
// distributed check traffic against them. It is the machinery behind
// the E20 scale experiment and the cmd/secload harness: both need the
// same deterministic million-object tree (shape, ACL pool, principal
// population), the same leaf-index→path mapping for zipf sampling, and
// the same latency accounting, so the machinery lives here once.
package load

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/lattice"
	"secext/internal/names"
)

// Config describes one synthetic population: tree size and shape, the
// principal/group population, and the distinct-ACL pool scattered over
// the tree. The zero value is not usable; start from Defaults.
type Config struct {
	// Nodes is the approximate tree size under Root (the builder rounds
	// to whole directories; see Plan).
	Nodes int
	// LeavesPerDir is the fan-out of each directory.
	LeavesPerDir int
	// Principals and Groups populate the registry; every principal is a
	// member of one group (index mod Groups).
	Principals int
	Groups     int
	// ACLPool is the number of distinct ACL values scattered over the
	// tree. Every pool entry grants everyone read+list (so any principal
	// can drive check traffic) plus distinguishing principal and group
	// entries.
	ACLPool int
	// Root is the directory the tree is built under.
	Root string
	// ChunkSize bounds one BindSubtreeUnchecked call (one epoch
	// publication per chunk).
	ChunkSize int
	// Seed fixes every pseudo-random choice.
	Seed int64
	// Zipf is the skew parameter s (> 1) of the leaf-index distribution.
	Zipf float64
}

// Defaults is a small, CI-sized population. Scale Nodes/Principals up
// for real runs (bench-load uses 10^6 / 10^5).
func Defaults() Config {
	return Config{
		Nodes:        10_000,
		LeavesPerDir: 256,
		Principals:   2_000,
		Groups:       64,
		ACLPool:      512,
		Root:         "/load",
		ChunkSize:    20_000,
		Seed:         1,
		Zipf:         1.1,
	}
}

// Plan is the concrete shape derived from a Config: Dirs directories,
// each with exactly LeavesPerDir leaves, under the Root directory.
type Plan struct {
	Config
	Dirs   int
	Leaves int
	// TotalNodes counts the Root directory, the Dirs, and the Leaves.
	TotalNodes int
}

// NewPlan rounds the configured node count to whole directories.
func NewPlan(cfg Config) Plan {
	if cfg.LeavesPerDir <= 0 {
		cfg.LeavesPerDir = 256
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 20_000
	}
	if cfg.Root == "" {
		cfg.Root = "/load"
	}
	if cfg.Zipf <= 1 {
		cfg.Zipf = 1.1
	}
	dirs := (cfg.Nodes - 1 + cfg.LeavesPerDir) / (cfg.LeavesPerDir + 1)
	if dirs < 1 {
		dirs = 1
	}
	return Plan{
		Config:     cfg,
		Dirs:       dirs,
		Leaves:     dirs * cfg.LeavesPerDir,
		TotalNodes: 1 + dirs + dirs*cfg.LeavesPerDir,
	}
}

// DirPath returns the path of directory d.
func (p Plan) DirPath(d int) string {
	return fmt.Sprintf("%s/d%05d", p.Root, d)
}

// LeafPath maps leaf index i (0 <= i < Leaves) to its path. Zipf
// sampling draws indices; this turns them into check targets.
func (p Plan) LeafPath(i int) string {
	return fmt.Sprintf("%s/d%05d/f%04d", p.Root, i/p.LeavesPerDir, i%p.LeavesPerDir)
}

// PrincipalName returns the name of principal i.
func PrincipalName(i int) string { return fmt.Sprintf("p%06d", i) }

// GroupName returns the name of group g.
func GroupName(g int) string { return fmt.Sprintf("g%03d", g) }

// ACLPoolEntry builds the k-th distinct ACL of the pool: everyone may
// read and list (so check traffic from any principal is allowed), and
// the distinguishing write/delete entries reference a real principal
// and a real group so the ACLs exercise the registry like hand-written
// policy would.
func (p Plan) ACLPoolEntry(k int) *acl.ACL {
	return acl.New(
		acl.AllowEveryone(acl.Read|acl.List),
		acl.Allow(PrincipalName((k*7)%p.Principals), acl.Write|acl.Delete),
		acl.AllowGroup(GroupName(k%p.Groups), acl.Write|acl.Administrate),
	)
}

// aclFor assigns every node a pool entry: directories by directory
// index, leaves by global leaf index.
func (p Plan) dirACLIndex(d int) int  { return d % p.ACLPool }
func (p Plan) leafACLIndex(i int) int { return i % p.ACLPool }

// BuildStats reports what Populate did and what it cost.
type BuildStats struct {
	Plan         Plan
	Principals   int
	Groups       int
	TreeNodes    int
	Publications uint64
	RegistryTime time.Duration
	TreeTime     time.Duration
}

// Populate fills a system with the plan's population: principals,
// groups, and memberships in three batched registry publications (one
// freeze each — per-entity registration is quadratic at this scale;
// see principal.Registry.AddPrincipals), then the tree in ChunkSize
// bulk-bind publications.
func Populate(sys *core.System, p Plan) (BuildStats, error) {
	st := BuildStats{Plan: p}
	lowest := sys.Lattice().Levels()[0]
	bottom, err := sys.Lattice().Bottom()
	if err != nil {
		return st, err
	}

	t0 := time.Now()
	if err := addPrincipals(sys, p, lowest); err != nil {
		return st, err
	}
	reg := sys.Registry()
	groups := make([]string, p.Groups)
	for g := range groups {
		groups[g] = GroupName(g)
	}
	if err := reg.AddGroups(groups...); err != nil {
		return st, err
	}
	grants := make(map[string][]string, p.Groups)
	for i := 0; i < p.Principals; i++ {
		g := GroupName(i % p.Groups)
		grants[g] = append(grants[g], PrincipalName(i))
	}
	if _, err := reg.AddMemberships(grants); err != nil {
		return st, err
	}
	st.Principals, st.Groups = p.Principals, p.Groups
	st.RegistryTime = time.Since(t0)

	t1 := time.Now()
	pubs0 := sys.Names().Publishes()
	if err := BuildTree(sys.Names(), p, bottom); err != nil {
		return st, err
	}
	st.TreeTime = time.Since(t1)
	st.Publications = sys.Names().Publishes() - pubs0
	st.TreeNodes = 1 + p.Dirs + p.Leaves
	return st, nil
}

// addPrincipals registers the plan's principals as one batched registry
// publication. A worker pool over AddPrincipal does not help here: the
// write-combining publisher coalesces the downstream *epochs*, but
// every individual registration still freezes the registry, and each
// freeze clones membership tables holding all earlier principals —
// quadratic in the population.
func addPrincipals(sys *core.System, p Plan, classLabel string) error {
	names := make([]string, p.Principals)
	for i := range names {
		names[i] = PrincipalName(i)
	}
	_, err := sys.AddPrincipals(classLabel, names...)
	return err
}

// BuildTree builds the plan's tree on a bare name server (no checks,
// ChunkSize specs per publication). The ACL pool is materialized once
// and shared across chunks, so the server's dedup table sees the same
// pointers it canonicalized before.
func BuildTree(ns *names.Server, p Plan, class lattice.Class) error {
	pool := make([]*acl.ACL, p.ACLPool)
	for k := range pool {
		pool[k] = p.ACLPoolEntry(k)
	}
	if _, err := ns.BindUnchecked("/", names.BindSpec{
		Name: p.Root[1:], Kind: names.KindDomain, ACL: pool[0], Class: class,
	}); err != nil {
		return err
	}
	chunk := make([]names.SubtreeSpec, 0, p.ChunkSize)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if _, _, err := ns.BindSubtreeUnchecked(p.Root, chunk); err != nil {
			return err
		}
		chunk = chunk[:0]
		return nil
	}
	for d := 0; d < p.Dirs; d++ {
		dir := fmt.Sprintf("d%05d", d)
		chunk = append(chunk, names.SubtreeSpec{
			Path: dir, Kind: names.KindDomain, ACL: pool[p.dirACLIndex(d)], Class: class,
		})
		for l := 0; l < p.LeavesPerDir; l++ {
			chunk = append(chunk, names.SubtreeSpec{
				Path: fmt.Sprintf("%s/f%04d", dir, l), Kind: names.KindFile,
				ACL: pool[p.leafACLIndex(d*p.LeavesPerDir+l)], Class: class,
			})
		}
		// Flush on directory boundaries only, so a chunk never needs a
		// parent from a previous chunk.
		if len(chunk) >= p.ChunkSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// NewZipfPicker returns a deterministic zipf sampler over leaf indices.
func (p Plan) NewZipfPicker(seed int64) func() int {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, p.Zipf, 1, uint64(p.Leaves-1))
	return func() int { return int(z.Uint64()) }
}

// Latencies accumulates samples and reports percentiles.
type Latencies struct {
	ds []time.Duration
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) { l.ds = append(l.ds, d) }

// Merge folds another recorder's samples in.
func (l *Latencies) Merge(o *Latencies) { l.ds = append(l.ds, o.ds...) }

// Count returns the number of samples.
func (l *Latencies) Count() int { return len(l.ds) }

// Percentile returns the p-th percentile (0 < p <= 100) over the
// recorded samples, or 0 with no samples. Sorting happens per call;
// call after the measurement window, not inside it.
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.ds) == 0 {
		return 0
	}
	sort.Slice(l.ds, func(i, j int) bool { return l.ds[i] < l.ds[j] })
	i := int(p/100*float64(len(l.ds))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(l.ds) {
		i = len(l.ds) - 1
	}
	return l.ds[i]
}

// HeapDelta runs build between two garbage-collected heap readings and
// returns the retained-byte delta. The caller must keep the built
// structure reachable (return it from build's closure scope) or the
// second GC frees what the first reading excluded.
func HeapDelta(build func()) int64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	build()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	return int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
}
