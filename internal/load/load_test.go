package load

import (
	"net"
	"runtime"
	"testing"
	"time"

	"secext/internal/core"
	"secext/internal/remote"
	"secext/internal/telemetry"
)

func TestPlanShape(t *testing.T) {
	cfg := Defaults()
	cfg.Nodes = 1000
	cfg.LeavesPerDir = 100
	p := NewPlan(cfg)
	if p.Dirs != 10 {
		t.Fatalf("Dirs = %d, want 10", p.Dirs)
	}
	if p.Leaves != 1000 {
		t.Fatalf("Leaves = %d, want 1000", p.Leaves)
	}
	if p.TotalNodes != 1+10+1000 {
		t.Fatalf("TotalNodes = %d, want 1011", p.TotalNodes)
	}
	if got := p.DirPath(3); got != "/load/d00003" {
		t.Fatalf("DirPath(3) = %q", got)
	}
	if got := p.LeafPath(205); got != "/load/d00002/f0005" {
		t.Fatalf("LeafPath(205) = %q", got)
	}

	// Degenerate configs are clamped, never zero or negative.
	tiny := NewPlan(Config{Nodes: 1})
	if tiny.Dirs < 1 || tiny.TotalNodes < 2 {
		t.Fatalf("tiny plan: %+v", tiny)
	}
}

func TestACLPoolReferencesPopulation(t *testing.T) {
	cfg := Defaults()
	cfg.Principals = 10
	cfg.Groups = 3
	cfg.ACLPool = 7
	p := NewPlan(cfg)
	for k := 0; k < p.ACLPool; k++ {
		a := p.ACLPoolEntry(k)
		if a == nil || len(a.Entries()) == 0 {
			t.Fatalf("pool entry %d empty", k)
		}
	}
	// Distinct pool indices yield distinct ACL values (that is the point
	// of the pool: a bounded number of DISTINCT policies).
	if p.ACLPoolEntry(0).String() == p.ACLPoolEntry(1).String() {
		t.Fatal("pool entries 0 and 1 identical")
	}
}

func TestZipfPickerDeterministicAndSkewed(t *testing.T) {
	cfg := Defaults()
	cfg.Nodes = 1000
	p := NewPlan(cfg)
	a, b := p.NewZipfPicker(7), p.NewZipfPicker(7)
	hot := 0
	for i := 0; i < 1000; i++ {
		x, y := a(), b()
		if x != y {
			t.Fatalf("pickers diverge at %d: %d vs %d", i, x, y)
		}
		if x < 0 || x >= p.Leaves {
			t.Fatalf("index %d out of range", x)
		}
		if x == 0 {
			hot++
		}
	}
	if hot < 100 {
		t.Fatalf("zipf skew missing: leaf 0 drawn %d/1000 times", hot)
	}
}

func TestLatenciesPercentiles(t *testing.T) {
	var l Latencies
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	var m Latencies
	m.Merge(&l)
	if m.Count() != 100 {
		t.Fatalf("Count = %d", m.Count())
	}
	if got := m.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %s", got)
	}
	if got := m.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %s", got)
	}
	var empty Latencies
	if empty.Percentile(50) != 0 {
		t.Fatal("empty percentile not zero")
	}
}

func TestHeapDeltaMeasuresRetention(t *testing.T) {
	var keep []byte
	d := HeapDelta(func() { keep = make([]byte, 1<<20) })
	// keep must stay live past the second GC inside HeapDelta; a dead
	// store would let the delta cancel to ~zero (the exact bug the E20
	// runner guards against with its own KeepAlives). The bracket GCs
	// can reclaim a few hundred unrelated bytes, so allow slack below
	// the slice size.
	runtime.KeepAlive(keep)
	if d < 1<<20-8192 {
		t.Fatalf("HeapDelta = %d, want ~1MiB", d)
	}
}

// newTestSystem builds a bare system the way telWorld does, without
// importing the secext facade (which would cycle back into load's
// consumers).
func newTestSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Levels:       []string{"others", "organization", "local"},
		Categories:   []string{"dept-1", "dept-2"},
		DisableAudit: true,
		Telemetry:    telemetry.Options{Mode: telemetry.ModeOff},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPopulateAndMapBaselineAgreeOnShape(t *testing.T) {
	cfg := Defaults()
	cfg.Nodes = 300
	cfg.LeavesPerDir = 50
	cfg.Principals = 40
	cfg.Groups = 4
	cfg.ACLPool = 16
	p := NewPlan(cfg)

	sys := newTestSystem(t)
	st, err := Populate(sys, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.TreeNodes != p.TotalNodes {
		t.Fatalf("built %d nodes, want %d", st.TreeNodes, p.TotalNodes)
	}
	if st.Principals != p.Principals || st.Groups != p.Groups {
		t.Fatalf("population %d/%d, want %d/%d", st.Principals, st.Groups, p.Principals, p.Groups)
	}
	if st.Publications == 0 || st.Publications > uint64(p.TotalNodes) {
		t.Fatalf("publications = %d (bulk bind should batch)", st.Publications)
	}

	// Every planned leaf resolves, and ACL assignment is pool-shared:
	// the live tree must dedupe down to at most the pool size.
	// The live tree holds the plan's nodes plus the name-space root "/"
	// the server itself owns.
	fp := sys.Names().EpochFootprint()
	if fp.Nodes != p.TotalNodes+1 {
		t.Fatalf("footprint sees %d nodes, want %d", fp.Nodes, p.TotalNodes+1)
	}
	if fp.DistinctACLs > p.ACLPool+1 { // +1 for the root ACL
		t.Fatalf("%d distinct ACLs, pool is %d", fp.DistinctACLs, p.ACLPool)
	}
	if fp.NameBytes != 0 {
		t.Fatalf("NameBytes = %d, names must be derived, never stored", fp.NameBytes)
	}

	// The map-children shadow baseline reproduces the identical shape.
	bottom, err := sys.Lattice().Bottom()
	if err != nil {
		t.Fatal(err)
	}
	root, n := BuildMapBaseline(p, bottom)
	if root == nil || n != p.TotalNodes {
		t.Fatalf("baseline built %d nodes, want %d", n, p.TotalNodes)
	}
}

func TestDriveZipfOverLoopback(t *testing.T) {
	cfg := Defaults()
	cfg.Nodes = 200
	cfg.LeavesPerDir = 50
	cfg.Principals = 20
	cfg.Groups = 4
	cfg.ACLPool = 8
	p := NewPlan(cfg)

	sys := newTestSystem(t)
	if _, err := Populate(sys, p); err != nil {
		t.Fatal(err)
	}
	tok, err := sys.Registry().IssueToken(PrincipalName(0))
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(sys)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer l.Close()
	defer srv.Close()

	// Single manual round trip first: allowed check and a clean denial.
	c, err := Dial(l.Addr().String(), tok)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Check(p.LeafPath(0), "read")
	if err != nil || !ok {
		t.Fatalf("read check: ok=%v err=%v", ok, err)
	}
	ok, err = c.Check(p.LeafPath(1), "execute")
	if err != nil {
		t.Fatalf("execute check transport error: %v", err)
	}
	if ok {
		t.Fatal("execute allowed: no pool entry grants it")
	}
	c.Close()

	tr, err := DriveZipf(l.Addr().String(), []string{tok}, p, 400, 250*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Errors > 0 {
		t.Fatalf("%d transport errors", tr.Errors)
	}
	if tr.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if tr.P50 <= 0 || tr.P99 < tr.P50 {
		t.Fatalf("latency ordering broken: p50=%s p99=%s", tr.P50, tr.P99)
	}
}
