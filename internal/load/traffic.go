package load

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Remote traffic driving: a minimal line-protocol client and an
// open-loop zipf check generator. The generator schedules sends on a
// fixed clock and measures each operation from its SCHEDULED time, not
// its actual send time, so a server that falls behind shows the queue
// delay in the percentiles instead of silently pacing the generator
// down (the coordinated-omission trap).

// Conn is one authenticated line-protocol connection.
type Conn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// Dial connects to a secextd line-protocol address and authenticates
// with the token.
func Dial(addr, token string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{c: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
	// The server greets each connection with a banner line before any
	// request; consume it or every reply afterwards is off by one.
	banner, err := c.r.ReadString('\n')
	if err != nil {
		nc.Close()
		return nil, err
	}
	if !strings.HasPrefix(banner, "OK") {
		nc.Close()
		return nil, fmt.Errorf("load: banner: %s", strings.TrimSpace(banner))
	}
	resp, err := c.roundTrip("AUTH " + token)
	if err != nil {
		nc.Close()
		return nil, err
	}
	if !strings.HasPrefix(resp, "OK") {
		nc.Close()
		return nil, fmt.Errorf("load: auth: %s", resp)
	}
	return c, nil
}

// Close closes the connection.
func (c *Conn) Close() error { return c.c.Close() }

func (c *Conn) roundTrip(line string) (string, error) {
	if _, err := c.w.WriteString(line + "\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(resp), nil
}

// Check issues one mediated CHECK and reports whether it was allowed.
// A denial is a normal outcome, not an error; errors are transport or
// protocol failures.
func (c *Conn) Check(path, modes string) (bool, error) {
	resp, err := c.roundTrip("CHECK " + path + " " + modes)
	if err != nil {
		return false, err
	}
	switch {
	case strings.HasPrefix(resp, "OK"):
		return true, nil
	case strings.HasPrefix(resp, "ERR denied"):
		return false, nil
	}
	return false, fmt.Errorf("load: check: %s", resp)
}

// TrafficResult is one generator run's outcome.
type TrafficResult struct {
	Ops      int           // operations completed
	Denied   int           // checks answered with a denial
	Errors   int           // transport/protocol failures
	Wall     time.Duration // wall time of the window
	Achieved float64       // completed ops per second
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
}

// DriveZipf runs an open-loop zipf check load: conns connections each
// pace rate/conns checks per second against addr for the window,
// targets drawn by the plan's zipf sampler. tokens[i%len] authenticates
// connection i.
func DriveZipf(addr string, tokens []string, p Plan, rate float64, window time.Duration, conns int) (TrafficResult, error) {
	if conns <= 0 {
		conns = 1
	}
	if rate <= 0 {
		return TrafficResult{}, fmt.Errorf("load: rate must be positive")
	}
	interval := time.Duration(float64(conns) / rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	var (
		mu     sync.Mutex
		all    Latencies
		res    TrafficResult
		errOut error
		wg     sync.WaitGroup
	)
	start := time.Now().Add(10 * time.Millisecond) // common epoch for all conns
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := Dial(addr, tokens[i%len(tokens)])
			if err != nil {
				mu.Lock()
				if errOut == nil {
					errOut = err
				}
				mu.Unlock()
				return
			}
			defer conn.Close()
			pick := p.NewZipfPicker(p.Seed + int64(i)*7919)
			var lats Latencies
			ops, denied, errs := 0, 0, 0
			// Stagger connections across one interval so sends do not
			// arrive in lockstep.
			next := start.Add(time.Duration(i) * interval / time.Duration(conns))
			deadline := start.Add(window)
			for next.Before(deadline) {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				ok, err := conn.Check(p.LeafPath(pick()), "read")
				lats.Add(time.Since(next)) // from SCHEDULED time
				next = next.Add(interval)
				if err != nil {
					errs++
					continue
				}
				ops++
				if !ok {
					denied++
				}
			}
			mu.Lock()
			all.Merge(&lats)
			res.Ops += ops
			res.Denied += denied
			res.Errors += errs
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if errOut != nil {
		return res, errOut
	}
	res.Wall = time.Since(start)
	if res.Wall > 0 {
		res.Achieved = float64(res.Ops) / res.Wall.Seconds()
	}
	res.P50 = all.Percentile(50)
	res.P95 = all.Percentile(95)
	res.P99 = all.Percentile(99)
	res.Max = all.Percentile(100)
	return res, nil
}
