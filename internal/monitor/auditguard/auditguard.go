// Package auditguard provides a dry-run observer for the monitor
// pipeline: a guard that never denies, but counts the requests it sees
// and — when wrapping an inner guard — counts how many of them the
// inner guard would have denied. This is the standard rollout tool for
// a new policy: stack auditguard.New(candidate) in front of production
// traffic, watch WouldDeny, and only then install the candidate for
// real.
//
// The guard is pure in the pipeline's sense (its counters never affect
// a verdict), so it does not disable the decision cache. That is a
// deliberate trade: with the cache enabled the observer samples cache
// misses only. Disable the cache, or pair it with a Stateful guard,
// when an exhaustive count matters more than the fast path.
package auditguard

import (
	"sync/atomic"

	"secext/internal/monitor"
)

// Guard observes requests without ever denying them.
type Guard struct {
	name   string
	inner  monitor.Guard
	record func(monitor.Request, monitor.Verdict)

	checked   atomic.Uint64
	wouldDeny atomic.Uint64
}

// New builds an observer. inner, if non-nil, is evaluated in shadow
// mode: its verdict is counted and reported to record but never
// returned. record, if non-nil, receives every request with the shadow
// verdict (an allow when there is no inner guard); it runs on the
// mediation path under the mechanism's locks and must not call back
// into the system.
func New(inner monitor.Guard, record func(monitor.Request, monitor.Verdict)) *Guard {
	name := "audit"
	if inner != nil {
		name = "audit:" + inner.Name()
	}
	return &Guard{name: name, inner: inner, record: record}
}

// Name implements monitor.Guard.
func (g *Guard) Name() string { return g.name }

// Check implements monitor.Guard: count, shadow-evaluate, always allow.
func (g *Guard) Check(r monitor.Request) monitor.Verdict {
	g.checked.Add(1)
	v := monitor.Allow()
	if g.inner != nil {
		v = g.inner.Check(r)
		if !v.Allow {
			g.wouldDeny.Add(1)
		}
	}
	if g.record != nil {
		g.record(r, v)
	}
	return monitor.Allow()
}

// Checked returns how many requests the observer has seen.
func (g *Guard) Checked() uint64 { return g.checked.Load() }

// WouldDeny returns how many of those the inner guard would have
// denied. Always zero without an inner guard.
func (g *Guard) WouldDeny() uint64 { return g.wouldDeny.Load() }
