package auditguard

import (
	"testing"

	"secext/internal/monitor"
)

// veto denies everything; the shadow candidate under test.
type veto struct{}

func (veto) Name() string { return "veto" }
func (veto) Check(monitor.Request) monitor.Verdict {
	return monitor.Deny("veto", "candidate says no")
}

func TestObserverNeverDenies(t *testing.T) {
	g := New(veto{}, nil)
	for i := 0; i < 5; i++ {
		if v := g.Check(monitor.Request{}); !v.Allow {
			t.Fatalf("dry-run guard denied: %+v", v)
		}
	}
	if g.Checked() != 5 || g.WouldDeny() != 5 {
		t.Errorf("Checked=%d WouldDeny=%d; want 5, 5", g.Checked(), g.WouldDeny())
	}
}

func TestObserverWithoutInner(t *testing.T) {
	g := New(nil, nil)
	if v := g.Check(monitor.Request{}); !v.Allow {
		t.Fatalf("bare observer denied: %+v", v)
	}
	if g.Checked() != 1 || g.WouldDeny() != 0 {
		t.Errorf("Checked=%d WouldDeny=%d; want 1, 0", g.Checked(), g.WouldDeny())
	}
	if g.Name() != "audit" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestRecorderSeesShadowVerdict(t *testing.T) {
	var got []monitor.Verdict
	g := New(veto{}, func(_ monitor.Request, v monitor.Verdict) {
		got = append(got, v)
	})
	if g.Name() != "audit:veto" {
		t.Errorf("Name = %q", g.Name())
	}
	g.Check(monitor.Request{})
	if len(got) != 1 || got[0].Allow || got[0].Reason != "candidate says no" {
		t.Fatalf("recorded verdicts = %+v; want the shadow denial", got)
	}
}

// The observer must stay pure: installing it must not disable the
// decision cache.
func TestObserverIsNotStateful(t *testing.T) {
	p := monitor.NewPipeline(New(veto{}, nil))
	if !p.Cacheable() {
		t.Fatal("observer made the pipeline non-cacheable")
	}
}
