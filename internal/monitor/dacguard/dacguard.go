// Package dacguard is the discretionary half of the default guard
// stack: the ACL decision of §2.1, ported verbatim out of the name
// server so that discretionary policy is a pluggable module rather than
// mechanism. It runs first in the default pipeline — the paper layers
// mandatory control on top of discretionary control, so a DAC denial
// short-circuits before the lattice is consulted.
package dacguard

import (
	"strings"

	"secext/internal/acl"
	"secext/internal/monitor"
)

// name is the guard's identity in verdicts.
const name = "dac"

// Guard evaluates the object's ACL against the requested modes. It is
// stateless and safe for concurrent use.
type Guard struct{}

// New returns the discretionary guard.
func New() *Guard { return &Guard{} }

// Name implements monitor.Guard.
func (*Guard) Name() string { return name }

// Check implements monitor.Guard.
//
//   - OpCreate, OpRelabel, OpAdmit carry no discretionary question (the
//     ACL legs of those operations arrive as separate OpAccess
//     requests), so they pass.
//   - A request with AnyOf set needs at least one of those modes
//     granted (GetACL's "read or administrate" disjunction).
//   - Everything else is the conjunctive check: every requested mode
//     must be granted, deny entries overriding (acl.ACL.Check).
//
// Group entries are resolved against r.Members — the frozen membership
// relation of the policy epoch the request was pinned to — so a
// concurrent revocation can never split the decision. Only a caller
// with no epoch (r.Members == nil) falls back to Subject.MemberOf.
func (*Guard) Check(r monitor.Request) monitor.Verdict {
	switch r.Op {
	case monitor.OpCreate, monitor.OpRelabel, monitor.OpAdmit:
		return monitor.Allow()
	}
	if r.AnyOf != 0 {
		if r.Object.ACL.GrantedIn(r.Subject, r.Members)&r.AnyOf == 0 {
			return monitor.Deny(name, "acl: need "+disjunction(r.AnyOf))
		}
		return monitor.Allow()
	}
	if !r.Object.ACL.CheckIn(r.Subject, r.Modes, r.Members) {
		return monitor.Deny(name, "acl: modes not granted")
	}
	return monitor.Allow()
}

// disjunction renders an AnyOf mode set as "read or administrate".
func disjunction(m acl.Mode) string {
	return strings.ReplaceAll(m.String(), ",", " or ")
}

// Allows is the compiled form of Check's OpAccess/OpTraverse verdict:
// the same decision Check renders by ACL entry iteration, answered from
// a freeze-time Summary with a few bitset probes. pid is the subject's
// dense principal ID in the registry the summary was compiled against.
// Callers (the epoch fast path) handle the ops Check passes through
// (OpCreate/OpRelabel/OpAdmit) before consulting summaries; the
// existing Check remains the oracle the fast path is tested against.
func Allows(sum *acl.Summary, pid int, modes, anyOf acl.Mode) bool {
	if anyOf != 0 {
		return sum.Granted(pid)&anyOf != 0
	}
	return sum.Grants(pid, modes)
}
