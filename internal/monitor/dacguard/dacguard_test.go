package dacguard

import (
	"testing"

	"secext/internal/acl"
	"secext/internal/monitor"
)

// sub is a bare test subject.
type sub string

func (s sub) SubjectName() string { return string(s) }
func (sub) MemberOf(string) bool  { return false }

func req(a *acl.ACL, modes, anyOf acl.Mode, op monitor.Op) monitor.Request {
	return monitor.Request{
		Subject: sub("p"),
		Object:  monitor.Object{Path: "/obj", ACL: a},
		Modes:   modes, AnyOf: anyOf, Op: op,
	}
}

func TestConjunctiveCheck(t *testing.T) {
	g := New()
	a := acl.New(acl.Allow("p", acl.Read|acl.Write))
	if v := g.Check(req(a, acl.Read|acl.Write, 0, monitor.OpAccess)); !v.Allow {
		t.Fatalf("granted modes denied: %+v", v)
	}
	v := g.Check(req(a, acl.Read|acl.Delete, 0, monitor.OpAccess))
	if v.Allow || v.Guard != "dac" || v.Reason != "acl: modes not granted" {
		t.Fatalf("ungranted mode allowed or wrong reason: %+v", v)
	}
}

func TestAnyOfDisjunction(t *testing.T) {
	g := New()
	// Administrate but not Read still satisfies read-or-administrate.
	a := acl.New(acl.Allow("p", acl.Administrate))
	anyOf := acl.Read | acl.Administrate
	if v := g.Check(req(a, acl.Read, anyOf, monitor.OpAccess)); !v.Allow {
		t.Fatalf("disjunction denied: %+v", v)
	}
	v := g.Check(req(acl.New(), acl.Read, anyOf, monitor.OpAccess))
	if v.Allow || v.Reason != "acl: need read or administrate" {
		t.Fatalf("empty ACL: %+v; want the disjunctive reason", v)
	}
}

func TestNonDiscretionaryOpsPass(t *testing.T) {
	g := New()
	for _, op := range []monitor.Op{monitor.OpCreate, monitor.OpRelabel, monitor.OpAdmit} {
		// Even an empty ACL and ungranted modes pass: these ops carry
		// no discretionary question of their own.
		if v := g.Check(req(acl.New(), acl.Write, 0, op)); !v.Allow {
			t.Errorf("%v denied by dac: %+v", op, v)
		}
	}
}

func TestName(t *testing.T) {
	if New().Name() != "dac" {
		t.Fatal("name changed; verdict attribution depends on it")
	}
}
