package dacguard

import (
	"testing"

	"secext/internal/acl"
	"secext/internal/monitor"
)

// sub is a bare test subject.
type sub string

func (s sub) SubjectName() string { return string(s) }
func (sub) MemberOf(string) bool  { return false }

func req(a *acl.ACL, modes, anyOf acl.Mode, op monitor.Op) monitor.Request {
	return monitor.Request{
		Subject: sub("p"),
		Object:  monitor.Object{Path: "/obj", ACL: a},
		Modes:   modes, AnyOf: anyOf, Op: op,
	}
}

func TestConjunctiveCheck(t *testing.T) {
	g := New()
	a := acl.New(acl.Allow("p", acl.Read|acl.Write))
	if v := g.Check(req(a, acl.Read|acl.Write, 0, monitor.OpAccess)); !v.Allow {
		t.Fatalf("granted modes denied: %+v", v)
	}
	v := g.Check(req(a, acl.Read|acl.Delete, 0, monitor.OpAccess))
	if v.Allow || v.Guard != "dac" || v.Reason != "acl: modes not granted" {
		t.Fatalf("ungranted mode allowed or wrong reason: %+v", v)
	}
}

func TestAnyOfDisjunction(t *testing.T) {
	g := New()
	// Administrate but not Read still satisfies read-or-administrate.
	a := acl.New(acl.Allow("p", acl.Administrate))
	anyOf := acl.Read | acl.Administrate
	if v := g.Check(req(a, acl.Read, anyOf, monitor.OpAccess)); !v.Allow {
		t.Fatalf("disjunction denied: %+v", v)
	}
	v := g.Check(req(acl.New(), acl.Read, anyOf, monitor.OpAccess))
	if v.Allow || v.Reason != "acl: need read or administrate" {
		t.Fatalf("empty ACL: %+v; want the disjunctive reason", v)
	}
}

func TestNonDiscretionaryOpsPass(t *testing.T) {
	g := New()
	for _, op := range []monitor.Op{monitor.OpCreate, monitor.OpRelabel, monitor.OpAdmit} {
		// Even an empty ACL and ungranted modes pass: these ops carry
		// no discretionary question of their own.
		if v := g.Check(req(acl.New(), acl.Write, 0, op)); !v.Allow {
			t.Errorf("%v denied by dac: %+v", op, v)
		}
	}
}

func TestName(t *testing.T) {
	if New().Name() != "dac" {
		t.Fatal("name changed; verdict attribution depends on it")
	}
}

// idResolver maps a fixed principal list and flat groups onto dense
// IDs; it doubles as the acl.Membership for the oracle side.
type idResolver struct {
	ids    map[string]int
	groups map[string][]string
}

func (r *idResolver) PrincipalID(name string) (int, bool) {
	id, ok := r.ids[name]
	return id, ok
}

func (r *idResolver) GroupPrincipalIDs(group string) []uint64 {
	var s acl.IDSet
	for _, m := range r.groups[group] {
		if id, ok := r.ids[m]; ok {
			for len(s) <= id/64 {
				s = append(s, 0)
			}
			s[id/64] |= 1 << uint(id%64)
		}
	}
	return s
}

func (r *idResolver) NumPrincipalIDs() int { return len(r.ids) }

func (r *idResolver) IsMember(subject, group string) bool {
	for _, m := range r.groups[group] {
		if m == subject {
			return true
		}
	}
	return false
}

// TestAllowsMatchesCheck cross-checks the compiled Allows verdict
// against the guard's Check over every mode subset, both conjunctive
// and disjunctive, for subjects hit by principal, group, everyone, and
// deny entries.
func TestAllowsMatchesCheck(t *testing.T) {
	g := New()
	r := &idResolver{
		ids:    map[string]int{"p": 0, "q": 1, "z": 2},
		groups: map[string][]string{"staff": {"q", "z"}},
	}
	a := acl.New(
		acl.Allow("p", acl.Read|acl.Write),
		acl.AllowGroup("staff", acl.Read|acl.List),
		acl.AllowEveryone(acl.Execute),
		acl.Deny("z", acl.Read),
		acl.DenyEveryone(acl.Delete),
	)
	sum := a.Compile(r)
	for name, id := range r.ids {
		s := sub(name)
		for want := acl.Mode(0); want <= acl.AllModes; want++ {
			rq := monitor.Request{
				Subject: s,
				Object:  monitor.Object{Path: "/obj", ACL: a},
				Modes:   want, Members: r, Op: monitor.OpAccess,
			}
			if got, oracle := Allows(sum, id, want, 0), g.Check(rq).Allow; got != oracle {
				t.Fatalf("Allows(%s, %s) = %v, Check = %v", name, want, got, oracle)
			}
			rq.AnyOf = want
			if got, oracle := Allows(sum, id, want, want), g.Check(rq).Allow; got != oracle {
				t.Fatalf("Allows anyOf(%s, %s) = %v, Check = %v", name, want, got, oracle)
			}
		}
	}
}
