package monitor

import (
	"fmt"
	"testing"

	"secext/internal/acl"
)

// maskGuard denies any request whose modes intersect its mask — a pure
// guard: its verdict is a function of the request alone.
type maskGuard struct {
	name string
	mask acl.Mode
}

func (g maskGuard) Name() string { return g.name }
func (g maskGuard) Check(r Request) Verdict {
	if r.Modes&g.mask != 0 {
		return Deny(g.name, "masked")
	}
	return Allow()
}

// FuzzPipelineOrder checks the order-independence property for pure
// guards: a pipeline is a conjunction, so while the ORDER decides which
// guard's reason is reported (short-circuit), the allow/deny OUTCOME
// must be identical under any permutation of the stack. Stateful guards
// are exactly the guards for which this property can fail — which is
// why they must declare themselves (monitor.Stateful) and disable the
// decision cache.
func FuzzPipelineOrder(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x82}, uint8(0x12))
	f.Add([]byte{0x00}, uint8(0xff))
	f.Add([]byte{0xff, 0x0f, 0xf0, 0x3c}, uint8(0x00))
	f.Fuzz(func(t *testing.T, masks []byte, modes uint8) {
		if len(masks) == 0 || len(masks) > 8 {
			return
		}
		guards := make([]Guard, len(masks))
		for i, m := range masks {
			guards[i] = maskGuard{name: fmt.Sprintf("m%d", i), mask: acl.Mode(m)}
		}
		req := Request{Modes: acl.Mode(modes)}
		want := NewPipeline(guards...).Check(req).Allow

		// Every rotation and the full reversal must agree on the outcome.
		for rot := 1; rot < len(guards); rot++ {
			perm := append(append([]Guard(nil), guards[rot:]...), guards[:rot]...)
			if got := NewPipeline(perm...).Check(req).Allow; got != want {
				t.Fatalf("rotation %d: allow=%v, original=%v (masks=%x modes=%x)",
					rot, got, want, masks, modes)
			}
		}
		rev := make([]Guard, len(guards))
		for i, g := range guards {
			rev[len(guards)-1-i] = g
		}
		if got := NewPipeline(rev...).Check(req).Allow; got != want {
			t.Fatalf("reversal: allow=%v, original=%v (masks=%x modes=%x)", got, want, masks, modes)
		}

		// The outcome must also match the direct conjunction of the
		// individual verdicts (no guard's decision is lost or invented).
		all := true
		for _, g := range guards {
			if !g.Check(req).Allow {
				all = false
			}
		}
		if want != all {
			t.Fatalf("pipeline=%v, conjunction=%v (masks=%x modes=%x)", want, all, masks, modes)
		}
	})
}
