// Package macguard is the mandatory half of the default guard stack:
// the lattice flow rules of §2.2, ported verbatim out of the name
// server. It runs after dacguard in the default pipeline, giving the
// paper's layering — a request must survive the discretionary decision
// before the mandatory one is consulted.
package macguard

import (
	"secext/internal/acl"
	"secext/internal/lattice"
	"secext/internal/monitor"
)

// name is the guard's identity in verdicts.
const name = "mac"

// Guard applies the Bell-LaPadula-style flow rules to the request. It
// is stateless and safe for concurrent use.
type Guard struct{}

// New returns the mandatory guard.
func New() *Guard { return &Guard{} }

// Name implements monitor.Guard.
func (*Guard) Name() string { return name }

// Check implements monitor.Guard. The rules, by operation:
//
//   - OpAccess / OpTraverse: the requested modes map onto the flow
//     rules — read, list, execute, extend require the subject to
//     dominate the object (information about the object flows to the
//     subject); write, delete, administrate require the object to
//     dominate the subject (*-property, no write-down); write-append
//     requires only the *-property and is the paper's mechanism for
//     upgrading information without reading it. Extend sits in the read
//     group: registering a specialization requires seeing the service,
//     while the authority the specialization runs with is bounded
//     separately by its static class (internal/dispatch).
//   - OpContainerBind: the no-write-down rule on a multilevel container
//     is waived so subjects above the container's class can create
//     entries (upgraded-directory semantics), but the subject must
//     still dominate the container to see it at all.
//   - OpContainerUnbind: removing an entry from a multilevel container
//     needs no mandatory rule (the DAC write mode, checked by dacguard,
//     suffices).
//   - OpCreate: the new node's class must dominate the creator —
//     creating an object below the subject's own class would constitute
//     a write-down channel.
//   - OpRelabel: relabeling moves the information at the old class to
//     the new one, so it is simultaneously a read of the old label and
//     a write of the new: the subject must dominate what it
//     declassifies and may not write down.
//   - OpAdmit: a caller may use a statically classed dispatch binding
//     only if the caller dominates the binding's static class (§2.2's
//     class-based selection).
func (*Guard) Check(r monitor.Request) monitor.Verdict {
	switch r.Op {
	case monitor.OpContainerBind:
		if !r.Class.CanRead(r.Object.Class) {
			return monitor.Deny(name, "mac: subject does not dominate container")
		}
		return monitor.Allow()
	case monitor.OpContainerUnbind:
		return monitor.Allow()
	case monitor.OpCreate:
		if !r.Class.CanWrite(r.NewClass) {
			return monitor.Deny(name, "mac: new node class must dominate creator (no write down)")
		}
		return monitor.Allow()
	case monitor.OpRelabel:
		if !r.Class.CanRead(r.Object.Class) {
			return monitor.Deny(name, "mac: subject does not dominate current class")
		}
		if !r.Class.CanWrite(r.NewClass) {
			return monitor.Deny(name, "mac: relabel would write down")
		}
		return monitor.Allow()
	case monitor.OpAdmit:
		if r.Object.Class.Valid() && !r.Class.CanRead(r.Object.Class) {
			return monitor.Deny(name, "mac: caller does not dominate static class")
		}
		return monitor.Allow()
	}
	return flow(r.Class, r.Object.Class, r.Modes)
}

// flow maps requested DAC modes onto the lattice flow rules.
func flow(subject, object lattice.Class, modes acl.Mode) monitor.Verdict {
	const readGroup = acl.Read | acl.List | acl.Execute | acl.Extend
	const writeGroup = acl.Write | acl.Delete | acl.Administrate
	if modes&readGroup != 0 && !subject.CanRead(object) {
		return monitor.Deny(name, "mac: subject does not dominate object (no read up)")
	}
	if modes&writeGroup != 0 && !subject.CanWrite(object) {
		return monitor.Deny(name, "mac: object does not dominate subject (no write down)")
	}
	if modes&acl.WriteAppend != 0 && !subject.CanAppend(object) {
		return monitor.Deny(name, "mac: append would write down")
	}
	return monitor.Allow()
}

// FlowAllows is the boolean form of the default-op flow decision: true
// exactly when Check on an OpAccess/OpTraverse request with these
// classes and modes would allow. The epoch fast path uses it when one
// of the classes is not interned in the compiled dominance table; the
// denial reasons stay the walk path's business.
func FlowAllows(subject, object lattice.Class, modes acl.Mode) bool {
	return flow(subject, object, modes).Allow
}

// FlowAllowsInterned is FlowAllows over a precomputed dominance table:
// both classes are dense indices from d, so each direction of the flow
// test is a single matrix word probe.
func FlowAllowsInterned(d *lattice.Dominance, subj, obj int, modes acl.Mode) bool {
	const readGroup = acl.Read | acl.List | acl.Execute | acl.Extend
	const writeGroup = acl.Write | acl.Delete | acl.Administrate
	if modes&readGroup != 0 && !d.Dominates(subj, obj) {
		return false
	}
	if modes&(writeGroup|acl.WriteAppend) != 0 && !d.Dominates(obj, subj) {
		return false
	}
	return true
}
