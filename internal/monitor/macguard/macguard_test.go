package macguard

import (
	"testing"

	"secext/internal/acl"
	"secext/internal/lattice"
	"secext/internal/monitor"
)

func classes(t *testing.T) (low, high lattice.Class) {
	t.Helper()
	lat, err := lattice.NewWithUniverse([]string{"low", "high"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return lat.MustClass("low"), lat.MustClass("high")
}

func flowReq(subject, object lattice.Class, modes acl.Mode) monitor.Request {
	return monitor.Request{
		Class:  subject,
		Object: monitor.Object{Path: "/obj", Class: object},
		Modes:  modes,
		Op:     monitor.OpAccess,
	}
}

func TestFlowRules(t *testing.T) {
	low, high := classes(t)
	g := New()
	cases := []struct {
		name       string
		sub, obj   lattice.Class
		modes      acl.Mode
		allow      bool
		wantReason string
	}{
		{"read up denied", low, high, acl.Read, false, "mac: subject does not dominate object (no read up)"},
		{"read down allowed", high, low, acl.Read, true, ""},
		{"write down denied", high, low, acl.Write, false, "mac: object does not dominate subject (no write down)"},
		{"write up allowed", low, high, acl.Write, true, ""},
		{"append up allowed", low, high, acl.WriteAppend, true, ""},
		{"append down denied", high, low, acl.WriteAppend, false, "mac: append would write down"},
		{"execute up denied", low, high, acl.Execute, false, "mac: subject does not dominate object (no read up)"},
		{"delete down denied", high, low, acl.Delete, false, "mac: object does not dominate subject (no write down)"},
	}
	for _, tc := range cases {
		v := g.Check(flowReq(tc.sub, tc.obj, tc.modes))
		if v.Allow != tc.allow || (!tc.allow && v.Reason != tc.wantReason) {
			t.Errorf("%s: verdict %+v", tc.name, v)
		}
	}
}

func TestContainerOps(t *testing.T) {
	low, high := classes(t)
	g := New()
	// Bind into a multilevel container: write-down waived, but the
	// subject must dominate the container.
	v := g.Check(monitor.Request{Class: high,
		Object: monitor.Object{Class: low, Multilevel: true}, Op: monitor.OpContainerBind})
	if !v.Allow {
		t.Errorf("bind above container denied: %+v", v)
	}
	v = g.Check(monitor.Request{Class: low,
		Object: monitor.Object{Class: high, Multilevel: true}, Op: monitor.OpContainerBind})
	if v.Allow || v.Reason != "mac: subject does not dominate container" {
		t.Errorf("bind into dominating container: %+v", v)
	}
	// Unbind carries no mandatory rule at all.
	v = g.Check(monitor.Request{Class: low,
		Object: monitor.Object{Class: high, Multilevel: true}, Op: monitor.OpContainerUnbind})
	if !v.Allow {
		t.Errorf("container unbind denied: %+v", v)
	}
}

func TestCreateAndRelabel(t *testing.T) {
	low, high := classes(t)
	g := New()
	if v := g.Check(monitor.Request{Class: low, NewClass: high, Op: monitor.OpCreate}); !v.Allow {
		t.Errorf("create above self denied: %+v", v)
	}
	v := g.Check(monitor.Request{Class: high, NewClass: low, Op: monitor.OpCreate})
	if v.Allow || v.Reason != "mac: new node class must dominate creator (no write down)" {
		t.Errorf("create below self: %+v", v)
	}

	// Relabel: must dominate the current class and not write down.
	v = g.Check(monitor.Request{Class: low,
		Object: monitor.Object{Class: high}, NewClass: high, Op: monitor.OpRelabel})
	if v.Allow || v.Reason != "mac: subject does not dominate current class" {
		t.Errorf("relabel of dominating object: %+v", v)
	}
	v = g.Check(monitor.Request{Class: high,
		Object: monitor.Object{Class: high}, NewClass: low, Op: monitor.OpRelabel})
	if v.Allow || v.Reason != "mac: relabel would write down" {
		t.Errorf("relabel downward: %+v", v)
	}
	if v := g.Check(monitor.Request{Class: high,
		Object: monitor.Object{Class: low}, NewClass: high, Op: monitor.OpRelabel}); !v.Allow {
		t.Errorf("legal relabel denied: %+v", v)
	}
}

func TestAdmit(t *testing.T) {
	low, high := classes(t)
	g := New()
	// A zero static class admits everyone.
	if v := g.Check(monitor.Request{Class: low, Op: monitor.OpAdmit}); !v.Allow {
		t.Errorf("dynamic binding denied: %+v", v)
	}
	if v := g.Check(monitor.Request{Class: high,
		Object: monitor.Object{Class: low}, Op: monitor.OpAdmit}); !v.Allow {
		t.Errorf("dominating caller denied: %+v", v)
	}
	v := g.Check(monitor.Request{Class: low,
		Object: monitor.Object{Class: high}, Op: monitor.OpAdmit})
	if v.Allow || v.Reason != "mac: caller does not dominate static class" {
		t.Errorf("dominated caller admitted: %+v", v)
	}
}

// TestFlowAllowsMatchesCheck cross-checks the boolean and interned
// flow helpers against the guard's Check verdict for every class pair
// and every mode subset of the default (OpAccess) rule.
func TestFlowAllowsMatchesCheck(t *testing.T) {
	g := New()
	lat, err := lattice.NewWithUniverse(
		[]string{"low", "high"},
		[]string{"a", "b"},
	)
	if err != nil {
		t.Fatal(err)
	}
	var classes []lattice.Class
	for _, lv := range []string{"low", "high"} {
		for _, cs := range [][]string{nil, {"a"}, {"b"}, {"a", "b"}} {
			classes = append(classes, lat.MustClass(lv, cs...))
		}
	}
	b := lattice.NewDominanceBuilder()
	for _, c := range classes {
		b.Add(c)
	}
	dom := b.Build()

	for i, subj := range classes {
		for j, obj := range classes {
			for modes := acl.Mode(0); modes <= acl.AllModes; modes++ {
				rq := monitor.Request{
					Class:  subj,
					Object: monitor.Object{Path: "/obj", Class: obj},
					Modes:  modes, Op: monitor.OpAccess,
				}
				oracle := g.Check(rq).Allow
				if got := FlowAllows(subj, obj, modes); got != oracle {
					t.Fatalf("FlowAllows(%s, %s, %s) = %v, Check = %v",
						subj, obj, modes, got, oracle)
				}
				if got := FlowAllowsInterned(dom, i, j, modes); got != oracle {
					t.Fatalf("FlowAllowsInterned(%s, %s, %s) = %v, Check = %v",
						subj, obj, modes, got, oracle)
				}
			}
		}
	}
}
