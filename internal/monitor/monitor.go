// Package monitor is the policy half of the reference monitor: an
// ordered pipeline of pluggable guards that decide access requests the
// mechanism layers (internal/names, internal/core, internal/dispatch)
// produce.
//
// The paper's model layers mandatory control over discretionary control
// and funnels every call, extend, and data access through one monitor
// (§2.1–§2.2). Before this package existed that layering was an
// implementation accident — DAC and MAC were evaluated inline by the
// name server. Here the layering is explicit structure: the name server
// resolves names and describes the object it found (ACL, class,
// multilevel flag); each Guard renders an independent verdict on the
// request; the Pipeline composes them with short-circuit deny. The
// default stack is [dacguard, macguard], reproducing the paper's
// "mandatory on top of discretionary" order, and new policies are new
// guards, not name-server patches.
//
// Concurrency and cost: the guard stack is copy-on-write behind an
// atomic pointer, so Check takes no locks, and Request/Verdict travel
// by value, so a decision allocates nothing. Installing or removing a
// guard bumps a decision.Generation; the decision cache folds that
// generation into its keys, so every cached verdict computed under the
// old stack dies the moment the stack changes.
//
// Guards whose verdicts depend on mutable internal state (budgets,
// rates) must declare themselves by implementing Stateful; the pipeline
// then reports itself non-cacheable and the mediation fast path is
// bypassed, so such guards see every request rather than only cache
// misses.
package monitor

import (
	"sync"
	"sync/atomic"
	"time"

	"secext/internal/acl"
	"secext/internal/decision"
	"secext/internal/lattice"
	"secext/internal/telemetry"
)

// Op tells guards which mechanism operation produced a request. Most
// requests are plain OpAccess checks; the remaining values mark the
// operations whose rules the paper special-cases (multilevel
// containers, node creation, relabeling) and the dispatcher's
// admissibility question.
type Op uint8

const (
	// OpAccess checks the requested modes on the target object: the
	// common case (CheckAccess, List, SetACL, the Delete and Write legs
	// of Unbind and Rename, GetACL with AnyOf set).
	OpAccess Op = iota
	// OpTraverse checks visibility of an interior node during path
	// resolution (list on every node strictly above the target, §2.3).
	OpTraverse
	// OpContainerBind checks adding an entry to a multilevel container:
	// the DAC write mode applies, the MAC no-write-down rule is waived,
	// but the subject must still dominate the container to see it.
	OpContainerBind
	// OpContainerUnbind checks removing an entry from a multilevel
	// container: DAC write only, no MAC rule at all.
	OpContainerUnbind
	// OpCreate checks the class a new node is being labeled with
	// (Request.NewClass): a subject may not create objects below its own
	// class — that would be a write-down channel.
	OpCreate
	// OpRelabel checks moving the object to Request.NewClass: a read of
	// the old label and a write of the new one.
	OpRelabel
	// OpAdmit asks whether a caller at Request.Class may use a dispatch
	// binding whose static class is Object.Class. The request carries no
	// Subject and no ACL: the discretionary execute check already
	// happened on the service node.
	OpAdmit
)

var opNames = [...]string{
	"access", "traverse", "container-bind", "container-unbind",
	"create", "relabel", "admit",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Object is the mechanism's description of the node a request targets.
// The name server fills it from the resolved node; guards read it and
// decide.
type Object struct {
	// Path is the absolute name of the object.
	Path string
	// ACL is the object's discretionary state as of the immutable
	// name-space snapshot the request was resolved against; it cannot
	// change while guards read it. It may be nil only for requests
	// that carry no discretionary question (OpAdmit).
	ACL *acl.ACL
	// Class is the object's mandatory security class (for OpAdmit, the
	// binding's static class).
	Class lattice.Class
	// Multilevel marks multilevel containers (names.Node.Multilevel).
	Multilevel bool
}

// Request is one access-control question. It travels by value so that a
// decision on the mediation path performs no heap allocation; guards
// must not retain pointers derived from it beyond the call.
//
// Requests produced on behalf of the mechanism itself (OpAdmit) carry a
// nil Subject; guards keyed by subject identity must pass those through.
type Request struct {
	// Subject is the requesting principal (nil for OpAdmit).
	Subject acl.Subject
	// Class is the subject's current security class.
	Class lattice.Class
	// Object describes the target node.
	Object Object
	// Modes are the requested access modes: the conjunctive
	// discretionary question and, simultaneously, the flow modes the
	// mandatory rules apply to.
	Modes acl.Mode
	// AnyOf, when non-zero, replaces the conjunctive discretionary
	// check: the subject needs at least one of these modes (GetACL's
	// "read or administrate"). The mandatory rules still use Modes.
	AnyOf acl.Mode
	// NewClass is the class being introduced by the operation: the class
	// requested for a new node (OpCreate) or the class the object would
	// move to (OpRelabel). The two ops share the field — no request
	// carries both — which keeps the by-value Request a cache-friendly
	// size on the mediation path.
	NewClass lattice.Class
	// Members is the group-membership relation of the policy epoch the
	// request was resolved against (the epoch's frozen principal
	// registry). Guards that evaluate group ACL entries must consult it
	// rather than Subject.MemberOf, so the whole decision reads one
	// consistent version of the membership relation. Nil when the caller
	// has no epoch pinned; guards then fall back to the subject.
	Members acl.Membership
	// Op is the operation that produced the request.
	Op Op
}

// Verdict is one guard's answer (or the pipeline's combined answer).
type Verdict struct {
	// Guard names the guard that produced the verdict; empty for the
	// pipeline's combined allow.
	Guard string
	// Allow is the decision.
	Allow bool
	// Reason explains a denial ("acl: ...", "mac: ...", "quota: ...");
	// empty on allow.
	Reason string
}

// Allow is the affirmative verdict guards return on no objection.
func Allow() Verdict { return Verdict{Allow: true} }

// Deny builds a denying verdict for the named guard.
func Deny(guard, reason string) Verdict {
	return Verdict{Guard: guard, Allow: false, Reason: reason}
}

// Guard is one composable policy module.
//
// Check must be a function of the request and (for Stateful guards) the
// guard's own state: it must not call back into the name server or the
// reference monitor, because the mechanism invokes the pipeline while
// holding its own locks.
type Guard interface {
	// Name identifies the guard in verdicts and diagnostics.
	Name() string
	// Check renders the guard's verdict on one request.
	Check(Request) Verdict
}

// Stateful is optionally implemented by guards whose verdicts depend on
// mutable internal state (budgets, rate windows). A pipeline containing
// a stateful guard reports Cacheable() == false, which makes the name
// server bypass the decision cache so the guard sees every request.
type Stateful interface {
	Stateful() bool
}

// Stack is one immutable configuration of the pipeline: the ordered
// guard list, its cacheability, and the generation it was published
// under. A Stack never changes after publication, so evaluating one is
// pure — the policy epoch pins the Stack in force when the epoch was
// published, and every decision under that epoch runs exactly that
// guard list even while Install/remove republish the pipeline.
type Stack struct {
	guards    []Guard
	cacheable bool
	gen       uint64
}

func newStack(guards []Guard, gen uint64) *Stack {
	s := &Stack{guards: guards, cacheable: true, gen: gen}
	for _, g := range guards {
		if sf, ok := g.(Stateful); ok && sf.Stateful() {
			s.cacheable = false
		}
	}
	return s
}

// Check runs the stack over one request: the first denial wins; if no
// guard objects the request is allowed. It is lock-free and
// allocation-free.
func (s *Stack) Check(r Request) Verdict {
	for _, g := range s.guards {
		if v := g.Check(r); !v.Allow {
			return v
		}
	}
	return Verdict{Allow: true}
}

// CheckTraced is Check with per-guard observability: each guard's
// verdict and evaluation time are recorded as a span on tr, and the
// denying guard's name is filled into the combined verdict. tr may be
// nil, in which case it degrades to Check plus the clock reads.
func (s *Stack) CheckTraced(r Request, tr *telemetry.ActiveTrace) Verdict {
	for _, g := range s.guards {
		start := time.Now()
		v := g.Check(r)
		d := time.Since(start)
		tr.Guard(g.Name(), v.Allow, v.Reason, d)
		if !v.Allow {
			if v.Guard == "" {
				v.Guard = g.Name()
			}
			return v
		}
	}
	return Verdict{Allow: true}
}

// Explain runs every guard regardless of earlier denials and returns
// all verdicts in stack order — the diagnostic view of a decision.
// Unlike Check it allocates; tooling only.
func (s *Stack) Explain(r Request) []Verdict {
	out := make([]Verdict, 0, len(s.guards))
	for _, g := range s.guards {
		v := g.Check(r)
		if v.Allow && v.Guard == "" {
			v.Guard = g.Name()
		}
		out = append(out, v)
	}
	return out
}

// ExplainOp is Explain plus the short-circuit point: it runs every
// guard and additionally reports the index of the guard whose denial
// would have ended a production Check (-1 when every guard allows).
// Check stops at that guard; ExplainOp records what the rest would
// have said instead of short-circuiting silently. Tooling only.
func (s *Stack) ExplainOp(r Request) (verdicts []Verdict, shortCircuit int) {
	verdicts = s.Explain(r)
	shortCircuit = -1
	for i, v := range verdicts {
		if !v.Allow {
			shortCircuit = i
			break
		}
	}
	return verdicts, shortCircuit
}

// Gen returns the generation this stack was published under.
func (s *Stack) Gen() uint64 { return s.gen }

// Cacheable reports whether every guard in this stack is pure (its
// verdict a function of the request and the protection state alone).
func (s *Stack) Cacheable() bool { return s.cacheable }

// Depth returns the number of guards in this stack.
func (s *Stack) Depth() int { return len(s.guards) }

// At returns the guard at position i in stack order. The epoch compiler
// uses it to recognize the default [dac, mac] stack by type, which is
// what licenses the compiled bitset/dominance fast path.
func (s *Stack) At(i int) Guard { return s.guards[i] }

// Guards returns the names of the stacked guards, in order.
func (s *Stack) Guards() []string {
	out := make([]string, len(s.guards))
	for i, g := range s.guards {
		out[i] = g.Name()
	}
	return out
}

// Pipeline composes an ordered guard stack with short-circuit deny: the
// first guard that objects decides, later guards never run. An empty
// pipeline allows everything — it is pure mechanism with no policy,
// which is exactly what a name server with no monitor should be.
//
// The pipeline is safe for concurrent use. Check is lock-free and
// allocation-free; Install and the remove functions it returns take a
// mutex and bump the stack generation.
type Pipeline struct {
	mu       sync.Mutex
	stack    atomic.Pointer[Stack]
	gen      decision.Generation
	onChange func(*Stack) // guarded by mu
}

// NewPipeline builds a pipeline over the given guards, in order.
func NewPipeline(guards ...Guard) *Pipeline {
	p := &Pipeline{}
	p.stack.Store(newStack(append([]Guard(nil), guards...), 0))
	return p
}

// Current returns the currently published guard stack: one atomic load,
// no locks. The returned Stack is immutable and stays valid forever;
// the name server pins it in each policy epoch so decisions under that
// epoch run a consistent guard list.
func (p *Pipeline) Current() *Stack { return p.stack.Load() }

// SetChangeHook installs a function that receives every newly published
// Stack. The name server wires it to its PublishStack epoch transition,
// so installing or removing a guard republishes the policy epoch — and
// kills every cached verdict — before the installer regains control. A
// nil hook clears it. The hook runs with the pipeline mutex held, so
// publications reach it in generation order.
func (p *Pipeline) SetChangeHook(fn func(*Stack)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.onChange = fn
}

// publishLocked installs next as the current stack and reports it to
// the hook. Caller holds p.mu.
func (p *Pipeline) publishLocked(next *Stack) {
	p.stack.Store(next)
	if p.onChange != nil {
		p.onChange(next)
	}
}

// Check runs the current stack over one request: the first denial wins;
// if no guard objects the request is allowed.
func (p *Pipeline) Check(r Request) Verdict {
	return p.stack.Load().Check(r)
}

// CheckTraced is Check with per-guard observability (see
// Stack.CheckTraced). It is only invoked for requests the telemetry
// sampler selected, so the per-guard timestamps never burden the common
// path.
func (p *Pipeline) CheckTraced(r Request, tr *telemetry.ActiveTrace) Verdict {
	return p.stack.Load().CheckTraced(r, tr)
}

// Explain runs every guard regardless of earlier denials and returns
// all verdicts in stack order — the diagnostic view of a decision.
// Unlike Check it allocates; tooling only.
func (p *Pipeline) Explain(r Request) []Verdict {
	return p.stack.Load().Explain(r)
}

// ExplainOp is Explain plus the short-circuit point — see
// Stack.ExplainOp.
func (p *Pipeline) ExplainOp(r Request) ([]Verdict, int) {
	return p.stack.Load().ExplainOp(r)
}

// Install appends a guard to the stack and returns a function that
// removes exactly that guard again. Both directions bump the stack
// generation, so cached verdicts computed under the old stack are dead
// the moment the change lands.
func (p *Pipeline) Install(g Guard) (remove func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.stack.Load().guards
	next := make([]Guard, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, g)
	p.gen.Bump()
	p.publishLocked(newStack(next, p.gen.Current()))

	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			defer p.mu.Unlock()
			cur := p.stack.Load().guards
			next := make([]Guard, 0, len(cur))
			removed := false
			for _, have := range cur {
				if !removed && have == g {
					removed = true
					continue
				}
				next = append(next, have)
			}
			p.gen.Bump()
			p.publishLocked(newStack(next, p.gen.Current()))
		})
	}
}

// Gen returns the current guard-stack generation. The name server folds
// the stack into the policy epoch, whose version keys the decision
// cache, so a stack change invalidates all cached verdicts without
// touching the cache.
func (p *Pipeline) Gen() uint64 { return p.stack.Load().gen }

// Cacheable reports whether every guard in the current stack is pure
// (its verdict a function of the request and the protection state
// alone). Stateful guards make the pipeline non-cacheable.
func (p *Pipeline) Cacheable() bool { return p.stack.Load().cacheable }

// Depth returns the number of guards in the stack.
func (p *Pipeline) Depth() int { return p.stack.Load().Depth() }

// Guards returns the names of the stacked guards, in order.
func (p *Pipeline) Guards() []string { return p.stack.Load().Guards() }
