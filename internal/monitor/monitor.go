// Package monitor is the policy half of the reference monitor: an
// ordered pipeline of pluggable guards that decide access requests the
// mechanism layers (internal/names, internal/core, internal/dispatch)
// produce.
//
// The paper's model layers mandatory control over discretionary control
// and funnels every call, extend, and data access through one monitor
// (§2.1–§2.2). Before this package existed that layering was an
// implementation accident — DAC and MAC were evaluated inline by the
// name server. Here the layering is explicit structure: the name server
// resolves names and describes the object it found (ACL, class,
// multilevel flag); each Guard renders an independent verdict on the
// request; the Pipeline composes them with short-circuit deny. The
// default stack is [dacguard, macguard], reproducing the paper's
// "mandatory on top of discretionary" order, and new policies are new
// guards, not name-server patches.
//
// Concurrency and cost: the guard stack is copy-on-write behind an
// atomic pointer, so Check takes no locks, and Request/Verdict travel
// by value, so a decision allocates nothing. Installing or removing a
// guard bumps a decision.Generation; the decision cache folds that
// generation into its keys, so every cached verdict computed under the
// old stack dies the moment the stack changes.
//
// Guards whose verdicts depend on mutable internal state (budgets,
// rates) must declare themselves by implementing Stateful; the pipeline
// then reports itself non-cacheable and the mediation fast path is
// bypassed, so such guards see every request rather than only cache
// misses.
package monitor

import (
	"sync"
	"sync/atomic"
	"time"

	"secext/internal/acl"
	"secext/internal/decision"
	"secext/internal/lattice"
	"secext/internal/telemetry"
)

// Op tells guards which mechanism operation produced a request. Most
// requests are plain OpAccess checks; the remaining values mark the
// operations whose rules the paper special-cases (multilevel
// containers, node creation, relabeling) and the dispatcher's
// admissibility question.
type Op uint8

const (
	// OpAccess checks the requested modes on the target object: the
	// common case (CheckAccess, List, SetACL, the Delete and Write legs
	// of Unbind and Rename, GetACL with AnyOf set).
	OpAccess Op = iota
	// OpTraverse checks visibility of an interior node during path
	// resolution (list on every node strictly above the target, §2.3).
	OpTraverse
	// OpContainerBind checks adding an entry to a multilevel container:
	// the DAC write mode applies, the MAC no-write-down rule is waived,
	// but the subject must still dominate the container to see it.
	OpContainerBind
	// OpContainerUnbind checks removing an entry from a multilevel
	// container: DAC write only, no MAC rule at all.
	OpContainerUnbind
	// OpCreate checks the class a new node is being labeled with
	// (Request.NewClass): a subject may not create objects below its own
	// class — that would be a write-down channel.
	OpCreate
	// OpRelabel checks moving the object to Request.NewClass: a read of
	// the old label and a write of the new one.
	OpRelabel
	// OpAdmit asks whether a caller at Request.Class may use a dispatch
	// binding whose static class is Object.Class. The request carries no
	// Subject and no ACL: the discretionary execute check already
	// happened on the service node.
	OpAdmit
)

var opNames = [...]string{
	"access", "traverse", "container-bind", "container-unbind",
	"create", "relabel", "admit",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Object is the mechanism's description of the node a request targets.
// The name server fills it from the resolved node; guards read it and
// decide.
type Object struct {
	// Path is the absolute name of the object.
	Path string
	// ACL is the object's discretionary state as of the immutable
	// name-space snapshot the request was resolved against; it cannot
	// change while guards read it. It may be nil only for requests
	// that carry no discretionary question (OpAdmit).
	ACL *acl.ACL
	// Class is the object's mandatory security class (for OpAdmit, the
	// binding's static class).
	Class lattice.Class
	// Multilevel marks multilevel containers (names.Node.Multilevel).
	Multilevel bool
}

// Request is one access-control question. It travels by value so that a
// decision on the mediation path performs no heap allocation; guards
// must not retain pointers derived from it beyond the call.
//
// Requests produced on behalf of the mechanism itself (OpAdmit) carry a
// nil Subject; guards keyed by subject identity must pass those through.
type Request struct {
	// Subject is the requesting principal (nil for OpAdmit).
	Subject acl.Subject
	// Class is the subject's current security class.
	Class lattice.Class
	// Object describes the target node.
	Object Object
	// Modes are the requested access modes: the conjunctive
	// discretionary question and, simultaneously, the flow modes the
	// mandatory rules apply to.
	Modes acl.Mode
	// AnyOf, when non-zero, replaces the conjunctive discretionary
	// check: the subject needs at least one of these modes (GetACL's
	// "read or administrate"). The mandatory rules still use Modes.
	AnyOf acl.Mode
	// NewClass is the class being introduced by the operation: the class
	// requested for a new node (OpCreate) or the class the object would
	// move to (OpRelabel). The two ops share the field — no request
	// carries both — which keeps the by-value Request a cache-friendly
	// size on the mediation path.
	NewClass lattice.Class
	// Op is the operation that produced the request.
	Op Op
}

// Verdict is one guard's answer (or the pipeline's combined answer).
type Verdict struct {
	// Guard names the guard that produced the verdict; empty for the
	// pipeline's combined allow.
	Guard string
	// Allow is the decision.
	Allow bool
	// Reason explains a denial ("acl: ...", "mac: ...", "quota: ...");
	// empty on allow.
	Reason string
}

// Allow is the affirmative verdict guards return on no objection.
func Allow() Verdict { return Verdict{Allow: true} }

// Deny builds a denying verdict for the named guard.
func Deny(guard, reason string) Verdict {
	return Verdict{Guard: guard, Allow: false, Reason: reason}
}

// Guard is one composable policy module.
//
// Check must be a function of the request and (for Stateful guards) the
// guard's own state: it must not call back into the name server or the
// reference monitor, because the mechanism invokes the pipeline while
// holding its own locks.
type Guard interface {
	// Name identifies the guard in verdicts and diagnostics.
	Name() string
	// Check renders the guard's verdict on one request.
	Check(Request) Verdict
}

// Stateful is optionally implemented by guards whose verdicts depend on
// mutable internal state (budgets, rate windows). A pipeline containing
// a stateful guard reports Cacheable() == false, which makes the name
// server bypass the decision cache so the guard sees every request.
type Stateful interface {
	Stateful() bool
}

// stack is one immutable configuration of the pipeline, published as a
// whole so Check reads a consistent guard list with one atomic load. It
// carries the generation it was published under, so the mediation fast
// path snapshots (guards, cacheable, generation) together in that one
// load instead of paying separate atomic reads.
type stack struct {
	guards    []Guard
	cacheable bool
	gen       uint64
}

func newStack(guards []Guard, gen uint64) *stack {
	s := &stack{guards: guards, cacheable: true, gen: gen}
	for _, g := range guards {
		if sf, ok := g.(Stateful); ok && sf.Stateful() {
			s.cacheable = false
		}
	}
	return s
}

// Pipeline composes an ordered guard stack with short-circuit deny: the
// first guard that objects decides, later guards never run. An empty
// pipeline allows everything — it is pure mechanism with no policy,
// which is exactly what a name server with no monitor should be.
//
// The pipeline is safe for concurrent use. Check is lock-free and
// allocation-free; Install and the remove functions it returns take a
// mutex and bump the stack generation.
type Pipeline struct {
	mu    sync.Mutex
	stack atomic.Pointer[stack]
	gen   decision.Generation
}

// NewPipeline builds a pipeline over the given guards, in order.
func NewPipeline(guards ...Guard) *Pipeline {
	p := &Pipeline{}
	p.stack.Store(newStack(append([]Guard(nil), guards...), 0))
	return p
}

// Check runs the stack over one request: the first denial wins; if no
// guard objects the request is allowed.
func (p *Pipeline) Check(r Request) Verdict {
	for _, g := range p.stack.Load().guards {
		if v := g.Check(r); !v.Allow {
			return v
		}
	}
	return Verdict{Allow: true}
}

// CheckTraced is Check with per-guard observability: each guard's
// verdict and evaluation time are recorded as a span on tr, and the
// denying guard's name is filled into the combined verdict. It is only
// invoked for requests the telemetry sampler selected, so the
// per-guard timestamps never burden the common path; tr may be nil, in
// which case it degrades to Check plus the clock reads.
func (p *Pipeline) CheckTraced(r Request, tr *telemetry.ActiveTrace) Verdict {
	for _, g := range p.stack.Load().guards {
		start := time.Now()
		v := g.Check(r)
		d := time.Since(start)
		tr.Guard(g.Name(), v.Allow, v.Reason, d)
		if !v.Allow {
			if v.Guard == "" {
				v.Guard = g.Name()
			}
			return v
		}
	}
	return Verdict{Allow: true}
}

// Explain runs every guard regardless of earlier denials and returns
// all verdicts in stack order — the diagnostic view of a decision.
// Unlike Check it allocates; tooling only.
func (p *Pipeline) Explain(r Request) []Verdict {
	guards := p.stack.Load().guards
	out := make([]Verdict, 0, len(guards))
	for _, g := range guards {
		v := g.Check(r)
		if v.Allow && v.Guard == "" {
			v.Guard = g.Name()
		}
		out = append(out, v)
	}
	return out
}

// Install appends a guard to the stack and returns a function that
// removes exactly that guard again. Both directions bump the stack
// generation, so cached verdicts computed under the old stack are dead
// the moment the change lands.
func (p *Pipeline) Install(g Guard) (remove func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := p.stack.Load().guards
	next := make([]Guard, len(cur), len(cur)+1)
	copy(next, cur)
	next = append(next, g)
	p.gen.Bump()
	p.stack.Store(newStack(next, p.gen.Current()))

	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			defer p.mu.Unlock()
			cur := p.stack.Load().guards
			next := make([]Guard, 0, len(cur))
			removed := false
			for _, have := range cur {
				if !removed && have == g {
					removed = true
					continue
				}
				next = append(next, have)
			}
			p.gen.Bump()
			p.stack.Store(newStack(next, p.gen.Current()))
		})
	}
}

// Gen returns the current guard-stack generation. The decision cache
// folds it into every key, so a stack change invalidates all cached
// verdicts without touching the cache.
func (p *Pipeline) Gen() uint64 { return p.stack.Load().gen }

// Cacheable reports whether every guard in the stack is pure (its
// verdict a function of the request and the protection state alone).
// Stateful guards make the pipeline non-cacheable.
func (p *Pipeline) Cacheable() bool { return p.stack.Load().cacheable }

// Snapshot returns the cacheability and guard-stack generation of the
// current stack in one atomic load — the pair the mediation fast path
// needs before consulting the decision cache. Both values come from the
// same published stack, so they are mutually consistent even against a
// concurrent Install.
func (p *Pipeline) Snapshot() (cacheable bool, gen uint64) {
	s := p.stack.Load()
	return s.cacheable, s.gen
}

// Depth returns the number of guards in the stack.
func (p *Pipeline) Depth() int { return len(p.stack.Load().guards) }

// Guards returns the names of the stacked guards, in order.
func (p *Pipeline) Guards() []string {
	guards := p.stack.Load().guards
	out := make([]string, len(guards))
	for i, g := range guards {
		out[i] = g.Name()
	}
	return out
}
