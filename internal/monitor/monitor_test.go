package monitor

import (
	"fmt"
	"sync"
	"testing"
)

// scripted is a test guard with a fixed verdict.
type scripted struct {
	name  string
	allow bool
	calls int
}

func (g *scripted) Name() string { return g.name }
func (g *scripted) Check(Request) Verdict {
	g.calls++
	if g.allow {
		return Allow()
	}
	return Deny(g.name, "scripted denial by "+g.name)
}

// statefulGuard is an always-allow guard that declares mutable state.
type statefulGuard struct{ scripted }

func (*statefulGuard) Stateful() bool { return true }

func TestEmptyPipelineAllows(t *testing.T) {
	p := NewPipeline()
	if v := p.Check(Request{}); !v.Allow {
		t.Fatalf("empty pipeline denied: %+v", v)
	}
	if p.Depth() != 0 || !p.Cacheable() {
		t.Errorf("Depth=%d Cacheable=%v; want 0, true", p.Depth(), p.Cacheable())
	}
}

func TestShortCircuitDeny(t *testing.T) {
	a := &scripted{name: "a", allow: true}
	b := &scripted{name: "b", allow: false}
	c := &scripted{name: "c", allow: true}
	p := NewPipeline(a, b, c)

	v := p.Check(Request{})
	if v.Allow || v.Guard != "b" || v.Reason != "scripted denial by b" {
		t.Fatalf("verdict = %+v; want b's denial", v)
	}
	if a.calls != 1 || b.calls != 1 || c.calls != 0 {
		t.Errorf("calls = %d/%d/%d; want 1/1/0 (short-circuit)", a.calls, b.calls, c.calls)
	}
}

func TestExplainRunsEveryGuard(t *testing.T) {
	a := &scripted{name: "a", allow: true}
	b := &scripted{name: "b", allow: false}
	c := &scripted{name: "c", allow: true}
	p := NewPipeline(a, b, c)

	vs := p.Explain(Request{})
	if len(vs) != 3 {
		t.Fatalf("Explain returned %d verdicts", len(vs))
	}
	if !vs[0].Allow || vs[0].Guard != "a" {
		t.Errorf("vs[0] = %+v", vs[0])
	}
	if vs[1].Allow || vs[1].Guard != "b" {
		t.Errorf("vs[1] = %+v", vs[1])
	}
	if !vs[2].Allow || vs[2].Guard != "c" {
		t.Errorf("vs[2] = %+v", vs[2])
	}
	if c.calls != 1 {
		t.Errorf("Explain skipped c after b's denial")
	}
}

func TestInstallRemoveAndGeneration(t *testing.T) {
	p := NewPipeline(&scripted{name: "base", allow: true})
	g0 := p.Gen()
	if v := p.Check(Request{}); !v.Allow {
		t.Fatal("baseline denied")
	}

	veto := &scripted{name: "veto", allow: false}
	remove := p.Install(veto)
	if p.Gen() == g0 {
		t.Error("Install did not bump the generation")
	}
	if v := p.Check(Request{}); v.Allow {
		t.Error("installed veto not consulted")
	}
	if got := p.Guards(); len(got) != 2 || got[1] != "veto" {
		t.Errorf("Guards = %v", got)
	}

	g1 := p.Gen()
	remove()
	if p.Gen() == g1 {
		t.Error("remove did not bump the generation")
	}
	if v := p.Check(Request{}); !v.Allow {
		t.Error("removed veto still denying")
	}
	// remove is idempotent: calling it again must not bump or panic.
	g2 := p.Gen()
	remove()
	if p.Gen() != g2 {
		t.Error("second remove bumped the generation")
	}
}

func TestRemoveDeletesOnlyOneIdentity(t *testing.T) {
	// Two installs of distinct guards with equal behavior: removing the
	// first must leave the second in place.
	a := &scripted{name: "dup", allow: false}
	b := &scripted{name: "dup", allow: false}
	p := NewPipeline()
	removeA := p.Install(a)
	p.Install(b)
	removeA()
	if got := p.Depth(); got != 1 {
		t.Fatalf("Depth after removing one of two = %d", got)
	}
	if v := p.Check(Request{}); v.Allow || b.calls == 0 {
		t.Error("surviving guard not consulted")
	}
}

func TestStatefulDisablesCaching(t *testing.T) {
	pure := &scripted{name: "pure", allow: true}
	p := NewPipeline(pure)
	if !p.Cacheable() {
		t.Fatal("pure pipeline must be cacheable")
	}
	sf := &statefulGuard{scripted{name: "meter", allow: true}}
	remove := p.Install(sf)
	if p.Cacheable() {
		t.Fatal("stateful guard must disable caching")
	}
	remove()
	if !p.Cacheable() {
		t.Fatal("caching must return once the stateful guard is gone")
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpAccess: "access", OpTraverse: "traverse",
		OpContainerBind: "container-bind", OpContainerUnbind: "container-unbind",
		OpCreate: "create", OpRelabel: "relabel", OpAdmit: "admit",
		Op(99): "op?",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

// pureAllow is a guard with no mutable state, safe for the race test.
type pureAllow struct{ name string }

func (g pureAllow) Name() string        { return g.name }
func (pureAllow) Check(Request) Verdict { return Allow() }

// TestConcurrentCheckAndInstall is the -race proof for the copy-on-
// write stack: checks proceed lock-free while guards come and go.
func TestConcurrentCheckAndInstall(t *testing.T) {
	p := NewPipeline(pureAllow{name: "base"})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					p.Check(Request{})
					p.Cacheable()
					p.Gen()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		remove := p.Install(pureAllow{name: fmt.Sprintf("g%d", i)})
		remove()
	}
	close(stop)
	wg.Wait()
	if p.Depth() != 1 {
		t.Errorf("Depth = %d after balanced install/remove", p.Depth())
	}
}
