package monitor

import (
	"fmt"
	"sync"
	"testing"
)

// scripted is a test guard with a fixed verdict.
type scripted struct {
	name  string
	allow bool
	calls int
}

func (g *scripted) Name() string { return g.name }
func (g *scripted) Check(Request) Verdict {
	g.calls++
	if g.allow {
		return Allow()
	}
	return Deny(g.name, "scripted denial by "+g.name)
}

// statefulGuard is an always-allow guard that declares mutable state.
type statefulGuard struct{ scripted }

func (*statefulGuard) Stateful() bool { return true }

func TestEmptyPipelineAllows(t *testing.T) {
	p := NewPipeline()
	if v := p.Check(Request{}); !v.Allow {
		t.Fatalf("empty pipeline denied: %+v", v)
	}
	if p.Depth() != 0 || !p.Cacheable() {
		t.Errorf("Depth=%d Cacheable=%v; want 0, true", p.Depth(), p.Cacheable())
	}
}

func TestShortCircuitDeny(t *testing.T) {
	a := &scripted{name: "a", allow: true}
	b := &scripted{name: "b", allow: false}
	c := &scripted{name: "c", allow: true}
	p := NewPipeline(a, b, c)

	v := p.Check(Request{})
	if v.Allow || v.Guard != "b" || v.Reason != "scripted denial by b" {
		t.Fatalf("verdict = %+v; want b's denial", v)
	}
	if a.calls != 1 || b.calls != 1 || c.calls != 0 {
		t.Errorf("calls = %d/%d/%d; want 1/1/0 (short-circuit)", a.calls, b.calls, c.calls)
	}
}

func TestExplainRunsEveryGuard(t *testing.T) {
	a := &scripted{name: "a", allow: true}
	b := &scripted{name: "b", allow: false}
	c := &scripted{name: "c", allow: true}
	p := NewPipeline(a, b, c)

	vs := p.Explain(Request{})
	if len(vs) != 3 {
		t.Fatalf("Explain returned %d verdicts", len(vs))
	}
	if !vs[0].Allow || vs[0].Guard != "a" {
		t.Errorf("vs[0] = %+v", vs[0])
	}
	if vs[1].Allow || vs[1].Guard != "b" {
		t.Errorf("vs[1] = %+v", vs[1])
	}
	if !vs[2].Allow || vs[2].Guard != "c" {
		t.Errorf("vs[2] = %+v", vs[2])
	}
	if c.calls != 1 {
		t.Errorf("Explain skipped c after b's denial")
	}
}

// TestExplainOpShortCircuitPoint: ExplainOp runs every guard like
// Explain but additionally names the guard whose denial would have
// ended a production Check.
func TestExplainOpShortCircuitPoint(t *testing.T) {
	a := &scripted{name: "a", allow: true}
	b := &scripted{name: "b", allow: false}
	c := &scripted{name: "c", allow: false}
	p := NewPipeline(a, b, c)

	vs, sc := p.ExplainOp(Request{})
	if len(vs) != 3 {
		t.Fatalf("ExplainOp returned %d verdicts", len(vs))
	}
	if sc != 1 {
		t.Errorf("short-circuit = %d, want 1 (b denies first)", sc)
	}
	if c.calls != 1 {
		t.Error("ExplainOp skipped c after b's denial")
	}
	// Production Check agrees with the reported short-circuit point.
	if v := p.Check(Request{}); v.Guard != vs[sc].Guard {
		t.Errorf("Check decided at %q, ExplainOp reported %q", v.Guard, vs[sc].Guard)
	}

	// All-allow stacks report no short-circuit.
	if vs, sc := NewPipeline(a).Current().ExplainOp(Request{}); sc != -1 || len(vs) != 1 {
		t.Errorf("all-allow ExplainOp = (%d verdicts, sc %d), want (1, -1)", len(vs), sc)
	}
	// The empty stack allows vacuously.
	if vs, sc := NewPipeline().ExplainOp(Request{}); sc != -1 || len(vs) != 0 {
		t.Errorf("empty ExplainOp = (%d verdicts, sc %d), want (0, -1)", len(vs), sc)
	}
}

func TestInstallRemoveAndGeneration(t *testing.T) {
	p := NewPipeline(&scripted{name: "base", allow: true})
	g0 := p.Gen()
	if v := p.Check(Request{}); !v.Allow {
		t.Fatal("baseline denied")
	}

	veto := &scripted{name: "veto", allow: false}
	remove := p.Install(veto)
	if p.Gen() == g0 {
		t.Error("Install did not bump the generation")
	}
	if v := p.Check(Request{}); v.Allow {
		t.Error("installed veto not consulted")
	}
	if got := p.Guards(); len(got) != 2 || got[1] != "veto" {
		t.Errorf("Guards = %v", got)
	}

	g1 := p.Gen()
	remove()
	if p.Gen() == g1 {
		t.Error("remove did not bump the generation")
	}
	if v := p.Check(Request{}); !v.Allow {
		t.Error("removed veto still denying")
	}
	// remove is idempotent: calling it again must not bump or panic.
	g2 := p.Gen()
	remove()
	if p.Gen() != g2 {
		t.Error("second remove bumped the generation")
	}
}

func TestRemoveDeletesOnlyOneIdentity(t *testing.T) {
	// Two installs of distinct guards with equal behavior: removing the
	// first must leave the second in place.
	a := &scripted{name: "dup", allow: false}
	b := &scripted{name: "dup", allow: false}
	p := NewPipeline()
	removeA := p.Install(a)
	p.Install(b)
	removeA()
	if got := p.Depth(); got != 1 {
		t.Fatalf("Depth after removing one of two = %d", got)
	}
	if v := p.Check(Request{}); v.Allow || b.calls == 0 {
		t.Error("surviving guard not consulted")
	}
}

func TestStatefulDisablesCaching(t *testing.T) {
	pure := &scripted{name: "pure", allow: true}
	p := NewPipeline(pure)
	if !p.Cacheable() {
		t.Fatal("pure pipeline must be cacheable")
	}
	sf := &statefulGuard{scripted{name: "meter", allow: true}}
	remove := p.Install(sf)
	if p.Cacheable() {
		t.Fatal("stateful guard must disable caching")
	}
	remove()
	if !p.Cacheable() {
		t.Fatal("caching must return once the stateful guard is gone")
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpAccess: "access", OpTraverse: "traverse",
		OpContainerBind: "container-bind", OpContainerUnbind: "container-unbind",
		OpCreate: "create", OpRelabel: "relabel", OpAdmit: "admit",
		Op(99): "op?",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

// pureAllow is a guard with no mutable state, safe for the race test.
type pureAllow struct{ name string }

func (g pureAllow) Name() string        { return g.name }
func (pureAllow) Check(Request) Verdict { return Allow() }

// TestConcurrentCheckAndInstall is the -race proof for the copy-on-
// write stack: checks proceed lock-free while guards come and go.
func TestConcurrentCheckAndInstall(t *testing.T) {
	p := NewPipeline(pureAllow{name: "base"})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					p.Check(Request{})
					p.Cacheable()
					p.Gen()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		remove := p.Install(pureAllow{name: fmt.Sprintf("g%d", i)})
		remove()
	}
	close(stop)
	wg.Wait()
	if p.Depth() != 1 {
		t.Errorf("Depth = %d after balanced install/remove", p.Depth())
	}
}

// TestStackPinning: Current returns an immutable stack — installs
// publish successors with bumped generations, and a pinned stack keeps
// its guard list, cacheability, and generation while the pipeline moves
// on. This is the property the policy epoch relies on.
func TestStackPinning(t *testing.T) {
	a := &scripted{name: "a", allow: true}
	p := NewPipeline(a)
	s0 := p.Current()
	if s0.Depth() != 1 || !s0.Cacheable() || s0.Gen() != 0 {
		t.Fatalf("initial stack: depth %d cacheable %v gen %d", s0.Depth(), s0.Cacheable(), s0.Gen())
	}

	remove := p.Install(&statefulGuard{scripted{name: "meter", allow: false}})
	s1 := p.Current()
	if s1 == s0 {
		t.Fatal("Install did not publish a new stack")
	}
	if s1.Gen() != s0.Gen()+1 || s1.Cacheable() || s1.Depth() != 2 {
		t.Fatalf("installed stack: gen %d cacheable %v depth %d", s1.Gen(), s1.Cacheable(), s1.Depth())
	}
	// The pinned old stack still allows and still reports itself pure.
	if v := s0.Check(Request{}); !v.Allow {
		t.Fatalf("pinned stack changed verdict: %+v", v)
	}
	if !s0.Cacheable() || s0.Depth() != 1 {
		t.Fatal("pinned stack mutated by a later install")
	}
	// The new stack denies through the meter.
	if v := s1.Check(Request{}); v.Allow || v.Guard != "meter" {
		t.Fatalf("new stack verdict: %+v", v)
	}
	if got := s1.Guards(); len(got) != 2 || got[0] != "a" || got[1] != "meter" {
		t.Fatalf("Guards() = %v", got)
	}
	remove()
	if p.Current().Gen() != s1.Gen()+1 {
		t.Fatal("remove did not bump the generation")
	}
}

// TestChangeHookSeesEveryPublication: the hook receives each newly
// published stack, in generation order, exactly once per change — the
// contract the name server's PublishStack transition depends on.
func TestChangeHookSeesEveryPublication(t *testing.T) {
	p := NewPipeline(&scripted{name: "a", allow: true})
	var got []uint64
	p.SetChangeHook(func(s *Stack) { got = append(got, s.Gen()) })

	remove := p.Install(&scripted{name: "b", allow: true})
	remove()
	remove() // idempotent: the second call must not republish
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("hook saw generations %v, want [1 2]", got)
	}
	// Clearing the hook stops deliveries.
	p.SetChangeHook(nil)
	p.Install(&scripted{name: "c", allow: true})
	if len(got) != 2 {
		t.Fatalf("cleared hook still fired: %v", got)
	}
}

// TestStackExplainAndTracedNilTrace: Stack.Explain reports every guard
// in order, and CheckTraced with a nil trace degrades to Check on both
// the allow and the deny path.
func TestStackExplainAndTracedNilTrace(t *testing.T) {
	a := &scripted{name: "a", allow: true}
	b := &scripted{name: "b", allow: false}
	s := NewPipeline(a, b).Current()

	vs := s.Explain(Request{})
	if len(vs) != 2 || vs[0].Guard != "a" || !vs[0].Allow || vs[1].Guard != "b" || vs[1].Allow {
		t.Fatalf("Explain = %+v", vs)
	}
	if v := s.CheckTraced(Request{}, nil); v.Allow || v.Guard != "b" {
		t.Fatalf("CheckTraced deny = %+v", v)
	}
	allowStack := NewPipeline(a).Current()
	if v := allowStack.CheckTraced(Request{}, nil); !v.Allow {
		t.Fatalf("CheckTraced allow = %+v", v)
	}
	// The pipeline-level traced entry point takes the same path.
	if v := NewPipeline(a, b).CheckTraced(Request{}, nil); v.Allow || v.Guard != "b" {
		t.Fatalf("Pipeline.CheckTraced = %+v", v)
	}
}
