// Package quotaguard is a deny-by-default budget guard for the monitor
// pipeline: each subject gets a finite number of object accesses, and a
// subject with no budget assigned is denied outright. The paper (§3)
// argues the protection model must compose with resource control;
// budgets-as-a-guard shows the pipeline carrying a policy the original
// DAC/MAC monolith could not express without surgery.
//
// The guard is Stateful — its verdict depends on how much budget
// remains — so a pipeline containing it reports itself non-cacheable
// and the mediation fast path is bypassed. Every request the guard
// should count therefore actually reaches it; a cached allow can never
// smuggle an access past the meter.
//
// A quota guard can also wrap another guard (NewWrapping): the meter
// then only charges requests the inner guard allows, so denied requests
// do not burn budget. The inner guard is evaluated outside the meter's
// mutex — the lock protects only the budget table, never a foreign
// Check, so a slow or reentrant inner guard cannot serialize the whole
// pipeline behind the meter.
package quotaguard

import (
	"strings"
	"sync"

	"secext/internal/monitor"
)

// name is the guard's identity in verdicts.
const name = "quota"

// Guard meters OpAccess requests per subject. It is safe for concurrent
// use.
type Guard struct {
	// prefix, when non-empty, scopes the meter to objects under that
	// path; requests elsewhere pass unmetered.
	prefix string

	// inner, when non-nil, is consulted before the meter: a request the
	// inner guard denies is refused without spending budget. Evaluated
	// strictly outside mu.
	inner monitor.Guard

	// mu protects budgets and nothing else. No foreign code runs while
	// it is held.
	mu      sync.Mutex
	budgets map[string]int64
}

// New builds a quota guard metering every object access. A non-empty
// prefix (e.g. "/fs") restricts metering to objects whose path starts
// with it.
func New(prefix string) *Guard {
	return &Guard{prefix: prefix, budgets: make(map[string]int64)}
}

// NewWrapping builds a quota guard that delegates to inner first and
// only charges the subject's budget when inner allows the request.
// inner must not be nil.
func NewWrapping(prefix string, inner monitor.Guard) *Guard {
	return &Guard{prefix: prefix, inner: inner, budgets: make(map[string]int64)}
}

// SetQuota assigns subject a budget of n accesses, replacing any
// previous budget. A negative n revokes the budget entirely (back to
// deny-by-default).
func (g *Guard) SetQuota(subject string, n int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n < 0 {
		delete(g.budgets, subject)
		return
	}
	g.budgets[subject] = n
}

// Remaining reports the subject's unspent budget and whether one is
// assigned at all.
func (g *Guard) Remaining(subject string) (int64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.budgets[subject]
	return n, ok
}

// Name implements monitor.Guard.
func (*Guard) Name() string { return name }

// Stateful marks the guard's verdicts as state-dependent, which makes
// the pipeline non-cacheable (see monitor.Stateful).
func (*Guard) Stateful() bool { return true }

// Check implements monitor.Guard. Only direct object accesses are
// metered: traversal, container maintenance, creation, relabeling, and
// dispatcher admission pass free, as do the mechanism's own subjectless
// requests. A metered request spends one unit; a subject with no
// assigned budget is denied, and so is one whose budget has run out.
//
// With a wrapped inner guard, the inner verdict is computed first and
// outside the mutex; only an inner allow reaches the meter. The
// critical section is exactly the budget lookup-and-decrement.
func (g *Guard) Check(r monitor.Request) monitor.Verdict {
	exempt := r.Op != monitor.OpAccess || r.Subject == nil ||
		(g.prefix != "" && !strings.HasPrefix(r.Object.Path, g.prefix))

	// Inner guard first, with no lock held: its verdict must not be
	// serialized by — or deadlock against — the meter's mutex.
	if g.inner != nil {
		if v := g.inner.Check(r); !v.Allow {
			return v
		}
	}
	if exempt {
		return monitor.Allow()
	}

	who := r.Subject.SubjectName()
	g.mu.Lock()
	n, ok := g.budgets[who]
	if ok && n > 0 {
		g.budgets[who] = n - 1
	}
	g.mu.Unlock()

	if !ok {
		return monitor.Deny(name, "quota: no budget assigned")
	}
	if n <= 0 {
		return monitor.Deny(name, "quota: exhausted")
	}
	return monitor.Allow()
}
