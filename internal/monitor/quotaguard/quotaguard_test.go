package quotaguard

import (
	"sync"
	"sync/atomic"
	"testing"

	"secext/internal/acl"
	"secext/internal/monitor"
)

type sub string

func (s sub) SubjectName() string { return string(s) }
func (sub) MemberOf(string) bool  { return false }

func access(who, path string) monitor.Request {
	return monitor.Request{
		Subject: sub(who),
		Object:  monitor.Object{Path: path},
		Modes:   acl.Read,
		Op:      monitor.OpAccess,
	}
}

func TestDenyByDefault(t *testing.T) {
	g := New("")
	v := g.Check(access("nobody", "/x"))
	if v.Allow || v.Guard != "quota" || v.Reason != "quota: no budget assigned" {
		t.Fatalf("unbudgeted subject: %+v", v)
	}
}

func TestBudgetSpendsAndExhausts(t *testing.T) {
	g := New("")
	g.SetQuota("p", 2)
	for i := 0; i < 2; i++ {
		if v := g.Check(access("p", "/x")); !v.Allow {
			t.Fatalf("access %d denied: %+v", i, v)
		}
	}
	v := g.Check(access("p", "/x"))
	if v.Allow || v.Reason != "quota: exhausted" {
		t.Fatalf("third access: %+v", v)
	}
	if rem, ok := g.Remaining("p"); !ok || rem != 0 {
		t.Errorf("Remaining = %d, %v", rem, ok)
	}
	// A negative SetQuota revokes the budget entirely.
	g.SetQuota("p", -1)
	if v := g.Check(access("p", "/x")); v.Allow || v.Reason != "quota: no budget assigned" {
		t.Fatalf("after revocation: %+v", v)
	}
}

func TestOnlyScopedAccessesMetered(t *testing.T) {
	g := New("/fs")
	g.SetQuota("p", 1)
	// Outside the scope: free.
	if v := g.Check(access("p", "/svc/thing")); !v.Allow {
		t.Fatalf("out-of-scope access denied: %+v", v)
	}
	// Non-access ops and subjectless mechanism requests: free.
	for _, r := range []monitor.Request{
		{Subject: sub("p"), Object: monitor.Object{Path: "/fs/x"}, Op: monitor.OpTraverse},
		{Subject: sub("p"), Object: monitor.Object{Path: "/fs"}, Op: monitor.OpContainerBind},
		{Subject: sub("p"), Op: monitor.OpCreate},
		{Object: monitor.Object{Path: "/fs/x"}, Op: monitor.OpAdmit},
		{Object: monitor.Object{Path: "/fs/x"}, Op: monitor.OpAccess}, // nil subject
	} {
		if v := g.Check(r); !v.Allow {
			t.Fatalf("unmetered request denied: op=%v %+v", r.Op, v)
		}
	}
	if rem, _ := g.Remaining("p"); rem != 1 {
		t.Fatalf("budget spent by unmetered requests: %d", rem)
	}
	// The scoped access spends the single unit.
	if v := g.Check(access("p", "/fs/x")); !v.Allow {
		t.Fatalf("in-scope access denied: %+v", v)
	}
	if rem, _ := g.Remaining("p"); rem != 0 {
		t.Errorf("Remaining = %d, want 0", rem)
	}
}

// The meter must declare its state so pipelines bypass the decision
// cache; a cached allow would let accesses through unmetered.
func TestGuardIsStateful(t *testing.T) {
	if monitor.NewPipeline(New("")).Cacheable() {
		t.Fatal("quota pipeline reported cacheable")
	}
}

// denyInner always refuses; the meter must not charge for it.
type denyInner struct{}

func (denyInner) Name() string                          { return "inner" }
func (denyInner) Check(monitor.Request) monitor.Verdict { return monitor.Deny("inner", "refused") }

func TestWrappingChargesOnlyInnerAllows(t *testing.T) {
	g := NewWrapping("", denyInner{})
	g.SetQuota("p", 3)
	for i := 0; i < 5; i++ {
		if v := g.Check(access("p", "/x")); v.Allow || v.Guard != "inner" {
			t.Fatalf("inner denial not propagated: %+v", v)
		}
	}
	if rem, _ := g.Remaining("p"); rem != 3 {
		t.Fatalf("denied requests burned budget: remaining %d, want 3", rem)
	}
}

// reentrantInner calls back into the wrapping meter from inside its own
// evaluation — the shape of a composed guard that consults another
// quota. sync.Mutex is not reentrant, so this test deadlocks (and the
// suite times out) if the meter ever evaluates the inner guard with its
// mutex held; passing proves the critical section is exactly the budget
// lookup-and-decrement.
type reentrantInner struct{ g *Guard }

func (r *reentrantInner) Name() string { return "reentrant" }

func (r *reentrantInner) Check(monitor.Request) monitor.Verdict {
	r.g.SetQuota("probe", 1)
	if _, ok := r.g.Remaining("probe"); !ok {
		return monitor.Deny("reentrant", "probe lost")
	}
	return monitor.Allow()
}

func TestWrappingInnerRunsOutsideMutex(t *testing.T) {
	inner := &reentrantInner{}
	g := NewWrapping("", inner)
	inner.g = g
	g.SetQuota("p", 2)
	if v := g.Check(access("p", "/x")); !v.Allow {
		t.Fatalf("reentrant wrapped check denied: %+v", v)
	}
	if rem, _ := g.Remaining("p"); rem != 1 {
		t.Fatalf("remaining = %d, want 1", rem)
	}
}

// TestWrappingConcurrentMetering hammers a wrapped meter from many
// goroutines; run under -race this is the memory-safety check for the
// narrowed critical section, and the allow count proves the meter stays
// exact: precisely the budgeted number of requests get through no
// matter how the goroutines interleave.
func TestWrappingConcurrentMetering(t *testing.T) {
	inner := &reentrantInner{}
	g := NewWrapping("", inner)
	inner.g = g
	const budget = 1000
	g.SetQuota("p", budget)
	var allowed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if g.Check(access("p", "/x")).Allow {
					allowed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if allowed.Load() != budget {
		t.Fatalf("allowed %d of 4000 requests, want exactly %d", allowed.Load(), budget)
	}
	if rem, _ := g.Remaining("p"); rem != 0 {
		t.Fatalf("remaining = %d, want 0", rem)
	}
}
