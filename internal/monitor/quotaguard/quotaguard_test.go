package quotaguard

import (
	"testing"

	"secext/internal/acl"
	"secext/internal/monitor"
)

type sub string

func (s sub) SubjectName() string { return string(s) }
func (sub) MemberOf(string) bool  { return false }

func access(who, path string) monitor.Request {
	return monitor.Request{
		Subject: sub(who),
		Object:  monitor.Object{Path: path},
		Modes:   acl.Read,
		Op:      monitor.OpAccess,
	}
}

func TestDenyByDefault(t *testing.T) {
	g := New("")
	v := g.Check(access("nobody", "/x"))
	if v.Allow || v.Guard != "quota" || v.Reason != "quota: no budget assigned" {
		t.Fatalf("unbudgeted subject: %+v", v)
	}
}

func TestBudgetSpendsAndExhausts(t *testing.T) {
	g := New("")
	g.SetQuota("p", 2)
	for i := 0; i < 2; i++ {
		if v := g.Check(access("p", "/x")); !v.Allow {
			t.Fatalf("access %d denied: %+v", i, v)
		}
	}
	v := g.Check(access("p", "/x"))
	if v.Allow || v.Reason != "quota: exhausted" {
		t.Fatalf("third access: %+v", v)
	}
	if rem, ok := g.Remaining("p"); !ok || rem != 0 {
		t.Errorf("Remaining = %d, %v", rem, ok)
	}
	// A negative SetQuota revokes the budget entirely.
	g.SetQuota("p", -1)
	if v := g.Check(access("p", "/x")); v.Allow || v.Reason != "quota: no budget assigned" {
		t.Fatalf("after revocation: %+v", v)
	}
}

func TestOnlyScopedAccessesMetered(t *testing.T) {
	g := New("/fs")
	g.SetQuota("p", 1)
	// Outside the scope: free.
	if v := g.Check(access("p", "/svc/thing")); !v.Allow {
		t.Fatalf("out-of-scope access denied: %+v", v)
	}
	// Non-access ops and subjectless mechanism requests: free.
	for _, r := range []monitor.Request{
		{Subject: sub("p"), Object: monitor.Object{Path: "/fs/x"}, Op: monitor.OpTraverse},
		{Subject: sub("p"), Object: monitor.Object{Path: "/fs"}, Op: monitor.OpContainerBind},
		{Subject: sub("p"), Op: monitor.OpCreate},
		{Object: monitor.Object{Path: "/fs/x"}, Op: monitor.OpAdmit},
		{Object: monitor.Object{Path: "/fs/x"}, Op: monitor.OpAccess}, // nil subject
	} {
		if v := g.Check(r); !v.Allow {
			t.Fatalf("unmetered request denied: op=%v %+v", r.Op, v)
		}
	}
	if rem, _ := g.Remaining("p"); rem != 1 {
		t.Fatalf("budget spent by unmetered requests: %d", rem)
	}
	// The scoped access spends the single unit.
	if v := g.Check(access("p", "/fs/x")); !v.Allow {
		t.Fatalf("in-scope access denied: %+v", v)
	}
	if rem, _ := g.Remaining("p"); rem != 0 {
		t.Errorf("Remaining = %d, want 0", rem)
	}
}

// The meter must declare its state so pipelines bypass the decision
// cache; a cached allow would let accesses through unmetered.
func TestGuardIsStateful(t *testing.T) {
	if monitor.NewPipeline(New("")).Cacheable() {
		t.Fatal("quota pipeline reported cacheable")
	}
}
