package names

import (
	"time"

	"secext/internal/lattice"
	"secext/internal/principal"
	"secext/internal/telemetry"
)

// Write-combining epoch publisher.
//
// PR 5 made every read lock-free by bundling the whole policy into one
// immutable Epoch, but it priced every mutation at a full successor-
// epoch publication — freeze, clone, atomic store — serialized under
// writeMu. Under sustained churn ("millions of users with constant
// group/ACL churn") that write tax dominates. This file splits a
// mutation's *staging* from its *publication* so concurrent mutations
// coalesce into one successor epoch:
//
//   - stage: under writeMu, a mutator applies its change to a single
//     shared staged epoch (created lazily from the published one at
//     version+1) and joins the pending batch. Staging is cheap — the
//     expensive freeze work happened before the stage (incremental
//     freezes in the lattice/registry, spine clone for the tree).
//   - flush: the first waiter to reach flush() publishes the staged
//     epoch — one atomic store covering every staged mutation — and
//     wakes the batch. Waiters wait OUTSIDE writeMu and outside their
//     shard's own writer mutex, which is what lets mutators pipeline:
//     while one waiter flushes, other mutators stage into the next
//     batch.
//
// Ordering contract (the part batching must never bend): batching may
// delay *publication*, never *ordering*. A mutation's returned version
// is its batch epoch's version, and no reader can observe an epoch >=
// that version without the mutation applied — the staged epoch
// accumulates every member of the batch before the single store, and
// versions advance only through flushes. Every mutator still blocks
// until its batch is published before returning to its caller, so the
// revocation barrier holds: when RemoveMember returns, the revocation
// is enforced for every future decision.

// Shard bits identifying which policy shards a pending batch touches;
// the flush bumps one typed transition counter per touched shard.
const (
	shardNames uint8 = 1 << iota
	shardLattice
	shardRegistry
	shardStack
)

// pendingBatch is one in-flight group of staged mutations awaiting
// publication. done is closed by the flush that publishes the batch;
// version is pre-assigned at first stage (published version + 1), so
// every member knows its landing version before publication.
type pendingBatch struct {
	done    chan struct{}
	version uint64
	size    int
	shards  uint8
	start   time.Time

	// Replication stamps for the journal record: set by ApplyReplicated
	// (wire.go) so the flush journals the publication with a distinct
	// kind and the primary version it mirrors. Zero values mean a local
	// publication.
	replicaKind    string
	replicaVersion uint64
}

// FrozenShard is the delta-aware freeze contract shared by the policy
// shards that publish frozen state into the epoch: a frozen view
// reports its own version and the version it was incrementally derived
// from (0 = rebuilt from scratch). The batched publisher does not
// interpret DeltaBase — the shards patch their own state — but the
// shared interface pins the contract both freezers implement, and
// tests assert delta chains stay anchored to published versions.
type FrozenShard interface {
	Version() uint64
	DeltaBase() uint64
}

var (
	_ FrozenShard = (*lattice.Frozen)(nil)
	_ FrozenShard = (*principal.Frozen)(nil)
)

// currentLocked returns the epoch mutations must derive from: the
// staged successor when a batch is open (its mutations are committed-
// but-unpublished; deriving from the published epoch would lose them),
// else the published epoch. Caller holds writeMu.
func (s *Server) currentLocked() *Epoch {
	if s.staged != nil {
		return s.staged
	}
	return s.epoch.Load()
}

// stageLocked joins the open batch (opening one if needed), applies the
// mutation to the staged epoch, and returns the batch the mutator must
// wait on. Caller holds writeMu and calls the wait function only after
// releasing it (and any shard mutex it holds).
func (s *Server) stageLocked(shard uint8, apply func(*Epoch)) *pendingBatch {
	if s.staged == nil {
		cur := *s.epoch.Load()
		cur.version++
		// The staged epoch must never serve compiled answers: its tree
		// diverges from the published index as mutations accumulate.
		// The flush compiles a fresh view right before the store. The
		// footprint cell is per-publication state for the same reason —
		// the flush installs a fresh one (and recomputes owned) before
		// the store.
		cur.compiled = nil
		cur.fp = nil
		cur.owned = 0
		s.staged = &cur
		s.batch = &pendingBatch{
			done:    make(chan struct{}),
			version: cur.version,
			start:   time.Now(),
		}
	}
	apply(s.staged)
	s.batch.size++
	s.batch.shards |= shard
	s.batchedMutations.Add(1)
	return s.batch
}

// waiter returns the function a mutator calls after releasing every
// lock: it makes sure the batch is published (first caller in wins;
// the rest find the batch already flushed) and returns the epoch
// version the mutation landed in.
func (s *Server) waiter(b *pendingBatch) func() uint64 {
	return func() uint64 {
		s.flush()
		<-b.done
		return b.version
	}
}

// flush publishes the staged epoch, if any: one atomic store makes
// every staged mutation visible at once, the typed transition counters
// record which shards moved, and the batch's waiters wake. Callers
// hold no lock. A flush that finds no open batch (someone else already
// published it, or a new batch opened after ours closed) is a no-op —
// an early flush of a younger batch is harmless, it only shrinks that
// batch.
func (s *Server) flush() {
	s.writeMu.Lock()
	st, b := s.staged, s.batch
	if st == nil {
		s.writeMu.Unlock()
		return
	}
	// Compile the successor's read-side structures while s.epoch still
	// holds the parent (compileEpoch builds incrementally from the
	// parent's compiled view). This is the one deliberate cost the
	// write path pays for the read path: the freeze-cost split is
	// recorded below, outside the mutex.
	var cs compileStats
	if !s.compiledOff && st.reg != nil {
		st.compiled, cs = s.compileEpoch(st)
	}
	prev := s.epoch.Load()
	// Footprint accounting: count the nodes this publication allocated
	// (everything not pointer-shared with the parent tree). The walk is
	// pruned at shared subtrees, so a typical publication pays O(spine).
	st.owned = countOwned(prev.root, st.root)
	st.fp = &fpCell{}
	s.staged, s.batch = nil, nil
	s.epoch.Store(st)
	s.publishes.Add(1)
	if b.shards&shardNames != 0 {
		s.namePubs.Add(1)
	}
	if b.shards&shardLattice != 0 {
		s.latticePubs.Add(1)
	}
	if b.shards&shardRegistry != 0 {
		s.registryPubs.Add(1)
	}
	if b.shards&shardStack != 0 {
		s.stackPubs.Add(1)
	}
	// The transition hook runs under writeMu so a replication publisher
	// observes transitions in strict version order (two flushes can
	// never race past each other here). The hook must only enqueue —
	// anything slow would serialize behind every mutation.
	if s.transHook != nil {
		s.transHook(prev, st)
	}
	s.writeMu.Unlock()
	// Telemetry outside the mutex: the histograms are lock-free.
	s.batchSizes.Observe(time.Duration(b.size)) // unit hack: size as ns
	s.flushLat.Observe(time.Since(b.start))
	switch cs.kind {
	case compileFull:
		s.compFull.Add(1)
	case compileIncremental:
		s.compIncr.Add(1)
	case compileReused:
		s.compReused.Add(1)
	}
	if cs.kind == compileFull || cs.kind == compileIncremental {
		s.compSummaryNs.Observe(time.Duration(cs.sumNs))
		s.compVisNs.Observe(time.Duration(cs.visNs))
		idx := cs.totalNs - cs.sumNs - cs.visNs
		if idx < 0 {
			idx = 0
		}
		s.compIndexNs.Observe(time.Duration(idx))
	}
	for {
		cur := s.maxBatch.Load()
		if uint64(b.size) <= cur || s.maxBatch.CompareAndSwap(cur, uint64(b.size)) {
			break
		}
	}
	// Journal the transition. st is immutable once published, so its
	// shard versions are safe to read here without the mutex.
	rec := &TransitionRecord{
		Version:   st.version,
		Time:      time.Now(),
		Shards:    shardKinds(b.shards),
		BatchSize: b.size,
		Compile:   cs.kind.label(),
		CompileNS: cs.totalNs,
		PublishNS: time.Since(b.start).Nanoseconds(),
	}
	if st.lat != nil {
		rec.LatticeVersion = st.lat.Version()
		rec.LatticeDeltaBase = st.lat.DeltaBase()
	}
	if st.reg != nil {
		rec.RegistryVersion = st.reg.Version()
		rec.RegistryDeltaBase = st.reg.DeltaBase()
		rec.IncrementalFreeze = st.reg.DeltaBase() != 0
	}
	rec.Kind, rec.PrimaryVersion = b.replicaKind, b.replicaVersion
	s.journal.append(rec)
	close(b.done)
}

// stageTreeLocked stages a name-tree mutation (new root, traversal
// flag) and returns the wait function the mutator calls after
// releasing writeMu. Caller holds writeMu.
func (s *Server) stageTreeLocked(root *Node, traversal bool) func() uint64 {
	b := s.stageLocked(shardNames, func(e *Epoch) {
		e.root = root
		e.traversal = traversal
	})
	return s.waiter(b)
}

// stageLattice is the lattice's publish hook: it stages f as the
// epoch's universe and returns the wait function the definer calls
// after releasing the lattice's writer mutex. Waiting outside both
// mutexes lets concurrent definitions and other shard mutations
// coalesce into one epoch.
func (s *Server) stageLattice(f *lattice.Frozen) func() uint64 {
	s.writeMu.Lock()
	b := s.stageLocked(shardLattice, func(e *Epoch) { e.lat = f })
	s.writeMu.Unlock()
	return s.waiter(b)
}

// stageRegistry is the registry's publish hook; see stageLattice.
func (s *Server) stageRegistry(f *principal.Frozen) func() uint64 {
	s.writeMu.Lock()
	b := s.stageLocked(shardRegistry, func(e *Epoch) { e.reg = f })
	s.writeMu.Unlock()
	return s.waiter(b)
}

// BatchStats is the write-combining publisher's telemetry: how many
// mutations went through the batched path, the largest batch one flush
// published, and the batch-size and flush-latency distributions.
// Sizes abuses the latency histogram's buckets as plain counts — a
// "duration" of n nanoseconds is a batch of n mutations.
type BatchStats struct {
	Mutations    uint64
	MaxBatch     uint64
	Sizes        telemetry.HistSnapshot
	FlushLatency telemetry.HistSnapshot
}

// BatchStats returns the batched-publication counters and histograms.
func (s *Server) BatchStats() BatchStats {
	return BatchStats{
		Mutations:    s.batchedMutations.Load(),
		MaxBatch:     s.maxBatch.Load(),
		Sizes:        s.batchSizes.Snapshot(),
		FlushLatency: s.flushLat.Snapshot(),
	}
}
