package names

import (
	"fmt"
	"sync"
	"testing"

	"secext/internal/acl"
	"secext/internal/principal"
)

// attachReg wires a registry with alice and a group into the fixture
// server, for tests that drive the registry's batched publish path.
func attachReg(t *testing.T, f *fixture) *principal.Registry {
	t.Helper()
	reg := principal.NewRegistry(f.lat)
	if _, err := reg.AddPrincipal("alice", f.bot); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddGroup("ops"); err != nil {
		t.Fatal(err)
	}
	f.srv.AttachRegistry(reg)
	return reg
}

// TestAtVariantsReturnLandingVersion: every mutation's At-variant
// returns the epoch version the change was published in, and the
// published epoch at that version already carries the change — the
// ordering contract's per-mutation face.
func TestAtVariantsReturnLandingVersion(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)

	v0 := f.srv.Version()
	grant := acl.New(acl.Allow("alice", acl.Read), acl.AllowEveryone(acl.List))
	v1, err := f.srv.SetACLUncheckedAt("/svc/fs/read", grant)
	if err != nil {
		t.Fatal(err)
	}
	if v1 <= v0 {
		t.Fatalf("SetACLUncheckedAt version %d not past %d", v1, v0)
	}
	ep := f.srv.Current()
	if ep.Version() < v1 {
		t.Fatalf("published epoch v%d behind returned version %d", ep.Version(), v1)
	}
	a, err := f.srv.ACLOf("/svc/fs/read")
	if err != nil || !a.Check(subj("alice"), acl.Read) {
		t.Fatalf("epoch at returned version missing the ACL change: %v", err)
	}

	n, v2, err := f.srv.BindUncheckedAt("/svc/fs", BindSpec{Name: "extra", Kind: KindFile, ACL: grant, Class: f.bot})
	if err != nil || n == nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Fatalf("BindUncheckedAt version %d not past %d", v2, v1)
	}
	if _, err := f.srv.ResolveUnchecked("/svc/fs/extra"); err != nil {
		t.Fatalf("bound node not visible at returned version: %v", err)
	}

	v3, err := f.srv.UnbindUncheckedAt("/svc/fs/extra")
	if err != nil {
		t.Fatal(err)
	}
	if v3 <= v2 {
		t.Fatalf("UnbindUncheckedAt version %d not past %d", v3, v2)
	}
	if _, err := f.srv.ResolveUnchecked("/svc/fs/extra"); err == nil {
		t.Fatal("unbound node still visible at returned version")
	}

	v4, err := f.srv.SetClassUncheckedAt("/svc/fs/read", f.org)
	if err != nil {
		t.Fatal(err)
	}
	if v4 <= v3 {
		t.Fatalf("SetClassUncheckedAt version %d not past %d", v4, v3)
	}
}

// TestCheckedAtVariantsReturnVersions covers the mediated At-variants:
// the returned version lands the change, and denials return version 0
// without publishing.
func TestCheckedAtVariantsReturnVersions(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)

	pubs := f.srv.Publishes()
	n, v, err := f.srv.BindAt(f.root, f.bot, "/svc/fs", BindSpec{
		Name: "w", Kind: KindFile,
		ACL:   acl.New(acl.Allow("root", acl.AllModes)),
		Class: f.bot,
	})
	if err != nil || n == nil {
		t.Fatal(err)
	}
	if v != f.srv.Version() {
		t.Fatalf("BindAt version %d, current %d", v, f.srv.Version())
	}
	if _, err := f.srv.SetACLAt(f.root, f.bot, "/svc/fs/w", acl.New(acl.Allow("root", acl.AllModes))); err != nil {
		t.Fatal(err)
	}
	// Relabel up from bot as a bot subject (write up): allowed.
	if _, err := f.srv.SetClassAt(f.root, f.bot, "/svc/fs/w", f.org); err != nil {
		t.Fatal(err)
	}
	if v, err := f.srv.RenameAt(f.root, f.bot, "/svc/fs/w", "/svc/fs", "w2"); err != nil || v != f.srv.Version() {
		t.Fatalf("RenameAt: v=%d err=%v", v, err)
	}
	if v, err := f.srv.UnbindAt(f.root, f.bot, "/svc/fs/w2"); err != nil || v != f.srv.Version() {
		t.Fatalf("UnbindAt: v=%d err=%v", v, err)
	}

	// Denied mutation: version 0, nothing published.
	pubsBefore := f.srv.Publishes()
	if _, _, err := f.srv.BindAt(subj("mallory"), f.bot, "/svc/fs", BindSpec{Name: "x", Kind: KindFile, ACL: acl.New()}); err == nil {
		t.Fatal("mallory bind allowed")
	}
	if got := f.srv.Publishes(); got != pubsBefore {
		t.Fatalf("denied bind published an epoch: %d -> %d", pubsBefore, got)
	}
	_ = pubs
}

// TestSetACLsUncheckedSinglePublish: a bulk ACL install costs exactly
// one epoch publication regardless of edit count, and every edit is
// visible at the returned version.
func TestSetACLsUncheckedSinglePublish(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	open := acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List))
	var edits []ACLEdit
	for i := 0; i < 8; i++ {
		if _, err := f.srv.BindUnchecked("/svc/fs", BindSpec{Name: fmt.Sprintf("f%d", i), Kind: KindFile, ACL: open, Class: f.bot}); err != nil {
			t.Fatal(err)
		}
		edits = append(edits, ACLEdit{
			Path: fmt.Sprintf("/svc/fs/f%d", i),
			ACL:  acl.New(acl.Allow("alice", acl.Read)),
		})
	}
	pubs := f.srv.Publishes()
	v, err := f.srv.SetACLsUnchecked(edits)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.srv.Publishes(); got != pubs+1 {
		t.Fatalf("bulk ACL install took %d publications, want 1", got-pubs)
	}
	if v != f.srv.Version() {
		t.Fatalf("returned version %d, current %d", v, f.srv.Version())
	}
	for i := range edits {
		a, err := f.srv.ACLOf(edits[i].Path)
		if err != nil || !a.Check(subj("alice"), acl.Read) {
			t.Fatalf("edit %d not applied: %v", i, err)
		}
	}
}

// TestSetACLsUncheckedAtomicOnError: one bad path fails the whole batch
// — no edit applies, nothing publishes.
func TestSetACLsUncheckedAtomicOnError(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	pubs := f.srv.Publishes()
	v0 := f.srv.Version()
	_, err := f.srv.SetACLsUnchecked([]ACLEdit{
		{Path: "/svc/fs/read", ACL: acl.New(acl.Allow("alice", acl.Read))},
		{Path: "/svc/fs/missing", ACL: acl.New()},
	})
	if err == nil {
		t.Fatal("batch with a missing path succeeded")
	}
	if f.srv.Publishes() != pubs || f.srv.Version() != v0 {
		t.Fatal("failed batch still published an epoch")
	}
	a, _ := f.srv.ACLOf("/svc/fs/read")
	if a.Check(subj("alice"), acl.Read) {
		t.Fatal("failed batch partially applied")
	}
}

// TestSetACLsUncheckedEmpty: the empty batch is a no-op.
func TestSetACLsUncheckedEmpty(t *testing.T) {
	f := newFixture(t)
	pubs := f.srv.Publishes()
	v, err := f.srv.SetACLsUnchecked(nil)
	if err != nil || v != 0 {
		t.Fatalf("empty batch: v=%d err=%v", v, err)
	}
	if f.srv.Publishes() != pubs {
		t.Fatal("empty batch published an epoch")
	}
}

// TestRegistryBulkOpSinglePublish is the regression for the per-edit
// publication bug: a bulk membership change on an attached registry
// must cost one freeze and one epoch publication, not one per member.
func TestRegistryBulkOpSinglePublish(t *testing.T) {
	f := newFixture(t)
	reg := attachReg(t, f)
	members := make([]string, 32)
	for i := range members {
		name := fmt.Sprintf("p%d", i)
		if _, err := reg.AddPrincipal(name, f.bot); err != nil {
			t.Fatal(err)
		}
		members[i] = name
	}

	pubs := f.srv.Publishes()
	v, err := reg.AddMembers("ops", members...)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.srv.Publishes(); got != pubs+1 {
		t.Fatalf("bulk add of %d members took %d publications, want 1", len(members), got-pubs)
	}
	ep := f.srv.Current()
	if ep.Version() < v {
		t.Fatalf("epoch v%d behind bulk version %d", ep.Version(), v)
	}
	for _, m := range members {
		if !ep.Registry().IsMember(m, "ops") {
			t.Fatalf("member %s missing at returned version", m)
		}
	}

	pubs = f.srv.Publishes()
	if _, err := reg.RemoveMembers("ops", members...); err != nil {
		t.Fatal(err)
	}
	if got := f.srv.Publishes(); got != pubs+1 {
		t.Fatalf("bulk remove took %d publications, want 1", got-pubs)
	}
	for _, m := range members {
		if f.srv.Current().Registry().IsMember(m, "ops") {
			t.Fatalf("member %s still present after bulk remove", m)
		}
	}
}

// TestStagedMutationsCoalesce drives the stage/flush split directly:
// two shard publications staged before any waiter runs must land in ONE
// epoch — same version, one publication, both typed counters bumped.
func TestStagedMutationsCoalesce(t *testing.T) {
	f := newFixture(t)
	reg := attachReg(t, f)

	pubs := f.srv.Publishes()
	tr0 := f.srv.EpochTransitions()

	// Stage a lattice universe and a registry view without flushing
	// in between: both join the same pending batch.
	if _, err := f.lat.DefineLevel("ultra"); err != nil {
		// DefineLevel waits for its own flush, so stage by hand instead.
		t.Fatal(err)
	}
	// DefineLevel above flushed its own batch (sequential callers see
	// per-mutation versions). Now exercise true coalescing through the
	// unexported staging API.
	latF := f.lat.Freeze()
	regF := reg.Freeze()
	w1 := f.srv.stageLattice(latF)
	w2 := f.srv.stageRegistry(regF)
	v1, v2 := w1(), w2()
	if v1 != v2 {
		t.Fatalf("coalesced mutations landed in different epochs: %d vs %d", v1, v2)
	}
	if got := f.srv.Publishes(); got != pubs+2 { // DefineLevel + the batch
		t.Fatalf("publications = %d, want %d", got-pubs, 2)
	}
	tr := f.srv.EpochTransitions()
	if tr.Lattice != tr0.Lattice+2 || tr.Registry != tr0.Registry+1 {
		t.Fatalf("typed transitions: before %+v after %+v", tr0, tr)
	}
	ep := f.srv.Current()
	if ep.Lattice() != latF || ep.Registry() != regF || ep.Version() != v1 {
		t.Fatal("published epoch does not carry both staged shards")
	}

	st := f.srv.BatchStats()
	if st.MaxBatch < 2 {
		t.Fatalf("max batch = %d, want >= 2", st.MaxBatch)
	}
	if st.Mutations == 0 || st.Sizes.Count == 0 || st.FlushLatency.Count == 0 {
		t.Fatalf("batch stats not populated: %+v", st)
	}
}

// TestConcurrentChurnInvariants hammers the batched publisher from
// concurrent mutators and checks the accounting invariants: the version
// advances exactly once per publication, every staged mutation is
// counted, and the final epoch reflects the final shard states (no lost
// mutations).
func TestConcurrentChurnInvariants(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	reg := attachReg(t, f)
	// Every principal the churn's ACLs will reference must exist, so the
	// final epoch passes the Consistent() cross-shard walk.
	for _, p := range []string{"root", "p0", "w0", "w1", "w2", "w3"} {
		if _, err := reg.AddPrincipal(p, f.bot); err != nil {
			t.Fatal(err)
		}
	}

	v0 := f.srv.Version()
	pubs0 := f.srv.Publishes()
	mut0 := f.srv.BatchStats().Mutations

	const workers = 4
	const iters = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 3 {
				case 0:
					if _, err := reg.AddMemberAt("ops", "p0"); err != nil {
						t.Error(err)
					}
				case 1:
					reg.RemoveMemberAt("ops", "p0") // may race to not-found; fine
				case 2:
					if _, err := f.srv.SetACLUncheckedAt("/svc/fs/read",
						acl.New(acl.Allow(fmt.Sprintf("w%d", w), acl.Read))); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	pubs := f.srv.Publishes() - pubs0
	if got := f.srv.Version() - v0; got != pubs {
		t.Fatalf("version advanced %d, publications %d — must match", got, pubs)
	}
	muts := f.srv.BatchStats().Mutations - mut0
	if pubs > muts {
		t.Fatalf("more publications (%d) than staged mutations (%d)", pubs, muts)
	}
	// No lost mutations: the published epoch carries the registry's and
	// server's final frozen state.
	ep := f.srv.Current()
	if ep.Registry().Version() != reg.Version() {
		t.Fatalf("final epoch registry v%d, registry at v%d", ep.Registry().Version(), reg.Version())
	}
	if ok, path, why := ep.Consistent(); !ok {
		t.Fatalf("final epoch inconsistent at %s: %s", path, why)
	}
}

// TestFrozenShardDeltaChain pins the FrozenShard contract: delta-built
// views anchor to the exact previous version, full rebuilds report base
// 0, and the interface is satisfied by both freezers.
func TestFrozenShardDeltaChain(t *testing.T) {
	f := newFixture(t)
	reg := attachReg(t, f)

	var shard FrozenShard = f.lat.Freeze()
	prev := shard.Version()
	if _, err := f.lat.DefineCategory("delta-cat"); err != nil {
		t.Fatal(err)
	}
	shard = f.lat.Freeze()
	if shard.DeltaBase() != prev {
		t.Fatalf("lattice delta base %d, want %d", shard.DeltaBase(), prev)
	}

	// Membership edit: incremental, anchored to the previous version.
	prevReg := reg.Version()
	if _, err := reg.AddMemberAt("ops", "alice"); err != nil {
		t.Fatal(err)
	}
	rf := reg.Freeze()
	if rf.DeltaBase() != prevReg {
		t.Fatalf("registry delta base %d, want %d", rf.DeltaBase(), prevReg)
	}

	// Structural change: full rebuild, base 0.
	if err := reg.AddGroup("fresh"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Freeze().DeltaBase(); got != 0 {
		t.Fatalf("structural change delta base %d, want 0 (full rebuild)", got)
	}
}
