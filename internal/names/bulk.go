package names

import (
	"fmt"
	"strings"

	"secext/internal/acl"
	"secext/internal/lattice"
)

// Bulk subtree construction.
//
// Loading a million-node tree through BindUnchecked costs one epoch
// publication (spine clone, compile, atomic store, journal record) per
// node. The secload harness and replica warm-starts need the tree, not
// a million transitions, so BindSubtreeUnchecked builds an entire
// detached subtree with in-place appends — legal because every node in
// it is freshly allocated by this call — and splices it under the
// parent with ONE publication.

// SubtreeSpec describes one node of a bulk-bound subtree. Path is
// slash-separated and relative to the bind parent ("a", "a/b", ...).
// The remaining fields mirror BindSpec (a nil ACL means empty,
// fail-closed).
type SubtreeSpec struct {
	Path       string
	Kind       Kind
	ACL        *acl.ACL
	Class      lattice.Class
	Payload    any
	Multilevel bool
}

// BindSubtreeUnchecked creates every node in specs under parentPath
// with no access checks and a single epoch publication, returning the
// number of nodes created and the epoch version they all landed in.
// Specs must be in parent-before-child order: each spec's containing
// directory is either the bind parent itself (single-component Path)
// or a node created by an EARLIER spec in the same call. Nothing is
// staged if any spec fails validation. For bootstrap and load
// generation; production mutation goes through Bind.
func (s *Server) BindSubtreeUnchecked(parentPath string, specs []SubtreeSpec) (int, uint64, error) {
	wait, err := s.bindSubtree(parentPath, specs)
	var v uint64
	if err == nil && wait != nil {
		v = wait()
	}
	s.admin("bind-subtree-unchecked", parentPath, err)
	if err != nil {
		return 0, 0, err
	}
	return len(specs), v, nil
}

func (s *Server) bindSubtree(parentPath string, specs []SubtreeSpec) (func() uint64, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	parent, err := resolveIn(ep, nil, lattice.Class{}, parentPath, false)
	if err != nil {
		return nil, err
	}
	if parent.kind.Leaf() {
		return nil, fmt.Errorf("%w: %s", ErrLeaf, parent.Path())
	}

	// The working parent: a clone whose children slice is a private
	// exact-size copy with headroom for the new top-level entries, so
	// appendChild below never touches a published backing array.
	work := parent.clone()
	work.children = append(make([]childRef, 0, len(parent.children)+len(specs)), parent.children...)

	// fresh maps each created node's relative path to its node, so later
	// specs can attach under earlier ones. Only nodes allocated by this
	// call are valid append targets.
	fresh := make(map[string]*Node, len(specs))
	for _, spec := range specs {
		rel := strings.Trim(spec.Path, "/")
		if rel == "" {
			return nil, fmt.Errorf("%w: empty subtree path", ErrBadPath)
		}
		if !spec.Class.Valid() || spec.Class.Lattice() != s.lat {
			return nil, fmt.Errorf("%w: node class must come from the server lattice", ErrBadPath)
		}
		dir, name := "", rel
		if i := strings.LastIndexByte(rel, '/'); i >= 0 {
			dir, name = rel[:i], rel[i+1:]
		}
		if err := ValidComponent(name); err != nil {
			return nil, err
		}
		under := work
		if dir != "" {
			under = fresh[dir]
			if under == nil {
				return nil, fmt.Errorf("%w: %s: parent %q not created by an earlier spec", ErrNotFound, rel, dir)
			}
			if under.kind.Leaf() {
				return nil, fmt.Errorf("%w: %s", ErrLeaf, under.Path())
			}
		}
		if under.child(name) != nil {
			return nil, fmt.Errorf("%w: %s", ErrExists, Join(under.Path(), name))
		}
		childPath := s.strings.intern(Join(under.Path(), name))
		n := &Node{
			path:       childPath,
			kind:       spec.Kind,
			acl:        s.acls.canon(spec.ACL),
			class:      s.classes.canon(spec.Class),
			payload:    spec.Payload,
			multilevel: spec.Multilevel && !spec.Kind.Leaf(),
		}
		appendChild(under, n)
		fresh[rel] = n
	}

	parts, err := SplitPath(parent.Path())
	if err != nil {
		return nil, err
	}
	return s.stageTreeLocked(rebind(ep.root, parts, work), ep.traversal), nil
}
