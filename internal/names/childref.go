package names

import "sort"

// Compact structure-sharing child layout.
//
// A node's children are a name-sorted []childRef. The slice replaces
// the PR-4 map[string]*Node representation, which at million-node scale
// paid a map header plus bucket array per directory and an O(children)
// re-insertion on every copy-on-write spine clone. The slice layout
// restores the memory economics the epoch design wants:
//
//   - a spine clone shares the children slice wholesale with the parent
//     epoch (the Node shallow copy carries the slice header); only the
//     level actually edited pays ONE exact-size allocation (withChild /
//     withoutChild below);
//   - lookup is a binary search over an inline pointer array — no
//     hashing, no bucket pointers, cache-linear for the fan-outs real
//     trees have;
//   - iteration is already in lexicographic name order, so Walk, List,
//     and the wire codec are deterministic without sorting and without
//     allocating a name slice per directory.
//
// Invariants: children are strictly sorted by component name with no
// duplicates. Slices reachable from a published epoch are never mutated
// — withChild and withoutChild return fresh exact-capacity slices, and
// appendChild (which does mutate) is only legal on nodes allocated by
// the same working-tree build.

// childRef is one directory entry. It is a single pointer: the entry's
// name is the final component of the child's canonical path (nameOf),
// derived on demand rather than stored, so a directory of k children
// costs exactly k words. Deriving the name is one byte scan over the
// path tail with no allocation; siblings share their parent prefix, so
// sorting by component name is sorting by path and the invariant needs
// no second field to maintain.
type childRef struct {
	node *Node
}

// name returns the entry's component name, carved out of the child's
// path.
func (cr childRef) name() string { return nameOf(cr.node.path) }

// findChild returns the index at which name is (or would be inserted
// in) kids, and whether it is present.
func findChild(kids []childRef, name string) (int, bool) {
	i := sort.Search(len(kids), func(i int) bool { return kids[i].name() >= name })
	return i, i < len(kids) && kids[i].name() == name
}

// child returns the node bound to name under n, or nil.
func (n *Node) child(name string) *Node {
	if i, ok := findChild(n.children, name); ok {
		return n.children[i].node
	}
	return nil
}

// withChild returns a copy of kids with name bound to node — insert or
// replace, one exact-size allocation either way. node's path must end
// in name (every caller builds it that way). kids is not modified.
func withChild(kids []childRef, name string, node *Node) []childRef {
	i, ok := findChild(kids, name)
	if ok {
		out := make([]childRef, len(kids))
		copy(out, kids)
		out[i].node = node
		return out
	}
	out := make([]childRef, len(kids)+1)
	copy(out, kids[:i])
	out[i] = childRef{node: node}
	copy(out[i+1:], kids[i:])
	return out
}

// withoutChild returns a copy of kids without name (kids itself when
// the name is absent, nil when the last entry is removed). kids is not
// modified.
func withoutChild(kids []childRef, name string) []childRef {
	i, ok := findChild(kids, name)
	if !ok {
		return kids
	}
	if len(kids) == 1 {
		return nil
	}
	out := make([]childRef, len(kids)-1)
	copy(out, kids[:i])
	copy(out[i:], kids[i+1:])
	return out
}

// appendChild binds c under n IN PLACE, keyed by c's own component
// name. It is only legal on working trees whose nodes were all
// allocated by the current build (wire decode, bulk subtree bind):
// published slices are shared across epochs and must never be appended
// to. Pre-sorted input (the Walk pre-order every encoder emits) appends
// in amortized O(1); out-of-order names fall back to an insertion
// shift.
func appendChild(n *Node, c *Node) {
	name := nameOf(c.path)
	if k := len(n.children); k == 0 || n.children[k-1].name() < name {
		n.children = append(n.children, childRef{node: c})
		return
	}
	i, ok := findChild(n.children, name)
	if ok {
		n.children[i].node = c
		return
	}
	n.children = append(n.children, childRef{})
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = childRef{node: c}
}
