package names

import (
	"sync"
	"time"
	"unsafe"

	"secext/internal/acl"
	"secext/internal/lattice"
	"secext/internal/monitor"
	"secext/internal/monitor/dacguard"
	"secext/internal/monitor/macguard"
	"secext/internal/telemetry"
)

// Compiled epochs.
//
// Epochs are immutable, so anything computable at freeze time is free
// at read time. This file compiles three read-side structures into
// every published epoch (when a registry is attached):
//
//   - a flat path→entry hash index over the whole tree, so resolution
//     is one map probe instead of a per-component spine walk;
//   - per-node effective-ACL summaries (allow/deny bitsets over dense
//     principal IDs, group entries flattened through the frozen
//     registry's transitive-membership bitsets) plus a per-node
//     traversal-visibility chain (the AND of every strict ancestor's
//     effective List set and the Join of their classes), so the DAC
//     side of a check is a few bitset probes with zero entry iteration
//     and zero per-component work;
//   - an interned-class dominance table (lattice.Dominance), so the
//     MAC side is one bit-matrix probe per flow direction.
//
// The compiled fast path decides ALLOW only: any miss — unknown path,
// unregistered subject, a failing probe, a non-default guard stack —
// falls back to the spine walk, which produces byte-identical errors
// and remains the oracle the compiled structures are tested against.
// The security-critical direction is therefore structural: the fast
// path can never allow what the walk denies unless the compiled
// bitsets disagree with the ACL/lattice evaluation, which the oracle
// fuzz (FuzzEpochTransitions) and the guard-level equivalence tests
// exist to rule out.
//
// Builds are incremental: the successor epoch starts from the parent's
// index (an O(entries) map clone of shared pointers), prunes every
// subtree whose root pointer, visibility context, and summary validity
// are unchanged, and recompiles only what moved. A registry transition
// recompiles only registry-sensitive summaries (group entries or
// unresolved names); summaries naming only resolved individuals stay
// valid across registry versions because principal IDs are dense,
// arrival-ordered, and never reused. A rename lands as a deletion of
// the old paths plus a fresh compile of the relocated subtree (its
// nodes and paths are all new), which is the "targeted re-keying" the
// incremental contract promises.

// centry is one compiled index entry: the node, its compiled ACL, and
// the precomputed context of every traversal check strictly above it.
type centry struct {
	node *Node
	// sum is the node's ACL compiled against the epoch's registry.
	sum *acl.Summary
	// effList is the node's effective List set over principal IDs (nil
	// for leaves, which have no children to make visible). It is the
	// input to the children's visibility chain.
	effList acl.IDSet
	// visAllow is the AND of every strict ancestor's effList: the
	// principals for which every traversal DAC check on the way here
	// passes. visClass is the Join of every strict ancestor's class:
	// a subject dominates it iff it dominates each ancestor, i.e. iff
	// every traversal MAC check passes. visIdx is visClass interned in
	// the epoch's dominance table. hasVis is false only for the root,
	// which has no strict ancestors (resolution of "/" runs no
	// traversal checks at all).
	visAllow acl.IDSet
	visClass lattice.Class
	objIdx   int32
	// sensIdx is this entry's slot in the compiled view's sens/sums
	// pair when sum is registry-sensitive, -1 otherwise. Sensitive
	// summaries are read through compiled.sumOf, never through sum
	// directly: a registry-only transition republishes just the sums
	// slice and shares the entry (and the whole index) wholesale, so
	// sum holds the summary from the build that created the entry,
	// which may be older than the epoch's.
	sensIdx int32
	visIdx  int32
	hasVis  bool
}

// retainedMem caches the lazily computed retained-bytes accounting of
// one compiled view (it is a pointer member so the compiled struct
// stays shallow-copyable).
type retainedMem struct {
	once   sync.Once
	dedup  int64
	cloned int64
}

// compiled is the read-side compilation of one epoch. It is immutable
// after the flush that built it publishes.
type compiled struct {
	index map[string]*centry
	dom   *lattice.Dominance
	// fast records whether the epoch's guard stack is exactly the
	// default [dac, mac] pair, whose OpAccess/OpTraverse semantics the
	// summaries and dominance table reproduce. Any other stack keeps
	// the index for unchecked resolution but routes every decision
	// through the walk.
	fast bool
	// n is the principal-ID space size the bitsets were materialized
	// over; sensitive counts live registry-sensitive summaries.
	n         int
	sensitive int
	// sens/sums hold the registry-sensitive entries and their CURRENT
	// summaries: entry sens[i] (with sensIdx == i) is judged by
	// sums[i]. A registry-only transition clones sums — O(sensitive) —
	// and shares index, sens, and every entry with the parent view. A
	// nil slot is dead: a later tree build replaced or deleted its
	// entry. Slots are append-only (shared entries pin their indices),
	// so dead slots accumulate under ACL churn on sensitive nodes;
	// when they outnumber live ones the flush forces a full rebuild,
	// which resets both slices.
	sens []*centry
	sums []*acl.Summary
	dead int
	ret  *retainedMem
}

// sumOf resolves e's current summary in this compiled view.
func (c *compiled) sumOf(e *centry) *acl.Summary {
	if e.sensIdx >= 0 {
		return c.sums[e.sensIdx]
	}
	return e.sum
}

// compileKind classifies how a flush obtained its compiled view.
type compileKind uint8

const (
	compileNone compileKind = iota
	compileFull
	compileIncremental
	compileReused
)

// compileStats is the freeze-cost split one flush reports: total build
// time, the share spent compiling ACL summaries, and the share spent
// recomputing effective/visibility bitsets.
type compileStats struct {
	kind    compileKind
	totalNs int64
	sumNs   int64
	visNs   int64
}

// fastStack reports whether st is exactly the default [dac, mac]
// stack the compiled fast path models.
func fastStack(st *monitor.Stack) bool {
	if st.Depth() != 2 {
		return false
	}
	_, dacOK := st.At(0).(*dacguard.Guard)
	_, macOK := st.At(1).(*macguard.Guard)
	return dacOK && macOK
}

// visCtx is the accumulated traversal context above the node being
// compiled; the zero value (has == false) is the root's context.
type visCtx struct {
	allow acl.IDSet
	cls   lattice.Class
	has   bool
}

// compileBuilder carries one build/patch pass over the tree.
type compileBuilder struct {
	st   *Epoch    // the staged successor epoch being compiled
	prev *compiled // parent epoch's compiled view; nil = full build
	// regInvalid marks that the registry moved in a way that can
	// change verdicts of sensitive summaries (any sensitive summary
	// exists, or the ID space grew): pointer-equality pruning is then
	// unsound and every entry must be revisited. nChanged narrows it:
	// materialized bitsets (effList, visAllow) cover a stale ID range
	// and must be rebuilt even where summaries are reusable.
	regInvalid bool
	nChanged   bool
	n          int
	dom        *lattice.DominanceBuilder
	index      map[string]*centry
	sensitive  int
	sens       []*centry
	sums       []*acl.Summary
	dead       int
	sumNs      int64
	visNs      int64

	// Freeze-time bitset dedup. With the server's ACL canonicalization
	// most directories share a handful of distinct ACL pointers, so a
	// single build would otherwise materialize the same effective-List
	// bitset (O(principals/64) words EACH) thousands of times over a
	// million-node tree. effCache memoizes EffectiveIDs per summary
	// pointer (n is fixed within one build), and andCache memoizes the
	// visibility-chain AND by the identity of its two operands, so
	// equal chains collapse to one allocation.
	effCache map[*acl.Summary]acl.IDSet
	andCache map[andKey]acl.IDSet
}

// andKey identifies an IDSet AND by its operands' identities (backing
// array head + length — the sharing invariant makes identity ⟺ value
// for sets already in the build).
type andKey struct {
	a, b *uint64
	la   int
	lb   int
}

func setHead(s acl.IDSet) *uint64 {
	if len(s) == 0 {
		return nil
	}
	return &s[0]
}

// andSets returns vis ∧ eff, memoized by operand identity.
func (b *compileBuilder) andSets(vis, eff acl.IDSet) acl.IDSet {
	k := andKey{a: setHead(vis), b: setHead(eff), la: len(vis), lb: len(eff)}
	if v, ok := b.andCache[k]; ok {
		return v
	}
	if b.andCache == nil {
		b.andCache = make(map[andKey]acl.IDSet, 16)
	}
	v := vis.And(eff)
	b.andCache[k] = v
	return v
}

// killSlot retires e's sens/sums slot when e is replaced or deleted.
// The identity guard makes repeated kills (e.g. a stale-entry
// overwrite followed by a subtree delete) idempotent.
func (b *compileBuilder) killSlot(e *centry) {
	if e.sensIdx >= 0 && b.sens[e.sensIdx] == e {
		b.sens[e.sensIdx] = nil
		b.sums[e.sensIdx] = nil
		b.sensitive--
		b.dead++
	}
}

// walk compiles node (at node.path) given old, the node published at
// the same path in the parent epoch (nil if the path is new), and the
// traversal context accumulated above it. visChanged reports whether
// that context differs from the one the parent's compile used.
func (b *compileBuilder) walk(node, old *Node, vis visCtx, visChanged bool) {
	if old == node && !visChanged && !b.regInvalid {
		// The whole subtree is shared with the parent epoch and every
		// compiled entry under it is still valid: the cloned index
		// already carries them.
		return
	}
	var oldE *centry
	if b.prev != nil {
		if e, ok := b.prev.index[node.path]; ok && e.node == old {
			oldE = e
		}
	}
	if stale, ok := b.index[node.path]; ok {
		b.killSlot(stale) // entry being replaced (or re-keyed over)
	}

	// ACL summary: reuse the parent's current summary when the node
	// shares the ACL value and the registry transition cannot have
	// changed its verdicts (non-sensitive summaries survive any
	// transition — principal IDs are append-only).
	sum := (*acl.Summary)(nil)
	if oldE != nil && oldE.node.acl == node.acl && !(b.regInvalid && oldE.sum.RegSensitive()) {
		sum = b.prev.sumOf(oldE)
	}
	if sum == nil {
		t0 := time.Now()
		sum = node.acl.Compile(b.st.reg)
		b.sumNs += time.Since(t0).Nanoseconds()
	}

	// Effective List set (non-leaves only): the children's visibility
	// input. Recompute when the summary changed or the ID space grew;
	// if the recomputed set is equal to the parent's, adopt the old
	// pointer so the children's pruning and sharing survive.
	var effList acl.IDSet
	if len(node.children) > 0 {
		// Reuse requires the old node to have had children: a leaf's
		// entry skipped the computation, and its nil is "not computed",
		// not "nobody holds List".
		if oldE != nil && sum == b.prev.sumOf(oldE) && !b.nChanged && len(oldE.node.children) > 0 {
			effList = oldE.effList
		} else if cached, ok := b.effCache[sum]; ok {
			effList = cached
		} else {
			t0 := time.Now()
			effList = sum.EffectiveIDs(acl.List, b.n)
			if oldE != nil && effList.Equal(oldE.effList) {
				effList = oldE.effList
			}
			b.visNs += time.Since(t0).Nanoseconds()
			if b.effCache == nil {
				b.effCache = make(map[*acl.Summary]acl.IDSet, 16)
			}
			b.effCache[sum] = effList
		}
	}

	e := &centry{
		node:    node,
		sum:     sum,
		effList: effList,
		objIdx:  int32(b.dom.Add(*node.class)),
		sensIdx: -1,
		visIdx:  -1,
	}
	if sum.RegSensitive() {
		e.sensIdx = int32(len(b.sens))
		b.sens = append(b.sens, e)
		b.sums = append(b.sums, sum)
		b.sensitive++
	}
	if vis.has {
		e.hasVis = true
		if !visChanged && oldE != nil && oldE.hasVis {
			// Context unchanged: keep the parent's pointers so the
			// chain stays shared across epochs.
			e.visAllow, e.visClass, e.visIdx = oldE.visAllow, oldE.visClass, oldE.visIdx
		} else {
			e.visAllow, e.visClass = vis.allow, vis.cls
			e.visIdx = int32(b.dom.Add(vis.cls))
		}
	}
	b.index[node.path] = e

	if len(node.children) > 0 {
		var childVis visCtx
		if !vis.has {
			childVis = visCtx{allow: effList, cls: *node.class, has: true}
		} else {
			childVis = visCtx{allow: b.andSets(vis.allow, effList), cls: vis.cls.Join(*node.class), has: true}
		}
		// The children's context changes when this node's List set OR its
		// class moved: both feed the chain (allow ∧ effList, cls ⊔ class),
		// so a relabel must recompile descendant visibility even though
		// the descendants' own nodes are shared with the parent epoch.
		childChanged := visChanged || oldE == nil ||
			!sameIDSet(effList, oldE.effList) || !node.class.Equal(*oldE.node.class)
		for _, cr := range node.children {
			var oldChild *Node
			if old != nil {
				oldChild = old.child(cr.name())
			}
			b.walk(cr.node, oldChild, childVis, childChanged)
		}
	}
	if old != nil {
		for _, cr := range old.children {
			if node.child(cr.name()) == nil {
				b.deleteSubtree(cr.node)
			}
		}
	}
}

// sameIDSet reports slice identity (same backing array and length) —
// the sharing invariant the incremental build maintains: an unchanged
// effList keeps the parent epoch's pointer, so identity ⟺ unchanged.
func sameIDSet(a, b acl.IDSet) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// deleteSubtree removes the compiled entries of a subtree that is no
// longer bound at its old paths (unbind, or the detach side of a
// rename — the re-key of the incremental contract).
func (b *compileBuilder) deleteSubtree(n *Node) {
	if e, ok := b.index[n.path]; ok && e.node == n {
		b.killSlot(e)
		delete(b.index, n.path)
	}
	for _, cr := range n.children {
		b.deleteSubtree(cr.node)
	}
}

// compileEpoch builds the staged epoch's compiled view. Caller holds
// writeMu and has not yet stored st, so s.epoch.Load() is still the
// parent epoch. st.reg is non-nil (checked by the flush).
func (s *Server) compileEpoch(st *Epoch) (*compiled, compileStats) {
	prev := s.epoch.Load()
	prevC := prev.compiled
	n := st.reg.NumPrincipalIDs()
	start := time.Now()

	// Sensitive slots are append-only across incremental builds, so a
	// long unbind-heavy history accumulates dead (nil) slots that every
	// registry patch clone still pays for. Once the dead slots outnumber
	// the live ones (plus slack), force a full rebuild to reset the
	// slices.
	if prevC != nil && prevC.dead > prevC.sensitive+64 {
		prevC = nil
	}

	if prevC != nil {
		regChanged := st.reg != prev.reg
		regInvalid := regChanged && (prevC.sensitive > 0 || n != prevC.n)
		if st.root == prev.root && !regInvalid {
			// Nothing the compiled structures depend on moved (a pure
			// lattice/stack/traversal transition, or a registry
			// transition no summary is sensitive to). Reuse wholesale;
			// only the fast flag can differ, and it is the one scalar
			// field, so a shallow copy suffices.
			if fast := fastStack(st.stack); fast != prevC.fast {
				c := *prevC
				c.fast = fast
				return &c, compileStats{kind: compileReused, totalNs: time.Since(start).Nanoseconds()}
			}
			return prevC, compileStats{kind: compileReused, totalNs: time.Since(start).Nanoseconds()}
		}
		if st.root == prev.root && n == prevC.n {
			// Pure registry transition over an unchanged tree with an
			// unchanged ID space: only registry-sensitive summaries can
			// have changed verdicts, so patch those entries instead of
			// walking the tree. Bails (ok == false) when a sensitive
			// interior node's effective-List set changed value, because
			// then descendant visibility chains are stale too.
			if c, cs, ok := patchRegistrySummaries(st, prevC, start); ok {
				return c, cs
			}
		}
		b := &compileBuilder{
			st: st, prev: prevC,
			regInvalid: regInvalid, nChanged: n != prevC.n, n: n,
			dom:       lattice.BuilderFrom(prevC.dom),
			index:     make(map[string]*centry, len(prevC.index)),
			sensitive: prevC.sensitive,
			sens:      append([]*centry(nil), prevC.sens...),
			sums:      append([]*acl.Summary(nil), prevC.sums...),
			dead:      prevC.dead,
		}
		// Start from the parent's entries (shared pointers; O(entries)
		// map clone — the honest cost of the incremental path, see
		// CompiledStats) and patch what moved.
		for k, v := range prevC.index {
			b.index[k] = v
		}
		b.walk(st.root, prev.root, visCtx{}, false)
		c := &compiled{
			index: b.index, dom: b.dom.Build(), fast: fastStack(st.stack),
			n: n, sensitive: b.sensitive,
			sens: b.sens, sums: b.sums, dead: b.dead,
			ret: &retainedMem{},
		}
		return c, compileStats{
			kind: compileIncremental, totalNs: time.Since(start).Nanoseconds(),
			sumNs: b.sumNs, visNs: b.visNs,
		}
	}

	b := &compileBuilder{
		st: st, n: n,
		dom:   lattice.NewDominanceBuilder(),
		index: make(map[string]*centry, 64),
	}
	b.walk(st.root, nil, visCtx{}, false)
	c := &compiled{
		index: b.index, dom: b.dom.Build(), fast: fastStack(st.stack),
		n: n, sensitive: b.sensitive,
		sens: b.sens, sums: b.sums, dead: b.dead,
		ret: &retainedMem{},
	}
	return c, compileStats{
		kind: compileFull, totalNs: time.Since(start).Nanoseconds(),
		sumNs: b.sumNs, visNs: b.visNs,
	}
}

// patchRegistrySummaries compiles a registry-only transition (same
// tree root, same principal-ID count) by recompiling just the
// registry-sensitive summaries into a cloned sums slice. Everything
// else — the path index, entries, visibility chains, the dominance
// table — is shared wholesale with the parent's compiled view:
// membership churn cannot move nodes, intern new classes, or resize
// bitsets, and sensitive entries read their summary through sumOf, so
// versioning the O(sensitive) slice is enough. The one case it cannot
// patch is a sensitive *interior* node whose effective-List set
// changed value (the churn revoked or granted List somewhere):
// descendant visibility chains are then stale, and the caller falls
// back to the full incremental walk. RegSensitive is a property of the
// ACL's shape, not of the registry, so the sensitive count carries
// over unchanged.
func patchRegistrySummaries(st *Epoch, prevC *compiled, start time.Time) (*compiled, compileStats, bool) {
	var sumNs, visNs int64
	sums := append([]*acl.Summary(nil), prevC.sums...)
	for i, e := range prevC.sens {
		if e == nil {
			continue // dead slot (unbound node)
		}
		t0 := time.Now()
		s := e.node.acl.Compile(st.reg)
		sumNs += time.Since(t0).Nanoseconds()
		if len(e.node.children) > 0 {
			t0 = time.Now()
			eff := s.EffectiveIDs(acl.List, prevC.n)
			visNs += time.Since(t0).Nanoseconds()
			if !eff.Equal(e.effList) {
				return nil, compileStats{}, false
			}
			// Value-equal: descendant chains built from the old
			// effList pointer are still correct.
		}
		sums[i] = s
	}
	c := &compiled{
		index: prevC.index, dom: prevC.dom, fast: fastStack(st.stack),
		n: prevC.n, sensitive: prevC.sensitive,
		sens: prevC.sens, sums: sums, dead: prevC.dead,
		ret: &retainedMem{},
	}
	return c, compileStats{
		kind: compileIncremental, totalNs: time.Since(start).Nanoseconds(),
		sumNs: sumNs, visNs: visNs,
	}, true
}

// fastCheck answers CheckAccess's resolve+verify from the compiled
// structures alone: index probe, visibility bitset tests, summary
// probe, dominance probe. It decides ALLOW only — ok == false means
// "take the walk", which re-derives denials and structural errors with
// byte-identical error values.
func (ep *Epoch) fastCheck(sub acl.Subject, class lattice.Class, path string, modes acl.Mode) (*Node, bool) {
	c := ep.compiled
	if c == nil || !c.fast || sub == nil {
		return nil, false
	}
	e, ok := c.index[path]
	if !ok {
		return nil, false
	}
	pid, ok := ep.reg.PrincipalID(sub.SubjectName())
	if !ok {
		return nil, false
	}
	sIdx, sOK := c.dom.Index(class)
	if ep.traversal && e.hasVis {
		if !e.visAllow.Has(pid) {
			return nil, false
		}
		// A zero visClass (an unclassed or cross-lattice ancestor
		// collapsed the Join) is never interned and CanRead of it is
		// false for every subject, so both arms bail — matching the
		// walk, which denies at such an ancestor.
		if sOK && e.visIdx >= 0 {
			if !c.dom.Dominates(sIdx, int(e.visIdx)) {
				return nil, false
			}
		} else if !class.CanRead(e.visClass) {
			return nil, false
		}
	}
	if !c.sumOf(e).Grants(pid, modes) {
		return nil, false
	}
	if sOK && e.objIdx >= 0 {
		if !macguard.FlowAllowsInterned(c.dom, sIdx, int(e.objIdx), modes) {
			return nil, false
		}
	} else if !macguard.FlowAllows(class, *e.node.class, modes) {
		return nil, false
	}
	return e.node, true
}

// fastResolve answers resolveIn from the index: a bare probe for
// unchecked resolution, the precomputed visibility chain for checked.
// Like fastCheck it decides success only.
func (ep *Epoch) fastResolve(sub acl.Subject, class lattice.Class, path string, checked bool) (*Node, bool) {
	c := ep.compiled
	if c == nil {
		return nil, false
	}
	if !checked || !ep.traversal {
		if e, ok := c.index[path]; ok {
			return e.node, true
		}
		return nil, false
	}
	if !c.fast || sub == nil {
		return nil, false
	}
	e, ok := c.index[path]
	if !ok {
		return nil, false
	}
	if !e.hasVis {
		return e.node, true // the root: no traversal checks apply
	}
	pid, ok := ep.reg.PrincipalID(sub.SubjectName())
	if !ok || !e.visAllow.Has(pid) {
		return nil, false
	}
	if sIdx, sOK := c.dom.Index(class); sOK && e.visIdx >= 0 {
		if !c.dom.Dominates(sIdx, int(e.visIdx)) {
			return nil, false
		}
	} else if !class.CanRead(e.visClass) {
		return nil, false
	}
	return e.node, true
}

// Compiled reports whether this epoch carries compiled read-side
// structures (a registry is attached and compilation is enabled).
func (ep *Epoch) Compiled() bool { return ep.compiled != nil }

// CompiledResolve probes the epoch's path index with no checks. ok is
// false when the epoch is not compiled or the path is unbound; tests
// and experiments use it to compare the probe against the spine walk.
func (ep *Epoch) CompiledResolve(path string) (*Node, bool) {
	if ep.compiled == nil {
		return nil, false
	}
	e, ok := ep.compiled.index[path]
	if !ok {
		return nil, false
	}
	return e.node, true
}

// CompiledAllows runs the compiled fast check: decided is true only
// for a full allow (resolution visibility, DAC summary, and MAC
// dominance all pass); any other outcome reports decided == false and
// the caller must take the walk. The oracle fuzz asserts decided
// allows agree with the walk everywhere.
func (ep *Epoch) CompiledAllows(sub acl.Subject, class lattice.Class, path string, modes acl.Mode) (n *Node, decided bool) {
	return ep.fastCheck(sub, class, path, modes)
}

// CompiledGrants returns the compiled effective mode set of the named
// subject on the node at path — the Summary form of GrantedIn. ok is
// false when the epoch is not compiled, the path is unbound, or the
// subject has no principal ID.
func (ep *Epoch) CompiledGrants(path, subject string) (acl.Mode, bool) {
	if ep.compiled == nil {
		return 0, false
	}
	e, ok := ep.compiled.index[path]
	if !ok {
		return 0, false
	}
	pid, ok := ep.reg.PrincipalID(subject)
	if !ok {
		return 0, false
	}
	return ep.compiled.sumOf(e).Granted(pid), true
}

// CompiledStats is the compiled-epoch telemetry: how flushes obtained
// their compiled views, the freeze-cost split, and what the CURRENT
// epoch's view holds and retains. RetainedBytes counts structures
// shared across entries and epochs once (what this epoch actually
// pins); RetainedBytesCloned prices every use site separately — the
// honest upper bound showing what structural sharing saves. Both are
// estimates (map internals are approximated by slot size).
type CompiledStats struct {
	Full        uint64
	Incremental uint64
	Reused      uint64

	Entries             int
	DomClasses          int
	Sensitive           int
	RetainedBytes       int64
	RetainedBytesCloned int64

	IndexBuild     telemetry.HistSnapshot
	SummaryCompile telemetry.HistSnapshot
	VisRecompute   telemetry.HistSnapshot
}

// CompiledStats returns the compiled-epoch counters, the freeze-cost
// split histograms, and the current epoch's compiled footprint.
func (s *Server) CompiledStats() CompiledStats {
	st := CompiledStats{
		Full:           s.compFull.Load(),
		Incremental:    s.compIncr.Load(),
		Reused:         s.compReused.Load(),
		IndexBuild:     s.compIndexNs.Snapshot(),
		SummaryCompile: s.compSummaryNs.Snapshot(),
		VisRecompute:   s.compVisNs.Snapshot(),
	}
	if c := s.epoch.Load().compiled; c != nil {
		st.Entries = len(c.index)
		st.DomClasses = c.dom.Len()
		st.Sensitive = c.sensitive
		st.RetainedBytes, st.RetainedBytesCloned = c.retainedBytes()
	}
	return st
}

// retainedBytes computes (once, lazily — compiled views are immutable
// so any goroutine may trigger it) the heap bytes the compiled view
// retains. dedup counts shared structures once, the honest number for
// "what does this epoch pin"; cloned counts them at every use site, an
// upper bound showing what sharing saves (summaries are shared across
// epochs and entries, visibility chains across siblings).
func (c *compiled) retainedBytes() (dedup, cloned int64) {
	c.ret.once.Do(func() {
		seenSum := make(map[*acl.Summary]bool)
		seenSet := make(map[*uint64]bool)
		addSet := func(s acl.IDSet) {
			if len(s) == 0 {
				return
			}
			c.ret.cloned += int64(cap(s)) * 8
			if head := &s[0]; !seenSet[head] {
				seenSet[head] = true
				c.ret.dedup += int64(cap(s)) * 8
			}
		}
		entrySize := int64(unsafe.Sizeof(centry{}))
		for path, e := range c.index {
			// Map slot: key header + bytes, value pointer, entry.
			slot := int64(len(path)) + 16 + 8 + entrySize
			c.ret.dedup += slot
			c.ret.cloned += slot
			sum := c.sumOf(e)
			if !seenSum[sum] {
				seenSum[sum] = true
				c.ret.dedup += int64(sum.RetainedBytes())
			}
			c.ret.cloned += int64(sum.RetainedBytes())
			addSet(e.effList)
			addSet(e.visAllow)
		}
		// The sensitive-slot slices: pointer pairs, plus any build-time
		// summary a patched entry still pins via e.sum (the entry keeps
		// its construction-time pointer; the live one lives in sums).
		slots := int64(cap(c.sens)+cap(c.sums)) * 8
		c.ret.dedup += slots
		c.ret.cloned += slots
		for _, e := range c.sens {
			if e == nil {
				continue
			}
			if !seenSum[e.sum] {
				seenSum[e.sum] = true
				c.ret.dedup += int64(e.sum.RetainedBytes())
			}
		}
		dom := int64(c.dom.RetainedBytes())
		c.ret.dedup += dom
		c.ret.cloned += dom
	})
	return c.ret.dedup, c.ret.cloned
}
