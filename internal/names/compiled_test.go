package names

import (
	"fmt"
	"math/rand"
	"testing"

	"secext/internal/acl"
	"secext/internal/lattice"
	"secext/internal/monitor"
	"secext/internal/monitor/dacguard"
	"secext/internal/principal"
)

// walkOnly returns a shadow of ep with the compiled view stripped, so
// resolveIn/checkAccessIn against it exercise the spine walk alone.
// The shadow shares every shard with ep, making it the oracle the
// compiled answers must agree with.
func walkOnly(ep *Epoch) *Epoch {
	sh := *ep
	sh.compiled = nil
	return &sh
}

var equivModes = []acl.Mode{
	acl.Read, acl.List, acl.Write, acl.Read | acl.Write,
	acl.Extend, acl.AllModes,
}

// assertCompiledEquiv asserts the full compiled-vs-walk contract on one
// pinned epoch: the index is exactly the tree (no missing, no stale
// entries), compiled summaries render the same effective mode sets as
// ACL entry iteration, and the fast check never decides an allow the
// walk denies — and, for registered subjects under the default stack,
// decides every allow the walk grants.
func assertCompiledEquiv(t *testing.T, ep *Epoch, subs []fakeSubject, classes []lattice.Class) {
	t.Helper()
	if !ep.Compiled() {
		t.Fatalf("epoch v%d not compiled", ep.Version())
	}
	shadow := walkOnly(ep)

	// Index ≡ tree, both directions.
	tree := make(map[string]*Node)
	ep.Walk(func(p string, n *Node) { tree[p] = n })
	for p, n := range tree {
		got, ok := ep.CompiledResolve(p)
		if !ok || got != n {
			t.Errorf("v%d: index missing or wrong at %s (ok=%v)", ep.Version(), p, ok)
		}
	}
	if len(ep.compiled.index) != len(tree) {
		for p := range ep.compiled.index {
			if _, ok := tree[p]; !ok {
				t.Errorf("v%d: stale index entry %s", ep.Version(), p)
			}
		}
	}

	for p, n := range tree {
		for _, sub := range subs {
			// Summary verdict ≡ ACL entry iteration, mode set for mode set.
			if granted, ok := ep.CompiledGrants(p, sub.name); ok {
				if oracle := n.acl.GrantedIn(sub, ep.members()); granted != oracle {
					t.Errorf("v%d: %s on %s: summary grants %v, entry iteration %v",
						ep.Version(), sub.name, p, granted, oracle)
				}
			}
			_, registered := ep.Registry().PrincipalID(sub.name)
			for _, class := range classes {
				// Checked resolution through the compiled visibility chain
				// must agree with the per-ancestor walk, errors included.
				rn, rerr := resolveIn(ep, sub, class, p, true)
				wn, werr := resolveIn(shadow, sub, class, p, true)
				if rn != wn || fmt.Sprint(rerr) != fmt.Sprint(werr) {
					t.Errorf("v%d: resolve %s as %s: fast (%v,%v) walk (%v,%v)",
						ep.Version(), p, sub.name, rn, rerr, wn, werr)
				}
				for _, modes := range equivModes {
					fastN, decided := ep.CompiledAllows(sub, class, p, modes)
					wn, werr := checkAccessIn(shadow, sub, class, p, modes)
					if decided && (werr != nil || wn != fastN) {
						t.Errorf("v%d: FAST PATH ALLOWED WHAT WALK DENIES: %s %s %v (walk err %v)",
							ep.Version(), sub.name, p, modes, werr)
					}
					if !decided && werr == nil && registered && ep.compiled.fast {
						t.Errorf("v%d: fast path undecided on a walk allow: %s %s %v",
							ep.Version(), sub.name, p, modes)
					}
					// The composed check must be identical either way.
					cn, cerr := checkAccessIn(ep, sub, class, p, modes)
					if cn != wn || fmt.Sprint(cerr) != fmt.Sprint(werr) {
						t.Errorf("v%d: checkAccessIn diverged at %s as %s %v: (%v,%v) vs (%v,%v)",
							ep.Version(), p, sub.name, modes, cn, cerr, wn, werr)
					}
				}
			}
		}
	}
}

// compiledFixture is a server with registry, groups, and a small tree.
type compiledFixture struct {
	*fixture
	reg  *principal.Registry
	subs []fakeSubject
}

func newCompiledFixture(t *testing.T) *compiledFixture {
	t.Helper()
	f := newFixture(t)
	f.mkTree(t)
	reg := principal.NewRegistry(f.lat)
	for _, p := range []string{"root", "alice", "bob", "carol"} {
		if _, err := reg.AddPrincipal(p, f.bot); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range []string{"ops", "eng"} {
		if err := reg.AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.AddMember("ops", "alice"); err != nil {
		t.Fatal(err)
	}
	f.srv.AttachRegistry(reg)
	return &compiledFixture{
		fixture: f, reg: reg,
		subs: []fakeSubject{subj("root"), subj("alice"), subj("bob"), subj("carol"), subj("mallory")},
	}
}

func (cf *compiledFixture) classes() []lattice.Class {
	return []lattice.Class{cf.bot, cf.org, cf.top}
}

// TestCompiledEpochLifecycle: no compiled view without a registry, one
// appears at attachment, SetCompiledEpochs strips and rebuilds it, and
// decisions are unaffected by the toggle.
func TestCompiledEpochLifecycle(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	if f.srv.Current().Compiled() {
		t.Fatal("compiled view without a registry")
	}
	reg := principal.NewRegistry(f.lat)
	if _, err := reg.AddPrincipal("root", f.bot); err != nil {
		t.Fatal(err)
	}
	f.srv.AttachRegistry(reg)
	if !f.srv.Current().Compiled() {
		t.Fatal("no compiled view after registry attach")
	}
	full0 := f.srv.CompiledStats().Full

	f.srv.SetCompiledEpochs(false)
	if f.srv.Current().Compiled() {
		t.Fatal("compiled view survived SetCompiledEpochs(false)")
	}
	if _, err := f.srv.CheckAccess(f.root, f.bot, "/svc/fs/read", acl.Read); err != nil {
		t.Fatalf("walk check with compilation off: %v", err)
	}
	f.srv.SetCompiledEpochs(true)
	if !f.srv.Current().Compiled() {
		t.Fatal("no compiled view after SetCompiledEpochs(true)")
	}
	if got := f.srv.CompiledStats().Full; got != full0+1 {
		t.Fatalf("full rebuilds = %d, want %d (re-enable forces one)", got, full0+1)
	}
	if _, err := f.srv.CheckAccess(f.root, f.bot, "/svc/fs/read", acl.Read); err != nil {
		t.Fatalf("fast check with compilation on: %v", err)
	}
}

// TestCompiledIndexTracksMutations drives every structural mutation
// class — bind, ACL install, membership change, unbind, rename with
// subtree move — and asserts the full equivalence contract after each.
func TestCompiledIndexTracksMutations(t *testing.T) {
	cf := newCompiledFixture(t)
	srv, classes := cf.srv, cf.classes()
	check := func(step string) {
		t.Helper()
		ep := srv.Current()
		assertCompiledEquiv(t, ep, cf.subs, classes)
		if t.Failed() {
			t.Fatalf("after %s", step)
		}
	}
	check("attach")

	deptACL := acl.New(
		acl.Allow("root", acl.AllModes),
		acl.AllowGroup("ops", acl.Read|acl.List),
		acl.AllowEveryone(acl.List),
	)
	if _, err := srv.BindUnchecked("/svc", BindSpec{Name: "dept", Kind: KindDirectory, ACL: deptACL, Class: cf.bot}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := srv.BindUnchecked("/svc/dept", BindSpec{
			Name: fmt.Sprintf("doc%d", i), Kind: KindFile,
			ACL:   acl.New(acl.Allow("alice", acl.Read|acl.Write), acl.AllowGroup("eng", acl.Read), acl.Deny("bob", acl.Read)),
			Class: cf.bot,
		}); err != nil {
			t.Fatal(err)
		}
	}
	check("binds")

	// ACL install on an interior node changes the children's visibility
	// chain: drop Everyone's List.
	if err := srv.SetACLUnchecked("/svc/dept", acl.New(
		acl.Allow("root", acl.AllModes), acl.Allow("alice", acl.List|acl.Read))); err != nil {
		t.Fatal(err)
	}
	check("interior ACL tightened")

	// Membership churn flips group-sensitive summaries.
	if err := cf.reg.AddMember("eng", "bob"); err != nil {
		t.Fatal(err)
	}
	check("bob joins eng")
	if err := cf.reg.RemoveMember("ops", "alice"); err != nil {
		t.Fatal(err)
	}
	check("alice leaves ops")

	// A new principal grows the ID space; bitsets must follow.
	if _, err := cf.reg.AddPrincipal("dave", cf.bot); err != nil {
		t.Fatal(err)
	}
	if err := cf.reg.AddMember("eng", "dave"); err != nil {
		t.Fatal(err)
	}
	cf.subs = append(cf.subs, subj("dave"))
	check("dave arrives")

	// Rename: move the whole dept subtree under a new parent — the old
	// paths must vanish from the index and the new ones appear.
	if _, err := srv.BindUnchecked("/", BindSpec{Name: "archive", Kind: KindDirectory, ACL: acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List)), Class: cf.bot}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Rename(cf.root, cf.bot, "/svc/dept", "/archive", "dept-old"); err != nil {
		t.Fatal(err)
	}
	check("subtree move")
	if _, ok := srv.Current().CompiledResolve("/svc/dept/doc0"); ok {
		t.Fatal("stale index entry for pre-rename path")
	}
	if _, ok := srv.Current().CompiledResolve("/archive/dept-old/doc0"); !ok {
		t.Fatal("index missing relocated node")
	}

	if err := srv.UnbindUnchecked("/archive/dept-old/doc2"); err != nil {
		t.Fatal(err)
	}
	check("unbind")

	// Traversal toggle republishes but must not disturb equivalence.
	srv.SetTraversalChecks(false)
	check("traversal off")
	srv.SetTraversalChecks(true)
	check("traversal on")

	st := srv.CompiledStats()
	if st.Incremental == 0 {
		t.Fatalf("no incremental builds recorded: %+v", st)
	}
	if st.Entries == 0 || st.RetainedBytes <= 0 || st.RetainedBytesCloned < st.RetainedBytes {
		t.Fatalf("implausible footprint: %+v", st)
	}
}

// TestCompiledIncrementalMatchesFullRebuild pins the incrementally
// maintained compiled view after a mutation storm, forces a from-
// scratch rebuild of the same epoch state, and deep-compares the two.
func TestCompiledIncrementalMatchesFullRebuild(t *testing.T) {
	cf := newCompiledFixture(t)
	srv := cf.srv
	for i := 0; i < 8; i++ {
		if _, err := srv.BindUnchecked("/svc", BindSpec{
			Name: fmt.Sprintf("s%d", i), Kind: KindFile,
			ACL:   acl.New(acl.Allow("alice", acl.Read), acl.AllowGroup("ops", acl.List)),
			Class: cf.bot,
		}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			cf.reg.AddMember("eng", "bob")
			cf.reg.RemoveMember("eng", "bob")
		}
	}
	inc := srv.Current()
	srv.SetCompiledEpochs(false)
	srv.SetCompiledEpochs(true)
	full := srv.Current()
	if full.Root() != inc.Root() {
		t.Fatal("toggle moved the tree")
	}
	ic, fc := inc.compiled, full.compiled
	if len(ic.index) != len(fc.index) {
		t.Fatalf("index sizes differ: inc %d full %d", len(ic.index), len(fc.index))
	}
	if ic.sensitive != fc.sensitive || ic.n != fc.n || ic.fast != fc.fast {
		t.Fatalf("metadata differs: inc{n:%d sens:%d fast:%v} full{n:%d sens:%d fast:%v}",
			ic.n, ic.sensitive, ic.fast, fc.n, fc.sensitive, fc.fast)
	}
	for p, ie := range ic.index {
		fe, ok := fc.index[p]
		if !ok || fe.node != ie.node {
			t.Fatalf("full rebuild disagrees about %s", p)
		}
		sameCls := ie.visClass.Equal(fe.visClass) || (!ie.visClass.Valid() && !fe.visClass.Valid())
		if ie.hasVis != fe.hasVis || !ie.visAllow.Equal(fe.visAllow) || !sameCls {
			t.Errorf("visibility chain differs at %s", p)
		}
		isum, fsum := ic.sumOf(ie), fc.sumOf(fe)
		for pid := 0; pid < ic.n; pid++ {
			if isum.Granted(pid) != fsum.Granted(pid) {
				t.Errorf("summary differs at %s for pid %d: inc %v full %v",
					p, pid, isum.Granted(pid), fsum.Granted(pid))
			}
		}
	}
}

// TestCompiledNonDefaultStackFallsBack: with a custom guard stack the
// index still resolves, but the fast check declines to decide — the
// stack's own semantics must run on the walk.
func TestCompiledNonDefaultStackFallsBack(t *testing.T) {
	cf := newCompiledFixture(t)
	srv := cf.srv
	dacOnly := monitor.NewPipeline(dacguard.New()).Current()
	srv.PublishStack(dacOnly)
	ep := srv.Current()
	if !ep.Compiled() {
		t.Fatal("stack publish dropped the compiled view")
	}
	if ep.compiled.fast {
		t.Fatal("non-default stack marked fast")
	}
	if _, ok := ep.CompiledResolve("/svc/fs/read"); !ok {
		t.Fatal("index lost under custom stack")
	}
	if _, decided := ep.CompiledAllows(subj("root"), cf.bot, "/svc/fs/read", acl.Read); decided {
		t.Fatal("fast check decided under a custom stack")
	}
	if _, err := srv.CheckAccess(subj("root"), cf.bot, "/svc/fs/read", acl.Read); err != nil {
		t.Fatalf("walk check under custom stack: %v", err)
	}
}

// TestCompiledRandomizedOracle fuzzes a deterministic op sequence over
// every mutation class and asserts the equivalence contract on every
// published epoch along the way, plus pinned-epoch immutability at the
// end. This is the op-sequence oracle for index-resolve ≡ walk-resolve
// and summary-verdict ≡ entry-iteration.
func TestCompiledRandomizedOracle(t *testing.T) {
	cf := newCompiledFixture(t)
	srv, classes := cf.srv, cf.classes()
	rng := rand.New(rand.NewSource(7))
	names := []string{"alice", "bob", "carol", "root"}
	groups := []string{"ops", "eng"}
	var pinned []*Epoch
	dirs := []string{"/svc", "/svc/fs"}
	serial := 0
	for i := 0; i < 120; i++ {
		switch rng.Intn(8) {
		case 0, 1:
			parent := dirs[rng.Intn(len(dirs))]
			serial++
			name := fmt.Sprintf("r%d", serial)
			a := acl.New(
				acl.Allow(names[rng.Intn(len(names))], acl.Read|acl.Write),
				acl.AllowGroup(groups[rng.Intn(len(groups))], acl.Read|acl.List),
			)
			if rng.Intn(2) == 0 {
				a.Add(acl.Deny(names[rng.Intn(len(names))], acl.Read))
			}
			kind, path := KindFile, parent+"/"+name
			if rng.Intn(3) == 0 {
				kind = KindDirectory
			}
			if _, err := srv.BindUnchecked(parent, BindSpec{Name: name, Kind: kind, ACL: a, Class: cf.bot}); err == nil && kind == KindDirectory {
				dirs = append(dirs, path)
			}
		case 2:
			srv.UnbindUnchecked(fmt.Sprintf("/svc/r%d", rng.Intn(serial+1)))
		case 3:
			p := dirs[rng.Intn(len(dirs))]
			srv.SetACLUnchecked(p, acl.New(
				acl.Allow("root", acl.AllModes),
				acl.AllowGroup(groups[rng.Intn(len(groups))], acl.List),
				acl.AllowEveryone(acl.List),
			))
		case 4:
			cf.reg.AddMember(groups[rng.Intn(len(groups))], names[rng.Intn(len(names))])
		case 5:
			cf.reg.RemoveMember(groups[rng.Intn(len(groups))], names[rng.Intn(len(names))])
		case 6:
			// Rename a random renameable node under /svc into /svc/fs.
			old := fmt.Sprintf("/svc/r%d", rng.Intn(serial+1))
			srv.Rename(cf.root, cf.bot, old, "/svc/fs", fmt.Sprintf("mv%d", i))
		case 7:
			if p, err := cf.reg.AddPrincipal(fmt.Sprintf("u%d", i), cf.bot); err == nil {
				_ = p
				cf.subs = append(cf.subs, subj(fmt.Sprintf("u%d", i)))
			}
		}
		if i%10 == 0 || i == 119 {
			ep := srv.Current()
			assertCompiledEquiv(t, ep, cf.subs, classes)
			if t.Failed() {
				t.Fatalf("after op %d", i)
			}
			pinned = append(pinned, ep)
		}
	}
	// Pinned epochs are immutable: the contract still holds on each.
	for _, ep := range pinned {
		assertCompiledEquiv(t, ep, cf.subs, classes)
	}
	st := srv.CompiledStats()
	if st.Incremental == 0 || st.Full == 0 {
		t.Fatalf("expected both full and incremental builds: %+v", st)
	}
}
