package names

import (
	"testing"

	"secext/internal/acl"
)

// corruptSummary is the test hook for the shadow divergence monitor: it
// replaces the compiled summary judging path with an
// allow-everyone-everything summary, making the freeze-time bitsets
// disagree with the authoritative ACL evaluation. Nothing in production
// can do this — epochs are immutable after publish — which is exactly
// why the monitor exists: to catch the compiler bug that would.
func corruptSummary(t *testing.T, ep *Epoch, path string) {
	t.Helper()
	e, ok := ep.compiled.index[path]
	if !ok {
		t.Fatalf("no compiled entry at %s", path)
	}
	wide := acl.New(acl.AllowEveryone(acl.AllModes)).Compile(ep.reg)
	if e.sensIdx >= 0 {
		ep.compiled.sums[e.sensIdx] = wide
		return
	}
	e.sum = wide
}

// TestShadowDivergenceDetectsCorruption is the monitor's acceptance
// test: corrupt a compiled summary, route checks through the traced
// (shadow-compared) path, and the divergence counter fires within the
// sampling window — while the walk's denial is still what the caller
// gets (fail closed).
func TestShadowDivergenceDetectsCorruption(t *testing.T) {
	cf := newCompiledFixture(t)
	ep := cf.srv.Current()
	bob := subj("bob")
	const path = "/svc/fs/read"

	// Sanity: the walk denies bob read (everyone holds list only), and
	// the honest fast path agrees by not deciding.
	if _, err := checkAccessIn(walkOnly(ep), bob, cf.bot, path, acl.Read); err == nil {
		t.Fatal("fixture grants bob read; the corruption would be invisible")
	}
	if _, decided := ep.CompiledAllows(bob, cf.bot, path, acl.Read); decided {
		t.Fatal("honest compiled view already allows bob read")
	}

	// An honest shadow comparison counts the check, not a divergence.
	if _, _, err := cf.srv.CheckAccessTracedAt(bob, cf.bot, path, acl.Read, nil); err == nil {
		t.Fatal("traced check allowed bob read")
	}
	sc, dv := cf.srv.DivergenceStats()
	if sc == 0 {
		t.Fatal("shadow monitor did not run on the traced path")
	}
	if dv != 0 {
		t.Fatalf("divergence on an honest epoch: %d", dv)
	}

	corruptSummary(t, ep, path)
	if _, decided := ep.fastCheck(bob, cf.bot, path, acl.Read); !decided {
		t.Fatal("corruption did not flip the fast check; test is vacuous")
	}

	// The corrupted allow must surface as a divergence on the next
	// shadowed check — and must NOT leak into the verdict.
	carol := subj("carol") // distinct subject: the denial above is cached for bob
	if _, _, err := cf.srv.CheckAccessTracedAt(carol, cf.bot, path, acl.Read, nil); err == nil {
		t.Fatal("divergence leaked: corrupted compiled allow was enforced")
	}
	sc2, dv2 := cf.srv.DivergenceStats()
	if sc2 <= sc {
		t.Fatalf("shadow checks did not advance: %d -> %d", sc, sc2)
	}
	if dv2 != 1 {
		t.Fatalf("divergences = %d after corruption, want 1", dv2)
	}
}

// TestShadowMonitorSkipsUncompiled: without a compiled view there is
// nothing to compare, and the counters stay untouched.
func TestShadowMonitorSkipsUncompiled(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	if _, _, err := f.srv.CheckAccessTracedAt(subj("nobody"), f.bot, "/svc/fs/read", acl.Read, nil); err == nil {
		t.Fatal("unexpected allow")
	}
	if sc, dv := f.srv.DivergenceStats(); sc != 0 || dv != 0 {
		t.Fatalf("counters (%d, %d) on an uncompiled server", sc, dv)
	}
}
