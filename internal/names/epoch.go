package names

import (
	"secext/internal/acl"
	"secext/internal/lattice"
	"secext/internal/monitor"
	"secext/internal/principal"
)

// Epoch is one immutable, fully consistent version of the ENTIRE
// policy: the name tree, the lattice universe, the principal/group
// registry, and the guard stack, published together behind the server's
// single atomic pointer. One atomic load pins everything a decision
// needs; no mediation step ever consults mutable state.
//
// The paper's model (§2) mediates every call and extend against three
// kinds of protection state — ACLs on named services, the MAC lattice,
// and the principal registry. Versioning only one shard of that state
// (the PR-4 snapshot tree) left a correctness soft spot: a verdict
// could read lattice or membership state that changed between the
// snapshot pin and the version bump. The epoch closes it RCU-style:
// version the whole policy, not one shard.
//
// A pinned Epoch guarantees:
//
//   - Every node reachable from Root() is frozen: name, path, kind,
//     ACL, class, payload reference, multilevel flag, and child map
//     never change. Concurrent mutations build new trees; they cannot
//     touch this one.
//   - The tree is internally consistent: a path either resolves fully
//     in this version of the space or not at all. A rename concurrent
//     with resolution is invisible — the walk sees the wholly-old or
//     the wholly-new tree, never a torn mix.
//   - Lattice() is the frozen universe in force when the epoch was
//     published: every class lookup, parse, and format inside the
//     decision reads one version of the level/category tables.
//   - Registry() is the frozen principal/group registry with its
//     transitive membership closure precomputed: every group-ACL entry
//     in the decision is judged against one version of the membership
//     relation, so a concurrent revocation can never split a verdict.
//   - Stack() is the guard stack in force at publication: the decision
//     runs exactly that ordered guard list even while Install/remove
//     republish the pipeline.
//   - Version() is the decision-cache generation for every verdict
//     computed against this epoch. Versions are strictly monotonic
//     across publishes of ANY policy shard, so an entry stamped with an
//     older version can never be served after any part of the policy
//     moved on.
//
// Payloads are shared across epochs by reference: a file's data handle
// is the same object in every epoch that contains the file, so the data
// plane (which does its own locking) is not copied, only the protection
// state is.
type Epoch struct {
	root    *Node
	version uint64
	// traversal controls whether checked resolution performs per-level
	// visibility checks. It lives in the epoch so toggling it publishes
	// a new version and invalidates cached decisions.
	traversal bool
	lat       *lattice.Frozen
	reg       *principal.Frozen // nil until a registry is attached
	stack     *monitor.Stack
	// compiled is the epoch's freeze-time read-side compilation (path
	// index, effective-ACL bitsets, dominance table; see compiled.go).
	// It is nil on staged epochs (mutators always walk their own
	// accumulated tree), when no registry is attached, and when
	// compilation is disabled; the flush populates it immediately
	// before the atomic store.
	compiled *compiled

	// owned counts the tree nodes newly allocated for this epoch (not
	// pointer-shared with the parent epoch's tree). The flush computes
	// it by a pointer-pruned diff walk — O(changed) — so the footprint
	// can report structure sharing without holding parent epochs alive.
	// fp caches the lazily computed footprint (see footprint.go); it is
	// freshly allocated per publication, nil on staged epochs.
	owned int
	fp    *fpCell
}

// Snapshot is the PR-4 name for a pinned policy version. It survives as
// an alias: an Epoch is a snapshot that grew from covering the name
// tree alone to covering every kind of policy state.
type Snapshot = Epoch

// Version returns the epoch's version number: the unified
// protection-state generation used by the decision cache.
func (ep *Epoch) Version() uint64 { return ep.version }

// Root returns the epoch's name-tree root node.
func (ep *Epoch) Root() *Node { return ep.root }

// Lattice returns the frozen lattice universe pinned in this epoch.
func (ep *Epoch) Lattice() *lattice.Frozen { return ep.lat }

// Registry returns the frozen principal/group registry pinned in this
// epoch, or nil when the server has no registry attached.
func (ep *Epoch) Registry() *principal.Frozen { return ep.reg }

// Stack returns the guard stack pinned in this epoch.
func (ep *Epoch) Stack() *monitor.Stack { return ep.stack }

// TraversalChecks reports whether this epoch enforces per-component
// visibility during resolution (list+MAC-read on every interior node).
func (ep *Epoch) TraversalChecks() bool { return ep.traversal }

// Membership returns the epoch's frozen membership relation for ACL
// evaluation, or nil when no registry is attached. Explain hooks use
// it to re-evaluate entries exactly as the guards did.
func (ep *Epoch) Membership() acl.Membership { return ep.members() }

// Lookup walks to the node bound at path inside this epoch with NO
// access or visibility checks — structural resolution only. It is an
// explain hook: provenance needs to inspect nodes (their ACLs and
// classes) that the asking subject may not itself be able to see.
// Production mediation never calls it.
func (ep *Epoch) Lookup(path string) (*Node, error) {
	return resolveIn(ep, nil, lattice.Class{}, path, false)
}

// CheckIn is the uncached full check pinned to this epoch — identical
// to Server.CheckAccessIn. Explain re-runs the authoritative decision
// through it so the verdict it reports is the one mediation computes,
// byte for byte.
func (ep *Epoch) CheckIn(sub acl.Subject, class lattice.Class, path string, modes acl.Mode) (*Node, error) {
	return checkAccessIn(ep, sub, class, path, modes)
}

// members returns the epoch's membership relation for ACL evaluation,
// or a nil interface when no registry is attached (guards then fall
// back to the subject's own MemberOf). The explicit nil check matters:
// storing a typed nil pointer in the interface would defeat the
// guards' fallback test.
func (ep *Epoch) members() acl.Membership {
	if ep.reg == nil {
		return nil
	}
	return ep.reg
}

// Walk visits every node in the epoch's name tree in depth-first order
// with no access checks, calling fn with each node's path and node.
// Iteration is deterministic: children are visited in lexicographic
// name order (the children slices are name-sorted), so two walks of
// equal trees produce identical sequences — and the walk allocates
// nothing per node. No lock is held while fn runs — fn may call back
// into the Server freely; it keeps observing this epoch regardless of
// concurrent mutations.
func (ep *Epoch) Walk(fn func(path string, n *Node)) {
	var visit func(n *Node)
	visit = func(n *Node) {
		fn(n.path, n)
		for _, cr := range n.children {
			visit(cr.node)
		}
	}
	visit(ep.root)
}

// Size returns the number of nodes in the epoch's name tree, including
// the root.
func (ep *Epoch) Size() int {
	n := 0
	ep.Walk(func(string, *Node) { n++ })
	return n
}

// Consistent reports whether the epoch is internally consistent: every
// node's class is expressible in the epoch's lattice, and every
// principal or group named by a node's ACL exists in the epoch's
// registry (when one is attached). The fuzz harness drives random
// mutation interleavings and asserts this on every pinned epoch — a
// torn publication (new tree with an old lattice or registry) would
// fail it. On failure the offending path and reason are returned.
func (ep *Epoch) Consistent() (ok bool, path, why string) {
	ok = true
	ep.Walk(func(p string, n *Node) {
		if !ok {
			return
		}
		if !ep.lat.Contains(*n.class) {
			ok, path, why = false, p, "class not in epoch lattice"
			return
		}
		if ep.reg == nil {
			return
		}
		for _, e := range n.acl.Entries() {
			switch e.Kind {
			case acl.Principal:
				if !ep.reg.HasPrincipal(e.Who) {
					ok, path, why = false, p, "acl principal "+e.Who+" not in epoch registry"
					return
				}
			case acl.Group:
				if !ep.reg.HasGroup(e.Who) {
					ok, path, why = false, p, "acl group "+e.Who+" not in epoch registry"
					return
				}
			}
		}
	})
	return ok, path, why
}
