package names

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"secext/internal/acl"
	"secext/internal/decision"
	"secext/internal/lattice"
	"secext/internal/principal"
)

// TestEpochBundlesAllShards: one Current() call pins all four policy
// shards, and each typed transition republishes the epoch with the
// changed shard swapped and the other three carried over.
func TestEpochBundlesAllShards(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	reg := principal.NewRegistry(f.lat)
	if _, err := reg.AddPrincipal("alice", f.bot); err != nil {
		t.Fatal(err)
	}
	f.srv.AttachRegistry(reg)

	ep0 := f.srv.Current()
	if ep0.Lattice() == nil || ep0.Registry() == nil || ep0.Stack() == nil || ep0.Root() == nil {
		t.Fatalf("attached epoch missing a shard: %+v", ep0)
	}
	tr0 := f.srv.EpochTransitions()

	// Lattice definition → lattice transition, same tree and registry.
	if _, err := f.lat.DefineLevel("ultra"); err != nil {
		t.Fatal(err)
	}
	ep1 := f.srv.Current()
	if ep1.Version() != ep0.Version()+1 {
		t.Fatalf("lattice define: version %d -> %d", ep0.Version(), ep1.Version())
	}
	if ep1.Lattice() == ep0.Lattice() {
		t.Fatal("lattice define did not swap the frozen lattice")
	}
	if ep1.Root() != ep0.Root() || ep1.Registry() != ep0.Registry() || ep1.Stack() != ep0.Stack() {
		t.Fatal("lattice define disturbed an unrelated shard")
	}
	if _, err := ep1.Lattice().LevelByName("ultra"); err != nil {
		t.Fatalf("new epoch's lattice missing the new level: %v", err)
	}
	if _, err := ep0.Lattice().LevelByName("ultra"); err == nil {
		t.Fatal("pinned old epoch sees the new level")
	}

	// Registry mutation → registry transition.
	if err := reg.AddGroup("ops"); err != nil {
		t.Fatal(err)
	}
	ep2 := f.srv.Current()
	if ep2.Registry() == ep1.Registry() || ep2.Root() != ep1.Root() || ep2.Lattice() != ep1.Lattice() {
		t.Fatal("registry mutation transitioned the wrong shard")
	}
	if !ep2.Registry().HasGroup("ops") || ep1.Registry().HasGroup("ops") {
		t.Fatal("group visible in the wrong epoch")
	}

	// Tree mutation → name transition.
	if err := f.srv.SetACLUnchecked("/svc/fs/read", acl.New(acl.Allow("alice", acl.Read))); err != nil {
		t.Fatal(err)
	}
	ep3 := f.srv.Current()
	if ep3.Root() == ep2.Root() || ep3.Registry() != ep2.Registry() || ep3.Lattice() != ep2.Lattice() {
		t.Fatal("tree mutation transitioned the wrong shard")
	}

	tr := f.srv.EpochTransitions()
	if tr.Lattice != tr0.Lattice+1 || tr.Registry != tr0.Registry+1 || tr.Names != tr0.Names+1 {
		t.Fatalf("transition counters: before %+v after %+v", tr0, tr)
	}
	if got := f.srv.Publishes(); got < 3 {
		t.Fatalf("publishes = %d, want >= 3", got)
	}
}

// TestEpochReadPathAcquiresNoMutex is the acceptance-criterion
// assertion for the lock-free read side: with mutex profiling capturing
// EVERY contention event, a heavy concurrent read-only workload over
// both the cached and the uncached decision paths must leave zero
// contention samples in any function of this module. A single
// sync.Mutex or RWMutex anywhere on the mediation read path — server,
// cache, guards, frozen lattice, frozen registry — would contend under
// 8 goroutines and show up here with its stack.
func TestEpochReadPathAcquiresNoMutex(t *testing.T) {
	old := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(old)

	f := newFixture(t)
	f.mkTree(t)
	reg := principal.NewRegistry(f.lat)
	if _, err := reg.AddPrincipal("alice", f.bot); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddGroup("ops"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddMember("ops", "alice"); err != nil {
		t.Fatal(err)
	}
	f.srv.AttachRegistry(reg)
	// A group entry forces the DAC guard through the epoch's pinned
	// membership relation, so the frozen registry is on the hot path.
	grant := acl.New(acl.AllowGroup("ops", acl.Read), acl.AllowEveryone(acl.List))
	if err := f.srv.SetACLUnchecked("/svc/fs/read", grant); err != nil {
		t.Fatal(err)
	}
	f.srv.SetDecisionCache(decision.NewCache(0))
	alice := subj("alice")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				// Cached fast path.
				if _, err := f.srv.CheckAccess(alice, f.bot, "/svc/fs/read", acl.Read); err != nil {
					t.Errorf("cached check: %v", err)
					return
				}
				// Uncached full path against an explicitly pinned epoch.
				ep := f.srv.Current()
				if _, err := f.srv.CheckAccessIn(ep, alice, f.bot, "/svc/fs/read", acl.Read); err != nil {
					t.Errorf("pinned check: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	n, _ := runtime.MutexProfile(nil)
	recs := make([]runtime.BlockProfileRecord, n+64)
	n, _ = runtime.MutexProfile(recs)
	for _, r := range recs[:n] {
		frames := runtime.CallersFrames(r.Stack())
		for {
			fr, more := frames.Next()
			// Any contended mutex inside this module's non-test code is
			// a read-path lock the epoch design forbids.
			if strings.HasPrefix(fr.Function, "secext/") && !strings.Contains(fr.File, "_test.go") {
				t.Errorf("mutex contention on the read path: %s (%s:%d)", fr.Function, fr.File, fr.Line)
			}
			if !more {
				break
			}
		}
	}
}

// FuzzEpochTransitions drives a random interleaving of mutations across
// all four policy shards from concurrent goroutines while a reader pins
// epochs, and asserts every pinned epoch is internally consistent
// (Epoch.Consistent) with a monotone version. A publication that paired
// a new tree with a stale lattice or registry — or tore half a
// transition — fails the consistency walk. The op vocabulary mixes
// per-mutation publishes, bulk batched paths (AddMembers, ACL batches),
// and direct Publish* calls, so write-combined and unbatched
// publications interleave; the end-state checks catch lost mutations
// and incremental-freeze divergence.
func FuzzEpochTransitions(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 7, 7, 2, 2, 8, 8})
	f.Add([]byte("epoch transitions"))
	// Wide-directory and deep-rename ops, interleaved with plain churn.
	f.Add([]byte{12, 13, 0, 12, 2, 13, 5, 12, 13, 7})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) == 0 {
			return
		}
		lat, err := lattice.NewWithUniverse([]string{"low", "high"}, []string{"a"})
		if err != nil {
			t.Fatal(err)
		}
		bot, _ := lat.Bottom()
		srv := NewServer(lat, acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List)), bot)
		reg := principal.NewRegistry(lat)
		for _, p := range []string{"root", "p0", "p1", "p2"} {
			if _, err := reg.AddPrincipal(p, bot); err != nil {
				t.Fatal(err)
			}
		}
		for _, g := range []string{"g0", "g1"} {
			if err := reg.AddGroup(g); err != nil {
				t.Fatal(err)
			}
		}
		srv.AttachRegistry(reg)
		// Per-goroutine home directories so mutators never trip over each
		// other structurally.
		open := acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List))
		const mutators = 3
		for g := 0; g < mutators; g++ {
			if _, err := srv.BindUnchecked("/", BindSpec{Name: fmt.Sprintf("d%d", g), Kind: KindDirectory, ACL: open, Class: bot}); err != nil {
				t.Fatal(err)
			}
		}

		var wg sync.WaitGroup
		for g := 0; g < mutators; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				home := fmt.Sprintf("/d%d", g)
				for i := g; i < len(ops); i += mutators {
					switch ops[i] % 14 {
					case 0:
						srv.BindUnchecked(home, BindSpec{
							Name: fmt.Sprintf("n%d", i), Kind: KindFile,
							ACL: acl.New(acl.Allow("p0", acl.Read), acl.AllowGroup("g0", acl.List)), Class: bot,
						})
					case 1:
						srv.UnbindUnchecked(fmt.Sprintf("%s/n%d", home, i-8))
					case 2:
						srv.SetACLUnchecked(home, acl.New(
							acl.Allow(fmt.Sprintf("p%d", i%3), acl.AllModes),
							acl.AllowGroup(fmt.Sprintf("g%d", i%2), acl.Read)))
					case 3:
						lat.DefineLevel(fmt.Sprintf("lv-%d-%d", g, i))
					case 4:
						lat.DefineCategory(fmt.Sprintf("cat-%d-%d", g, i))
					case 5:
						reg.AddMember(fmt.Sprintf("g%d", i%2), fmt.Sprintf("p%d", i%3))
					case 6:
						reg.RemoveMember(fmt.Sprintf("g%d", i%2), fmt.Sprintf("p%d", i%3))
					case 7:
						srv.PublishStack(srv.Pipeline().Current())
					case 8:
						// Bulk membership: one freeze, one batched publish.
						reg.AddMembers(fmt.Sprintf("g%d", i%2), "p0", "p1", "p2")
					case 9:
						reg.RemoveMembers(fmt.Sprintf("g%d", i%2), "p0", "p1")
					case 10:
						// Batched ACL install over the mutator's own home.
						srv.SetACLsUnchecked([]ACLEdit{
							{Path: home, ACL: acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List))},
						})
					case 11:
						// Direct publish of the current frozen registry,
						// interleaved with hook-driven batched publishes.
						srv.PublishRegistry(reg.Freeze())
					case 12:
						// Wide directory: 10^3+ children land in one bulk
						// publication, stressing the sorted-slice layout's
						// append fast path and the binary-searched lookups
						// concurrent readers run against it.
						wname := fmt.Sprintf("w%d", i)
						specs := make([]SubtreeSpec, 0, 1+1024)
						specs = append(specs, SubtreeSpec{Path: wname, Kind: KindDirectory, ACL: open, Class: bot})
						for k := 0; k < 1024; k++ {
							specs = append(specs, SubtreeSpec{
								Path: fmt.Sprintf("%s/k%04d", wname, k), Kind: KindFile, ACL: open, Class: bot,
							})
						}
						srv.BindSubtreeUnchecked(home, specs)
					case 13:
						// Deep chain, then rename its head: every
						// descendant's stored path is rewritten, and the
						// entry's sort position in home changes — the
						// derived-name invariant (entry name == path tail)
						// must hold through both.
						base := fmt.Sprintf("deep%d", i)
						specs := []SubtreeSpec{{Path: base, Kind: KindDirectory, ACL: open, Class: bot}}
						rel := base
						for d := 0; d < 24; d++ {
							rel += "/c"
							specs = append(specs, SubtreeSpec{Path: rel, Kind: KindDirectory, ACL: open, Class: bot})
						}
						if _, _, err := srv.BindSubtreeUnchecked(home, specs); err == nil {
							srv.Rename(subj("root"), bot, home+"/"+base, home, fmt.Sprintf("a-moved%d", i))
						}
					}
				}
			}(g)
		}

		// Reader: every pinned epoch must be internally consistent and
		// versions must never go backwards.
		var pinned []*Epoch
		last := uint64(0)
		for i := 0; i < 4*len(ops); i++ {
			ep := srv.Current()
			if ep.Version() < last {
				t.Errorf("version went backwards: %d after %d", ep.Version(), last)
				break
			}
			last = ep.Version()
			if ok, path, why := ep.Consistent(); !ok {
				t.Errorf("pinned epoch v%d inconsistent at %s: %s", ep.Version(), path, why)
				break
			}
			if i%16 == 0 {
				pinned = append(pinned, ep)
			}
		}
		wg.Wait()

		// Pinned epochs stay consistent after the dust settles — they are
		// immutable, so the concurrent mutations cannot have touched them.
		// Each pinned compiled epoch must also honor the compiled-vs-walk
		// equivalence contract: index ≡ tree, summary verdict ≡ ACL entry
		// iteration, fast check ≡ spine walk (assertCompiledEquiv).
		fuzzSubs := []fakeSubject{subj("root"), subj("p0"), subj("p1"), subj("p2")}
		for _, ep := range pinned {
			if ok, path, why := ep.Consistent(); !ok {
				t.Errorf("old epoch v%d mutated after pin: %s: %s", ep.Version(), path, why)
			}
			if ep.Compiled() {
				assertCompiledEquiv(t, ep, fuzzSubs, []lattice.Class{bot})
			}
		}
		final := srv.Current()
		if ok, path, why := final.Consistent(); !ok {
			t.Errorf("final epoch inconsistent at %s: %s", path, why)
		}
		if final.Compiled() {
			assertCompiledEquiv(t, final, fuzzSubs, []lattice.Class{bot})
		} else {
			t.Error("final epoch carries no compiled view despite an attached registry")
		}
		// No lost publications: once every mutator has returned, the
		// published epoch must carry each shard's latest frozen state —
		// a batch that was staged but never flushed would strand them.
		if final.Lattice() != lat.Freeze() {
			t.Errorf("final epoch lattice v%d, lattice at v%d", final.Lattice().Version(), lat.Version())
		}
		if final.Registry() != reg.Freeze() {
			t.Errorf("final epoch registry v%d, registry at v%d", final.Registry().Version(), reg.Version())
		}
		// Incremental-freeze equivalence: rebuilding the registry closure
		// from scratch must agree with the incrementally patched view the
		// epoch carries, for every principal × group pair.
		inc := final.Registry()
		reg.SetIncrementalFreeze(false)
		reg.Touch()
		full := reg.Freeze()
		for _, p := range full.Principals() {
			for _, g := range full.Groups() {
				if inc.IsMember(p, g) != full.IsMember(p, g) {
					t.Errorf("incremental closure diverged: %s in %s: inc=%v full=%v",
						p, g, inc.IsMember(p, g), full.IsMember(p, g))
				}
			}
		}
	})
}
