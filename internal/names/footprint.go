package names

import (
	"sync"
	"unsafe"

	"secext/internal/acl"
)

// Per-epoch footprint accounting.
//
// The north star claims millions of objects; this file makes the claim
// auditable. Every published epoch can report what its tree actually
// costs — node structs, child-slice backing arrays, path/name strings,
// distinct ACL values — and how much of it is newly allocated versus
// structure-shared with the parent epoch. The numbers are estimates in
// the same spirit as CompiledStats.RetainedBytes: struct sizes via
// unsafe.Sizeof, string bytes by length, shared values counted once.
//
// The walk is O(tree) but runs at most once per epoch: the result is
// cached in a per-publication cell (fpCell), so telemetry scrapes after
// the first pay one pointer load. The shared-vs-owned split is computed
// eagerly by the flush (countOwned) with a pointer-pruned diff walk, so
// it costs O(changed) per publication and no parent epoch is kept
// alive for accounting.

// Footprint is one epoch's tree-memory accounting.
type Footprint struct {
	Version uint64 // epoch the numbers describe

	Nodes       int // all nodes, root included
	Leaves      int // nodes of leaf kinds
	Directories int // non-leaf nodes

	OwnedNodes  int // nodes newly allocated by this epoch's publication
	SharedNodes int // nodes pointer-shared with the parent epoch

	ChildSlots      int   // total childRef entries across all directories
	ChildSliceBytes int64 // children backing arrays (cap × sizeof(childRef))
	PathBytes       int64 // canonical path strings (one per node)
	NameBytes       int64 // component-name bytes NOT shared with the node's path backing
	NodeStructBytes int64 // Nodes × sizeof(Node)

	ACLRefs       int     // nodes (every node holds an ACL reference)
	DistinctACLs  int     // distinct *acl.ACL values in the tree
	ACLBytes      int64   // entry storage of the distinct ACLs, counted once
	ACLDedupRatio float64 // ACLRefs / DistinctACLs

	TotalBytes   int64   // sum of the byte columns above
	BytesPerNode float64 // TotalBytes / Nodes
}

// fpCell caches one epoch's lazily computed footprint. It is allocated
// fresh per publication (see flush), so the sync.Once is never copied.
type fpCell struct {
	once sync.Once
	fp   Footprint
}

// countOwned counts the nodes of next's tree that are not pointer-
// shared with prev's tree at the same position. Shared subtrees prune
// the walk, so a typical publication costs O(spine + edits); a full
// replacement (replica bootstrap) costs O(tree).
func countOwned(prev, next *Node) int {
	if prev == next {
		return 0
	}
	owned := 1
	for _, cr := range next.children {
		var p *Node
		if prev != nil {
			p = prev.child(cr.name())
		}
		owned += countOwned(p, cr.node)
	}
	return owned
}

// Footprint returns the epoch's tree-memory accounting, computed once
// per epoch and cached. Calling it on a staged (unpublished) epoch
// computes uncached.
func (ep *Epoch) Footprint() Footprint {
	cell := ep.fp
	if cell == nil {
		return ep.computeFootprint()
	}
	cell.once.Do(func() { cell.fp = ep.computeFootprint() })
	return cell.fp
}

func (ep *Epoch) computeFootprint() Footprint {
	fp := Footprint{Version: ep.version, OwnedNodes: ep.owned}
	nodeSize := int64(unsafe.Sizeof(Node{}))
	refSize := int64(unsafe.Sizeof(childRef{}))
	seenACL := make(map[*acl.ACL]struct{}, 64)
	ep.Walk(func(path string, n *Node) {
		fp.Nodes++
		if n.kind.Leaf() {
			fp.Leaves++
		} else {
			fp.Directories++
		}
		fp.ChildSlots += len(n.children)
		fp.ChildSliceBytes += int64(cap(n.children)) * refSize
		fp.PathBytes += int64(len(n.path))
		// Names are derived from paths (Node.Name), never stored, so
		// NameBytes is structurally zero; the field survives so the
		// telemetry shape can show the invariant rather than assume it.
		fp.ACLRefs++
		if _, ok := seenACL[n.acl]; !ok {
			seenACL[n.acl] = struct{}{}
			fp.ACLBytes += int64(n.acl.RetainedBytes())
		}
	})
	fp.DistinctACLs = len(seenACL)
	fp.SharedNodes = fp.Nodes - fp.OwnedNodes
	if fp.SharedNodes < 0 {
		fp.SharedNodes = 0
	}
	fp.NodeStructBytes = int64(fp.Nodes) * nodeSize
	if fp.DistinctACLs > 0 {
		fp.ACLDedupRatio = float64(fp.ACLRefs) / float64(fp.DistinctACLs)
	}
	fp.TotalBytes = fp.NodeStructBytes + fp.ChildSliceBytes + fp.PathBytes + fp.NameBytes + fp.ACLBytes
	if fp.Nodes > 0 {
		fp.BytesPerNode = float64(fp.TotalBytes) / float64(fp.Nodes)
	}
	return fp
}

// EpochFootprint bundles the current epoch's footprint with the
// server's intern-table accounting — the write-side state the epoch
// numbers depend on.
type EpochFootprint struct {
	Footprint
	Interner InternStats
	ACLCanon ACLCanonStats
}

// EpochFootprint returns the current epoch's footprint plus the
// server's string-interner and ACL-dedup table statistics. Telemetry
// surfaces it as the secext_epoch_footprint_* gauge family.
func (s *Server) EpochFootprint() EpochFootprint {
	return EpochFootprint{
		Footprint: s.epoch.Load().Footprint(),
		Interner:  s.strings.stats(),
		ACLCanon:  s.acls.stats(),
	}
}
