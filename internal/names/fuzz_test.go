package names

import (
	"strings"
	"testing"
)

// FuzzSplitPath checks that path validation never panics, that every
// accepted path re-joins to itself, and that no accepted component is
// empty or dotted.
func FuzzSplitPath(f *testing.F) {
	for _, seed := range []string{
		"/", "/a", "/a/b/c", "", "a", "//", "/a//b", "/./x", "/..", "/a/", "/a/./b",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		parts, err := SplitPath(path)
		if err != nil {
			return
		}
		for _, p := range parts {
			if p == "" || p == "." || p == ".." || strings.ContainsRune(p, '/') {
				t.Fatalf("SplitPath(%q) accepted bad component %q", path, p)
			}
		}
		if got := Join("/", parts...); got != path {
			t.Fatalf("Join(SplitPath(%q)) = %q", path, got)
		}
	})
}
