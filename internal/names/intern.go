package names

import (
	"strings"
	"sync"
	"sync/atomic"

	"secext/internal/acl"
	"secext/internal/lattice"
)

// Write-side interning.
//
// Published epochs share every untouched subtree, but the strings and
// ACL values attached to *fresh* nodes used to be allocated anew on
// every mutation: a rename re-keyed a whole subtree with brand-new path
// strings, a replica bootstrap decoded one string and one ACL per wire
// node, and a policy re-install cloned textually identical ACLs again
// and again. At 10^6 nodes that duplication dominates the footprint, so
// the server routes every string and ACL that enters the tree through
// two per-server intern tables:
//
//   - interner canonicalizes path strings. A path re-created by a
//     rename round-trip, a delta upsert, or a re-bind lands on the one
//     canonical allocation, and component names are carved out of the
//     interned path as substrings (nameOf), so names cost zero extra
//     bytes.
//   - aclCanon canonicalizes *acl.ACL values by their textual form
//     (acl.String round-trips exactly, see wire.go). Deduping at the
//     point a fresh ACL enters the tree compounds with the compiled
//     epochs' pointer-identity summary reuse (compiled.go) and with the
//     wire diff's pointer comparison (contentDiffers): more shared
//     pointers mean more freeze-time reuse and smaller deltas.
//
// Both tables are bounded: when they exceed their cap they are reset
// wholesale rather than evicted entry-by-entry — epochs keep the
// strings and ACLs they reference alive regardless, the table only
// loses dedup opportunity until it refills.

// internCap bounds the interner's table; aclCanonCap bounds the ACL
// table. Resets are counted so telemetry can flag a thrashing table.
// Variables, not constants, so tests can shrink them to exercise the
// reset path.
var (
	internCap   = 1 << 20
	aclCanonCap = 1 << 16
)

// interner is a bounded string intern table. The zero value is ready to
// use; a nil *interner passes strings through unchanged (free functions
// outside a server use it that way).
type interner struct {
	mu     sync.Mutex
	table  map[string]string
	bytes  int64 // unique bytes currently held by the table
	hits   atomic.Uint64
	misses atomic.Uint64
	resets atomic.Uint64
}

// intern returns the canonical copy of s, installing s itself on first
// sight.
func (in *interner) intern(s string) string {
	if in == nil {
		return s
	}
	in.mu.Lock()
	if c, ok := in.table[s]; ok {
		in.mu.Unlock()
		in.hits.Add(1)
		return c
	}
	if in.table == nil || len(in.table) >= internCap {
		if in.table != nil {
			in.resets.Add(1)
		}
		in.table = make(map[string]string, 1024)
		in.bytes = 0
	}
	in.table[s] = s
	in.bytes += int64(len(s))
	in.mu.Unlock()
	in.misses.Add(1)
	return s
}

// InternStats describes the interner's table for footprint telemetry.
type InternStats struct {
	Strings int    `json:"strings"`
	Bytes   int64  `json:"bytes"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Resets  uint64 `json:"resets"`
}

// stats snapshots the table.
func (in *interner) stats() InternStats {
	if in == nil {
		return InternStats{}
	}
	in.mu.Lock()
	st := InternStats{Strings: len(in.table), Bytes: in.bytes}
	in.mu.Unlock()
	st.Hits = in.hits.Load()
	st.Misses = in.misses.Load()
	st.Resets = in.resets.Load()
	return st
}

// nameOf returns the final component of a canonical absolute path as a
// substring of path — interned paths therefore carry their component
// name without a second allocation ("" for the root path).
func nameOf(path string) string {
	if path == "/" {
		return ""
	}
	i := strings.LastIndexByte(path, '/')
	return path[i+1:]
}

// aclCanon is a bounded ACL dedup table keyed by textual form. The
// zero value is ready; a nil *aclCanon clones instead (preserving the
// pre-dedupe contract that the tree never aliases caller memory).
type aclCanon struct {
	mu     sync.Mutex
	table  map[string]*acl.ACL
	dedups atomic.Uint64
	resets atomic.Uint64
}

// canon returns the canonical *acl.ACL equal to a. The canonical value
// is a private clone, so callers may keep mutating their own copy; a
// nil a canonicalizes to the empty ACL (fail-closed, matching Bind).
func (c *aclCanon) canon(a *acl.ACL) *acl.ACL {
	if a == nil {
		a = acl.New()
	}
	if c == nil {
		return a.Clone()
	}
	key := a.String()
	c.mu.Lock()
	if v, ok := c.table[key]; ok {
		c.mu.Unlock()
		c.dedups.Add(1)
		return v
	}
	if c.table == nil || len(c.table) >= aclCanonCap {
		if c.table != nil {
			c.resets.Add(1)
		}
		c.table = make(map[string]*acl.ACL, 64)
	}
	v := a.Clone()
	c.table[key] = v
	c.mu.Unlock()
	return v
}

// classCanonCap bounds the class canon table. Distinct classes are
// bounded by the lattice universe in practice; the cap is a backstop
// against pathological universes, handled like the other tables: reset
// wholesale and let the working set repopulate.
var classCanonCap = 1 << 12

// classCanon is a bounded security-class dedup table keyed by the
// class's canonical label. Nodes store *lattice.Class so the tree pays
// one pointer per node instead of an inline class value (level word
// plus category bitset); the distinct class values themselves are
// shared server-wide through this table. A nil *classCanon boxes a
// private copy instead (for wire-decode contexts without a server).
type classCanon struct {
	mu    sync.Mutex
	table map[string]*lattice.Class
}

// canon returns the canonical *lattice.Class equal to c. The canonical
// value is a private copy, never an alias of caller storage.
func (cc *classCanon) canon(c lattice.Class) *lattice.Class {
	if cc == nil {
		boxed := c
		return &boxed
	}
	key := c.String()
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if v, ok := cc.table[key]; ok {
		return v
	}
	if cc.table == nil || len(cc.table) >= classCanonCap {
		cc.table = make(map[string]*lattice.Class, 16)
	}
	boxed := c
	cc.table[key] = &boxed
	return &boxed
}

// ACLCanonStats describes the ACL dedup table for footprint telemetry.
type ACLCanonStats struct {
	Distinct uint64 `json:"distinct"`
	Dedups   uint64 `json:"dedups"`
	Resets   uint64 `json:"resets"`
}

// stats snapshots the table.
func (c *aclCanon) stats() ACLCanonStats {
	if c == nil {
		return ACLCanonStats{}
	}
	c.mu.Lock()
	st := ACLCanonStats{Distinct: uint64(len(c.table))}
	c.mu.Unlock()
	st.Dedups = c.dedups.Load()
	st.Resets = c.resets.Load()
	return st
}
