package names

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"secext/internal/acl"
)

// TestPropTreeInvariants drives random bind/unbind/rename sequences and
// verifies after every operation that the tree is structurally sound:
// every reachable node's Path resolves back to the same node, parents
// and children agree, leaves have no children, and Size matches the
// walk.
func TestPropTreeInvariants(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := newFixture(t)
		open := acl.New(acl.AllowEveryone(acl.AllModes))

		// Track existing paths for random targeting.
		var paths []string
		collect := func() {
			paths = paths[:0]
			f.srv.Walk(func(p string, n *Node) {
				if p != "/" {
					paths = append(paths, p)
				}
			})
		}
		kinds := []Kind{KindDomain, KindInterface, KindObject, KindMethod, KindDirectory, KindFile}

		for step := 0; step < 300; step++ {
			collect()
			switch op := r.Intn(3); {
			case op == 0 || len(paths) == 0: // bind
				parent := "/"
				if len(paths) > 0 && r.Intn(2) == 0 {
					parent = paths[r.Intn(len(paths))]
				}
				name := fmt.Sprintf("n%d", step)
				kind := kinds[r.Intn(len(kinds))]
				_, err := f.srv.BindUnchecked(parent, BindSpec{
					Name: name, Kind: kind, ACL: open, Class: f.bot,
					Multilevel: r.Intn(4) == 0,
				})
				// ErrLeaf/ErrExists are legal outcomes; anything else
				// on a structurally valid request is not.
				if err != nil && !isExpectedBindErr(err) {
					t.Fatalf("seed %d step %d: bind under %s: %v", seed, step, parent, err)
				}
			case op == 1: // unbind
				target := paths[r.Intn(len(paths))]
				err := f.srv.UnbindUnchecked(target)
				if err != nil && !isExpectedUnbindErr(err) {
					t.Fatalf("seed %d step %d: unbind %s: %v", seed, step, target, err)
				}
			case op == 2: // rename
				src := paths[r.Intn(len(paths))]
				dstParent := "/"
				if r.Intn(2) == 0 {
					dstParent = paths[r.Intn(len(paths))]
				}
				err := f.srv.Rename(subj("any"), f.top, src, dstParent, fmt.Sprintf("m%d", step))
				// Access checks may deny (ACL is open but MAC applies);
				// structural rejections are fine too.
				_ = err
			}
			checkTree(t, f, seed, step)
		}
	}
}

func isExpectedBindErr(err error) bool {
	for _, want := range []error{ErrLeaf, ErrExists, ErrBadPath, ErrNotFound} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

func isExpectedUnbindErr(err error) bool {
	for _, want := range []error{ErrNotEmpty, ErrRoot, ErrNotFound} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

func checkTree(t *testing.T, f *fixture, seed int64, step int) {
	t.Helper()
	count := 0
	f.srv.Walk(func(p string, n *Node) {
		count++
		if n.Kind().Leaf() && len(n.children) != 0 {
			t.Fatalf("seed %d step %d: leaf %s has children", seed, step, p)
		}
		got, err := f.srv.ResolveUnchecked(p)
		if err != nil || got != n {
			t.Fatalf("seed %d step %d: path %s does not resolve to itself: %v", seed, step, p, err)
		}
		for i, cr := range n.children {
			if cr.node.Name() != cr.name() || cr.node.path != Join(p, cr.name()) {
				t.Fatalf("seed %d step %d: child path disagrees at %s/%s (name %q path %q)",
					seed, step, p, cr.name(), cr.node.Name(), cr.node.path)
			}
			if i > 0 && n.children[i-1].name() >= cr.name() {
				t.Fatalf("seed %d step %d: children of %s not strictly sorted (%q >= %q)",
					seed, step, p, n.children[i-1].name(), cr.name())
			}
		}
	})
	if got := f.srv.Size(); got != count {
		t.Fatalf("seed %d step %d: Size %d != walked %d", seed, step, got, count)
	}
}
