package names

import (
	"sync/atomic"
	"time"
)

// journalCap is the number of epoch-transition records the journal
// retains. Old records are overwritten ring-style; 256 transitions is
// hours of history under interactive policy editing and a few seconds
// under a churn benchmark, which is exactly the window a divergence or
// latency investigation needs.
const journalCap = 256

// TransitionRecord describes one epoch publication: which shards
// changed, how many staged mutations the batch coalesced, whether the
// freezes were incremental or full rebuilds, what kind of compiled
// read side was built and what it cost, and how long the whole
// publish took. Records are immutable once appended.
type TransitionRecord struct {
	Version   uint64    `json:"version"`    // version the batch landed in
	Time      time.Time `json:"time"`       // wall-clock publish time
	Shards    []string  `json:"shards"`     // shard kinds staged into the batch
	BatchSize int       `json:"batch_size"` // staged mutations coalesced

	// Frozen-shard provenance: version and delta base of the lattice
	// and registry snapshots the epoch carries. DeltaBase == 0 means
	// the freeze was a full rebuild; nonzero names the version the
	// incremental freeze derived from. Registry fields are zero when
	// no registry is attached.
	LatticeVersion    uint64 `json:"lattice_version"`
	LatticeDeltaBase  uint64 `json:"lattice_delta_base"`
	RegistryVersion   uint64 `json:"registry_version"`
	RegistryDeltaBase uint64 `json:"registry_delta_base"`
	// IncrementalFreeze reports whether the registry freeze for this
	// epoch was derived incrementally from a prior frozen snapshot.
	IncrementalFreeze bool `json:"incremental_freeze"`

	// Compile provenance: the build kind of the epoch's compiled read
	// side ("full", "incremental", "reused", or "none" when compiled
	// epochs are off or no registry is attached) and its cost.
	Compile   string `json:"compile"`
	CompileNS int64  `json:"compile_ns"`

	// PublishNS is the end-to-end latency of the flush that published
	// this epoch (freeze + compile + pointer store), as observed by
	// the flushing writer.
	PublishNS int64 `json:"publish_ns"`

	// Replication provenance: Kind is empty for a local publication,
	// "replica" for an epoch applied from a primary's replication
	// stream, and "replica-stale" for a fail-closed publication a
	// replica installed after missing its staleness deadline.
	// PrimaryVersion is the primary epoch version a replication apply
	// mirrors (zero for local publications) — the field that ties the
	// replica's local version clock to the primary's.
	Kind           string `json:"kind,omitempty"`
	PrimaryVersion uint64 `json:"primary_version,omitempty"`
}

// epochJournal is a lock-free ring of transition records. Appends are
// one atomic add plus one pointer store; snapshots read pointers
// without stopping writers. The zero value is ready to use, so the
// Server embeds it without construction. A record observed mid-append
// is either the old or the new pointer — never a torn record — because
// the slot holds a pointer to an immutable struct.
type epochJournal struct {
	slots [journalCap]atomic.Pointer[TransitionRecord]
	pos   atomic.Uint64 // total appends since boot
}

func (j *epochJournal) append(r *TransitionRecord) {
	i := j.pos.Add(1) - 1
	j.slots[i%journalCap].Store(r)
}

// snapshot returns up to n records, newest first. n <= 0 means all
// retained records. Concurrent appends may overwrite the oldest slots
// while we read; a slot whose pointer moved forward simply yields the
// newer record, so the result is always a set of real transitions.
func (j *epochJournal) snapshot(n int) []TransitionRecord {
	total := j.pos.Load()
	avail := total
	if avail > journalCap {
		avail = journalCap
	}
	if n <= 0 || uint64(n) > avail {
		n = int(avail)
	}
	out := make([]TransitionRecord, 0, n)
	for k := 0; k < n; k++ {
		// Walk backwards from the most recent append.
		idx := (total - 1 - uint64(k)) % journalCap
		if r := j.slots[idx].Load(); r != nil {
			out = append(out, *r)
		}
	}
	return out
}

// recorded returns the number of records currently retained.
func (j *epochJournal) recorded() int {
	total := j.pos.Load()
	if total > journalCap {
		return journalCap
	}
	return int(total)
}

// Journal returns up to n epoch-transition records, newest first
// (n <= 0 means all retained records). The snapshot is lock-free and
// never blocks writers; see TransitionRecord for field semantics.
func (s *Server) Journal(n int) []TransitionRecord {
	return s.journal.snapshot(n)
}

// JournalLen returns the number of transition records currently
// retained in the journal ring (at most journalCap).
func (s *Server) JournalLen() int { return s.journal.recorded() }

// DivergenceStats returns the shadow divergence monitor's counters:
// how many traced checks were routed through both the compiled fast
// path and the authoritative walk, and how many of those disagreed.
// A nonzero divergence count is a correctness alarm — the compiled
// read side allowed something the walk denied (the walk's verdict was
// enforced; the compiled answer was only compared).
func (s *Server) DivergenceStats() (shadowChecks, divergences uint64) {
	return s.shadowChecks.Load(), s.divergences.Load()
}

// label renders a compile build kind for journal records and
// telemetry.
func (k compileKind) label() string {
	switch k {
	case compileFull:
		return "full"
	case compileIncremental:
		return "incremental"
	case compileReused:
		return "reused"
	}
	return "none"
}

// shardKinds returns the human-readable shard kinds staged into a
// batch, from its shard bitmask.
func shardKinds(shards uint8) []string {
	var out []string
	if shards&shardNames != 0 {
		out = append(out, "names")
	}
	if shards&shardLattice != 0 {
		out = append(out, "lattice")
	}
	if shards&shardRegistry != 0 {
		out = append(out, "registry")
	}
	if shards&shardStack != 0 {
		out = append(out, "stack")
	}
	return out
}
