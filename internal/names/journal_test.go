package names

import (
	"fmt"
	"sync"
	"testing"

	"secext/internal/acl"
)

// TestJournalRecordsTransition: every publish appends one record whose
// fields describe the transition — version, shards, batch size, freeze
// and compile provenance, publish latency.
func TestJournalRecordsTransition(t *testing.T) {
	cf := newCompiledFixture(t)
	before := cf.srv.JournalLen()

	if err := cf.srv.SetACLUnchecked("/svc/fs/read",
		acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List|acl.Read))); err != nil {
		t.Fatal(err)
	}
	if cf.srv.JournalLen() != before+1 {
		t.Fatalf("JournalLen = %d, want %d", cf.srv.JournalLen(), before+1)
	}

	recs := cf.srv.Journal(1)
	if len(recs) != 1 {
		t.Fatalf("Journal(1) returned %d records", len(recs))
	}
	r := recs[0]
	if r.Version != cf.srv.Version() {
		t.Errorf("record version %d, current epoch %d", r.Version, cf.srv.Version())
	}
	if r.Time.IsZero() {
		t.Error("record has no publish time")
	}
	if len(r.Shards) != 1 || r.Shards[0] != "names" {
		t.Errorf("shards = %v, want [names]", r.Shards)
	}
	if r.BatchSize < 1 {
		t.Errorf("batch size = %d, want >= 1", r.BatchSize)
	}
	ep := cf.srv.Current()
	if r.RegistryVersion != ep.Registry().Version() {
		t.Errorf("registry version %d, epoch carries %d", r.RegistryVersion, ep.Registry().Version())
	}
	switch r.Compile {
	case "full", "incremental", "reused":
	default:
		t.Errorf("compile kind %q on a registry-attached server", r.Compile)
	}
	if r.PublishNS <= 0 {
		t.Errorf("publish latency %dns, want positive", r.PublishNS)
	}
}

// TestJournalShardAndFreezeKinds: registry transitions are journaled
// with the registry shard named and the incremental-freeze bit
// reflecting the frozen snapshot's delta base.
func TestJournalShardAndFreezeKinds(t *testing.T) {
	cf := newCompiledFixture(t)
	if err := cf.reg.AddMember("eng", "bob"); err != nil {
		t.Fatal(err)
	}
	r := cf.srv.Journal(1)[0]
	found := false
	for _, s := range r.Shards {
		if s == "registry" {
			found = true
		}
	}
	if !found {
		t.Errorf("registry transition journaled with shards %v", r.Shards)
	}
	wantIncr := r.RegistryDeltaBase != 0
	if r.IncrementalFreeze != wantIncr {
		t.Errorf("incremental_freeze = %v with delta base %d", r.IncrementalFreeze, r.RegistryDeltaBase)
	}
}

// TestJournalNoRegistry: a server without a registry journals
// compile="none" and zero registry provenance.
func TestJournalNoRegistry(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	r := f.srv.Journal(1)[0]
	if r.Compile != "none" {
		t.Errorf("compile = %q without a registry, want none", r.Compile)
	}
	if r.RegistryVersion != 0 || r.IncrementalFreeze {
		t.Errorf("registry provenance (%d, %v) on a registry-less server",
			r.RegistryVersion, r.IncrementalFreeze)
	}
}

// TestJournalRingWraparound: more publishes than journalCap retain
// exactly the newest journalCap records, newest first, versions
// strictly descending.
func TestJournalRingWraparound(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	open := acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List))
	wide := acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List|acl.Read))
	for i := 0; i < journalCap+40; i++ {
		a := open
		if i%2 == 0 {
			a = wide
		}
		if err := f.srv.SetACLUnchecked("/svc/fs/read", a); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.srv.JournalLen(); got != journalCap {
		t.Fatalf("JournalLen after wraparound = %d, want %d", got, journalCap)
	}
	recs := f.srv.Journal(0)
	if len(recs) != journalCap {
		t.Fatalf("Journal(0) returned %d records, want %d", len(recs), journalCap)
	}
	if recs[0].Version != f.srv.Version() {
		t.Errorf("newest record v%d, current epoch v%d", recs[0].Version, f.srv.Version())
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Version >= recs[i-1].Version {
			t.Fatalf("records not newest-first at %d: v%d then v%d",
				i, recs[i-1].Version, recs[i].Version)
		}
	}
	// A bounded request returns exactly n.
	if got := len(f.srv.Journal(7)); got != 7 {
		t.Errorf("Journal(7) returned %d records", got)
	}
}

// TestJournalConcurrentSnapshot: snapshots run against live writers
// without locks; under -race this proves the ring is data-race free
// and every observed record is a real, untorn transition.
func TestJournalConcurrentSnapshot(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := fmt.Sprintf("/svc/w%d-%d", w, i)
				if _, err := f.srv.BindUnchecked("/svc", BindSpec{
					Name: fmt.Sprintf("w%d-%d", w, i), Kind: KindDomain, ACL: a, Class: f.bot,
				}); err != nil {
					t.Errorf("bind %s: %v", path, err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		for _, r := range f.srv.Journal(0) {
			if r.Version == 0 || r.Time.IsZero() || len(r.Shards) == 0 {
				t.Fatalf("torn record observed: %+v", r)
			}
		}
	}
	close(stop)
	wg.Wait()
}
