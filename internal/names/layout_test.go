package names

import (
	"fmt"
	"testing"
	"unsafe"

	"secext/internal/acl"
)

// sameStringData reports whether two strings share a backing pointer.
func sameStringData(a, b string) bool {
	if len(a) == 0 || len(b) == 0 {
		return a == b
	}
	return unsafe.StringData(a) == unsafe.StringData(b)
}

func kidsOf(names ...string) []childRef {
	out := make([]childRef, len(names))
	for i, n := range names {
		out[i] = childRef{node: &Node{path: "/" + n}}
	}
	return out
}

func assertSorted(t *testing.T, kids []childRef) {
	t.Helper()
	for i := 1; i < len(kids); i++ {
		if kids[i-1].name() >= kids[i].name() {
			t.Fatalf("children not strictly sorted: %q >= %q", kids[i-1].name(), kids[i].name())
		}
	}
}

func TestFindChild(t *testing.T) {
	kids := kidsOf("b", "d", "f")
	for _, tc := range []struct {
		name string
		i    int
		ok   bool
	}{
		{"a", 0, false}, {"b", 0, true}, {"c", 1, false},
		{"d", 1, true}, {"e", 2, false}, {"f", 2, true}, {"g", 3, false},
	} {
		i, ok := findChild(kids, tc.name)
		if i != tc.i || ok != tc.ok {
			t.Errorf("findChild(%q) = (%d, %v), want (%d, %v)", tc.name, i, ok, tc.i, tc.ok)
		}
	}
	if i, ok := findChild(nil, "x"); i != 0 || ok {
		t.Errorf("findChild(nil) = (%d, %v)", i, ok)
	}
}

func TestWithChild(t *testing.T) {
	kids := kidsOf("b", "d")
	n := &Node{path: "/c"}

	ins := withChild(kids, "c", n)
	assertSorted(t, ins)
	if len(ins) != 3 || cap(ins) != 3 || ins[1].node != n {
		t.Fatalf("insert: len=%d cap=%d mid=%v", len(ins), cap(ins), ins[1].node)
	}
	if len(kids) != 2 || kids[0].name() != "b" || kids[1].name() != "d" {
		t.Fatal("insert mutated input")
	}

	repl := withChild(kids, "d", n)
	assertSorted(t, repl)
	if len(repl) != 2 || cap(repl) != 2 || repl[1].node != n {
		t.Fatalf("replace: len=%d cap=%d", len(repl), cap(repl))
	}
	if kids[1].node == n {
		t.Fatal("replace mutated input")
	}

	first := withChild(nil, "a", n)
	if len(first) != 1 || cap(first) != 1 || first[0].node != n {
		t.Fatalf("first: %v", first)
	}
}

func TestWithoutChild(t *testing.T) {
	kids := kidsOf("b", "d", "f")
	out := withoutChild(kids, "d")
	assertSorted(t, out)
	if len(out) != 2 || cap(out) != 2 || out[0].name() != "b" || out[1].name() != "f" {
		t.Fatalf("remove: %v", out)
	}
	if len(kids) != 3 {
		t.Fatal("remove mutated input")
	}
	if got := withoutChild(kids, "absent"); &got[0] != &kids[0] {
		t.Fatal("absent name should return the input slice unchanged")
	}
	if got := withoutChild(kidsOf("only"), "only"); got != nil {
		t.Fatalf("last removal should return nil, got %v", got)
	}
}

func TestAppendChild(t *testing.T) {
	n := &Node{}
	// Sorted appends (the wire/bulk pre-order case).
	for _, name := range []string{"a", "c", "e"} {
		appendChild(n, &Node{path: "/" + name})
	}
	assertSorted(t, n.children)
	// Out-of-order insert falls back to a shift.
	appendChild(n, &Node{path: "/b"})
	assertSorted(t, n.children)
	if len(n.children) != 4 || n.children[1].name() != "b" {
		t.Fatalf("after shift: %v", n.children)
	}
	// Same-name append replaces.
	repl := &Node{path: "/c"}
	appendChild(n, repl)
	if len(n.children) != 4 || n.child("c") != repl {
		t.Fatal("duplicate append should replace in place")
	}
}

func TestNodeChild(t *testing.T) {
	n := &Node{children: kidsOf("x", "y")}
	if n.child("x") == nil || n.child("z") != nil {
		t.Fatal("child lookup wrong")
	}
	if (&Node{}).child("x") != nil {
		t.Fatal("leaf child lookup should be nil")
	}
}

func TestInterner(t *testing.T) {
	var in interner
	a := in.intern("/svc/fs")
	b := in.intern("/svc/" + "fs") // distinct allocation, same bytes
	if a != b || !sameStringData(a, b) {
		t.Fatal("intern did not canonicalize")
	}
	st := in.stats()
	if st.Strings != 1 || st.Bytes != int64(len("/svc/fs")) || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}

	var nilIn *interner
	if nilIn.intern("pass") != "pass" {
		t.Fatal("nil interner must pass through")
	}
	if (nilIn.stats() != InternStats{}) {
		t.Fatal("nil interner stats must be zero")
	}
}

func TestInternerReset(t *testing.T) {
	old := internCap
	internCap = 4
	defer func() { internCap = old }()
	var in interner
	for i := 0; i < 10; i++ {
		in.intern(fmt.Sprintf("/k%d", i))
	}
	st := in.stats()
	if st.Resets == 0 {
		t.Fatalf("expected resets after overflow, stats = %+v", st)
	}
	if st.Strings > 4+1 {
		t.Fatalf("table exceeded cap: %+v", st)
	}
}

func TestNameOf(t *testing.T) {
	for path, want := range map[string]string{
		"/":         "",
		"/a":        "a",
		"/a/b/leaf": "leaf",
	} {
		if got := nameOf(path); got != want {
			t.Errorf("nameOf(%q) = %q, want %q", path, got, want)
		}
	}
	p := "/svc/fs/read"
	if !sameStringData(nameOf(p), p[len(p)-len("read"):]) {
		t.Fatal("nameOf must alias the path's backing array")
	}
}

func TestACLCanon(t *testing.T) {
	var c aclCanon
	mine := acl.New(acl.Allow("alice", acl.Read))
	v1 := c.canon(mine)
	v2 := c.canon(acl.New(acl.Allow("alice", acl.Read)))
	if v1 != v2 {
		t.Fatal("equal ACLs should canonicalize to one pointer")
	}
	if v1 == mine {
		t.Fatal("canonical value must be a private clone")
	}
	// Caller keeps mutating its own copy without corrupting the canon.
	mine.Add(acl.Allow("bob", acl.Write))
	if v := c.canon(acl.New(acl.Allow("alice", acl.Read))); v != v1 || v.Len() != 1 {
		t.Fatal("canonical value changed under caller mutation")
	}
	if c.canon(nil).Len() != 0 {
		t.Fatal("nil ACL should canonicalize to empty")
	}
	st := c.stats()
	if st.Distinct != 2 || st.Dedups != 2 {
		t.Fatalf("stats = %+v", st)
	}

	var nilC *aclCanon
	got := nilC.canon(mine)
	if got == mine || got.String() != mine.String() {
		t.Fatal("nil canon must clone")
	}
	if (nilC.stats() != ACLCanonStats{}) {
		t.Fatal("nil canon stats must be zero")
	}
}

func TestACLCanonReset(t *testing.T) {
	old := aclCanonCap
	aclCanonCap = 2
	defer func() { aclCanonCap = old }()
	var c aclCanon
	for i := 0; i < 6; i++ {
		c.canon(acl.New(acl.Allow(fmt.Sprintf("p%d", i), acl.Read)))
	}
	if st := c.stats(); st.Resets == 0 {
		t.Fatalf("expected resets, stats = %+v", st)
	}
}

// TestStructureSharing is the heart of the layout claim: a mutation's
// successor epoch shares every untouched subtree AND every untouched
// child-slice backing array with its parent epoch.
func TestStructureSharing(t *testing.T) {
	f := newFixture(t)
	mk := func(parent, name string, kind Kind) {
		t.Helper()
		if _, err := f.srv.BindUnchecked(parent, BindSpec{Name: name, Kind: kind, ACL: acl.New(acl.AllowEveryone(acl.AllModes)), Class: f.bot}); err != nil {
			t.Fatal(err)
		}
	}
	mk("/", "svc", KindDomain)
	mk("/svc", "fs", KindInterface)
	mk("/svc/fs", "read", KindMethod)
	mk("/", "other", KindDomain)
	mk("/other", "leaf", KindMethod)

	before := f.srv.Current()
	mk("/svc/fs", "write", KindMethod)
	after := f.srv.Current()

	// The untouched sibling subtree is pointer-shared.
	ob, _ := before.Lookup("/other")
	oa, _ := after.Lookup("/other")
	if ob != oa {
		t.Fatal("untouched subtree not shared between epochs")
	}
	// The untouched subtree's children SLICE is shared too (same backing
	// array), and the old tree still lacks the new binding.
	rb, _ := before.Lookup("/svc/fs")
	ra, _ := after.Lookup("/svc/fs")
	if rb == ra {
		t.Fatal("edited spine node unexpectedly shared")
	}
	if rb.child("write") != nil {
		t.Fatal("old epoch saw the new binding")
	}
	if ra.child("write") == nil {
		t.Fatal("new epoch missing the new binding")
	}
	if got := after.Footprint().OwnedNodes; got != 4 {
		// new node + cloned spine: /, /svc, /svc/fs.
		t.Fatalf("OwnedNodes = %d, want 4", got)
	}
}

func TestEpochFootprint(t *testing.T) {
	f := newFixture(t)
	a := acl.New(acl.AllowEveryone(acl.AllModes))
	for i := 0; i < 4; i++ {
		if _, err := f.srv.BindUnchecked("/", BindSpec{Name: fmt.Sprintf("d%d", i), Kind: KindDomain, ACL: a, Class: f.bot}); err != nil {
			t.Fatal(err)
		}
		if _, err := f.srv.BindUnchecked(fmt.Sprintf("/d%d", i), BindSpec{Name: "m", Kind: KindMethod, ACL: a, Class: f.bot}); err != nil {
			t.Fatal(err)
		}
	}
	ef := f.srv.EpochFootprint()
	fp := ef.Footprint
	if fp.Nodes != f.srv.Size() || fp.Nodes != 9 {
		t.Fatalf("Nodes = %d, Size = %d", fp.Nodes, f.srv.Size())
	}
	if fp.Leaves != 4 || fp.Directories != 5 {
		t.Fatalf("Leaves/Directories = %d/%d", fp.Leaves, fp.Directories)
	}
	if fp.OwnedNodes+fp.SharedNodes != fp.Nodes {
		t.Fatalf("owned %d + shared %d != nodes %d", fp.OwnedNodes, fp.SharedNodes, fp.Nodes)
	}
	if fp.ChildSlots != 8 {
		t.Fatalf("ChildSlots = %d", fp.ChildSlots)
	}
	// The 8 bound nodes share one canonical ACL; the root has its own.
	if fp.DistinctACLs != 2 || fp.ACLRefs != 9 {
		t.Fatalf("ACL dedupe: refs %d distinct %d", fp.ACLRefs, fp.DistinctACLs)
	}
	if fp.ACLDedupRatio < 4 {
		t.Fatalf("ACLDedupRatio = %v", fp.ACLDedupRatio)
	}
	// Every bound node's name is carved out of its interned path.
	if fp.NameBytes != 0 {
		t.Fatalf("NameBytes = %d, want 0 (names alias interned paths)", fp.NameBytes)
	}
	if fp.TotalBytes <= 0 || fp.BytesPerNode <= 0 {
		t.Fatalf("byte totals: %+v", fp)
	}
	if fp.Version != f.srv.Current().Version() {
		t.Fatalf("Version = %d", fp.Version)
	}
	// Cached: a second call returns identical numbers.
	if again := f.srv.EpochFootprint().Footprint; again != fp {
		t.Fatalf("footprint not stable: %+v vs %+v", again, fp)
	}
	if ef.Interner.Misses == 0 || ef.Interner.Strings == 0 {
		t.Fatalf("interner stats empty: %+v", ef.Interner)
	}
	if ef.ACLCanon.Dedups == 0 {
		t.Fatalf("acl canon stats: %+v", ef.ACLCanon)
	}
}

func TestBindSubtreeUnchecked(t *testing.T) {
	f := newFixture(t)
	a := acl.New(acl.AllowEveryone(acl.AllModes))
	v0 := f.srv.Current().Version()
	specs := []SubtreeSpec{
		{Path: "svc", Kind: KindDomain, ACL: a, Class: f.bot},
		{Path: "svc/fs", Kind: KindInterface, ACL: a, Class: f.bot},
		{Path: "svc/fs/read", Kind: KindMethod, ACL: a, Class: f.bot},
		{Path: "svc/fs/write", Kind: KindMethod, ACL: a, Class: f.bot},
		{Path: "aux", Kind: KindDomain, ACL: a, Class: f.bot},
	}
	n, v, err := f.srv.BindSubtreeUnchecked("/", specs)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(specs) {
		t.Fatalf("created %d, want %d", n, len(specs))
	}
	if v != v0+1 {
		t.Fatalf("bulk bind took %d publications, want 1", v-v0)
	}
	for _, p := range []string{"/svc", "/svc/fs", "/svc/fs/read", "/svc/fs/write", "/aux"} {
		if _, err := f.srv.ResolveUnchecked(p); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
	}
	if got := f.srv.Current().Root().child("svc"); got == nil {
		t.Fatal("subtree not attached")
	}
	checkTree(t, f, 0, 0)

	// All-or-nothing: a failing spec stages nothing.
	for _, bad := range [][]SubtreeSpec{
		{{Path: "svc", Kind: KindDomain, ACL: a, Class: f.bot}},                                                      // exists
		{{Path: "missing/child", Kind: KindMethod, ACL: a, Class: f.bot}},                                            // orphan
		{{Path: "x", Kind: KindDomain, ACL: a}},                                                                      // zero class
		{{Path: "", Kind: KindDomain, ACL: a, Class: f.bot}},                                                         // empty path
		{{Path: "svc/fs/read/sub", Kind: KindMethod, ACL: a, Class: f.bot}},                                          // under leaf (existing)
		{{Path: "l", Kind: KindMethod, ACL: a, Class: f.bot}, {Path: "l/c", Kind: KindMethod, ACL: a, Class: f.bot}}, // under fresh leaf
	} {
		vBefore := f.srv.Current().Version()
		if _, _, err := f.srv.BindSubtreeUnchecked("/", bad); err == nil {
			t.Fatalf("specs %+v: expected error", bad)
		}
		if f.srv.Current().Version() != vBefore {
			t.Fatalf("failed bulk bind published an epoch")
		}
	}
	if _, err := f.srv.ResolveUnchecked("/l"); err == nil {
		t.Fatal("partial subtree leaked into the tree")
	}
	// Empty specs: no-op, no publication.
	vBefore := f.srv.Current().Version()
	if n, _, err := f.srv.BindSubtreeUnchecked("/", nil); err != nil || n != 0 {
		t.Fatalf("empty specs: n=%d err=%v", n, err)
	}
	if f.srv.Current().Version() != vBefore {
		t.Fatal("empty bulk bind published an epoch")
	}
	// Leaf parent rejected.
	if _, _, err := f.srv.BindSubtreeUnchecked("/svc/fs/read", specs[:1]); err == nil {
		t.Fatal("bulk bind under a leaf should fail")
	}
}

// TestIterationAllocatesNothing pins the satellite claim behind the
// sorted-slice fold: looking a child up, deriving entry names, and
// walking a directory's children allocate zero bytes. The PR-4 map
// layout paid a sorted []string per directory listing; the slice
// layout ranges in place.
func TestIterationAllocatesNothing(t *testing.T) {
	kids := kidsOf("a", "b", "c", "d", "e", "f", "g", "h")
	n := &Node{path: "/dir", kind: KindDirectory, children: kids}
	var sink int
	if avg := testing.AllocsPerRun(100, func() {
		for _, cr := range n.children {
			sink += len(cr.name())
		}
		if c := n.child("e"); c != nil {
			sink += len(c.Name())
		}
		if _, ok := findChild(n.children, "zz"); ok {
			sink++
		}
	}); avg != 0 {
		t.Errorf("child iteration allocates %.1f objects per run, want 0", avg)
	}
	_ = sink
}

// BenchmarkChildIteration is the benchmark form of the zero-alloc
// assertion (run with -benchmem: expect 0 B/op, 0 allocs/op), at a
// directory width matching the load harness's fan-out.
func BenchmarkChildIteration(b *testing.B) {
	names := make([]string, 256)
	for i := range names {
		names[i] = fmt.Sprintf("f%04d", i)
	}
	n := &Node{path: "/dir", kind: KindDirectory, children: kidsOf(names...)}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		for _, cr := range n.children {
			sink += len(cr.name())
		}
	}
	_ = sink
}

// BenchmarkChildLookup prices the binary-searched child lookup the
// resolve walk leans on, at the load harness's 256-wide directories.
func BenchmarkChildLookup(b *testing.B) {
	names := make([]string, 256)
	for i := range names {
		names[i] = fmt.Sprintf("f%04d", i)
	}
	n := &Node{path: "/dir", kind: KindDirectory, children: kidsOf(names...)}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		if c := n.child(names[i&255]); c != nil {
			sink++
		}
	}
	_ = sink
}
