package names

import (
	"errors"
	"testing"

	"secext/internal/acl"
)

func TestMultilevelBind(t *testing.T) {
	f := newFixture(t)
	shared := acl.New(acl.AllowEveryone(acl.List | acl.Write))
	if _, err := f.srv.BindUnchecked("/", BindSpec{
		Name: "tmp", Kind: KindDirectory, ACL: shared, Class: f.bot, Multilevel: true,
	}); err != nil {
		t.Fatal(err)
	}
	n, _ := f.srv.ResolveUnchecked("/tmp")
	if !n.Multilevel() {
		t.Fatal("node must be multilevel")
	}

	// A subject above the directory's class can bind at its own class.
	bob := subj("bob")
	if _, err := f.srv.Bind(bob, f.org, "/tmp", BindSpec{
		Name: "f1", Kind: KindFile, Class: f.org,
		ACL: acl.New(acl.Allow("bob", acl.Read|acl.Delete)),
	}); err != nil {
		t.Fatalf("bind above container class: %v", err)
	}
	// ... but still not below its own class (no write-down on the new
	// node's label).
	if _, err := f.srv.Bind(bob, f.org, "/tmp", BindSpec{
		Name: "f2", Kind: KindFile, Class: f.bot,
	}); !errors.Is(err, ErrDenied) {
		t.Fatalf("write-down label in multilevel dir: got %v", err)
	}
	// DAC still applies: a subject without write on the directory fails.
	if err := f.srv.SetACLUnchecked("/tmp", acl.New(acl.AllowEveryone(acl.List))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.Bind(bob, f.org, "/tmp", BindSpec{
		Name: "f3", Kind: KindFile, Class: f.org,
	}); !errors.Is(err, ErrDenied) {
		t.Fatalf("multilevel without DAC write: got %v", err)
	}

	// The name is visible at the container's class — the accepted
	// covert channel: a bottom-class subject lists f1 even though it
	// cannot read it.
	got, err := f.srv.List(subj("low"), f.bot, "/tmp")
	if err != nil || len(got) != 1 || got[0] != "f1" {
		t.Errorf("List = %v, %v", got, err)
	}
	if _, err := f.srv.CheckAccess(subj("low"), f.bot, "/tmp/f1", acl.Read); !errors.Is(err, ErrDenied) {
		t.Errorf("low read of high entry: got %v", err)
	}
}

func TestMultilevelUnbind(t *testing.T) {
	f := newFixture(t)
	shared := acl.New(acl.AllowEveryone(acl.List | acl.Write))
	if _, err := f.srv.BindUnchecked("/", BindSpec{
		Name: "tmp", Kind: KindDirectory, ACL: shared, Class: f.bot, Multilevel: true,
	}); err != nil {
		t.Fatal(err)
	}
	bob := subj("bob")
	if _, err := f.srv.Bind(bob, f.org, "/tmp", BindSpec{
		Name: "f", Kind: KindFile, Class: f.org,
		ACL: acl.New(acl.Allow("bob", acl.Delete)),
	}); err != nil {
		t.Fatal(err)
	}
	// bob can remove his own entry although the container is below him.
	if err := f.srv.Unbind(bob, f.org, "/tmp/f"); err != nil {
		t.Fatalf("multilevel unbind: %v", err)
	}
	// Without delete on the entry it fails regardless.
	if _, err := f.srv.Bind(bob, f.org, "/tmp", BindSpec{
		Name: "g", Kind: KindFile, Class: f.org,
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Unbind(bob, f.org, "/tmp/g"); !errors.Is(err, ErrDenied) {
		t.Fatalf("unbind without delete: got %v", err)
	}
	// DAC write on the container still required for unbind.
	if _, err := f.srv.Bind(bob, f.org, "/tmp", BindSpec{
		Name: "h", Kind: KindFile, Class: f.org,
		ACL: acl.New(acl.Allow("bob", acl.Delete)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.SetACLUnchecked("/tmp", acl.New(acl.AllowEveryone(acl.List))); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Unbind(bob, f.org, "/tmp/h"); !errors.Is(err, ErrDenied) {
		t.Fatalf("unbind without DAC write on container: got %v", err)
	}
}

func TestMultilevelLeafIgnored(t *testing.T) {
	f := newFixture(t)
	if _, err := f.srv.BindUnchecked("/", BindSpec{
		Name: "leaf", Kind: KindFile, Class: f.bot, Multilevel: true,
	}); err != nil {
		t.Fatal(err)
	}
	n, _ := f.srv.ResolveUnchecked("/leaf")
	if n.Multilevel() {
		t.Error("leaves cannot be multilevel containers")
	}
}
