// Package names implements the single, universal, hierarchical name
// space of "Security for Extensible Systems" (Grimm & Bershad, HotOS
// 1997), §2.3, and the central name server that enforces protection on
// it.
//
// The leaves of the name space are the individual functions of system
// services (methods, procedures) and data objects (files); the non-leaf
// nodes are objects, interfaces, domains/packages, and directories.
// Every node carries an access control list and a security class, so the
// same mechanism protects services, extensions, and files — the paper's
// "economy of mechanism".
//
// Access control on the hierarchy follows the paper's file-system
// analogy: the list mode on a non-leaf node determines which names under
// it are visible; the write mode determines whether new entries may be
// added; execute and extend on leaves gate calling and specializing
// services.
package names

import (
	"errors"
	"fmt"
	"strings"

	"secext/internal/acl"
	"secext/internal/lattice"
)

// Kind classifies a node in the universal name space (§2.3 enumerates
// the levels for Java and SPIN; we carry them all).
type Kind uint8

const (
	// KindRoot is the unique root of the name space.
	KindRoot Kind = iota
	// KindDomain groups interfaces, like SPIN domains or Java packages.
	KindDomain
	// KindInterface is a collection of methods/procedures.
	KindInterface
	// KindObject is an instance exposing methods.
	KindObject
	// KindMethod is a leaf: one callable, extendable service entry point.
	KindMethod
	// KindDirectory is a file-system directory mounted into the space.
	KindDirectory
	// KindFile is a leaf data object.
	KindFile

	numKinds = 7
)

var kindNames = [numKinds]string{
	"root", "domain", "interface", "object", "method", "directory", "file",
}

func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Leaf reports whether nodes of this kind may not have children.
func (k Kind) Leaf() bool { return k == KindMethod || k == KindFile }

// Errors returned by name-space operations.
var (
	ErrNotFound = errors.New("names: no such name")
	ErrExists   = errors.New("names: name already bound")
	ErrNotLeaf  = errors.New("names: operation requires a leaf node")
	ErrLeaf     = errors.New("names: leaf nodes cannot have children")
	ErrBadPath  = errors.New("names: malformed path")
	ErrDenied   = errors.New("names: access denied")
	ErrRoot     = errors.New("names: operation not permitted on root")
)

// DeniedError carries the detail of a failed access check. It unwraps to
// ErrDenied. The Why field distinguishes discretionary from mandatory
// failures, which the audit log records.
type DeniedError struct {
	Path string // object the check ran against
	Op   string // requested operation / modes
	Why  string // "acl" or "mac", plus detail
}

func (e *DeniedError) Error() string {
	return fmt.Sprintf("names: access denied: %s on %s (%s)", e.Op, e.Path, e.Why)
}

func (e *DeniedError) Unwrap() error { return ErrDenied }

// Node is one entry in the name space. Nodes are immutable once
// published: a Server mutation never edits a live node, it clones the
// spine from the root to the change and publishes a new snapshot (see
// Snapshot). A *Node obtained from any server operation is therefore
// safe to read from any goroutine forever — it describes the node as
// it was in the snapshot the operation ran against. Nodes carry their
// absolute path instead of a parent pointer, so a snapshot is a pure
// acyclic value.
//
// Children are a name-sorted []childRef (see childref.go): successor
// epochs share the slice wholesale with their parent, a spine edit
// clones exactly one level with one allocation, and iteration is
// deterministic without sorting. The struct is deliberately lean: the
// path string is interned by the owning server and the component name
// is derived from it (Name) rather than stored, and the security class
// is a pointer into the server's class dedup table rather than an
// inline value, so a million-node tree pays one pointer per node for
// what are in practice a handful of distinct classes.
type Node struct {
	path       string // absolute canonical path; "/" for the root
	kind       Kind
	multilevel bool
	children   []childRef // sorted by name; empty/nil for leaves
	acl        *acl.ACL
	class      *lattice.Class // canonical; shared across nodes
	payload    any
}

// Multilevel reports whether the node is a multilevel container: a
// non-leaf node that accepts bindings from subjects at any class the
// container's class is dominated by, the classic MLS "upgraded
// directory" mechanism (e.g. an MLS /tmp). Without it, a subject above
// the container's class could never create anything — binding a name is
// MAC-wise a write to the container, and writing down is forbidden. The
// trade-off is explicit: the *names* bound in a multilevel container are
// visible at the container's class even when the nodes behind them are
// not readable, a covert channel conventional MLS systems accept.
func (n *Node) Multilevel() bool { return n.multilevel }

// Name returns the node's final path component ("" for the root). The
// name is a substring of the stored path, not a second field: deriving
// it costs one byte scan and no allocation, and saves a string header
// per node at scale.
func (n *Node) Name() string { return nameOf(n.path) }

// Kind returns the node's kind.
func (n *Node) Kind() Kind { return n.kind }

// Path returns the absolute path the node was published under ("/"
// for the root). A node moved by Rename keeps its old path in old
// snapshots; the new snapshot contains a copy carrying the new path.
func (n *Node) Path() string { return n.path }

// ACL returns a copy of the node's access control list. The copy is
// detached: editing it does not change the node's protection state
// (only Server.SetACL does).
func (n *Node) ACL() *acl.ACL { return n.acl.Clone() }

// Class returns the node's security class.
func (n *Node) Class() lattice.Class { return *n.class }

// Payload returns the value bound at the node (a service implementation,
// file contents handle, etc.).
func (n *Node) Payload() any { return n.payload }

// childNames returns the names of the node's children. The children
// slice is already name-sorted, so this is one copy with no sort — and
// callers that only iterate (Walk, the wire codec) range the slice
// directly and allocate nothing.
func (n *Node) childNames() []string {
	out := make([]string, len(n.children))
	for i, cr := range n.children {
		out[i] = cr.name()
	}
	return out
}

// ValidPath checks that path is a well-formed absolute path: it starts
// with '/', and every component is non-empty and neither "." nor "..".
// The scan allocates nothing (errors excepted), so callers on the
// mediation hot path can validate without paying SplitPath's slice.
func ValidPath(path string) error {
	if path == "" || path[0] != '/' {
		return fmt.Errorf("%w: %q (must be absolute)", ErrBadPath, path)
	}
	if path == "/" {
		return nil
	}
	rest := path[1:]
	for {
		part := rest
		i := strings.IndexByte(rest, '/')
		if i >= 0 {
			part = rest[:i]
		}
		if part == "" || part == "." || part == ".." {
			return fmt.Errorf("%w: %q", ErrBadPath, path)
		}
		if i < 0 {
			return nil
		}
		rest = rest[i+1:]
	}
}

// SplitPath validates and splits an absolute path into its components.
// The root path "/" yields an empty slice. Components must be non-empty
// and must not be "." or "..". The validity scan runs first, so
// malformed paths and "/" are rejected or answered without allocating;
// only a clean multi-component path pays for the component slice.
func SplitPath(path string) ([]string, error) {
	if err := ValidPath(path); err != nil {
		return nil, err
	}
	if path == "/" {
		return nil, nil
	}
	return strings.Split(path[1:], "/"), nil
}

// ValidComponent reports whether name is usable as a single path
// component.
func ValidComponent(name string) error {
	if name == "" || name == "." || name == ".." || strings.ContainsRune(name, '/') {
		return fmt.Errorf("%w: component %q", ErrBadPath, name)
	}
	return nil
}

// Join joins path components under an absolute prefix.
func Join(prefix string, components ...string) string {
	out := strings.TrimSuffix(prefix, "/")
	for _, c := range components {
		out += "/" + c
	}
	if out == "" {
		return "/"
	}
	return out
}
