package names

// Property test for the monitor refactor: CheckAccess routed through
// the guard pipeline must agree with an independent oracle that
// reimplements the pre-refactor decision procedure (the inlined
// inlined DAC check plus MAC flow-rule logic) over randomized protection states.
// Any divergence is a semantics change the port was not allowed to make.

import (
	"fmt"
	"math/rand"
	"testing"

	"secext/internal/acl"
	"secext/internal/lattice"
)

// oracleState is the test's shadow copy of the protection state.
type oracleState struct {
	lat *lattice.Lattice
	// acl and class per existing path; parent links are implied by the
	// path structure.
	acls    map[string]*acl.ACL
	classes map[string]lattice.Class
}

// oracleCheck is the pre-refactor decision procedure, written directly
// from the original inlined rules: List (DAC) plus read-flow (MAC) on
// every node strictly above the target, then the requested modes (DAC)
// plus the grouped flow rules (MAC) on the target itself.
func (o *oracleState) oracleCheck(sub acl.Subject, class lattice.Class, path string, modes acl.Mode) bool {
	ancestors := []string{"/"}
	for i := 1; i < len(path); i++ {
		if path[i] == '/' {
			ancestors = append(ancestors, path[:i])
		}
	}
	for _, anc := range ancestors {
		if !o.acls[anc].Check(sub, acl.List) {
			return false
		}
		if !o.oracleMAC(class, o.classes[anc], acl.List) {
			return false
		}
	}
	return o.acls[path].Check(sub, modes) && o.oracleMAC(class, o.classes[path], modes)
}

// oracleMAC is the original flow-rule grouping, verbatim.
func (o *oracleState) oracleMAC(subject, object lattice.Class, modes acl.Mode) bool {
	const readGroup = acl.Read | acl.List | acl.Execute | acl.Extend
	const writeGroup = acl.Write | acl.Delete | acl.Administrate
	if modes&readGroup != 0 && !subject.CanRead(object) {
		return false
	}
	if modes&writeGroup != 0 && !subject.CanWrite(object) {
		return false
	}
	if modes&acl.WriteAppend != 0 && !subject.CanAppend(object) {
		return false
	}
	return true
}

// randomACL builds an ACL with random allow/deny entries over the given
// principals plus occasional everyone entries.
func randomACL(rng *rand.Rand, principals []string) *acl.ACL {
	var entries []acl.Entry
	n := rng.Intn(4)
	for i := 0; i < n; i++ {
		modes := acl.Mode(rng.Intn(int(acl.AllModes))) + 1
		switch rng.Intn(4) {
		case 0:
			entries = append(entries, acl.AllowEveryone(modes))
		case 1:
			entries = append(entries, acl.Deny(principals[rng.Intn(len(principals))], modes))
		default:
			entries = append(entries, acl.Allow(principals[rng.Intn(len(principals))], modes))
		}
	}
	// Bias toward listable containers so traversal sometimes succeeds.
	if rng.Intn(2) == 0 {
		entries = append(entries, acl.AllowEveryone(acl.List))
	}
	return acl.New(entries...)
}

func TestCheckAccessMatchesPreRefactorOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	lat, err := lattice.NewWithUniverse([]string{"l0", "l1", "l2"}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	bottom, err := lat.Bottom()
	if err != nil {
		t.Fatal(err)
	}
	classPool := []lattice.Class{
		bottom,
		lat.MustClass("l0", "a"),
		lat.MustClass("l1"),
		lat.MustClass("l1", "a", "b"),
		lat.MustClass("l2", "b"),
		lat.MustClass("l2", "a", "b"),
	}
	principals := []string{"p0", "p1", "p2"}
	subjects := make([]acl.Subject, len(principals))
	for i, p := range principals {
		subjects[i] = fakeSubject{name: p}
	}

	for round := 0; round < 20; round++ {
		rootACL := randomACL(rng, principals)
		srv := NewServer(lat, rootACL, bottom)
		o := &oracleState{
			lat:     lat,
			acls:    map[string]*acl.ACL{"/": rootACL},
			classes: map[string]lattice.Class{"/": bottom},
		}

		// Random two-level tree, built unchecked on both sides.
		var leaves []string
		for d := 0; d < 3; d++ {
			dir := fmt.Sprintf("/d%d", d)
			dACL, dClass := randomACL(rng, principals), classPool[rng.Intn(len(classPool))]
			if _, err := srv.BindUnchecked("/", BindSpec{
				Name: fmt.Sprintf("d%d", d), Kind: KindDirectory, ACL: dACL, Class: dClass,
			}); err != nil {
				t.Fatal(err)
			}
			o.acls[dir], o.classes[dir] = dACL, dClass
			leaves = append(leaves, dir)
			for f := 0; f < 3; f++ {
				leaf := fmt.Sprintf("%s/f%d", dir, f)
				fACL, fClass := randomACL(rng, principals), classPool[rng.Intn(len(classPool))]
				if _, err := srv.BindUnchecked(dir, BindSpec{
					Name: fmt.Sprintf("f%d", f), Kind: KindFile, ACL: fACL, Class: fClass,
				}); err != nil {
					t.Fatal(err)
				}
				o.acls[leaf], o.classes[leaf] = fACL, fClass
				leaves = append(leaves, leaf)
			}
		}

		for q := 0; q < 400; q++ {
			sub := subjects[rng.Intn(len(subjects))]
			class := classPool[rng.Intn(len(classPool))]
			path := leaves[rng.Intn(len(leaves))]
			modes := acl.Mode(rng.Intn(int(acl.AllModes))) + 1

			want := o.oracleCheck(sub, class, path, modes)
			_, err := srv.CheckAccess(sub, class, path, modes)
			if got := err == nil; got != want {
				t.Fatalf("round %d: CheckAccess(%s, %s, %s, %s) = %v (err=%v); oracle says %v",
					round, sub.SubjectName(), class, path, modes, got, err, want)
			}
		}
	}
}
