package names

import (
	"errors"
	"testing"

	"secext/internal/acl"
)

// renameFixture builds /a and /b directories plus /a/x with a
// permissive ACL for "owner".
func renameFixture(t *testing.T) *fixture {
	t.Helper()
	f := newFixture(t)
	dirACL := acl.New(
		acl.Allow("owner", acl.Write|acl.List),
		acl.AllowEveryone(acl.List),
	)
	for _, d := range []string{"a", "b"} {
		if _, err := f.srv.BindUnchecked("/", BindSpec{
			Name: d, Kind: KindDirectory, ACL: dirACL, Class: f.bot,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.srv.BindUnchecked("/a", BindSpec{
		Name: "x", Kind: KindFile, Class: f.bot, Payload: "data",
		ACL: acl.New(acl.Allow("owner", acl.Delete|acl.Read)),
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRenameHappyPath(t *testing.T) {
	f := renameFixture(t)
	owner := subj("owner")
	if err := f.srv.Rename(owner, f.bot, "/a/x", "/b", "y"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := f.srv.ResolveUnchecked("/a/x"); !errors.Is(err, ErrNotFound) {
		t.Error("old name must be gone")
	}
	n, err := f.srv.ResolveUnchecked("/b/y")
	if err != nil {
		t.Fatalf("new name missing: %v", err)
	}
	if n.Payload() != "data" || n.Name() != "y" || n.Path() != "/b/y" {
		t.Errorf("moved node wrong: %s %v", n.Path(), n.Payload())
	}
}

func TestRenameChecks(t *testing.T) {
	f := renameFixture(t)
	other := subj("other")
	// No delete on the node.
	if err := f.srv.Rename(other, f.bot, "/a/x", "/b", "y"); !errors.Is(err, ErrDenied) {
		t.Errorf("no delete: got %v", err)
	}
	// Delete but no write on the destination parent.
	if err := f.srv.SetACLUnchecked("/a/x", acl.New(acl.Allow("other", acl.Delete))); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.SetACLUnchecked("/a", acl.New(acl.Allow("other", acl.Write|acl.List), acl.AllowEveryone(acl.List))); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Rename(other, f.bot, "/a/x", "/b", "y"); !errors.Is(err, ErrDenied) {
		t.Errorf("no destination write: got %v", err)
	}
}

func TestRenameStructuralErrors(t *testing.T) {
	f := renameFixture(t)
	owner := subj("owner")
	// Root cannot move.
	if err := f.srv.Rename(owner, f.bot, "/", "/b", "r"); !errors.Is(err, ErrRoot) {
		t.Errorf("move root: got %v", err)
	}
	// Destination occupied.
	if _, err := f.srv.BindUnchecked("/b", BindSpec{Name: "x", Kind: KindFile, Class: f.bot}); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Rename(owner, f.bot, "/a/x", "/b", "x"); !errors.Is(err, ErrExists) {
		t.Errorf("occupied destination: got %v", err)
	}
	// Bad component.
	if err := f.srv.Rename(owner, f.bot, "/a/x", "/b", "a/b"); !errors.Is(err, ErrBadPath) {
		t.Errorf("bad component: got %v", err)
	}
	// Destination under a leaf.
	if err := f.srv.Rename(owner, f.bot, "/a/x", "/b/x", "y"); !errors.Is(err, ErrLeaf) {
		t.Errorf("leaf destination: got %v", err)
	}
}

func TestRenameCycleRejected(t *testing.T) {
	f := newFixture(t)
	open := acl.New(acl.Allow("o", acl.Write|acl.Delete|acl.List), acl.AllowEveryone(acl.List))
	if _, err := f.srv.BindUnchecked("/", BindSpec{Name: "d1", Kind: KindDirectory, ACL: open, Class: f.bot}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.BindUnchecked("/d1", BindSpec{Name: "d2", Kind: KindDirectory, ACL: open, Class: f.bot}); err != nil {
		t.Fatal(err)
	}
	o := subj("o")
	if err := f.srv.Rename(o, f.bot, "/d1", "/d1/d2", "loop"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("cycle move: got %v", err)
	}
	// Moving a directory into itself directly.
	if err := f.srv.Rename(o, f.bot, "/d1", "/d1", "self"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("self move: got %v", err)
	}
}

func TestRenamePreservesProtection(t *testing.T) {
	// Moving a high-classified node between low directories must not
	// change its class or ACL. The mover runs at the directories'
	// class: deleting and re-binding the *name* are writes to the low
	// directories (a high subject attempting this would be denied as a
	// write-down — see TestRenameInMultilevelDir for the multilevel
	// alternative), while deleting the high *node* is a legal write-up.
	f := renameFixture(t)
	if err := f.srv.SetClassUnchecked("/a/x", f.org); err != nil {
		t.Fatal(err)
	}
	ownerACL := acl.New(acl.Allow("owner", acl.Delete|acl.Read))
	if err := f.srv.SetACLUnchecked("/a/x", ownerACL); err != nil {
		t.Fatal(err)
	}
	owner := subj("owner")
	if err := f.srv.Rename(owner, f.org, "/a/x", "/b", "x"); !errors.Is(err, ErrDenied) {
		t.Fatalf("high subject moving name in low dirs must be a write-down: %v", err)
	}
	if err := f.srv.Rename(owner, f.bot, "/a/x", "/b", "x"); err != nil {
		t.Fatalf("Rename at directory class: %v", err)
	}
	n, _ := f.srv.ResolveUnchecked("/b/x")
	if !n.Class().Equal(f.org) {
		t.Errorf("class changed: %s", n.Class())
	}
	got, _ := f.srv.ACLOf("/b/x")
	if got.String() != ownerACL.String() {
		t.Errorf("ACL changed: %s", got)
	}
}

func TestRenameInMultilevelDir(t *testing.T) {
	f := newFixture(t)
	shared := acl.New(acl.AllowEveryone(acl.List | acl.Write))
	if _, err := f.srv.BindUnchecked("/", BindSpec{
		Name: "tmp", Kind: KindDirectory, ACL: shared, Class: f.bot, Multilevel: true,
	}); err != nil {
		t.Fatal(err)
	}
	bob := subj("bob")
	if _, err := f.srv.Bind(bob, f.org, "/tmp", BindSpec{
		Name: "f", Kind: KindFile, Class: f.org,
		ACL: acl.New(acl.Allow("bob", acl.Delete)),
	}); err != nil {
		t.Fatal(err)
	}
	// bob renames his own entry inside the multilevel dir although the
	// container is below his class.
	if err := f.srv.Rename(bob, f.org, "/tmp/f", "/tmp", "g"); err != nil {
		t.Fatalf("multilevel rename: %v", err)
	}
	if _, err := f.srv.ResolveUnchecked("/tmp/g"); err != nil {
		t.Error("renamed entry missing")
	}
}
