package names

import (
	"errors"
	"fmt"
	"testing"

	"secext/internal/acl"
)

// renameFixture builds /a and /b directories plus /a/x with a
// permissive ACL for "owner".
func renameFixture(t *testing.T) *fixture {
	t.Helper()
	f := newFixture(t)
	dirACL := acl.New(
		acl.Allow("owner", acl.Write|acl.List),
		acl.AllowEveryone(acl.List),
	)
	for _, d := range []string{"a", "b"} {
		if _, err := f.srv.BindUnchecked("/", BindSpec{
			Name: d, Kind: KindDirectory, ACL: dirACL, Class: f.bot,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.srv.BindUnchecked("/a", BindSpec{
		Name: "x", Kind: KindFile, Class: f.bot, Payload: "data",
		ACL: acl.New(acl.Allow("owner", acl.Delete|acl.Read)),
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRenameHappyPath(t *testing.T) {
	f := renameFixture(t)
	owner := subj("owner")
	if err := f.srv.Rename(owner, f.bot, "/a/x", "/b", "y"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := f.srv.ResolveUnchecked("/a/x"); !errors.Is(err, ErrNotFound) {
		t.Error("old name must be gone")
	}
	n, err := f.srv.ResolveUnchecked("/b/y")
	if err != nil {
		t.Fatalf("new name missing: %v", err)
	}
	if n.Payload() != "data" || n.Name() != "y" || n.Path() != "/b/y" {
		t.Errorf("moved node wrong: %s %v", n.Path(), n.Payload())
	}
}

func TestRenameChecks(t *testing.T) {
	f := renameFixture(t)
	other := subj("other")
	// No delete on the node.
	if err := f.srv.Rename(other, f.bot, "/a/x", "/b", "y"); !errors.Is(err, ErrDenied) {
		t.Errorf("no delete: got %v", err)
	}
	// Delete but no write on the destination parent.
	if err := f.srv.SetACLUnchecked("/a/x", acl.New(acl.Allow("other", acl.Delete))); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.SetACLUnchecked("/a", acl.New(acl.Allow("other", acl.Write|acl.List), acl.AllowEveryone(acl.List))); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Rename(other, f.bot, "/a/x", "/b", "y"); !errors.Is(err, ErrDenied) {
		t.Errorf("no destination write: got %v", err)
	}
}

func TestRenameStructuralErrors(t *testing.T) {
	f := renameFixture(t)
	owner := subj("owner")
	// Root cannot move.
	if err := f.srv.Rename(owner, f.bot, "/", "/b", "r"); !errors.Is(err, ErrRoot) {
		t.Errorf("move root: got %v", err)
	}
	// Destination occupied.
	if _, err := f.srv.BindUnchecked("/b", BindSpec{Name: "x", Kind: KindFile, Class: f.bot}); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Rename(owner, f.bot, "/a/x", "/b", "x"); !errors.Is(err, ErrExists) {
		t.Errorf("occupied destination: got %v", err)
	}
	// Bad component.
	if err := f.srv.Rename(owner, f.bot, "/a/x", "/b", "a/b"); !errors.Is(err, ErrBadPath) {
		t.Errorf("bad component: got %v", err)
	}
	// Destination under a leaf.
	if err := f.srv.Rename(owner, f.bot, "/a/x", "/b/x", "y"); !errors.Is(err, ErrLeaf) {
		t.Errorf("leaf destination: got %v", err)
	}
}

func TestRenameCycleRejected(t *testing.T) {
	f := newFixture(t)
	open := acl.New(acl.Allow("o", acl.Write|acl.Delete|acl.List), acl.AllowEveryone(acl.List))
	if _, err := f.srv.BindUnchecked("/", BindSpec{Name: "d1", Kind: KindDirectory, ACL: open, Class: f.bot}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.BindUnchecked("/d1", BindSpec{Name: "d2", Kind: KindDirectory, ACL: open, Class: f.bot}); err != nil {
		t.Fatal(err)
	}
	o := subj("o")
	if err := f.srv.Rename(o, f.bot, "/d1", "/d1/d2", "loop"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("cycle move: got %v", err)
	}
	// Moving a directory into itself directly.
	if err := f.srv.Rename(o, f.bot, "/d1", "/d1", "self"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("self move: got %v", err)
	}
}

func TestRenamePreservesProtection(t *testing.T) {
	// Moving a high-classified node between low directories must not
	// change its class or ACL. The mover runs at the directories'
	// class: deleting and re-binding the *name* are writes to the low
	// directories (a high subject attempting this would be denied as a
	// write-down — see TestRenameInMultilevelDir for the multilevel
	// alternative), while deleting the high *node* is a legal write-up.
	f := renameFixture(t)
	if err := f.srv.SetClassUnchecked("/a/x", f.org); err != nil {
		t.Fatal(err)
	}
	ownerACL := acl.New(acl.Allow("owner", acl.Delete|acl.Read))
	if err := f.srv.SetACLUnchecked("/a/x", ownerACL); err != nil {
		t.Fatal(err)
	}
	owner := subj("owner")
	if err := f.srv.Rename(owner, f.org, "/a/x", "/b", "x"); !errors.Is(err, ErrDenied) {
		t.Fatalf("high subject moving name in low dirs must be a write-down: %v", err)
	}
	if err := f.srv.Rename(owner, f.bot, "/a/x", "/b", "x"); err != nil {
		t.Fatalf("Rename at directory class: %v", err)
	}
	n, _ := f.srv.ResolveUnchecked("/b/x")
	if !n.Class().Equal(f.org) {
		t.Errorf("class changed: %s", n.Class())
	}
	got, _ := f.srv.ACLOf("/b/x")
	if got.String() != ownerACL.String() {
		t.Errorf("ACL changed: %s", got)
	}
}

func TestRenameInMultilevelDir(t *testing.T) {
	f := newFixture(t)
	shared := acl.New(acl.AllowEveryone(acl.List | acl.Write))
	if _, err := f.srv.BindUnchecked("/", BindSpec{
		Name: "tmp", Kind: KindDirectory, ACL: shared, Class: f.bot, Multilevel: true,
	}); err != nil {
		t.Fatal(err)
	}
	bob := subj("bob")
	if _, err := f.srv.Bind(bob, f.org, "/tmp", BindSpec{
		Name: "f", Kind: KindFile, Class: f.org,
		ACL: acl.New(acl.Allow("bob", acl.Delete)),
	}); err != nil {
		t.Fatal(err)
	}
	// bob renames his own entry inside the multilevel dir although the
	// container is below his class.
	if err := f.srv.Rename(bob, f.org, "/tmp/f", "/tmp", "g"); err != nil {
		t.Fatalf("multilevel rename: %v", err)
	}
	if _, err := f.srv.ResolveUnchecked("/tmp/g"); err != nil {
		t.Error("renamed entry missing")
	}
}

// TestRenameWideDirectory moves a directory of 10^3+ children and
// re-checks the full tree invariants: every child's stored path is
// rewritten under the new name, derived entry names still equal the
// path tails, and every sibling list stays strictly sorted — the
// rename changes the moved entry's sort position in both parents.
func TestRenameWideDirectory(t *testing.T) {
	f := renameFixture(t)
	const kids = 1200
	specs := make([]SubtreeSpec, 0, 1+kids)
	specs = append(specs, SubtreeSpec{Path: "wide", Kind: KindDirectory,
		ACL: acl.New(acl.Allow("owner", acl.AllModes), acl.AllowEveryone(acl.List)), Class: f.bot})
	for k := 0; k < kids; k++ {
		specs = append(specs, SubtreeSpec{
			Path: fmt.Sprintf("wide/k%04d", k), Kind: KindFile, Payload: k,
			ACL: acl.New(acl.Allow("owner", acl.Read)), Class: f.bot,
		})
	}
	if _, _, err := f.srv.BindSubtreeUnchecked("/a", specs); err != nil {
		t.Fatal(err)
	}
	// "0-first" sorts before every existing sibling of /b; the old name
	// "wide" sorted last in /a — both insertion paths get exercised.
	if err := f.srv.Rename(subj("owner"), f.bot, "/a/wide", "/b", "0-first"); err != nil {
		t.Fatalf("Rename wide: %v", err)
	}
	for _, k := range []int{0, 1, kids / 2, kids - 1} {
		p := fmt.Sprintf("/b/0-first/k%04d", k)
		n, err := f.srv.ResolveUnchecked(p)
		if err != nil {
			t.Fatalf("child %s missing after rename: %v", p, err)
		}
		if n.Payload() != k || n.Path() != p {
			t.Errorf("child %s carries path %q payload %v", p, n.Path(), n.Payload())
		}
	}
	if _, err := f.srv.ResolveUnchecked("/a/wide"); !errors.Is(err, ErrNotFound) {
		t.Error("old wide directory still resolves")
	}
	checkTree(t, f, 0, 0)
}

// TestRenameDeepChain renames the head of a deep directory chain:
// every descendant's canonical path must be rewritten through the full
// depth, and the subtree must stay reachable at each level.
func TestRenameDeepChain(t *testing.T) {
	f := renameFixture(t)
	const depth = 64
	specs := []SubtreeSpec{{Path: "deep", Kind: KindDirectory,
		ACL: acl.New(acl.Allow("owner", acl.AllModes), acl.AllowEveryone(acl.List)), Class: f.bot}}
	rel := "deep"
	for d := 0; d < depth; d++ {
		rel += "/c"
		specs = append(specs, SubtreeSpec{Path: rel, Kind: KindDirectory,
			ACL: acl.New(acl.Allow("owner", acl.AllModes)), Class: f.bot})
	}
	if _, _, err := f.srv.BindSubtreeUnchecked("/a", specs); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Rename(subj("owner"), f.bot, "/a/deep", "/b", "moved"); err != nil {
		t.Fatalf("Rename deep: %v", err)
	}
	want := "/b/moved"
	for d := 0; d <= depth; d++ {
		n, err := f.srv.ResolveUnchecked(want)
		if err != nil {
			t.Fatalf("depth %d: %s missing: %v", d, want, err)
		}
		if n.Path() != want {
			t.Errorf("depth %d: stored path %q, want %q", d, n.Path(), want)
		}
		want += "/c"
	}
	checkTree(t, f, 0, 0)
}
