package names

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"secext/internal/acl"
	"secext/internal/decision"
	"secext/internal/lattice"
	"secext/internal/monitor"
	"secext/internal/monitor/dacguard"
	"secext/internal/monitor/macguard"
	"secext/internal/telemetry"
)

// ErrNotEmpty is returned when unbinding a node that still has children.
var ErrNotEmpty = fmt.Errorf("names: node not empty")

// Server is the central name server: the single facility that names
// every object in the system (§2.3). It is pure mechanism — resolution,
// binding, storage — and delegates every policy decision to an injected
// monitor.Pipeline: the server resolves a name, describes the node it
// found (ACL, class, multilevel flag), and lets the guard stack decide.
// It is safe for concurrent use.
//
// Checked operations take the requesting subject (for the DAC decision)
// and the subject's current security class (for the MAC decision).
// Unchecked variants exist for bootstrap and for the reference monitor's
// own bookkeeping; nothing outside internal/core should use them. The
// reference monitor can observe unchecked operations via SetAdminHook so
// that even mediation bypasses leave an audit trail.
type Server struct {
	mu   sync.RWMutex
	root *Node
	lat  *lattice.Lattice

	// checkTraversal controls whether walking through interior nodes
	// performs per-level visibility checks (list + MAC read). It is on
	// by default; experiment E4 measures the cost by toggling it.
	checkTraversal bool

	// pipe is the policy pipeline every checked operation consults.
	// NewServer installs the default [dac, mac] stack; SetPipeline
	// replaces it during setup. Like cache, it is read without the lock
	// on the fast path, so install it before concurrent traffic.
	pipe *monitor.Pipeline

	// adminHook, when set, observes every unchecked (policy-bypassing)
	// operation: op is a short operation name, path the affected name,
	// err the structural outcome. The hook runs with the server lock
	// held and must not call back into the server.
	adminHook func(op, path string, err error)

	// cache, when set, memoizes CheckAccess verdicts keyed by
	// (subject, class, path, modes, guard-stack generation) with
	// generation-based invalidation: every name-space mutation bumps the
	// cache generation and every pipeline change bumps the stack
	// generation, so a hit is provably computed against the current
	// protection state AND the current guard stack. Install it with
	// SetDecisionCache before the server sees concurrent traffic; only
	// the reference monitor should do so (cached verdicts assume subject
	// names are canonical, which core guarantees). A nil cache means
	// every check takes the full path, as does a pipeline containing a
	// stateful guard (whose verdicts must not be memoized).
	cache *decision.Cache
}

// NewServer creates a name space whose root carries the given ACL and
// class, guarded by the default [dac, mac] pipeline.
func NewServer(lat *lattice.Lattice, rootACL *acl.ACL, rootClass lattice.Class) *Server {
	if rootACL == nil {
		rootACL = acl.New()
	}
	s := &Server{
		root: &Node{
			kind:     KindRoot,
			children: make(map[string]*Node),
			acl:      rootACL.Clone(),
			class:    rootClass,
		},
		lat:            lat,
		checkTraversal: true,
		pipe:           monitor.NewPipeline(dacguard.New(), macguard.New()),
	}
	s.root.acl.SetMutationHook(s.invalidate)
	return s
}

// Lattice returns the lattice node classes are drawn from.
func (s *Server) Lattice() *lattice.Lattice { return s.lat }

// Pipeline returns the monitor pipeline the server consults.
func (s *Server) Pipeline() *monitor.Pipeline {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pipe
}

// SetPipeline replaces the policy pipeline. Call it during setup,
// before the server sees concurrent traffic; a nil pipeline is
// rejected (a server without policy would fail open). Swapping whole
// pipelines also invalidates the decision cache, since the old and new
// stacks' generations are unrelated.
func (s *Server) SetPipeline(p *monitor.Pipeline) {
	if p == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pipe = p
	s.invalidate()
}

// SetAdminHook installs an observer for unchecked operations; nil
// removes it. Call during setup. The hook must not call back into the
// server (it runs under the server lock).
func (s *Server) SetAdminHook(fn func(op, path string, err error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adminHook = fn
}

// admin reports one unchecked operation to the hook, if any.
func (s *Server) admin(op, path string, err error) {
	if s.adminHook != nil {
		s.adminHook(op, path, err)
	}
}

// SetDecisionCache installs (or, with nil, removes) the decision cache
// consulted by CheckAccess. Call it during setup, before the server sees
// concurrent traffic. Only the reference monitor should install a cache:
// cached verdicts are keyed by subject *name*, which is sound only when
// every subject name maps to one identity — core's registry guarantees
// that; arbitrary acl.Subject implementations do not.
func (s *Server) SetDecisionCache(c *decision.Cache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = c
}

// DecisionCache returns the installed decision cache (nil if none).
func (s *Server) DecisionCache() *decision.Cache {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cache
}

// invalidate bumps the decision-cache generation. Every mutation of the
// name space (bindings, ACLs, classes, payloads, traversal policy) must
// call it; a nil cache makes it a no-op.
func (s *Server) invalidate() { s.cache.Invalidate() }

// hookACL attaches the cache-invalidation hook to an ACL that is about
// to become live protection state on a node, so any in-place edit of it
// bumps the generation even if it bypasses SetACL.
func (s *Server) hookACL(a *acl.ACL) *acl.ACL {
	a.SetMutationHook(s.invalidate)
	return a
}

// SetTraversalChecks toggles per-level visibility checks during path
// resolution. Intended for experiments; production systems leave it on.
func (s *Server) SetTraversalChecks(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkTraversal = on
	s.invalidate()
}

// describe builds the pipeline's view of node n at path.
func describe(n *Node, path string) monitor.Object {
	return monitor.Object{Path: path, ACL: n.acl, Class: n.class, Multilevel: n.multilevel}
}

// checkNode consults the pipeline for the requested modes on node n,
// which lives at path. Caller holds s.mu (read or write).
func (s *Server) checkNode(n *Node, path string, sub acl.Subject, class lattice.Class, modes acl.Mode, op monitor.Op) error {
	v := s.pipe.Check(monitor.Request{
		Subject: sub, Class: class, Object: describe(n, path), Modes: modes, Op: op,
	})
	if !v.Allow {
		return &DeniedError{Path: path, Op: modes.String(), Why: v.Reason}
	}
	return nil
}

// parentOf returns the parent path of a canonical absolute path.
func parentOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// resolveLocked walks the path, applying traversal checks to every
// interior node strictly above the target when enabled. Caller holds
// s.mu. The walk slices components out of path in place instead of
// calling SplitPath, so resolution allocates nothing on success; the
// per-level prefix handed to the pipeline is a slice of path, not a
// rebuilt string.
func (s *Server) resolveLocked(sub acl.Subject, class lattice.Class, path string, checked bool) (*Node, error) {
	if err := ValidPath(path); err != nil {
		return nil, err
	}
	cur := s.root
	// Invariant: rest is the unconsumed suffix of path after the slash
	// that follows the current node's name.
	rest := path[1:]
	for rest != "" {
		part := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			part, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if checked && s.checkTraversal {
			// Visibility: walking through a node requires list on it
			// and MAC read of it (§2.3: access control determines
			// which names are visible). The node's path is the consumed
			// prefix (the root's is "/").
			prefix := path[:len(path)-len(part)-len(rest)-1]
			if rest != "" {
				prefix = path[:len(path)-len(part)-len(rest)-2]
			}
			if prefix == "" {
				prefix = "/"
			}
			if err := s.checkNode(cur, prefix, sub, class, acl.List, monitor.OpTraverse); err != nil {
				return nil, err
			}
		}
		next, ok := cur.children[part]
		if !ok {
			// Report the prefix up to and including the missing name.
			consumed := len(path) - len(rest)
			if rest != "" {
				consumed-- // drop the trailing slash
			}
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path[:consumed])
		}
		cur = next
	}
	return cur, nil
}

// Resolve walks to the node at path, enforcing visibility along the way.
// The target node itself is not checked; callers apply the operation-
// specific check via CheckAccess or a higher-level operation.
func (s *Server) Resolve(sub acl.Subject, class lattice.Class, path string) (*Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resolveLocked(sub, class, path, true)
}

// ResolveUnchecked walks to the node at path with no access checks.
func (s *Server) ResolveUnchecked(path string) (*Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.resolveLocked(nil, lattice.Class{}, path, false)
	s.admin("resolve-unchecked", path, err)
	return n, err
}

// CheckAccess resolves path and verifies that the subject holds the
// requested modes on the target under the guard pipeline. It returns the
// node on success.
//
// With a decision cache installed and a pure (cacheable) pipeline, a
// repeated check is served from the cache with zero locks and zero
// allocations; the full check runs only on a miss, and its verdict is
// published stamped with the cache generation read *before* the
// computation and the pipeline's guard-stack generation, so a mutation
// or a guard install racing with the check invalidates the entry the
// moment it lands.
func (s *Server) CheckAccess(sub acl.Subject, class lattice.Class, path string, modes acl.Mode) (*Node, error) {
	cache := s.cache
	if cache == nil {
		return s.checkAccessFull(sub, class, path, modes)
	}
	cacheable, stack := s.pipe.Snapshot()
	if !cacheable {
		return s.checkAccessFull(sub, class, path, modes)
	}
	name := sub.SubjectName()
	if node, err, ok := cache.Lookup(name, class, path, modes, stack); ok {
		if err != nil {
			return nil, err
		}
		return node.(*Node), nil
	}
	gen := cache.Gen()
	n, err := s.checkAccessFull(sub, class, path, modes)
	// Cache grants and access denials only. Structural errors
	// (ErrNotFound, ErrBadPath) are cheap to recompute and their error
	// values carry no security weight worth pinning.
	if err == nil {
		cache.StoreAt(gen, name, class, path, modes, stack, n, nil)
	} else if errors.Is(err, ErrDenied) {
		cache.StoreAt(gen, name, class, path, modes, stack, nil, err)
	}
	return n, err
}

// CheckAccessTraced is CheckAccess with stage-by-stage observability:
// the decision-cache probe, the path resolution, and each guard's
// verdict land as spans on tr. It is invoked only for requests the
// telemetry sampler selected, so the extra clock reads never touch the
// common path; the decision returned is identical to CheckAccess's.
func (s *Server) CheckAccessTraced(sub acl.Subject, class lattice.Class, path string, modes acl.Mode, tr *telemetry.ActiveTrace) (*Node, error) {
	cache := s.cache
	if cache == nil {
		return s.checkAccessFullTraced(sub, class, path, modes, tr)
	}
	cacheable, stack := s.pipe.Snapshot()
	if !cacheable {
		tr.Span("cache-skip", "stateful guard", 0)
		return s.checkAccessFullTraced(sub, class, path, modes, tr)
	}
	name := sub.SubjectName()
	start := time.Now()
	node, err, ok := cache.Lookup(name, class, path, modes, stack)
	gen := cache.Gen()
	tr.CacheProbe(ok, gen, time.Since(start))
	if ok {
		if err != nil {
			return nil, err
		}
		return node.(*Node), nil
	}
	n, err := s.checkAccessFullTraced(sub, class, path, modes, tr)
	if err == nil {
		cache.StoreAt(gen, name, class, path, modes, stack, n, nil)
	} else if errors.Is(err, ErrDenied) {
		cache.StoreAt(gen, name, class, path, modes, stack, nil, err)
	}
	return n, err
}

// checkAccessFull is the uncached check: resolve under the read lock,
// then verify the target.
func (s *Server) checkAccessFull(sub acl.Subject, class lattice.Class, path string, modes acl.Mode) (*Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return nil, err
	}
	if err := s.checkNode(n, path, sub, class, modes, monitor.OpAccess); err != nil {
		return nil, err
	}
	return n, nil
}

// checkAccessFullTraced mirrors checkAccessFull, recording the resolve
// duration as a span and running the pipeline through CheckTraced so
// each guard's verdict is visible individually.
func (s *Server) checkAccessFullTraced(sub acl.Subject, class lattice.Class, path string, modes acl.Mode, tr *telemetry.ActiveTrace) (*Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	start := time.Now()
	n, err := s.resolveLocked(sub, class, path, true)
	tr.Span("resolve", "", time.Since(start))
	if err != nil {
		return nil, err
	}
	v := s.pipe.CheckTraced(monitor.Request{
		Subject: sub, Class: class, Object: describe(n, path), Modes: modes, Op: monitor.OpAccess,
	}, tr)
	if !v.Allow {
		return nil, &DeniedError{Path: path, Op: modes.String(), Why: v.Reason}
	}
	return n, nil
}

// List returns the names bound under path, requiring list mode and MAC
// read on the target.
func (s *Server) List(sub acl.Subject, class lattice.Class, path string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return nil, err
	}
	if n.kind.Leaf() {
		return nil, fmt.Errorf("%w: %s is a %s", ErrNotLeaf, path, n.kind)
	}
	if err := s.checkNode(n, path, sub, class, acl.List, monitor.OpAccess); err != nil {
		return nil, err
	}
	return n.childNames(), nil
}

// BindSpec describes a new node for Bind.
type BindSpec struct {
	Name    string        // final path component
	Kind    Kind          // node kind
	ACL     *acl.ACL      // nil means empty (fail-closed)
	Class   lattice.Class // security class of the new node
	Payload any           // service implementation, file handle, etc.
	// Multilevel marks the new node as a multilevel container; see
	// Node.Multilevel.
	Multilevel bool
}

// Bind creates a new node under parentPath. The subject needs write mode
// on the parent (§2.3: "whether an extension can add new entries"), MAC
// write to the parent, and may only label the new node with a class it
// could itself write to (preventing creation of objects below the
// subject's own class, which would constitute a write-down channel).
// Multilevel containers waive the parent's no-write-down rule
// (monitor.OpContainerBind).
func (s *Server) Bind(sub acl.Subject, class lattice.Class, parentPath string, spec BindSpec) (*Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, err := s.resolveLocked(sub, class, parentPath, true)
	if err != nil {
		return nil, err
	}
	op := monitor.OpAccess
	if parent.multilevel {
		op = monitor.OpContainerBind
	}
	if err := s.checkNode(parent, parentPath, sub, class, acl.Write, op); err != nil {
		return nil, err
	}
	if v := s.pipe.Check(monitor.Request{
		Subject: sub, Class: class, Object: describe(parent, parentPath),
		NewClass: spec.Class, Op: monitor.OpCreate,
	}); !v.Allow {
		return nil, &DeniedError{Path: Join(parentPath, spec.Name), Op: "bind", Why: v.Reason}
	}
	return s.bindLocked(parent, spec)
}

// BindUnchecked creates a node with no access checks; for bootstrap.
func (s *Server) BindUnchecked(parentPath string, spec BindSpec) (*Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, err := s.resolveLocked(nil, lattice.Class{}, parentPath, false)
	if err != nil {
		s.admin("bind-unchecked", Join(parentPath, spec.Name), err)
		return nil, err
	}
	n, err := s.bindLocked(parent, spec)
	s.admin("bind-unchecked", Join(parentPath, spec.Name), err)
	return n, err
}

func (s *Server) bindLocked(parent *Node, spec BindSpec) (*Node, error) {
	if err := ValidComponent(spec.Name); err != nil {
		return nil, err
	}
	if parent.kind.Leaf() {
		return nil, fmt.Errorf("%w: %s", ErrLeaf, parent.Path())
	}
	if !spec.Class.Valid() || spec.Class.Lattice() != s.lat {
		return nil, fmt.Errorf("%w: node class must come from the server lattice", ErrBadPath)
	}
	if _, dup := parent.children[spec.Name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrExists, Join(parent.Path(), spec.Name))
	}
	a := spec.ACL
	if a == nil {
		a = acl.New()
	}
	n := &Node{
		name:       spec.Name,
		kind:       spec.Kind,
		parent:     parent,
		acl:        s.hookACL(a.Clone()),
		class:      spec.Class,
		payload:    spec.Payload,
		multilevel: spec.Multilevel && !spec.Kind.Leaf(),
	}
	if !spec.Kind.Leaf() {
		n.children = make(map[string]*Node)
	}
	parent.children[spec.Name] = n
	s.invalidate()
	return n, nil
}

// Unbind removes the node at path. The subject needs delete mode on the
// target, write mode on the parent, and MAC write to both (the parent's
// MAC rule is waived for multilevel containers). Non-empty nodes cannot
// be unbound.
func (s *Server) Unbind(sub acl.Subject, class lattice.Class, path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return err
	}
	if n.parent == nil {
		return ErrRoot
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	if err := s.checkNode(n, path, sub, class, acl.Delete, monitor.OpAccess); err != nil {
		return err
	}
	op := monitor.OpAccess
	if n.parent.multilevel {
		op = monitor.OpContainerUnbind
	}
	if err := s.checkNode(n.parent, parentOf(path), sub, class, acl.Write, op); err != nil {
		return err
	}
	delete(n.parent.children, n.name)
	n.parent = nil
	s.invalidate()
	return nil
}

// Rename moves the node at oldPath to newParentPath/newName. The
// subject needs delete on the node, write on both the old and the new
// parent (multilevel waivers apply to each side independently), and the
// usual MAC rules; the node keeps its ACL, class, payload, and
// children. Renaming across class boundaries never relabels: the name
// moves, the protection does not.
func (s *Server) Rename(sub acl.Subject, class lattice.Class, oldPath, newParentPath, newName string) error {
	if err := ValidComponent(newName); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(sub, class, oldPath, true)
	if err != nil {
		return err
	}
	if n.parent == nil {
		return ErrRoot
	}
	newParent, err := s.resolveLocked(sub, class, newParentPath, true)
	if err != nil {
		return err
	}
	if newParent.kind.Leaf() {
		return fmt.Errorf("%w: %s", ErrLeaf, newParentPath)
	}
	// A node must not become its own ancestor.
	for cur := newParent; cur != nil; cur = cur.parent {
		if cur == n {
			return fmt.Errorf("%w: cannot move %s under itself", ErrBadPath, oldPath)
		}
	}
	if _, dup := newParent.children[newName]; dup {
		return fmt.Errorf("%w: %s", ErrExists, Join(newParentPath, newName))
	}
	if err := s.checkNode(n, oldPath, sub, class, acl.Delete, monitor.OpAccess); err != nil {
		return err
	}
	checkParent := func(p *Node, path string) error {
		op := monitor.OpAccess
		if p.multilevel {
			op = monitor.OpContainerUnbind
		}
		return s.checkNode(p, path, sub, class, acl.Write, op)
	}
	if err := checkParent(n.parent, parentOf(oldPath)); err != nil {
		return err
	}
	if err := checkParent(newParent, newParentPath); err != nil {
		return err
	}
	delete(n.parent.children, n.name)
	n.parent = newParent
	n.name = newName
	newParent.children[newName] = n
	s.invalidate()
	return nil
}

// UnbindUnchecked removes the node at path with no access checks.
func (s *Server) UnbindUnchecked(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.unbindUncheckedLocked(path)
	s.admin("unbind-unchecked", path, err)
	return err
}

func (s *Server) unbindUncheckedLocked(path string) error {
	n, err := s.resolveLocked(nil, lattice.Class{}, path, false)
	if err != nil {
		return err
	}
	if n.parent == nil {
		return ErrRoot
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	delete(n.parent.children, n.name)
	n.parent = nil
	s.invalidate()
	return nil
}

// GetACL returns a copy of the node's ACL. Reading the protection state
// requires read or administrate mode (the AnyOf disjunction) and MAC
// read.
func (s *Server) GetACL(sub acl.Subject, class lattice.Class, path string) (*acl.ACL, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return nil, err
	}
	if v := s.pipe.Check(monitor.Request{
		Subject: sub, Class: class, Object: describe(n, path),
		Modes: acl.Read, AnyOf: acl.Read | acl.Administrate, Op: monitor.OpAccess,
	}); !v.Allow {
		return nil, &DeniedError{Path: path, Op: "get-acl", Why: v.Reason}
	}
	return n.acl.Clone(), nil
}

// SetACL replaces the node's ACL. Changing protection is the
// administrate mode (§2.1) and is MAC-wise a write.
func (s *Server) SetACL(sub acl.Subject, class lattice.Class, path string, newACL *acl.ACL) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return err
	}
	if err := s.checkNode(n, path, sub, class, acl.Administrate, monitor.OpAccess); err != nil {
		return err
	}
	n.acl = s.hookACL(newACL.Clone())
	s.invalidate()
	return nil
}

// SetACLUnchecked replaces a node's ACL with no access checks.
func (s *Server) SetACLUnchecked(path string, newACL *acl.ACL) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(nil, lattice.Class{}, path, false)
	s.admin("set-acl-unchecked", path, err)
	if err != nil {
		return err
	}
	n.acl = s.hookACL(newACL.Clone())
	s.invalidate()
	return nil
}

// SetClass relabels the node. Relabeling violates tranquility, so it is
// gated on administrate mode and the relabel flow rules (a read of the
// old label, a write of the new).
func (s *Server) SetClass(sub acl.Subject, class lattice.Class, path string, newClass lattice.Class) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return err
	}
	if !newClass.Valid() || newClass.Lattice() != s.lat {
		return fmt.Errorf("%w: class must come from the server lattice", ErrBadPath)
	}
	if err := s.checkNode(n, path, sub, class, acl.Administrate, monitor.OpAccess); err != nil {
		return err
	}
	if v := s.pipe.Check(monitor.Request{
		Subject: sub, Class: class, Object: describe(n, path),
		NewClass: newClass, Op: monitor.OpRelabel,
	}); !v.Allow {
		return &DeniedError{Path: path, Op: "set-class", Why: v.Reason}
	}
	n.class = newClass
	s.invalidate()
	return nil
}

// SetClassUnchecked relabels a node with no access checks; for
// bootstrap and experiments.
func (s *Server) SetClassUnchecked(path string, newClass lattice.Class) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(nil, lattice.Class{}, path, false)
	if err != nil {
		s.admin("set-class-unchecked", path, err)
		return err
	}
	if !newClass.Valid() || newClass.Lattice() != s.lat {
		err = fmt.Errorf("%w: class must come from the server lattice", ErrBadPath)
		s.admin("set-class-unchecked", path, err)
		return err
	}
	n.class = newClass
	s.invalidate()
	s.admin("set-class-unchecked", path, nil)
	return nil
}

// ACLOf returns a copy of a node's ACL with no checks (monitor use).
func (s *Server) ACLOf(path string) (*acl.ACL, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.resolveLocked(nil, lattice.Class{}, path, false)
	if err != nil {
		return nil, err
	}
	return n.acl.Clone(), nil
}

// SetPayload replaces the payload at path with no access checks
// (monitor and service bootstrap use).
func (s *Server) SetPayload(path string, payload any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(nil, lattice.Class{}, path, false)
	s.admin("set-payload", path, err)
	if err != nil {
		return err
	}
	n.payload = payload
	s.invalidate()
	return nil
}

// Walk visits every node in the name space in depth-first order with no
// access checks, calling fn with each node's path and node. Intended for
// administrative dumps and tests. The callback must not call back into
// the server.
func (s *Server) Walk(fn func(path string, n *Node)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var visit func(n *Node)
	visit = func(n *Node) {
		fn(n.Path(), n)
		for _, name := range n.childNames() {
			visit(n.children[name])
		}
	}
	visit(s.root)
}

// Size returns the number of nodes in the name space, including the
// root.
func (s *Server) Size() int {
	n := 0
	s.Walk(func(string, *Node) { n++ })
	return n
}
