package names

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"secext/internal/acl"
	"secext/internal/decision"
	"secext/internal/lattice"
)

// ErrNotEmpty is returned when unbinding a node that still has children.
var ErrNotEmpty = fmt.Errorf("names: node not empty")

// Server is the central name server: the single facility that names
// every object in the system and enforces protection on each level of
// the hierarchy (§2.3). It is safe for concurrent use.
//
// Checked operations take the requesting subject (for the DAC decision)
// and the subject's current security class (for the MAC decision).
// Unchecked variants exist for bootstrap and for the reference monitor's
// own bookkeeping; nothing outside internal/core should use them.
type Server struct {
	mu   sync.RWMutex
	root *Node
	lat  *lattice.Lattice

	// checkTraversal controls whether walking through interior nodes
	// performs per-level visibility checks (list + MAC read). It is on
	// by default; experiment E4 measures the cost by toggling it.
	checkTraversal bool

	// cache, when set, memoizes CheckAccess verdicts keyed by
	// (subject, class, path, modes) with generation-based invalidation:
	// every name-space mutation bumps the cache generation, so a hit is
	// provably computed against the current protection state. Install it
	// with SetDecisionCache before the server sees concurrent traffic;
	// only the reference monitor should do so (cached verdicts assume
	// subject names are canonical, which core guarantees). A nil cache
	// means every check takes the full path.
	cache *decision.Cache
}

// NewServer creates a name space whose root carries the given ACL and
// class.
func NewServer(lat *lattice.Lattice, rootACL *acl.ACL, rootClass lattice.Class) *Server {
	if rootACL == nil {
		rootACL = acl.New()
	}
	s := &Server{
		root: &Node{
			kind:     KindRoot,
			children: make(map[string]*Node),
			acl:      rootACL.Clone(),
			class:    rootClass,
		},
		lat:            lat,
		checkTraversal: true,
	}
	s.root.acl.SetMutationHook(s.invalidate)
	return s
}

// Lattice returns the lattice node classes are drawn from.
func (s *Server) Lattice() *lattice.Lattice { return s.lat }

// SetDecisionCache installs (or, with nil, removes) the decision cache
// consulted by CheckAccess. Call it during setup, before the server sees
// concurrent traffic. Only the reference monitor should install a cache:
// cached verdicts are keyed by subject *name*, which is sound only when
// every subject name maps to one identity — core's registry guarantees
// that; arbitrary acl.Subject implementations do not.
func (s *Server) SetDecisionCache(c *decision.Cache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = c
}

// DecisionCache returns the installed decision cache (nil if none).
func (s *Server) DecisionCache() *decision.Cache {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cache
}

// invalidate bumps the decision-cache generation. Every mutation of the
// name space (bindings, ACLs, classes, payloads, traversal policy) must
// call it; a nil cache makes it a no-op.
func (s *Server) invalidate() { s.cache.Invalidate() }

// hookACL attaches the cache-invalidation hook to an ACL that is about
// to become live protection state on a node, so any in-place edit of it
// bumps the generation even if it bypasses SetACL.
func (s *Server) hookACL(a *acl.ACL) *acl.ACL {
	a.SetMutationHook(s.invalidate)
	return a
}

// SetTraversalChecks toggles per-level visibility checks during path
// resolution. Intended for experiments; production systems leave it on.
func (s *Server) SetTraversalChecks(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkTraversal = on
	s.invalidate()
}

// macAllows maps requested DAC modes onto the lattice flow rules (§2.2):
//
//   - read, list, execute, extend require the subject to dominate the
//     object (information about the object flows to the subject);
//   - write, delete, administrate require the object to dominate the
//     subject (*-property, no write-down);
//   - write-append requires only the *-property and is the paper's
//     mechanism for upgrading information without reading it.
//
// Extend sits in the read group: registering a specialization requires
// seeing the service, while the authority the specialization runs with
// is bounded separately by its static class (internal/dispatch).
func macAllows(subject, object lattice.Class, modes acl.Mode) (bool, string) {
	const readGroup = acl.Read | acl.List | acl.Execute | acl.Extend
	const writeGroup = acl.Write | acl.Delete | acl.Administrate
	if modes&readGroup != 0 && !subject.CanRead(object) {
		return false, "mac: subject does not dominate object (no read up)"
	}
	if modes&writeGroup != 0 && !subject.CanWrite(object) {
		return false, "mac: object does not dominate subject (no write down)"
	}
	if modes&acl.WriteAppend != 0 && !subject.CanAppend(object) {
		return false, "mac: append would write down"
	}
	return true, ""
}

// checkNodeLocked verifies both the DAC and MAC rules for the requested
// modes on node n. Caller holds s.mu (read or write).
func checkNodeLocked(n *Node, sub acl.Subject, class lattice.Class, modes acl.Mode) error {
	if !n.acl.Check(sub, modes) {
		return &DeniedError{Path: n.Path(), Op: modes.String(), Why: "acl: modes not granted"}
	}
	if ok, why := macAllows(class, n.class, modes); !ok {
		return &DeniedError{Path: n.Path(), Op: modes.String(), Why: why}
	}
	return nil
}

// resolveLocked walks the path, applying traversal checks to every
// interior node strictly above the target when enabled. Caller holds
// s.mu. The walk slices components out of path in place instead of
// calling SplitPath, so resolution allocates nothing on success.
func (s *Server) resolveLocked(sub acl.Subject, class lattice.Class, path string, checked bool) (*Node, error) {
	if err := ValidPath(path); err != nil {
		return nil, err
	}
	cur := s.root
	// Invariant: rest is the unconsumed suffix of path after the slash
	// that follows the current node's name.
	rest := path[1:]
	for rest != "" {
		part := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			part, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if checked && s.checkTraversal {
			// Visibility: walking through a node requires list on it
			// and MAC read of it (§2.3: access control determines
			// which names are visible).
			if err := checkNodeLocked(cur, sub, class, acl.List); err != nil {
				return nil, err
			}
		}
		next, ok := cur.children[part]
		if !ok {
			// Report the prefix up to and including the missing name.
			consumed := len(path) - len(rest)
			if rest != "" {
				consumed-- // drop the trailing slash
			}
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path[:consumed])
		}
		cur = next
	}
	return cur, nil
}

// Resolve walks to the node at path, enforcing visibility along the way.
// The target node itself is not checked; callers apply the operation-
// specific check via CheckAccess or a higher-level operation.
func (s *Server) Resolve(sub acl.Subject, class lattice.Class, path string) (*Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resolveLocked(sub, class, path, true)
}

// ResolveUnchecked walks to the node at path with no access checks.
func (s *Server) ResolveUnchecked(path string) (*Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.resolveLocked(nil, lattice.Class{}, path, false)
}

// CheckAccess resolves path and verifies that the subject holds the
// requested modes on the target under both DAC and MAC. It returns the
// node on success.
//
// With a decision cache installed, a repeated check is served from the
// cache with zero locks and zero allocations; the full check runs only
// on a miss, and its verdict is published stamped with the generation
// read *before* the computation, so a mutation racing with the check
// invalidates the entry the moment it lands.
func (s *Server) CheckAccess(sub acl.Subject, class lattice.Class, path string, modes acl.Mode) (*Node, error) {
	cache := s.cache
	if cache == nil {
		return s.checkAccessFull(sub, class, path, modes)
	}
	name := sub.SubjectName()
	if node, err, ok := cache.Lookup(name, class, path, modes); ok {
		if err != nil {
			return nil, err
		}
		return node.(*Node), nil
	}
	gen := cache.Gen()
	n, err := s.checkAccessFull(sub, class, path, modes)
	// Cache grants and access denials only. Structural errors
	// (ErrNotFound, ErrBadPath) are cheap to recompute and their error
	// values carry no security weight worth pinning.
	if err == nil {
		cache.StoreAt(gen, name, class, path, modes, n, nil)
	} else if errors.Is(err, ErrDenied) {
		cache.StoreAt(gen, name, class, path, modes, nil, err)
	}
	return n, err
}

// checkAccessFull is the uncached check: resolve under the read lock,
// then verify the target.
func (s *Server) checkAccessFull(sub acl.Subject, class lattice.Class, path string, modes acl.Mode) (*Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return nil, err
	}
	if err := checkNodeLocked(n, sub, class, modes); err != nil {
		return nil, err
	}
	return n, nil
}

// List returns the names bound under path, requiring list mode and MAC
// read on the target.
func (s *Server) List(sub acl.Subject, class lattice.Class, path string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return nil, err
	}
	if n.kind.Leaf() {
		return nil, fmt.Errorf("%w: %s is a %s", ErrNotLeaf, path, n.kind)
	}
	if err := checkNodeLocked(n, sub, class, acl.List); err != nil {
		return nil, err
	}
	return n.childNames(), nil
}

// BindSpec describes a new node for Bind.
type BindSpec struct {
	Name    string        // final path component
	Kind    Kind          // node kind
	ACL     *acl.ACL      // nil means empty (fail-closed)
	Class   lattice.Class // security class of the new node
	Payload any           // service implementation, file handle, etc.
	// Multilevel marks the new node as a multilevel container; see
	// Node.Multilevel.
	Multilevel bool
}

// Bind creates a new node under parentPath. The subject needs write mode
// on the parent (§2.3: "whether an extension can add new entries"), MAC
// write to the parent, and may only label the new node with a class it
// could itself write to (preventing creation of objects below the
// subject's own class, which would constitute a write-down channel).
func (s *Server) Bind(sub acl.Subject, class lattice.Class, parentPath string, spec BindSpec) (*Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, err := s.resolveLocked(sub, class, parentPath, true)
	if err != nil {
		return nil, err
	}
	if parent.multilevel {
		// Multilevel container: the DAC write mode still applies, but
		// the MAC no-write-down rule on the container is waived so
		// subjects above the container's class can create entries
		// (upgraded-directory semantics). The subject must still
		// dominate the container to see it at all.
		if !parent.acl.Check(sub, acl.Write) {
			return nil, &DeniedError{Path: parent.Path(), Op: "write", Why: "acl: modes not granted"}
		}
		if !class.CanRead(parent.class) {
			return nil, &DeniedError{Path: parent.Path(), Op: "write", Why: "mac: subject does not dominate container"}
		}
	} else if err := checkNodeLocked(parent, sub, class, acl.Write); err != nil {
		return nil, err
	}
	if !class.CanWrite(spec.Class) {
		return nil, &DeniedError{
			Path: Join(parentPath, spec.Name), Op: "bind",
			Why: "mac: new node class must dominate creator (no write down)",
		}
	}
	return s.bindLocked(parent, spec)
}

// BindUnchecked creates a node with no access checks; for bootstrap.
func (s *Server) BindUnchecked(parentPath string, spec BindSpec) (*Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, err := s.resolveLocked(nil, lattice.Class{}, parentPath, false)
	if err != nil {
		return nil, err
	}
	return s.bindLocked(parent, spec)
}

func (s *Server) bindLocked(parent *Node, spec BindSpec) (*Node, error) {
	if err := ValidComponent(spec.Name); err != nil {
		return nil, err
	}
	if parent.kind.Leaf() {
		return nil, fmt.Errorf("%w: %s", ErrLeaf, parent.Path())
	}
	if !spec.Class.Valid() || spec.Class.Lattice() != s.lat {
		return nil, fmt.Errorf("%w: node class must come from the server lattice", ErrBadPath)
	}
	if _, dup := parent.children[spec.Name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrExists, Join(parent.Path(), spec.Name))
	}
	a := spec.ACL
	if a == nil {
		a = acl.New()
	}
	n := &Node{
		name:       spec.Name,
		kind:       spec.Kind,
		parent:     parent,
		acl:        s.hookACL(a.Clone()),
		class:      spec.Class,
		payload:    spec.Payload,
		multilevel: spec.Multilevel && !spec.Kind.Leaf(),
	}
	if !spec.Kind.Leaf() {
		n.children = make(map[string]*Node)
	}
	parent.children[spec.Name] = n
	s.invalidate()
	return n, nil
}

// Unbind removes the node at path. The subject needs delete mode on the
// target, write mode on the parent, and MAC write to both. Non-empty
// nodes cannot be unbound.
func (s *Server) Unbind(sub acl.Subject, class lattice.Class, path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return err
	}
	if n.parent == nil {
		return ErrRoot
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	if err := checkNodeLocked(n, sub, class, acl.Delete); err != nil {
		return err
	}
	if n.parent.multilevel {
		// Same waiver as Bind: removing an entry from a multilevel
		// container needs the DAC write mode but not MAC write.
		if !n.parent.acl.Check(sub, acl.Write) {
			return &DeniedError{Path: n.parent.Path(), Op: "write", Why: "acl: modes not granted"}
		}
	} else if err := checkNodeLocked(n.parent, sub, class, acl.Write); err != nil {
		return err
	}
	delete(n.parent.children, n.name)
	n.parent = nil
	s.invalidate()
	return nil
}

// Rename moves the node at oldPath to newParentPath/newName. The
// subject needs delete on the node, write on both the old and the new
// parent (multilevel waivers apply to each side independently), and the
// usual MAC rules; the node keeps its ACL, class, payload, and
// children. Renaming across class boundaries never relabels: the name
// moves, the protection does not.
func (s *Server) Rename(sub acl.Subject, class lattice.Class, oldPath, newParentPath, newName string) error {
	if err := ValidComponent(newName); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(sub, class, oldPath, true)
	if err != nil {
		return err
	}
	if n.parent == nil {
		return ErrRoot
	}
	newParent, err := s.resolveLocked(sub, class, newParentPath, true)
	if err != nil {
		return err
	}
	if newParent.kind.Leaf() {
		return fmt.Errorf("%w: %s", ErrLeaf, newParentPath)
	}
	// A node must not become its own ancestor.
	for cur := newParent; cur != nil; cur = cur.parent {
		if cur == n {
			return fmt.Errorf("%w: cannot move %s under itself", ErrBadPath, oldPath)
		}
	}
	if _, dup := newParent.children[newName]; dup {
		return fmt.Errorf("%w: %s", ErrExists, Join(newParentPath, newName))
	}
	if err := checkNodeLocked(n, sub, class, acl.Delete); err != nil {
		return err
	}
	checkParent := func(p *Node) error {
		if p.multilevel {
			if !p.acl.Check(sub, acl.Write) {
				return &DeniedError{Path: p.Path(), Op: "write", Why: "acl: modes not granted"}
			}
			return nil
		}
		return checkNodeLocked(p, sub, class, acl.Write)
	}
	if err := checkParent(n.parent); err != nil {
		return err
	}
	if err := checkParent(newParent); err != nil {
		return err
	}
	delete(n.parent.children, n.name)
	n.parent = newParent
	n.name = newName
	newParent.children[newName] = n
	s.invalidate()
	return nil
}

// UnbindUnchecked removes the node at path with no access checks.
func (s *Server) UnbindUnchecked(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(nil, lattice.Class{}, path, false)
	if err != nil {
		return err
	}
	if n.parent == nil {
		return ErrRoot
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	delete(n.parent.children, n.name)
	n.parent = nil
	s.invalidate()
	return nil
}

// GetACL returns a copy of the node's ACL. Reading the protection state
// requires read or administrate mode.
func (s *Server) GetACL(sub acl.Subject, class lattice.Class, path string) (*acl.ACL, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return nil, err
	}
	granted := n.acl.Granted(sub)
	if !granted.Has(acl.Read) && !granted.Has(acl.Administrate) {
		return nil, &DeniedError{Path: path, Op: "get-acl", Why: "acl: need read or administrate"}
	}
	if ok, why := macAllows(class, n.class, acl.Read); !ok {
		return nil, &DeniedError{Path: path, Op: "get-acl", Why: why}
	}
	return n.acl.Clone(), nil
}

// SetACL replaces the node's ACL. Changing protection is the
// administrate mode (§2.1) and is MAC-wise a write.
func (s *Server) SetACL(sub acl.Subject, class lattice.Class, path string, newACL *acl.ACL) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return err
	}
	if err := checkNodeLocked(n, sub, class, acl.Administrate); err != nil {
		return err
	}
	n.acl = s.hookACL(newACL.Clone())
	s.invalidate()
	return nil
}

// SetACLUnchecked replaces a node's ACL with no access checks.
func (s *Server) SetACLUnchecked(path string, newACL *acl.ACL) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(nil, lattice.Class{}, path, false)
	if err != nil {
		return err
	}
	n.acl = s.hookACL(newACL.Clone())
	s.invalidate()
	return nil
}

// SetClass relabels the node. Relabeling violates tranquility, so it is
// gated on administrate mode and MAC write against both the old and the
// new class.
func (s *Server) SetClass(sub acl.Subject, class lattice.Class, path string, newClass lattice.Class) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(sub, class, path, true)
	if err != nil {
		return err
	}
	if !newClass.Valid() || newClass.Lattice() != s.lat {
		return fmt.Errorf("%w: class must come from the server lattice", ErrBadPath)
	}
	if err := checkNodeLocked(n, sub, class, acl.Administrate); err != nil {
		return err
	}
	// Relabeling moves the information at the old class to the new one,
	// so it is simultaneously a read of the old label and a write of the
	// new: the subject must dominate what it declassifies and may not
	// write down.
	if !class.CanRead(n.class) {
		return &DeniedError{Path: path, Op: "set-class", Why: "mac: subject does not dominate current class"}
	}
	if !class.CanWrite(newClass) {
		return &DeniedError{Path: path, Op: "set-class", Why: "mac: relabel would write down"}
	}
	n.class = newClass
	s.invalidate()
	return nil
}

// SetClassUnchecked relabels a node with no access checks; for
// bootstrap and experiments.
func (s *Server) SetClassUnchecked(path string, newClass lattice.Class) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(nil, lattice.Class{}, path, false)
	if err != nil {
		return err
	}
	if !newClass.Valid() || newClass.Lattice() != s.lat {
		return fmt.Errorf("%w: class must come from the server lattice", ErrBadPath)
	}
	n.class = newClass
	s.invalidate()
	return nil
}

// ACLOf returns a copy of a node's ACL with no checks (monitor use).
func (s *Server) ACLOf(path string) (*acl.ACL, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, err := s.resolveLocked(nil, lattice.Class{}, path, false)
	if err != nil {
		return nil, err
	}
	return n.acl.Clone(), nil
}

// SetPayload replaces the payload at path with no access checks
// (monitor and service bootstrap use).
func (s *Server) SetPayload(path string, payload any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.resolveLocked(nil, lattice.Class{}, path, false)
	if err != nil {
		return err
	}
	n.payload = payload
	s.invalidate()
	return nil
}

// Walk visits every node in the name space in depth-first order with no
// access checks, calling fn with each node's path and node. Intended for
// administrative dumps and tests. The callback must not call back into
// the server.
func (s *Server) Walk(fn func(path string, n *Node)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var visit func(n *Node)
	visit = func(n *Node) {
		fn(n.Path(), n)
		for _, name := range n.childNames() {
			visit(n.children[name])
		}
	}
	visit(s.root)
}

// Size returns the number of nodes in the name space, including the
// root.
func (s *Server) Size() int {
	n := 0
	s.Walk(func(string, *Node) { n++ })
	return n
}
